module fafnir

go 1.22
