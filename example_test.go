package fafnir_test

import (
	"fmt"
	"log"

	"fafnir"
)

// ExampleSystem_Lookup runs a small deterministic batch through the paper's
// default system and reports what the tree did.
func ExampleSystem_Lookup() {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{RowsPerTable: 1024, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	batch, err := sys.GenerateBatch(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Lookup(batch) // verified against the golden reference
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queries: %d\n", len(res.Outputs))
	fmt.Printf("unique DRAM reads: %d of %d accesses\n", res.MemoryReads, batch.TotalAccesses())
	fmt.Printf("occupancy within batch bound: %v\n", res.MaxOccupancy <= 8)
	// Output:
	// queries: 8
	// unique DRAM reads: 78 of 128 accesses
	// occupancy within batch bound: true
}

// ExampleSystem_SpMV multiplies a banded "scientific" matrix on the same
// tree, the paper's genericity claim.
func ExampleSystem_SpMV() {
	sys, err := fafnir.NewSystem(fafnir.SystemConfig{RowsPerTable: 1024})
	if err != nil {
		log.Fatal(err)
	}
	m := fafnir.BandedMatrix(3000, 4, 3)
	x := fafnir.DenseOperand(3000, 4)
	res, err := sys.SpMV(m, x) // verified against the reference product
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", res.Plan)
	fmt.Printf("result rows: %d\n", res.Y.Dim())
	// Output:
	// plan: cols=3000 V=2048: 2 multiply rounds, 1 merge iterations (1 merges)
	// result rows: 3000
}
