// Package fafnir is the public API of the FAFNIR reproduction: a
// near-memory intelligent reduction tree for sparse gathering (HPCA 2021),
// together with the DDR4 memory model, workload generators, and baseline
// accelerators (TensorDIMM, RecNMP, Two-Step, and a no-NDP host) needed to
// reproduce the paper's evaluation.
//
// The quickest path is System:
//
//	sys, err := fafnir.NewSystem(fafnir.SystemConfig{})
//	batch, err := sys.GenerateBatch(32, 1)
//	res, err := sys.Lookup(batch)
//	fmt.Println(res.Outputs[0], res.TotalCycles)
//
// System bundles the paper's default configuration — a 4-channel, 32-rank
// DDR4 memory holding 32 embedding tables of 512 B vectors, and a 31-PE
// Fafnir tree at 200 MHz — and exposes timed embedding lookup and SpMV.
// Lower-level control (custom trees, baseline engines, raw PE semantics)
// lives in the internal packages and is re-exported selectively here.
package fafnir

import (
	"fmt"
	"io"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/rnet"
	"fafnir/internal/router"
	"fafnir/internal/serve"
	"fafnir/internal/sim"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
	"fafnir/internal/twostep"
)

// Telemetry layer (internal/telemetry), re-exported: the cycle-level event
// tracer whose streams load directly into Perfetto, and the typed metrics
// registry behind the serving layer's /metrics endpoint.
type (
	// Tracer receives trace events; attach one with System.AttachTracer.
	Tracer = telemetry.Tracer
	// Trace is the standard in-memory Tracer with Chrome trace-event JSON
	// export (WriteChromeFile for Perfetto, ChromeJSON for embedding).
	Trace = telemetry.Trace
	// TraceEvent is one trace record.
	TraceEvent = telemetry.Event
	// MetricsRegistry is the typed counter/gauge/histogram registry.
	MetricsRegistry = telemetry.Registry
	// Logger is the small shared leveled logger the CLIs print through
	// (text mode is byte-compatible with fmt.Printf; json mode wraps each
	// line in a {"ts","level","msg"} object).
	Logger = telemetry.Logger
	// SLOConfig parameterizes the serving layer's SLO flight recorder:
	// rolling window, per-lane latency objectives, error-budget fraction,
	// and the slowest/degraded-request ring bound K.
	SLOConfig = telemetry.SLOConfig
	// SLOSnapshot is the flight-recorder state served on /debug/slo.
	SLOSnapshot = telemetry.SLOSnapshot
	// StageCycles is the exact per-stage latency attribution every timed
	// lookup carries (LookupResult.Stages); the stages sum to TotalCycles.
	StageCycles = core.StageCycles
)

// NewLogger builds a leveled logger writing to w in the given format
// ("text" or "json").
func NewLogger(w io.Writer, format string) (*Logger, error) { return telemetry.NewLogger(w, format) }

// NewTrace returns an empty trace collector, ready to attach.
func NewTrace() *Trace { return telemetry.NewTrace() }

// ValidateTrace checks that data is well-formed, Perfetto-loadable Chrome
// trace-event JSON with monotonic per-lane timestamps, returning the number
// of non-metadata events.
func ValidateTrace(data []byte) (int, error) { return telemetry.ValidateChrome(data) }

// Re-exported leaf types, so callers do not need the internal import paths.
type (
	// Vector is a dense FP32 embedding vector.
	Vector = tensor.Vector
	// ReduceOp is the pooling operation applied through the tree.
	ReduceOp = tensor.ReduceOp
	// Batch is a set of embedding-lookup queries.
	Batch = embedding.Batch
	// Query is one lookup: a set of indices reduced into one vector.
	Query = embedding.Query
	// Matrix is a sparse matrix in the streaming LIL format.
	Matrix = sparse.LIL
	// LookupResult is a timed embedding-lookup outcome.
	LookupResult = core.TimedResult
	// SpMVResult is a timed SpMV outcome.
	SpMVResult = spmv.Result
	// FaultPlan is a deterministic fault-injection schedule attachable to a
	// System via SystemConfig.Faults. The zero value injects nothing.
	FaultPlan = fault.Plan
	// RankFailure schedules one memory rank going dark.
	RankFailure = fault.RankFailure
	// PEStallFault schedules a latency spike on one tree node.
	PEStallFault = fault.PEStall
	// DegradedReport quantifies the graceful-degradation work of a
	// fault-injected lookup (LookupResult.Degraded).
	DegradedReport = core.DegradedReport
)

// Structured failure modes of fault-injected runs; match with errors.Is.
var (
	// ErrRankFailed reports a read on a dark rank with no live replica.
	ErrRankFailed = fault.ErrRankFailed
	// ErrInvariantViolated reports broken reduction-tree header accounting.
	ErrInvariantViolated = fault.ErrInvariantViolated
	// ErrRetriesExhausted reports a read whose every retry came back corrupt.
	ErrRetriesExhausted = fault.ErrRetriesExhausted
)

// ParseFaultPlan builds a FaultPlan from the compact spec format of
// fafnir-sim's -faults flag, e.g. "rank=3@0;ecc=0.001;stall=5+200;seed=9".
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// Pooling operations.
const (
	OpSum  = tensor.OpSum
	OpMin  = tensor.OpMin
	OpMax  = tensor.OpMax
	OpMean = tensor.OpMean
)

// SystemConfig selects the simulated system's shape. Zero values mean the
// paper's defaults.
type SystemConfig struct {
	// Ranks is the number of memory ranks (default 32; must divide evenly
	// into the DDR4 geometry: 8 ranks per channel).
	Ranks int
	// RowsPerTable is the number of 512 B vectors per embedding table
	// (default 128 Ki across 32 tables).
	RowsPerTable int
	// BatchCapacity is the hardware batch size B (default 32).
	BatchCapacity int
	// ZipfS is the index-popularity skew for GenerateBatch (default 1.3;
	// values <= 1 draw uniformly).
	ZipfS float64
	// QuerySize is the indices per generated query (default 16).
	QuerySize int
	// Seed makes table contents and workloads deterministic (default 1).
	Seed int64
	// Dedup controls whether Lookup eliminates redundant accesses
	// (default true; set DisableDedup to turn off).
	DisableDedup bool
	// Faults attaches a deterministic fault-injection schedule. The zero
	// plan injects nothing and leaves every run bit-identical to a system
	// built without it.
	Faults FaultPlan
	// Parallelism bounds the simulator's worker pool (concurrent PE
	// evaluation and hardware-batch pipelining). It changes wall-clock
	// speed only: outputs, statistics, and cycle counts are bit-identical
	// at every setting. 0 uses every core (runtime.GOMAXPROCS); 1 runs the
	// exact single-threaded legacy path.
	Parallelism int
}

// Validate reports a descriptive error naming the offending field and value
// for an unusable configuration. Zero values are valid (they select the
// paper's defaults); NewSystem validates automatically.
func (c SystemConfig) Validate() error {
	switch {
	case c.Ranks < 0:
		return fmt.Errorf("fafnir: SystemConfig.Ranks = %d: must be positive (or 0 for the paper default of 32)", c.Ranks)
	case c.Ranks != 0 && c.Ranks%8 != 0 && c.Ranks%2 != 0:
		return fmt.Errorf("fafnir: SystemConfig.Ranks = %d: not expressible as a DDR4 geometry (use a multiple of 8 for multi-channel, or an even count for a single channel)", c.Ranks)
	case c.RowsPerTable < 0:
		return fmt.Errorf("fafnir: SystemConfig.RowsPerTable = %d: must be positive (or 0 for the paper default of 128 Ki)", c.RowsPerTable)
	case c.BatchCapacity < 0:
		return fmt.Errorf("fafnir: SystemConfig.BatchCapacity = %d: must be positive (or 0 for the paper default of 32)", c.BatchCapacity)
	case c.QuerySize < 0:
		return fmt.Errorf("fafnir: SystemConfig.QuerySize = %d: must be positive (or 0 for the paper default of 16)", c.QuerySize)
	case c.Parallelism < 0:
		return fmt.Errorf("fafnir: SystemConfig.Parallelism = %d: must be non-negative (0 uses every core)", c.Parallelism)
	}
	return nil
}

func (c *SystemConfig) fillDefaults() {
	if c.Ranks == 0 {
		c.Ranks = 32
	}
	if c.RowsPerTable == 0 {
		c.RowsPerTable = 1 << 17
	}
	if c.BatchCapacity == 0 {
		c.BatchCapacity = 32
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.QuerySize == 0 {
		c.QuerySize = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// System is a ready-to-run simulated memory system with a Fafnir tree
// attached. It is not safe for concurrent use.
type System struct {
	cfg    SystemConfig
	mcfg   dram.Config
	layout *memmap.Layout
	store  *embedding.Store
	engine *core.Engine
	mem    *dram.System
	inj    *fault.Injector
}

// NewSystem builds a system; zero-value config selects the paper's setup.
func NewSystem(cfg SystemConfig) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	mcfg := dram.DDR4()
	switch {
	case cfg.Ranks == 32:
		// paper default geometry
	case cfg.Ranks%8 == 0:
		mcfg.Channels = cfg.Ranks / 8
	case cfg.Ranks%2 == 0:
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = cfg.Ranks / 2
	default:
		return nil, fmt.Errorf("fafnir: rank count %d not expressible as a DDR4 geometry", cfg.Ranks)
	}

	layout := memmap.Uniform(mcfg, 512, 32, cfg.RowsPerTable)
	store, err := embedding.NewStore(layout.TotalRows(), 128, uint64(cfg.Seed))
	if err != nil {
		return nil, err
	}

	ecfg := core.Default()
	ecfg.NumRanks = cfg.Ranks
	ecfg.BatchCapacity = cfg.BatchCapacity
	ecfg.Parallelism = cfg.Parallelism
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	mem, err := dram.NewSystem(mcfg)
	if err != nil {
		return nil, err
	}
	sys := &System{
		cfg:    cfg,
		mcfg:   mcfg,
		layout: layout,
		store:  store,
		engine: engine,
		mem:    mem,
	}
	if !cfg.Faults.Empty() {
		inj, err := fault.NewInjector(cfg.Faults, mcfg.TotalRanks())
		if err != nil {
			return nil, err
		}
		sys.inj = inj
		mem.AttachFaults(inj)
	}
	return sys, nil
}

// TotalRows reports the number of embedding vectors in the system.
func (s *System) TotalRows() uint64 { return s.layout.TotalRows() }

// Row returns the raw embedding row at idx — the exact vector every DRAM
// read of idx yields, since the store is read-only. The serving layer's
// hot-embedding cache uses this hook to admit rows a flushed batch read.
func (s *System) Row(idx header.Index) (tensor.Vector, error) { return s.store.Vector(idx) }

// Dim reports the embedding dimensionality of every row.
func (s *System) Dim() int { return s.store.Dim() }

// AttachTracer threads a telemetry tracer through the system's engine and
// memory model: subsequent Lookup calls emit PE stage events (one lane per
// PE, grouped by tree level) and per-bank DRAM command spans onto the
// tracer's timeline. A nil tracer detaches. Tracing is observational only —
// outputs and cycle counts are bit-identical with or without it — and the
// serving layer uses this hook for its ?debug=trace echo.
func (s *System) AttachTracer(t Tracer) {
	s.engine.AttachTracer(t)
	s.mem.AttachTracer(t)
}

// SetSpanContext installs the parent span ID that subsequent hardware-batch
// trace spans link under (0 detaches). The serving layer uses this hook to
// chain engine spans under the request that paid for them; it only annotates
// events and never perturbs timing.
func (s *System) SetSpanContext(parent uint64) { s.engine.SetSpanContext(parent) }

// MemoryCounter reads one of the memory system's cumulative statistics
// counters by name (e.g. "dram.row_hits", "dram.row_misses",
// "dram.row_conflicts", "dram.reads"). Unknown names read zero. The serving
// layer uses this hook to attribute row-buffer behaviour to flushed batches.
func (s *System) MemoryCounter(name string) uint64 { return s.mem.Stats().Counter(name) }

// NumPEs reports the size of the attached Fafnir tree.
func (s *System) NumPEs() int { return s.engine.Tree().NumPEs() }

// ResetMemory clears DRAM timing state and statistics between experiments.
func (s *System) ResetMemory() { s.mem.Reset() }

// MemoryStats renders the DRAM access statistics collected so far.
func (s *System) MemoryStats() string { return s.mem.Stats().String() }

// GenerateBatch draws n deterministic queries with the configured
// popularity skew and sum pooling.
func (s *System) GenerateBatch(n int, seed int64) (Batch, error) {
	gcfg := embedding.GeneratorConfig{
		NumQueries: n,
		QuerySize:  s.cfg.QuerySize,
		Rows:       s.layout.TotalRows(),
		Seed:       s.cfg.Seed*1_000_003 + seed,
	}
	if s.cfg.ZipfS > 1 {
		gcfg.Dist = embedding.Zipf
		gcfg.ZipfS = s.cfg.ZipfS
	}
	gen, err := embedding.NewGenerator(gcfg)
	if err != nil {
		return Batch{}, err
	}
	return gen.Batch(OpSum), nil
}

// Lookup runs a batch through the Fafnir tree with full timing and verifies
// the outputs against the golden reference before returning. When a fault
// plan is attached the run degrades gracefully — dark-rank reads remap to
// replicas, corrupt reads retry with backoff — and the result carries a
// DegradedReport; outputs still verify against the golden reference.
func (s *System) Lookup(b Batch) (*LookupResult, error) {
	res, err := s.engine.TimedLookupFaulted(s.store, s.layout, s.mem, b, !s.cfg.DisableDedup, s.inj)
	if err != nil {
		return nil, err
	}
	golden, err := b.Golden(s.store)
	if err != nil {
		return nil, err
	}
	if i := core.VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		return nil, fmt.Errorf("fafnir: query %d mismatches the golden reference", i)
	}
	return res, nil
}

// Golden computes the reference result of a batch (no simulation). It
// returns an error when the batch references rows outside the store.
func (s *System) Golden(b Batch) ([]Vector, error) { return b.Golden(s.store) }

// SpMV multiplies the sparse matrix by x on the Fafnir tree (vectorized
// mode, Section IV-D) and verifies the product against the reference.
func (s *System) SpMV(m *Matrix, x Vector) (*SpMVResult, error) {
	e, err := spmv.NewEngine(spmv.Default())
	if err != nil {
		return nil, err
	}
	res, err := e.Multiply(m, x, s.mem)
	if err != nil {
		return nil, err
	}
	want, err := m.MulVec(x)
	if err != nil {
		return nil, err
	}
	// The tree reduces in a different association order than the row-major
	// reference, so compare with a relative tolerance rather than exactly.
	for i := range want {
		diff := float64(res.Y[i] - want[i])
		if diff < 0 {
			diff = -diff
		}
		mag := float64(want[i])
		if mag < 0 {
			mag = -mag
		}
		if diff > 1e-4*(1+mag) {
			return nil, fmt.Errorf("fafnir: SpMV row %d mismatches the reference (%v vs %v)", i, res.Y[i], want[i])
		}
	}
	return res, nil
}

// SpMVTwoStep runs the same product on the Two-Step baseline accelerator.
func (s *System) SpMVTwoStep(m *Matrix, x Vector) (*twostep.Result, error) {
	e, err := twostep.NewEngine(twostep.Default())
	if err != nil {
		return nil, err
	}
	return e.Multiply(m, x, s.mem)
}

// Matrix generators, re-exported for examples and downstream callers.
var (
	// BandedMatrix generates a banded "scientific" matrix.
	BandedMatrix = sparse.Banded
	// GraphMatrix generates a power-law graph adjacency matrix.
	GraphMatrix = sparse.PowerLawGraph
	// UniformMatrix generates a uniformly sparse matrix.
	UniformMatrix = sparse.RandomUniform
	// DenseOperand generates a deterministic dense operand vector.
	DenseOperand = sparse.DenseVector
)

// CyclesToSeconds converts PE-clock cycles (200 MHz) to seconds.
func CyclesToSeconds(c uint64) float64 { return float64(c) / 200e6 }

// LookupInteractive serves the batch one query at a time in the paper's
// interactive mode (Section IV-C): lowest single-query latency, no batch
// headers, no deduplication.
func (s *System) LookupInteractive(b Batch) (*LookupResult, error) {
	res, err := s.engine.InteractiveLookup(s.store, s.layout, s.mem, b)
	if err != nil {
		return nil, err
	}
	golden, err := b.Golden(s.store)
	if err != nil {
		return nil, err
	}
	if i := core.VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		return nil, fmt.Errorf("fafnir: query %d mismatches the golden reference", i)
	}
	return res, nil
}

// LoadResult summarizes an offered-load (queueing) run.
type LoadResult = core.PipelineResult

// OfferedLoad streams batches into the tree at a fixed arrival interval (in
// PE cycles) and reports the queueing behaviour: average/maximum latency,
// queue depth, utilization, and achieved throughput.
func (s *System) OfferedLoad(batches []Batch, intervalCycles uint64) (*LoadResult, error) {
	return s.engine.OfferedLoad(s.store, s.layout, s.mcfg, batches, sim.Cycle(intervalCycles))
}

// TreeDOT renders the attached reduction tree in Graphviz dot format.
func (s *System) TreeDOT() string { return s.engine.Tree().DOT() }

// Config returns the system's configuration with defaults resolved; serving
// layers use it to size their batching to the engine (BatchCapacity).
func (s *System) Config() SystemConfig { return s.cfg }

// NewQuery builds one lookup query from raw embedding-row indices
// (deduplicated and sorted). Serving front-ends use it to translate wire
// requests into engine queries.
func NewQuery(indices ...uint32) Query {
	idx := make([]header.Index, len(indices))
	for i, v := range indices {
		idx[i] = header.Index(v)
	}
	return Query{Indices: header.NewIndexSet(idx...)}
}

// NewBatch bundles queries with a pooling operation.
func NewBatch(op ReduceOp, queries ...Query) Batch {
	return Batch{Queries: queries, Op: op}
}

// Online serving layer (internal/serve), re-exported: an HTTP front-end
// whose dynamic micro-batching coalescer merges concurrent lookup requests
// into shared hardware batches, extending the engine's deduplication window
// across users.
type (
	// ServeConfig parameterizes the serving layer (linger window, admission
	// queue bound, per-request deadline).
	ServeConfig = serve.Config
	// Server is the HTTP lookup front-end; see NewServer.
	Server = serve.Server
	// ServeMetrics is the serving layer's live instrumentation.
	ServeMetrics = serve.Metrics
	// Priority is a request's QoS lane: high, normal, or low.
	Priority = serve.Priority
	// RequestBreakdown is the per-request latency attribution the serving
	// layer returns on ?debug=trace and files in the SLO flight recorder:
	// queue/coalesce/cache/backend/combine/transfer, in exact simulated
	// cycles and measured wall microseconds.
	RequestBreakdown = serve.Breakdown
)

// The QoS lanes, re-exported for serving configuration.
const (
	PriorityHigh   = serve.PriorityHigh
	PriorityNormal = serve.PriorityNormal
	PriorityLow    = serve.PriorityLow
)

// ParsePriority maps a wire-format lane name — high, normal, low, or the
// empty string for the normal default — to its Priority.
func ParsePriority(s string) (Priority, error) { return serve.ParsePriority(s) }

// Serving-layer failure modes; match with errors.Is.
var (
	// ErrServeOverloaded reports a submission rejected by admission control.
	ErrServeOverloaded = serve.ErrOverloaded
	// ErrServeDraining reports a submission after graceful drain began.
	ErrServeDraining = serve.ErrDraining
)

// NewServer builds the online serving front-end over a system: POST
// /v1/lookup with dynamic micro-batching, GET /metrics in Prometheus text
// format, GET /healthz. Run its Handler on an http.Server; on shutdown call
// Drain after the listener stops.
func NewServer(sys *System, cfg ServeConfig) (*Server, error) {
	if cfg.BatchCapacity == 0 {
		cfg.BatchCapacity = sys.cfg.BatchCapacity
	}
	return serve.New(sys, cfg)
}

// Fault-tolerant sharded serving (internal/router), re-exported: a fleet
// front-end that owns N independent System shards, scatters each batch's
// indices to their owning shards, and reduces the partial pools host-side.
// Shard health is tracked by a per-shard three-state breaker fed by
// structured sub-lookup errors; dark shards fail over to the peer holding
// their replica rows, and when both copies are unreachable the batch
// degrades gracefully — partial outputs plus a DegradedReport — instead of
// failing.
type (
	// FleetConfig parameterizes a sharded fleet (shard count, replica
	// placement, breaker thresholds, probe backoff, retry deadline).
	FleetConfig = router.Config
	// Fleet is the shard router; it implements the same Lookup surface as
	// System, so NewFleetServer serves it over HTTP unchanged.
	Fleet = router.Fleet
	// ShardState is one shard's breaker health: healthy, suspect, or dark.
	ShardState = router.State
	// FleetFaultPlan schedules fleet-level faults: whole-shard loss,
	// flapping shards, and correlated rank storms, plus a per-shard base
	// FaultPlan. The zero value injects nothing.
	FleetFaultPlan = fault.FleetPlan
	// ShardFailure schedules one shard going permanently dark.
	ShardFailure = fault.ShardFailure
	// ShardFlap schedules one shard dropping out and coming back.
	ShardFlap = fault.ShardFlap
	// ShardDegradedReport is one shard's entry in a fleet-level
	// DegradedReport (DegradedReport.Shards).
	ShardDegradedReport = core.ShardDegraded
)

// The breaker states, re-exported for health introspection (Fleet.Health).
const (
	ShardHealthy = router.Healthy
	ShardSuspect = router.Suspect
	ShardDark    = router.Dark
)

// ErrShardDown reports a sub-lookup dispatched to a shard the fleet fault
// plan had taken down, or one skipped because its breaker is dark; match
// with errors.Is.
var ErrShardDown = fault.ErrShardDown

// NewFleet builds a sharded fleet; the zero config selects a 4-shard fleet
// with 8 ranks per shard and the paper's batch capacity.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return router.New(cfg) }

// ParseFleetFaultPlan builds a FleetFaultPlan from the compact spec format
// of fafnir-serve's -fault-storm flag, e.g.
// "shard=1@40000;flap=2@1-300000;storm=6@20000;ecc=0.001;seed=7".
func ParseFleetFaultPlan(spec string) (FleetFaultPlan, error) { return fault.ParseFleet(spec) }

// NewFleetServer builds the online serving front-end over a sharded fleet:
// the same HTTP surface as NewServer, with degraded results surfaced in
// lookup responses and the router's shard-health metric families registered
// onto /metrics.
func NewFleetServer(f *Fleet, cfg ServeConfig) (*Server, error) {
	if cfg.BatchCapacity == 0 {
		cfg.BatchCapacity = f.Config().BatchCapacity
	}
	return serve.New(f, cfg)
}

// Cross-shard reduction network and multi-fleet federation (internal/rnet,
// internal/router), re-exported. With FleetConfig.Rnet.Radix >= 2 a fleet
// reduces its per-shard partial pools through a simulated in-network switch
// tree instead of the serial host fold: a switch fires the moment its last
// live child's partial lands (a lost shard is simply an absent leaf), link
// and combine latency are charged in simulated cycles, and outputs stay
// bit-identical to the host fold. A Federation stacks M such fleets behind
// one Lookup front-end and reduces the fleet partials through the same
// switch-tree machinery.
type (
	// RnetConfig shapes a reduction tree: fan-in radix (0 = legacy host
	// fold), per-hop link cycles, switch latency, and per-combine cost.
	RnetConfig = rnet.Config
	// FederationConfig parameterizes a multi-fleet federation: fleet count,
	// the shared member-fleet template, and the cross-fleet tree shape.
	FederationConfig = router.FederationConfig
	// Federation is M fleets behind one Lookup front-end; it implements the
	// same serving surface as Fleet, so NewFederationServer serves it over
	// HTTP unchanged.
	Federation = router.Federation
)

// NewFederation builds a multi-fleet federation; the zero config selects
// two default fleets reduced through a radix-2 cross-fleet tree.
func NewFederation(cfg FederationConfig) (*Federation, error) { return router.NewFederation(cfg) }

// NewFederationServer builds the online serving front-end over a
// federation: the same HTTP surface as NewServer, with the federation's
// per-fleet and cross-fleet rnet metric families registered onto /metrics.
func NewFederationServer(fd *Federation, cfg ServeConfig) (*Server, error) {
	if cfg.BatchCapacity == 0 {
		cfg.BatchCapacity = fd.Config().Fleet.BatchCapacity
	}
	return serve.New(fd, cfg)
}
