// Package tensordimm models the TensorDIMM baseline (Kwon et al., MICRO
// 2019) as the FAFNIR paper characterizes it in Section III:
//
//   - every embedding vector is split column-major across all ranks, so one
//     rank stores VectorBytes/NumRanks of every vector;
//   - a query's q vectors are read slice by slice at every rank; because
//     distinct vectors live at random rank-local offsets, almost every slice
//     read activates a new row — the row-buffer-locality penalty that makes
//     TensorDIMM's memory time up to 16x slower than row-major designs;
//   - each rank's NDP unit reduces its slices in a pipeline (q-1 sequential
//     partial sums per query rather than a parallel tree), and only the
//     reduced slice travels to the host, which concatenates the partitions.
//
// Data movement is therefore minimal (n*v elements, like Fafnir) but both
// memory and compute time scale with q per query.
package tensordimm

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Config parameterizes the TensorDIMM model.
type Config struct {
	// VectorBytes is the full embedding-vector size.
	VectorBytes int
	// ReduceCyclesPerSlice is the NDP pipeline cost of one partial-sum step
	// on one rank's slice, in PE-equivalent (200 MHz) cycles.
	ReduceCyclesPerSlice sim.Cycle
	// ClockMHz is the reporting clock.
	ClockMHz float64
	// DRAMClockMHz converts memory time into the reporting clock.
	DRAMClockMHz float64
}

// Default returns the calibration matching the paper's setup (512 B
// vectors).
func Default() Config {
	return Config{
		VectorBytes:          512,
		ReduceCyclesPerSlice: 24,
		ClockMHz:             200,
		DRAMClockMHz:         1200,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.VectorBytes <= 0:
		return fmt.Errorf("tensordimm: VectorBytes must be positive, got %d", c.VectorBytes)
	case c.ReduceCyclesPerSlice == 0:
		return fmt.Errorf("tensordimm: ReduceCyclesPerSlice must be positive")
	case c.ClockMHz <= 0:
		return fmt.Errorf("tensordimm: ClockMHz must be positive, got %v", c.ClockMHz)
	case c.DRAMClockMHz <= 0:
		return fmt.Errorf("tensordimm: DRAMClockMHz must be positive, got %v", c.DRAMClockMHz)
	}
	return nil
}

// Result is the outcome of one TensorDIMM batch.
type Result struct {
	// Outputs holds the reduced vector per query.
	Outputs []tensor.Vector
	// MemCycles is when the last slice read completed (reporting clock).
	MemCycles sim.Cycle
	// ComputeCycles is the pipelined NDP reduction time.
	ComputeCycles sim.Cycle
	// TotalCycles is the batch latency including result transfer.
	TotalCycles sim.Cycle
	// MemoryReads counts slice reads across all ranks.
	MemoryReads int
	// BytesToHost is the channel traffic (only reduced outputs).
	BytesToHost uint64
}

// Engine is the TensorDIMM timing model.
type Engine struct {
	cfg Config
}

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// sliceAddr returns the byte address of vector idx's slice on global rank r:
// rank-locally, vector slices are stored densely in index order, so random
// indices land in random rows.
func sliceAddr(mcfg dram.Config, idx header.Index, sliceBytes int) (slot uint64, off int) {
	local := uint64(idx) * uint64(sliceBytes)
	return local / uint64(mcfg.InterleaveBytes), int(local % uint64(mcfg.InterleaveBytes))
}

// TimedLookup runs a batch. For every query, every rank reads the slices of
// all q vectors (random rows — the row-locality penalty is charged by the
// DRAM model) and pipelines q-1 partial sums; the reduced output slices then
// cross the channels to the host.
func (e *Engine) TimedLookup(store *embedding.Store, mem *dram.System, b embedding.Batch) (*Result, error) {
	mcfg := mem.Config()
	ranks := mcfg.TotalRanks()
	sliceBytes := e.cfg.VectorBytes / ranks
	if sliceBytes == 0 {
		return nil, fmt.Errorf("tensordimm: vector of %d bytes cannot split over %d ranks", e.cfg.VectorBytes, ranks)
	}
	outputs, err := b.Golden(store)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: outputs}

	ratio := e.cfg.DRAMClockMHz / e.cfg.ClockMHz
	toHost := func(d sim.Cycle) sim.Cycle {
		return sim.Cycle((float64(d) + ratio - 1) / ratio)
	}

	// Each rank serves its slice reads in sequence; ranks run in parallel.
	// Track the per-rank completion in the DRAM clock.
	var memDone sim.Cycle
	for _, q := range b.Queries {
		for _, idx := range q.Indices {
			for r := 0; r < ranks; r++ {
				slot, off := sliceAddr(mcfg, idx, sliceBytes)
				base, err := mcfg.Encode(r, slot)
				if err != nil {
					return nil, err
				}
				addr := base + dram.Addr(off)
				done := mem.Read(0, addr, sliceBytes, dram.DestLocal)
				memDone = sim.Max(memDone, done)
				res.MemoryReads++
			}
		}
	}
	res.MemCycles = toHost(memDone)

	// Pipelined partial sums: every query costs q-1 sequential reduce steps
	// per rank, all ranks in lockstep, queries back to back. (Fafnir instead
	// reduces each query's q vectors in a log-depth parallel tree.)
	var compute sim.Cycle
	for _, q := range b.Queries {
		steps := q.Indices.Len() - 1
		if steps > 0 {
			compute += sim.Cycle(steps) * e.cfg.ReduceCyclesPerSlice
		}
	}
	res.ComputeCycles = compute

	// Outputs: one slice per rank per query -> n*VectorBytes total over the
	// channels.
	outBytes := len(b.Queries) * e.cfg.VectorBytes
	res.BytesToHost = uint64(outBytes)
	xfer := toHost(mcfg.TransferCycles(outBytes))

	res.TotalCycles = res.MemCycles + res.ComputeCycles + xfer
	return res, nil
}

// Verify checks the model's functional outputs against the golden reference.
func Verify(res *Result, golden []tensor.Vector, tol float64) error {
	if len(res.Outputs) != len(golden) {
		return fmt.Errorf("tensordimm: %d outputs for %d queries", len(res.Outputs), len(golden))
	}
	for i := range golden {
		if !res.Outputs[i].ApproxEqual(golden[i], tol) {
			return fmt.Errorf("tensordimm: query %d mismatches golden", i)
		}
	}
	return nil
}
