package tensordimm

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/tensor"
)

func testBatch(t *testing.T, n, q int, rows uint64, seed int64) embedding.Batch {
	t.Helper()
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n, QuerySize: q, Rows: rows, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.VectorBytes = 0 },
		func(c *Config) { c.ReduceCyclesPerSlice = 0 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.DRAMClockMHz = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTimedLookupBasics(t *testing.T) {
	e, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	mem := dram.MustSystem(dram.DDR4())
	store := embedding.MustStore(32768, 128, 7)
	b := testBatch(t, 4, 8, 32768, 1)
	res, err := e.TimedLookup(store, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	// Every rank reads every vector's slice: 32 slice reads per vector.
	if res.MemoryReads != 4*8*32 {
		t.Fatalf("MemoryReads = %d, want %d", res.MemoryReads, 4*8*32)
	}
	// Data movement matches Fafnir: only n*v bytes.
	if res.BytesToHost != 4*512 {
		t.Fatalf("BytesToHost = %d, want %d", res.BytesToHost, 4*512)
	}
	if err := Verify(res, b.MustGolden(store), 0); err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= res.MemCycles {
		t.Fatal("compute missing from total")
	}
}

func TestRowLocalityPenalty(t *testing.T) {
	// TensorDIMM's random column-major slices must activate far more rows
	// per byte read than a row-major whole-vector layout does.
	e, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	mem := dram.MustSystem(dram.DDR4())
	store := embedding.MustStore(1<<20, 128, 7)
	b := testBatch(t, 8, 16, 1<<20, 2)
	if _, err := e.TimedLookup(store, mem, b); err != nil {
		t.Fatal(err)
	}
	activates := mem.Stats().Counter("dram.row_misses") + mem.Stats().Counter("dram.row_conflicts")
	reads := mem.Stats().Counter("dram.reads")
	if reads == 0 {
		t.Fatal("no reads recorded")
	}
	// With random vector indices over a million rows, nearly every slice
	// read opens a new row.
	if frac := float64(activates) / float64(reads); frac < 0.8 {
		t.Fatalf("activate fraction %.2f; expected row-hostile behaviour", frac)
	}
}

func TestComputeScalesWithQuerySize(t *testing.T) {
	e, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	store := embedding.MustStore(65536, 128, 7)
	b4 := testBatch(t, 4, 4, 65536, 3)
	b16 := testBatch(t, 4, 16, 65536, 3)
	r4, err := e.TimedLookup(store, dram.MustSystem(dram.DDR4()), b4)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := e.TimedLookup(store, dram.MustSystem(dram.DDR4()), b16)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined reduction: compute grows with q (3 steps vs 15 per query).
	if r16.ComputeCycles != 5*r4.ComputeCycles {
		t.Fatalf("compute %d vs %d; want exactly 5x", r16.ComputeCycles, r4.ComputeCycles)
	}
}

func TestTooManyRanksForVector(t *testing.T) {
	cfg := Default()
	cfg.VectorBytes = 16 // 16 B over 32 ranks -> 0 B slices
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := embedding.MustStore(1024, 4, 1)
	if _, err := e.TimedLookup(store, dram.MustSystem(dram.DDR4()), testBatch(t, 1, 2, 1024, 1)); err == nil {
		t.Fatal("degenerate slice size accepted")
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	res := &Result{Outputs: []tensor.Vector{{1, 2}}}
	if err := Verify(res, []tensor.Vector{{1, 3}}, 0); err == nil {
		t.Fatal("mismatch not detected")
	}
	if err := Verify(res, []tensor.Vector{{1, 2}, {3}}, 0); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if err := Verify(res, []tensor.Vector{{1, 2}}, 0); err != nil {
		t.Fatal(err)
	}
}
