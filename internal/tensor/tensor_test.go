package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(8)
	if v.Dim() != 8 {
		t.Fatalf("Dim = %d, want 8", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("element %d = %v, want 0", i, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone aliased the original: v[0]=%v", v[0])
	}
}

func TestAddInPlace(t *testing.T) {
	v := Vector{1, 2, 3}
	if err := v.AddInPlace(Vector{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{11, 22, 33}) {
		t.Fatalf("got %v", v)
	}
}

func TestAddDimMismatch(t *testing.T) {
	v := Vector{1, 2}
	if err := v.AddInPlace(Vector{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := Add(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("expected dimension error from Add")
	}
	if _, err := Dot(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("expected dimension error from Dot")
	}
}

func TestAddAllocatesFresh(t *testing.T) {
	a := Vector{1, 2}
	b := Vector{3, 4}
	out, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 100
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("Add mutated an input")
	}
}

func TestScale(t *testing.T) {
	v := Vector{2, 4}.Scale(0.5)
	if !v.Equal(Vector{1, 2}) {
		t.Fatalf("got %v", v)
	}
}

func TestDot(t *testing.T) {
	got, err := Dot(Vector{1, 2, 3}, Vector{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestL2(t *testing.T) {
	if got := (Vector{3, 4}).L2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestEqualAndApprox(t *testing.T) {
	a := Vector{1, 2}
	if !a.Equal(Vector{1, 2}) {
		t.Fatal("Equal false for identical vectors")
	}
	if a.Equal(Vector{1}) {
		t.Fatal("Equal true for different dims")
	}
	if !a.ApproxEqual(Vector{1.0000001, 2}, 1e-3) {
		t.Fatal("ApproxEqual false within tolerance")
	}
	if a.ApproxEqual(Vector{1.1, 2}, 1e-3) {
		t.Fatal("ApproxEqual true outside tolerance")
	}
	if a.ApproxEqual(Vector{1}, 1) {
		t.Fatal("ApproxEqual true for different dims")
	}
}

func TestReduceOpApplySum(t *testing.T) {
	v := Vector{1, 5}
	if err := OpSum.Apply(v, Vector{2, 2}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{3, 7}) {
		t.Fatalf("got %v", v)
	}
}

func TestReduceOpApplyMinMax(t *testing.T) {
	v := Vector{1, 5}
	if err := OpMin.Apply(v, Vector{2, 2}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{1, 2}) {
		t.Fatalf("min got %v", v)
	}
	v = Vector{1, 5}
	if err := OpMax.Apply(v, Vector{2, 2}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{2, 5}) {
		t.Fatalf("max got %v", v)
	}
}

func TestReduceOpMean(t *testing.T) {
	v := Vector{2, 4}
	if err := OpMean.Apply(v, Vector{4, 8}); err != nil {
		t.Fatal(err)
	}
	OpMean.FinalizeMean(v, 2)
	if !v.Equal(Vector{3, 6}) {
		t.Fatalf("mean got %v", v)
	}
	// FinalizeMean is a no-op for sum.
	w := Vector{4, 4}
	OpSum.FinalizeMean(w, 2)
	if !w.Equal(Vector{4, 4}) {
		t.Fatalf("sum finalize mutated: %v", w)
	}
}

func TestReduceOpApplyMismatch(t *testing.T) {
	if err := OpSum.Apply(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestReduceOpApplyUnknown(t *testing.T) {
	bad := ReduceOp(42)
	if bad.Valid() {
		t.Fatal("ReduceOp(42) reported valid")
	}
	if err := bad.Apply(Vector{1}, Vector{1}); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestReduceOpString(t *testing.T) {
	names := map[ReduceOp]string{OpSum: "sum", OpMin: "min", OpMax: "max", OpMean: "mean"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if ReduceOp(9).String() != "ReduceOp(9)" {
		t.Errorf("unknown op string: %q", ReduceOp(9).String())
	}
}

func TestIdentity(t *testing.T) {
	z := OpSum.Identity(3)
	if !z.Equal(Vector{0, 0, 0}) {
		t.Fatalf("sum identity %v", z)
	}
	mn := OpMin.Identity(2)
	if !math.IsInf(float64(mn[0]), 1) {
		t.Fatalf("min identity %v", mn)
	}
	mx := OpMax.Identity(2)
	if !math.IsInf(float64(mx[0]), -1) {
		t.Fatalf("max identity %v", mx)
	}
	// Identity absorbs under Apply.
	v := OpMin.Identity(2)
	if err := OpMin.Apply(v, Vector{5, -3}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{5, -3}) {
		t.Fatalf("min identity not neutral: %v", v)
	}
}

// Property: sum reduction is commutative element-wise (IEEE addition of two
// operands commutes exactly).
func TestQuickSumCommutative(t *testing.T) {
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := Vector(a[:n]).Clone()
		y := Vector(b[:n]).Clone()
		x2 := Vector(a[:n]).Clone()
		y2 := Vector(b[:n]).Clone()
		if err := OpSum.Apply(x, y); err != nil {
			return false
		}
		if err := OpSum.Apply(y2, x2); err != nil {
			return false
		}
		for i := range x {
			xi, yi := x[i], y2[i]
			if xi != yi && !(math.IsNaN(float64(xi)) && math.IsNaN(float64(yi))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: min and max are idempotent (x op x == x).
func TestQuickMinMaxIdempotent(t *testing.T) {
	f := func(a []float32) bool {
		for _, op := range []ReduceOp{OpMin, OpMax} {
			v := Vector(a).Clone()
			w := Vector(a).Clone()
			if err := op.Apply(v, w); err != nil {
				return false
			}
			for i := range v {
				vi, ai := v[i], a[i]
				if vi != ai && !(math.IsNaN(float64(vi)) && math.IsNaN(float64(ai))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
