// Package tensor provides the dense-vector math used throughout the
// simulator: embedding vectors are FP32 vectors that support the element-wise
// reduction operations a Fafnir PE can apply (sum, min, max, mean).
//
// Vectors are plain []float32 slices wrapped in a named type so reduction
// kernels and dimension checks live in one place. All operations are
// deterministic and allocation behaviour is documented per function, because
// the timing engines run millions of reductions per simulated batch.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense FP32 embedding vector.
type Vector []float32

// ErrDimMismatch is returned when two vectors of different lengths are
// combined.
var ErrDimMismatch = errors.New("tensor: dimension mismatch")

// New returns a zero vector of dimension dim.
func New(dim int) Vector {
	if dim < 0 {
		panic("tensor: negative dimension")
	}
	return make(Vector, dim)
}

// Dim reports the number of elements in v.
func (v Vector) Dim() int { return len(v) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Equal reports whether v and w have identical dimension and elements.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w are element-wise equal within tol.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(float64(v[i])-float64(w[i])) > tol {
			return false
		}
	}
	return true
}

// AddInPlace accumulates w into v. It is the hot path of every reduction
// engine and performs no allocation.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Add returns v+w as a fresh vector.
func Add(v, w Vector) (Vector, error) {
	out := v.Clone()
	if err := out.AddInPlace(w); err != nil {
		return nil, err
	}
	return out, nil
}

// Scale multiplies every element of v by s in place and returns v.
func (v Vector) Scale(s float32) Vector {
	for i := range v {
		v[i] *= s
	}
	return v
}

// Dot returns the inner product of v and w.
func Dot(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(v), len(w))
	}
	var acc float64
	for i := range v {
		acc += float64(v[i]) * float64(w[i])
	}
	return acc, nil
}

// L2 returns the Euclidean norm of v.
func (v Vector) L2() float64 {
	var acc float64
	for _, x := range v {
		acc += float64(x) * float64(x)
	}
	return math.Sqrt(acc)
}

// ReduceOp identifies an element-wise reduction operation supported by a
// Fafnir PE. The paper lists summation, minimum, and average as the typical
// pooling operations for embedding lookup.
type ReduceOp uint8

const (
	// OpSum is element-wise summation (the default pooling operation).
	OpSum ReduceOp = iota
	// OpMin is element-wise minimum.
	OpMin
	// OpMax is element-wise maximum.
	OpMax
	// OpMean is element-wise arithmetic mean. Because a PE reduces two
	// operands at a time, mean pooling is implemented as a sum through the
	// tree followed by a final scale at the root; Apply on OpMean therefore
	// behaves like OpSum, and FinalizeMean performs the division.
	OpMean
)

// String returns the operation name.
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpMean:
		return "mean"
	default:
		return fmt.Sprintf("ReduceOp(%d)", uint8(op))
	}
}

// Valid reports whether op is a defined reduction operation.
func (op ReduceOp) Valid() bool { return op <= OpMean }

// Apply combines w into v in place according to op. OpMean accumulates like
// OpSum; call FinalizeMean with the operand count once the reduction tree has
// fully combined a query.
func (op ReduceOp) Apply(v, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(v), len(w))
	}
	switch op {
	case OpSum, OpMean:
		for i := range v {
			v[i] += w[i]
		}
	case OpMin:
		for i := range v {
			if w[i] < v[i] {
				v[i] = w[i]
			}
		}
	case OpMax:
		for i := range v {
			if w[i] > v[i] {
				v[i] = w[i]
			}
		}
	default:
		return fmt.Errorf("tensor: unknown reduce op %d", op)
	}
	return nil
}

// FinalizeMean divides v by n when op is OpMean; it is a no-op for other
// operations. n must be positive.
func (op ReduceOp) FinalizeMean(v Vector, n int) {
	if op != OpMean || n <= 0 {
		return
	}
	inv := 1 / float32(n)
	for i := range v {
		v[i] *= inv
	}
}

// Identity returns the neutral starting value for op at dimension dim:
// zeros for sum/mean, +Inf for min, -Inf for max.
func (op ReduceOp) Identity(dim int) Vector {
	v := New(dim)
	switch op {
	case OpMin:
		for i := range v {
			v[i] = float32(math.Inf(1))
		}
	case OpMax:
		for i := range v {
			v[i] = float32(math.Inf(-1))
		}
	}
	return v
}
