package cpu

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

func fixture(t *testing.T) (*Engine, *embedding.Store, *memmap.Layout, *dram.System) {
	t.Helper()
	e, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, 1024)
	store := embedding.MustStore(layout.TotalRows(), 128, 1)
	return e, store, layout, dram.MustSystem(mcfg)
}

func testBatch(t *testing.T, n, q int, rows uint64, seed int64) embedding.Batch {
	t.Helper()
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n, QuerySize: q, Rows: rows, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.VectorHandleCycles = 0 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.DRAMClockMHz = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTimedLookupGoldenOutputs(t *testing.T) {
	e, store, layout, mem := fixture(t)
	b := testBatch(t, 4, 8, layout.TotalRows(), 2)
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	for i := range golden {
		if !res.Outputs[i].Equal(golden[i]) {
			t.Fatalf("query %d output mismatch", i)
		}
	}
}

func TestTimedLookupReadsAllVectors(t *testing.T) {
	e, store, layout, mem := fixture(t)
	b := testBatch(t, 4, 8, layout.TotalRows(), 3)
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryReads != 32 {
		t.Fatalf("MemoryReads = %d, want 32 (no dedup in baseline)", res.MemoryReads)
	}
	if res.BytesToHost != 32*512 {
		t.Fatalf("BytesToHost = %d", res.BytesToHost)
	}
	if mem.Stats().Counter("dram.bytes_to_host") != 32*512 {
		t.Fatal("reads not charged to the channel bus")
	}
	if res.TotalCycles <= res.MemCycles {
		t.Fatal("compute time missing from total")
	}
}

func TestChannelContentionSlowsBaseline(t *testing.T) {
	// The same batch on a single channel must be slower than on four:
	// every vector crosses the channel bus in the baseline.
	wide := dram.DDR4()
	narrow := dram.DDR4()
	narrow.Channels = 1
	narrow.DIMMsPerChannel = 16

	e, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	lw := memmap.Uniform(wide, 512, 32, 1024)
	ln := memmap.Uniform(narrow, 512, 32, 1024)
	store := embedding.MustStore(lw.TotalRows(), 128, 1)
	b := testBatch(t, 8, 16, lw.TotalRows(), 4)

	rw, err := e.TimedLookup(store, lw, dram.MustSystem(wide), b)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := e.TimedLookup(store, ln, dram.MustSystem(narrow), b)
	if err != nil {
		t.Fatal(err)
	}
	if rn.MemCycles <= rw.MemCycles {
		t.Fatalf("narrow channel %d not slower than wide %d", rn.MemCycles, rw.MemCycles)
	}
}

func TestHandleVectors(t *testing.T) {
	e, err := NewEngine(Config{VectorHandleCycles: 10, VectorLatencyCycles: 100, Cores: 4, ClockMHz: 200, DRAMClockMHz: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.HandleVectors(0); got != 0 {
		t.Fatalf("HandleVectors(0) = %d", got)
	}
	if got := e.HandleVectors(4); got != 110 {
		t.Fatalf("HandleVectors(4) = %d, want 110 (latency + one throughput slot)", got)
	}
	if got := e.HandleVectors(5); got != 120 {
		t.Fatalf("HandleVectors(5) = %d, want 120 (one core does two)", got)
	}
}

func TestDRAMToHost(t *testing.T) {
	cfg := Default()
	if got := cfg.DRAMToHost(12); got != 2 {
		t.Fatalf("DRAMToHost(12) = %d", got)
	}
	if got := cfg.DRAMToHost(13); got != 3 {
		t.Fatalf("DRAMToHost(13) = %d (round up)", got)
	}
}

func TestInferenceSeconds(t *testing.T) {
	cfg := Default()
	got := cfg.InferenceSeconds(1e-4)
	want := 1e-4 + cfg.FCSeconds + cfg.OtherSeconds
	if got != want {
		t.Fatalf("InferenceSeconds = %v, want %v", got, want)
	}
}
