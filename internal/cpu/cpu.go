// Package cpu models the processor-centric baseline of Fig. 2a — every
// embedding vector travels over the memory channels to the host, which
// applies the pooling reductions itself — plus the host-side cost model the
// other engines share: the per-vector processing cost of a gathered vector
// on a CPU and the fixed fully-connected-layer latency of the end-to-end
// recommendation model (Fig. 12).
//
// The CPU's arithmetic is never the bottleneck for embedding pooling; the
// cost of handling a gathered vector on the host is dominated by moving it
// through the cache hierarchy. The model therefore charges a per-vector
// handling cost on one of a small number of cores, plus
// the channel-bus occupancy already charged by the DRAM model for
// host-destined reads.
package cpu

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fafnir"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Config parameterizes the host model. Cycle costs are expressed in the
// 200 MHz PE clock domain so all engines report comparable numbers.
type Config struct {
	// VectorHandleCycles is the steady-state (throughput) cost per gathered
	// vector once the host pipeline is primed: moving 512 B through the
	// cache hierarchy plus the SIMD reduction. 8 cycles at 200 MHz is 40 ns.
	VectorHandleCycles sim.Cycle
	// VectorLatencyCycles is the one-time pipeline latency of getting the
	// first vector through the host (cache-miss round trip and combine).
	// It dominates single-query latency; throughput dominates batches.
	VectorLatencyCycles sim.Cycle
	// Cores is the number of cores reducing vectors in parallel.
	Cores int
	// FCSeconds is the fixed fully-connected-layer latency of the
	// recommendation model (the paper uses 0.5 ms).
	FCSeconds float64
	// OtherSeconds is the remaining inference time outside embedding
	// lookup and FC layers.
	OtherSeconds float64
	// ClockMHz is the reporting clock (the PE clock, 200 MHz).
	ClockMHz float64
	// DRAMClockMHz converts DRAM completion times into the reporting clock.
	DRAMClockMHz float64
}

// Default returns the calibration used throughout the experiments.
func Default() Config {
	return Config{
		VectorHandleCycles:  8,
		VectorLatencyCycles: 120,
		Cores:               4,
		FCSeconds:           0.5e-3,
		OtherSeconds:        0.1e-3,
		ClockMHz:            200,
		DRAMClockMHz:        1200,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.VectorHandleCycles == 0:
		return fmt.Errorf("cpu: VectorHandleCycles must be positive")
	case c.Cores <= 0:
		return fmt.Errorf("cpu: Cores must be positive, got %d", c.Cores)
	case c.ClockMHz <= 0:
		return fmt.Errorf("cpu: ClockMHz must be positive, got %v", c.ClockMHz)
	case c.DRAMClockMHz <= 0:
		return fmt.Errorf("cpu: DRAMClockMHz must be positive, got %v", c.DRAMClockMHz)
	}
	return nil
}

// DRAMToHost converts memory-clock cycles to reporting-clock cycles,
// rounding up.
func (c Config) DRAMToHost(d sim.Cycle) sim.Cycle {
	ratio := c.DRAMClockMHz / c.ClockMHz
	return sim.Cycle((float64(d) + ratio - 1) / ratio)
}

// Result is the outcome of a baseline batch lookup.
type Result struct {
	// Outputs holds the reduced vector per query.
	Outputs []tensor.Vector
	// MemCycles is when the last host-bound read completed (reporting clock).
	MemCycles sim.Cycle
	// ComputeCycles is the host-side reduction time after the reads.
	ComputeCycles sim.Cycle
	// TotalCycles is the batch latency.
	TotalCycles sim.Cycle
	// MemoryReads counts DRAM vector reads (no dedup in the baseline).
	MemoryReads int
	// BytesToHost is the channel traffic.
	BytesToHost uint64
}

// Engine is the no-NDP baseline.
type Engine struct {
	cfg Config
}

// NewEngine builds the baseline engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// TimedLookup gathers every query's vectors across the channels to the host
// and reduces them there. All n*q vectors are read (no dedup, no NDP), every
// read reserves the channel bus, and the host handles each arriving vector
// at VectorHandleCycles on one of Cores cores.
func (e *Engine) TimedLookup(store *embedding.Store, layout fafnir.Placement, mem *dram.System, b embedding.Batch) (*Result, error) {
	outputs, err := b.Golden(store)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: outputs}

	var memDone sim.Cycle
	vectors := 0
	for _, q := range b.Queries {
		for _, idx := range q.Indices {
			done := mem.Read(0, layout.Addr(idx), layout.VectorBytes(), dram.DestHost)
			memDone = sim.Max(memDone, done)
			vectors++
		}
	}
	res.MemoryReads = vectors
	res.BytesToHost = uint64(vectors) * uint64(layout.VectorBytes())
	res.MemCycles = e.cfg.DRAMToHost(memDone)

	res.ComputeCycles = e.HandleVectors(vectors)
	res.TotalCycles = res.MemCycles + res.ComputeCycles
	return res, nil
}

// HandleVectors reports the host time to process n gathered vectors: the
// one-time pipeline latency plus the per-vector throughput cost spread over
// the configured cores.
func (e *Engine) HandleVectors(n int) sim.Cycle {
	if n <= 0 {
		return 0
	}
	perCore := (n + e.cfg.Cores - 1) / e.cfg.Cores
	return e.cfg.VectorLatencyCycles + sim.Cycle(perCore)*e.cfg.VectorHandleCycles
}

// InferenceSeconds composes an end-to-end recommendation inference latency
// (Fig. 12): the embedding lookup time plus the fixed FC and other stages.
func (c Config) InferenceSeconds(lookupSeconds float64) float64 {
	return lookupSeconds + c.FCSeconds + c.OtherSeconds
}
