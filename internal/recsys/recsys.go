// Package recsys assembles the complete recommendation-inference service
// the paper motivates: embedding lookup on the Fafnir tree, DLRM-style
// scoring on the host, and a dispatcher that coalesces incoming requests
// into hardware batches (or serves them one at a time in interactive mode
// when latency matters more than throughput).
package recsys

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/mlp"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Mode selects how the dispatcher drives the tree.
type Mode uint8

const (
	// Batched coalesces up to BatchWindow requests into one hardware batch
	// (highest throughput; the paper's concurrent batch processing).
	Batched Mode = iota
	// Interactive serves one query at a time with the comparison-free PE
	// path (lowest single-request latency; Section IV-C).
	Interactive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Interactive {
		return "interactive"
	}
	return "batched"
}

// Config shapes the service.
type Config struct {
	// SlotsPerRequest is the number of pooled embedding slots each request
	// consumes (sparse-feature groups in DLRM terms).
	SlotsPerRequest int
	// IndicesPerSlot is the pooling factor of each slot's lookup.
	IndicesPerSlot int
	// BatchWindow is the maximum number of requests coalesced into one
	// hardware batch in Batched mode.
	BatchWindow int
	// Hidden lists the top-model hidden-layer widths.
	Hidden []int
	// HostGFLOPS is the host throughput used to charge the top model.
	HostGFLOPS float64
	// Mode selects the dispatch policy.
	Mode Mode
	// RowsPerTable sizes the 32 embedding tables.
	RowsPerTable int
	// ZipfS skews the synthetic request generator.
	ZipfS float64
	// Seed fixes table contents, model weights, and request generation.
	Seed int64
}

// Default returns a service shaped like the paper's evaluation system.
func Default() Config {
	return Config{
		SlotsPerRequest: 4,
		IndicesPerSlot:  16,
		BatchWindow:     8,
		Hidden:          []int{256, 64},
		HostGFLOPS:      10,
		Mode:            Batched,
		RowsPerTable:    1 << 17,
		ZipfS:           1.3,
		Seed:            1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.SlotsPerRequest <= 0:
		return fmt.Errorf("recsys: SlotsPerRequest must be positive, got %d", c.SlotsPerRequest)
	case c.IndicesPerSlot <= 0:
		return fmt.Errorf("recsys: IndicesPerSlot must be positive, got %d", c.IndicesPerSlot)
	case c.BatchWindow <= 0:
		return fmt.Errorf("recsys: BatchWindow must be positive, got %d", c.BatchWindow)
	case c.HostGFLOPS <= 0:
		return fmt.Errorf("recsys: HostGFLOPS must be positive, got %v", c.HostGFLOPS)
	case c.RowsPerTable <= 0:
		return fmt.Errorf("recsys: RowsPerTable must be positive, got %d", c.RowsPerTable)
	case c.Seed == 0:
		return fmt.Errorf("recsys: Seed must be non-zero")
	}
	return nil
}

// Request is one inference request: the indices each slot pools.
type Request struct {
	Slots []embedding.Query
}

// Response is the scored outcome of one request.
type Response struct {
	// Score is the click probability from the top model.
	Score float32
	// LookupCycles and ModelCycles split the request's latency estimate.
	LookupCycles, ModelCycles sim.Cycle
}

// ServeStats aggregates one Serve call.
type ServeStats struct {
	Requests     int
	HWBatches    int
	MemoryReads  int
	TotalCycles  sim.Cycle
	AvgCyclesPer float64
}

// Service is a ready recommendation-inference pipeline. Not safe for
// concurrent use (the simulators are single-threaded by design).
type Service struct {
	cfg    Config
	layout *memmap.Layout
	store  *embedding.Store
	engine *core.Engine
	mem    *dram.System
	model  *mlp.Recommender
	gen    *embedding.Generator
}

// NewService builds the pipeline over the paper's 32-rank DDR4 system.
func NewService(cfg Config) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, cfg.RowsPerTable)
	store := embedding.MustStore(layout.TotalRows(), 128, uint64(cfg.Seed))

	ecfg := core.Default()
	ecfg.BatchCapacity = cfg.BatchWindow * cfg.SlotsPerRequest
	engine, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	model, err := mlp.NewRecommender(128, cfg.SlotsPerRequest, cfg.Hidden, uint64(cfg.Seed)+7)
	if err != nil {
		return nil, err
	}
	gcfg := embedding.GeneratorConfig{
		NumQueries: cfg.SlotsPerRequest,
		QuerySize:  cfg.IndicesPerSlot,
		Rows:       layout.TotalRows(),
		Seed:       cfg.Seed,
	}
	if cfg.ZipfS > 1 {
		gcfg.Dist = embedding.Zipf
		gcfg.ZipfS = cfg.ZipfS
	}
	gen, err := embedding.NewGenerator(gcfg)
	if err != nil {
		return nil, err
	}
	return &Service{cfg: cfg, layout: layout, store: store, engine: engine,
		mem: dram.MustSystem(mcfg), model: model, gen: gen}, nil
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// GenerateRequests draws n deterministic synthetic requests.
func (s *Service) GenerateRequests(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		slots := make([]embedding.Query, s.cfg.SlotsPerRequest)
		for j := range slots {
			slots[j] = s.gen.Query()
		}
		out[i] = Request{Slots: slots}
	}
	return out
}

// Serve runs the requests through the pipeline and returns one response per
// request plus aggregate statistics.
func (s *Service) Serve(requests []Request) ([]Response, *ServeStats, error) {
	if len(requests) == 0 {
		return nil, nil, fmt.Errorf("recsys: no requests")
	}
	for ri, r := range requests {
		if len(r.Slots) != s.cfg.SlotsPerRequest {
			return nil, nil, fmt.Errorf("recsys: request %d has %d slots, want %d",
				ri, len(r.Slots), s.cfg.SlotsPerRequest)
		}
	}
	stats := &ServeStats{Requests: len(requests)}
	responses := make([]Response, len(requests))

	window := s.cfg.BatchWindow
	if s.cfg.Mode == Interactive {
		window = 1
	}
	for start := 0; start < len(requests); start += window {
		end := start + window
		if end > len(requests) {
			end = len(requests)
		}
		group := requests[start:end]

		b := embedding.Batch{Op: tensor.OpSum}
		for _, r := range group {
			b.Queries = append(b.Queries, r.Slots...)
		}

		var pooled []tensor.Vector
		var lookupCycles sim.Cycle
		switch s.cfg.Mode {
		case Interactive:
			res, err := s.engine.InteractiveLookup(s.store, s.layout, s.mem, b)
			if err != nil {
				return nil, nil, err
			}
			pooled = res.Outputs
			lookupCycles = res.TotalCycles
			stats.MemoryReads += res.MemoryReads
		default:
			res, err := s.engine.TimedLookup(s.store, s.layout, s.mem, b, true)
			if err != nil {
				return nil, nil, err
			}
			pooled = res.Outputs
			lookupCycles = res.TotalCycles
			stats.MemoryReads += res.MemoryReads
		}
		stats.HWBatches++

		// Score each request in the group; lookup cycles are shared across
		// the coalesced requests, the model runs per request.
		perReq := lookupCycles / sim.Cycle(len(group))
		if perReq == 0 {
			perReq = 1
		}
		for gi := range group {
			slots := pooled[gi*s.cfg.SlotsPerRequest : (gi+1)*s.cfg.SlotsPerRequest]
			scaled := make([]tensor.Vector, len(slots))
			for i, v := range slots {
				// Normalize pooled magnitudes into the model's range.
				scaled[i] = v.Clone().Scale(1 / float32(4*s.cfg.IndicesPerSlot))
			}
			score, err := s.model.Score(scaled)
			if err != nil {
				return nil, nil, err
			}
			responses[start+gi] = Response{
				Score:        score,
				LookupCycles: perReq,
				ModelCycles:  s.model.HostLatency(s.cfg.HostGFLOPS),
			}
		}
		stats.TotalCycles += lookupCycles + s.model.HostLatency(s.cfg.HostGFLOPS)*sim.Cycle(len(group))
	}
	stats.AvgCyclesPer = float64(stats.TotalCycles) / float64(len(requests))
	return responses, stats, nil
}
