package recsys

import (
	"testing"
)

func smallConfig() Config {
	cfg := Default()
	cfg.RowsPerTable = 1024
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.SlotsPerRequest = 0 },
		func(c *Config) { c.IndicesPerSlot = 0 },
		func(c *Config) { c.BatchWindow = 0 },
		func(c *Config) { c.HostGFLOPS = 0 },
		func(c *Config) { c.RowsPerTable = 0 },
		func(c *Config) { c.Seed = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewService(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestServeBatched(t *testing.T) {
	svc, err := NewService(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := svc.GenerateRequests(20)
	resp, stats, err := svc.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 20 {
		t.Fatalf("responses = %d", len(resp))
	}
	for i, r := range resp {
		if r.Score <= 0 || r.Score >= 1 {
			t.Fatalf("response %d score %v outside (0,1)", i, r.Score)
		}
		if r.LookupCycles == 0 || r.ModelCycles == 0 {
			t.Fatalf("response %d missing latency: %+v", i, r)
		}
	}
	// 20 requests at window 8 -> 3 hardware batches.
	if stats.HWBatches != 3 {
		t.Fatalf("HWBatches = %d, want 3", stats.HWBatches)
	}
	if stats.TotalCycles == 0 || stats.AvgCyclesPer == 0 || stats.MemoryReads == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}

func TestServeInteractiveMode(t *testing.T) {
	cfg := smallConfig()
	cfg.Mode = Interactive
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := svc.GenerateRequests(4)
	resp, stats, err := svc.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HWBatches != 4 {
		t.Fatalf("interactive mode batched: %d", stats.HWBatches)
	}
	for _, r := range resp {
		if r.Score <= 0 || r.Score >= 1 {
			t.Fatalf("score %v", r.Score)
		}
	}
}

func TestBatchingBeatsInteractiveThroughput(t *testing.T) {
	mk := func(mode Mode) float64 {
		cfg := smallConfig()
		cfg.Mode = mode
		svc, err := NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := svc.Serve(svc.GenerateRequests(16))
		if err != nil {
			t.Fatal(err)
		}
		return stats.AvgCyclesPer
	}
	batched := mk(Batched)
	interactive := mk(Interactive)
	if batched >= interactive {
		t.Fatalf("batched %v not below interactive %v per request", batched, interactive)
	}
}

func TestServeDeterministic(t *testing.T) {
	run := func() []Response {
		svc, err := NewService(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		resp, _, err := svc.Serve(svc.GenerateRequests(8))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("nondeterministic score at %d: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	svc, err := NewService(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Serve(nil); err == nil {
		t.Fatal("empty request list accepted")
	}
	bad := svc.GenerateRequests(1)
	bad[0].Slots = bad[0].Slots[:1]
	if _, _, err := svc.Serve(bad); err == nil {
		t.Fatal("short request accepted")
	}
}

func TestModeString(t *testing.T) {
	if Batched.String() != "batched" || Interactive.String() != "interactive" {
		t.Fatal("mode names wrong")
	}
}

func TestScoresVaryAcrossRequests(t *testing.T) {
	svc, err := NewService(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := svc.Serve(svc.GenerateRequests(16))
	if err != nil {
		t.Fatal(err)
	}
	first := resp[0].Score
	varied := false
	for _, r := range resp[1:] {
		if r.Score != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("all scores identical; model insensitive to lookups")
	}
}
