package mlp

import (
	"math"
	"testing"

	"fafnir/internal/tensor"
)

func TestActivationString(t *testing.T) {
	if Identity.String() != "identity" || ReLU.String() != "relu" || Sigmoid.String() != "sigmoid" {
		t.Fatal("activation names wrong")
	}
	if Activation(9).String() != "Activation(9)" {
		t.Fatal("unknown activation name wrong")
	}
}

func TestDenseForwardHandComputed(t *testing.T) {
	d := &Dense{In: 2, Out: 1, Act: Identity, W: []float32{2, 3}, B: []float32{1}}
	y, err := d.Forward(tensor.Vector{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 321 {
		t.Fatalf("y = %v, want 321", y[0])
	}
}

func TestDenseReLU(t *testing.T) {
	d := &Dense{In: 1, Out: 2, Act: ReLU, W: []float32{1, -1}, B: []float32{0, 0}}
	y, err := d.Forward(tensor.Vector{5})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 5 || y[1] != 0 {
		t.Fatalf("relu output %v", y)
	}
}

func TestDenseSigmoidRange(t *testing.T) {
	d := NewDense(8, 4, Sigmoid, 1)
	y, err := d.Forward(tensor.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y {
		if v <= 0 || v >= 1 {
			t.Fatalf("sigmoid output %v outside (0,1)", v)
		}
	}
}

func TestDenseDimensionError(t *testing.T) {
	d := NewDense(4, 2, Identity, 1)
	if _, err := d.Forward(tensor.New(5)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape accepted")
		}
	}()
	NewDense(0, 1, Identity, 1)
}

func TestDenseDeterministic(t *testing.T) {
	a := NewDense(8, 8, ReLU, 42)
	b := NewDense(8, 8, ReLU, 42)
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed, different weights")
		}
	}
	c := NewDense(8, 8, ReLU, 43)
	same := true
	for i := range a.W {
		if a.W[i] != c.W[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds, identical weights")
	}
}

func TestModelForwardAndFLOPs(t *testing.T) {
	m, err := NewModel([]int{16, 8, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.FLOPs(); got != 2*16*8+2*8*1 {
		t.Fatalf("FLOPs = %d", got)
	}
	x := tensor.New(16)
	for i := range x {
		x[i] = float32(i) / 16
	}
	y, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] <= 0 || y[0] >= 1 {
		t.Fatalf("model output %v", y)
	}
	// Hidden layers ReLU, output Sigmoid.
	if m.Layers[0].Act != ReLU || m.Layers[1].Act != Sigmoid {
		t.Fatal("activation placement wrong")
	}
}

func TestNewModelErrors(t *testing.T) {
	if _, err := NewModel([]int{4}, 1); err == nil {
		t.Fatal("single-width model accepted")
	}
}

func TestHostLatency(t *testing.T) {
	m, err := NewModel([]int{100, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 20k FLOPs at 1 GFLOP/s = 20 us = 4000 cycles at 200 MHz.
	if got := m.HostLatency(1); got != 4000 {
		t.Fatalf("HostLatency = %d, want 4000", got)
	}
	if m.HostLatency(0) != 0 {
		t.Fatal("zero-throughput latency should be 0")
	}
}

func TestRecommender(t *testing.T) {
	r, err := NewRecommender(16, 4, []int{32, 16}, 9)
	if err != nil {
		t.Fatal(err)
	}
	pooled := make([]tensor.Vector, 4)
	for i := range pooled {
		pooled[i] = tensor.New(16)
		for j := range pooled[i] {
			pooled[i][j] = float32((i+1)*(j+1)) / 32
		}
	}
	score, err := r.Score(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 || score >= 1 {
		t.Fatalf("score %v outside (0,1)", score)
	}
	// Deterministic.
	score2, err := r.Score(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if score != score2 {
		t.Fatal("nondeterministic score")
	}
	if r.FLOPs() <= 0 || r.HostLatency(10) == 0 {
		t.Fatal("cost model empty")
	}
}

func TestRecommenderErrors(t *testing.T) {
	if _, err := NewRecommender(0, 4, []int{8}, 1); err == nil {
		t.Fatal("bad dim accepted")
	}
	r, err := NewRecommender(8, 2, []int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Score([]tensor.Vector{tensor.New(8)}); err == nil {
		t.Fatal("wrong slot count accepted")
	}
	if _, err := r.Score([]tensor.Vector{tensor.New(8), tensor.New(4)}); err == nil {
		t.Fatal("wrong vector dim accepted")
	}
}

func TestRecommenderSensitivity(t *testing.T) {
	// Different inputs must (generically) give different scores.
	r, err := NewRecommender(8, 2, []int{16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := []tensor.Vector{tensor.New(8), tensor.New(8)}
	for i := range a[0] {
		a[0][i] = 1
		a[1][i] = -1
	}
	b := []tensor.Vector{tensor.New(8), tensor.New(8)}
	for i := range b[0] {
		b[0][i] = 0.5
		b[1][i] = 2
	}
	sa, err := r.Score(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(sa-sb)) < 1e-9 {
		t.Fatalf("scores insensitive to inputs: %v vs %v", sa, sb)
	}
}
