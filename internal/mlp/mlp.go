// Package mlp implements the neural-network half of a recommendation system
// — the part that consumes the pooled embedding vectors FAFNIR produces.
// The paper describes recommendation models as "(i) embedding tables ...
// followed by (ii) neural networks, including fully connected and/or
// rectified-linear-unit layers"; this package provides those layers with
// deterministic synthetic weights, a DLRM-style top model (pooled
// embeddings -> feature interaction -> MLP -> click probability), and an
// analytic host-latency estimate so the end-to-end examples compute real
// scores instead of treating the FC stage as an opaque constant.
package mlp

import (
	"fmt"
	"math"

	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Activation selects a layer's nonlinearity.
type Activation uint8

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// ReLU clamps negatives to zero.
	ReLU
	// Sigmoid squashes into (0, 1); the output layer of a click predictor.
	Sigmoid
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", uint8(a))
	}
}

func (a Activation) apply(x float32) float32 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(x))))
	default:
		return x
	}
}

// Dense is one fully-connected layer: y = act(W x + b).
type Dense struct {
	In, Out int
	Act     Activation
	// W is row-major [Out][In]; B has Out elements.
	W []float32
	B []float32
}

// NewDense builds a layer with deterministic pseudo-random weights drawn
// from a seeded hash, scaled Xavier-style by 1/sqrt(In).
func NewDense(in, out int, act Activation, seed uint64) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("mlp: bad layer shape %dx%d", in, out))
	}
	d := &Dense{In: in, Out: out, Act: act, W: make([]float32, in*out), B: make([]float32, out)}
	scale := float32(1 / math.Sqrt(float64(in)))
	for i := range d.W {
		d.W[i] = synth(seed, uint64(i)) * scale
	}
	for i := range d.B {
		d.B[i] = synth(seed^0xabcd, uint64(i)) * 0.1
	}
	return d
}

// synth returns a deterministic value in [-1, 1).
func synth(seed, i uint64) float32 {
	x := seed ^ i*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float32(int64(x%2001)-1000) / 1000
}

// Forward applies the layer. It returns an error on dimension mismatch.
func (d *Dense) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != d.In {
		return nil, fmt.Errorf("mlp: layer expects %d inputs, got %d", d.In, len(x))
	}
	y := tensor.New(d.Out)
	for o := 0; o < d.Out; o++ {
		acc := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, w := range row {
			acc += w * x[i]
		}
		y[o] = d.Act.apply(acc)
	}
	return y, nil
}

// FLOPs reports the layer's multiply-accumulate count.
func (d *Dense) FLOPs() int { return 2 * d.In * d.Out }

// Model is a stack of dense layers.
type Model struct {
	Layers []*Dense
}

// NewModel builds an MLP through the given layer widths, ReLU between
// hidden layers and Sigmoid at the output.
func NewModel(widths []int, seed uint64) (*Model, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("mlp: need at least input and output widths, got %v", widths)
	}
	m := &Model{}
	for i := 0; i+1 < len(widths); i++ {
		act := ReLU
		if i+2 == len(widths) {
			act = Sigmoid
		}
		m.Layers = append(m.Layers, NewDense(widths[i], widths[i+1], act, seed+uint64(i)*1315423911))
	}
	return m, nil
}

// Forward runs the stack.
func (m *Model) Forward(x tensor.Vector) (tensor.Vector, error) {
	cur := x
	for li, l := range m.Layers {
		var err error
		cur, err = l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("mlp: layer %d: %w", li, err)
		}
	}
	return cur, nil
}

// FLOPs reports the whole model's multiply-accumulate count.
func (m *Model) FLOPs() int {
	n := 0
	for _, l := range m.Layers {
		n += l.FLOPs()
	}
	return n
}

// HostLatency estimates the model's inference time on the host at the given
// sustained GFLOP/s, expressed in cycles of the 200 MHz reporting clock so
// it composes with the lookup engines' results.
func (m *Model) HostLatency(gflops float64) sim.Cycle {
	if gflops <= 0 {
		return 0
	}
	seconds := float64(m.FLOPs()) / (gflops * 1e9)
	return sim.Cycle(seconds * 200e6)
}

// Recommender is a DLRM-style top model: the pooled embedding vectors of
// one inference are combined by pairwise dot-product feature interaction,
// concatenated with the first vector, and scored by an MLP.
type Recommender struct {
	// EmbeddingDim is the pooled-vector width.
	EmbeddingDim int
	// Slots is the number of pooled vectors per inference.
	Slots int
	top   *Model
}

// NewRecommender builds the top model for the given embedding geometry.
func NewRecommender(embeddingDim, slots int, hidden []int, seed uint64) (*Recommender, error) {
	if embeddingDim <= 0 || slots <= 0 {
		return nil, fmt.Errorf("mlp: bad recommender shape dim=%d slots=%d", embeddingDim, slots)
	}
	interactions := slots * (slots - 1) / 2
	widths := append([]int{embeddingDim + interactions}, hidden...)
	widths = append(widths, 1)
	top, err := NewModel(widths, seed)
	if err != nil {
		return nil, err
	}
	return &Recommender{EmbeddingDim: embeddingDim, Slots: slots, top: top}, nil
}

// Score computes the click probability for one inference's pooled vectors.
func (r *Recommender) Score(pooled []tensor.Vector) (float32, error) {
	if len(pooled) != r.Slots {
		return 0, fmt.Errorf("mlp: recommender expects %d pooled vectors, got %d", r.Slots, len(pooled))
	}
	for i, v := range pooled {
		if v.Dim() != r.EmbeddingDim {
			return 0, fmt.Errorf("mlp: pooled vector %d has dim %d, want %d", i, v.Dim(), r.EmbeddingDim)
		}
	}
	// Pairwise dot-product interactions (DLRM's feature interaction).
	features := make(tensor.Vector, 0, r.EmbeddingDim+r.Slots*(r.Slots-1)/2)
	features = append(features, pooled[0]...)
	for i := 0; i < len(pooled); i++ {
		for j := i + 1; j < len(pooled); j++ {
			dot, err := tensor.Dot(pooled[i], pooled[j])
			if err != nil {
				return 0, err
			}
			// Normalize so deep sums stay in sigmoid's useful range.
			features = append(features, float32(dot)/float32(r.EmbeddingDim))
		}
	}
	out, err := r.top.Forward(features)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// FLOPs reports the top model's cost per inference.
func (r *Recommender) FLOPs() int {
	interactions := r.Slots * (r.Slots - 1) / 2
	return r.top.FLOPs() + 2*r.EmbeddingDim*interactions
}

// HostLatency estimates the top model's host time per inference.
func (r *Recommender) HostLatency(gflops float64) sim.Cycle {
	if gflops <= 0 {
		return 0
	}
	seconds := float64(r.FLOPs()) / (gflops * 1e9)
	return sim.Cycle(seconds * 200e6)
}
