// Package sparse provides the sparse-matrix substrate for the SpMV
// experiments: the LIL (list-of-lists) compression format the paper
// recommends for streaming (Section IV-D), CSR and COO for interchange,
// deterministic synthetic matrix generators standing in for the paper's
// scientific and graph workloads, and a reference SpMV implementation.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"fafnir/internal/tensor"
)

// Coord is one non-zero element in coordinate form.
type Coord struct {
	Row, Col int
	Val      float32
}

// COO is an unordered coordinate-format matrix, the interchange format the
// generators produce.
type COO struct {
	Rows, Cols int
	Entries    []Coord
}

// Validate reports a descriptive error when entries fall outside the shape
// or coordinates repeat.
func (m *COO) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("sparse: bad shape %dx%d", m.Rows, m.Cols)
	}
	seen := make(map[[2]int]bool, len(m.Entries))
	for _, e := range m.Entries {
		if e.Row < 0 || e.Row >= m.Rows || e.Col < 0 || e.Col >= m.Cols {
			return fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, m.Rows, m.Cols)
		}
		key := [2]int{e.Row, e.Col}
		if seen[key] {
			return fmt.Errorf("sparse: duplicate entry (%d,%d)", e.Row, e.Col)
		}
		seen[key] = true
	}
	return nil
}

// NNZ reports the number of non-zero entries.
func (m *COO) NNZ() int { return len(m.Entries) }

// LIL is the list-of-lists format of Section IV-D: the matrix is compressed
// along rows — each row stores its non-zero column indices and values —
// leaving the column dimension uncompressed so large matrices split cleanly
// into column chunks for parallel streaming.
type LIL struct {
	Rows, Cols int
	// ColIdx[r] lists the column indices of row r's non-zeros, ascending.
	ColIdx [][]int32
	// Vals[r] lists the matching values.
	Vals [][]float32
}

// NewLIL returns an empty matrix of the given shape.
func NewLIL(rows, cols int) *LIL {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: bad shape %dx%d", rows, cols))
	}
	return &LIL{
		Rows:   rows,
		Cols:   cols,
		ColIdx: make([][]int32, rows),
		Vals:   make([][]float32, rows),
	}
}

// FromCOO builds a LIL matrix from coordinates, sorting each row's entries
// by column.
func FromCOO(m *COO) (*LIL, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	l := NewLIL(m.Rows, m.Cols)
	for _, e := range m.Entries {
		l.ColIdx[e.Row] = append(l.ColIdx[e.Row], int32(e.Col))
		l.Vals[e.Row] = append(l.Vals[e.Row], e.Val)
	}
	for r := range l.ColIdx {
		cols, vals := l.ColIdx[r], l.Vals[r]
		order := make([]int, len(cols))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return cols[order[i]] < cols[order[j]] })
		sc := make([]int32, len(cols))
		sv := make([]float32, len(vals))
		for i, o := range order {
			sc[i], sv[i] = cols[o], vals[o]
		}
		l.ColIdx[r], l.Vals[r] = sc, sv
	}
	return l, nil
}

// NNZ reports the number of non-zero entries.
func (l *LIL) NNZ() int {
	n := 0
	for _, r := range l.ColIdx {
		n += len(r)
	}
	return n
}

// Density reports NNZ / (Rows*Cols).
func (l *LIL) Density() float64 {
	return float64(l.NNZ()) / (float64(l.Rows) * float64(l.Cols))
}

// BytesStreamed reports the compressed size streamed from memory: for SpMV
// both data and indices stream through the tree (Table II), so each
// non-zero costs a value plus a column index.
func (l *LIL) BytesStreamed() int {
	return l.NNZ() * (4 + 4)
}

// ColumnChunk extracts the sub-matrix of columns [lo, hi) as a new LIL with
// original row numbering and column indices rebased to lo. It implements the
// splitting "through their non-compressed dimension" used to fit large
// matrices into the Fafnir tree (Fig. 8).
func (l *LIL) ColumnChunk(lo, hi int) *LIL {
	if lo < 0 || hi > l.Cols || lo >= hi {
		panic(fmt.Sprintf("sparse: bad chunk [%d,%d) of %d cols", lo, hi, l.Cols))
	}
	c := NewLIL(l.Rows, hi-lo)
	for r := range l.ColIdx {
		cols := l.ColIdx[r]
		// Rows are sorted by column: binary-search the window.
		start := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(lo) })
		end := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(hi) })
		if start == end {
			continue
		}
		c.ColIdx[r] = make([]int32, end-start)
		c.Vals[r] = make([]float32, end-start)
		for i := start; i < end; i++ {
			c.ColIdx[r][i-start] = cols[i] - int32(lo)
			c.Vals[r][i-start] = l.Vals[r][i]
		}
	}
	return c
}

// ToCSR converts to compressed-sparse-row form.
func (l *LIL) ToCSR() *CSR {
	csr := &CSR{
		Rows:   l.Rows,
		Cols:   l.Cols,
		RowPtr: make([]int, l.Rows+1),
	}
	nnz := l.NNZ()
	csr.ColIdx = make([]int32, 0, nnz)
	csr.Vals = make([]float32, 0, nnz)
	for r := 0; r < l.Rows; r++ {
		csr.RowPtr[r] = len(csr.ColIdx)
		csr.ColIdx = append(csr.ColIdx, l.ColIdx[r]...)
		csr.Vals = append(csr.Vals, l.Vals[r]...)
	}
	csr.RowPtr[l.Rows] = len(csr.ColIdx)
	return csr
}

// CSR is the compressed-sparse-row format used by the reference SpMV.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int32
	Vals       []float32
}

// NNZ reports the number of non-zero entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// MulVec computes y = A*x, the reference SpMV all engines are validated
// against.
func (m *CSR) MulVec(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("sparse: vector of %d elements against %d columns", len(x), m.Cols)
	}
	y := tensor.New(m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float32
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			acc += m.Vals[i] * x[m.ColIdx[i]]
		}
		y[r] = acc
	}
	return y, nil
}

// MulVecLIL computes y = A*x directly from the LIL form.
func (l *LIL) MulVec(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != l.Cols {
		return nil, fmt.Errorf("sparse: vector of %d elements against %d columns", len(x), l.Cols)
	}
	y := tensor.New(l.Rows)
	for r := 0; r < l.Rows; r++ {
		var acc float32
		for i, c := range l.ColIdx[r] {
			acc += l.Vals[r][i] * x[c]
		}
		y[r] = acc
	}
	return y, nil
}

// smallVal returns a deterministic small integer value so float32 sums stay
// exact in tests.
func smallVal(rng *rand.Rand) float32 {
	return float32(rng.Intn(9) - 4)
}

// RandomUniform generates a matrix with each entry present independently at
// the given density (clamped to produce at least one entry), deterministic
// in seed.
func RandomUniform(rows, cols int, density float64, seed int64) *LIL {
	rng := rand.New(rand.NewSource(seed))
	target := int(density * float64(rows) * float64(cols))
	if target < 1 {
		target = 1
	}
	seen := make(map[[2]int]bool, target)
	coo := &COO{Rows: rows, Cols: cols}
	for len(coo.Entries) < target {
		r, c := rng.Intn(rows), rng.Intn(cols)
		if seen[[2]int{r, c}] {
			continue
		}
		seen[[2]int{r, c}] = true
		v := smallVal(rng)
		if v == 0 {
			v = 1
		}
		coo.Entries = append(coo.Entries, Coord{Row: r, Col: c, Val: v})
	}
	l, err := FromCOO(coo)
	if err != nil {
		panic(err) // generator produces valid coordinates by construction
	}
	return l
}

// PowerLawGraph generates the adjacency matrix of a scale-free graph via
// preferential attachment (each new vertex attaches to edgesPerNode earlier
// vertices with probability proportional to their degree), a stand-in for
// the paper's graph workloads.
func PowerLawGraph(nodes, edgesPerNode int, seed int64) *LIL {
	if nodes < 2 || edgesPerNode < 1 {
		panic(fmt.Sprintf("sparse: bad graph shape nodes=%d edges=%d", nodes, edgesPerNode))
	}
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: nodes, Cols: nodes}
	seen := make(map[[2]int]bool)
	// Degree-proportional sampling via a repeated-endpoints list.
	var endpoints []int
	add := func(u, v int) {
		if u == v || seen[[2]int{u, v}] {
			return
		}
		seen[[2]int{u, v}] = true
		coo.Entries = append(coo.Entries, Coord{Row: u, Col: v, Val: 1})
		endpoints = append(endpoints, u, v)
	}
	add(0, 1)
	add(1, 0)
	for v := 2; v < nodes; v++ {
		for e := 0; e < edgesPerNode; e++ {
			var u int
			if len(endpoints) > 0 && rng.Float64() < 0.9 {
				u = endpoints[rng.Intn(len(endpoints))]
			} else {
				u = rng.Intn(v)
			}
			if u == v {
				u = rng.Intn(v)
			}
			add(v, u)
			add(u, v)
		}
	}
	l, err := FromCOO(coo)
	if err != nil {
		panic(err)
	}
	return l
}

// Banded generates a banded matrix (half-bandwidth band on each side of the
// diagonal), the stand-in for the paper's scientific stencil and matrix-
// inversion workloads.
func Banded(n, band int, seed int64) *LIL {
	if n <= 0 || band < 0 {
		panic(fmt.Sprintf("sparse: bad banded shape n=%d band=%d", n, band))
	}
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: n, Cols: n}
	for r := 0; r < n; r++ {
		lo := r - band
		if lo < 0 {
			lo = 0
		}
		hi := r + band
		if hi >= n {
			hi = n - 1
		}
		for c := lo; c <= hi; c++ {
			v := smallVal(rng)
			if v == 0 {
				v = 1
			}
			coo.Entries = append(coo.Entries, Coord{Row: r, Col: c, Val: v})
		}
	}
	l, err := FromCOO(coo)
	if err != nil {
		panic(err)
	}
	return l
}

// DenseVector builds a deterministic dense operand vector of length n with
// small integer values.
func DenseVector(n int, seed int64) tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n)
	for i := range x {
		x[i] = smallVal(rng)
	}
	return x
}

// SymmetricDiagDominant generates a symmetric, strictly diagonally dominant
// banded matrix — positive definite by Gershgorin's theorem — the canonical
// operator of discretized differential equations and the input the iterative
// solvers in internal/solver expect.
func SymmetricDiagDominant(n, band int, seed int64) *LIL {
	if n <= 0 || band < 0 {
		panic(fmt.Sprintf("sparse: bad SPD shape n=%d band=%d", n, band))
	}
	rng := rand.New(rand.NewSource(seed))
	coo := &COO{Rows: n, Cols: n}
	offSum := make([]float32, n)
	for r := 0; r < n; r++ {
		hi := r + band
		if hi >= n {
			hi = n - 1
		}
		for c := r + 1; c <= hi; c++ {
			v := smallVal(rng)
			if v == 0 {
				v = 1
			}
			coo.Entries = append(coo.Entries, Coord{Row: r, Col: c, Val: v})
			coo.Entries = append(coo.Entries, Coord{Row: c, Col: r, Val: v})
			av := v
			if av < 0 {
				av = -av
			}
			offSum[r] += av
			offSum[c] += av
		}
	}
	for r := 0; r < n; r++ {
		coo.Entries = append(coo.Entries, Coord{Row: r, Col: r, Val: offSum[r] + 2})
	}
	l, err := FromCOO(coo)
	if err != nil {
		panic(err)
	}
	return l
}

// Diagonal extracts the main diagonal of the matrix.
func (l *LIL) Diagonal() tensor.Vector {
	d := tensor.New(l.Rows)
	for r := 0; r < l.Rows && r < l.Cols; r++ {
		for i, c := range l.ColIdx[r] {
			if int(c) == r {
				d[r] = l.Vals[r][i]
			}
		}
	}
	return d
}

// WithoutDiagonal returns a copy of the matrix with the main diagonal
// removed (the R = A - D operand of Jacobi iteration).
func (l *LIL) WithoutDiagonal() *LIL {
	out := NewLIL(l.Rows, l.Cols)
	for r := range l.ColIdx {
		for i, c := range l.ColIdx[r] {
			if int(c) == r {
				continue
			}
			out.ColIdx[r] = append(out.ColIdx[r], c)
			out.Vals[r] = append(out.Vals[r], l.Vals[r][i])
		}
	}
	return out
}
