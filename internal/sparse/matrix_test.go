package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fafnir/internal/tensor"
)

func TestCOOValidate(t *testing.T) {
	good := &COO{Rows: 2, Cols: 2, Entries: []Coord{{0, 0, 1}, {1, 1, 2}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*COO{
		{Rows: 0, Cols: 2},
		{Rows: 2, Cols: 2, Entries: []Coord{{2, 0, 1}}},
		{Rows: 2, Cols: 2, Entries: []Coord{{0, -1, 1}}},
		{Rows: 2, Cols: 2, Entries: []Coord{{0, 0, 1}, {0, 0, 2}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad COO %d accepted", i)
		}
	}
}

func TestFromCOOSortsRows(t *testing.T) {
	coo := &COO{Rows: 1, Cols: 5, Entries: []Coord{{0, 4, 4}, {0, 1, 1}, {0, 3, 3}}}
	l, err := FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	if l.ColIdx[0][0] != 1 || l.ColIdx[0][1] != 3 || l.ColIdx[0][2] != 4 {
		t.Fatalf("row not sorted: %v", l.ColIdx[0])
	}
	if l.Vals[0][0] != 1 || l.Vals[0][1] != 3 || l.Vals[0][2] != 4 {
		t.Fatalf("values not permuted with columns: %v", l.Vals[0])
	}
}

func TestFromCOORejectsInvalid(t *testing.T) {
	if _, err := FromCOO(&COO{Rows: 1, Cols: 1, Entries: []Coord{{5, 5, 1}}}); err == nil {
		t.Fatal("invalid COO accepted")
	}
}

func TestNNZAndDensity(t *testing.T) {
	l := RandomUniform(100, 100, 0.05, 1)
	if l.NNZ() != 500 {
		t.Fatalf("NNZ = %d, want 500", l.NNZ())
	}
	if l.Density() != 0.05 {
		t.Fatalf("Density = %v", l.Density())
	}
	if l.BytesStreamed() != 500*8 {
		t.Fatalf("BytesStreamed = %d", l.BytesStreamed())
	}
}

func TestColumnChunk(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 10, Entries: []Coord{
		{0, 1, 1}, {0, 5, 5}, {0, 9, 9},
		{1, 4, 4}, {1, 6, 6},
	}}
	l, err := FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	c := l.ColumnChunk(4, 8)
	if c.Cols != 4 || c.Rows != 2 {
		t.Fatalf("chunk shape %dx%d", c.Rows, c.Cols)
	}
	// Row 0 keeps only column 5 (rebased to 1); row 1 keeps 4->0 and 6->2.
	if len(c.ColIdx[0]) != 1 || c.ColIdx[0][0] != 1 || c.Vals[0][0] != 5 {
		t.Fatalf("row 0 chunk: %v %v", c.ColIdx[0], c.Vals[0])
	}
	if len(c.ColIdx[1]) != 2 || c.ColIdx[1][0] != 0 || c.ColIdx[1][1] != 2 {
		t.Fatalf("row 1 chunk: %v", c.ColIdx[1])
	}
}

func TestColumnChunkPanicsOnBadRange(t *testing.T) {
	l := RandomUniform(4, 4, 0.5, 1)
	for _, f := range []func(){
		func() { l.ColumnChunk(-1, 2) },
		func() { l.ColumnChunk(0, 5) },
		func() { l.ColumnChunk(2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad range accepted")
				}
			}()
			f()
		}()
	}
}

func TestChunksPartitionMatrix(t *testing.T) {
	l := RandomUniform(50, 97, 0.1, 3)
	total := 0
	for lo := 0; lo < l.Cols; lo += 20 {
		hi := lo + 20
		if hi > l.Cols {
			hi = l.Cols
		}
		total += l.ColumnChunk(lo, hi).NNZ()
	}
	if total != l.NNZ() {
		t.Fatalf("chunks hold %d of %d nnz", total, l.NNZ())
	}
}

func TestToCSRAndMulVecAgree(t *testing.T) {
	l := RandomUniform(64, 80, 0.1, 5)
	x := DenseVector(80, 6)
	yl, err := l.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	csr := l.ToCSR()
	if csr.NNZ() != l.NNZ() {
		t.Fatalf("CSR NNZ %d != LIL NNZ %d", csr.NNZ(), l.NNZ())
	}
	yc, err := csr.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !yl.Equal(yc) {
		t.Fatal("LIL and CSR SpMV disagree")
	}
}

func TestMulVecDimensionError(t *testing.T) {
	l := RandomUniform(4, 4, 0.5, 1)
	if _, err := l.MulVec(tensor.New(5)); err == nil {
		t.Fatal("bad operand accepted by LIL")
	}
	if _, err := l.ToCSR().MulVec(tensor.New(5)); err == nil {
		t.Fatal("bad operand accepted by CSR")
	}
}

func TestMulVecHandComputed(t *testing.T) {
	// [1 2; 0 3] * [10, 100] = [210, 300]
	coo := &COO{Rows: 2, Cols: 2, Entries: []Coord{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}}}
	l, err := FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	y, err := l.MulVec(tensor.Vector{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(tensor.Vector{210, 300}) {
		t.Fatalf("y = %v", y)
	}
}

func TestRandomUniformDeterministic(t *testing.T) {
	a := RandomUniform(32, 32, 0.1, 9)
	b := RandomUniform(32, 32, 0.1, 9)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different matrices")
	}
	for r := 0; r < 32; r++ {
		for i := range a.ColIdx[r] {
			if a.ColIdx[r][i] != b.ColIdx[r][i] || a.Vals[r][i] != b.Vals[r][i] {
				t.Fatal("same seed, different contents")
			}
		}
	}
}

func TestPowerLawGraphShape(t *testing.T) {
	g := PowerLawGraph(500, 3, 11)
	if g.Rows != 500 || g.Cols != 500 {
		t.Fatalf("shape %dx%d", g.Rows, g.Cols)
	}
	if g.NNZ() == 0 {
		t.Fatal("empty graph")
	}
	// Symmetric adjacency: every (u,v) has (v,u).
	for r := 0; r < g.Rows; r++ {
		for _, c := range g.ColIdx[r] {
			found := false
			for _, back := range g.ColIdx[c] {
				if int(back) == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) lacks reverse", r, c)
			}
		}
	}
	// Power-law-ish: max degree far above mean degree.
	maxDeg, total := 0, 0
	for r := 0; r < g.Rows; r++ {
		d := len(g.ColIdx[r])
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / float64(g.Rows)
	if float64(maxDeg) < 3*mean {
		t.Fatalf("degree distribution too flat: max %d mean %.1f", maxDeg, mean)
	}
}

func TestPowerLawGraphPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad graph shape accepted")
		}
	}()
	PowerLawGraph(1, 1, 1)
}

func TestBandedShape(t *testing.T) {
	b := Banded(10, 1, 7)
	// Tridiagonal: 3n - 2 entries.
	if b.NNZ() != 28 {
		t.Fatalf("NNZ = %d, want 28", b.NNZ())
	}
	for r := 0; r < 10; r++ {
		for _, c := range b.ColIdx[r] {
			if int(c) < r-1 || int(c) > r+1 {
				t.Fatalf("entry (%d,%d) outside band", r, c)
			}
		}
	}
}

func TestBandedPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad banded shape accepted")
		}
	}()
	Banded(0, 1, 1)
}

func TestNewLILPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape accepted")
		}
	}()
	NewLIL(0, 5)
}

func TestDenseVectorDeterministic(t *testing.T) {
	a := DenseVector(16, 3)
	b := DenseVector(16, 3)
	if !a.Equal(b) {
		t.Fatal("same seed, different vectors")
	}
}

// Property: chunked SpMV equals whole-matrix SpMV (the Fig. 8 splitting is
// lossless).
func TestQuickChunkedSpMV(t *testing.T) {
	f := func(seed int64, chunkRaw uint8) bool {
		l := RandomUniform(20, 37, 0.15, seed)
		x := DenseVector(37, seed+1)
		want, err := l.MulVec(x)
		if err != nil {
			return false
		}
		chunk := int(chunkRaw%12) + 1
		got := tensor.New(20)
		for lo := 0; lo < l.Cols; lo += chunk {
			hi := lo + chunk
			if hi > l.Cols {
				hi = l.Cols
			}
			part, err := l.ColumnChunk(lo, hi).MulVec(x[lo:hi])
			if err != nil {
				return false
			}
			if err := got.AddInPlace(part); err != nil {
				return false
			}
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricDiagDominantShape(t *testing.T) {
	a := SymmetricDiagDominant(32, 2, 5)
	if a.Rows != 32 || a.Cols != 32 {
		t.Fatalf("shape %dx%d", a.Rows, a.Cols)
	}
	// Every row has a diagonal entry.
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			t.Fatalf("missing diagonal at %d", i)
		}
	}
}

func TestSymmetricDiagDominantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape accepted")
		}
	}()
	SymmetricDiagDominant(0, 1, 1)
}

func TestDiagonalOfNonSquare(t *testing.T) {
	// Diagonal of a wide matrix covers only min(rows, cols).
	l := NewLIL(2, 5)
	l.ColIdx[0] = []int32{0, 4}
	l.Vals[0] = []float32{7, 9}
	l.ColIdx[1] = []int32{1}
	l.Vals[1] = []float32{3}
	d := l.Diagonal()
	if len(d) != 2 || d[0] != 7 || d[1] != 3 {
		t.Fatalf("diagonal %v", d)
	}
}

func TestWithoutDiagonalPreservesOffDiagonals(t *testing.T) {
	a := SymmetricDiagDominant(16, 2, 9)
	r := a.WithoutDiagonal()
	// A = D + R: multiplying by a vector must decompose.
	x := DenseVector(16, 3)
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := r.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	d := a.Diagonal()
	for i := range ax {
		if ax[i] != rx[i]+d[i]*x[i] {
			t.Fatalf("row %d: A*x %v != R*x + D*x %v", i, ax[i], rx[i]+d[i]*x[i])
		}
	}
}

// Property: SymmetricDiagDominant is exactly symmetric for random shapes.
func TestQuickSPDSymmetry(t *testing.T) {
	f := func(seed int64, nRaw, bandRaw uint8) bool {
		n := int(nRaw%60) + 2
		band := int(bandRaw % 4)
		a := SymmetricDiagDominant(n, band, seed)
		get := func(r, c int) float32 {
			for i, cc := range a.ColIdx[r] {
				if int(cc) == c {
					return a.Vals[r][i]
				}
			}
			return 0
		}
		for r := 0; r < n; r++ {
			for i, c := range a.ColIdx[r] {
				if get(int(c), r) != a.Vals[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}
