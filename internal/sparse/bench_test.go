package sparse

import "testing"

func BenchmarkMulVecLIL(b *testing.B) {
	m := RandomUniform(4096, 4096, 1e-3, 1)
	x := DenseVector(4096, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVecCSR(b *testing.B) {
	m := RandomUniform(4096, 4096, 1e-3, 1).ToCSR()
	x := DenseVector(4096, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnChunk(b *testing.B) {
	m := RandomUniform(4096, 8192, 1e-3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ColumnChunk(2048, 4096)
	}
}
