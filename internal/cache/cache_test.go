package cache

import (
	"testing"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// valFor derives a deterministic row for a key, so value correctness is
// checkable without carrying a reference store around.
func valFor(k Key, dim int) tensor.Vector {
	v := make(tensor.Vector, dim)
	for i := range v {
		v[i] = float32(uint32(k.Index)*31+uint32(k.Table)*7+uint32(k.Op)*3) + float32(i)
	}
	return v
}

func key(i int) Key { return Key{Table: uint32(i % 2), Op: uint8(i % 3), Index: header.Index(i)} }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Bytes: 640, Dim: 4}, true},
		{Config{Bytes: 80, Dim: 4}, true}, // exactly one slot
		{Config{Bytes: 0, Dim: 4}, false},
		{Config{Bytes: -1, Dim: 4}, false},
		{Config{Bytes: 640, Dim: 0}, false},
		{Config{Bytes: 640, Dim: -3}, false},
		{Config{Bytes: 79, Dim: 4}, false}, // below one slot
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
		if _, err := New(tc.cfg); (err == nil) != tc.ok {
			t.Errorf("New(%+v) error = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}
}

func TestBasicGetPut(t *testing.T) {
	const dim = 4
	c, err := New(Config{Bytes: 640, Dim: dim, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Capacity(); got != 8 {
		t.Fatalf("Capacity() = %d, want 8 (640 / (4*4+64))", got)
	}
	k := key(3)
	if _, ok := c.Get(k); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	if err := c.Put(k, valFor(k, dim)); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Get(k)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !v.Equal(valFor(k, dim)) {
		t.Fatalf("Get = %v, want %v", v, valFor(k, dim))
	}
	if !c.Contains(k) {
		t.Fatal("Contains after Put is false")
	}
	// A key cached under one op is invisible under another.
	other := k
	other.Op++
	if _, ok := c.Get(other); ok {
		t.Fatal("Get under a different op hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("Stats = %+v, want 1 hit, 2 misses", st)
	}
	if c.HitRatio() != 1.0/3.0 {
		t.Fatalf("HitRatio() = %v, want 1/3", c.HitRatio())
	}
}

func TestPutWrongDim(t *testing.T) {
	c, err := New(Config{Bytes: 640, Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key(0), make(tensor.Vector, 5)); err == nil {
		t.Fatal("Put with wrong dimension succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("rejected Put changed Len to %d", c.Len())
	}
}

func TestPutRefreshNoDuplicate(t *testing.T) {
	const dim = 4
	c, err := New(Config{Bytes: 640, Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	k := key(5)
	for i := 0; i < 3; i++ {
		if err := c.Put(k, valFor(k, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len after repeated Put of one key = %d, want 1", c.Len())
	}
	if got := c.Stats().InsertedBytes; got != 80 {
		t.Fatalf("InsertedBytes = %d, want 80 (one slot)", got)
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	const dim = 4
	cfg := Config{Bytes: 640, Dim: dim, Seed: 9}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := key(i)
		if err := c.Put(k, valFor(k, dim)); err != nil {
			t.Fatal(err)
		}
		if c.Bytes() > cfg.Bytes {
			t.Fatalf("Bytes() = %d exceeds budget %d after %d puts", c.Bytes(), cfg.Bytes, i+1)
		}
	}
	if c.Len() != c.Capacity() {
		t.Fatalf("Len = %d, want full capacity %d", c.Len(), c.Capacity())
	}
	if got := c.Stats().Evictions; got != 100-uint64(c.Capacity()) {
		t.Fatalf("Evictions = %d, want %d", got, 100-c.Capacity())
	}
	// Every resident entry still reads back its own value.
	hits := 0
	for i := 0; i < 100; i++ {
		k := key(i)
		if v, ok := c.Get(k); ok {
			hits++
			if !v.Equal(valFor(k, dim)) {
				t.Fatalf("resident key %d reads back %v, want %v", i, v, valFor(k, dim))
			}
		}
	}
	if hits != c.Capacity() {
		t.Fatalf("%d resident hits, want %d", hits, c.Capacity())
	}
}

// TestSecondChance pins the CLOCK policy: a referenced entry survives the
// sweep that evicts an unreferenced one.
func TestSecondChance(t *testing.T) {
	const dim = 4
	// Capacity 3, hand starts at slot 0 (seed 3 % 3).
	c, err := New(Config{Bytes: 240, Dim: dim, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := key(10), key(11), key(12)
	for _, k := range []Key{a, b, d} {
		if err := c.Put(k, valFor(k, dim)); err != nil {
			t.Fatal(err)
		}
	}
	// All three carry fresh reference bits; admitting a fourth sweeps them
	// clear and evicts the slot the hand started on (a).
	e := key(13)
	if err := c.Put(e, valFor(e, dim)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(a) {
		t.Fatal("first-inserted entry survived a full unreferenced sweep")
	}
	// Touch b: its reference bit protects it from the next eviction, which
	// falls through to d.
	if _, ok := c.Get(b); !ok {
		t.Fatal("b evicted unexpectedly")
	}
	f := key(14)
	if err := c.Put(f, valFor(f, dim)); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(b) {
		t.Fatal("recently-referenced entry was evicted (no second chance)")
	}
	if c.Contains(d) {
		t.Fatal("unreferenced entry survived while referenced ones were candidates")
	}
}

// TestDeterminism pins the seeded-eviction contract: equal configs driven
// with equal call sequences hold identical contents and counters.
func TestDeterminism(t *testing.T) {
	const dim = 4
	run := func() *Cache {
		c, err := New(Config{Bytes: 640, Dim: dim, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		state := uint64(7)
		for i := 0; i < 500; i++ {
			// Cheap LCG keeps the op sequence deterministic without
			// pulling in math/rand.
			state = state*6364136223846793005 + 1442695040888963407
			ki := int(state>>33) % 24
			k := key(ki)
			if state%3 == 0 {
				c.Get(k)
			} else {
				if err := c.Put(k, valFor(k, dim)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c
	}
	c1, c2 := run(), run()
	if c1.Stats() != c2.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", c1.Stats(), c2.Stats())
	}
	if c1.Len() != c2.Len() {
		t.Fatalf("Len diverged: %d vs %d", c1.Len(), c2.Len())
	}
	for i := 0; i < 24; i++ {
		k := key(i)
		if c1.Contains(k) != c2.Contains(k) {
			t.Fatalf("contents diverged at key %d", i)
		}
	}
	// Distinct seeds are allowed to (and here do) place the hand elsewhere,
	// but the counters that only depend on the call sequence still match.
	c3, err := New(Config{Bytes: 640, Dim: dim, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Capacity() != c1.Capacity() {
		t.Fatal("capacity depends on seed")
	}
}

// FuzzCacheOps drives seeded op sequences against the cache and a naive
// map+counter reference model. Two bytes per op: the opcode (get / put /
// contains-check) and the key selector. The reference model does not mimic
// CLOCK eviction — it checks the properties eviction cannot break: a hit
// returns exactly the row last admitted under that key, the byte budget
// holds, and the counters reconcile (gets = hits+misses, evictions =
// fresh inserts − resident).
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0x01, 0x03, 0x00, 0x03, 0x01, 0x05, 0x00, 0x05})
	f.Add([]byte{0x01, 0x00, 0x01, 0x01, 0x01, 0x02, 0x01, 0x03, 0x01, 0x04,
		0x01, 0x05, 0x01, 0x06, 0x01, 0x07, 0x01, 0x08, 0x01, 0x09, 0x00, 0x00})
	f.Add([]byte{0x02, 0x04, 0x01, 0x04, 0x02, 0x04, 0x00, 0x04, 0x01, 0x0f, 0x02, 0x0f})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const dim = 4
		c, err := New(Config{Bytes: 640, Dim: dim, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var gets, freshPuts int
		for i := 0; i+1 < len(ops); i += 2 {
			k := key(int(ops[i+1]) % 24)
			switch ops[i] % 3 {
			case 0: // Get
				gets++
				if v, ok := c.Get(k); ok {
					if want := valFor(k, dim); !v.Equal(want) {
						t.Fatalf("op %d: Get(%+v) = %v, want %v", i/2, k, v, want)
					}
				}
			case 1: // Put
				if !c.Contains(k) {
					freshPuts++
				}
				if err := c.Put(k, valFor(k, dim)); err != nil {
					t.Fatalf("op %d: Put(%+v): %v", i/2, k, err)
				}
				if !c.Contains(k) {
					t.Fatalf("op %d: key absent immediately after Put", i/2)
				}
			case 2: // Contains must agree with Get
				if c.Contains(k) {
					gets++
					if _, ok := c.Get(k); !ok {
						t.Fatalf("op %d: Contains true but Get missed", i/2)
					}
				}
			}
			if c.Len() > c.Capacity() {
				t.Fatalf("op %d: Len %d exceeds capacity %d", i/2, c.Len(), c.Capacity())
			}
			if c.Bytes() > 640 {
				t.Fatalf("op %d: Bytes %d exceeds budget", i/2, c.Bytes())
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != uint64(gets) {
			t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, gets)
		}
		if st.Evictions != uint64(freshPuts-c.Len()) {
			t.Fatalf("evictions %d != fresh inserts %d - resident %d", st.Evictions, freshPuts, c.Len())
		}
		if st.InsertedBytes != uint64(freshPuts)*80 {
			t.Fatalf("InsertedBytes %d != %d fresh inserts x 80", st.InsertedBytes, freshPuts)
		}
		if r := c.HitRatio(); r < 0 || r > 1 {
			t.Fatalf("HitRatio %v out of [0,1]", r)
		}
	})
}
