// Package cache is the host-side hot-embedding cache of the serving tier: a
// fixed-budget, read-only store of popular embedding rows consulted by the
// coalescer at batch build time, so indices it holds are stripped from the
// hardware batch before DRAM is ever touched and merged back into the pooled
// outputs afterwards.
//
// The cache never invalidates — the embedding store is immutable for the
// lifetime of a serving process — so the only policy decisions are admission
// (every miss is admitted after its batch completes) and eviction. Eviction
// is CLOCK (second chance): entries live in a fixed ring sized by the byte
// budget, a hand sweeps the ring clearing reference bits, and the first
// unreferenced slot is replaced. The hand's start position is seeded, and
// every state transition is a pure function of the (Get, Put) call sequence,
// so two caches built with the same Config and driven with the same sequence
// hold bit-identical contents — the serving layer's determinism contract
// extends across batches.
//
// Keys carry (table, op, index): rows cached for one pooling operation are
// never served to another, and a sharded deployment passes the owning shard
// as the table so fleet mode caches per shard. All methods are single-caller
// by design (the coalescer's flusher goroutine); the cache performs no
// locking.
package cache

import (
	"fmt"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Key identifies one cached row: the owning table partition (the shard in
// fleet mode, 0 for a single system), the pooling operation the row was
// fetched under, and the global row index.
type Key struct {
	Table uint32
	Op    uint8
	Index header.Index
}

// Config sizes a cache.
type Config struct {
	// Bytes is the fixed byte budget. The cache holds at most
	// Bytes / slot-size entries, where a slot is the vector payload plus
	// bookkeeping overhead; the budget is never exceeded.
	Bytes int64
	// Dim is the embedding dimensionality of every cached row.
	Dim int
	// Seed positions the CLOCK hand's starting slot, so distinct seeds
	// explore distinct (still deterministic) eviction orders. Zero selects 1.
	Seed uint64
}

// slotOverhead is the per-entry bookkeeping charge beyond the vector payload:
// the key, the ref bit, and the index-map entry, rounded up so the byte
// budget stays honest.
const slotOverhead = 64

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("cache: Config.Dim = %d: must be positive", c.Dim)
	case c.Bytes <= 0:
		return fmt.Errorf("cache: Config.Bytes = %d: must be positive", c.Bytes)
	case c.Bytes < c.slotSize():
		return fmt.Errorf("cache: Config.Bytes = %d: below one %d-byte entry at Dim %d", c.Bytes, c.slotSize(), c.Dim)
	}
	return nil
}

func (c Config) slotSize() int64 { return int64(c.Dim)*4 + slotOverhead }

// Stats are the cache's cumulative counters. Hits and Misses count Get
// calls; Evictions counts entries displaced by CLOCK; InsertedBytes counts
// the slot bytes of every admitted entry (a monotone counter, not the
// resident footprint — see Cache.Bytes for that).
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	InsertedBytes uint64
}

type slot struct {
	key Key
	val tensor.Vector
	ref bool
}

// Cache is a fixed-budget CLOCK cache of embedding rows. Not safe for
// concurrent use; the serving layer drives it from its single flusher
// goroutine only.
type Cache struct {
	cfg      Config
	slotSize int64
	slots    []slot
	index    map[Key]int
	hand     int
	used     int
	stats    Stats
}

// New builds an empty cache over the budget.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	size := cfg.slotSize()
	capacity := int(cfg.Bytes / size)
	return &Cache{
		cfg:      cfg,
		slotSize: size,
		slots:    make([]slot, capacity),
		index:    make(map[Key]int, capacity),
		hand:     int(cfg.Seed % uint64(capacity)),
	}, nil
}

// Get returns the cached row for k, marking it recently used. The returned
// vector is the cache's own storage: callers must treat it as read-only.
func (c *Cache) Get(k Key) (tensor.Vector, bool) {
	pos, ok := c.index[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.slots[pos].ref = true
	c.stats.Hits++
	return c.slots[pos].val, true
}

// Contains reports whether k is cached without touching the reference bit or
// the hit/miss counters (introspection only).
func (c *Cache) Contains(k Key) bool {
	_, ok := c.index[k]
	return ok
}

// Put admits row v under k, evicting via CLOCK when the ring is full. A key
// already present is refreshed (reference bit set) without a second copy; a
// vector of the wrong dimension is rejected.
func (c *Cache) Put(k Key, v tensor.Vector) error {
	if len(v) != c.cfg.Dim {
		return fmt.Errorf("cache: row dim %d, cache dim %d", len(v), c.cfg.Dim)
	}
	if pos, ok := c.index[k]; ok {
		c.slots[pos].ref = true
		return nil
	}
	var pos int
	if c.used < len(c.slots) {
		// Fill phase: slots are occupied in ring order from the seeded hand,
		// so the first eviction sweep starts behind the oldest entry.
		pos = (c.hand + c.used) % len(c.slots)
		c.used++
	} else {
		// CLOCK sweep: clear reference bits until an unreferenced slot turns
		// up; every entry gets at most one second chance per sweep, so the
		// loop terminates within two revolutions.
		for c.slots[c.hand].ref {
			c.slots[c.hand].ref = false
			c.hand = (c.hand + 1) % len(c.slots)
		}
		pos = c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		delete(c.index, c.slots[pos].key)
		c.stats.Evictions++
	}
	s := &c.slots[pos]
	if s.val == nil {
		s.val = make(tensor.Vector, c.cfg.Dim)
	}
	copy(s.val, v)
	s.key = k
	// A fresh entry starts referenced: it survives the hand's next pass, the
	// one revolution of grace that separates CLOCK from FIFO.
	s.ref = true
	c.index[k] = pos
	c.stats.InsertedBytes += uint64(c.slotSize)
	return nil
}

// Len reports the number of resident entries.
func (c *Cache) Len() int { return c.used }

// Capacity reports the entry count the byte budget admits.
func (c *Cache) Capacity() int { return len(c.slots) }

// Bytes reports the resident footprint (occupied slots at full slot charge).
func (c *Cache) Bytes() int64 { return int64(c.used) * c.slotSize }

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// HitRatio reports hits / (hits + misses), zero before any Get.
func (c *Cache) HitRatio() float64 {
	total := c.stats.Hits + c.stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(total)
}
