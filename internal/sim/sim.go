// Package sim provides the small discrete-event simulation kernel shared by
// every timing engine in the repository: a cycle type, an event queue, and a
// statistics registry.
//
// The engines in internal/fafnir, internal/recnmp, internal/tensordimm, and
// internal/twostep are resource-reservation timing models: components expose
// "earliest time this resource can next be used" state, and requests reserve
// time slices on them. The event queue supports engines that need genuine
// event interleaving; the stats registry gives all engines one way to report
// counters and distributions that the experiment harness can render as the
// paper's tables.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Cycle is a point in simulated time, measured in clock cycles of the
// component's own clock domain (the Fafnir PEs run at 200 MHz; the DDR4
// model runs at its own memory clock). Conversions between domains happen
// explicitly at the boundaries.
type Cycle uint64

// MaxCycle is the largest representable cycle, used as "never".
const MaxCycle = Cycle(math.MaxUint64)

// Max returns the later of a and b.
func Max(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Cycle) Cycle {
	if a < b {
		return a
	}
	return b
}

// PicosPerCycle returns the picoseconds per cycle for a clock in MHz. It
// returns an error for non-positive frequencies.
func PicosPerCycle(mhz float64) (float64, error) {
	if mhz <= 0 {
		return 0, fmt.Errorf("sim: non-positive frequency %v", mhz)
	}
	return 1e6 / mhz, nil
}

// Seconds converts a cycle count in a clock domain of the given frequency to
// seconds.
func Seconds(c Cycle, mhz float64) float64 {
	return float64(c) / (mhz * 1e6)
}

// Event is a scheduled callback. Events with equal time fire in the order of
// their sequence numbers (insertion order), which keeps simulations
// deterministic.
type Event struct {
	At  Cycle
	Fn  func(now Cycle)
	seq uint64
}

// eventHeap implements heap.Interface over events ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event loop.
type Engine struct {
	now    Cycle
	queue  eventHeap
	nextID uint64
	fired  uint64
}

// NewEngine returns an engine positioned at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have run.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at cycle at.
//
// Scheduling in the past (before Now) panics deliberately, and this is the
// one input-validation panic kept in the repository: it can only be reached
// by an engine computing event times incorrectly — never by external input —
// and silently clamping or returning an error would let a causality bug
// corrupt every downstream timing number while tests stay green. Failing
// loudly at the first out-of-order event is the correct behaviour.
func (e *Engine) Schedule(at Cycle, fn func(now Cycle)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := &Event{At: at, Fn: fn, seq: e.nextID}
	e.nextID++
	heap.Push(&e.queue, ev)
}

// After enqueues fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) {
	e.Schedule(e.now+delay, fn)
}

// Run drains the event queue, advancing time, and returns the time of the
// last event (or the starting time when no events were queued).
func (e *Engine) Run() Cycle {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		e.fired++
		ev.Fn(e.now)
	}
	return e.now
}

// RunUntil drains events up to and including cycle limit; later events stay
// queued. It returns the current time after the partial drain.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for len(e.queue) > 0 && e.queue[0].At <= limit {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		e.fired++
		ev.Fn(e.now)
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// Counter is a monotonically named statistic.
type Counter struct {
	Name  string
	Value uint64
}

// Distribution accumulates samples and reports min/max/mean/percentiles.
type Distribution struct {
	Name    string
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (d *Distribution) Add(x float64) {
	d.samples = append(d.samples, x)
	d.sorted = false
}

// N reports the number of samples.
func (d *Distribution) N() int { return len(d.samples) }

// Sum reports the total of all samples.
func (d *Distribution) Sum() float64 {
	var s float64
	for _, x := range d.samples {
		s += x
	}
	return s
}

// Mean reports the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.samples))
}

// Min reports the smallest sample, or 0 for an empty distribution.
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[0]
}

// Max reports the largest sample, or 0 for an empty distribution.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[len(d.samples)-1]
}

// Percentile reports the p-th percentile (0..100) by nearest-rank, or 0 for
// an empty distribution.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
	if rank < 1 {
		rank = 1
	}
	return d.samples[rank-1]
}

func (d *Distribution) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Stats is a registry of named counters and distributions. The zero value is
// ready to use. It is not safe for concurrent use; simulations are
// single-goroutine by design for determinism.
type Stats struct {
	counters map[string]*Counter
	dists    map[string]*Distribution
	order    []string
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Distribution),
	}
}

func (s *Stats) init() {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
		s.dists = make(map[string]*Distribution)
	}
}

// Inc adds delta to the named counter, creating it on first use.
func (s *Stats) Inc(name string, delta uint64) {
	s.init()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{Name: name}
		s.counters[name] = c
		s.order = append(s.order, "c:"+name)
	}
	c.Value += delta
}

// Counter returns the current value of the named counter (0 if never set).
func (s *Stats) Counter(name string) uint64 {
	s.init()
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Observe adds a sample to the named distribution, creating it on first use.
func (s *Stats) Observe(name string, x float64) {
	s.init()
	d, ok := s.dists[name]
	if !ok {
		d = &Distribution{Name: name}
		s.dists[name] = d
		s.order = append(s.order, "d:"+name)
	}
	d.Add(x)
}

// Dist returns the named distribution, or nil when nothing was observed.
func (s *Stats) Dist(name string) *Distribution {
	s.init()
	return s.dists[name]
}

// Merge folds every counter and distribution of o into s.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	for _, key := range o.order {
		name := key[2:]
		switch key[0] {
		case 'c':
			s.Inc(name, o.counters[name].Value)
		case 'd':
			for _, x := range o.dists[name].samples {
				s.Observe(name, x)
			}
		}
	}
}

// String renders all statistics in insertion order, one per line.
func (s *Stats) String() string {
	s.init()
	var b strings.Builder
	for _, key := range s.order {
		name := key[2:]
		switch key[0] {
		case 'c':
			fmt.Fprintf(&b, "%-40s %d\n", name, s.counters[name].Value)
		case 'd':
			d := s.dists[name]
			fmt.Fprintf(&b, "%-40s n=%d mean=%.2f min=%.2f max=%.2f\n",
				name, d.N(), d.Mean(), d.Min(), d.Max())
		}
	}
	return b.String()
}
