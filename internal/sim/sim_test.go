package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Min wrong")
	}
}

func TestPicosPerCycle(t *testing.T) {
	got, err := PicosPerCycle(200)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5000 {
		t.Fatalf("200 MHz -> %v ps, want 5000", got)
	}
	if _, err := PicosPerCycle(0); err == nil {
		t.Fatal("PicosPerCycle(0) did not error")
	}
	if _, err := PicosPerCycle(-3); err == nil {
		t.Fatal("PicosPerCycle(-3) did not error")
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(200e6, 200); got != 1 {
		t.Fatalf("Seconds = %v, want 1", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func(Cycle) { order = append(order, 2) })
	e.Schedule(5, func(Cycle) { order = append(order, 1) })
	e.Schedule(10, func(Cycle) { order = append(order, 3) }) // same time: insertion order
	end := e.Run()
	if end != 10 {
		t.Fatalf("end = %d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestEngineAfterAndNested(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.Schedule(4, func(now Cycle) {
		hits = append(hits, now)
		e.After(6, func(now Cycle) { hits = append(hits, now) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 4 || hits[1] != 10 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(now Cycle) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(3, func(Cycle) {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(5, func(Cycle) { fired++ })
	e.Schedule(15, func(Cycle) { fired++ })
	now := e.RunUntil(10)
	if now != 10 || fired != 1 {
		t.Fatalf("now=%d fired=%d", now, fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after full run", fired)
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStats()
	s.Inc("a", 2)
	s.Inc("a", 3)
	if s.Counter("a") != 5 {
		t.Fatalf("counter = %d", s.Counter("a"))
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter non-zero")
	}
}

func TestStatsDistribution(t *testing.T) {
	s := NewStats()
	for _, x := range []float64{5, 1, 3} {
		s.Observe("d", x)
	}
	d := s.Dist("d")
	if d == nil {
		t.Fatal("nil dist")
	}
	if d.N() != 3 || d.Min() != 1 || d.Max() != 5 || d.Mean() != 3 || d.Sum() != 9 {
		t.Fatalf("stats wrong: n=%d min=%v max=%v mean=%v", d.N(), d.Min(), d.Max(), d.Mean())
	}
	if got := d.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if s.Dist("missing") != nil {
		t.Fatal("missing dist not nil")
	}
}

func TestEmptyDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty distribution should report zeros")
	}
}

func TestStatsMerge(t *testing.T) {
	a := NewStats()
	a.Inc("c", 1)
	a.Observe("d", 2)
	b := NewStats()
	b.Inc("c", 4)
	b.Observe("d", 6)
	b.Observe("e", 1)
	a.Merge(b)
	if a.Counter("c") != 5 {
		t.Fatalf("merged counter = %d", a.Counter("c"))
	}
	if a.Dist("d").N() != 2 {
		t.Fatalf("merged dist n = %d", a.Dist("d").N())
	}
	if a.Dist("e").N() != 1 {
		t.Fatal("merge dropped new dist")
	}
	a.Merge(nil) // must not panic
}

func TestStatsZeroValueUsable(t *testing.T) {
	var s Stats
	s.Inc("x", 1)
	s.Observe("y", 2)
	if s.Counter("x") != 1 || s.Dist("y").N() != 1 {
		t.Fatal("zero-value Stats unusable")
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.Inc("alpha", 7)
	s.Observe("beta", 1.5)
	out := s.String()
	if out == "" {
		t.Fatal("empty render")
	}
}

// Property: the engine fires events in nondecreasing time order regardless of
// insertion order.
func TestQuickEngineMonotonic(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Cycle
		for _, at := range times {
			at := Cycle(at)
			e.Schedule(at, func(now Cycle) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(samples []float32) bool {
		if len(samples) == 0 {
			return true
		}
		var d Distribution
		for _, x := range samples {
			d.Add(float64(x))
		}
		prev := d.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := d.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}
