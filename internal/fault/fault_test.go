package fault

import (
	"math"
	"strings"
	"testing"

	"fafnir/internal/sim"
)

func TestEmptyPlan(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Fatal("zero plan not empty")
	}
	inj, err := NewInjector(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Active() {
		t.Fatal("empty injector reports active")
	}
	if inj.RankFailed(0, 0) || inj.ReadFault() || inj.PEStall(0) != 0 {
		t.Fatal("empty injector fired")
	}
	if got := inj.FailedRanks(sim.MaxCycle); got != nil {
		t.Fatalf("empty injector lists failed ranks %v", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Active() || inj.RankFailed(3, 100) || inj.ReadFault() || inj.PEStall(1) != 0 {
		t.Fatal("nil injector fired")
	}
	if inj.FailedRanks(0) != nil {
		t.Fatal("nil injector lists failed ranks")
	}
}

func TestRankFailureTiming(t *testing.T) {
	p := Plan{RankFailures: []RankFailure{{Rank: 5, At: 1000}, {Rank: 7, At: 0}}}
	inj, err := NewInjector(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Active() {
		t.Fatal("injector with failures not active")
	}
	if inj.RankFailed(5, 999) {
		t.Fatal("rank 5 dark before its schedule")
	}
	if !inj.RankFailed(5, 1000) || !inj.RankFailed(5, 5000) {
		t.Fatal("rank 5 not dark at/after its schedule")
	}
	if !inj.RankFailed(7, 0) {
		t.Fatal("rank 7 not dark at cycle 0")
	}
	if inj.RankFailed(6, sim.MaxCycle) {
		t.Fatal("healthy rank reported dark")
	}
	if got := inj.FailedRanks(0); len(got) != 1 || got[0] != 7 {
		t.Fatalf("FailedRanks(0) = %v, want [7]", got)
	}
	if got := inj.FailedRanks(1000); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Fatalf("FailedRanks(1000) = %v, want [5 7]", got)
	}
}

func TestEarliestFailureWins(t *testing.T) {
	p := Plan{RankFailures: []RankFailure{{Rank: 2, At: 500}, {Rank: 2, At: 100}}}
	inj, err := NewInjector(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.RankFailed(2, 100) {
		t.Fatal("duplicate failure schedule did not keep the earliest cycle")
	}
}

func TestInjectorRejectsOutOfRangeRank(t *testing.T) {
	if _, err := NewInjector(Plan{RankFailures: []RankFailure{{Rank: 32}}}, 32); err == nil {
		t.Fatal("rank 32 of 32 accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{ReadFaultProb: -0.1},
		{ReadFaultProb: 1},
		{ReadFaultProb: 1.5},
		{MaxConsecutiveFaults: -1},
		{MaxRetries: -2},
		{RankFailures: []RankFailure{{Rank: -1}}},
		{PEStalls: []PEStall{{PE: -3}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
	}
	if err := (Plan{ReadFaultProb: 0.999, Seed: 3}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestReadFaultDeterminismAndRate(t *testing.T) {
	const n = 200000
	draw := func(seed uint64) (pattern []bool, faults int) {
		inj, err := NewInjector(Plan{Seed: seed, ReadFaultProb: 0.05}, 1)
		if err != nil {
			t.Fatal(err)
		}
		pattern = make([]bool, n)
		for i := range pattern {
			pattern[i] = inj.ReadFault()
			if pattern[i] {
				faults++
			}
		}
		return pattern, faults
	}
	p1, f1 := draw(7)
	p2, f2 := draw(7)
	if f1 != f2 {
		t.Fatalf("same seed drew %d vs %d faults", f1, f2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	rate := float64(f1) / n
	if math.Abs(rate-0.05) > 0.01 {
		t.Fatalf("fault rate %.4f far from 0.05", rate)
	}
	_, f3 := draw(8)
	if f3 == f1 {
		t.Fatalf("different seeds drew identical fault counts %d (suspicious)", f1)
	}
}

func TestConsecutiveFaultCap(t *testing.T) {
	// Probability just under 1: without the cap every draw would fault.
	inj, err := NewInjector(Plan{Seed: 1, ReadFaultProb: 0.999999, MaxConsecutiveFaults: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	streak := 0
	for i := 0; i < 10000; i++ {
		if inj.ReadFault() {
			streak++
			if streak > 2 {
				t.Fatalf("streak of %d exceeds cap 2 at draw %d", streak, i)
			}
		} else {
			streak = 0
		}
	}
}

func TestPEStallAccumulates(t *testing.T) {
	inj, err := NewInjector(Plan{PEStalls: []PEStall{{PE: 4, Extra: 10}, {PE: 4, Extra: 5}, {PE: 9, Extra: 1}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.PEStall(4); got != 15 {
		t.Fatalf("PEStall(4) = %d, want 15", got)
	}
	if got := inj.PEStall(9); got != 1 {
		t.Fatalf("PEStall(9) = %d, want 1", got)
	}
	if got := inj.PEStall(0); got != 0 {
		t.Fatalf("PEStall(0) = %d, want 0", got)
	}
}

func TestBackoffAt(t *testing.T) {
	p := Plan{RetryBackoff: 10}
	want := []sim.Cycle{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.BackoffAt(i + 1); got != w {
			t.Fatalf("BackoffAt(%d) = %d, want %d", i+1, got, w)
		}
	}
	var d Plan
	if d.Backoff() != DefaultRetryBackoff || d.Retries() != DefaultMaxRetries {
		t.Fatal("defaults not applied")
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"rank=3@0",
		"rank=3@1000;rank=17@5;ecc=0.001;stall=5+200;seed=9",
		"  ecc=0.25 ; seed=42 ",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", spec, err)
		}
		if p.String() != p2.String() {
			t.Fatalf("round trip drift: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"unknown=3",
		"rank=x@0",
		"rank=3",
		"ecc=nope",
		"ecc=1.5",
		"stall=5",
		"seed=abc",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestSentinelErrors(t *testing.T) {
	for _, e := range []error{ErrRankFailed, ErrInvariantViolated, ErrRetriesExhausted} {
		if !strings.HasPrefix(e.Error(), "fault: ") {
			t.Errorf("error %q lacks package prefix", e)
		}
	}
}
