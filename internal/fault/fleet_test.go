package fault

import (
	"reflect"
	"strings"
	"testing"

	"fafnir/internal/sim"
)

func TestFleetPlanEmpty(t *testing.T) {
	var p FleetPlan
	if !p.Empty() {
		t.Fatal("zero plan not empty")
	}
	p.ShardFailures = []ShardFailure{{Shard: 0, At: 1}}
	if p.Empty() {
		t.Fatal("plan with shard failure reported empty")
	}
}

func TestFleetDownWindows(t *testing.T) {
	p := FleetPlan{
		ShardFailures: []ShardFailure{{Shard: 1, At: 100}},
		ShardFlaps:    []ShardFlap{{Shard: 2, DownAt: 50, UpAt: 80}},
	}
	cases := []struct {
		shard int
		at    sim.Cycle
		want  bool
	}{
		{1, 99, false}, {1, 100, true}, {1, 1 << 40, true},
		{2, 49, false}, {2, 50, true}, {2, 79, true}, {2, 80, false},
		{0, 100, false},
	}
	for _, tc := range cases {
		if got := p.Down(tc.shard, tc.at); got != tc.want {
			t.Fatalf("Down(%d, %d) = %v, want %v", tc.shard, tc.at, got, tc.want)
		}
	}
}

func TestFleetValidate(t *testing.T) {
	bad := []FleetPlan{
		{ShardFailures: []ShardFailure{{Shard: -1}}},
		{ShardFlaps: []ShardFlap{{Shard: 0, DownAt: 10, UpAt: 10}}},
		{RankStorms: []RankStorm{{At: 5, Ranks: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d validated: %+v", i, p)
		}
	}
	ok := FleetPlan{ShardFailures: []ShardFailure{{Shard: 3, At: 0}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ok.ValidateFor(4); err != nil {
		t.Fatal(err)
	}
	if err := ok.ValidateFor(3); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("ValidateFor(3) = %v, want bounds error", err)
	}
	flap := FleetPlan{ShardFlaps: []ShardFlap{{Shard: 5, DownAt: 0, UpAt: 1}}}
	if err := flap.ValidateFor(4); err == nil {
		t.Fatal("flap on shard 5 accepted for a 4-shard fleet")
	}
}

// TestShardPlanDeterministicAndComplete checks the storm compilation: every
// storm draw lands on exactly one shard, two compilations agree, and distinct
// shards get distinct ECC seeds.
func TestShardPlanDeterministicAndComplete(t *testing.T) {
	p := FleetPlan{Seed: 7, RankStorms: []RankStorm{{At: 1000, Ranks: 10}}}
	const shards, ranks = 4, 8
	total := 0
	seeds := map[uint64]bool{}
	for s := 0; s < shards; s++ {
		a := p.ShardPlan(s, shards, ranks)
		b := p.ShardPlan(s, shards, ranks)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d: two compilations differ", s)
		}
		for _, rf := range a.RankFailures {
			if rf.Rank < 0 || rf.Rank >= ranks {
				t.Fatalf("shard %d: storm rank %d outside [0,%d)", s, rf.Rank, ranks)
			}
			if rf.At != 1000 {
				t.Fatalf("shard %d: storm failure at %d, want 1000", s, rf.At)
			}
			total++
		}
		if seeds[a.Seed] {
			t.Fatalf("shard %d: duplicate derived seed %d", s, a.Seed)
		}
		seeds[a.Seed] = true
	}
	if total != 10 {
		t.Fatalf("storm compiled to %d rank failures across the fleet, want 10", total)
	}
}

// TestShardPlanKeepsBase checks base-plan rank failures reach every shard
// without aliasing the shared slice.
func TestShardPlanKeepsBase(t *testing.T) {
	p := FleetPlan{Shard: Plan{RankFailures: []RankFailure{{Rank: 3, At: 77}}}}
	a := p.ShardPlan(0, 2, 8)
	b := p.ShardPlan(1, 2, 8)
	if len(a.RankFailures) != 1 || len(b.RankFailures) != 1 {
		t.Fatalf("base failures not propagated: %v / %v", a.RankFailures, b.RankFailures)
	}
	a.RankFailures[0].Rank = 5
	if p.Shard.RankFailures[0].Rank != 3 || b.RankFailures[0].Rank != 3 {
		t.Fatal("ShardPlan aliases the base plan's failure slice")
	}
}

func TestParseFleetRoundTrip(t *testing.T) {
	spec := "seed=7;shard=1@40000;flap=2@1-300000;storm=6@20000;ecc=0.001"
	p, err := ParseFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.ShardFailures) != 1 || len(p.ShardFlaps) != 1 || len(p.RankStorms) != 1 {
		t.Fatalf("parsed %+v", p)
	}
	if p.ShardFlaps[0] != (ShardFlap{Shard: 2, DownAt: 1, UpAt: 300000}) {
		t.Fatalf("flap = %+v", p.ShardFlaps[0])
	}
	if p.Shard.ReadFaultProb != 0.001 {
		t.Fatalf("base ecc = %v", p.Shard.ReadFaultProb)
	}
	back, err := ParseFleet(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("round trip: %+v != %+v", back, p)
	}
}

func TestParseFleetRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"shard=1",          // missing cycle
		"flap=2@9-3",       // empty window
		"storm=0@10",       // zero ranks
		"blarg=1",          // unknown key
		"shard",            // not key=value
		"flap=2@x-y",       // unparsable
	} {
		if _, err := ParseFleet(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
	p, err := ParseFleet("  ")
	if err != nil || !p.Empty() {
		t.Fatalf("blank spec: %+v, %v", p, err)
	}
}
