package fault

import (
	"errors"
	"fmt"
	"strings"

	"fafnir/internal/sim"
)

// ErrShardDown reports a sub-lookup dispatched to a shard that the fleet
// fault plan has taken down (whole-node loss or a flap window). The router
// confines it to failover handling; it never reaches HTTP callers of a
// replicated fleet.
var ErrShardDown = errors.New("fault: shard down")

// ShardFailure schedules one whole shard going dark: every lookup dispatched
// to it from fleet cycle At onward fails with ErrShardDown, modelling a dead
// node (power loss, kernel panic, partitioned link).
type ShardFailure struct {
	// Shard is the fleet-level shard identifier.
	Shard int
	// At is the first fleet-clock cycle at which the shard is down.
	At sim.Cycle
}

// ShardFlap schedules a transient whole-shard outage: the shard is down in
// [DownAt, UpAt) and comes back by itself, modelling a reboot or a transient
// partition. A flapping shard exercises the breaker's probe/reopen path.
type ShardFlap struct {
	// Shard is the fleet-level shard identifier.
	Shard int
	// DownAt is the first fleet-clock cycle of the outage.
	DownAt sim.Cycle
	// UpAt is the first cycle at which the shard serves again.
	UpAt sim.Cycle
}

// RankStorm schedules a correlated burst of rank failures across the fleet:
// at cycle At, Ranks distinct (shard, rank) pairs drawn from the plan seed go
// dark simultaneously, modelling a correlated hardware event (a bad firmware
// push, a thermal excursion across a row of nodes).
type RankStorm struct {
	// At is the memory-clock cycle at which the storm strikes.
	At sim.Cycle
	// Ranks is how many (shard, rank) pairs go dark.
	Ranks int
}

// SwitchStall schedules a slow switch in the in-network reduction tree
// (internal/rnet): switch node Switch (numbered 0..Interior-1, bottom-up
// level order, left to right) adds Cycles extra cycles every time it fires,
// modelling a congested or degraded network switch. The reduction stays
// exact — a stalled switch delays its subtree's partials, it never drops
// them — so only cycle counts change, never outputs.
type SwitchStall struct {
	// Switch is the interior-switch ordinal in the rnet tree.
	Switch int
	// Cycles is the extra firing latency.
	Cycles sim.Cycle
}

// FleetPlan is a complete, serializable fleet-level fault schedule: shard
// losses and flaps evaluated against the router's fleet clock, correlated
// rank storms compiled into per-shard rank failures, and a base per-shard
// Plan (ECC probability, retry policy) applied to every shard under a
// shard-derived seed. The zero value injects nothing.
type FleetPlan struct {
	// Seed drives the storm target draw and derives per-shard seeds. Two
	// plans with equal seeds compile to identical per-shard schedules.
	Seed uint64
	// ShardFailures lists whole shards that go down and stay down.
	ShardFailures []ShardFailure
	// ShardFlaps lists transient whole-shard outages.
	ShardFlaps []ShardFlap
	// RankStorms lists correlated rank-failure bursts.
	RankStorms []RankStorm
	// SwitchStalls lists slow rnet switches; ignored by a fleet whose
	// combine path is the legacy host fold (no switches exist).
	SwitchStalls []SwitchStall
	// Shard is the base plan applied to every shard (rank failures listed
	// here strike the same local rank on every shard; ECC and retry policy
	// apply per shard with a derived seed).
	Shard Plan
}

// Empty reports whether the plan injects nothing at any level.
func (p FleetPlan) Empty() bool {
	return len(p.ShardFailures) == 0 && len(p.ShardFlaps) == 0 &&
		len(p.RankStorms) == 0 && len(p.SwitchStalls) == 0 && p.Shard.Empty()
}

// Validate reports a descriptive error for an unusable plan.
func (p FleetPlan) Validate() error {
	for _, f := range p.ShardFailures {
		if f.Shard < 0 {
			return fmt.Errorf("fault: shard failure on negative shard %d", f.Shard)
		}
	}
	for _, f := range p.ShardFlaps {
		if f.Shard < 0 {
			return fmt.Errorf("fault: shard flap on negative shard %d", f.Shard)
		}
		if f.UpAt <= f.DownAt {
			return fmt.Errorf("fault: shard %d flap window [%d,%d) is empty", f.Shard, f.DownAt, f.UpAt)
		}
	}
	for _, s := range p.RankStorms {
		if s.Ranks <= 0 {
			return fmt.Errorf("fault: rank storm at cycle %d kills %d ranks; must be positive", s.At, s.Ranks)
		}
	}
	for _, s := range p.SwitchStalls {
		if s.Switch < 0 {
			return fmt.Errorf("fault: switch stall on negative switch %d", s.Switch)
		}
		if s.Cycles == 0 {
			return fmt.Errorf("fault: switch %d stall of 0 cycles; must add latency", s.Switch)
		}
	}
	return p.Shard.Validate()
}

// ValidateFor additionally bounds the shard identifiers against the fleet
// size, rejecting a plan naming a shard that does not exist.
func (p FleetPlan) ValidateFor(shards int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, f := range p.ShardFailures {
		if f.Shard >= shards {
			return fmt.Errorf("fault: shard failure on shard %d outside [0,%d)", f.Shard, shards)
		}
	}
	for _, f := range p.ShardFlaps {
		if f.Shard >= shards {
			return fmt.Errorf("fault: shard flap on shard %d outside [0,%d)", f.Shard, shards)
		}
	}
	return nil
}

// Down reports whether the plan has shard down at fleet cycle at: past a
// scheduled whole-shard failure, or inside a flap window.
func (p FleetPlan) Down(shard int, at sim.Cycle) bool {
	for _, f := range p.ShardFailures {
		if f.Shard == shard && at >= f.At {
			return true
		}
	}
	for _, f := range p.ShardFlaps {
		if f.Shard == shard && at >= f.DownAt && at < f.UpAt {
			return true
		}
	}
	return false
}

// ShardPlan compiles the fleet plan into shard's own Plan: the base per-shard
// plan with a shard-derived seed, plus every storm-drawn rank failure that
// lands on this shard. The draw is pure in (Seed, storm index, draw index),
// so every shard compiles the same fleet-wide storm pattern and two fleets
// built from equal plans observe identical faults.
func (p FleetPlan) ShardPlan(shard, shards, ranksPerShard int) Plan {
	out := p.Shard
	out.RankFailures = append([]RankFailure(nil), p.Shard.RankFailures...)
	// Derive a distinct transient-fault seed per shard so ECC draws are not
	// correlated across the fleet (a zero-seed base plan stays zero only on
	// shard 0 by accident; mix unconditionally).
	out.Seed = splitmix64(p.Seed ^ (uint64(shard)+1)*0x9e3779b97f4a7c15)
	for si, storm := range p.RankStorms {
		for k := 0; k < storm.Ranks; k++ {
			draw := splitmix64(p.Seed ^ uint64(si)<<32 ^ uint64(k)*0x2545f4914f6cdd1d)
			s := int(draw % uint64(shards))
			r := int(draw >> 32 % uint64(ranksPerShard))
			if s == shard {
				out.RankFailures = append(out.RankFailures, RankFailure{Rank: r, At: storm.At})
			}
		}
	}
	return out
}

// String renders the plan compactly (the ParseFleet format).
func (p FleetPlan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, f := range p.ShardFailures {
		parts = append(parts, fmt.Sprintf("shard=%d@%d", f.Shard, f.At))
	}
	for _, f := range p.ShardFlaps {
		parts = append(parts, fmt.Sprintf("flap=%d@%d-%d", f.Shard, f.DownAt, f.UpAt))
	}
	for _, s := range p.RankStorms {
		parts = append(parts, fmt.Sprintf("storm=%d@%d", s.Ranks, s.At))
	}
	for _, s := range p.SwitchStalls {
		parts = append(parts, fmt.Sprintf("swstall=%d+%d", s.Switch, s.Cycles))
	}
	if base := p.Shard.String(); base != "" {
		parts = append(parts, base)
	}
	return strings.Join(parts, ";")
}

// ParseFleet builds a fleet plan from a compact spec, the format of
// fafnir-serve's -fault-storm flag: semicolon-separated clauses of
//
//	seed=N         storm/ECC seed
//	shard=S@C      shard S goes down at fleet cycle C and stays down
//	flap=S@D-U     shard S is down in fleet-cycle window [D,U)
//	storm=N@C      N seed-drawn (shard, rank) pairs go dark at cycle C
//	swstall=K+N    rnet switch K fires N cycles late (rnet combine path only)
//	rank=R@C       local rank R goes dark at cycle C on every shard
//	ecc=P          per-shard transient read-fault probability
//	stall=PE+N     tree node PE gains N extra cycles on every shard
//
// e.g. "shard=1@1;storm=4@20000;ecc=0.0005;seed=7". An empty spec is the
// empty plan.
func ParseFleet(spec string) (FleetPlan, error) {
	var p FleetPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	var baseClauses []string
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return FleetPlan{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			if _, err := fmt.Sscanf(val, "%d", &p.Seed); err != nil {
				return FleetPlan{}, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			baseClauses = append(baseClauses, clause)
		case "shard":
			var f ShardFailure
			if _, err := fmt.Sscanf(val, "%d@%d", &f.Shard, &f.At); err != nil {
				return FleetPlan{}, fmt.Errorf("fault: bad shard clause %q (want S@CYCLE): %v", val, err)
			}
			p.ShardFailures = append(p.ShardFailures, f)
		case "flap":
			var f ShardFlap
			if _, err := fmt.Sscanf(val, "%d@%d-%d", &f.Shard, &f.DownAt, &f.UpAt); err != nil {
				return FleetPlan{}, fmt.Errorf("fault: bad flap clause %q (want S@DOWN-UP): %v", val, err)
			}
			p.ShardFlaps = append(p.ShardFlaps, f)
		case "storm":
			var s RankStorm
			if _, err := fmt.Sscanf(val, "%d@%d", &s.Ranks, &s.At); err != nil {
				return FleetPlan{}, fmt.Errorf("fault: bad storm clause %q (want RANKS@CYCLE): %v", val, err)
			}
			p.RankStorms = append(p.RankStorms, s)
		case "swstall":
			var s SwitchStall
			if _, err := fmt.Sscanf(val, "%d+%d", &s.Switch, &s.Cycles); err != nil {
				return FleetPlan{}, fmt.Errorf("fault: bad swstall clause %q (want SWITCH+CYCLES): %v", val, err)
			}
			p.SwitchStalls = append(p.SwitchStalls, s)
		case "rank", "ecc", "stall":
			baseClauses = append(baseClauses, clause)
		default:
			return FleetPlan{}, fmt.Errorf("fault: unknown fleet clause key %q", key)
		}
	}
	base, err := Parse(strings.Join(baseClauses, ";"))
	if err != nil {
		return FleetPlan{}, err
	}
	p.Shard = base
	if err := p.Validate(); err != nil {
		return FleetPlan{}, err
	}
	return p, nil
}
