// Package fault is the deterministic fault-injection framework threaded
// through the memory model, the Fafnir engine, and the host batch layer.
//
// Three fault classes are modelled, each attachable to a run as part of a
// Plan:
//
//   - rank failures: a memory rank goes dark at a scheduled cycle and stays
//     dark (a dead DIMM, a failed buffer chip). Reads that would land on a
//     dark rank must be remapped to a replica placement by the host, or the
//     run fails with ErrRankFailed.
//   - transient read faults: a returned vector is flagged corrupt, modelling
//     an ECC-detected (but uncorrectable in-line) error. The host retries
//     the read with capped exponential backoff, charging the extra cycles to
//     the simulated clock; when every attempt faults the run fails with
//     ErrRetriesExhausted.
//   - PE stalls: a tree node's pipeline latency spikes by a fixed number of
//     cycles (a slow clock domain crossing, a congested link). Stalls only
//     perturb timing, never values.
//
// Everything is seed-driven and deterministic: two runs with the same Plan
// observe exactly the same faults, which keeps degraded-mode experiments
// reproducible and lets tests assert bit-identical outputs.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fafnir/internal/sim"
)

// Structured failure modes engines report instead of panicking. Callers
// match them with errors.Is.
var (
	// ErrRankFailed reports a read addressed to a dark rank with no live
	// replica to remap to.
	ErrRankFailed = errors.New("fault: rank failed")
	// ErrInvariantViolated reports a broken conservation invariant in the
	// reduction tree (header accounting no longer covers the batch).
	ErrInvariantViolated = errors.New("fault: invariant violated")
	// ErrRetriesExhausted reports a read whose every retry attempt came back
	// corrupt.
	ErrRetriesExhausted = errors.New("fault: retries exhausted")
)

// RankFailure schedules one rank going dark. The rank stays dark from cycle
// At (memory-clock domain) onward.
type RankFailure struct {
	// Rank is the global rank identifier.
	Rank int
	// At is the first memory-clock cycle at which the rank is dark.
	At sim.Cycle
}

// PEStall schedules a latency spike on one tree node.
type PEStall struct {
	// PE is the tree node identifier (PENode.ID).
	PE int
	// Extra is the additional PE-clock cycles charged per traversal of the
	// stalled node.
	Extra sim.Cycle
}

// Plan is a complete, serializable fault schedule. The zero value injects
// nothing and is exactly the fault-free run.
type Plan struct {
	// Seed drives the transient-fault draw. Two plans with equal seeds and
	// probabilities observe identical fault patterns.
	Seed uint64
	// RankFailures lists ranks that go dark.
	RankFailures []RankFailure
	// ReadFaultProb is the probability in [0,1) that one vector read returns
	// corrupt (ECC-flagged) data. Each retry attempt redraws.
	ReadFaultProb float64
	// MaxConsecutiveFaults caps how many times in a row one read can fault,
	// bounding the retry storm so a positive ReadFaultProb cannot wedge a
	// run. Zero selects DefaultMaxConsecutiveFaults.
	MaxConsecutiveFaults int
	// MaxRetries is the host retry budget per read. Zero selects
	// DefaultMaxRetries.
	MaxRetries int
	// RetryBackoff is the base backoff in memory-clock cycles before the
	// first retry; successive retries double it (capped at 8x). Zero selects
	// DefaultRetryBackoff.
	RetryBackoff sim.Cycle
	// PEStalls lists tree nodes with spiked latency.
	PEStalls []PEStall
}

// Defaults for the retry policy, chosen so a handful of transient faults
// costs visible but bounded cycles.
const (
	DefaultMaxConsecutiveFaults = 3
	DefaultMaxRetries           = 5
	DefaultRetryBackoff         = sim.Cycle(64)
)

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return len(p.RankFailures) == 0 && p.ReadFaultProb == 0 && len(p.PEStalls) == 0
}

// Validate reports a descriptive error for an unusable plan.
func (p Plan) Validate() error {
	switch {
	case p.ReadFaultProb < 0 || p.ReadFaultProb >= 1:
		return fmt.Errorf("fault: ReadFaultProb %v outside [0,1)", p.ReadFaultProb)
	case p.MaxConsecutiveFaults < 0:
		return fmt.Errorf("fault: MaxConsecutiveFaults must be non-negative, got %d", p.MaxConsecutiveFaults)
	case p.MaxRetries < 0:
		return fmt.Errorf("fault: MaxRetries must be non-negative, got %d", p.MaxRetries)
	}
	for _, f := range p.RankFailures {
		if f.Rank < 0 {
			return fmt.Errorf("fault: rank failure on negative rank %d", f.Rank)
		}
	}
	for _, s := range p.PEStalls {
		if s.PE < 0 {
			return fmt.Errorf("fault: PE stall on negative PE %d", s.PE)
		}
	}
	return nil
}

// maxConsecutive resolves the consecutive-fault cap.
func (p Plan) maxConsecutive() int {
	if p.MaxConsecutiveFaults == 0 {
		return DefaultMaxConsecutiveFaults
	}
	return p.MaxConsecutiveFaults
}

// Retries resolves the host retry budget.
func (p Plan) Retries() int {
	if p.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// Backoff resolves the base retry backoff.
func (p Plan) Backoff() sim.Cycle {
	if p.RetryBackoff == 0 {
		return DefaultRetryBackoff
	}
	return p.RetryBackoff
}

// BackoffAt reports the backoff charged before retry attempt (1-based):
// exponential doubling from the base, capped at 8x.
func (p Plan) BackoffAt(attempt int) sim.Cycle {
	base := p.Backoff()
	b := base
	for i := 1; i < attempt && b < 8*base; i++ {
		b *= 2
	}
	if b > 8*base {
		b = 8 * base
	}
	return b
}

// Injector is a compiled plan: deterministic fault decisions for one run.
// It is not safe for concurrent use (simulations are single-goroutine).
type Injector struct {
	plan     Plan
	darkAt   map[int]sim.Cycle // rank -> first dark cycle
	stallBy  map[int]sim.Cycle // PE id -> extra cycles
	probBits uint64            // ReadFaultProb scaled to a 63-bit threshold
	draws    uint64            // sequence number of transient-fault draws
	streak   int               // consecutive faults drawn
}

// NewInjector compiles a plan. numRanks bounds the rank identifiers; a plan
// naming a rank or probability out of range is rejected here rather than
// mid-simulation.
func NewInjector(p Plan, numRanks int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		plan:    p,
		darkAt:  make(map[int]sim.Cycle, len(p.RankFailures)),
		stallBy: make(map[int]sim.Cycle, len(p.PEStalls)),
	}
	for _, f := range p.RankFailures {
		if f.Rank >= numRanks {
			return nil, fmt.Errorf("fault: rank failure on rank %d outside [0,%d)", f.Rank, numRanks)
		}
		if at, ok := inj.darkAt[f.Rank]; !ok || f.At < at {
			inj.darkAt[f.Rank] = f.At
		}
	}
	for _, s := range p.PEStalls {
		inj.stallBy[s.PE] += s.Extra
	}
	if p.ReadFaultProb > 0 {
		inj.probBits = uint64(p.ReadFaultProb * float64(1<<63))
	}
	return inj, nil
}

// Plan returns the compiled plan.
func (i *Injector) Plan() Plan { return i.plan }

// Active reports whether the injector can ever fire.
func (i *Injector) Active() bool { return i != nil && !i.plan.Empty() }

// RankFailed reports whether global rank r is dark at cycle now.
func (i *Injector) RankFailed(r int, now sim.Cycle) bool {
	if i == nil {
		return false
	}
	at, ok := i.darkAt[r]
	return ok && now >= at
}

// FailedRanks lists the ranks dark at cycle now, sorted.
func (i *Injector) FailedRanks(now sim.Cycle) []int {
	if i == nil {
		return nil
	}
	var out []int
	for r, at := range i.darkAt {
		if now >= at {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// splitmix64 is the deterministic draw hash (Vigna's SplitMix64 finalizer),
// the same generator family the embedding store uses for its contents.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ReadFault draws whether the next vector read attempt comes back corrupt.
// Draws are sequenced, so the pattern depends only on the plan seed and the
// order of reads — deterministic for a deterministic engine. The consecutive
// cap guarantees forward progress: after MaxConsecutiveFaults faulty draws in
// a row the next draw is forced clean.
func (i *Injector) ReadFault() bool {
	if i == nil || i.probBits == 0 {
		return false
	}
	seq := i.draws
	i.draws++
	if i.streak >= i.plan.maxConsecutive() {
		i.streak = 0
		return false
	}
	faulty := splitmix64(i.plan.Seed^(seq*0x9e3779b97f4a7c15))>>1 < i.probBits
	if faulty {
		i.streak++
	} else {
		i.streak = 0
	}
	return faulty
}

// PEStall reports the extra PE-clock cycles charged per traversal of PE id.
func (i *Injector) PEStall(id int) sim.Cycle {
	if i == nil {
		return 0
	}
	return i.stallBy[id]
}

// String renders the plan compactly (the Parse format).
func (p Plan) String() string {
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, f := range p.RankFailures {
		parts = append(parts, fmt.Sprintf("rank=%d@%d", f.Rank, f.At))
	}
	if p.ReadFaultProb > 0 {
		parts = append(parts, fmt.Sprintf("ecc=%g", p.ReadFaultProb))
	}
	for _, s := range p.PEStalls {
		parts = append(parts, fmt.Sprintf("stall=%d+%d", s.PE, s.Extra))
	}
	return strings.Join(parts, ";")
}

// Parse builds a plan from a compact spec, the format of fafnir-sim's
// -faults flag: semicolon-separated clauses of
//
//	seed=N         transient-fault seed
//	rank=R@C       rank R goes dark at memory cycle C
//	ecc=P          each vector read faults with probability P (0 <= P < 1)
//	stall=PE+N     tree node PE gains N extra cycles per traversal
//
// e.g. "rank=3@0;ecc=0.001;stall=5+200;seed=9". An empty spec is the empty
// plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "seed":
			if _, err := fmt.Sscanf(val, "%d", &p.Seed); err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
		case "rank":
			var f RankFailure
			if _, err := fmt.Sscanf(val, "%d@%d", &f.Rank, &f.At); err != nil {
				return Plan{}, fmt.Errorf("fault: bad rank clause %q (want R@CYCLE): %v", val, err)
			}
			p.RankFailures = append(p.RankFailures, f)
		case "ecc":
			if _, err := fmt.Sscanf(val, "%g", &p.ReadFaultProb); err != nil {
				return Plan{}, fmt.Errorf("fault: bad ecc probability %q: %v", val, err)
			}
		case "stall":
			var s PEStall
			if _, err := fmt.Sscanf(val, "%d+%d", &s.PE, &s.Extra); err != nil {
				return Plan{}, fmt.Errorf("fault: bad stall clause %q (want PE+CYCLES): %v", val, err)
			}
			p.PEStalls = append(p.PEStalls, s)
		default:
			return Plan{}, fmt.Errorf("fault: unknown clause key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
