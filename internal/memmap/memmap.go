// Package memmap maps embedding tables onto the simulated DDR4 address
// space following Fig. 4b of the paper: embedding vectors (512 B each in the
// paper's configuration) are interleaved across ranks at vector granularity,
// so consecutive vectors land on consecutive ranks and any batch of lookups
// spreads over the whole memory system.
package memmap

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/header"
)

// Layout places the rows of a set of embedding tables into the address space
// of a dram.Config. Tables are laid out back to back: the global row number
// of row r of table t is the sum of the row counts of tables 0..t-1 plus r.
// Global rows are then rank-interleaved by the dram address mapping.
type Layout struct {
	cfg         dram.Config
	vectorBytes int
	rowsPer     []int
	rowBase     []uint64 // prefix sums of rowsPer
	totalRows   uint64
	ranks       uint64 // cfg.TotalRanks(), cached for the Rank fast path
}

// New builds a layout for tables with the given per-table row counts and a
// vector size of vectorBytes. vectorBytes must equal the dram interleave
// granularity so one vector occupies exactly one rank slot; mismatches are
// configuration bugs and panic.
func New(cfg dram.Config, vectorBytes int, rowsPerTable []int) *Layout {
	if vectorBytes != cfg.InterleaveBytes {
		panic(fmt.Sprintf("memmap: vectorBytes %d must equal dram interleave %d", vectorBytes, cfg.InterleaveBytes))
	}
	if len(rowsPerTable) == 0 {
		panic("memmap: no tables")
	}
	l := &Layout{
		cfg:         cfg,
		vectorBytes: vectorBytes,
		rowsPer:     append([]int(nil), rowsPerTable...),
		rowBase:     make([]uint64, len(rowsPerTable)),
		ranks:       uint64(cfg.TotalRanks()),
	}
	var base uint64
	for i, n := range rowsPerTable {
		if n <= 0 {
			panic(fmt.Sprintf("memmap: table %d has %d rows", i, n))
		}
		l.rowBase[i] = base
		base += uint64(n)
	}
	l.totalRows = base
	return l
}

// Uniform builds a layout of tables tables each with rows rows.
func Uniform(cfg dram.Config, vectorBytes, tables, rows int) *Layout {
	per := make([]int, tables)
	for i := range per {
		per[i] = rows
	}
	return New(cfg, vectorBytes, per)
}

// Tables reports the number of tables in the layout.
func (l *Layout) Tables() int { return len(l.rowsPer) }

// Rows reports the number of rows of table t.
func (l *Layout) Rows(t int) int { return l.rowsPer[t] }

// TotalRows reports the number of embedding vectors across all tables.
func (l *Layout) TotalRows() uint64 { return l.totalRows }

// VectorBytes reports the size of one embedding vector in bytes.
func (l *Layout) VectorBytes() int { return l.vectorBytes }

// GlobalRow flattens (table, row) into the layout's global row number.
// It returns an error for out-of-range coordinates.
func (l *Layout) GlobalRow(table, row int) (uint64, error) {
	if table < 0 || table >= len(l.rowsPer) {
		return 0, fmt.Errorf("memmap: table %d out of range [0,%d)", table, len(l.rowsPer))
	}
	if row < 0 || row >= l.rowsPer[table] {
		return 0, fmt.Errorf("memmap: row %d out of range [0,%d) in table %d", row, l.rowsPer[table], table)
	}
	return l.rowBase[table] + uint64(row), nil
}

// SplitGlobalRow inverts GlobalRow.
func (l *Layout) SplitGlobalRow(g uint64) (table, row int, err error) {
	if g >= l.totalRows {
		return 0, 0, fmt.Errorf("memmap: global row %d out of range [0,%d)", g, l.totalRows)
	}
	// Linear scan is fine: table counts are small (the paper uses 32).
	for t := len(l.rowBase) - 1; t >= 0; t-- {
		if g >= l.rowBase[t] {
			return t, int(g - l.rowBase[t]), nil
		}
	}
	return 0, 0, fmt.Errorf("memmap: unreachable for row %d", g)
}

// Index converts (table, row) to the header.Index used in queries. The index
// is simply the global row number, which keeps the reduction-tree headers
// table-agnostic, exactly as the Fig. 6 example concatenates table number and
// in-table index into one identifier.
func (l *Layout) Index(table, row int) (header.Index, error) {
	g, err := l.GlobalRow(table, row)
	if err != nil {
		return 0, err
	}
	if g > uint64(^header.Index(0)) {
		return 0, fmt.Errorf("memmap: global row %d exceeds index width", g)
	}
	return header.Index(g), nil
}

// Addr returns the byte address of the embedding vector with the given
// header index.
func (l *Layout) Addr(idx header.Index) dram.Addr {
	return dram.Addr(uint64(idx) * uint64(l.vectorBytes))
}

// Rank returns the global rank holding the vector with the given index.
//
// This is the algebraic collapse of GlobalRank(Decode(Addr(idx))): vectors
// are slot-aligned (New enforces vectorBytes == InterleaveBytes), so the
// decode's slot index is exactly idx, the global rank is the slot residue,
// and GlobalRank inverts RankLocation. Engines call Rank several times per
// access on the timed path, so the full geometry decode was a measurable
// constant factor.
func (l *Layout) Rank(idx header.Index) int {
	return int(uint64(idx) % l.ranks)
}

// Location fully decodes the vector's physical placement.
func (l *Layout) Location(idx header.Index) dram.Location {
	return l.cfg.Decode(l.Addr(idx))
}

// Replica returns the placement of the vector's replica copy, used by the
// host to remap reads when the primary rank has failed. The replica of a
// vector on rank r lives on the diagonally opposite rank (r + ranks/2) mod
// ranks, so one rank failure never takes out both copies (for ranks >= 2),
// and a whole-memory failure pattern degrades evenly. Replica slots occupy a
// reserved region past all primary rows, aligned to a full rank rotation so
// the interleaved address mapping lands each replica on its intended rank.
func (l *Layout) Replica(idx header.Index) (int, dram.Addr, error) {
	if uint64(idx) >= l.totalRows {
		return 0, 0, fmt.Errorf("memmap: replica of index %d out of range [0,%d)", idx, l.totalRows)
	}
	ranks := l.cfg.TotalRanks()
	primary := l.Rank(idx)
	// For ranks >= 2 the rotation never maps a rank to itself; a single-rank
	// geometry degenerates to a same-rank copy that only covers transient
	// faults.
	replica := (primary + ranks/2) % ranks
	// First slot boundary past the primary rows, rounded up to a multiple of
	// the rank count so slot residues line up with global ranks.
	base := (l.totalRows + uint64(ranks) - 1) / uint64(ranks) * uint64(ranks)
	group := uint64(idx) / uint64(ranks) * uint64(ranks)
	slot := base + group + uint64(replica)
	return replica, dram.Addr(slot * uint64(l.vectorBytes)), nil
}

// RanksOf groups a set of indices by the global rank that stores them,
// preserving each group's input order. Engines use it to issue per-rank
// request streams.
func (l *Layout) RanksOf(indices []header.Index) map[int][]header.Index {
	out := make(map[int][]header.Index)
	for _, idx := range indices {
		r := l.Rank(idx)
		out[r] = append(out[r], idx)
	}
	return out
}
