package memmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fafnir/internal/dram"
	"fafnir/internal/header"
)

func testLayout() *Layout {
	return Uniform(dram.DDR4(), 512, 32, 1000)
}

func TestUniformShape(t *testing.T) {
	l := testLayout()
	if l.Tables() != 32 {
		t.Fatalf("Tables = %d", l.Tables())
	}
	if l.Rows(0) != 1000 || l.Rows(31) != 1000 {
		t.Fatal("Rows wrong")
	}
	if l.TotalRows() != 32000 {
		t.Fatalf("TotalRows = %d", l.TotalRows())
	}
	if l.VectorBytes() != 512 {
		t.Fatalf("VectorBytes = %d", l.VectorBytes())
	}
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("vector/interleave mismatch accepted")
		}
	}()
	New(dram.DDR4(), 256, []int{10})
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty table list accepted")
		}
	}()
	New(dram.DDR4(), 512, nil)
}

func TestNewPanicsOnZeroRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-row table accepted")
		}
	}()
	New(dram.DDR4(), 512, []int{10, 0})
}

func TestGlobalRowLayout(t *testing.T) {
	l := New(dram.DDR4(), 512, []int{5, 7, 3})
	cases := []struct {
		table, row int
		want       uint64
	}{
		{0, 0, 0}, {0, 4, 4}, {1, 0, 5}, {1, 6, 11}, {2, 0, 12}, {2, 2, 14},
	}
	for _, c := range cases {
		got, err := l.GlobalRow(c.table, c.row)
		if err != nil {
			t.Fatalf("GlobalRow(%d,%d): %v", c.table, c.row, err)
		}
		if got != c.want {
			t.Errorf("GlobalRow(%d,%d) = %d, want %d", c.table, c.row, got, c.want)
		}
		tb, rw, err := l.SplitGlobalRow(got)
		if err != nil || tb != c.table || rw != c.row {
			t.Errorf("SplitGlobalRow(%d) = (%d,%d,%v), want (%d,%d)", got, tb, rw, err, c.table, c.row)
		}
	}
}

func TestGlobalRowErrors(t *testing.T) {
	l := New(dram.DDR4(), 512, []int{5})
	if _, err := l.GlobalRow(-1, 0); err == nil {
		t.Error("negative table accepted")
	}
	if _, err := l.GlobalRow(1, 0); err == nil {
		t.Error("out-of-range table accepted")
	}
	if _, err := l.GlobalRow(0, 5); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, _, err := l.SplitGlobalRow(5); err == nil {
		t.Error("out-of-range global row accepted")
	}
}

func TestIndexAndAddr(t *testing.T) {
	l := testLayout()
	idx, err := l.Index(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1003 {
		t.Fatalf("Index = %d, want 1003", idx)
	}
	if l.Addr(idx) != dram.Addr(1003*512) {
		t.Fatalf("Addr = %d", l.Addr(idx))
	}
}

func TestConsecutiveIndicesSpreadOverRanks(t *testing.T) {
	l := testLayout()
	ranks := l.cfg.TotalRanks()
	for i := 0; i < 2*ranks; i++ {
		if got := l.Rank(header.Index(i)); got != i%ranks {
			t.Fatalf("index %d on rank %d, want %d", i, got, i%ranks)
		}
	}
}

func TestRanksOfGroups(t *testing.T) {
	l := testLayout()
	ranks := l.cfg.TotalRanks()
	indices := []header.Index{0, header.Index(ranks), 1, header.Index(2 * ranks)}
	groups := l.RanksOf(indices)
	if len(groups[0]) != 3 {
		t.Fatalf("rank 0 group = %v", groups[0])
	}
	if len(groups[1]) != 1 {
		t.Fatalf("rank 1 group = %v", groups[1])
	}
	// Input order preserved within a group.
	if groups[0][0] != 0 || groups[0][1] != header.Index(ranks) || groups[0][2] != header.Index(2*ranks) {
		t.Fatalf("rank 0 order = %v", groups[0])
	}
}

func TestLocationConsistentWithRank(t *testing.T) {
	l := testLayout()
	for i := 0; i < 100; i++ {
		idx := header.Index(i * 37)
		loc := l.Location(idx)
		if l.cfg.GlobalRank(loc) != l.Rank(idx) {
			t.Fatalf("Location and Rank disagree at %d", idx)
		}
	}
}

// Property: GlobalRow and SplitGlobalRow are inverses over the whole space.
func TestQuickGlobalRowRoundTrip(t *testing.T) {
	l := New(dram.DDR4(), 512, []int{11, 3, 29, 7})
	f := func(g uint16) bool {
		gr := uint64(g) % l.TotalRows()
		tb, rw, err := l.SplitGlobalRow(gr)
		if err != nil {
			return false
		}
		back, err := l.GlobalRow(tb, rw)
		return err == nil && back == gr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaPlacement(t *testing.T) {
	cfg := dram.DDR4()
	l := Uniform(cfg, 512, 4, 100)
	ranks := cfg.TotalRanks()
	seen := make(map[dram.Addr]header.Index)
	for g := uint64(0); g < l.TotalRows(); g++ {
		idx := header.Index(g)
		rank, addr, err := l.Replica(idx)
		if err != nil {
			t.Fatalf("Replica(%d): %v", idx, err)
		}
		if rank == l.Rank(idx) && ranks > 1 {
			t.Fatalf("replica of index %d shares primary rank %d", idx, rank)
		}
		if got := cfg.GlobalRank(cfg.Decode(addr)); got != rank {
			t.Fatalf("replica address of index %d decodes to rank %d, reported %d", idx, got, rank)
		}
		if uint64(addr) < l.TotalRows()*uint64(l.VectorBytes()) {
			t.Fatalf("replica of index %d at %d overlaps the primary region", idx, addr)
		}
		if prev, dup := seen[addr]; dup {
			t.Fatalf("replica addresses of indices %d and %d collide at %d", prev, idx, addr)
		}
		seen[addr] = idx
	}
}

func TestReplicaOutOfRange(t *testing.T) {
	l := Uniform(dram.DDR4(), 512, 1, 10)
	if _, _, err := l.Replica(header.Index(10)); err == nil {
		t.Fatal("Replica accepted out-of-range index")
	}
}
