package oracle

import (
	"fmt"
	"math/rand"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

// Workload is one randomly drawn system + batch configuration. Every field is
// derived deterministically from Seed, so a workload prints as its seed plus
// the shape it expanded to, and any conformance failure reproduces by
// re-running that seed.
type Workload struct {
	// Seed is the generator seed the workload was expanded from.
	Seed int64
	// Ranks is the memory-system width (8, 16, or 32 ranks).
	Ranks int
	// LeafFanIn is the Fafnir ranks-per-leaf-PE packaging (1 or 2).
	LeafFanIn int
	// BatchCapacity is the hardware batch size B.
	BatchCapacity int
	// NumQueries is the software batch size n.
	NumQueries int
	// QuerySize is the indices per query q.
	QuerySize int
	// VectorDim is the embedding dimension (the DRAM interleave granularity
	// follows it, one vector per rank slot).
	VectorDim int
	// ZipfS is the index-popularity skew; 0 draws uniformly.
	ZipfS float64
	// Op is the pooling operation.
	Op tensor.ReduceOp
}

// totalRows is the index space every workload draws from: 4 tables x 1024
// rows. Small enough that Zipf batches share indices heavily (exercising
// dedup, merging, and duplicate headers), large enough that uniform batches
// mostly do not.
const (
	workloadTables  = 4
	workloadRowsPer = 1024
)

// GenWorkload expands a seed into a workload. Distinct seeds cover the
// configuration space: every rank width and fan-in, hardware batches both
// smaller and larger than the software batch, every pooling op, and both
// uniform and skewed index popularity.
func GenWorkload(seed int64) Workload {
	r := rand.New(rand.NewSource(seed ^ 0x0fa17e5c0de))
	w := Workload{
		Seed:          seed,
		Ranks:         []int{8, 16, 32}[r.Intn(3)],
		LeafFanIn:     1 + r.Intn(2),
		BatchCapacity: []int{4, 8, 16, 32}[r.Intn(4)],
		NumQueries:    1 + r.Intn(40),
		QuerySize:     1 + r.Intn(16),
		VectorDim:     []int{16, 32, 128}[r.Intn(3)],
	}
	if r.Intn(2) == 0 {
		w.ZipfS = 1.1 + 0.9*r.Float64()
	}
	switch r.Intn(5) {
	case 0:
		w.Op = tensor.OpMin
	case 1:
		w.Op = tensor.OpMax
	case 2:
		w.Op = tensor.OpMean
	default:
		w.Op = tensor.OpSum // weighted toward the paper's default pooling
	}
	return w
}

// String renders the workload for failure messages: the seed first (the
// reproduction handle), then the expanded shape.
func (w Workload) String() string {
	dist := "uniform"
	if w.ZipfS > 0 {
		dist = fmt.Sprintf("zipf(%.2f)", w.ZipfS)
	}
	return fmt.Sprintf("seed=%d [ranks=%d fanin=%d B=%d n=%d q=%d dim=%d %s %s]",
		w.Seed, w.Ranks, w.LeafFanIn, w.BatchCapacity, w.NumQueries, w.QuerySize,
		w.VectorDim, dist, w.Op)
}

// Env is a built workload: the memory geometry, address layout, synthetic
// store, and drawn batch every engine replays.
type Env struct {
	W      Workload
	Mem    dram.Config
	Layout *memmap.Layout
	Store  *embedding.Store
	Batch  embedding.Batch
}

// Build expands the workload into a runnable environment.
func (w Workload) Build() (*Env, error) {
	mcfg := dram.DDR4()
	mcfg.Channels = w.Ranks / 8 // DDR4() keeps 8 ranks per channel
	mcfg.InterleaveBytes = 4 * w.VectorDim
	if err := mcfg.Validate(); err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", w, err)
	}

	layout := memmap.Uniform(mcfg, 4*w.VectorDim, workloadTables, workloadRowsPer)
	store, err := embedding.NewStore(layout.TotalRows(), w.VectorDim, uint64(w.Seed)+1)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", w, err)
	}

	gcfg := embedding.GeneratorConfig{
		NumQueries: w.NumQueries,
		QuerySize:  w.QuerySize,
		Rows:       layout.TotalRows(),
		Seed:       w.Seed*2_000_003 + 17,
	}
	if w.ZipfS > 0 {
		gcfg.Dist = embedding.Zipf
		gcfg.ZipfS = w.ZipfS
	}
	gen, err := embedding.NewGenerator(gcfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", w, err)
	}
	return &Env{W: w, Mem: mcfg, Layout: layout, Store: store, Batch: gen.Batch(w.Op)}, nil
}

// NewMem builds a fresh memory system for one engine run, so runs never share
// bank or bus state.
func (e *Env) NewMem() *dram.System { return dram.MustSystem(e.Mem) }

// FafnirConfig is the tree configuration matching the workload. parallelism
// is the worker-pool width (the harness sweeps it; 1 is the legacy serial
// path).
func (e *Env) FafnirConfig(parallelism int) core.Config {
	cfg := core.Default()
	cfg.NumRanks = e.W.Ranks
	cfg.LeafFanIn = e.W.LeafFanIn
	cfg.BatchCapacity = e.W.BatchCapacity
	cfg.VectorDim = e.W.VectorDim
	cfg.Op = e.W.Op
	cfg.Parallelism = parallelism
	return cfg
}
