package oracle

import (
	"fmt"
	"math/rand"

	"fafnir/internal/batch"
	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/recnmp"
	"fafnir/internal/tensor"
	"fafnir/internal/tensordimm"
)

// Check expands seed into a workload and runs the whole conformance suite
// against it: every engine versus the oracle, the read-each-unique-index-once
// property from the DRAM access log, cycle sanity bounds, and the metamorphic
// properties. A nil return means the seed passed; a non-nil error leads with
// the workload (whose first token is the reproducing seed).
func Check(seed int64) error {
	env, err := GenWorkload(seed).Build()
	if err != nil {
		return err
	}
	checks := []struct {
		name string
		run  func(*Env) error
	}{
		{"oracle-equality", (*Env).CheckEngines},
		{"read-once", (*Env).CheckReadOnce},
		{"cycle-sanity", (*Env).CheckCycleSanity},
		{"metamorphic", (*Env).CheckMetamorphic},
	}
	for _, c := range checks {
		if err := c.run(env); err != nil {
			return fmt.Errorf("%s: %s: %w", env.W, c.name, err)
		}
	}
	return nil
}

// engine builds a Fafnir engine for the environment at the given parallelism.
func (e *Env) engine(parallelism int) (*core.Engine, error) {
	return core.NewEngine(e.FafnirConfig(parallelism))
}

// CheckEngines replays the batch through Fafnir (functional and timed paths),
// RecNMP, TensorDIMM, and the host-only baseline and asserts every output set
// is bit-identical to the oracle's. Baselines must also report a plausible
// latency: positive total cycles covering their memory time.
func (e *Env) CheckEngines() error {
	want, err := Lookup(e.Store, e.Batch)
	if err != nil {
		return err
	}

	eng, err := e.engine(1)
	if err != nil {
		return err
	}
	fres, err := eng.Lookup(e.Store, e.Layout, e.Batch)
	if err != nil {
		return fmt.Errorf("fafnir lookup: %w", err)
	}
	if d := Diff(fres.Outputs, want); d != "" {
		return fmt.Errorf("fafnir lookup: %s", d)
	}
	if err := core.CheckOccupancyBound(fres, e.W.BatchCapacity); err != nil {
		return err
	}
	for _, dedup := range []bool{true, false} {
		tres, err := eng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch, dedup)
		if err != nil {
			return fmt.Errorf("fafnir timed dedup=%v: %w", dedup, err)
		}
		if d := Diff(tres.Outputs, want); d != "" {
			return fmt.Errorf("fafnir timed dedup=%v: %s", dedup, d)
		}
	}

	rcfg := recnmp.Default()
	rcfg.VectorBytes = e.Layout.VectorBytes()
	reng, err := recnmp.NewEngine(rcfg)
	if err != nil {
		return err
	}
	rres, err := reng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch)
	if err != nil {
		return fmt.Errorf("recnmp: %w", err)
	}
	if d := Diff(rres.Outputs, want); d != "" {
		return fmt.Errorf("recnmp: %s", d)
	}
	if rres.TotalCycles <= 0 || rres.TotalCycles < rres.MemCycles {
		return fmt.Errorf("recnmp: implausible cycles total=%d mem=%d", rres.TotalCycles, rres.MemCycles)
	}

	tcfg := tensordimm.Default()
	tcfg.VectorBytes = e.Layout.VectorBytes()
	teng, err := tensordimm.NewEngine(tcfg)
	if err != nil {
		return err
	}
	tres, err := teng.TimedLookup(e.Store, e.NewMem(), e.Batch)
	if err != nil {
		return fmt.Errorf("tensordimm: %w", err)
	}
	if d := Diff(tres.Outputs, want); d != "" {
		return fmt.Errorf("tensordimm: %s", d)
	}
	if tres.TotalCycles <= 0 || tres.TotalCycles < tres.MemCycles {
		return fmt.Errorf("tensordimm: implausible cycles total=%d mem=%d", tres.TotalCycles, tres.MemCycles)
	}

	ceng, err := cpu.NewEngine(cpu.Default())
	if err != nil {
		return err
	}
	cres, err := ceng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch)
	if err != nil {
		return fmt.Errorf("cpu: %w", err)
	}
	if d := Diff(cres.Outputs, want); d != "" {
		return fmt.Errorf("cpu: %s", d)
	}
	if cres.TotalCycles <= 0 || cres.TotalCycles < cres.MemCycles {
		return fmt.Errorf("cpu: implausible cycles total=%d mem=%d", cres.TotalCycles, cres.MemCycles)
	}
	return nil
}

// hwBatches yields the batch's queries in hardware-batch chunks of
// BatchCapacity, mirroring the engine's own chunking. Deduplication operates
// within one hardware batch, so the read-once property is stated per chunk.
func (e *Env) hwBatches() []embedding.Batch {
	var out []embedding.Batch
	for start := 0; start < len(e.Batch.Queries); start += e.W.BatchCapacity {
		end := start + e.W.BatchCapacity
		if end > len(e.Batch.Queries) {
			end = len(e.Batch.Queries)
		}
		out = append(out, embedding.Batch{Queries: e.Batch.Queries[start:end], Op: e.Batch.Op})
	}
	return out
}

// CheckReadOnce attaches an access log to the DRAM model and verifies the
// paper's central claim from the observed traffic, not from engine counters:
// with dedup on, the timed run reads each unique index of each hardware batch
// exactly once (at the layout's address for it, one vector per read); with
// dedup off it reads exactly one vector per (query, index) incidence.
func (e *Env) CheckReadOnce() error {
	for _, dedup := range []bool{true, false} {
		want := make(map[dram.Addr]int)
		for _, hb := range e.hwBatches() {
			if dedup {
				for _, idx := range hb.UniqueIndices() {
					want[e.Layout.Addr(idx)]++
				}
			} else {
				for _, q := range hb.Queries {
					for _, idx := range q.Indices {
						want[e.Layout.Addr(idx)]++
					}
				}
			}
		}

		eng, err := e.engine(1)
		if err != nil {
			return err
		}
		mem := e.NewMem()
		log := &dram.AccessLog{}
		mem.AttachLog(log)
		res, err := eng.TimedLookup(e.Store, e.Layout, mem, e.Batch, dedup)
		if err != nil {
			return err
		}
		if res.MemoryReads != log.Len() {
			return fmt.Errorf("dedup=%v: engine reports %d reads, DRAM log saw %d",
				dedup, res.MemoryReads, log.Len())
		}
		got := make(map[dram.Addr]int)
		for _, rec := range log.Records() {
			if rec.Size != e.Layout.VectorBytes() {
				return fmt.Errorf("dedup=%v: read of %d bytes at %d, want vector size %d",
					dedup, rec.Size, rec.Addr, e.Layout.VectorBytes())
			}
			got[rec.Addr]++
		}
		for addr, n := range want {
			if got[addr] != n {
				return fmt.Errorf("dedup=%v: address %d read %d times, want %d",
					dedup, addr, got[addr], n)
			}
		}
		for addr, n := range got {
			if want[addr] == 0 {
				return fmt.Errorf("dedup=%v: %d reads of address %d belonging to no query", dedup, n, addr)
			}
		}
	}
	return nil
}

// CheckCycleSanity bounds the timed run from below with the engine's analytic
// lower bound and asserts latency is monotone as the batch grows query by
// query within its first hardware batch. (Across hardware batches the model
// double-buffers: reported latency is the last batch's completion, which can
// legitimately shrink when a new small batch is appended, so end-to-end
// monotonicity is only a per-hardware-batch property.) Cumulative counters —
// memory reads and bytes — must be monotone across the full batch.
func (e *Env) CheckCycleSanity() error {
	eng, err := e.engine(1)
	if err != nil {
		return err
	}
	bound := eng.LowerBoundCycles(e.Mem, e.Batch)
	for _, dedup := range []bool{true, false} {
		res, err := eng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch, dedup)
		if err != nil {
			return err
		}
		if res.TotalCycles < bound {
			return fmt.Errorf("dedup=%v: %d total cycles below analytic lower bound %d",
				dedup, res.TotalCycles, bound)
		}
	}

	prefix := func(k int) embedding.Batch {
		return embedding.Batch{Queries: e.Batch.Queries[:k], Op: e.Batch.Op}
	}
	limit := len(e.Batch.Queries)
	if limit > e.W.BatchCapacity {
		limit = e.W.BatchCapacity
	}
	var prevCycles, prevReads, prevBytes = int64(0), 0, uint64(0)
	for k := 1; k <= limit; k++ {
		res, err := eng.TimedLookup(e.Store, e.Layout, e.NewMem(), prefix(k), true)
		if err != nil {
			return err
		}
		if int64(res.TotalCycles) < prevCycles {
			return fmt.Errorf("prefix %d queries: %d cycles, shorter than %d-query prefix's %d",
				k, res.TotalCycles, k-1, prevCycles)
		}
		if res.MemoryReads < prevReads || res.BytesRead < prevBytes {
			return fmt.Errorf("prefix %d queries: reads/bytes %d/%d fell below prefix %d's %d/%d",
				k, res.MemoryReads, res.BytesRead, k-1, prevReads, prevBytes)
		}
		prevCycles, prevReads, prevBytes = int64(res.TotalCycles), res.MemoryReads, res.BytesRead
	}

	// Whole-batch counters must dominate the first hardware batch's.
	full, err := eng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch, true)
	if err != nil {
		return err
	}
	if full.MemoryReads < prevReads || full.BytesRead < prevBytes {
		return fmt.Errorf("full batch reads/bytes %d/%d below first hardware batch's %d/%d",
			full.MemoryReads, full.BytesRead, prevReads, prevBytes)
	}
	return nil
}

// CheckMetamorphic asserts the four workload-level properties the functional
// model must satisfy regardless of configuration:
//
//  1. permutation invariance — reordering the batch's queries permutes the
//     outputs and changes nothing else;
//  2. batch-split linearity — running two halves of the batch separately and
//     concatenating equals the one-shot run, and (sum pooling) splitting one
//     query's indices into two queries makes the two outputs sum to the
//     original, bit-exactly;
//  3. duplicate idempotence — appending a copy of an existing query yields
//     that query's exact output and adds zero memory accesses to a dedup plan;
//  4. parallelism equivalence — the timed engine at Parallelism 1, 2, and 0
//     (all cores) is bit-identical in outputs, cycles, and statistics.
func (e *Env) CheckMetamorphic() error {
	eng, err := e.engine(1)
	if err != nil {
		return err
	}
	base, err := eng.Lookup(e.Store, e.Layout, e.Batch)
	if err != nil {
		return err
	}
	n := len(e.Batch.Queries)

	// 1. Query-permutation invariance.
	perm := rand.New(rand.NewSource(e.W.Seed + 1)).Perm(n)
	permuted := embedding.Batch{Queries: make([]embedding.Query, n), Op: e.Batch.Op}
	for i, p := range perm {
		permuted.Queries[i] = e.Batch.Queries[p]
	}
	pres, err := eng.Lookup(e.Store, e.Layout, permuted)
	if err != nil {
		return fmt.Errorf("permuted batch: %w", err)
	}
	for i, p := range perm {
		if d := Diff(pres.Outputs[i:i+1], base.Outputs[p:p+1]); d != "" {
			return fmt.Errorf("permutation: output %d (original query %d): %s", i, p, d)
		}
	}

	// 2a. Batch-split linearity: halves concatenate to the whole.
	if n >= 2 {
		half := n / 2
		var joined []tensor.Vector
		for _, part := range []embedding.Batch{
			{Queries: e.Batch.Queries[:half], Op: e.Batch.Op},
			{Queries: e.Batch.Queries[half:], Op: e.Batch.Op},
		} {
			r, err := eng.Lookup(e.Store, e.Layout, part)
			if err != nil {
				return fmt.Errorf("split batch: %w", err)
			}
			for _, o := range r.Outputs {
				joined = append(joined, o)
			}
		}
		for i := range base.Outputs {
			if d := Diff(joined[i:i+1], base.Outputs[i:i+1]); d != "" {
				return fmt.Errorf("batch-split: query %d: %s", i, d)
			}
		}
	}

	// 2b. Sum pooling is linear in the index set: splitting a query's indices
	// into two queries makes the outputs sum, exactly, because the synthetic
	// store holds small integers.
	if e.Batch.Op == tensor.OpSum {
		for qi, q := range e.Batch.Queries {
			if q.Indices.Len() < 2 {
				continue
			}
			mid := q.Indices.Len() / 2
			split := embedding.Batch{Op: e.Batch.Op, Queries: []embedding.Query{
				{Indices: q.Indices[:mid].Clone()},
				{Indices: q.Indices[mid:].Clone()},
			}}
			r, err := eng.Lookup(e.Store, e.Layout, split)
			if err != nil {
				return fmt.Errorf("query-split: %w", err)
			}
			for el := range base.Outputs[qi] {
				if got := r.Outputs[0][el] + r.Outputs[1][el]; got != base.Outputs[qi][el] {
					return fmt.Errorf("query-split: query %d element %d: halves sum to %v, whole query %v",
						qi, el, got, base.Outputs[qi][el])
				}
			}
			break // one split query per workload keeps the suite fast
		}
	}

	// 3. Duplicate idempotence. The dedup plan of the extended batch issues
	// exactly as many reads: the copy contributes no new unique index.
	dup := embedding.Batch{Queries: append(append([]embedding.Query{}, e.Batch.Queries...),
		e.Batch.Queries[0]), Op: e.Batch.Op}
	dres, err := eng.Lookup(e.Store, e.Layout, dup)
	if err != nil {
		return fmt.Errorf("duplicated query: %w", err)
	}
	if d := Diff(dres.Outputs[:n], base.Outputs); d != "" {
		return fmt.Errorf("duplicate: original outputs changed: %s", d)
	}
	if d := Diff(dres.Outputs[n:], base.Outputs[:1]); d != "" {
		return fmt.Errorf("duplicate: copy of query 0 disagrees with it: %s", d)
	}
	before := batch.Build(e.Batch, true).NumAccesses()
	after := batch.Build(dup, true).NumAccesses()
	if before != after {
		return fmt.Errorf("duplicate: dedup plan grew from %d to %d accesses", before, after)
	}

	// 4. Parallelism-sweep equivalence: worker count must be unobservable.
	ref, err := eng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch, true)
	if err != nil {
		return err
	}
	for _, par := range []int{2, 0} {
		peng, err := e.engine(par)
		if err != nil {
			return err
		}
		got, err := peng.TimedLookup(e.Store, e.Layout, e.NewMem(), e.Batch, true)
		if err != nil {
			return fmt.Errorf("parallelism=%d: %w", par, err)
		}
		if d := Diff(got.Outputs, ref.Outputs); d != "" {
			return fmt.Errorf("parallelism=%d: %s", par, d)
		}
		if got.TotalCycles != ref.TotalCycles || got.MemCycles != ref.MemCycles ||
			got.ComputeCycles != ref.ComputeCycles || got.TransferCycles != ref.TransferCycles {
			return fmt.Errorf("parallelism=%d: cycles %d/%d/%d/%d differ from serial %d/%d/%d/%d",
				par, got.TotalCycles, got.MemCycles, got.ComputeCycles, got.TransferCycles,
				ref.TotalCycles, ref.MemCycles, ref.ComputeCycles, ref.TransferCycles)
		}
		if got.PETotals != ref.PETotals || got.MaxOccupancy != ref.MaxOccupancy ||
			got.MemoryReads != ref.MemoryReads || got.BytesRead != ref.BytesRead {
			return fmt.Errorf("parallelism=%d: statistics diverge from serial run", par)
		}
	}
	return nil
}
