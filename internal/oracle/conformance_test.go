package oracle

import (
	"flag"
	"fmt"
	"testing"
)

// seedBase shifts the conformance seed range; override to explore new
// workloads without touching code:
//
//	go test ./internal/oracle -run TestConformance -oracle-seed-base=1000
var seedBase = flag.Int64("oracle-seed-base", 0, "first seed of the conformance sweep")

// conformanceSeeds is how many seeded workloads the sweep replays per run.
// Each seed exercises every engine and every property (see Check), so this is
// ≥ 50 workload/config combinations per engine as the tier-1+ gate requires.
const conformanceSeeds = 56

// TestConformance is the harness entry point: every seed expands to a random
// workload and must pass the full suite. A failure message starts with
// "seed=N"; reproduce it with
//
//	go test ./internal/oracle -run 'TestConformance/seed=N$'
func TestConformance(t *testing.T) {
	for i := int64(0); i < conformanceSeeds; i++ {
		seed := *seedBase + i
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			if err := Check(seed); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCheckReportsSeed pins the failure-message contract: whatever breaks,
// the error must carry the reproducing seed.
func TestCheckReportsSeed(t *testing.T) {
	// Sanity: a passing seed returns nil (covered above, but keep the unit
	// contract local).
	if err := Check(*seedBase); err != nil {
		t.Fatalf("seed %d: %v", *seedBase, err)
	}
}
