// Package oracle is the repository's independent referee: a deliberately
// naive reference model of sparse gathering plus a conformance harness that
// replays seeded random workloads through every engine (Fafnir, RecNMP,
// TensorDIMM, the no-NDP host baseline) and checks them against the model and
// against each other.
//
// The reduction tree's own invariant checker lives inside the engine it
// guards; a bug in the shared header semantics could corrupt outputs and the
// checker alike. This package recomputes what the hardware model *should*
// produce from first principles — a map-based gather and a per-query pooling
// loop, no tree, no headers, no timing, no buffer reuse — and shares no code
// with the engines' reduction paths. Anything the two disagree on is a bug in
// one of them.
//
// Outputs are compared bit-for-bit, not within a tolerance. That is sound
// because the synthetic store (package embedding) holds small-integer values:
// float32 pooling of integers in [-8, 8) is exact at every association order
// the tree can produce, so sum, min, max, and mean (an exact sum scaled once
// by 1/n at the root) must agree to the last bit with the naive loop.
//
// Every check is driven by a seeded workload (GenWorkload); every failure
// message carries the seed, so any red run reproduces with a one-line test
// filter. See docs/ARCHITECTURE.md §10.
package oracle

import (
	"fmt"
	"math"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Lookup computes the reference outputs of a batch: one pooled vector per
// query, in query order. Each distinct index is fetched from the store exactly
// once into a map (the functional mirror of the paper's read-once claim), then
// every query pools its vectors with a plain loop. Empty queries produce zero
// vectors, matching the engines. It returns an error when the batch references
// an index outside the store or carries an unknown pooling operation.
func Lookup(store *embedding.Store, b embedding.Batch) ([]tensor.Vector, error) {
	gathered := make(map[header.Index]tensor.Vector)
	for _, q := range b.Queries {
		for _, idx := range q.Indices {
			if _, ok := gathered[idx]; ok {
				continue
			}
			v, err := store.Vector(idx)
			if err != nil {
				return nil, fmt.Errorf("oracle: %w", err)
			}
			gathered[idx] = v
		}
	}

	out := make([]tensor.Vector, len(b.Queries))
	for qi, q := range b.Queries {
		acc := make(tensor.Vector, store.Dim())
		switch b.Op {
		case tensor.OpSum, tensor.OpMean:
			for _, idx := range q.Indices {
				for e, x := range gathered[idx] {
					acc[e] += x
				}
			}
			if b.Op == tensor.OpMean && q.Indices.Len() > 0 {
				// The hardware's mean is a sum finalized by one multiply with
				// the reciprocal; reproduce that exact operation.
				inv := 1 / float32(q.Indices.Len())
				for e := range acc {
					acc[e] *= inv
				}
			}
		case tensor.OpMin:
			for e := range acc {
				acc[e] = float32(math.Inf(1))
			}
			for _, idx := range q.Indices {
				for e, x := range gathered[idx] {
					if x < acc[e] {
						acc[e] = x
					}
				}
			}
		case tensor.OpMax:
			for e := range acc {
				acc[e] = float32(math.Inf(-1))
			}
			for _, idx := range q.Indices {
				for e, x := range gathered[idx] {
					if x > acc[e] {
						acc[e] = x
					}
				}
			}
		default:
			return nil, fmt.Errorf("oracle: unknown pooling op %d", b.Op)
		}
		if q.Indices.Len() == 0 {
			// Engines emit a zero vector for an empty query regardless of op.
			acc = make(tensor.Vector, store.Dim())
		}
		out[qi] = acc
	}
	return out, nil
}

// Diff compares engine outputs against the oracle's bit-for-bit and returns a
// description of the first mismatch, or "" when they agree. A missing or
// short output slice is itself a mismatch.
func Diff(got, want []tensor.Vector) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d outputs for %d queries", len(got), len(want))
	}
	for qi := range want {
		if got[qi] == nil {
			return fmt.Sprintf("query %d has no output", qi)
		}
		if len(got[qi]) != len(want[qi]) {
			return fmt.Sprintf("query %d output dim %d, oracle %d", qi, len(got[qi]), len(want[qi]))
		}
		for e := range want[qi] {
			if got[qi][e] != want[qi][e] {
				return fmt.Sprintf("query %d element %d: engine %v, oracle %v",
					qi, e, got[qi][e], want[qi][e])
			}
		}
	}
	return ""
}
