package oracle

import (
	"strings"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func testStore(t *testing.T) *embedding.Store {
	t.Helper()
	return embedding.MustStore(64, 4, 7)
}

func q(indices ...header.Index) embedding.Query {
	return embedding.Query{Indices: header.NewIndexSet(indices...)}
}

func TestLookupOps(t *testing.T) {
	s := testStore(t)
	v0, v1, v2 := s.MustVector(0), s.MustVector(1), s.MustVector(2)

	for _, tc := range []struct {
		op   tensor.ReduceOp
		want func(e int) float32
	}{
		{tensor.OpSum, func(e int) float32 { return v0[e] + v1[e] + v2[e] }},
		{tensor.OpMean, func(e int) float32 { return (v0[e] + v1[e] + v2[e]) * (1 / float32(3)) }},
		{tensor.OpMin, func(e int) float32 { return min(v0[e], v1[e], v2[e]) }},
		{tensor.OpMax, func(e int) float32 { return max(v0[e], v1[e], v2[e]) }},
	} {
		b := embedding.Batch{Queries: []embedding.Query{q(0, 1, 2)}, Op: tc.op}
		out, err := Lookup(s, b)
		if err != nil {
			t.Fatalf("%v: %v", tc.op, err)
		}
		for e := range out[0] {
			if out[0][e] != tc.want(e) {
				t.Errorf("%v element %d = %v, want %v", tc.op, e, out[0][e], tc.want(e))
			}
		}
	}
}

func TestLookupAgainstGolden(t *testing.T) {
	s := testStore(t)
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		b := embedding.Batch{
			Queries: []embedding.Query{q(3), q(5, 9, 11, 13), q(5, 9), q(63)},
			Op:      op,
		}
		got, err := Lookup(s, b)
		if err != nil {
			t.Fatal(err)
		}
		want := b.MustGolden(s)
		if d := Diff(got, want); d != "" {
			t.Errorf("%v: oracle disagrees with embedding.Golden: %s", op, d)
		}
	}
}

func TestLookupEmptyQuery(t *testing.T) {
	s := testStore(t)
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		b := embedding.Batch{Queries: []embedding.Query{{}}, Op: op}
		out, err := Lookup(s, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || len(out[0]) != s.Dim() {
			t.Fatalf("%v: got %d outputs of dim %d", op, len(out), len(out[0]))
		}
		for e, x := range out[0] {
			if x != 0 {
				t.Errorf("%v: empty query element %d = %v, want 0", op, e, x)
			}
		}
	}
}

func TestLookupErrors(t *testing.T) {
	s := testStore(t)
	if _, err := Lookup(s, embedding.Batch{Queries: []embedding.Query{q(64)}, Op: tensor.OpSum}); err == nil {
		t.Error("out-of-range index: want error")
	}
	if _, err := Lookup(s, embedding.Batch{Queries: []embedding.Query{q(1)}, Op: tensor.ReduceOp(99)}); err == nil {
		t.Error("unknown op: want error")
	}
}

func TestDiff(t *testing.T) {
	a := []tensor.Vector{{1, 2}, {3, 4}}
	if d := Diff(a, []tensor.Vector{{1, 2}, {3, 4}}); d != "" {
		t.Errorf("equal slices diff %q", d)
	}
	for name, got := range map[string][]tensor.Vector{
		"length":  {{1, 2}},
		"nil":     {nil, {3, 4}},
		"dim":     {{1}, {3, 4}},
		"element": {{1, 2}, {3, 5}},
	} {
		if d := Diff(got, a); d == "" {
			t.Errorf("%s mismatch not reported", name)
		}
	}
}

func TestGenWorkloadDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := GenWorkload(seed), GenWorkload(seed)
		if a != b {
			t.Fatalf("seed %d expands differently: %v vs %v", seed, a, b)
		}
		if !strings.HasPrefix(a.String(), "seed=") {
			t.Fatalf("workload string %q does not lead with the seed", a)
		}
	}
	if GenWorkload(1) == GenWorkload(2) {
		t.Error("distinct seeds produced identical workloads")
	}
}

func TestWorkloadBuild(t *testing.T) {
	w := GenWorkload(42)
	env, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if env.Mem.TotalRanks() != w.Ranks {
		t.Errorf("built %d ranks, want %d", env.Mem.TotalRanks(), w.Ranks)
	}
	if env.Layout.VectorBytes() != 4*w.VectorDim {
		t.Errorf("layout vector %d bytes, want %d", env.Layout.VectorBytes(), 4*w.VectorDim)
	}
	if got := env.Batch.NumQueries(); got != w.NumQueries {
		t.Errorf("batch has %d queries, want %d", got, w.NumQueries)
	}
	if got := env.Batch.MaxQuerySize(); got > w.QuerySize {
		t.Errorf("max query size %d exceeds configured %d", got, w.QuerySize)
	}
	again, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range env.Batch.Queries {
		if !q.Indices.Equal(again.Batch.Queries[i].Indices) {
			t.Fatalf("rebuild drew a different batch at query %d", i)
		}
	}
}
