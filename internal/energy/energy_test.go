package energy

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := DDR4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{ActivatePJ: 0, BurstPJ: 1},
		{ActivatePJ: 1, BurstPJ: 0},
		{ActivatePJ: 1, BurstPJ: 1, StaticMWPerRank: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestDynamicPJ(t *testing.T) {
	m := Model{ActivatePJ: 100, BurstPJ: 10}
	c := Counts{Activates: 2, Bursts: 5}
	if got := m.DynamicPJ(c); got != 250 {
		t.Fatalf("DynamicPJ = %v", got)
	}
}

func TestStaticPJ(t *testing.T) {
	m := Model{ActivatePJ: 1, BurstPJ: 1, StaticMWPerRank: 1}
	// 1 mW x 2 ranks x 1 s = 2 mJ = 2e9 pJ.
	c := Counts{Ranks: 2, Runtime: 1200e6, ClockMHz: 1200}
	if got := m.StaticPJ(c); math.Abs(got-2e9) > 1 {
		t.Fatalf("StaticPJ = %v", got)
	}
	// No clock -> no static charge rather than a division by zero.
	if got := m.StaticPJ(Counts{Ranks: 2, Runtime: 100}); got != 0 {
		t.Fatalf("StaticPJ without clock = %v", got)
	}
}

func TestTotalPJ(t *testing.T) {
	m := Model{ActivatePJ: 100, BurstPJ: 10, StaticMWPerRank: 0}
	c := Counts{Activates: 1, Bursts: 1}
	if m.TotalPJ(c) != m.DynamicPJ(c) {
		t.Fatal("total != dynamic with zero static power")
	}
}

func TestSavings(t *testing.T) {
	m := DDR4()
	base := Counts{Activates: 100, Bursts: 800}
	opt := Counts{Activates: 50, Bursts: 400}
	if got := m.Savings(base, opt); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Savings = %v, want 0.5", got)
	}
	if got := m.Savings(Counts{}, opt); got != 0 {
		t.Fatalf("Savings from zero baseline = %v", got)
	}
}

func TestAccessSavingsPaperShape(t *testing.T) {
	// Fig. 15: the larger the batch, the larger the savings; exact values
	// are 34/43/58 % for the paper's traces.
	if got := AccessSavings(128, 84); math.Abs(got-0.34) > 0.005 {
		t.Fatalf("savings = %v", got)
	}
	if AccessSavings(0, 0) != 0 {
		t.Fatal("zero-access savings not zero")
	}
	if AccessSavings(100, 100) != 0 {
		t.Fatal("no-dedup savings not zero")
	}
}

func TestAcceleratorPJ(t *testing.T) {
	// 100 mW for 1 s = 0.1 J = 1e11 pJ.
	if got := AcceleratorPJ(100, 200e6, 200); math.Abs(got-1e11) > 1 {
		t.Fatalf("AcceleratorPJ = %v", got)
	}
	if AcceleratorPJ(0, 100, 200) != 0 || AcceleratorPJ(100, 100, 0) != 0 {
		t.Fatal("degenerate inputs should yield zero")
	}
}
