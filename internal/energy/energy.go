// Package energy models DRAM access energy, the basis of the paper's
// memory-energy-saving argument (Fig. 15): because Fafnir reads each unique
// index of a batch exactly once, it saves 34 %, 43 %, and 58 % of the memory
// accesses for batch sizes 8, 16, and 32, and DRAM energy dominates compute
// energy, so access savings translate directly into energy savings.
package energy

import (
	"fmt"

	"fafnir/internal/sim"
)

// Model holds per-event DRAM energy costs. The defaults are DDR4-class
// figures (activate+precharge per row cycle, read burst, and per-bit I/O);
// absolute joules matter less than ratios, which depend only on counts.
type Model struct {
	// ActivatePJ is the energy of one activate/precharge row cycle.
	ActivatePJ float64
	// BurstPJ is the energy of one 64 B read burst (core array + I/O).
	BurstPJ float64
	// StaticMWPerRank is background power per rank, charged over runtime.
	StaticMWPerRank float64
}

// DDR4 returns the default DDR4-class calibration.
func DDR4() Model {
	return Model{
		ActivatePJ:      2000,
		BurstPJ:         500,
		StaticMWPerRank: 50,
	}
}

// Validate reports a descriptive error for an unusable model.
func (m Model) Validate() error {
	if m.ActivatePJ <= 0 || m.BurstPJ <= 0 {
		return fmt.Errorf("energy: non-positive event energies %+v", m)
	}
	if m.StaticMWPerRank < 0 {
		return fmt.Errorf("energy: negative static power")
	}
	return nil
}

// Counts are the DRAM event counts of one run, taken from the dram.System
// statistics.
type Counts struct {
	Activates uint64 // row misses + conflicts
	Bursts    uint64
	Ranks     int
	Runtime   sim.Cycle // in DRAM cycles
	ClockMHz  float64
}

// DynamicPJ reports the dynamic energy of the run in picojoules.
func (m Model) DynamicPJ(c Counts) float64 {
	return float64(c.Activates)*m.ActivatePJ + float64(c.Bursts)*m.BurstPJ
}

// StaticPJ reports the background energy over the runtime.
func (m Model) StaticPJ(c Counts) float64 {
	if c.ClockMHz <= 0 {
		return 0
	}
	seconds := sim.Seconds(c.Runtime, c.ClockMHz)
	return m.StaticMWPerRank * 1e-3 * float64(c.Ranks) * seconds * 1e12
}

// TotalPJ reports dynamic plus static energy.
func (m Model) TotalPJ(c Counts) float64 {
	return m.DynamicPJ(c) + m.StaticPJ(c)
}

// Savings reports the fractional reduction going from the baseline counts to
// the optimized counts: 1 - optimized/baseline (dynamic energy only, the
// quantity Fig. 15's access reduction drives).
func (m Model) Savings(baseline, optimized Counts) float64 {
	b := m.DynamicPJ(baseline)
	if b == 0 {
		return 0
	}
	return 1 - m.DynamicPJ(optimized)/b
}

// AccessSavings is the pure access-count version of Fig. 15: the fraction of
// memory accesses eliminated by deduplication.
func AccessSavings(totalAccesses, uniqueAccesses int) float64 {
	if totalAccesses == 0 {
		return 0
	}
	return 1 - float64(uniqueAccesses)/float64(totalAccesses)
}

// AcceleratorPJ reports the energy of NDP logic drawing powerMW for the
// given runtime (cycles at clockMHz).
func AcceleratorPJ(powerMW float64, runtime sim.Cycle, clockMHz float64) float64 {
	if clockMHz <= 0 || powerMW <= 0 {
		return 0
	}
	return powerMW * 1e-3 * sim.Seconds(runtime, clockMHz) * 1e12
}
