package recnmp

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

func fixture(t *testing.T, cfg Config) (*Engine, *embedding.Store, *memmap.Layout, *dram.System) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, 4096)
	store := embedding.MustStore(layout.TotalRows(), 128, 5)
	return e, store, layout, dram.MustSystem(mcfg)
}

func testBatch(t *testing.T, n, q int, rows uint64, seed int64, dist embedding.Distribution) embedding.Batch {
	t.Helper()
	cfg := embedding.GeneratorConfig{NumQueries: n, QuerySize: q, Rows: rows, Seed: seed, Dist: dist}
	if dist == embedding.Zipf {
		cfg.ZipfS = 1.3
	}
	gen, err := embedding.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(4*64, 64, 2) // 4 lines, 2-way
	if c.Lines() != 4 {
		t.Fatalf("Lines = %d", c.Lines())
	}
	if c.Access(1) {
		t.Fatal("cold access hit")
	}
	if !c.Access(1) {
		t.Fatal("warm access missed")
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: accessing three distinct tags evicts the LRU one.
	c := NewCache(2*64, 64, 2)
	c.Access(0) // miss, insert
	c.Access(2) // miss, insert (same set: 1 set only)
	c.Access(0) // hit -> 2 becomes LRU
	c.Access(4) // miss, evicts 2
	if !c.Access(0) {
		t.Fatal("0 should still be cached")
	}
	if c.Access(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(64, 64, 1)
	c.Access(1)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("stats survived reset")
	}
	if c.Access(1) {
		t.Fatal("contents survived reset")
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 64, 1) },
		func() { NewCache(64, 0, 1) },
		func() { NewCache(64, 64, 0) },
		func() { NewCache(32, 64, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestCacheZeroHitRateBeforeUse(t *testing.T) {
	c := NewCache(64, 64, 1)
	if c.HitRate() != 0 {
		t.Fatal("hit rate before use")
	}
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CacheBytes = -1 },
		func(c *Config) { c.CacheBytes = 64; c.CacheWays = 0 },
		func(c *Config) { c.VectorBytes = 0 },
		func(c *Config) { c.ReduceCyclesPerStep = 0 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.DRAMClockMHz = 0 },
		func(c *Config) { c.Host.Cores = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTimedLookupGoldenOutputs(t *testing.T) {
	e, store, layout, mem := fixture(t, Default())
	b := testBatch(t, 8, 8, layout.TotalRows(), 1, embedding.Uniform)
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	for i := range golden {
		if !res.Outputs[i].Equal(golden[i]) {
			t.Fatalf("query %d mismatch", i)
		}
	}
	if res.TotalCycles == 0 || res.MemCycles == 0 {
		t.Fatalf("zero timing %+v", res)
	}
}

func TestSpatialLocalitySplit(t *testing.T) {
	// Hand-placed query: indices 0 and 32 share rank 0 (same DIMM);
	// index 5 is alone on rank 5. Two NDP-reducible vectors, one raw
	// forward.
	e, store, layout, mem := fixture(t, Default())
	b := embedding.Batch{
		Queries: []embedding.Query{{Indices: header.NewIndexSet(0, 32, 5)}},
		Op:      tensor.OpSum,
	}
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReducedAtNDP != 1 {
		t.Fatalf("ReducedAtNDP = %d, want 1", res.ReducedAtNDP)
	}
	if res.ForwardedRaw != 1 {
		t.Fatalf("ForwardedRaw = %d, want 1", res.ForwardedRaw)
	}
	// Channel traffic: one partial + one raw vector.
	if res.BytesToHost != 2*512 {
		t.Fatalf("BytesToHost = %d", res.BytesToHost)
	}
}

func TestScatteredQueriesForwardEverything(t *testing.T) {
	// Every index on a different DIMM: nothing reduces at NDP — the
	// spatial-locality failure mode of Section III-C.
	e, store, layout, mem := fixture(t, Default())
	// DIMMs hold rank pairs (0,1), (2,3), ...; pick one index per DIMM.
	b := embedding.Batch{
		Queries: []embedding.Query{{Indices: header.NewIndexSet(0, 2, 4, 6)}},
		Op:      tensor.OpSum,
	}
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReducedAtNDP != 0 {
		t.Fatalf("ReducedAtNDP = %d, want 0", res.ReducedAtNDP)
	}
	if res.ForwardedRaw != 4 {
		t.Fatalf("ForwardedRaw = %d, want 4", res.ForwardedRaw)
	}
	if res.NDPFraction() != 0 {
		t.Fatalf("NDPFraction = %v", res.NDPFraction())
	}
}

func TestCacheAbsorbsRepeats(t *testing.T) {
	e, store, layout, mem := fixture(t, Default())
	// The same query twice: second pass hits the rank caches.
	q := embedding.Query{Indices: header.NewIndexSet(0, 1, 2, 3)}
	b := embedding.Batch{Queries: []embedding.Query{q, q}, Op: tensor.OpSum}
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 4 {
		t.Fatalf("CacheHits = %d, want 4", res.CacheHits)
	}
	if res.MemoryReads != 4 {
		t.Fatalf("MemoryReads = %d, want 4", res.MemoryReads)
	}
	if e.CacheHitRate() != 0.5 {
		t.Fatalf("CacheHitRate = %v", e.CacheHitRate())
	}
	e.ResetCaches()
	if e.CacheHitRate() != 0 {
		t.Fatal("caches survived reset")
	}
}

func TestNoCacheConfiguration(t *testing.T) {
	cfg := Default()
	cfg.CacheBytes = 0
	e, store, layout, mem := fixture(t, cfg)
	q := embedding.Query{Indices: header.NewIndexSet(0, 1)}
	b := embedding.Batch{Queries: []embedding.Query{q, q}, Op: tensor.OpSum}
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Fatalf("CacheHits = %d without a cache", res.CacheHits)
	}
	if res.MemoryReads != 4 {
		t.Fatalf("MemoryReads = %d, want 4", res.MemoryReads)
	}
}

func TestMoreRanksReduceLocality(t *testing.T) {
	// The birthday-paradox argument: with queries spread over more DIMMs,
	// the NDP-reducible fraction falls.
	fractions := map[int]float64{}
	for _, dimms := range []int{1, 4} {
		mcfg := dram.DDR4()
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = dimms
		e, err := NewEngine(Default())
		if err != nil {
			t.Fatal(err)
		}
		layout := memmap.Uniform(mcfg, 512, 4, 4096)
		store := embedding.MustStore(layout.TotalRows(), 128, 3)
		mem := dram.MustSystem(mcfg)
		b := testBatch(t, 16, 8, layout.TotalRows(), 9, embedding.Uniform)
		res, err := e.TimedLookup(store, layout, mem, b)
		if err != nil {
			t.Fatal(err)
		}
		fractions[dimms] = res.NDPFraction()
	}
	if fractions[4] >= fractions[1] {
		t.Fatalf("NDP fraction did not fall with more DIMMs: %v", fractions)
	}
}

func TestCacheHitsCostCycles(t *testing.T) {
	e, store, layout, mem := fixture(t, Default())
	q := embedding.Query{Indices: header.NewIndexSet(0, 1, 2, 3)}
	b := embedding.Batch{Queries: []embedding.Query{q, q}, Op: tensor.OpSum}
	res, err := e.TimedLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatal("no cache hits to charge")
	}
	// Hits cost cycles on the rank caches; with only four hits the cost
	// hides under the DRAM time, but a hit-storm on one rank must gate the
	// gather.
	cfg := Default()
	cfg.CacheHitCycles = 1000 // exaggerate to make the gate visible
	e2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.TimedLookup(store, layout, dram.MustSystem(dram.DDR4()), b)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MemCycles <= res.MemCycles {
		t.Fatalf("expensive cache hits did not gate the gather: %d vs %d",
			res2.MemCycles, res.MemCycles)
	}
}
