package recnmp

import (
	"fmt"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Config parameterizes the RecNMP model.
type Config struct {
	// CacheBytes is the per-rank embedding cache capacity (128 KB in the
	// paper); 0 disables caching.
	CacheBytes int
	// CacheWays is the cache associativity.
	CacheWays int
	// VectorBytes is the embedding-vector (and cache-line) size.
	VectorBytes int
	// ReduceCyclesPerStep is the DIMM-NDP cost of one partial-sum step, in
	// reporting-clock cycles.
	ReduceCyclesPerStep sim.Cycle
	// CacheHitCycles is the cost of serving one read from the rank cache
	// (tag lookup plus SRAM access); the paper notes cache accesses "can
	// potentially cause a performance bottleneck".
	CacheHitCycles sim.Cycle
	// Host is the host-side model charged for forwarded raw vectors and the
	// final cross-DIMM combines.
	Host cpu.Config
	// ClockMHz is the reporting clock.
	ClockMHz float64
	// DRAMClockMHz converts memory time into the reporting clock.
	DRAMClockMHz float64
}

// Default returns the published configuration: 128 KB per-rank caches (the
// paper grants RecNMP "the optimal hit rate of 50 %"), 512 B vectors.
func Default() Config {
	return Config{
		CacheBytes:          128 << 10,
		CacheWays:           4,
		VectorBytes:         512,
		ReduceCyclesPerStep: 4,
		CacheHitCycles:      4,
		Host:                cpu.Default(),
		ClockMHz:            200,
		DRAMClockMHz:        1200,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.CacheBytes < 0:
		return fmt.Errorf("recnmp: CacheBytes must be non-negative, got %d", c.CacheBytes)
	case c.CacheBytes > 0 && c.CacheWays <= 0:
		return fmt.Errorf("recnmp: CacheWays must be positive, got %d", c.CacheWays)
	case c.VectorBytes <= 0:
		return fmt.Errorf("recnmp: VectorBytes must be positive, got %d", c.VectorBytes)
	case c.ReduceCyclesPerStep == 0:
		return fmt.Errorf("recnmp: ReduceCyclesPerStep must be positive")
	case c.ClockMHz <= 0:
		return fmt.Errorf("recnmp: ClockMHz must be positive, got %v", c.ClockMHz)
	case c.DRAMClockMHz <= 0:
		return fmt.Errorf("recnmp: DRAMClockMHz must be positive, got %v", c.DRAMClockMHz)
	}
	return c.Host.Validate()
}

// Result is the outcome of one RecNMP batch.
type Result struct {
	// Outputs holds the reduced vector per query.
	Outputs []tensor.Vector
	// MemCycles is when the last DRAM read completed (reporting clock).
	MemCycles sim.Cycle
	// NDPComputeCycles is the in-DIMM partial-sum time.
	NDPComputeCycles sim.Cycle
	// HostComputeCycles is the host time combining forwarded vectors and
	// per-DIMM partials.
	HostComputeCycles sim.Cycle
	// TotalCycles is the batch latency.
	TotalCycles sim.Cycle
	// MemoryReads counts DRAM vector reads (cache hits excluded).
	MemoryReads int
	// CacheHits counts reads served by the rank caches.
	CacheHits int
	// ReducedAtNDP counts pooling operations applied inside DIMMs.
	ReducedAtNDP int
	// ForwardedRaw counts vectors sent raw to the host because no co-located
	// partner existed in their DIMM.
	ForwardedRaw int
	// BytesToHost is the channel traffic.
	BytesToHost uint64
}

// NDPFraction reports the share of pooling operations performed at NDP —
// the spatial-locality metric of Fig. 11 (about 75 % in the paper's
// single-query example, falling as tables grow).
func (r *Result) NDPFraction() float64 {
	total := r.ReducedAtNDP + r.hostCombines()
	if total == 0 {
		return 1
	}
	return float64(r.ReducedAtNDP) / float64(total)
}

func (r *Result) hostCombines() int {
	// Every forwarded vector and every extra per-DIMM partial costs one
	// host combine; approximated by ForwardedRaw (the partial combines are
	// folded into it when reporting).
	return r.ForwardedRaw
}

// Engine is the RecNMP timing model.
type Engine struct {
	cfg    Config
	caches map[int]*Cache // per global rank, lazily built
}

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, caches: make(map[int]*Cache)}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// ResetCaches clears all rank caches (between independent experiments).
func (e *Engine) ResetCaches() {
	for _, c := range e.caches {
		c.Reset()
	}
}

// CacheHitRate reports the aggregate hit rate across all rank caches.
func (e *Engine) CacheHitRate() float64 {
	var hits, total uint64
	for _, c := range e.caches {
		hits += c.Hits()
		total += c.Hits() + c.Misses()
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func (e *Engine) cacheFor(rank int) *Cache {
	if e.cfg.CacheBytes == 0 {
		return nil
	}
	c, ok := e.caches[rank]
	if !ok {
		c = NewCache(e.cfg.CacheBytes, e.cfg.VectorBytes, e.cfg.CacheWays)
		e.caches[rank] = c
	}
	return c
}

// TimedLookup runs a batch through the RecNMP mechanism:
//
//  1. every query index is read from its rank (whole vector, row-major),
//     unless the rank cache holds it;
//  2. vectors of one query that co-locate in a DIMM are reduced by that
//     DIMM's NDP unit (spatial locality); the partial crosses the channel;
//  3. vectors alone in their DIMM are forwarded raw to the host;
//  4. the host combines the per-DIMM partials and raw vectors per query.
func (e *Engine) TimedLookup(store *embedding.Store, layout fafnir.Placement, mem *dram.System, b embedding.Batch) (*Result, error) {
	mcfg := mem.Config()
	outputs, err := b.Golden(store)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: outputs}

	ratio := e.cfg.DRAMClockMHz / e.cfg.ClockMHz
	toHost := func(d sim.Cycle) sim.Cycle {
		return sim.Cycle((float64(d) + ratio - 1) / ratio)
	}
	dimmOf := func(rank int) int { return rank / mcfg.RanksPerDIMM }

	var memDone sim.Cycle
	ndpBusy := make(map[int]sim.Cycle)   // per-DIMM NDP occupancy (units run in parallel)
	cacheBusy := make(map[int]sim.Cycle) // per-rank cache occupancy (overlaps DRAM)
	hostVectors := 0                     // raw vectors + partials the host must handle

	// Per-query DIMM grouping. The buckets are reused across queries and
	// visited in first-appearance order, which is deterministic (the map of
	// earlier versions iterated in random order) and allocation-free in
	// steady state.
	var perDimm [][]header.Index
	var dimmOrder []int
	for _, q := range b.Queries {
		dimmOrder = dimmOrder[:0]
		for _, idx := range q.Indices {
			d := dimmOf(layout.Rank(idx))
			for d >= len(perDimm) {
				perDimm = append(perDimm, nil)
			}
			if len(perDimm[d]) == 0 {
				dimmOrder = append(dimmOrder, d)
			}
			perDimm[d] = append(perDimm[d], idx)
		}
		for _, d := range dimmOrder {
			indices := perDimm[d]
			for _, idx := range indices {
				rank := layout.Rank(idx)
				if c := e.cacheFor(rank); c != nil && c.Access(idx) {
					res.CacheHits++
					cacheBusy[rank] += e.cfg.CacheHitCycles
					continue
				}
				// Partial sums stay in the DIMM (DestLocal) only when the
				// vector has a co-located partner; lone vectors stream to
				// the host.
				dest := dram.DestLocal
				if len(indices) == 1 {
					dest = dram.DestHost
				}
				done := mem.Read(0, layout.Addr(idx), e.cfg.VectorBytes, dest)
				memDone = sim.Max(memDone, done)
				res.MemoryReads++
			}
			if len(indices) >= 2 {
				// In-DIMM reduction: len-1 pipelined partial sums, then one
				// partial vector crosses the channel. NDP units of distinct
				// DIMMs run in parallel; work within a DIMM serializes.
				steps := len(indices) - 1
				res.ReducedAtNDP += steps
				ndpBusy[d] += sim.Cycle(steps) * e.cfg.ReduceCyclesPerStep
				res.BytesToHost += uint64(e.cfg.VectorBytes)
				hostVectors++
			} else {
				res.ForwardedRaw++
				res.BytesToHost += uint64(e.cfg.VectorBytes)
				hostVectors++
			}
			perDimm[d] = perDimm[d][:0]
		}
	}

	// Rank caches serve hits in parallel with DRAM; the slower of the two
	// paths gates the gather ("the cache accesses can potentially cause a
	// performance bottleneck").
	res.MemCycles = toHost(memDone)
	for _, busy := range cacheBusy {
		if busy > res.MemCycles {
			res.MemCycles = busy
		}
	}
	for _, busy := range ndpBusy {
		if busy > res.NDPComputeCycles {
			res.NDPComputeCycles = busy
		}
	}

	// The host combines each query's partials/raw vectors.
	hostEngine, err := cpu.NewEngine(e.cfg.Host)
	if err != nil {
		return nil, err
	}
	res.HostComputeCycles = hostEngine.HandleVectors(hostVectors)

	// Partial/raw transfer beyond what DestHost reads already charged: the
	// per-DIMM partials produced at NDP must also cross the channels.
	xfer := toHost(mcfg.TransferCycles(int(res.BytesToHost) - res.ForwardedRaw*e.cfg.VectorBytes))

	res.TotalCycles = res.MemCycles + res.NDPComputeCycles + res.HostComputeCycles + xfer
	return res, nil
}
