// Package recnmp models the RecNMP baseline (Ke et al., ISCA 2020) as the
// FAFNIR paper characterizes it in Section III: rank-level parallelism for
// reading distinct whole vectors, near-data reduction *only* when a query's
// vectors co-locate in one DIMM (spatial locality), raw forwarding to the
// host otherwise, and a 128 KB per-rank cache to absorb repeated indices.
package recnmp

import (
	"fmt"

	"fafnir/internal/header"
)

// Cache is a set-associative LRU cache of embedding vectors, keyed by index.
// It is the rank-local "EmbCache" of RecNMP; the FAFNIR paper notes that no
// more than a ~50 % hit rate is achievable even at 128 KB per rank.
type Cache struct {
	sets   int
	ways   int
	lines  [][]cacheLine // [set][way]
	tick   uint64
	hits   uint64
	misses uint64
}

type cacheLine struct {
	valid  bool
	tag    header.Index
	lastAt uint64
}

// NewCache builds a cache holding capacityBytes/lineBytes lines organized in
// ways-associative sets. It panics on invalid geometry (construction-time
// misuse).
func NewCache(capacityBytes, lineBytes, ways int) *Cache {
	if capacityBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("recnmp: bad cache geometry %d/%d/%d", capacityBytes, lineBytes, ways))
	}
	lines := capacityBytes / lineBytes
	if lines == 0 {
		panic("recnmp: cache smaller than one line")
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
		ways = lines
	}
	c := &Cache{sets: sets, ways: ways}
	c.lines = make([][]cacheLine, sets)
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, ways)
	}
	return c
}

// Lines reports the cache's total line count.
func (c *Cache) Lines() int { return c.sets * c.ways }

// Access looks up idx, updating LRU state, and inserts it on a miss.
// It reports whether the access hit.
func (c *Cache) Access(idx header.Index) bool {
	c.tick++
	set := c.lines[int(uint(idx)%uint(c.sets))]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == idx {
			l.lastAt = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lastAt < victim.lastAt {
			victim = l
		}
	}
	victim.valid = true
	victim.tag = idx
	victim.lastAt = c.tick
	return false
}

// HitRate reports hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Hits reports the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		for j := range c.lines[i] {
			c.lines[i][j] = cacheLine{}
		}
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}
