package hwmodel

import (
	"math"
	"strings"
	"testing"

	"fafnir/internal/fafnir"
)

func TestHeaderBytesMatchesPaper(t *testing.T) {
	// "a 10 B header (16 x 5/8) for q = 16".
	b := PaperBuffers(8)
	if got := b.HeaderBytes(); got != 10 {
		t.Fatalf("HeaderBytes = %d, want 10", got)
	}
	if got := b.EntryBytes(); got != 522 {
		t.Fatalf("EntryBytes = %d, want 522", got)
	}
}

func TestBufferScalesLinearly(t *testing.T) {
	small := PaperBuffers(8).PEBufferBytes()
	mid := PaperBuffers(16).PEBufferBytes()
	large := PaperBuffers(32).PEBufferBytes()
	if mid != 2*small || large != 4*small {
		t.Fatalf("buffers %d/%d/%d not linear in B", small, mid, large)
	}
}

func TestNodeBufferIsSevenPEs(t *testing.T) {
	b := PaperBuffers(16)
	if b.NodeBufferBytes(7) != 7*b.PEBufferBytes() {
		t.Fatal("node buffer not 7x PE buffer")
	}
}

func TestTableIPublishedRatios(t *testing.T) {
	// The published node/PE ratio must be the 7-PE node composition.
	for batch, row := range TableIPublished {
		ratio := row.NodeKB / row.PEKB
		if math.Abs(ratio-7) > 0.1 {
			t.Fatalf("B=%d published node/PE ratio %.2f, want ~7", batch, ratio)
		}
	}
	// And the published PE sizes double with B as the analytic model does.
	if math.Abs(TableIPublished[16].PEKB/TableIPublished[8].PEKB-2) > 0.05 {
		t.Fatal("published PE buffers not linear in B")
	}
}

func TestKB(t *testing.T) {
	if KB(2048) != 2 {
		t.Fatalf("KB(2048) = %v", KB(2048))
	}
}

func TestTableV(t *testing.T) {
	rows := TableV()
	if len(rows) != 3 {
		t.Fatalf("TableV rows = %d", len(rows))
	}
	full := rows[2]
	if full.LUTPct != 5.0 || full.BRAMPct != 13.0 {
		t.Fatalf("full-system row %+v", full)
	}
	// Per-node utilization below system utilization.
	for _, r := range rows[:2] {
		if r.LUTPct >= full.LUTPct || r.BRAMPct >= full.BRAMPct {
			t.Fatalf("node row %+v exceeds system", r)
		}
	}
}

func TestTableVISystemTotals(t *testing.T) {
	a := TableVI()
	// "1.2 mm^2 to a memory system of 32 ranks": 4 DIMM/rank + 1 channel.
	area := a.SystemArea(4, 1)
	if math.Abs(area-1.253) > 0.01 {
		t.Fatalf("system area %.3f, want ~1.25", area)
	}
	// "in total, 111.64 mW to a four-channel memory system".
	power := a.SystemPowerMW(4, 1)
	if math.Abs(power-111.64) > 0.01 {
		t.Fatalf("system power %.2f, want 111.64", power)
	}
	// Fafnir's added power must be negligible next to DIMM power and far
	// below RecNMP's per-DIMM processing unit.
	if power/1000 >= a.DDR4DIMMPowerW {
		t.Fatal("added power not negligible vs one DIMM")
	}
	perDIMM := a.DIMMRankNodePowerMW / 4
	if perDIMM >= a.RecNMPPUPowerMW {
		t.Fatal("per-DIMM power not below RecNMP's")
	}
}

func TestNodeAreaConsistentWithPEs(t *testing.T) {
	a := TableVI()
	// A 7-PE node chip cannot be smaller than... it is actually *smaller*
	// than 7 loose PEs (shared pads/control) but must exceed one PE.
	if a.DIMMRankNodeAreaMM2 <= a.PEAreaMM2 {
		t.Fatal("node smaller than one PE")
	}
	if a.LeafPEAreaMM2 <= a.PEAreaMM2 {
		t.Fatal("leaf PE (with multipliers) not larger than plain PE")
	}
}

func TestFig16(t *testing.T) {
	for _, p := range Fig16a() {
		var sum float64
		for _, s := range p.Breakdown {
			sum += s.Fraction
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s breakdown sums to %v", p.Name, sum)
		}
		if p.TotalW <= 0 {
			t.Fatalf("%s power %v", p.Name, p.TotalW)
		}
	}
	var sum float64
	for _, s := range Fig16b() {
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ASIC breakdown sums to %v", sum)
	}
}

func TestConnections(t *testing.T) {
	// 4 channels x 32 attach points all-to-all vs the tree.
	allToAll, tree := Connections(4, 32, 32)
	if allToAll != 128 {
		t.Fatalf("all-to-all = %d", allToAll)
	}
	if tree != 66 { // (2*32-2)+4
		t.Fatalf("fafnir links = %d", tree)
	}
	if tree >= allToAll {
		t.Fatal("tree does not save connections")
	}
}

func TestDescribeTree(t *testing.T) {
	tr, err := fafnir.NewTree(fafnir.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := DescribeTree(tr, TableVI())
	if !strings.Contains(s, "31 PEs") {
		t.Fatalf("description %q", s)
	}
}
