// Package hwmodel holds the hardware cost model of the paper's FPGA and
// ASIC implementations: the Table I buffer sizing (re-derived analytically),
// the Table IV pipeline latencies, the Table V FPGA resource utilization,
// the Table VI ASIC area/power numbers, and the Fig. 16 power breakdowns.
//
// The FPGA (XCVU9P) and the 7 nm ASAP7 flow are not available in this
// reproduction, so the published figures are recorded as model constants and
// everything derivable (buffer capacities, system totals, per-DIMM
// overheads) is recomputed from first principles so configuration sweeps
// stay consistent.
package hwmodel

import (
	"fmt"

	"fafnir/internal/fafnir"
	"fafnir/internal/header"
)

// BufferSpec sizes the FIFO buffers of a PE (Table I): each of the two
// input buffers holds B entries of a value plus a header.
type BufferSpec struct {
	// BatchCapacity is B.
	BatchCapacity int
	// ValueBytes is the embedding-vector size (512 B in the paper).
	ValueBytes int
	// QuerySize is q, the maximum indices per query (16).
	QuerySize int
	// IndexBits is the width of one index (5 bits for 32 tables).
	IndexBits int
}

// PaperBuffers returns the published configuration: 512 B values, q=16,
// 5-bit indices.
func PaperBuffers(batch int) BufferSpec {
	return BufferSpec{BatchCapacity: batch, ValueBytes: 512, QuerySize: 16, IndexBits: 5}
}

// HeaderBytes is the per-entry header size: q indices of IndexBits each,
// rounded up to bytes (the paper's 10 B for q=16 at 5 bits).
func (b BufferSpec) HeaderBytes() int {
	return (header.Bits(b.IndexBits, b.QuerySize) + 7) / 8
}

// EntryBytes is one buffered entry: value plus header.
func (b BufferSpec) EntryBytes() int { return b.ValueBytes + b.HeaderBytes() }

// PEBufferBytes is the total buffering of one PE: two input FIFOs of B
// entries each.
func (b BufferSpec) PEBufferBytes() int { return 2 * b.BatchCapacity * b.EntryBytes() }

// NodeBufferBytes is the buffering of a node of n PEs (7 for a DIMM/rank
// node, 3 for the channel node).
func (b BufferSpec) NodeBufferBytes(pes int) int { return pes * b.PEBufferBytes() }

// KB converts bytes to binary kilobytes.
func KB(bytes int) float64 { return float64(bytes) / 1024 }

// TableIPublished records the paper's Table I values in KB for
// cross-checking: PE buffers and DIMM/rank-node buffers at B = 8, 16, 32.
var TableIPublished = map[int]struct{ PEKB, NodeKB float64 }{
	8:  {4.6, 32.4},
	16: {9.3, 64.8},
	32: {18.5, 129.5},
}

// FPGAUtilization is one row of Table V: percentages of the XCVU9P's
// resources.
type FPGAUtilization struct {
	Name      string
	LUTPct    float64
	LUTRAMPct float64
	FFPct     float64
	BRAMPct   float64
}

// TableV returns the published FPGA resource utilization: per-node figures
// and the full four-channel system ("up to 5 %, 0.15 %, 1 %, and 13 % of
// LUTs, LUTRAMs, FFs, and BRAM blocks").
func TableV() []FPGAUtilization {
	return []FPGAUtilization{
		{Name: "DIMM/rank node", LUTPct: 1.0, LUTRAMPct: 0.03, FFPct: 0.2, BRAMPct: 2.6},
		{Name: "channel node", LUTPct: 0.5, LUTRAMPct: 0.015, FFPct: 0.1, BRAMPct: 1.2},
		{Name: "full system (4 ch)", LUTPct: 5.0, LUTRAMPct: 0.15, FFPct: 1.0, BRAMPct: 13.0},
	}
}

// ASIC holds the published 7 nm ASAP7 figures of Table VI and Section VI.
type ASIC struct {
	// PEAreaMM2 is one PE (274 um x 282 um).
	PEAreaMM2 float64
	// LeafPEAreaMM2 adds the SpMV multipliers to a leaf PE.
	LeafPEAreaMM2 float64
	// DIMMRankNodeAreaMM2 is the seven-PE node chip (492 um x 575 um).
	DIMMRankNodeAreaMM2 float64
	// ChannelNodeAreaMM2 is the three-PE chip between channels and core.
	ChannelNodeAreaMM2 float64
	// DIMMRankNodePowerMW is the node power ("23.82 mW per four DIMMs").
	DIMMRankNodePowerMW float64
	// ChannelNodePowerMW is the channel-node power.
	ChannelNodePowerMW float64
	// DDR4DIMMPowerW is one DIMM's power for context (Micron calculator).
	DDR4DIMMPowerW float64
	// RecNMPPUAreaMM2 and RecNMPPUPowerMW are the comparison points the
	// paper cites for one RecNMP processing unit (40 nm, per DIMM).
	RecNMPPUAreaMM2 float64
	RecNMPPUPowerMW float64
}

// TableVI returns the published ASIC figures.
func TableVI() ASIC {
	return ASIC{
		PEAreaMM2:           0.077,
		LeafPEAreaMM2:       0.18,
		DIMMRankNodeAreaMM2: 0.283,
		ChannelNodeAreaMM2:  0.121,
		DIMMRankNodePowerMW: 23.82,
		ChannelNodePowerMW:  16.36,
		DDR4DIMMPowerW:      13,
		RecNMPPUAreaMM2:     0.54,
		RecNMPPUPowerMW:     184.2,
	}
}

// SystemArea computes the total chip area added to a memory system with the
// given number of DIMM/rank nodes and channel nodes (the paper's "1.2 mm^2
// to a memory system of 32 ranks": 4 DIMM/rank nodes + 1 channel node).
func (a ASIC) SystemArea(dimmRankNodes, channelNodes int) float64 {
	return float64(dimmRankNodes)*a.DIMMRankNodeAreaMM2 + float64(channelNodes)*a.ChannelNodeAreaMM2
}

// SystemPowerMW computes the total added power ("in total, 111.64 mW to a
// four-channel memory system").
func (a ASIC) SystemPowerMW(dimmRankNodes, channelNodes int) float64 {
	return float64(dimmRankNodes)*a.DIMMRankNodePowerMW + float64(channelNodes)*a.ChannelNodePowerMW
}

// PowerShare is one slice of a power breakdown.
type PowerShare struct {
	Component string
	Fraction  float64
}

// FPGAPower describes Fig. 16a: total dynamic power and its breakdown for
// the two node types at 200 MHz.
type FPGAPower struct {
	Name      string
	TotalW    float64
	Breakdown []PowerShare
}

// Fig16a returns the published FPGA dynamic power figures.
func Fig16a() []FPGAPower {
	breakdown := []PowerShare{
		{"clocks", 0.18}, {"logic", 0.26}, {"signals", 0.30}, {"BRAM", 0.22}, {"I/O", 0.04},
	}
	return []FPGAPower{
		{Name: "DIMM/rank node", TotalW: 0.23, Breakdown: breakdown},
		{Name: "channel node", TotalW: 0.18, Breakdown: breakdown},
	}
}

// Fig16b returns the ASIC PE power distribution; the paper highlights that
// it is uniform across the PE, preventing hot spots.
func Fig16b() []PowerShare {
	return []PowerShare{
		{"input FIFOs", 0.26},
		{"compute units", 0.38},
		{"merge unit", 0.20},
		{"control", 0.16},
	}
}

// Connections compares wiring costs (Section IV-A): the baseline all-to-all
// needs channels*computeDevices links; Fafnir needs (2m-2)+channels.
func Connections(channels, computeDevices, leafAttachPoints int) (allToAll, fafnirLinks int) {
	return channels * computeDevices, (2*leafAttachPoints - 2) + channels
}

// DescribeTree summarizes a tree's physical composition against the model.
func DescribeTree(t *fafnir.Tree, asic ASIC) string {
	d := t.CountKind(fafnir.KindDIMMRank)
	c := t.CountKind(fafnir.KindChannel)
	return fmt.Sprintf("%d PEs (%d in DIMM/rank nodes, %d in channel node), approx %.3f mm^2 at 7 nm",
		t.NumPEs(), d, c, float64(t.NumPEs())*asic.PEAreaMM2)
}
