package router

import (
	"fafnir/internal/sim"
)

// State is one shard's health as seen by the router's breaker.
type State int

// The breaker's three states. A shard moves healthy → suspect on its first
// structured failure, suspect → dark when failures reach the threshold, and
// dark → healthy only through a successful probe lookup after its reopen
// backoff elapses on the fleet clock.
const (
	// Healthy shards receive their sub-lookups directly.
	Healthy State = iota
	// Suspect shards have failed recently but are still dispatched; one more
	// failure within the threshold trips them dark, one success clears them.
	Suspect
	// Dark shards are skipped entirely — their traffic goes straight to the
	// replica shard — until a probe succeeds.
	Dark
)

// String returns the state's wire/metric label.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dark:
		return "dark"
	default:
		return "unknown"
	}
}

// breaker is the per-shard health state machine. All transitions happen on
// the router's single-caller path and are driven exclusively by structured
// sub-lookup results and the deterministic fleet clock, so two replays of the
// same workload trip, probe, and reopen identically.
type breaker struct {
	state    State
	failures int       // consecutive structured failures while not dark
	attempts int       // consecutive failed probes since going dark
	reopenAt sim.Cycle // fleet cycle at which the next probe may run
	darkAt   sim.Cycle // fleet cycle of the last healthy→dark trip

	threshold int       // failures that trip suspect → dark
	base      sim.Cycle // first reopen backoff
	cap       sim.Cycle // backoff ceiling
	seed      uint64    // jitter seed (mixed per shard by the router)
}

// splitmix64 is the deterministic jitter hash, the same finalizer the fault
// injector and embedding store use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the reopen delay before probe attempt (1-based):
// exponential doubling from the base, capped, plus a seeded jitter of up to a
// quarter of the base so simultaneously-tripped shards do not probe in
// lockstep.
func (b *breaker) backoff(attempt int) sim.Cycle {
	d := b.base
	for i := 1; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	jitterSpan := uint64(b.base/4) + 1
	return d + sim.Cycle(splitmix64(b.seed^uint64(attempt))%jitterSpan)
}

// onSuccess records a successful sub-lookup or probe and reopens the shard.
func (b *breaker) onSuccess() {
	b.state = Healthy
	b.failures = 0
	b.attempts = 0
	b.reopenAt = 0
}

// onFailure records a structured sub-lookup failure at fleet cycle now and
// reports whether this transition tripped the shard dark.
func (b *breaker) onFailure(now sim.Cycle) (tripped bool) {
	if b.state == Dark {
		return false
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = Dark
		b.darkAt = now
		b.attempts = 0
		b.reopenAt = now + b.backoff(1)
		return true
	}
	b.state = Suspect
	return false
}

// onProbeFailure records a failed probe of a dark shard: the shard stays
// dark and the reopen backoff grows (capped, jittered).
func (b *breaker) onProbeFailure(now sim.Cycle) {
	b.attempts++
	b.reopenAt = now + b.backoff(b.attempts+1)
}

// probeDue reports whether a dark shard's reopen backoff has elapsed.
func (b *breaker) probeDue(now sim.Cycle) bool {
	return b.state == Dark && now >= b.reopenAt
}
