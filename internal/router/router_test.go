package router

import (
	"strings"
	"testing"

	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// testFleet builds a small fleet with fast-probing breakers so chaos tests
// converge in a handful of batches.
func testFleet(t *testing.T, mut func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Shards:        4,
		RanksPerShard: 8,
		Rows:          4096,
		Seed:          1,
		Parallelism:   1,
		ProbeBackoff:  500,
	}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// testBatch draws n deterministic queries over the fleet's row space.
func testBatch(t *testing.T, f *Fleet, n int, seed int64, op tensor.ReduceOp) embedding.Batch {
	t.Helper()
	b, err := f.GenerateBatch(n, seed)
	if err != nil {
		t.Fatalf("GenerateBatch: %v", err)
	}
	b.Op = op
	return b
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative shards", func(c *Config) { c.Shards = -1 }, "Shards"},
		{"odd ranks", func(c *Config) { c.RanksPerShard = 3 }, "RanksPerShard"},
		{"one rank", func(c *Config) { c.RanksPerShard = 1 }, "RanksPerShard"},
		{"negative batch", func(c *Config) { c.BatchCapacity = -1 }, "BatchCapacity"},
		{"negative threshold", func(c *Config) { c.FailureThreshold = -1 }, "FailureThreshold"},
		{"negative parallelism", func(c *Config) { c.Parallelism = -1 }, "Parallelism"},
		{"rows below shards", func(c *Config) { c.Rows = 3; c.Shards = 4 }, "canary"},
		{"bad flap", func(c *Config) {
			c.Fleet.ShardFlaps = []fault.ShardFlap{{Shard: 0, DownAt: 5, UpAt: 5}}
		}, "flap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cfg Config
			tc.mut(&cfg)
			_, err := New(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
}

func TestNewRejectsPlanOutsideFleet(t *testing.T) {
	var cfg Config
	cfg.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 9, At: 0}}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("New = %v, want shard-bounds error", err)
	}
}

// TestLookupMatchesOracle checks the healthy-fleet contract: a fleet lookup
// is bit-identical to the single-store oracle for every pooling operation,
// with no degraded report.
func TestLookupMatchesOracle(t *testing.T) {
	f := testFleet(t, nil)
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMean, tensor.OpMin, tensor.OpMax} {
		b := testBatch(t, f, 16, int64(op)+10, op)
		res, err := f.Lookup(b)
		if err != nil {
			t.Fatalf("op %v: Lookup: %v", op, err)
		}
		want, err := oracle.Lookup(f.Store(), b)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if d := oracle.Diff(res.Outputs, want); d != "" {
			t.Fatalf("op %v: %s", op, d)
		}
		if !res.Degraded.Empty() {
			t.Fatalf("op %v: healthy fleet reported degradation: %+v", op, res.Degraded)
		}
		if res.TotalCycles <= 0 {
			t.Fatalf("op %v: TotalCycles = %d", op, res.TotalCycles)
		}
	}
}

// TestLookupAdvancesClock checks the fleet clock accumulates batch latency.
func TestLookupAdvancesClock(t *testing.T) {
	f := testFleet(t, nil)
	b := testBatch(t, f, 8, 1, tensor.OpSum)
	res1, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Clock() != res1.TotalCycles {
		t.Fatalf("clock = %d after one batch of %d cycles", f.Clock(), res1.TotalCycles)
	}
	res2, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Clock() != res1.TotalCycles+res2.TotalCycles {
		t.Fatalf("clock = %d, want %d", f.Clock(), res1.TotalCycles+res2.TotalCycles)
	}
}

func TestLookupRejectsBadBatches(t *testing.T) {
	f := testFleet(t, nil)
	if _, err := f.Lookup(embedding.Batch{Op: tensor.OpSum}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := f.Lookup(embedding.Batch{
		Op:      tensor.ReduceOp(99),
		Queries: []embedding.Query{{Indices: header.NewIndexSet(1)}},
	}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

// TestEmptyQueryYieldsZeroVector mirrors the engine contract for queries
// with no indices.
func TestEmptyQueryYieldsZeroVector(t *testing.T) {
	f := testFleet(t, nil)
	b := embedding.Batch{Op: tensor.OpSum, Queries: []embedding.Query{
		{Indices: header.NewIndexSet()},
		{Indices: header.NewIndexSet(7)},
	}}
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs[0]) != f.Store().Dim() {
		t.Fatalf("empty query output dim = %d", len(res.Outputs[0]))
	}
	for e, x := range res.Outputs[0] {
		if x != 0 {
			t.Fatalf("empty query output[%d] = %v, want 0", e, x)
		}
	}
}

// TestReplicaTopology pins the shard-replica mapping: holder is N/2 away,
// the relation inverts cleanly, and no shard replicates itself for N >= 2.
func TestReplicaTopology(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		f := testFleet(t, func(c *Config) { c.Shards = n; c.Rows = 4096 })
		for s := 0; s < n; s++ {
			h := f.replicaHolder(s)
			if h == s {
				t.Fatalf("N=%d: shard %d replicates itself", n, s)
			}
			if f.replicaPeer(h) != s {
				t.Fatalf("N=%d: replicaPeer(replicaHolder(%d)) = %d", n, s, f.replicaPeer(h))
			}
		}
	}
	// A one-shard fleet keeps no replicas: holder is the shard itself.
	f1 := testFleet(t, func(c *Config) { c.Shards = 1 })
	if f1.replicaHolder(0) != 0 {
		t.Fatalf("1-shard holder = %d", f1.replicaHolder(0))
	}
}

// TestPlacementRegions checks the three address regions of one shard never
// overlap: primary rows, in-shard rank replicas, and peer-shard copies each
// occupy disjoint slot ranges.
func TestPlacementRegions(t *testing.T) {
	f := testFleet(t, nil)
	node := f.shards[0]
	pv := node.primary
	regionBytes := pv.regionSlots() * uint64(pv.bytes)
	for idx := header.Index(0); uint64(idx) < f.TotalRows(); idx += 4 { // shard 0 owns idx % 4 == 0
		if a := uint64(pv.Addr(idx)); a >= regionBytes {
			t.Fatalf("primary addr %d of idx %d crosses region boundary %d", a, idx, regionBytes)
		}
		rr, ra, err := pv.Replica(idx)
		if err != nil {
			t.Fatal(err)
		}
		if rr == pv.Rank(idx) && pv.ranks > 1 {
			t.Fatalf("idx %d: replica rank equals primary rank %d", idx, rr)
		}
		if a := uint64(ra); a < regionBytes || a >= 2*regionBytes {
			t.Fatalf("idx %d: in-shard replica addr %d outside [%d,%d)", idx, a, regionBytes, 2*regionBytes)
		}
	}
	// Shard 0 hosts replicas of its peer; those land in the third region.
	peer := f.replicaPeer(0)
	for idx := header.Index(peer); uint64(idx) < f.TotalRows(); idx += 4 {
		if a := uint64(node.peerView.Addr(idx)); a < 2*regionBytes {
			t.Fatalf("peer idx %d: addr %d inside first two regions (%d)", idx, a, 2*regionBytes)
		}
	}
}

// TestBreakerStateMachine unit-tests the three-state breaker.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 2, base: 1000, cap: 8000, seed: 42}
	if b.state != Healthy {
		t.Fatalf("initial state %v", b.state)
	}
	if b.onFailure(100) {
		t.Fatal("first failure tripped dark")
	}
	if b.state != Suspect {
		t.Fatalf("after one failure: %v", b.state)
	}
	b.onSuccess()
	if b.state != Healthy || b.failures != 0 {
		t.Fatalf("success did not reset: %v failures=%d", b.state, b.failures)
	}
	b.onFailure(100)
	if !b.onFailure(200) {
		t.Fatal("threshold failure did not trip dark")
	}
	if b.state != Dark || b.darkAt != 200 {
		t.Fatalf("after trip: %v darkAt=%d", b.state, b.darkAt)
	}
	if b.reopenAt <= 200 || b.reopenAt > 200+1000+250+1 {
		t.Fatalf("first reopen backoff %d outside (0, base+jitter]", b.reopenAt-200)
	}
	if b.probeDue(b.reopenAt - 1) {
		t.Fatal("probe due before backoff elapsed")
	}
	if !b.probeDue(b.reopenAt) {
		t.Fatal("probe not due at reopenAt")
	}
	// Failed probes grow the backoff, capped at cap plus the jitter span.
	prev := b.reopenAt
	for i := 0; i < 10; i++ {
		now := prev
		b.onProbeFailure(now)
		delay := b.reopenAt - now
		if delay > b.cap+b.base/4+1 {
			t.Fatalf("probe %d: backoff %d exceeds cap+jitter", i, delay)
		}
		prev = b.reopenAt
	}
	b.onSuccess()
	if b.state != Healthy || b.attempts != 0 {
		t.Fatalf("reopen did not reset: %v attempts=%d", b.state, b.attempts)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Healthy: "healthy", Suspect: "suspect", Dark: "dark", State(9): "unknown"} {
		if got := st.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

// TestAddLost pins the degraded report's per-query loss accounting: queries
// stay sorted and unique, and repeated losses for one query accumulate onto
// its aligned index count (the serving cache finalizes mean pooling from it).
func TestAddLost(t *testing.T) {
	var d core.DegradedReport
	for _, l := range []struct{ q, n int }{{5, 2}, {1, 4}, {5, 3}, {3, 1}, {1, 1}, {9, 7}, {3, 2}} {
		d.AddLost(l.q, l.n)
	}
	wantQ := []int{1, 3, 5, 9}
	wantN := []int{5, 3, 5, 7}
	if len(d.LostQueries) != len(wantQ) || len(d.LostIndexCounts) != len(wantN) {
		t.Fatalf("got %v / %v, want %v / %v", d.LostQueries, d.LostIndexCounts, wantQ, wantN)
	}
	for i := range wantQ {
		if d.LostQueries[i] != wantQ[i] || d.LostIndexCounts[i] != wantN[i] {
			t.Fatalf("got %v / %v, want %v / %v", d.LostQueries, d.LostIndexCounts, wantQ, wantN)
		}
	}
}

// TestMetricsRender checks the router families land on a registry and carry
// the per-shard label values.
func TestMetricsRender(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 1}}
	})
	reg := telemetry.NewRegistry()
	f.RegisterMetrics(reg)

	b := testBatch(t, f, 16, 3, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil { // healthy at clock 0
		t.Fatal(err)
	}
	if _, err := f.Lookup(b); err != nil { // shard 1 down now: failover
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`fafnir_router_shard_state{shard="1"} 1`,
		`fafnir_router_shard_failures_total{shard="1"} 1`,
		`fafnir_router_retries_total{shard="1"} 1`,
		`fafnir_router_failovers_total{shard="1"} 1`,
		"fafnir_router_degraded_batches_total 1",
		"fafnir_router_lost_queries_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRouterTrace checks router spans land on the PIDRouter timeline and
// stay off the engine/DRAM PID blocks.
func TestRouterTrace(t *testing.T) {
	f := testFleet(t, nil)
	tr := telemetry.NewTrace()
	f.AttachTracer(tr)
	b := testBatch(t, f, 8, 4, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no router events")
	}
	var lookups, combines int
	for _, ev := range evs {
		if ev.PID != telemetry.PIDRouter {
			t.Fatalf("event %q on PID %d, want %d", ev.Name, ev.PID, telemetry.PIDRouter)
		}
		switch ev.Name {
		case "shard.lookup":
			lookups++
		case "combine":
			combines++
		}
	}
	if lookups == 0 || combines != 1 {
		t.Fatalf("lookup spans = %d, combine spans = %d", lookups, combines)
	}
	f.AttachTracer(nil)
	n := tr.Len()
	if _, err := f.Lookup(b); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatal("detached tracer still received events")
	}
}

// TestMemoryCounterSums checks fleet-level memory counters accumulate
// across shards.
func TestMemoryCounterSums(t *testing.T) {
	f := testFleet(t, nil)
	b := testBatch(t, f, 16, 5, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil {
		t.Fatal(err)
	}
	if f.MemoryCounter("dram.reads") == 0 {
		t.Fatal("dram.reads counter stayed zero across the fleet")
	}
}
