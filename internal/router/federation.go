package router

// Multi-fleet federation: shards-of-fleets behind one Lookup front-end. A
// Federation owns M member fleets, scatters every batch's indices by fleet
// (index i belongs to fleet i mod M; the member's owner-stride addressing
// keeps its internal shards balanced at (i/M) mod Shards), runs the member
// lookups concurrently, and reduces the fleet partials through the same
// in-network reduction tree (internal/rnet) the fleets use internally — the
// FAFNIR combine argument applied recursively: shard partials reduce inside
// each fleet, fleet partials reduce across the machine room, and the host
// only ever receives one fully reduced pool.
//
// Every member fleet is built from the same template (rows, seed, fault
// plan), so all members hold bit-identical copies of the global store and
// the federation's outputs are bit-identical to a single fleet's — and to
// the reference oracle — for every pooling op (the integer-valued store
// makes re-association exact; docs/ARCHITECTURE.md §15). A degraded member
// (dark shard pairs inside it) contributes its partial pool and its
// DegradedReport; shard entries are re-labelled with global shard IDs
// (fleet*Shards + shard) so callers see one flat fleet of M*Shards shards.

import (
	"fmt"
	"runtime"
	"sync"

	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/rnet"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// FederationConfig shapes a multi-fleet deployment.
type FederationConfig struct {
	// Fleets is the federation width M. Default 2.
	Fleets int
	// Fleet is the member template: shard count, rows (the GLOBAL row
	// space — every member holds a full copy of the store), seed, fault
	// plan, breaker knobs, and the intra-fleet combine path. OwnerStride
	// and OwnerPhase must be left zero; the federation assigns them.
	Fleet Config
	// Rnet shapes the cross-fleet reduction tree. Radix 0 inherits the
	// member radix, or 2 when members run the legacy host fold — a
	// federation always combines through the network.
	Rnet rnet.Config
	// Verify re-checks every non-degraded batch bit-for-bit against the
	// reference oracle before returning it, turning any combine-path
	// divergence into a hard error. Meant for CI smoke gates; it costs a
	// full naive gather per batch.
	Verify bool
}

func (c *FederationConfig) fillDefaults() {
	if c.Fleets == 0 {
		c.Fleets = 2
	}
	// Resolve the member template's defaults here too, so capability
	// accessors (Shards, OwnerOf) read real values; stride and phase stay
	// zero — the federation assigns them per member in NewFederation.
	c.Fleet.fillDefaults()
	c.Fleet.OwnerStride, c.Fleet.OwnerPhase = 0, 0
	if c.Rnet.Radix == 0 {
		if c.Fleet.Rnet.Enabled() {
			c.Rnet.Radix = c.Fleet.Rnet.Radix
		} else {
			c.Rnet.Radix = 2
		}
	}
}

// Validate reports a descriptive error naming the offending field for an
// unusable configuration.
func (c FederationConfig) Validate() error {
	switch {
	case c.Fleets < 0:
		return fmt.Errorf("router: FederationConfig.Fleets = %d: must be positive (or 0 for the default of 2)", c.Fleets)
	case c.Fleet.OwnerStride != 0 || c.Fleet.OwnerPhase != 0:
		return fmt.Errorf("router: FederationConfig.Fleet sets OwnerStride/OwnerPhase; the federation assigns member addressing")
	}
	if err := c.Rnet.Validate(); err != nil {
		return err
	}
	return c.Fleet.Validate()
}

// Federation is M fleets behind one Lookup front-end. Like Fleet it is not
// safe for concurrent use; the serving layer's single flusher goroutine is
// its intended caller.
type Federation struct {
	cfg    FederationConfig
	fleets []*Fleet
	rtree  *rnet.Tree
	clock  sim.Cycle
	tracer telemetry.Tracer
	// spanCtx is the parent span ID for request-linked tracing; see
	// Fleet.SetSpanContext.
	spanCtx uint64
	m       *fedMetrics
}

// NewFederation builds the federation: Fleets member fleets from the shared
// template with stride/phase addressing assigned, plus the cross-fleet
// reduction tree.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	fed := &Federation{cfg: cfg}
	for fm := 0; fm < cfg.Fleets; fm++ {
		mcfg := cfg.Fleet
		mcfg.OwnerStride = cfg.Fleets
		mcfg.OwnerPhase = fm
		fleet, err := New(mcfg)
		if err != nil {
			return nil, fmt.Errorf("router: federation member %d: %w", fm, err)
		}
		fed.fleets = append(fed.fleets, fleet)
	}
	rcfg := cfg.Rnet
	if rcfg.Parallelism == 0 {
		rcfg.Parallelism = cfg.Fleet.Parallelism
	}
	tree, err := rnet.NewTree(cfg.Fleets, rcfg)
	if err != nil {
		return nil, err
	}
	fed.rtree = tree
	return fed, nil
}

// fleetOf returns the member fleet owning the primary copy of idx.
func (fd *Federation) fleetOf(idx header.Index) int {
	return int(uint64(idx) % uint64(fd.cfg.Fleets))
}

// Fleets reports the federation width.
func (fd *Federation) Fleets() int { return len(fd.fleets) }

// Fleet returns member fm, for health inspection in tests and tools.
func (fd *Federation) Fleet(fm int) *Fleet { return fd.fleets[fm] }

// Config returns the federation's configuration with defaults resolved.
func (fd *Federation) Config() FederationConfig { return fd.cfg }

// Topology returns the one-line deployment description the serving CLI
// prints at startup: fleets x shards plus both combine tiers.
func (fd *Federation) Topology() string {
	mcfg := fd.fleets[0].Config() // member defaults resolved by New
	member := "host fold"
	if mcfg.Rnet.Enabled() {
		member = fmt.Sprintf("rnet radix %d", mcfg.Rnet.Radix)
	}
	return fmt.Sprintf("federation: %d fleets x %d shards x %d ranks, fleet combine %s, cross-fleet rnet radix %d (%d switches, depth %d)",
		fd.cfg.Fleets, mcfg.Shards, mcfg.RanksPerShard, member,
		fd.rtree.Config().Radix, fd.rtree.Interior(), fd.rtree.Depth())
}

// Clock reports the federation's simulated cycle clock.
func (fd *Federation) Clock() sim.Cycle { return fd.clock }

// TotalRows reports the global embedding-vector count.
func (fd *Federation) TotalRows() uint64 { return fd.cfg.Fleet.Rows }

// Row returns the raw embedding row idx; every member holds an identical
// full copy of the global store, so member 0 answers for all.
func (fd *Federation) Row(idx header.Index) (tensor.Vector, error) {
	return fd.fleets[0].Row(idx)
}

// Dim reports the embedding dimensionality of the global store.
func (fd *Federation) Dim() int { return fd.fleets[0].Dim() }

// Shards reports the federation's global shard count (Fleets x member
// Shards); the serving layer's cache partitions its budget across it.
func (fd *Federation) Shards() int { return fd.cfg.Fleets * fd.cfg.Fleet.Shards }

// OwnerOf reports the global shard storing the primary copy of idx:
// fleet*Shards + the member's owner shard.
func (fd *Federation) OwnerOf(idx header.Index) int {
	fm := fd.fleetOf(idx)
	return fm*fd.cfg.Fleet.Shards + fd.fleets[fm].OwnerOf(idx)
}

// MemoryCounter sums one cumulative memory-system counter across every
// member fleet's shards.
func (fd *Federation) MemoryCounter(name string) uint64 {
	var total uint64
	for _, fl := range fd.fleets {
		total += fl.MemoryCounter(name)
	}
	return total
}

// GenerateBatch draws n deterministic Zipf-skewed queries over the global
// row space, for benchmarks and smoke tests.
func (fd *Federation) GenerateBatch(n int, seed int64) (embedding.Batch, error) {
	return fd.fleets[0].GenerateBatch(n, seed)
}

// AttachTracer threads a tracer through the federation: member-fleet
// lookup windows land as spans on the PIDRouter timeline (one lane per
// fleet) and the cross-fleet switch fires on the PIDRnet timeline. Member
// fleets stay detached — their per-shard lanes would collide across fleets.
func (fd *Federation) AttachTracer(t telemetry.Tracer) {
	fd.tracer = t
	if t == nil {
		return
	}
	t.NameProcess(telemetry.PIDRouter, "federation")
	for fm := range fd.fleets {
		t.NameLane(telemetry.PIDRouter, fm, fmt.Sprintf("fleet %d", fm))
	}
	t.NameProcess(telemetry.PIDRnet, "rnet")
	for lvl := 1; lvl <= fd.rtree.Depth(); lvl++ {
		t.NameLane(telemetry.PIDRnet, lvl, fmt.Sprintf("fleet switch level %d", lvl))
	}
}

// SetSpanContext installs the parent span ID that subsequent batch spans
// link under (0 detaches). Annotation only — timing is never perturbed.
func (fd *Federation) SetSpanContext(parent uint64) { fd.spanCtx = parent }

// Lookup scatters the batch across the member fleets, runs every owning
// fleet's sub-batch (concurrently up to the template's Parallelism; folded
// in fleet order), reduces the fleet partials through the cross-fleet rnet
// tree, and returns the combined result. Member fleets absorb their own
// faults (failover, degradation), so like Fleet.Lookup only programming
// errors return a non-nil error; shard losses inside a member surface as a
// merged DegradedReport with global shard IDs.
func (fd *Federation) Lookup(b embedding.Batch) (*core.TimedResult, error) {
	if len(b.Queries) == 0 {
		return nil, fmt.Errorf("router: empty batch")
	}
	if !b.Op.Valid() {
		return nil, fmt.Errorf("router: invalid reduce op %d", b.Op)
	}
	m := fd.cfg.Fleets
	dim := fd.Dim()
	// Span parentage for request-linked tracing (0 when standalone).
	ctx := fd.spanCtx
	combineID := telemetry.SpanID(ctx, "combine", 0)
	op := b.Op
	subOp := op
	if op == tensor.OpMean {
		// Members accumulate raw sums; the federation finalizes the mean
		// once over the global surviving operand count.
		subOp = tensor.OpSum
	}

	// Scatter by owning fleet, preserving index order within sub-queries.
	subs := make([]embedding.Batch, m)
	refs := make([][]subref, m)
	survivors := make([]int, len(b.Queries))
	res := &core.TimedResult{}
	res.Outputs = make([]tensor.Vector, len(b.Queries))
	for qi, q := range b.Queries {
		survivors[qi] = q.Indices.Len()
		if q.Indices.Len() == 0 {
			res.Outputs[qi] = tensor.New(dim)
			continue
		}
		per := make(map[int][]header.Index)
		for _, idx := range q.Indices {
			fm := fd.fleetOf(idx)
			per[fm] = append(per[fm], idx)
		}
		for fm := 0; fm < m; fm++ {
			indices, ok := per[fm]
			if !ok {
				continue
			}
			subs[fm].Op = subOp
			subs[fm].Queries = append(subs[fm].Queries, embedding.Query{Indices: header.NewIndexSet(indices...)})
			refs[fm] = append(refs[fm], subref{query: qi, indices: len(indices)})
		}
	}

	// Dispatch: member fleets are fully independent (own stores, engines,
	// clocks), so sub-lookups run concurrently; everything folds in fleet
	// order below.
	type attempt struct {
		res *core.TimedResult
		err error
	}
	attempts := make([]attempt, m)
	var run []int
	for fm := 0; fm < m; fm++ {
		if len(subs[fm].Queries) > 0 {
			run = append(run, fm)
		}
	}
	par := fd.cfg.Fleet.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > 1 && len(run) > 1 {
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for _, fm := range run {
			wg.Add(1)
			go func(fm int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r, err := fd.fleets[fm].Lookup(subs[fm])
				attempts[fm] = attempt{res: r, err: err}
			}(fm)
		}
		wg.Wait()
	} else {
		for _, fm := range run {
			r, err := fd.fleets[fm].Lookup(subs[fm])
			attempts[fm] = attempt{res: r, err: err}
		}
	}

	// Fold, strictly in fleet order: stage each member's partial pool as an
	// rnet leaf, accumulate statistics, and merge degraded reports onto
	// global shard IDs. A member query that lost every index delivered a
	// zero vector, not a partial — it must stay out of the pool or it would
	// poison min/max pooling — so losses mark their slot absent.
	deg := &core.DegradedReport{}
	leaves := make([]*rnet.Partial, m)
	var maxMember sim.Cycle // slowest member completion, the backend stage
	for fm := 0; fm < m; fm++ {
		if len(subs[fm].Queries) == 0 {
			continue
		}
		a := attempts[fm]
		if a.err != nil {
			return nil, fmt.Errorf("router: federation member %d: %w", fm, a.err)
		}
		fd.countFleetLookup(fm)
		r := a.res
		pool := make([]tensor.Vector, len(b.Queries))
		lost := make(map[int]int) // member-local query -> lost index count
		if !r.Degraded.Empty() {
			fd.countFleetDegraded(fm)
			for i, lq := range r.Degraded.LostQueries {
				lost[lq] = r.Degraded.LostIndexCounts[i]
			}
		}
		for li, out := range r.Outputs {
			ref := refs[fm][li]
			n := lost[li]
			if n > 0 {
				survivors[ref.query] -= n
				deg.AddLost(ref.query, n)
			}
			if n >= ref.indices {
				continue // full loss: no partial from this member
			}
			pool[ref.query] = out
		}
		leaves[fm] = &rnet.Partial{Vectors: pool, Ready: r.TotalCycles}
		maxMember = sim.Max(maxMember, r.TotalCycles)
		fd.emitFleetSpan(fm, r, ctx)

		res.MemoryReads += r.MemoryReads
		res.BytesRead += r.BytesRead
		res.PETotals.Add(r.PETotals)
		res.HWBatches += r.HWBatches
		if r.MaxOccupancy > res.MaxOccupancy {
			res.MaxOccupancy = r.MaxOccupancy
		}
		res.MemCycles = sim.Max(res.MemCycles, r.MemCycles)
		if !r.Degraded.Empty() {
			deg.RemappedReads += r.Degraded.RemappedReads
			deg.RemappedQueries += r.Degraded.RemappedQueries
			deg.Retries += r.Degraded.Retries
			deg.RetryCycles += r.Degraded.RetryCycles
			for _, e := range r.Degraded.Shards {
				ge := e
				ge.Shard = fm*fd.cfg.Fleet.Shards + e.Shard
				deg.Shards = append(deg.Shards, ge)
			}
		}
	}

	// Cross-fleet reduce: member pools are the leaves, member completion
	// times their network-injection times. Only the root pool crosses the
	// host link.
	rres, err := fd.rtree.Reduce(op, len(b.Queries), leaves)
	if err != nil {
		return nil, err
	}
	rootQueries := 0
	for qi, v := range rres.Outputs {
		if v != nil {
			res.Outputs[qi] = v
			rootQueries++
		}
	}
	for qi := range res.Outputs {
		if res.Outputs[qi] == nil {
			res.Outputs[qi] = tensor.New(dim)
			continue
		}
		if op == tensor.OpMean {
			op.FinalizeMean(res.Outputs[qi], survivors[qi])
		}
	}

	host := fd.fleets[0]
	xfer := host.cfg.Host.DRAMToHost(host.mcfg.TransferCycles(rootQueries * 512))
	res.TransferCycles = xfer
	res.TotalCycles = rres.CriticalPath + xfer
	res.ComputeCycles = res.TotalCycles - res.MemCycles - xfer
	// Stage attribution: the slowest member's completion is the backend
	// window; what the cross-fleet tree's critical path adds beyond it is the
	// combine stage. Leaf readiness bounds the critical path from below, so
	// the subtraction cannot underflow; the else arm is defensive.
	backendStage := maxMember
	var combineStage sim.Cycle
	if rres.CriticalPath >= maxMember {
		combineStage = rres.CriticalPath - maxMember
	} else {
		backendStage = rres.CriticalPath
	}
	res.Stages = core.StageCycles{Backend: backendStage, Combine: combineStage, Transfer: xfer}
	fd.countBatch(rres)
	fd.emitRnetSpans(fd.clock, rres, combineID)
	fd.clock += res.TotalCycles

	if !deg.Empty() {
		res.Degraded = deg
	}
	if fd.cfg.Verify && deg.Empty() {
		want, err := oracle.Lookup(host.Store(), b)
		if err != nil {
			return nil, fmt.Errorf("router: federation verify: %w", err)
		}
		if diff := oracle.Diff(res.Outputs, want); diff != "" {
			return nil, fmt.Errorf("router: federation output diverges from oracle: %s", diff)
		}
		fd.countVerified()
	}
	return res, nil
}

// emitFleetSpan records one member fleet's lookup window on the federation
// timeline, span-linked under the batch's request context.
func (fd *Federation) emitFleetSpan(fm int, r *core.TimedResult, parent uint64) {
	if fd.tracer == nil {
		return
	}
	ev := telemetry.Event{
		Name: "fleet.lookup", Cat: "router", Phase: telemetry.PhaseSpan,
		PID: telemetry.PIDRouter, TID: fm,
		TS: uint64(fd.clock), Dur: uint64(r.TotalCycles), ClockMHz: 200,
	}
	ev.AddArg(telemetry.Arg{Key: "degraded", Int: int64(boolInt(!r.Degraded.Empty()))})
	ev.AddArg(telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(parent, "fleet.lookup", uint64(fm)))})
	ev.AddArg(telemetry.Arg{Key: telemetry.ArgParent, Int: int64(parent)})
	fd.tracer.Emit(ev)
}

// emitRnetSpans mirrors Fleet.emitRnetSpans for the cross-fleet tree; spans
// link under the batch's combine span.
func (fd *Federation) emitRnetSpans(base sim.Cycle, r *rnet.Result, parent uint64) {
	if fd.tracer == nil {
		return
	}
	for _, sp := range r.Spans {
		ev := telemetry.Event{
			Name: "fleet-switch", Cat: "rnet", Phase: telemetry.PhaseSpan,
			PID: telemetry.PIDRnet, TID: sp.Level,
			TS: uint64(base + sp.Fire), Dur: uint64(sp.Done - sp.Fire), ClockMHz: 200,
		}
		ev.AddArg(telemetry.Arg{Key: "node", Int: int64(sp.Node)})
		ev.AddArg(telemetry.Arg{Key: "combines", Int: int64(sp.Combines)})
		if sp.Missing > 0 {
			ev.AddArg(telemetry.Arg{Key: "missing_children", Int: int64(sp.Missing)})
		}
		ev.AddArg(telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(parent, "fleet-switch", uint64(sp.Node)))})
		ev.AddArg(telemetry.Arg{Key: telemetry.ArgParent, Int: int64(parent)})
		fd.tracer.Emit(ev)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
