package router

import (
	"testing"

	core "fafnir/internal/fafnir"
	"fafnir/internal/fault"
	"fafnir/internal/tensor"
)

// The router-overhead pair: the same workload through a direct single
// System and through a 1-shard fleet. The fleet adds scatter bookkeeping,
// one (empty) combine pass, and the breaker checks; BENCH_6.json tracks
// that the wall-clock delta stays within noise.

func benchBatchSize() int { return 32 }

func BenchmarkDirectSystem(b *testing.B) {
	f, err := New(Config{Shards: 1, RanksPerShard: 8, Rows: 1 << 17, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Drive the shard's engine directly, bypassing the router: the same
	// store, placement, and memory the 1-shard fleet uses.
	batch, err := f.GenerateBatch(benchBatchSize(), 1)
	if err != nil {
		b.Fatal(err)
	}
	batch.Op = tensor.OpSum
	sh := f.shards[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.engine.TimedLookupFaulted(f.store, sh.primary, sh.mem, batch, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouterOverhead(b *testing.B) {
	f, err := New(Config{Shards: 1, RanksPerShard: 8, Rows: 1 << 17, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	batch, err := f.GenerateBatch(benchBatchSize(), 1)
	if err != nil {
		b.Fatal(err)
	}
	batch.Op = tensor.OpSum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Lookup(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetLookup4Shards(b *testing.B) {
	f, err := New(Config{Shards: 4, RanksPerShard: 8, Rows: 1 << 17})
	if err != nil {
		b.Fatal(err)
	}
	batch, err := f.GenerateBatch(benchBatchSize(), 1)
	if err != nil {
		b.Fatal(err)
	}
	batch.Op = tensor.OpSum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Lookup(batch); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink *core.TimedResult

func BenchmarkFleetFailover(b *testing.B) {
	cfg := Config{Shards: 4, RanksPerShard: 8, Rows: 1 << 17, Parallelism: 1}
	cfg.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 0}}
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := f.GenerateBatch(benchBatchSize(), 1)
	if err != nil {
		b.Fatal(err)
	}
	batch.Op = tensor.OpSum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Lookup(batch)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}
