package router

import (
	"testing"

	"fafnir/internal/fault"
	"fafnir/internal/tensor"
)

// The Stages attribution contract — Stages.Sum() == TotalCycles exactly —
// must hold on every fleet path: the legacy host fold, the rnet switch tree,
// and both under failover.
func TestFleetStagesSumToTotal(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"legacy", nil},
		{"rnet", func(c *Config) { c.Rnet.Radix = 2 }},
		{"faulted", func(c *Config) {
			c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 1}}
		}},
		{"rnet-faulted", func(c *Config) {
			c.Rnet.Radix = 2
			c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 1}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := testFleet(t, tc.mut)
			// Two rounds so the faulted cases cover both the batch that trips
			// the failure and a steady-state degraded batch.
			for round := 0; round < 2; round++ {
				res, err := f.Lookup(testBatch(t, f, 32, int64(round+7), tensor.OpSum))
				if err != nil {
					t.Fatal(err)
				}
				if res.TotalCycles == 0 {
					t.Fatal("zero-cycle lookup")
				}
				if got := res.Stages.Sum(); got != res.TotalCycles {
					t.Fatalf("round %d: Stages.Sum() = %d, TotalCycles = %d (stages %+v)",
						round, got, res.TotalCycles, res.Stages)
				}
			}
		})
	}
}

func TestFederationStagesSumToTotal(t *testing.T) {
	for _, radix := range []int{0, 2} {
		fd := testFederation(t, func(c *FederationConfig) { c.Rnet.Radix = radix })
		b, err := fd.GenerateBatch(24, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fd.Lookup(b)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles == 0 {
			t.Fatal("zero-cycle lookup")
		}
		if got := res.Stages.Sum(); got != res.TotalCycles {
			t.Fatalf("radix %d: Stages.Sum() = %d, TotalCycles = %d (stages %+v)",
				radix, got, res.TotalCycles, res.Stages)
		}
	}
}
