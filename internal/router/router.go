// Package router is the fleet front-end for sharded serving: it owns N
// simulated Fafnir systems (one reduction tree + memory node each), scatters
// every batch's indices to the shards that store them, reduces the per-shard
// partial pools host-side, and wraps each sub-lookup in a robustness
// envelope so the fleet survives the faults internal/fault knows how to
// inject.
//
// The envelope has four layers:
//
//   - per-shard health: a three-state breaker (healthy → suspect → dark)
//     driven by structured sub-lookup errors (ErrRankFailed,
//     ErrRetriesExhausted, ErrShardDown), with seeded-deterministic capped
//     backoff before a dark shard is probed again — all charged on the
//     router's simulated fleet clock, never wall time;
//   - probe lookups: a dark shard whose reopen backoff has elapsed receives
//     a one-query canary lookup before the batch scatters; success reopens
//     the shard, failure doubles the backoff;
//   - deadline-aware failover: a failed sub-lookup retries against the
//     shard's replica peer (each shard stores a full copy of one peer's
//     rows, extending memmap's diagonal rank replicas to shard
//     granularity), unless the configured retry deadline is already spent;
//   - graceful degradation: when a shard and its replica are both
//     unreachable, the batch returns the partial reduction of the surviving
//     shards with a per-shard DegradedReport instead of an error — the
//     paper's reduction-tree argument extended across nodes, where a late
//     (here: lost) partial never blocks the combine.
//
// Everything is deterministic: replaying a seeded fleet fault plan at any
// Parallelism produces bit-identical outputs, cycle counts, degraded
// reports, and failover decisions, because shard sub-lookups fold in shard
// order and every health transition is a pure function of prior structured
// results and the fleet clock.
package router

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/rnet"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// Config shapes a fleet. Zero values select the defaults noted per field;
// Validate names the offending field otherwise.
type Config struct {
	// Shards is the fleet width: independent tree + memory nodes. Default 4.
	Shards int
	// RanksPerShard is each shard's memory width (multiple of 8 for
	// multi-channel DDR4, or any even count for a single channel). Default 8.
	RanksPerShard int
	// BatchCapacity is each shard tree's hardware batch size. Default 32.
	BatchCapacity int
	// Rows is the global embedding-vector count sharded across the fleet.
	// Default 1 Mi. Must be at least Shards so every shard owns a canary row.
	Rows uint64
	// Seed fixes table contents and the breaker's backoff jitter. Default 1.
	Seed int64
	// Parallelism bounds concurrent shard sub-lookups (and each shard
	// engine's internal worker pool). It changes wall-clock speed only:
	// outputs, cycles, health transitions, and degraded reports are
	// bit-identical at every setting. 0 uses every core; 1 is fully serial.
	Parallelism int
	// Fleet attaches a fleet-level fault schedule: whole-shard losses,
	// flapping shards, correlated rank storms, and a base per-shard plan.
	// The zero plan injects nothing.
	Fleet fault.FleetPlan
	// FailureThreshold is how many consecutive structured failures trip a
	// shard dark (the first failure always marks it suspect). Default 2.
	FailureThreshold int
	// ProbeBackoff is the fleet-clock delay before a freshly dark shard is
	// probed; successive failed probes double it. Default 50 000 cycles.
	ProbeBackoff sim.Cycle
	// MaxProbeBackoff caps the doubling. Default 8 x ProbeBackoff.
	MaxProbeBackoff sim.Cycle
	// RetryDeadline bounds the simulated cycles one batch may spend on
	// failover retries: once the batch's shard phase has consumed the
	// budget, remaining failed sub-lookups degrade instead of retrying.
	// 0 never abandons a retry.
	RetryDeadline sim.Cycle
	// Host models the partial-pool combine (zero value: cpu.Default()).
	Host cpu.Config
	// Rnet selects the combine path. The zero value (Radix 0) keeps the
	// legacy serial host fold; Radix >= 2 reduces the per-shard partial
	// pools through an in-network reduction tree (internal/rnet) whose
	// leaves are the shards. Outputs are bit-identical on both paths — only
	// the cycle charging differs (tree critical path vs serial host fold).
	Rnet rnet.Config
	// OwnerStride and OwnerPhase generalize index ownership so a federation
	// can stack fleets without skewing shards: this fleet serves the global
	// indices congruent to OwnerPhase modulo OwnerStride, and the owning
	// shard of index i is (i / OwnerStride) mod Shards. The defaults
	// (stride 1, phase 0) are the standalone fleet: every index is served
	// and the owner is i mod Shards, unchanged.
	OwnerStride int
	OwnerPhase  int
}

func (c *Config) fillDefaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.RanksPerShard == 0 {
		c.RanksPerShard = 8
	}
	if c.BatchCapacity == 0 {
		c.BatchCapacity = 32
	}
	if c.Rows == 0 {
		c.Rows = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 2
	}
	if c.ProbeBackoff == 0 {
		c.ProbeBackoff = 50_000
	}
	if c.MaxProbeBackoff == 0 {
		c.MaxProbeBackoff = 8 * c.ProbeBackoff
	}
	if c.Host == (cpu.Config{}) {
		c.Host = cpu.Default()
	}
	if c.OwnerStride == 0 {
		c.OwnerStride = 1
	}
}

// Validate reports a descriptive error naming the offending field and value
// for an unusable configuration. Zero values are valid defaults.
func (c Config) Validate() error {
	switch {
	case c.Shards < 0:
		return fmt.Errorf("router: Config.Shards = %d: must be positive (or 0 for the default of 4)", c.Shards)
	case c.RanksPerShard < 0 || c.RanksPerShard == 1 || c.RanksPerShard%2 != 0 && c.RanksPerShard != 0:
		return fmt.Errorf("router: Config.RanksPerShard = %d: must be an even positive count (or 0 for the default of 8)", c.RanksPerShard)
	case c.BatchCapacity < 0:
		return fmt.Errorf("router: Config.BatchCapacity = %d: must be positive (or 0 for the default of 32)", c.BatchCapacity)
	case c.FailureThreshold < 0:
		return fmt.Errorf("router: Config.FailureThreshold = %d: must be positive (or 0 for the default of 2)", c.FailureThreshold)
	case c.Parallelism < 0:
		return fmt.Errorf("router: Config.Parallelism = %d: must be non-negative (0 uses every core)", c.Parallelism)
	case c.OwnerStride < 0:
		return fmt.Errorf("router: Config.OwnerStride = %d: must be positive (or 0 for the default of 1)", c.OwnerStride)
	case c.OwnerPhase < 0 || c.OwnerStride > 0 && c.OwnerPhase >= c.OwnerStride:
		return fmt.Errorf("router: Config.OwnerPhase = %d: must be in [0, OwnerStride %d)", c.OwnerPhase, max(c.OwnerStride, 1))
	}
	if c.Rows != 0 && c.Shards != 0 {
		stride := uint64(max(c.OwnerStride, 1))
		if need := uint64(c.Shards-1)*stride + uint64(c.OwnerPhase) + 1; c.Rows < need {
			return fmt.Errorf("router: Config.Rows = %d: must be at least %d so every shard owns a canary row", c.Rows, need)
		}
	}
	if err := c.Rnet.Validate(); err != nil {
		return err
	}
	if err := c.Fleet.Validate(); err != nil {
		return err
	}
	if c.Host != (cpu.Config{}) {
		return c.Host.Validate()
	}
	return nil
}

// shardNode is one member of the fleet: a tree, its memory, its fault
// injector, and the placement views of its three address regions.
type shardNode struct {
	engine  *core.Engine
	mem     *dram.System
	inj     *fault.Injector
	primary primaryView
	// peerView places the rows of the peer shard this node holds replicas
	// for (peer = the shard whose replicaHolder is this node).
	peerView replicaView
}

// Fleet is a sharded deployment behind one Lookup front-end. Like the
// single System it is not safe for concurrent use — the serving layer's
// single flusher goroutine is its intended caller.
type Fleet struct {
	cfg      Config
	store    *embedding.Store
	shards   []*shardNode
	breakers []*breaker
	host     *cpu.Engine
	mcfg     dram.Config
	rtree    *rnet.Tree // nil on the legacy host-fold path (Rnet.Radix 0)
	clock    sim.Cycle
	tracer   telemetry.Tracer
	// spanCtx is the parent span ID for request-linked tracing: the serving
	// layer sets it to the flush span's ID before each Lookup (see
	// SetSpanContext) so shard, failover, combine, and switch spans chain
	// under the request that paid for them.
	spanCtx uint64
	m       *Metrics
}

// New builds the fleet: Shards independent systems over one content-seeded
// global store, with per-shard fault plans compiled from the fleet plan.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if err := cfg.Fleet.ValidateFor(cfg.Shards); err != nil {
		return nil, err
	}

	mcfg := dram.DDR4()
	switch {
	case cfg.RanksPerShard%8 == 0:
		mcfg.Channels = cfg.RanksPerShard / 8
	default: // even, validated above
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = cfg.RanksPerShard / 2
	}

	store, err := embedding.NewStore(cfg.Rows, 128, uint64(cfg.Seed))
	if err != nil {
		return nil, err
	}
	host, err := cpu.NewEngine(cfg.Host)
	if err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, store: store, host: host, mcfg: mcfg}
	if cfg.Rnet.Enabled() {
		rcfg := cfg.Rnet
		if rcfg.Parallelism == 0 {
			rcfg.Parallelism = cfg.Parallelism
		}
		if len(cfg.Fleet.SwitchStalls) > 0 {
			rcfg.Stalls = make(map[int]sim.Cycle, len(cfg.Fleet.SwitchStalls))
			for _, st := range cfg.Fleet.SwitchStalls {
				// Plan clauses number switches 0..Interior-1; tree node IDs
				// start past the leaves.
				rcfg.Stalls[cfg.Shards+st.Switch] += st.Cycles
			}
		}
		tree, err := rnet.NewTree(cfg.Shards, rcfg)
		if err != nil {
			return nil, err
		}
		f.rtree = tree
	}
	for s := 0; s < cfg.Shards; s++ {
		ecfg := core.Default()
		ecfg.NumRanks = cfg.RanksPerShard
		ecfg.BatchCapacity = cfg.BatchCapacity
		ecfg.Parallelism = cfg.Parallelism
		engine, err := core.NewEngine(ecfg)
		if err != nil {
			return nil, err
		}
		mem, err := dram.NewSystem(mcfg)
		if err != nil {
			return nil, err
		}
		node := &shardNode{
			engine:  engine,
			mem:     mem,
			primary: f.viewOf(s),
		}
		peer := f.replicaPeer(s)
		node.peerView = replicaView{host: node.primary, peer: f.viewOf(peer)}
		plan := cfg.Fleet.ShardPlan(s, cfg.Shards, cfg.RanksPerShard)
		if !plan.Empty() {
			inj, err := fault.NewInjector(plan, cfg.RanksPerShard)
			if err != nil {
				return nil, err
			}
			node.inj = inj
			mem.AttachFaults(inj)
		}
		f.shards = append(f.shards, node)
		f.breakers = append(f.breakers, &breaker{
			threshold: cfg.FailureThreshold,
			base:      cfg.ProbeBackoff,
			cap:       cfg.MaxProbeBackoff,
			seed:      splitmix64(uint64(cfg.Seed) ^ uint64(s)<<20),
		})
	}
	return f, nil
}

// viewOf builds shard s's primary placement view. Under stride/phase
// addressing shard s owns the rows phase + stride*(s + Shards*k), so its
// first row is s*stride + phase and consecutive owned rows are stride*Shards
// apart.
func (f *Fleet) viewOf(s int) primaryView {
	stride := uint64(f.cfg.OwnerStride)
	n := uint64(f.cfg.Shards)
	first := uint64(s)*stride + uint64(f.cfg.OwnerPhase)
	var owned uint64
	if f.cfg.Rows > first {
		owned = (f.cfg.Rows - first + stride*n - 1) / (stride * n)
	}
	return primaryView{shards: f.cfg.Shards, stride: f.cfg.OwnerStride, ranks: f.cfg.RanksPerShard, bytes: 512, slots: owned}
}

// ownerOf returns the shard storing the primary copy of idx.
func (f *Fleet) ownerOf(idx header.Index) int {
	return int(uint64(idx) / uint64(f.cfg.OwnerStride) % uint64(f.cfg.Shards))
}

// canaryRow is the first row shard s owns under the fleet's stride/phase
// addressing; the probe path reads it as the one-query canary. Validate
// guarantees it exists.
func (f *Fleet) canaryRow(s int) header.Index {
	return header.Index(uint64(s)*uint64(f.cfg.OwnerStride) + uint64(f.cfg.OwnerPhase))
}

// OwnerOf reports the shard storing the primary copy of idx. The serving
// layer's hot-embedding cache uses it to partition its byte budget by owner
// shard, so fleet mode caches per shard.
func (f *Fleet) OwnerOf(idx header.Index) int { return f.ownerOf(idx) }

// Row returns the raw embedding row idx from the global store. The serving
// layer's hot-embedding cache fills from it after a flushed batch: the store
// is the ground truth every DRAM read (remapped or not) returns, so host-side
// copies are bit-identical to what the shards would serve.
func (f *Fleet) Row(idx header.Index) (tensor.Vector, error) { return f.store.Vector(idx) }

// Dim reports the embedding dimensionality of the fleet's store.
func (f *Fleet) Dim() int { return f.store.Dim() }

// replicaHolder returns the shard storing the replica copy of shard s's
// rows: s + max(1, N/2) mod N, so a single shard loss never takes out both
// copies (for N >= 2) and paired losses degrade evenly — memmap's diagonal
// rank replica lifted to shard granularity. A one-shard fleet keeps no
// replicas.
func (f *Fleet) replicaHolder(s int) int {
	n := f.cfg.Shards
	step := n / 2
	if step == 0 {
		step = 1
	}
	return (s + step) % n
}

// replicaPeer inverts replicaHolder: the shard whose rows s holds replicas
// for.
func (f *Fleet) replicaPeer(s int) int {
	n := f.cfg.Shards
	step := n / 2
	if step == 0 {
		step = 1
	}
	return (s - step + n) % n
}

// Store exposes the global embedding store (for golden comparisons).
func (f *Fleet) Store() *embedding.Store { return f.store }

// TotalRows reports the global embedding-vector count; the serving layer
// validates wire indices against it.
func (f *Fleet) TotalRows() uint64 { return f.cfg.Rows }

// Shards reports the fleet width.
func (f *Fleet) Shards() int { return f.cfg.Shards }

// Config returns the fleet's configuration with defaults resolved.
func (f *Fleet) Config() Config { return f.cfg }

// Topology returns the one-line deployment description the serving CLI
// prints at startup: shard and rank counts plus the combine path.
func (f *Fleet) Topology() string {
	combine := "host fold"
	if f.rtree != nil {
		combine = fmt.Sprintf("rnet radix %d (%d switches, depth %d)",
			f.rtree.Config().Radix, f.rtree.Interior(), f.rtree.Depth())
	}
	return fmt.Sprintf("fleet: %d shards x %d ranks, %s", f.cfg.Shards, f.cfg.RanksPerShard, combine)
}

// Clock reports the fleet's simulated cycle clock, advanced by every batch.
func (f *Fleet) Clock() sim.Cycle { return f.clock }

// Health reports shard s's current breaker state.
func (f *Fleet) Health(s int) State { return f.breakers[s].state }

// AttachTracer threads a telemetry tracer through the router: subsequent
// batches emit per-shard scatter windows, failover retries, probes, and the
// host combine as spans on the PIDRouter timeline (one lane per shard, all
// in fleet-clock cycles). Per-shard engine/DRAM traces stay detached in
// fleet mode — their rank-keyed lanes would collide across shards. A nil
// tracer detaches. Tracing is observational only.
func (f *Fleet) AttachTracer(t telemetry.Tracer) {
	f.tracer = t
	if t == nil {
		return
	}
	t.NameProcess(telemetry.PIDRouter, "router")
	for s := range f.shards {
		t.NameLane(telemetry.PIDRouter, s, fmt.Sprintf("shard %d", s))
	}
	t.NameLane(telemetry.PIDRouter, len(f.shards), "combine")
	if f.rtree != nil {
		t.NameProcess(telemetry.PIDRnet, "rnet")
		for lvl := 1; lvl <= f.rtree.Depth(); lvl++ {
			t.NameLane(telemetry.PIDRnet, lvl, fmt.Sprintf("switch level %d", lvl))
		}
	}
}

// SetSpanContext installs the parent span ID that subsequent batch spans
// link under (0 detaches). Annotation only — timing is never perturbed.
func (f *Fleet) SetSpanContext(parent uint64) { f.spanCtx = parent }

// MemoryCounter sums one cumulative memory-system counter across the fleet
// (e.g. "dram.row_hits"); the serving layer's per-flush attribution works
// unchanged over a fleet backend.
func (f *Fleet) MemoryCounter(name string) uint64 {
	var total uint64
	for _, sh := range f.shards {
		total += sh.mem.Stats().Counter(name)
	}
	return total
}

// emit records one router span on the fleet timeline (200 MHz PE clock).
func (f *Fleet) emit(name string, lane int, phase byte, ts, dur sim.Cycle, args ...telemetry.Arg) {
	if f.tracer == nil {
		return
	}
	ev := telemetry.Event{
		Name: name, Cat: "router", Phase: phase,
		PID: telemetry.PIDRouter, TID: lane,
		TS: uint64(ts), ClockMHz: 200,
	}
	if phase == telemetry.PhaseSpan {
		ev.Dur = uint64(dur)
	}
	for _, a := range args {
		ev.AddArg(a)
	}
	f.tracer.Emit(ev)
}

// structuredFault reports whether err is a fault the robustness envelope
// absorbs (as opposed to a programming error, which must surface).
func structuredFault(err error) bool {
	return errors.Is(err, fault.ErrRankFailed) ||
		errors.Is(err, fault.ErrRetriesExhausted) ||
		errors.Is(err, fault.ErrShardDown)
}

// lookupShard runs one sub-batch on shard s through the given placement
// view. The fleet-plan down check runs first so a dead node fails fast
// without touching its engine or memory state — determinism across replays
// depends on dead shards staying untouched.
func (f *Fleet) lookupShard(s int, view core.Placement, b embedding.Batch, at sim.Cycle) (*core.TimedResult, error) {
	if f.cfg.Fleet.Down(s, at) {
		return nil, fmt.Errorf("router: shard %d is down at fleet cycle %d: %w", s, at, fault.ErrShardDown)
	}
	sh := f.shards[s]
	return sh.engine.TimedLookupFaulted(f.store, view, sh.mem, b, true, sh.inj)
}

// subref ties one shard sub-query back to its batch query.
type subref struct {
	query   int // batch query index
	indices int // index count contributed by this shard
}

// GenerateBatch draws n deterministic Zipf-skewed queries over the global
// row space (16 indices each, sum pooling), for benchmarks and smoke tests.
func (f *Fleet) GenerateBatch(n int, seed int64) (embedding.Batch, error) {
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n,
		QuerySize:  16,
		Rows:       f.cfg.Rows,
		Seed:       f.cfg.Seed*1_000_003 + seed,
		Dist:       embedding.Zipf,
		ZipfS:      1.3,
	})
	if err != nil {
		return embedding.Batch{}, err
	}
	return gen.Batch(tensor.OpSum), nil
}

// Lookup scatters the batch across the fleet, runs every owning shard's
// sub-batch (concurrently up to Parallelism; folded in shard order), retries
// failed sub-lookups on replica shards within the retry deadline, reduces
// the partial pools host-side, and returns the combined result. A batch that
// lost data to unreachable shard pairs still succeeds: the outputs are the
// partial reduction of every surviving shard and res.Degraded itemizes the
// loss per shard and per query. Only programming errors (invariant
// violations, bad ops) return a non-nil error.
func (f *Fleet) Lookup(b embedding.Batch) (*core.TimedResult, error) {
	if len(b.Queries) == 0 {
		return nil, fmt.Errorf("router: empty batch")
	}
	if !b.Op.Valid() {
		return nil, fmt.Errorf("router: invalid reduce op %d", b.Op)
	}
	start := f.clock
	n := f.cfg.Shards
	dim := f.store.Dim()
	// Span parentage for request-linked tracing: every span this batch emits
	// links under the installed context (0 when the router runs standalone).
	ctx := f.spanCtx
	combineID := telemetry.SpanID(ctx, "combine", 0)
	res := &core.TimedResult{}
	res.Outputs = make([]tensor.Vector, len(b.Queries))
	deg := &core.DegradedReport{}
	entries := make([]*core.ShardDegraded, n)
	entry := func(s int) *core.ShardDegraded {
		if entries[s] == nil {
			entries[s] = &core.ShardDegraded{Shard: s}
		}
		return entries[s]
	}

	// Probe phase: dark shards whose backoff elapsed get a canary lookup
	// before the batch scatters. Probe time overlaps across shards (the
	// slowest one gates the scatter).
	var probeCycles sim.Cycle
	for s := 0; s < n; s++ {
		br := f.breakers[s]
		if !br.probeDue(start) {
			continue
		}
		f.countProbe(s)
		canary := embedding.Batch{Op: tensor.OpSum, Queries: []embedding.Query{
			{Indices: header.NewIndexSet(f.canaryRow(s))},
		}}
		r, err := f.lookupShard(s, f.shards[s].primary, canary, start)
		switch {
		case err == nil:
			br.onSuccess()
			f.setShardState(s, Healthy)
			probeCycles = sim.Max(probeCycles, r.TotalCycles)
			f.countReopen(s)
			f.emit("probe.ok", s, telemetry.PhaseInstant, start, 0,
				telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(ctx, "probe", uint64(s)))},
				telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
		case structuredFault(err):
			br.onProbeFailure(start)
			f.emit("probe.fail", s, telemetry.PhaseInstant, start, 0,
				telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(ctx, "probe", uint64(s)))},
				telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
		default:
			return nil, err
		}
	}

	// Scatter: split every query's indices by owning shard, preserving
	// index order within each sub-query.
	op := b.Op
	subOp := op
	if op == tensor.OpMean {
		// Shard trees accumulate raw sums; the router finalizes the mean
		// once, over the surviving operand count, exactly as a single tree's
		// root would.
		subOp = tensor.OpSum
	}
	subs := make([]embedding.Batch, n)
	refs := make([][]subref, n)
	survivors := make([]int, len(b.Queries))
	for qi, q := range b.Queries {
		survivors[qi] = q.Indices.Len()
		if q.Indices.Len() == 0 {
			res.Outputs[qi] = tensor.New(dim)
			continue
		}
		per := make(map[int][]header.Index)
		for _, idx := range q.Indices {
			s := f.ownerOf(idx)
			per[s] = append(per[s], idx)
		}
		for s := 0; s < n; s++ {
			indices, ok := per[s]
			if !ok {
				continue
			}
			subs[s].Op = subOp
			subs[s].Queries = append(subs[s].Queries, embedding.Query{Indices: header.NewIndexSet(indices...)})
			refs[s] = append(refs[s], subref{query: qi, indices: len(indices)})
		}
	}

	// Dispatch: dark shards are skipped (their traffic goes straight to
	// failover); everything else attempts its primary, concurrently up to
	// Parallelism. Results fold in shard order below, so execution order
	// never leaks into outputs, cycles, or health transitions.
	type attempt struct {
		res *core.TimedResult
		err error
	}
	attempts := make([]attempt, n)
	var run []int
	for s := 0; s < n; s++ {
		if len(subs[s].Queries) == 0 {
			continue
		}
		if f.breakers[s].state == Dark {
			attempts[s] = attempt{err: fmt.Errorf("router: shard %d is dark (breaker open): %w", s, fault.ErrShardDown)}
			continue
		}
		run = append(run, s)
	}
	if par := f.parallelism(); par > 1 && len(run) > 1 {
		// Shards are fully independent (own engine, memory, injector), so
		// concurrent sub-lookups share no mutable state; only the fold below
		// touches fleet-level state, in shard order.
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for _, s := range run {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r, err := f.lookupShard(s, f.shards[s].primary, subs[s], start)
				attempts[s] = attempt{res: r, err: err}
			}(s)
		}
		wg.Wait()
	} else {
		for _, s := range run {
			r, err := f.lookupShard(s, f.shards[s].primary, subs[s], start)
			attempts[s] = attempt{res: r, err: err}
		}
	}

	// Fold phase, strictly in shard order: combine successful partials,
	// drive the breakers, and queue failovers.
	type failover struct {
		shard int
		cause error
	}
	var shardCycles sim.Cycle
	var failovers []failover
	delivered := make([]bool, n)
	// On the rnet path each delivered sub-lookup stages its partial pool
	// (dense over the batch's queries) and its network-injection time
	// instead of folding into res.Outputs — the switch tree combines below.
	var pools [][]tensor.Vector
	var readys []sim.Cycle
	if f.rtree != nil {
		pools = make([][]tensor.Vector, n)
		readys = make([]sim.Cycle, n)
	}
	poolFor := func(s int, ready sim.Cycle) []tensor.Vector {
		if f.rtree == nil {
			return nil
		}
		pools[s] = make([]tensor.Vector, len(b.Queries))
		readys[s] = ready
		return pools[s]
	}
	for s := 0; s < n; s++ {
		if len(subs[s].Queries) == 0 {
			continue
		}
		a := attempts[s]
		wasDark := f.breakers[s].state == Dark
		switch {
		case a.err == nil:
			f.breakers[s].onSuccess()
			f.setShardState(s, Healthy)
			f.countShardLookup(s)
			if err := f.fold(res, deg, entry, s, a.res, refs[s], op, poolFor(s, a.res.TotalCycles)); err != nil {
				return nil, err
			}
			delivered[s] = true
			shardCycles = sim.Max(shardCycles, a.res.TotalCycles)
			f.emit("shard.lookup", s, telemetry.PhaseSpan, start+probeCycles, a.res.TotalCycles,
				telemetry.Arg{Key: "queries", Int: int64(len(subs[s].Queries))},
				telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(ctx, "shard.lookup", uint64(s)))},
				telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
		case structuredFault(a.err):
			if !wasDark {
				f.countFailure(s)
				if f.breakers[s].onFailure(start) {
					f.countDark(s)
				}
				f.setShardState(s, f.breakers[s].state)
			}
			e := entry(s)
			e.State = f.breakers[s].state.String()
			e.Err = a.err.Error()
			failovers = append(failovers, failover{shard: s, cause: a.err})
			f.emit("shard.fail", s, telemetry.PhaseInstant, start+probeCycles, 0,
				telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(ctx, "shard.fail", uint64(s)))},
				telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
		default:
			return nil, a.err
		}
	}

	// Failover phase, serial in shard order: each failed sub-batch retries
	// once against its replica holder, unless the retry deadline is spent or
	// the replica is itself unreachable — then the sub-batch's contribution
	// is dropped and the loss recorded.
	var failoverCycles sim.Cycle
	for _, fo := range failovers {
		s := fo.shard
		target := f.replicaHolder(s)
		e := entry(s)
		spent := probeCycles + shardCycles + failoverCycles
		switch {
		case f.cfg.RetryDeadline > 0 && spent >= f.cfg.RetryDeadline:
			f.countAbandoned(s)
			f.lose(res, deg, e, refs[s], survivors)
		case target == s || f.breakers[target].state == Dark || f.cfg.Fleet.Down(target, start):
			f.lose(res, deg, e, refs[s], survivors)
		default:
			f.countRetry(s)
			r, err := f.lookupShard(target, f.shards[target].peerView, subs[s], start)
			switch {
			case err == nil:
				f.countFailover(s)
				f.countShardLookup(target)
				e.FailedOver = true
				// A failed-over partial is just a late leaf: it enters the
				// network when its serial retry completes, after the scatter
				// window and every earlier retry.
				if err := f.fold(res, deg, entry, target, r, refs[s], op,
					poolFor(s, shardCycles+failoverCycles+r.TotalCycles)); err != nil {
					return nil, err
				}
				delivered[s] = true
				failoverCycles += r.TotalCycles
				f.emit("shard.failover", target, telemetry.PhaseSpan, start+probeCycles+shardCycles, r.TotalCycles,
					telemetry.Arg{Key: "for_shard", Int: int64(s)},
					telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(ctx, "shard.failover", uint64(s)))},
					telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
			case structuredFault(err):
				f.countFailure(target)
				if f.breakers[target].onFailure(start) {
					f.countDark(target)
				}
				f.setShardState(target, f.breakers[target].state)
				te := entry(target)
				te.State = f.breakers[target].state.String()
				te.Err = err.Error()
				f.lose(res, deg, e, refs[s], survivors)
			default:
				return nil, err
			}
		}
	}

	// Combine phase. Legacy (Radix 0): the fold above already merged the
	// outputs serially; charge one handled vector per delivered partial
	// beyond each query's first, plus channel transfer of every partial
	// pool — the host waits for the slowest shard, then combines O(Shards)
	// pools one after another. Rnet (Radix >= 2): reduce the staged pools
	// through the switch tree — every partial takes O(log_radix Shards)
	// link hops, a switch fires the moment its last live child lands, lost
	// shards are simply absent leaves, and only the root pool crosses the
	// host link. Lost sub-batches delivered nothing, so on both paths they
	// cost (and contribute) nothing.
	partials := 0
	combines := 0
	partialsPer := make(map[int]int, len(b.Queries))
	for s := 0; s < n; s++ {
		if !delivered[s] {
			continue
		}
		for _, ref := range refs[s] {
			partialsPer[ref.query]++
		}
	}
	for _, p := range partialsPer {
		partials += p
		if p > 1 {
			combines += p - 1
		}
	}
	var xfer sim.Cycle
	if f.rtree == nil {
		combineCycles := f.host.HandleVectors(combines)
		xfer = f.cfg.Host.DRAMToHost(f.mcfg.TransferCycles(partials * 512))
		res.TotalCycles = probeCycles + shardCycles + failoverCycles + combineCycles + xfer
		res.Stages = core.StageCycles{
			Probe: probeCycles, Backend: shardCycles, Failover: failoverCycles,
			Combine: combineCycles, Transfer: xfer,
		}
		f.emit("combine", n, telemetry.PhaseSpan, start+probeCycles+shardCycles+failoverCycles, combineCycles+xfer,
			telemetry.Arg{Key: "partials", Int: int64(partials)},
			telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(combineID)},
			telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
	} else {
		leavesIn := make([]*rnet.Partial, n)
		for s := 0; s < n; s++ {
			if delivered[s] {
				leavesIn[s] = &rnet.Partial{Vectors: pools[s], Ready: readys[s]}
			}
		}
		rres, err := f.rtree.Reduce(op, len(b.Queries), leavesIn)
		if err != nil {
			return nil, err
		}
		rootQueries := 0
		for qi, v := range rres.Outputs {
			if v != nil {
				res.Outputs[qi] = v
				rootQueries++
			}
		}
		// The critical path already contains the slowest contributing
		// shard's (or retry's) completion on its leaf, so it replaces the
		// scatter + failover + combine terms wholesale.
		xfer = f.cfg.Host.DRAMToHost(f.mcfg.TransferCycles(rootQueries * 512))
		res.TotalCycles = probeCycles + rres.CriticalPath + xfer
		// The tree's critical path contains the leaf windows (shard scatter
		// plus serial failovers); what it adds beyond them is the combine
		// stage. Leaf readiness bounds the critical path from below, so the
		// subtraction cannot underflow; the else arm is a defensive fold that
		// preserves the Sum() == TotalCycles invariant regardless.
		backendStage, failStage := shardCycles, failoverCycles
		var combineStage sim.Cycle
		if rres.CriticalPath >= shardCycles+failoverCycles {
			combineStage = rres.CriticalPath - shardCycles - failoverCycles
		} else {
			backendStage, failStage = rres.CriticalPath, 0
		}
		res.Stages = core.StageCycles{
			Probe:    probeCycles,
			Backend:  backendStage,
			Failover: failStage,
			Combine:  combineStage,
			Transfer: xfer,
		}
		f.countRnet(rres)
		f.emitRnetSpans(start+probeCycles, rres, combineID)
		f.emit("combine", n, telemetry.PhaseSpan, start+probeCycles+shardCycles+failoverCycles,
			res.TotalCycles-(shardCycles+failoverCycles)-probeCycles,
			telemetry.Arg{Key: "partials", Int: int64(partials)},
			telemetry.Arg{Key: "switch_fires", Int: int64(rres.Fires)},
			telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(combineID)},
			telemetry.Arg{Key: telemetry.ArgParent, Int: int64(ctx)})
	}

	// Finalize outputs: queries that lost everything (or arrived empty)
	// produce zero vectors like the engines; mean scales by the surviving
	// operand count, the single-tree root's exact finalize operation.
	for qi := range res.Outputs {
		if res.Outputs[qi] == nil {
			res.Outputs[qi] = tensor.New(dim)
			continue
		}
		if op == tensor.OpMean {
			op.FinalizeMean(res.Outputs[qi], survivors[qi])
		}
	}

	res.TransferCycles = xfer
	res.ComputeCycles = res.TotalCycles - res.MemCycles - xfer
	f.clock = start + res.TotalCycles

	for _, e := range entries {
		if e != nil {
			if e.State == "" {
				e.State = f.breakers[e.Shard].state.String()
			}
			deg.Shards = append(deg.Shards, *e)
		}
	}
	if !deg.Empty() {
		res.Degraded = deg
		f.countDegraded(len(deg.LostQueries))
	}
	return res, nil
}

// fold merges one successful sub-lookup into the batch result, in shard
// order. Statistics always accumulate here; the partial vectors either
// combine into res.Outputs per query (legacy host fold, pool nil) or stage
// into the sub-lookup's dense pool for the rnet switch tree to reduce. The
// sub-lookup's own degraded work (in-shard rank remaps, ECC retries) lands
// on the shard's report entry either way.
func (f *Fleet) fold(res *core.TimedResult, deg *core.DegradedReport, entry func(int) *core.ShardDegraded,
	s int, r *core.TimedResult, refs []subref, op tensor.ReduceOp, pool []tensor.Vector) error {
	for i, out := range r.Outputs {
		qi := refs[i].query
		switch {
		case pool != nil:
			pool[qi] = out
		case res.Outputs[qi] == nil:
			res.Outputs[qi] = out.Clone()
		default:
			if err := op.Apply(res.Outputs[qi], out); err != nil {
				return err
			}
		}
	}
	res.MemoryReads += r.MemoryReads
	res.BytesRead += r.BytesRead
	res.PETotals.Add(r.PETotals)
	res.HWBatches += r.HWBatches
	if r.MaxOccupancy > res.MaxOccupancy {
		res.MaxOccupancy = r.MaxOccupancy
	}
	res.MemCycles = sim.Max(res.MemCycles, r.MemCycles)
	if !r.Degraded.Empty() {
		deg.RemappedReads += r.Degraded.RemappedReads
		deg.RemappedQueries += r.Degraded.RemappedQueries
		deg.Retries += r.Degraded.Retries
		deg.RetryCycles += r.Degraded.RetryCycles
		e := entry(s)
		e.FailedRanks = append([]int(nil), r.Degraded.FailedRanks...)
	}
	return nil
}

// lose records a sub-batch whose shard and replica were both unreachable:
// its queries keep whatever partials other shards contributed, the loss is
// itemized per query, and the per-shard entry carries the totals.
func (f *Fleet) lose(res *core.TimedResult, deg *core.DegradedReport, e *core.ShardDegraded,
	refs []subref, survivors []int) {
	for _, ref := range refs {
		survivors[ref.query] -= ref.indices
		e.LostQueries++
		e.LostIndices += ref.indices
		deg.AddLost(ref.query, ref.indices)
	}
	f.countLostShard(e.Shard)
}

// emitRnetSpans records every switch firing on the rnet timeline, one lane
// per switch level, each span-linked under the batch's combine span. Spans
// arrive in node-ID order from the reduction (the deterministic post-hoc
// fold), so traced streams are bit-identical at every Parallelism.
func (f *Fleet) emitRnetSpans(base sim.Cycle, r *rnet.Result, parent uint64) {
	if f.tracer == nil {
		return
	}
	for _, sp := range r.Spans {
		ev := telemetry.Event{
			Name: "switch", Cat: "rnet", Phase: telemetry.PhaseSpan,
			PID: telemetry.PIDRnet, TID: sp.Level,
			TS: uint64(base + sp.Fire), Dur: uint64(sp.Done - sp.Fire), ClockMHz: 200,
		}
		ev.AddArg(telemetry.Arg{Key: "node", Int: int64(sp.Node)})
		ev.AddArg(telemetry.Arg{Key: "combines", Int: int64(sp.Combines)})
		if sp.Missing > 0 {
			ev.AddArg(telemetry.Arg{Key: "missing_children", Int: int64(sp.Missing)})
		}
		ev.AddArg(telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(parent, "switch", uint64(sp.Node)))})
		ev.AddArg(telemetry.Arg{Key: telemetry.ArgParent, Int: int64(parent)})
		f.tracer.Emit(ev)
	}
}

func (f *Fleet) parallelism() int {
	if f.cfg.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return f.cfg.Parallelism
}
