package router

import (
	"strconv"

	"fafnir/internal/rnet"
	"fafnir/internal/telemetry"
)

// fedMetrics is the federation's family set: per-fleet traffic and
// degradation counters (the "fleet" label is loadgen's per-fleet roll-up
// key), batch/verify totals, and the cross-fleet rnet switch families. The
// member fleets' own per-shard families are deliberately NOT registered —
// their shard-labelled names would collide across members — so in
// federation mode the fafnir_rnet_* families describe the cross-fleet tree.
type fedMetrics struct {
	fleetLookups  *telemetry.CounterVec
	fleetDegraded *telemetry.CounterVec
	batches       *telemetry.Counter
	verified      *telemetry.Counter

	rnetCombines *telemetry.Counter
	rnetFires    *telemetry.Counter
	rnetMissing  *telemetry.Counter
	rnetLinks    *telemetry.Counter
	rnetCritical *telemetry.Gauge
}

// RegisterMetrics publishes the federation's metric families into reg. Call
// at most once per registry; the registry panics on duplicate names.
func (fd *Federation) RegisterMetrics(reg *telemetry.Registry) {
	labels := make([]string, fd.cfg.Fleets)
	for fm := range labels {
		labels[fm] = strconv.Itoa(fm)
	}
	fd.m = &fedMetrics{
		fleetLookups: reg.CounterVec("fafnir_federation_fleet_lookups_total",
			"Member-fleet sub-lookups dispatched, per fleet.", "fleet", labels...),
		fleetDegraded: reg.CounterVec("fafnir_federation_fleet_degraded_total",
			"Member-fleet sub-lookups returning a degraded report, per fleet.", "fleet", labels...),
		batches: reg.Counter("fafnir_federation_batches_total",
			"Batches combined across the federation."),
		verified: reg.Counter("fafnir_federation_verified_total",
			"Batches re-checked bit-for-bit against the reference oracle."),
		rnetCombines: reg.Counter("fafnir_rnet_combines_total",
			"Vector combines performed at cross-fleet rnet switch nodes."),
		rnetFires: reg.Counter("fafnir_rnet_switch_fires_total",
			"Cross-fleet rnet switch firings (one per live switch per batch)."),
		rnetMissing: reg.Counter("fafnir_rnet_missing_children_total",
			"Cross-fleet rnet switch children absent at fire time."),
		rnetLinks: reg.Counter("fafnir_rnet_link_transfers_total",
			"Fleet-to-switch partial-pool hops through the cross-fleet tree."),
		rnetCritical: reg.Gauge("fafnir_rnet_critical_path_cycles",
			"Cross-fleet combine critical path of the most recent batch."),
	}
}

func (fd *Federation) countFleetLookup(fm int) {
	if fd.m != nil {
		fd.m.fleetLookups.At(fm).Add(1)
	}
}

func (fd *Federation) countFleetDegraded(fm int) {
	if fd.m != nil {
		fd.m.fleetDegraded.At(fm).Add(1)
	}
}

func (fd *Federation) countBatch(r *rnet.Result) {
	if fd.m == nil {
		return
	}
	fd.m.batches.Add(1)
	fd.m.rnetCombines.Add(uint64(r.Combines))
	fd.m.rnetFires.Add(uint64(r.Fires))
	fd.m.rnetMissing.Add(uint64(r.MissingChildren))
	fd.m.rnetLinks.Add(uint64(r.LinkTransfers))
	fd.m.rnetCritical.Set(int64(r.CriticalPath))
}

func (fd *Federation) countVerified() {
	if fd.m != nil {
		fd.m.verified.Add(1)
	}
}
