package router

import (
	"strconv"

	"fafnir/internal/rnet"
	"fafnir/internal/telemetry"
)

// Metrics is the router's family set over the unified telemetry registry:
// per-shard health as a labelled gauge, plus counters for every robustness
// decision the envelope makes (failures, dark trips, probes, reopens,
// failover retries, abandoned retries, lost queries, degraded batches).
// All families carry the shard label so a dashboard can tell which member
// of the fleet is misbehaving.
type Metrics struct {
	reg *telemetry.Registry

	// shardState publishes each shard's breaker state as an integer gauge:
	// 0 healthy, 1 suspect, 2 dark.
	shardState *telemetry.GaugeVec
	// failures counts structured sub-lookup failures per shard (primary and
	// failover attempts alike).
	failures *telemetry.CounterVec
	// dark counts healthy/suspect → dark breaker trips per shard.
	dark *telemetry.CounterVec
	// probes counts canary lookups sent to dark shards.
	probes *telemetry.CounterVec
	// reopens counts successful probes (dark → healthy transitions).
	reopens *telemetry.CounterVec
	// retries counts failover sub-lookups dispatched to replica shards,
	// labelled by the failed primary shard.
	retries *telemetry.CounterVec
	// failovers counts failover sub-lookups that succeeded, labelled by the
	// failed primary shard.
	failovers *telemetry.CounterVec
	// abandoned counts failover retries skipped because the batch's retry
	// deadline was already spent.
	abandoned *telemetry.CounterVec
	// lost counts sub-batches dropped because shard and replica were both
	// unreachable, labelled by the owning shard.
	lost *telemetry.CounterVec
	// degradedBatches counts batches returned with a non-empty
	// DegradedReport.
	degradedBatches *telemetry.Counter
	// lostQueries counts queries whose pooled output is missing at least one
	// shard's contribution.
	lostQueries *telemetry.Counter
	// lookups counts sub-lookups each shard served (primary and failover),
	// the per-shard traffic family loadgen's roll-up reads.
	lookups *telemetry.CounterVec

	// The rnet families exist only on the in-network combine path
	// (Config.Rnet.Radix >= 2); a legacy host-fold fleet never registers
	// them, so their absence on /metrics identifies the combine path.

	// rnetCombines counts vector combines performed at rnet switches.
	rnetCombines *telemetry.Counter
	// rnetFires counts switch firings (one per live switch per batch).
	rnetFires *telemetry.Counter
	// rnetMissing counts switch children that never arrived (dark subtrees).
	rnetMissing *telemetry.Counter
	// rnetLinks counts child-to-parent partial-pool hops.
	rnetLinks *telemetry.Counter
	// rnetCritical publishes the last batch's combine critical path, in
	// fleet-clock cycles.
	rnetCritical *telemetry.Gauge
}

// RegisterMetrics publishes the router's metric families into reg (the
// serving layer passes its own registry through, so router families render
// on the same /metrics page). Call at most once per registry; the registry
// panics on duplicate names, same as every other family.
func (f *Fleet) RegisterMetrics(reg *telemetry.Registry) {
	labels := make([]string, f.cfg.Shards)
	for s := range labels {
		labels[s] = strconv.Itoa(s)
	}
	m := &Metrics{
		reg: reg,
		shardState: reg.GaugeVec("fafnir_router_shard_state",
			"Breaker state per shard: 0 healthy, 1 suspect, 2 dark.", "shard", labels...),
		failures: reg.CounterVec("fafnir_router_shard_failures_total",
			"Structured sub-lookup failures per shard.", "shard", labels...),
		dark: reg.CounterVec("fafnir_router_shard_dark_total",
			"Breaker trips to the dark state per shard.", "shard", labels...),
		probes: reg.CounterVec("fafnir_router_probes_total",
			"Canary probe lookups sent to dark shards.", "shard", labels...),
		reopens: reg.CounterVec("fafnir_router_reopens_total",
			"Successful probes reopening a dark shard.", "shard", labels...),
		retries: reg.CounterVec("fafnir_router_retries_total",
			"Failover sub-lookups dispatched to replica shards, by failed primary.", "shard", labels...),
		failovers: reg.CounterVec("fafnir_router_failovers_total",
			"Failover sub-lookups answered by replica shards, by failed primary.", "shard", labels...),
		abandoned: reg.CounterVec("fafnir_router_retries_abandoned_total",
			"Failover retries abandoned at the retry deadline, by failed primary.", "shard", labels...),
		lost: reg.CounterVec("fafnir_router_lost_subbatches_total",
			"Sub-batches dropped with shard and replica both unreachable.", "shard", labels...),
		degradedBatches: reg.Counter("fafnir_router_degraded_batches_total",
			"Batches returned with a populated degraded report."),
		lostQueries: reg.Counter("fafnir_router_lost_queries_total",
			"Queries whose pooled output lost at least one shard's contribution."),
		lookups: reg.CounterVec("fafnir_router_shard_lookups_total",
			"Sub-lookups served per shard (primary and failover).", "shard", labels...),
	}
	if f.rtree != nil {
		m.rnetCombines = reg.Counter("fafnir_rnet_combines_total",
			"Vector combines performed at rnet switch nodes.")
		m.rnetFires = reg.Counter("fafnir_rnet_switch_fires_total",
			"Rnet switch firings (one per live switch per batch).")
		m.rnetMissing = reg.Counter("fafnir_rnet_missing_children_total",
			"Rnet switch children absent at fire time (dark subtrees).")
		m.rnetLinks = reg.Counter("fafnir_rnet_link_transfers_total",
			"Child-to-parent partial-pool hops through the rnet tree.")
		m.rnetCritical = reg.Gauge("fafnir_rnet_critical_path_cycles",
			"Combine critical path of the most recent batch, in fleet cycles.")
	}
	f.m = m
}

// The count helpers keep the Lookup path free of nil checks at every site;
// an unregistered fleet (no serving layer, e.g. unit benchmarks) skips all
// metric work.

func (f *Fleet) setShardState(s int, st State) {
	if f.m != nil {
		f.m.shardState.At(s).Set(int64(st))
	}
}

func (f *Fleet) countFailure(s int) {
	if f.m != nil {
		f.m.failures.At(s).Add(1)
	}
}

func (f *Fleet) countDark(s int) {
	if f.m != nil {
		f.m.dark.At(s).Add(1)
	}
}

func (f *Fleet) countProbe(s int) {
	if f.m != nil {
		f.m.probes.At(s).Add(1)
	}
}

func (f *Fleet) countReopen(s int) {
	if f.m != nil {
		f.m.reopens.At(s).Add(1)
	}
}

func (f *Fleet) countRetry(s int) {
	if f.m != nil {
		f.m.retries.At(s).Add(1)
	}
}

func (f *Fleet) countFailover(s int) {
	if f.m != nil {
		f.m.failovers.At(s).Add(1)
	}
}

func (f *Fleet) countAbandoned(s int) {
	if f.m != nil {
		f.m.abandoned.At(s).Add(1)
	}
}

// countLostShard records a dropped sub-batch for shard s.
func (f *Fleet) countLostShard(s int) {
	if f.m != nil {
		f.m.lost.At(s).Add(1)
	}
}

func (f *Fleet) countDegraded(lostQueries int) {
	if f.m != nil {
		f.m.degradedBatches.Add(1)
		f.m.lostQueries.Add(uint64(lostQueries))
	}
}

// countShardLookup records one served sub-lookup on shard s.
func (f *Fleet) countShardLookup(s int) {
	if f.m != nil {
		f.m.lookups.At(s).Add(1)
	}
}

// countRnet folds one reduction's switch activity into the rnet families.
func (f *Fleet) countRnet(r *rnet.Result) {
	if f.m == nil || f.m.rnetCombines == nil {
		return
	}
	f.m.rnetCombines.Add(uint64(r.Combines))
	f.m.rnetFires.Add(uint64(r.Fires))
	f.m.rnetMissing.Add(uint64(r.MissingChildren))
	f.m.rnetLinks.Add(uint64(r.LinkTransfers))
	f.m.rnetCritical.Set(int64(r.CriticalPath))
}
