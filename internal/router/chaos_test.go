package router

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// This file is the deterministic chaos suite of ISSUE 6: seeded fault storms
// replayed at Parallelism 1, 2, and NumCPU must produce bit-identical
// outputs, cycle counts, degraded reports, and failover decisions, and
// surviving-shard results must stay conformant to the oracle restricted to
// live shards.

// TestWholeShardLossFailsOver kills one shard and checks its replica answers
// with zero data loss: outputs stay bit-identical to the oracle, and the
// degraded report records the failover rather than lost queries.
func TestWholeShardLossFailsOver(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 1}}
	})
	b := testBatch(t, f, 16, 7, tensor.OpSum)

	// First batch runs at fleet cycle 0, before the loss.
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded.Empty() {
		t.Fatalf("pre-loss batch degraded: %+v", res.Degraded)
	}

	// Every later batch hits the dead shard and must fail over, bit-exact.
	want, err := oracle.Lookup(f.Store(), b)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		res, err = f.Lookup(b)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if d := oracle.Diff(res.Outputs, want); d != "" {
			t.Fatalf("round %d: failover outputs diverged: %s", round, d)
		}
		if res.Degraded.Empty() {
			t.Fatalf("round %d: no degraded report despite shard loss", round)
		}
		if len(res.Degraded.LostQueries) != 0 {
			t.Fatalf("round %d: lost queries %v despite live replica", round, res.Degraded.LostQueries)
		}
		var found bool
		for _, sd := range res.Degraded.Shards {
			if sd.Shard == 1 {
				found = true
				if !sd.FailedOver {
					t.Fatalf("round %d: shard 1 entry not marked failed over: %+v", round, sd)
				}
			}
		}
		if !found {
			t.Fatalf("round %d: no shard 1 entry in %+v", round, res.Degraded.Shards)
		}
	}
	// Two failures trip the breaker; the shard must be dark by now.
	if f.Health(1) != Dark {
		t.Fatalf("shard 1 health = %v after repeated loss", f.Health(1))
	}
}

// TestPairLossDegradesGracefully kills a shard and its replica holder: the
// batch still succeeds, queries fully on live shards stay bit-exact, and
// queries touching the lost pair match the oracle restricted to live-owned
// indices.
func TestPairLossDegradesGracefully(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		// N=4: replicaHolder(1) = 3. Killing both orphans shard 1's rows.
		c.Fleet.ShardFailures = []fault.ShardFailure{
			{Shard: 1, At: 0},
			{Shard: 3, At: 0},
		}
	})
	b := testBatch(t, f, 24, 11, tensor.OpSum)
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatalf("pair loss returned hard error: %v", err)
	}
	if res.Degraded.Empty() || len(res.Degraded.LostQueries) == 0 {
		t.Fatalf("pair loss produced no loss report: %+v", res.Degraded)
	}

	// Oracle restricted to live shards: drop every index owned by a dead
	// shard, then compare bit-exact. Fully-live queries are covered too —
	// their restriction is the identity.
	live := func(idx header.Index) bool {
		s := f.ownerOf(idx)
		return s != 1 && s != 3
	}
	restricted := embedding.Batch{Op: b.Op}
	for _, q := range b.Queries {
		var keep []header.Index
		for _, idx := range q.Indices {
			if live(idx) {
				keep = append(keep, idx)
			}
		}
		restricted.Queries = append(restricted.Queries, embedding.Query{Indices: header.NewIndexSet(keep...)})
	}
	want, err := oracle.Lookup(f.Store(), restricted)
	if err != nil {
		t.Fatal(err)
	}
	if d := oracle.Diff(res.Outputs, want); d != "" {
		t.Fatalf("degraded outputs diverge from live-restricted oracle: %s", d)
	}

	// The loss must be itemized: every query that touched shard 1 or 3
	// appears in LostQueries, and no fully-live query does.
	lost := make(map[int]bool, len(res.Degraded.LostQueries))
	for _, qi := range res.Degraded.LostQueries {
		lost[qi] = true
	}
	for qi, q := range b.Queries {
		touches := false
		for _, idx := range q.Indices {
			if !live(idx) {
				touches = true
				break
			}
		}
		if touches != lost[qi] {
			t.Fatalf("query %d: touches dead pair = %v but lost = %v", qi, touches, lost[qi])
		}
	}
}

// TestFlapRecovery takes a shard down transiently and checks the full
// breaker arc: healthy → suspect → dark while down, probe lookups while
// dark, and a successful probe reopening the shard once the flap ends —
// after which lookups are clean again.
func TestFlapRecovery(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.ShardFlaps = []fault.ShardFlap{{Shard: 2, DownAt: 1, UpAt: 400_000}}
		c.ProbeBackoff = 1_000
		c.MaxProbeBackoff = 32_000
	})
	b := testBatch(t, f, 8, 13, tensor.OpSum)

	if _, err := f.Lookup(b); err != nil { // cycle 0: up
		t.Fatal(err)
	}
	sawSuspect, sawDark := false, false
	var recovered *sim.Cycle
	for round := 0; round < 200; round++ {
		res, err := f.Lookup(b)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		switch f.Health(2) {
		case Suspect:
			sawSuspect = true
		case Dark:
			sawDark = true
		case Healthy:
			if sawDark {
				c := f.Clock()
				recovered = &c
			}
		}
		if recovered != nil {
			if !res.Degraded.Empty() {
				t.Fatalf("round %d: degraded after recovery: %+v", round, res.Degraded)
			}
			break
		}
	}
	if !sawSuspect || !sawDark || recovered == nil {
		t.Fatalf("breaker arc incomplete: suspect=%v dark=%v recovered=%v (clock %d)",
			sawSuspect, sawDark, recovered != nil, f.Clock())
	}
	if *recovered < 400_000 {
		t.Fatalf("shard reopened at cycle %d, inside the flap window", *recovered)
	}
}

// TestRetryDeadlineAbandonsFailover checks deadline-aware retries: with a
// deadline the shard phase always exceeds, failover is skipped and the data
// degrades even though the replica is alive.
func TestRetryDeadlineAbandonsFailover(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 0, At: 0}}
		c.RetryDeadline = 1
	})
	b := testBatch(t, f, 16, 17, tensor.OpSum)
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded.LostQueries) == 0 {
		t.Fatal("deadline-bound batch lost nothing; failover should have been abandoned")
	}
	for _, sd := range res.Degraded.Shards {
		if sd.Shard == 0 && sd.FailedOver {
			t.Fatalf("failover ran despite exhausted deadline: %+v", sd)
		}
	}
}

// chaosRun replays a fixed multi-batch workload under a seeded fleet storm
// and returns everything determinism must preserve: outputs, cycle counts,
// degraded reports, failover decisions, and final health states.
type chaosRun struct {
	Outputs  [][]tensor.Vector
	Cycles   []sim.Cycle
	Degraded []*struct {
		LostQueries []int
		Shards      []string
	}
	Clock  sim.Cycle
	Health []State
}

func runChaos(t *testing.T, parallelism int, muts ...func(*Config)) chaosRun {
	t.Helper()
	plan, err := fault.ParseFleet("shard=1@40000;flap=2@1-300000;storm=6@20000;ecc=0.001;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	f := testFleet(t, func(c *Config) {
		c.Parallelism = parallelism
		c.Fleet = plan
		c.ProbeBackoff = 2_000
		for _, mut := range muts {
			mut(c)
		}
	})
	var out chaosRun
	for round := 0; round < 12; round++ {
		b := testBatch(t, f, 16, int64(round), tensor.OpSum)
		res, err := f.Lookup(b)
		if err != nil {
			t.Fatalf("parallelism %d round %d: %v", parallelism, round, err)
		}
		out.Outputs = append(out.Outputs, res.Outputs)
		out.Cycles = append(out.Cycles, res.TotalCycles)
		var d *struct {
			LostQueries []int
			Shards      []string
		}
		if !res.Degraded.Empty() {
			d = &struct {
				LostQueries []int
				Shards      []string
			}{LostQueries: res.Degraded.LostQueries}
			for _, sd := range res.Degraded.Shards {
				d.Shards = append(d.Shards, fmt.Sprintf("%d:%s:failover=%v:lost=%d/%d:%s",
					sd.Shard, sd.State, sd.FailedOver, sd.LostQueries, sd.LostIndices, sd.Err))
			}
		}
		out.Degraded = append(out.Degraded, d)
	}
	out.Clock = f.Clock()
	for s := 0; s < f.Shards(); s++ {
		out.Health = append(out.Health, f.Health(s))
	}
	return out
}

// TestChaosDeterminism is the acceptance gate: the same seeded storm at
// Parallelism 1, 2, and NumCPU yields bit-identical runs.
func TestChaosDeterminism(t *testing.T) {
	want := runChaos(t, 1)

	// The serial run must have exercised the interesting machinery at all:
	// at least one degraded batch and one dark shard along the way.
	anyDegraded := false
	for _, d := range want.Degraded {
		if d != nil {
			anyDegraded = true
		}
	}
	if !anyDegraded {
		t.Fatal("chaos plan produced no degraded batches; storm too weak to test anything")
	}

	levels := []int{2, runtime.NumCPU()}
	if runtime.NumCPU() == 2 {
		levels = []int{2, 3}
	}
	for _, par := range levels {
		got := runChaos(t, par)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d diverged from serial run:\ngot  %+v\nwant %+v", par, got, want)
		}
	}
}

// TestChaosReplayIdentical replays the identical storm on two fresh fleets
// at the same parallelism — the pure replay-determinism half of the gate.
func TestChaosReplayIdentical(t *testing.T) {
	a := runChaos(t, 0)
	b := runChaos(t, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two replays diverged:\nfirst  %+v\nsecond %+v", a, b)
	}
}

// TestShardDownErrorIsStructured pins ErrShardDown into the errors.Is
// taxonomy the router's envelope keys on.
func TestShardDownErrorIsStructured(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 0, At: 0}}
	})
	_, err := f.lookupShard(0, f.shards[0].primary, embedding.Batch{
		Op:      tensor.OpSum,
		Queries: []embedding.Query{{Indices: header.NewIndexSet(0)}},
	}, 0)
	if !errors.Is(err, fault.ErrShardDown) {
		t.Fatalf("err = %v, want ErrShardDown", err)
	}
	if !structuredFault(err) {
		t.Fatal("ErrShardDown not classified as structured")
	}
}

// TestCorrelatedRankStormStaysInShard checks a storm compiles to in-shard
// rank failures that the shards absorb via replica remaps (no fleet-level
// failover needed when single ranks die under rank-level replication).
func TestCorrelatedRankStormStaysInShard(t *testing.T) {
	f := testFleet(t, func(c *Config) {
		c.Fleet.Seed = 21
		c.Fleet.RankStorms = []fault.RankStorm{{At: 0, Ranks: 4}}
	})
	b := testBatch(t, f, 32, 23, tensor.OpSum)
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Lookup(f.Store(), b)
	if err != nil {
		t.Fatal(err)
	}
	if d := oracle.Diff(res.Outputs, want); d != "" {
		t.Fatalf("storm run diverged from oracle: %s", d)
	}
	if res.Degraded.Empty() {
		t.Fatal("storm fired but nothing degraded (expected in-shard remaps)")
	}
	if len(res.Degraded.LostQueries) != 0 {
		t.Fatalf("rank-level storm lost whole queries: %v", res.Degraded.LostQueries)
	}
}
