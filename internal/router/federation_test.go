package router

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// testFederation builds a small federation over the testFleet template.
func testFederation(t *testing.T, mut func(*FederationConfig)) *Federation {
	t.Helper()
	cfg := FederationConfig{
		Fleets: 2,
		Fleet: Config{
			Shards:        4,
			RanksPerShard: 8,
			Rows:          4096,
			Seed:          1,
			Parallelism:   1,
			ProbeBackoff:  500,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	fd, err := NewFederation(cfg)
	if err != nil {
		t.Fatalf("NewFederation: %v", err)
	}
	return fd
}

func TestFederationConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FederationConfig)
		want string
	}{
		{"negative fleets", func(c *FederationConfig) { c.Fleets = -1 }, "Fleets"},
		{"preset stride", func(c *FederationConfig) { c.Fleet.OwnerStride = 2 }, "OwnerStride"},
		{"preset phase", func(c *FederationConfig) { c.Fleet.OwnerPhase = 1 }, "OwnerStride"},
		{"bad member", func(c *FederationConfig) { c.Fleet.Shards = -1 }, "Shards"},
		{"bad rnet", func(c *FederationConfig) { c.Rnet.Radix = 1 }, "Radix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cfg FederationConfig
			tc.mut(&cfg)
			_, err := NewFederation(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewFederation = %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

// TestFederationMatchesOracle drives every pooling op through 2- and 3-fleet
// federations and checks the scattered, twice-reduced outputs land bit-exact
// on the reference oracle — the recursive FAFNIR combine argument.
func TestFederationMatchesOracle(t *testing.T) {
	ops := []tensor.ReduceOp{tensor.OpSum, tensor.OpMean, tensor.OpMax, tensor.OpMin}
	for _, fleets := range []int{2, 3} {
		for _, op := range ops {
			t.Run(fmt.Sprintf("fleets=%d/op=%v", fleets, op), func(t *testing.T) {
				fd := testFederation(t, func(c *FederationConfig) { c.Fleets = fleets })
				for round := 0; round < 2; round++ {
					b, err := fd.GenerateBatch(16, int64(round+1))
					if err != nil {
						t.Fatal(err)
					}
					b.Op = op
					res, err := fd.Lookup(b)
					if err != nil {
						t.Fatal(err)
					}
					want, err := oracle.Lookup(fd.Fleet(0).Store(), b)
					if err != nil {
						t.Fatal(err)
					}
					if d := oracle.Diff(res.Outputs, want); d != "" {
						t.Fatalf("round %d: federation diverges from oracle: %s", round, d)
					}
					if !res.Degraded.Empty() {
						t.Fatalf("round %d: healthy federation degraded: %+v", round, res.Degraded)
					}
				}
			})
		}
	}
}

// TestFederationMatchesSingleFleet checks a federation is observationally a
// bigger fleet: the same batch through a 2x4 federation and a standalone
// fleet over the identical store yields bit-identical outputs.
func TestFederationMatchesSingleFleet(t *testing.T) {
	fd := testFederation(t, nil)
	single := testFleet(t, nil)
	for round := 0; round < 2; round++ {
		b := testBatch(t, single, 16, int64(round+3), tensor.OpMean)
		want, err := single.Lookup(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fd.Lookup(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("round %d: federation outputs diverge from the standalone fleet", round)
		}
	}
}

// TestFederationCapabilities pins the front-end surface the serving layer
// keys on: global shard count, owner addressing, row access, clock advance.
func TestFederationCapabilities(t *testing.T) {
	fd := testFederation(t, nil)
	if fd.Fleets() != 2 {
		t.Fatalf("Fleets = %d, want 2", fd.Fleets())
	}
	if fd.Shards() != 8 {
		t.Fatalf("Shards = %d, want 2x4 = 8", fd.Shards())
	}
	if fd.TotalRows() != 4096 {
		t.Fatalf("TotalRows = %d, want 4096", fd.TotalRows())
	}
	if fd.Dim() != fd.Fleet(0).Dim() {
		t.Fatalf("Dim = %d, want member dim %d", fd.Dim(), fd.Fleet(0).Dim())
	}
	for idx := header.Index(0); idx < 64; idx++ {
		fm := int(idx) % 2
		owner := fd.OwnerOf(idx)
		if owner/4 != fm {
			t.Fatalf("OwnerOf(%d) = %d, not inside fleet %d", idx, owner, fm)
		}
		// The member's stride addressing must agree with the global ID.
		if got := fd.Fleet(fm).OwnerOf(idx); fm*4+got != owner {
			t.Fatalf("OwnerOf(%d) = %d, member says %d", idx, owner, fm*4+got)
		}
	}
	// Every member holds the full store: Row answers for any index and
	// matches each member bit-for-bit.
	v, err := fd.Row(7)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fd.Fleet(1).Row(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, w) {
		t.Fatal("member stores diverge: federation addressing is broken")
	}
	b, err := fd.GenerateBatch(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b.Op = tensor.OpSum
	if fd.Clock() != 0 {
		t.Fatalf("fresh clock = %d", fd.Clock())
	}
	if _, err := fd.Lookup(b); err != nil {
		t.Fatal(err)
	}
	if fd.Clock() == 0 {
		t.Fatal("clock did not advance")
	}
	if fd.MemoryCounter("dram.reads") == 0 {
		t.Fatal("dram.reads stayed zero across the federation")
	}
}

// TestFederationLookupErrors pins the programming-error surface.
func TestFederationLookupErrors(t *testing.T) {
	fd := testFederation(t, nil)
	if _, err := fd.Lookup(embedding.Batch{Op: tensor.OpSum}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := fd.Lookup(embedding.Batch{Op: 99, Queries: []embedding.Query{{}}}); err == nil {
		t.Fatal("invalid op accepted")
	}
}

// TestFederationDegradedMember kills a shard pair inside every member (the
// template fault plan is shared) and checks losses merge onto global shard
// IDs with outputs exact against the live-restricted oracle — including the
// min/max zero-vector exclusion for queries a member lost entirely.
func TestFederationDegradedMember(t *testing.T) {
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMax} {
		t.Run(op.String(), func(t *testing.T) {
			fd := testFederation(t, func(c *FederationConfig) {
				// N=4: replicaHolder(1) = 3; the pair orphans shard 1's rows
				// in each member. Globally that is shards {1, 3, 5, 7}.
				c.Fleet.Fleet.ShardFailures = []fault.ShardFailure{
					{Shard: 1, At: 0},
					{Shard: 3, At: 0},
				}
			})
			b, err := fd.GenerateBatch(24, 11)
			if err != nil {
				t.Fatal(err)
			}
			b.Op = op
			res, err := fd.Lookup(b)
			if err != nil {
				t.Fatalf("degraded federation returned hard error: %v", err)
			}
			if res.Degraded.Empty() || len(res.Degraded.LostQueries) == 0 {
				t.Fatalf("pair loss in every member produced no loss report: %+v", res.Degraded)
			}
			for _, sd := range res.Degraded.Shards {
				if sd.Shard < 0 || sd.Shard >= fd.Shards() {
					t.Fatalf("degraded entry carries non-global shard ID %d", sd.Shard)
				}
				if sd.Shard != 1 && sd.Shard != 3 && sd.Shard != 5 && sd.Shard != 7 {
					t.Fatalf("unexpected degraded shard %d", sd.Shard)
				}
			}

			live := func(idx header.Index) bool {
				s := fd.OwnerOf(idx)
				return s != 1 && s != 3 && s != 5 && s != 7
			}
			restricted := embedding.Batch{Op: b.Op}
			for _, q := range b.Queries {
				var keep []header.Index
				for _, idx := range q.Indices {
					if live(idx) {
						keep = append(keep, idx)
					}
				}
				restricted.Queries = append(restricted.Queries, embedding.Query{Indices: header.NewIndexSet(keep...)})
			}
			want, err := oracle.Lookup(fd.Fleet(0).Store(), restricted)
			if err != nil {
				t.Fatal(err)
			}
			if d := oracle.Diff(res.Outputs, want); d != "" {
				t.Fatalf("degraded federation diverges from live-restricted oracle: %s", d)
			}
		})
	}
}

// TestFederationDeterminism replays a seeded member storm at Parallelism 1,
// 2, and NumCPU: outputs, cycles, and degraded reports must be
// bit-identical — concurrent member dispatch must not leak into the result.
func TestFederationDeterminism(t *testing.T) {
	type run struct {
		Outputs  [][]tensor.Vector
		Cycles   []uint64
		Degraded []string
	}
	replay := func(par int) run {
		plan, err := fault.ParseFleet("shard=1@40000;storm=6@20000;ecc=0.001;seed=7")
		if err != nil {
			t.Fatal(err)
		}
		fd := testFederation(t, func(c *FederationConfig) {
			c.Fleet.Parallelism = par
			c.Fleet.Fleet = plan
			c.Fleet.ProbeBackoff = 2_000
		})
		var out run
		for round := 0; round < 8; round++ {
			b, err := fd.GenerateBatch(16, int64(round))
			if err != nil {
				t.Fatal(err)
			}
			b.Op = tensor.OpSum
			res, err := fd.Lookup(b)
			if err != nil {
				t.Fatalf("parallelism %d round %d: %v", par, round, err)
			}
			out.Outputs = append(out.Outputs, res.Outputs)
			out.Cycles = append(out.Cycles, uint64(res.TotalCycles))
			out.Degraded = append(out.Degraded, fmt.Sprintf("%+v", res.Degraded))
		}
		return out
	}
	want := replay(1)
	for _, par := range []int{2, runtime.NumCPU()} {
		if got := replay(par); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d diverged:\ngot  %+v\nwant %+v", par, got, want)
		}
	}
}

// TestFederationVerify checks the CI verify mode: every healthy batch is
// re-checked against the oracle and counted, and the run stays clean.
func TestFederationVerify(t *testing.T) {
	fd := testFederation(t, func(c *FederationConfig) { c.Verify = true })
	reg := telemetry.NewRegistry()
	fd.RegisterMetrics(reg)
	for round := 0; round < 2; round++ {
		b, err := fd.GenerateBatch(8, int64(round))
		if err != nil {
			t.Fatal(err)
		}
		b.Op = tensor.OpMean
		if _, err := fd.Lookup(b); err != nil {
			t.Fatalf("verify round %d: %v", round, err)
		}
	}
	var sb strings.Builder
	reg.Render(&sb)
	if !strings.Contains(sb.String(), "fafnir_federation_verified_total 2") {
		t.Fatalf("verified counter wrong:\n%s", sb.String())
	}
}

// TestFederationMetricsRender checks the federation families land on a
// registry with per-fleet labels and the cross-fleet rnet families count.
func TestFederationMetricsRender(t *testing.T) {
	fd := testFederation(t, nil)
	reg := telemetry.NewRegistry()
	fd.RegisterMetrics(reg)
	b, err := fd.GenerateBatch(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	b.Op = tensor.OpSum
	if _, err := fd.Lookup(b); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`fafnir_federation_fleet_lookups_total{fleet="0"} 1`,
		`fafnir_federation_fleet_lookups_total{fleet="1"} 1`,
		"fafnir_federation_batches_total 1",
		"fafnir_rnet_switch_fires_total 1",
		"fafnir_rnet_combines_total",
		"fafnir_rnet_critical_path_cycles",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("federation metrics missing %q:\n%s", want, out)
		}
	}
}

// TestFederationTrace checks member lookup windows land on per-fleet
// PIDRouter lanes and cross-fleet switch fires on the PIDRnet timeline.
func TestFederationTrace(t *testing.T) {
	fd := testFederation(t, nil)
	tr := telemetry.NewTrace()
	fd.AttachTracer(tr)
	b, err := fd.GenerateBatch(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Op = tensor.OpSum
	if _, err := fd.Lookup(b); err != nil {
		t.Fatal(err)
	}
	var fleets, switches int
	for _, ev := range tr.Events() {
		switch {
		case ev.PID == telemetry.PIDRouter && ev.Name == "fleet.lookup":
			fleets++
		case ev.PID == telemetry.PIDRnet && ev.Name == "fleet-switch":
			switches++
		}
	}
	if fleets != 2 {
		t.Fatalf("fleet.lookup spans = %d, want 2", fleets)
	}
	if switches != 1 {
		t.Fatalf("fleet-switch spans = %d, want 1 (2-leaf tree has one root)", switches)
	}
	fd.AttachTracer(nil)
	n := tr.Len()
	if _, err := fd.Lookup(b); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatal("detached tracer still received events")
	}
}
