package router

import (
	"fafnir/internal/dram"
	"fafnir/internal/header"
)

// Index ownership: global index i belongs to shard i mod N and occupies
// primary slot i div N on that shard, striped across the shard's ranks at
// vector granularity — the same modulo sharding internal/scale uses, so a
// fleet's read spread matches the single-tree paper layout per shard.
//
// Each shard's vector address space has three regions, all timed by the same
// DRAM model (values always come from the content-seeded store, so regions
// only steer addresses and ranks):
//
//	[0, P)           primary rows        slot = i/N
//	[B, B+P')        in-shard replicas   rank-rotated copies of the shard's
//	                                     own rows (dark-rank remap inside a
//	                                     surviving shard)
//	[2B, 2B+P')      peer replicas       copies of the replica peer's rows,
//	                                     read only during shard failover
//
// where B is the primary row count rounded up to a full rank rotation, so
// slot residues line up with ranks in every region (cf. memmap.Replica).

// primaryView places shard-owned rows and implements the engine's
// ReplicatedPlacement so single dark ranks degrade inside the shard before
// any fleet-level failover is needed.
type primaryView struct {
	shards int    // fleet width N
	stride int    // federation owner stride M (1 standalone)
	ranks  int    // this shard's rank count
	bytes  int    // vector size
	slots  uint64 // primary rows on this shard
}

// slot maps a global index onto the shard-local primary slot. The owning
// shard of idx is (idx/stride) mod N and its k-th owned row is
// phase + stride*(s + N*k), so the local slot is idx / (stride*N) — the
// stride-1 case reduces to the classic idx / N.
func (v primaryView) slot(idx header.Index) uint64 {
	return uint64(idx) / (uint64(v.stride) * uint64(v.shards))
}

func (v primaryView) Rank(idx header.Index) int {
	return int(v.slot(idx) % uint64(v.ranks))
}

func (v primaryView) Addr(idx header.Index) dram.Addr {
	return dram.Addr(v.slot(idx) * uint64(v.bytes))
}

func (v primaryView) VectorBytes() int { return v.bytes }

// regionSlots is the rank-aligned size of one replica region.
func (v primaryView) regionSlots() uint64 {
	r := uint64(v.ranks)
	return (v.slots + r - 1) / r * r
}

// Replica places the in-shard copy: the diagonally opposite rank, in the
// reserved region past the primary rows (memmap.Replica lifted to shard-local
// coordinates).
func (v primaryView) Replica(idx header.Index) (int, dram.Addr, error) {
	replica := (v.Rank(idx) + v.ranks/2) % v.ranks
	group := v.slot(idx) / uint64(v.ranks) * uint64(v.ranks)
	slot := v.regionSlots() + group + uint64(replica)
	return replica, dram.Addr(slot * uint64(v.bytes)), nil
}

// replicaView places a peer shard's rows as stored on the hosting shard, for
// failover reads. It deliberately does not implement ReplicatedPlacement: a
// dark rank hit during failover surfaces as ErrRankFailed and the router
// degrades that portion of the batch instead of chasing a third copy.
type replicaView struct {
	host primaryView // geometry of the hosting shard
	peer primaryView // slot math of the peer whose rows are replicated
}

func (v replicaView) slot(idx header.Index) uint64 {
	return 2*v.host.regionSlots() + v.peer.slot(idx)
}

func (v replicaView) Rank(idx header.Index) int {
	return int(v.slot(idx) % uint64(v.host.ranks))
}

func (v replicaView) Addr(idx header.Index) dram.Addr {
	return dram.Addr(v.slot(idx) * uint64(v.host.bytes))
}

func (v replicaView) VectorBytes() int { return v.host.bytes }
