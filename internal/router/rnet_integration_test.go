package router

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// This file is the fleet-level acceptance suite for the in-network combine
// path (ISSUE 9): with Rnet.Radix >= 2 the per-shard partial pools reduce
// through the rnet switch tree instead of the serial host fold, and the
// outputs must stay bit-identical to the legacy path and the reference
// oracle — healthy, degraded, and mid-combine-loss alike — at every
// Parallelism.

// rnetFleet builds the canonical rnet test fleet: 4 shards behind a radix-2
// switch tree (3 interior nodes, 2 levels).
func rnetFleet(t *testing.T, mut func(*Config)) *Fleet {
	t.Helper()
	return testFleet(t, func(c *Config) {
		c.Rnet.Radix = 2
		if mut != nil {
			mut(c)
		}
	})
}

// TestRnetLookupMatchesLegacyAndOracle drives the same batches through a
// legacy host-fold fleet and rnet fleets of several radices, for every
// pooling op: outputs must be bit-identical across all paths and exact
// against the oracle (the integer-valued store makes tree re-association
// exact; docs/ARCHITECTURE.md §15).
func TestRnetLookupMatchesLegacyAndOracle(t *testing.T) {
	ops := []tensor.ReduceOp{tensor.OpSum, tensor.OpMean, tensor.OpMax, tensor.OpMin}
	for _, op := range ops {
		for _, radix := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("op=%v/radix=%d", op, radix), func(t *testing.T) {
				legacy := testFleet(t, nil)
				tree := testFleet(t, func(c *Config) { c.Rnet.Radix = radix })
				for round := 0; round < 3; round++ {
					b := testBatch(t, legacy, 16, int64(round+1), op)
					want, err := legacy.Lookup(b)
					if err != nil {
						t.Fatal(err)
					}
					got, err := tree.Lookup(b)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Outputs, want.Outputs) {
						t.Fatalf("round %d: rnet outputs diverge from legacy fold", round)
					}
					ref, err := oracle.Lookup(tree.Store(), b)
					if err != nil {
						t.Fatal(err)
					}
					if d := oracle.Diff(got.Outputs, ref); d != "" {
						t.Fatalf("round %d: rnet outputs diverge from oracle: %s", round, d)
					}
				}
			})
		}
	}
}

// TestRnetChaosDeterminism replays the chaos_test.go seeded storm on the
// rnet path: Parallelism 1, 2, and NumCPU must stay bit-identical (outputs,
// cycles, degraded reports, health). No cross-path comparison here: the two
// combine paths charge different cycles, so the fleet clock — which decides
// when storm faults land — diverges across rounds; per-batch bit-identity
// against the legacy fold is pinned by the other tests in this file.
func TestRnetChaosDeterminism(t *testing.T) {
	radix2 := func(c *Config) { c.Rnet.Radix = 2 }
	want := runChaos(t, 1, radix2)

	anyDegraded := false
	for _, d := range want.Degraded {
		if d != nil {
			anyDegraded = true
		}
	}
	if !anyDegraded {
		t.Fatal("chaos plan produced no degraded batches on the rnet path")
	}

	levels := []int{2, runtime.NumCPU()}
	if runtime.NumCPU() == 2 {
		levels = []int{2, 3}
	}
	for _, par := range levels {
		got := runChaos(t, par, radix2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d diverged from serial rnet run:\ngot  %+v\nwant %+v", par, got, want)
		}
	}
}

// TestRnetMidCombineMissingChild is the ISSUE 9 chaos satellite: a shard and
// its replica holder die before the batch, so by combine time two interior
// switches each fire with a missing child. The degraded output must be
// bit-identical to the live-restricted oracle at Parallelism 1, 2, and
// NumCPU, the missing children must be itemized in the rnet metrics, and the
// sibling subtrees must not stall — the degraded batch completes no later
// than a healthy one.
func TestRnetMidCombineMissingChild(t *testing.T) {
	pairLoss := func(c *Config) {
		// N=4: replicaHolder(1) = 3. Killing both orphans shard 1's rows.
		c.Fleet.ShardFailures = []fault.ShardFailure{
			{Shard: 1, At: 0},
			{Shard: 3, At: 0},
		}
	}

	type run struct {
		Outputs []tensor.Vector
		Cycles  uint64
		Lost    []int
	}
	levels := []int{1, 2, runtime.NumCPU()}
	var want run
	for i, par := range levels {
		f := rnetFleet(t, func(c *Config) {
			pairLoss(c)
			c.Parallelism = par
		})
		reg := telemetry.NewRegistry()
		f.RegisterMetrics(reg)
		b := testBatch(t, f, 24, 11, tensor.OpSum)
		res, err := f.Lookup(b)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Degraded.Empty() || len(res.Degraded.LostQueries) == 0 {
			t.Fatalf("parallelism %d: pair loss produced no loss report", par)
		}
		got := run{Outputs: res.Outputs, Cycles: uint64(res.TotalCycles), Lost: res.Degraded.LostQueries}
		if i == 0 {
			want = got

			// Serial run only: pin the switch-level accounting. In the
			// 4-leaf radix-2 tree, switches {0,1} and {2,3} each lost one
			// child and the root lost none: 3 fires, 2 missing children.
			var sb strings.Builder
			reg.Render(&sb)
			out := sb.String()
			for _, line := range []string{
				"fafnir_rnet_switch_fires_total 3",
				"fafnir_rnet_missing_children_total 2",
			} {
				if !strings.Contains(out, line) {
					t.Fatalf("metrics missing %q:\n%s", line, out)
				}
			}

			// The degraded outputs match the oracle restricted to live-owned
			// indices — the lost leaves degraded the data, not the combine.
			live := func(idx header.Index) bool {
				s := f.ownerOf(idx)
				return s != 1 && s != 3
			}
			restricted := embedding.Batch{Op: b.Op}
			for _, q := range b.Queries {
				var keep []header.Index
				for _, idx := range q.Indices {
					if live(idx) {
						keep = append(keep, idx)
					}
				}
				restricted.Queries = append(restricted.Queries, embedding.Query{Indices: header.NewIndexSet(keep...)})
			}
			ref, err := oracle.Lookup(f.Store(), restricted)
			if err != nil {
				t.Fatal(err)
			}
			if d := oracle.Diff(res.Outputs, ref); d != "" {
				t.Fatalf("degraded rnet outputs diverge from live-restricted oracle: %s", d)
			}

			// No sibling stall: a healthy fleet running the identical batch
			// must not finish before the degraded one would if the missing
			// children blocked their switches. The degraded batch carries
			// strictly less data, so it completes no later.
			healthy := rnetFleet(t, nil)
			href, err := healthy.Lookup(b)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalCycles > href.TotalCycles {
				t.Fatalf("degraded batch took %d cycles, healthy took %d: missing child stalled a switch",
					res.TotalCycles, href.TotalCycles)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d diverged from serial degraded run", par)
		}
	}
}

// TestRnetSwitchStallChargesCycles pins the swstall fault clause: stalling
// the root switch (plan switch 2 in the 4-leaf radix-2 tree) delays the
// batch by exactly the stall, and outputs stay untouched.
func TestRnetSwitchStallChargesCycles(t *testing.T) {
	base := rnetFleet(t, nil)
	stalled := rnetFleet(t, func(c *Config) {
		plan, err := fault.ParseFleet("swstall=2+1000")
		if err != nil {
			t.Fatal(err)
		}
		c.Fleet = plan
	})
	b := testBatch(t, base, 16, 9, tensor.OpSum)
	want, err := base.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stalled.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Fatal("switch stall changed the outputs")
	}
	if got.TotalCycles != want.TotalCycles+1000 {
		t.Fatalf("stalled batch = %d cycles, want %d + 1000", got.TotalCycles, want.TotalCycles)
	}
}

// TestRnetMetricsRender checks the rnet families register and count on the
// in-network path — and stay absent on a legacy fleet, so their presence on
// /metrics identifies the combine path.
func TestRnetMetricsRender(t *testing.T) {
	f := rnetFleet(t, nil)
	reg := telemetry.NewRegistry()
	f.RegisterMetrics(reg)
	b := testBatch(t, f, 16, 3, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"fafnir_rnet_switch_fires_total 3",
		"fafnir_rnet_missing_children_total 0",
		"fafnir_rnet_combines_total",
		"fafnir_rnet_link_transfers_total",
		"fafnir_rnet_critical_path_cycles",
		`fafnir_router_shard_lookups_total{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rnet metrics missing %q:\n%s", want, out)
		}
	}

	legacy := testFleet(t, nil)
	lreg := telemetry.NewRegistry()
	legacy.RegisterMetrics(lreg)
	sb.Reset()
	lreg.Render(&sb)
	if strings.Contains(sb.String(), "fafnir_rnet_") {
		t.Fatal("legacy host-fold fleet registered rnet families")
	}
}

// TestRnetTraceSpans checks switch firings land on the dedicated PIDRnet
// timeline, one lane per tree level, alongside the usual router spans.
func TestRnetTraceSpans(t *testing.T) {
	f := rnetFleet(t, nil)
	tr := telemetry.NewTrace()
	f.AttachTracer(tr)
	b := testBatch(t, f, 8, 4, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil {
		t.Fatal(err)
	}
	var switches, combines int
	levels := map[int]bool{}
	for _, ev := range tr.Events() {
		switch {
		case ev.PID == telemetry.PIDRnet && ev.Name == "switch":
			switches++
			levels[ev.TID] = true
		case ev.PID == telemetry.PIDRouter && ev.Name == "combine":
			combines++
		case ev.PID != telemetry.PIDRouter && ev.PID != telemetry.PIDRnet:
			t.Fatalf("event %q on unexpected PID %d", ev.Name, ev.PID)
		}
	}
	if switches != 3 {
		t.Fatalf("switch spans = %d, want 3 (4-leaf radix-2 tree)", switches)
	}
	if !levels[1] || !levels[2] {
		t.Fatalf("switch spans missing a tree level lane: %v", levels)
	}
	if combines != 1 {
		t.Fatalf("combine spans = %d, want 1", combines)
	}
}

// TestRnetFailoverStaysExact checks a failed-over sub-lookup lands as a
// "late leaf" without perturbing the data: whole-shard loss with a live
// replica keeps rnet outputs bit-exact against the oracle, and the failover
// is itemized in the degraded report.
func TestRnetFailoverStaysExact(t *testing.T) {
	f := rnetFleet(t, func(c *Config) {
		c.Fleet.ShardFailures = []fault.ShardFailure{{Shard: 1, At: 1}}
	})
	b := testBatch(t, f, 16, 7, tensor.OpSum)
	if _, err := f.Lookup(b); err != nil { // cycle 0: healthy
		t.Fatal(err)
	}
	want, err := oracle.Lookup(f.Store(), b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := oracle.Diff(res.Outputs, want); d != "" {
		t.Fatalf("failover outputs diverged on the rnet path: %s", d)
	}
	if res.Degraded.Empty() || len(res.Degraded.LostQueries) != 0 {
		t.Fatalf("failover misreported: %+v", res.Degraded)
	}
}
