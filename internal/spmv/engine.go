package spmv

import (
	"fmt"
	"sort"

	"fafnir/internal/dram"
	"fafnir/internal/fafnir"
	"fafnir/internal/sim"
	"fafnir/internal/sparse"
	"fafnir/internal/tensor"
)

// PartialStream is one partial-result stream: per-row partial sums produced
// by one round, ordered by row index. Merge iterations read these streams
// back and combine equal rows ("the row indices are no longer sorted, but
// this does not impact the functionality" — we keep them sorted for
// determinism).
type PartialStream struct {
	Rows []int32
	Vals []float32
}

// Len reports the stream's element count.
func (s *PartialStream) Len() int { return len(s.Rows) }

// Bytes reports the streamed size: a row index and a value per element.
func (s *PartialStream) Bytes() int { return s.Len() * 8 }

// mergeStreams sums any number of partial streams per row index.
func mergeStreams(streams []*PartialStream) *PartialStream {
	acc := make(map[int32]float32)
	for _, s := range streams {
		for i, r := range s.Rows {
			acc[r] += s.Vals[i]
		}
	}
	rows := make([]int32, 0, len(acc))
	for r := range acc {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	out := &PartialStream{Rows: rows, Vals: make([]float32, len(rows))}
	for i, r := range rows {
		out.Vals[i] = acc[r]
	}
	return out
}

// Config parameterizes the Fafnir SpMV engine.
type Config struct {
	// Tree is the underlying Fafnir hardware configuration (ranks, clocks,
	// Table IV latencies). VectorDim doubles as the number of multiply
	// lanes per leaf (the vectorization width of Fig. 7c).
	Tree fafnir.Config
	// VectorSize is the number of matrix columns fitting in the tree at
	// once (2048 in the paper's configuration).
	VectorSize int
	// MultElemsPerCycle is the aggregate multiply throughput of the leaf
	// PEs in iteration 0. Fafnir applies SpMV on data as it streams, so
	// this sits near the memory line rate (16 leaves x 16 lanes = 256).
	MultElemsPerCycle float64
	// MergeElemsPerCycle is the aggregate throughput of merge iterations.
	// Merging funnels every element through the top of the tree — the
	// channel node's PEs and the root's output datapath, about four 16-lane
	// paths — so it sits well below the multiply rate; this is why
	// Two-Step's dedicated multi-way merge core wins iterations > 0.
	MergeElemsPerCycle float64
}

// Default returns the paper's SpMV configuration (vector size 2048 on the
// 32-rank tree).
func Default() Config {
	return Config{
		Tree:               fafnir.Default(),
		VectorSize:         2048,
		MultElemsPerCycle:  256,
		MergeElemsPerCycle: 64,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	switch {
	case c.VectorSize <= 0:
		return fmt.Errorf("spmv: VectorSize must be positive, got %d", c.VectorSize)
	case c.MultElemsPerCycle <= 0:
		return fmt.Errorf("spmv: MultElemsPerCycle must be positive, got %v", c.MultElemsPerCycle)
	case c.MergeElemsPerCycle <= 0:
		return fmt.Errorf("spmv: MergeElemsPerCycle must be positive, got %v", c.MergeElemsPerCycle)
	}
	return nil
}

// Result is the outcome of one SpMV run.
type Result struct {
	// Y is the product vector.
	Y tensor.Vector
	// Plan is the executed schedule.
	Plan *Plan
	// MultiplyCycles and MergeCycles split the runtime by iteration type
	// (Fafnir wins the multiply, Two-Step wins the merge — Fig. 14's
	// discussion).
	MultiplyCycles, MergeCycles sim.Cycle
	// TotalCycles is the end-to-end runtime in PE cycles.
	TotalCycles sim.Cycle
	// ElementsStreamed counts matrix and partial elements read from memory.
	ElementsStreamed int
	// BytesStreamed is the corresponding traffic.
	BytesStreamed uint64
}

// Engine runs SpMV on the Fafnir tree.
type Engine struct {
	cfg  Config
	tree *fafnir.Tree
}

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tree, err := fafnir.NewTree(cfg.Tree)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, tree: tree}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// roundTime charges one round: elems elements stream from memory spread
// over the ranks (8 B each: value + row index) starting at memClock, and the
// engine processes them at elemsPerCycle no earlier than peDone (rounds of
// one iteration pipeline back to back; the slower of memory and compute sets
// the sustained rate). It returns the updated clocks.
func (e *Engine) roundTime(mem *dram.System, memClock, peDone sim.Cycle, elems int, elemsPerCycle float64) (sim.Cycle, sim.Cycle, error) {
	if elems == 0 {
		return memClock, peDone, nil
	}
	ranks := e.cfg.Tree.NumRanks
	perRank := (elems + ranks - 1) / ranks
	var memDone sim.Cycle
	for r := 0; r < ranks; r++ {
		done, err := mem.StreamRead(memClock, r, 0, perRank*8, dram.DestLocal)
		if err != nil {
			return 0, 0, err
		}
		memDone = sim.Max(memDone, done)
	}
	compute := sim.Cycle(float64(elems)/elemsPerCycle + 1)
	end := sim.Max(e.cfg.Tree.DRAMToPE(memDone), peDone+compute)
	return memDone, end, nil
}

// fill is the tree's pipeline-fill latency, paid once per iteration (the
// partial results of one iteration must drain before the next re-streams
// them).
func (e *Engine) fill() sim.Cycle {
	return e.cfg.Tree.Latency.StageLatency() * sim.Cycle(e.tree.Depth())
}

// writeBack spills a round's partial stream to memory when a later merge
// iteration will re-read it, spreading the bytes over the ranks. Final
// results go to the host instead and are not spilled.
func (e *Engine) writeBack(mem *dram.System, clock sim.Cycle, s *PartialStream, needed bool) (sim.Cycle, error) {
	if !needed || s.Len() == 0 {
		return clock, nil
	}
	ranks := e.cfg.Tree.NumRanks
	perRank := (s.Bytes() + ranks - 1) / ranks
	done := clock
	for r := 0; r < ranks; r++ {
		end, err := mem.StreamWrite(clock, r, 0, perRank)
		if err != nil {
			return 0, err
		}
		done = sim.Max(done, end)
	}
	return done, nil
}

// Multiply computes y = m*x with full timing against the DRAM model. The
// functional result is exact (validated against sparse.CSR.MulVec); the
// timing follows the Fig. 8 schedule.
func (e *Engine) Multiply(m *sparse.LIL, x tensor.Vector, mem *dram.System) (*Result, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("spmv: operand of %d elements against %d columns", len(x), m.Cols)
	}
	plan, err := NewPlan(m.Cols, e.cfg.VectorSize)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}

	// Iteration 0: multiply chunk by chunk.
	var streams []*PartialStream
	var clock sim.Cycle // DRAM-domain time
	var peClock sim.Cycle
	for lo := 0; lo < m.Cols; lo += e.cfg.VectorSize {
		hi := lo + e.cfg.VectorSize
		if hi > m.Cols {
			hi = m.Cols
		}
		chunk := m.ColumnChunk(lo, hi)
		partial := multiplyChunk(chunk, x[lo:hi])
		streams = append(streams, partial)
		elems := chunk.NNZ()
		res.ElementsStreamed += elems
		res.BytesStreamed += uint64(elems) * 8
		clock, peClock, err = e.roundTime(mem, clock, peClock, elems, e.cfg.MultElemsPerCycle)
		if err != nil {
			return nil, err
		}
		clock, err = e.writeBack(mem, clock, partial, plan.MergeIterations() > 0)
		if err != nil {
			return nil, err
		}
	}
	peClock += e.fill()
	res.MultiplyCycles = peClock
	if len(streams) != plan.MultiplyRounds() {
		return nil, fmt.Errorf("spmv: %d streams for %d planned rounds", len(streams), plan.MultiplyRounds())
	}

	// Merge iterations.
	mergeStart := peClock
	iter := 1
	for len(streams) > 1 {
		if iter >= plan.Iterations() {
			return nil, fmt.Errorf("spmv: merge iteration %d beyond plan %v", iter, plan)
		}
		var next []*PartialStream
		for lo := 0; lo < len(streams); lo += e.cfg.VectorSize {
			hi := lo + e.cfg.VectorSize
			if hi > len(streams) {
				hi = len(streams)
			}
			group := streams[lo:hi]
			elems := 0
			for _, s := range group {
				elems += s.Len()
			}
			res.ElementsStreamed += elems
			res.BytesStreamed += uint64(elems) * 8
			var err error
			clock, peClock, err = e.roundTime(mem, clock, peClock, elems, e.cfg.MergeElemsPerCycle)
			if err != nil {
				return nil, err
			}
			merged := mergeStreams(group)
			next = append(next, merged)
			clock, err = e.writeBack(mem, clock, merged, iter+1 < plan.Iterations())
			if err != nil {
				return nil, err
			}
		}
		if len(next) != plan.RoundsPerIteration[iter] {
			return nil, fmt.Errorf("spmv: iteration %d produced %d streams, plan says %d",
				iter, len(next), plan.RoundsPerIteration[iter])
		}
		streams = next
		iter++
		peClock += e.fill()
	}
	res.MergeCycles = peClock - mergeStart
	res.TotalCycles = peClock

	// Materialize the dense result.
	res.Y = tensor.New(m.Rows)
	if len(streams) == 1 {
		for i, r := range streams[0].Rows {
			res.Y[r] = streams[0].Vals[i]
		}
	}
	return res, nil
}

// multiplyChunk computes the partial stream of one column chunk: per-row
// sums of val*x[col] over the chunk's non-zeros.
func multiplyChunk(chunk *sparse.LIL, x tensor.Vector) *PartialStream {
	out := &PartialStream{}
	for r := 0; r < chunk.Rows; r++ {
		if len(chunk.ColIdx[r]) == 0 {
			continue
		}
		var acc float32
		for i, c := range chunk.ColIdx[r] {
			acc += chunk.Vals[r][i] * x[c]
		}
		out.Rows = append(out.Rows, int32(r))
		out.Vals = append(out.Vals, acc)
	}
	return out
}
