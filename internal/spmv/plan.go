// Package spmv adapts the Fafnir tree to sparse matrix-vector
// multiplication (Section IV-D of the paper).
//
// Embedding lookup reduces distinct vectors into one vector; SpMV reduces
// the elements of each matrix row into one element. Fafnir bridges the gap
// with vectorization (Fig. 7c): the matrix is split through its
// uncompressed column dimension into chunks of VectorSize columns, the
// operand slice x[lo:hi) is buffered at the leaf multipliers, each rank
// streams its columns' non-zeros (both data and indices — Table II), leaf
// PEs multiply, and the tree sums contributions per row index. Chunks that
// do not fit produce partial result streams that later *merge iterations*
// combine on the same hardware, with leaf multiplication skipped (Fig. 8).
package spmv

import (
	"fmt"
)

// Plan describes the iteration/round schedule of one SpMV on the Fafnir
// tree (Fig. 8), reproduced analytically for Fig. 9.
type Plan struct {
	// Cols is the matrix column count.
	Cols int
	// VectorSize is the number of columns fitting in the tree at once
	// (2048 in the paper's SpMV configuration).
	VectorSize int
	// RoundsPerIteration lists, per iteration, the number of rounds:
	// element 0 is the multiply iteration (ceil(Cols/VectorSize) rounds);
	// subsequent elements are merge iterations.
	RoundsPerIteration []int
}

// NewPlan computes the schedule for a matrix with cols columns at the given
// vector size.
func NewPlan(cols, vectorSize int) (*Plan, error) {
	if cols <= 0 {
		return nil, fmt.Errorf("spmv: cols must be positive, got %d", cols)
	}
	if vectorSize <= 0 {
		return nil, fmt.Errorf("spmv: vector size must be positive, got %d", vectorSize)
	}
	p := &Plan{Cols: cols, VectorSize: vectorSize}
	streams := (cols + vectorSize - 1) / vectorSize
	p.RoundsPerIteration = append(p.RoundsPerIteration, streams)
	// Each merge round combines up to VectorSize partial streams into one.
	for streams > 1 {
		streams = (streams + vectorSize - 1) / vectorSize
		p.RoundsPerIteration = append(p.RoundsPerIteration, streams)
	}
	return p, nil
}

// Iterations reports the total iteration count (multiply + merges).
func (p *Plan) Iterations() int { return len(p.RoundsPerIteration) }

// MergeIterations reports how many merge iterations follow iteration 0.
func (p *Plan) MergeIterations() int { return len(p.RoundsPerIteration) - 1 }

// MultiplyRounds reports the rounds of iteration 0.
func (p *Plan) MultiplyRounds() int { return p.RoundsPerIteration[0] }

// TotalMerges reports the total merge rounds across all merge iterations
// (the "required merges" series of Fig. 9).
func (p *Plan) TotalMerges() int {
	total := 0
	for _, r := range p.RoundsPerIteration[1:] {
		total += r
	}
	return total
}

// String renders the plan like "cols=5000000 V=2048: 2442 multiply rounds, 2
// merge iterations (2 merges)".
func (p *Plan) String() string {
	return fmt.Sprintf("cols=%d V=%d: %d multiply rounds, %d merge iterations (%d merges)",
		p.Cols, p.VectorSize, p.MultiplyRounds(), p.MergeIterations(), p.TotalMerges())
}
