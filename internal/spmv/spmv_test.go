package spmv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fafnir/internal/dram"
	"fafnir/internal/fafnir"
	"fafnir/internal/sparse"
)

func TestPlanSingleChunk(t *testing.T) {
	p, err := NewPlan(1000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations() != 1 || p.MergeIterations() != 0 || p.MultiplyRounds() != 1 || p.TotalMerges() != 0 {
		t.Fatalf("plan %+v", p)
	}
}

func TestPlanOneMergeIteration(t *testing.T) {
	// 10,000 columns at V=2048 -> 5 multiply rounds -> 1 merge round.
	p, err := NewPlan(10000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.MultiplyRounds() != 5 {
		t.Fatalf("multiply rounds %d", p.MultiplyRounds())
	}
	if p.MergeIterations() != 1 || p.TotalMerges() != 1 {
		t.Fatalf("plan %+v", p)
	}
}

func TestPlanPaperClaim(t *testing.T) {
	// "even for matrices with more than 5 million columns, no more than two
	// merge stages are required" at V=2048.
	for _, cols := range []int{5_000_001, 10_000_000, 20_000_000} {
		p, err := NewPlan(cols, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if p.MergeIterations() > 2 {
			t.Fatalf("cols=%d needs %d merge iterations", cols, p.MergeIterations())
		}
	}
	// And at 2048^2 columns or fewer, at most one merge iteration.
	p, err := NewPlan(2048*2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.MergeIterations() != 1 {
		t.Fatalf("4.2M cols: %d merge iterations", p.MergeIterations())
	}
}

func TestPlanFig9Shapes(t *testing.T) {
	// Fig. 9 sweeps vector sizes 1024 and 2048: the smaller vector needs at
	// least as many iterations and merges everywhere.
	for _, cols := range []int{1 << 10, 1 << 16, 1 << 21, 20_000_000} {
		p1, err := NewPlan(cols, 1024)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := NewPlan(cols, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if p1.Iterations() < p2.Iterations() {
			t.Fatalf("cols=%d: V=1024 iterations %d < V=2048 %d", cols, p1.Iterations(), p2.Iterations())
		}
		if p1.TotalMerges() < p2.TotalMerges() {
			t.Fatalf("cols=%d: V=1024 merges < V=2048", cols)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0, 2048); err == nil {
		t.Fatal("zero cols accepted")
	}
	if _, err := NewPlan(100, 0); err == nil {
		t.Fatal("zero vector size accepted")
	}
}

func TestPlanString(t *testing.T) {
	p, err := NewPlan(5_000_000, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
}

func smallConfig() Config {
	cfg := Default()
	cfg.Tree.NumRanks = 8
	cfg.VectorSize = 16
	return cfg
}

func TestMultiplyMatchesReference(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		m := sparse.RandomUniform(40, 100, 0.1, seed)
		x := sparse.DenseVector(100, seed+50)
		want, errr := m.MulVec(x)
		if errr != nil {
			t.Fatal(errr)
		}
		mem := dram.MustSystem(dram.DDR4())
		res, errr := e.Multiply(m, x, mem)
		if errr != nil {
			t.Fatal(errr)
		}
		if !res.Y.Equal(want) {
			t.Fatalf("seed %d: result mismatch", seed)
		}
		if res.Plan.MultiplyRounds() != 7 { // ceil(100/16)
			t.Fatalf("rounds %d", res.Plan.MultiplyRounds())
		}
		if res.TotalCycles == 0 {
			t.Fatal("zero runtime")
		}
	}
}

func TestMultiplySingleChunkNoMergeCycles(t *testing.T) {
	cfg := smallConfig()
	cfg.VectorSize = 256
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := sparse.RandomUniform(32, 100, 0.1, 3)
	x := sparse.DenseVector(100, 4)
	res, err := e.Multiply(m, x, dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeCycles != 0 {
		t.Fatalf("single-chunk run charged %d merge cycles", res.MergeCycles)
	}
	if res.Plan.MergeIterations() != 0 {
		t.Fatalf("plan %+v", res.Plan)
	}
}

func TestMultiplyOperandMismatch(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := sparse.RandomUniform(4, 8, 0.5, 1)
	if _, err := e.Multiply(m, sparse.DenseVector(9, 1), dram.MustSystem(dram.DDR4())); err == nil {
		t.Fatal("operand mismatch accepted")
	}
}

func TestMultiplyBandedAndGraph(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*sparse.LIL{
		"banded": sparse.Banded(120, 2, 1),
		"graph":  sparse.PowerLawGraph(120, 2, 1),
	} {
		x := sparse.DenseVector(m.Cols, 9)
		want, errr := m.MulVec(x)
		if errr != nil {
			t.Fatal(errr)
		}
		res, errr := e.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if errr != nil {
			t.Fatalf("%s: %v", name, errr)
		}
		if !res.Y.Equal(want) {
			t.Fatalf("%s: result mismatch", name)
		}
	}
}

func TestMergeDominanceGrowsWithColumns(t *testing.T) {
	// More chunks -> more merge work relative to a single-chunk run.
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := sparse.RandomUniform(64, 16, 0.2, 2)   // 1 chunk
	large := sparse.RandomUniform(64, 1024, 0.2, 2) // 64 chunks
	rs, err := e.Multiply(small, sparse.DenseVector(16, 1), dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := e.Multiply(large, sparse.DenseVector(1024, 1), dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	if rs.MergeCycles != 0 || rl.MergeCycles == 0 {
		t.Fatalf("merge cycles small=%d large=%d", rs.MergeCycles, rl.MergeCycles)
	}
}

func TestValidateConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.VectorSize = 0 },
		func(c *Config) { c.MultElemsPerCycle = 0 },
		func(c *Config) { c.MergeElemsPerCycle = 0 },
		func(c *Config) { c.Tree.NumRanks = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPartialStreamBytes(t *testing.T) {
	s := &PartialStream{Rows: []int32{1, 2}, Vals: []float32{3, 4}}
	if s.Len() != 2 || s.Bytes() != 16 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestMergeStreams(t *testing.T) {
	a := &PartialStream{Rows: []int32{0, 2}, Vals: []float32{1, 2}}
	b := &PartialStream{Rows: []int32{2, 5}, Vals: []float32{10, 20}}
	m := mergeStreams([]*PartialStream{a, b})
	if m.Len() != 3 {
		t.Fatalf("merged %v", m)
	}
	if m.Rows[0] != 0 || m.Rows[1] != 2 || m.Rows[2] != 5 {
		t.Fatalf("rows %v", m.Rows)
	}
	if m.Vals[1] != 12 {
		t.Fatalf("row 2 sum %v", m.Vals[1])
	}
}

func TestDefaultUsesPaperTree(t *testing.T) {
	cfg := Default()
	if cfg.VectorSize != 2048 {
		t.Fatalf("VectorSize = %d", cfg.VectorSize)
	}
	if cfg.Tree.NumRanks != fafnir.Default().NumRanks {
		t.Fatal("tree config drifted from fafnir default")
	}
}

// Property: the plan always covers the whole matrix (rounds x V >= cols),
// merge iterations shrink stream counts geometrically, and a single
// iteration suffices exactly when cols <= V.
func TestQuickPlanInvariants(t *testing.T) {
	f := func(colsRaw uint32, vRaw uint16) bool {
		cols := int(colsRaw%10_000_000) + 1
		v := int(vRaw%4096) + 1
		p, err := NewPlan(cols, v)
		if err != nil {
			return false
		}
		if p.MultiplyRounds()*v < cols {
			return false
		}
		if (p.Iterations() == 1) != (cols <= v) {
			return false
		}
		streams := p.MultiplyRounds()
		for _, r := range p.RoundsPerIteration[1:] {
			if r >= streams { // must strictly shrink
				return false
			}
			streams = r
		}
		return p.RoundsPerIteration[p.Iterations()-1] == 1 || p.Iterations() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}
