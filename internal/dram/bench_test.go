package dram

import "testing"

func BenchmarkRandomReads(b *testing.B) {
	cfg := DDR4()
	s := MustSystem(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(0, cfg.MustEncode(i%cfg.TotalRanks(), uint64(i%4096)), 512, DestLocal)
	}
}

func BenchmarkStreamRead(b *testing.B) {
	cfg := DDR4()
	s := MustSystem(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StreamRead(0, i%cfg.TotalRanks(), 0, 64<<10, DestLocal)
	}
}

func BenchmarkDecode(b *testing.B) {
	cfg := DDR4()
	var sink Location
	for i := 0; i < b.N; i++ {
		sink = cfg.Decode(Addr(i * 512))
	}
	_ = sink
}
