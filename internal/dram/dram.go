// Package dram models a DDR4 memory system at the granularity the FAFNIR
// paper's arguments depend on: channels, DIMMs, ranks, banks, row buffers,
// and the timing of activates, column reads, and data bursts.
//
// The model is a deterministic resource-reservation simulator. Every bank
// tracks its open row and the cycle at which it can accept the next command;
// every rank tracks when its data pins are free; every channel tracks when
// its shared bus to the host is free. A read request reserves those resources
// in order and returns the cycle at which its last burst of data arrives.
//
// This is intentionally not a full DRAM protocol simulator (no refresh, no
// command-bus contention, no write path): the three effects the paper's
// evaluation hinges on are captured —
//
//  1. rank-level parallelism (distinct ranks serve reads concurrently),
//  2. row-buffer locality (hits cost tCAS, conflicts cost tRP+tRCD+tCAS),
//  3. channel-bus occupancy when data must travel to the host instead of
//     staying at a near-data processor.
package dram

import (
	"fmt"

	"fafnir/internal/fault"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
)

// Addr is a physical byte address in the simulated memory space.
type Addr uint64

// Dest says where the data of a read is headed, which determines whether the
// shared channel bus to the host must be reserved.
type Dest uint8

const (
	// DestLocal delivers data to a near-data processor attached at the rank
	// or DIMM (TensorDIMM/RecNMP buffer chips, Fafnir leaf PEs). Only the
	// rank's own data pins are occupied.
	DestLocal Dest = iota
	// DestHost delivers data across the channel to the host CPU, reserving
	// the channel bus for every burst.
	DestHost
)

// Config describes the memory system geometry and timing. All timings are in
// memory-controller cycles.
type Config struct {
	Channels        int
	DIMMsPerChannel int
	RanksPerDIMM    int
	BanksPerRank    int

	// RowBytes is the row-buffer size of one bank.
	RowBytes int
	// BurstBytes is the data delivered by one burst (64 B for DDR4 x64).
	BurstBytes int
	// InterleaveBytes is the rank-interleaving granularity of the address
	// mapping (Fig. 4b maps one 512 B embedding vector per rank slot).
	InterleaveBytes int

	// TRCD is the activate-to-read delay.
	TRCD sim.Cycle
	// TCAS is the read-to-data delay (CL).
	TCAS sim.Cycle
	// TRP is the precharge delay paid on a row conflict.
	TRP sim.Cycle
	// TBurst is the data-bus occupancy of one burst (BL/2 bus cycles).
	TBurst sim.Cycle
	// TRRD is the minimum spacing between two activates on one rank.
	TRRD sim.Cycle
	// TFAW is the four-activate window: at most four activates may issue
	// on one rank within this window. Together with TRRD this throttles
	// row-hostile access patterns (TensorDIMM's column-major reads).
	TFAW sim.Cycle
	// TREFI is the refresh interval: every TREFI cycles each rank stalls
	// for TRFC while a refresh runs (all banks). Zero disables refresh.
	// The first refresh fires at TREFI, so short runs are unaffected.
	TREFI sim.Cycle
	// TRFC is the refresh cycle time (rank busy during a refresh).
	TRFC sim.Cycle

	// ClockMHz is the memory clock, used only for reporting.
	ClockMHz float64

	// ClosedPage, when true, precharges the row after every access instead
	// of keeping it open: accesses never hit or conflict, they always pay
	// a fresh activate. Open-page (the default) is what the paper's
	// row-buffer-locality arguments assume; the closed-page ablation
	// quantifies how much those arguments matter.
	ClosedPage bool
}

// DDR4 returns the paper's target configuration: 4 channels x 4 DIMMs x
// 2 ranks (32 ranks), DDR4-2400-like timing, 8 KB rows, 512 B interleaving.
func DDR4() Config {
	return Config{
		Channels:        4,
		DIMMsPerChannel: 4,
		RanksPerDIMM:    2,
		BanksPerRank:    16,
		RowBytes:        8192,
		BurstBytes:      64,
		InterleaveBytes: 512,
		TRCD:            16,
		TCAS:            16,
		TRP:             16,
		TBurst:          4,
		TRRD:            8,
		TFAW:            40,
		TREFI:           9360, // 7.8 us at 1200 MHz
		TRFC:            420,  // ~350 ns
		ClockMHz:        1200,
	}
}

// HBM2 returns an HBM2-like configuration for the paper's future-work
// integration: the leaf PEs attach to 32 pseudo channels instead of DDR4
// ranks. Each pseudo channel is modelled as one rank on its own channel
// bus, with the higher bank count, smaller rows, and higher clock of HBM.
func HBM2() Config {
	return Config{
		Channels:        32, // pseudo channels
		DIMMsPerChannel: 1,
		RanksPerDIMM:    1,
		BanksPerRank:    16,
		RowBytes:        2048,
		BurstBytes:      32,
		InterleaveBytes: 512,
		TRCD:            14,
		TCAS:            14,
		TRP:             14,
		TBurst:          2,
		TRRD:            4,
		TFAW:            16,
		TREFI:           7020, // 3.9 us at 1800 MHz (2x refresh rate)
		TRFC:            470,  // ~260 ns
		ClockMHz:        1800,
	}
}

// Validate reports a descriptive error when the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: Channels must be positive, got %d", c.Channels)
	case c.DIMMsPerChannel <= 0:
		return fmt.Errorf("dram: DIMMsPerChannel must be positive, got %d", c.DIMMsPerChannel)
	case c.RanksPerDIMM <= 0:
		return fmt.Errorf("dram: RanksPerDIMM must be positive, got %d", c.RanksPerDIMM)
	case c.BanksPerRank <= 0:
		return fmt.Errorf("dram: BanksPerRank must be positive, got %d", c.BanksPerRank)
	case c.RowBytes <= 0:
		return fmt.Errorf("dram: RowBytes must be positive, got %d", c.RowBytes)
	case c.BurstBytes <= 0:
		return fmt.Errorf("dram: BurstBytes must be positive, got %d", c.BurstBytes)
	case c.InterleaveBytes < c.BurstBytes:
		return fmt.Errorf("dram: InterleaveBytes %d smaller than BurstBytes %d", c.InterleaveBytes, c.BurstBytes)
	case c.RowBytes%c.InterleaveBytes != 0:
		return fmt.Errorf("dram: RowBytes %d not a multiple of InterleaveBytes %d", c.RowBytes, c.InterleaveBytes)
	case c.InterleaveBytes%c.BurstBytes != 0:
		return fmt.Errorf("dram: InterleaveBytes %d not a multiple of BurstBytes %d", c.InterleaveBytes, c.BurstBytes)
	}
	return nil
}

// TotalRanks reports the number of ranks in the system.
func (c Config) TotalRanks() int {
	return c.Channels * c.DIMMsPerChannel * c.RanksPerDIMM
}

// RanksPerChannel reports the ranks attached to one channel.
func (c Config) RanksPerChannel() int {
	return c.DIMMsPerChannel * c.RanksPerDIMM
}

// Location is a fully decoded physical address.
type Location struct {
	Channel int
	DIMM    int
	Rank    int // rank within the DIMM
	Bank    int
	Row     int
	Col     int // byte offset within the row
}

// GlobalRank flattens a location's (channel, dimm, rank) into a system-wide
// rank identifier in [0, TotalRanks).
func (c Config) GlobalRank(l Location) int {
	return (l.Channel*c.DIMMsPerChannel+l.DIMM)*c.RanksPerDIMM + l.Rank
}

// RankLocation inverts GlobalRank.
func (c Config) RankLocation(global int) Location {
	r := global % c.RanksPerDIMM
	d := (global / c.RanksPerDIMM) % c.DIMMsPerChannel
	ch := global / (c.RanksPerDIMM * c.DIMMsPerChannel)
	return Location{Channel: ch, DIMM: d, Rank: r}
}

// Decode maps a byte address onto the geometry. The layout follows Fig. 4b:
// the low bits address bytes within one interleave slot (one embedding
// vector), the next bits pick the rank, and the remaining bits walk rows
// within the rank with rows striped across banks.
func (c Config) Decode(addr Addr) Location {
	slotOff := int(addr) % c.InterleaveBytes
	slotIdx := uint64(addr) / uint64(c.InterleaveBytes)
	global := int(slotIdx % uint64(c.TotalRanks()))
	within := slotIdx / uint64(c.TotalRanks())

	slotsPerRow := uint64(c.RowBytes / c.InterleaveBytes)
	rowSeq := within / slotsPerRow
	slotInRow := within % slotsPerRow

	loc := c.RankLocation(global)
	loc.Bank = int(rowSeq % uint64(c.BanksPerRank))
	loc.Row = int(rowSeq / uint64(c.BanksPerRank))
	loc.Col = int(slotInRow)*c.InterleaveBytes + slotOff
	return loc
}

// Encode inverts Decode for slot-aligned addresses: it returns the byte
// address of interleave slot slot within global rank rank. Slot s of rank r
// is the s-th InterleaveBytes-sized block stored in that rank. It returns an
// error for a rank outside the geometry.
func (c Config) Encode(globalRank int, slot uint64) (Addr, error) {
	if globalRank < 0 || globalRank >= c.TotalRanks() {
		return 0, fmt.Errorf("dram: rank %d out of range [0,%d)", globalRank, c.TotalRanks())
	}
	idx := slot*uint64(c.TotalRanks()) + uint64(globalRank)
	return Addr(idx * uint64(c.InterleaveBytes)), nil
}

// MustEncode is Encode for callers with statically valid ranks (tests,
// examples); it panics on error.
func (c Config) MustEncode(globalRank int, slot uint64) Addr {
	a, err := c.Encode(globalRank, slot)
	if err != nil {
		panic(err)
	}
	return a
}

// AccessRecord describes one top-level read request served by the system, as
// seen by the engine that issued it: the issue cycle the caller passed in, the
// completion cycle returned, and the request's address, size, destination, and
// the global rank of its first interleave slot. Conformance checkers replay
// these records to prove access-count properties (e.g. the paper's
// read-each-unique-index-once claim) from the memory system's own evidence
// rather than from engine-reported counters.
type AccessRecord struct {
	Issue sim.Cycle
	Done  sim.Cycle
	Addr  Addr
	Size  int
	Dest  Dest
	Rank  int
}

// AccessLog collects AccessRecords in issue order. Attach one with AttachLog;
// logging is observational only and never perturbs timing. The zero value is
// ready to use. An AccessLog is not safe for concurrent use, matching the
// System it observes.
type AccessLog struct {
	records []AccessRecord
}

// Records returns the collected records in issue order. The slice aliases the
// log's storage; callers must not mutate it.
func (l *AccessLog) Records() []AccessRecord { return l.records }

// Len reports the number of records collected.
func (l *AccessLog) Len() int { return len(l.records) }

// Reset discards all collected records, keeping the capacity.
func (l *AccessLog) Reset() { l.records = l.records[:0] }

// bank tracks one bank's open row and availability.
type bank struct {
	openRow int // -1 when closed
	readyAt sim.Cycle
}

// rank tracks one rank's banks and data pins.
type rank struct {
	banks        []bank
	pinsAt       sim.Cycle    // next cycle the rank data pins are free
	lastActivate sim.Cycle    // previous activate issue time (tRRD)
	activates    [4]sim.Cycle // issue times of the last four activates (tFAW)
	activateIdx  int
	reads        uint64
	bursts       uint64
	hits         uint64
	misses       uint64
	conflicts    uint64
}

// System is the simulated memory system. It is not safe for concurrent use.
type System struct {
	cfg       Config
	ranks     []rank
	chanBusAt []sim.Cycle // per-channel host-bus availability
	stats     *sim.Stats
	faults    *fault.Injector  // nil when no fault plan is attached
	log       *AccessLog       // nil when no access log is attached
	tracer    telemetry.Tracer // nil when no tracer is attached (see trace.go)
	// namedRank/namedBank defer trace lane naming to first use so idle
	// ranks and banks stay off the exported timeline.
	namedRank []bool
	namedBank []bool
}

// NewSystem builds a memory system for the configuration. It returns an
// error for an invalid configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:       cfg,
		ranks:     make([]rank, cfg.TotalRanks()),
		chanBusAt: make([]sim.Cycle, cfg.Channels),
		stats:     sim.NewStats(),
	}
	for i := range s.ranks {
		s.ranks[i].banks = make([]bank, cfg.BanksPerRank)
		for b := range s.ranks[i].banks {
			s.ranks[i].banks[b].openRow = -1
		}
	}
	return s, nil
}

// MustSystem is NewSystem for callers with statically valid configurations
// (the DDR4/HBM2 presets in tests and examples); it panics on error.
func MustSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AttachFaults threads a fault injector into the memory model: ReadChecked
// consults it for dark ranks. A nil injector detaches. The attachment itself
// never perturbs timing — a system with an inactive injector behaves
// bit-identically to one with none.
func (s *System) AttachFaults(inj *fault.Injector) { s.faults = inj }

// Faults returns the attached injector (nil when none).
func (s *System) Faults() *fault.Injector { return s.faults }

// AttachLog attaches an access log: every subsequent top-level Read (including
// the per-chunk reads of StreamRead) appends one AccessRecord. A nil log
// detaches. Logging never perturbs timing — a system with a log attached is
// cycle-identical to one without.
func (s *System) AttachLog(l *AccessLog) { s.log = l }

// Log returns the attached access log (nil when none).
func (s *System) Log() *AccessLog { return s.log }

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Stats exposes the access counters collected so far.
func (s *System) Stats() *sim.Stats { return s.stats }

// Reset clears all bank, bus, and statistics state, returning the system to
// its initial (all rows closed, all resources free) condition.
func (s *System) Reset() {
	for i := range s.ranks {
		s.ranks[i] = rank{banks: make([]bank, s.cfg.BanksPerRank)}
		for b := range s.ranks[i].banks {
			s.ranks[i].banks[b].openRow = -1
		}
	}
	for i := range s.chanBusAt {
		s.chanBusAt[i] = 0
	}
	s.stats = sim.NewStats()
}

// afterRefresh pushes a command start time out of any refresh window: the
// k-th refresh (k >= 1) occupies [k*TREFI, k*TREFI+TRFC) on every rank.
func (s *System) afterRefresh(start sim.Cycle) sim.Cycle {
	if s.cfg.TREFI == 0 || start < s.cfg.TREFI {
		return start
	}
	k := start / s.cfg.TREFI
	windowStart := k * s.cfg.TREFI
	if start < windowStart+s.cfg.TRFC {
		s.stats.Inc("dram.refresh_delays", 1)
		return windowStart + s.cfg.TRFC
	}
	return start
}

// RowOutcome classifies one column access against the bank's row buffer.
type RowOutcome uint8

const (
	// RowHit means the target row was already open.
	RowHit RowOutcome = iota
	// RowMiss means the bank was closed and only an activate was needed.
	RowMiss
	// RowConflict means another row was open and a precharge preceded the
	// activate.
	RowConflict
)

// String returns the outcome name.
func (o RowOutcome) String() string {
	switch o {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	default:
		return "conflict"
	}
}

// Read performs a read of size bytes starting at addr, issued no earlier
// than cycle now, delivering to dest. It returns the cycle at which the last
// burst of data has arrived. Reads that span interleave-slot boundaries are
// split and the pieces may land on different ranks; the completion is the
// latest piece.
func (s *System) Read(now sim.Cycle, addr Addr, size int, dest Dest) sim.Cycle {
	if size <= 0 {
		return now
	}
	done := s.read(now, addr, size, dest)
	if s.log != nil {
		s.log.records = append(s.log.records, AccessRecord{
			Issue: now, Done: done, Addr: addr, Size: size, Dest: dest,
			Rank: s.cfg.GlobalRank(s.cfg.Decode(addr)),
		})
	}
	return done
}

// read is Read without the logging wrapper.
func (s *System) read(now sim.Cycle, addr Addr, size int, dest Dest) sim.Cycle {
	done := now
	// Split at interleave-slot boundaries so each piece maps to one rank/row.
	for size > 0 {
		slotOff := int(addr) % s.cfg.InterleaveBytes
		chunk := s.cfg.InterleaveBytes - slotOff
		if chunk > size {
			chunk = size
		}
		end := s.readWithinSlot(now, addr, chunk, dest)
		done = sim.Max(done, end)
		addr += Addr(chunk)
		size -= chunk
	}
	return done
}

// ReadChecked is Read with the attached fault injector consulted first: a
// read whose address decodes to a rank that is dark at issue time returns
// fault.ErrRankFailed instead of timing. With no injector attached (or an
// inactive one) it is exactly Read.
func (s *System) ReadChecked(now sim.Cycle, addr Addr, size int, dest Dest) (sim.Cycle, error) {
	if s.faults.Active() {
		// Walk the interleave slots the read spans; each may map to a
		// different rank.
		a, left := addr, size
		for left > 0 {
			chunk := s.cfg.InterleaveBytes - int(a)%s.cfg.InterleaveBytes
			if chunk > left {
				chunk = left
			}
			if g := s.cfg.GlobalRank(s.cfg.Decode(a)); s.faults.RankFailed(g, now) {
				s.stats.Inc("dram.failed_rank_reads", 1)
				return 0, fmt.Errorf("%w: read of %d B at %#x targets dark rank %d at cycle %d",
					fault.ErrRankFailed, size, uint64(addr), g, now)
			}
			a += Addr(chunk)
			left -= chunk
		}
	}
	return s.Read(now, addr, size, dest), nil
}

// readWithinSlot serves a read that stays inside one interleave slot (hence
// one rank and one row).
func (s *System) readWithinSlot(now sim.Cycle, addr Addr, size int, dest Dest) sim.Cycle {
	loc := s.cfg.Decode(addr)
	g := s.cfg.GlobalRank(loc)
	rk := &s.ranks[g]
	bk := &rk.banks[loc.Bank]

	start := sim.Max(now, bk.readyAt)
	start = s.afterRefresh(start)

	// Row-buffer outcome.
	var outcome RowOutcome
	switch {
	case bk.openRow == loc.Row:
		outcome = RowHit
	case bk.openRow == -1:
		outcome = RowMiss
	default:
		outcome = RowConflict
	}
	var preAt, actAt sim.Cycle // command times for the trace emitter
	switch outcome {
	case RowHit:
		rk.hits++
		s.stats.Inc("dram.row_hits", 1)
	case RowMiss, RowConflict:
		if outcome == RowConflict {
			preAt = start
			start += s.cfg.TRP
			rk.conflicts++
			s.stats.Inc("dram.row_conflicts", 1)
		} else {
			rk.misses++
			s.stats.Inc("dram.row_misses", 1)
		}
		// Activate throttling: honour tRRD against the previous activate
		// and tFAW against the fourth-to-last one.
		actAt = start
		if rk.lastActivate > 0 || rk.activateIdx > 0 {
			actAt = sim.Max(actAt, rk.lastActivate+s.cfg.TRRD)
		}
		oldest := rk.activates[rk.activateIdx%4]
		if rk.activateIdx >= 4 {
			actAt = sim.Max(actAt, oldest+s.cfg.TFAW)
		}
		rk.activates[rk.activateIdx%4] = actAt
		rk.activateIdx++
		rk.lastActivate = actAt
		start = actAt + s.cfg.TRCD
	}
	bk.openRow = loc.Row

	// Column access latency, then burst the data out over the rank pins
	// (and the channel bus when headed to the host).
	firstData := start + s.cfg.TCAS
	bursts := (size + s.cfg.BurstBytes - 1) / s.cfg.BurstBytes
	dataAt := sim.Max(firstData, rk.pinsAt)
	for b := 0; b < bursts; b++ {
		if dest == DestHost {
			busFree := s.chanBusAt[loc.Channel]
			dataAt = sim.Max(dataAt, busFree)
			s.chanBusAt[loc.Channel] = dataAt + s.cfg.TBurst
		}
		dataAt += s.cfg.TBurst
	}
	rk.pinsAt = dataAt
	bk.readyAt = start + s.cfg.TCAS // bank can take next column command
	if s.cfg.ClosedPage {
		bk.openRow = -1 // auto-precharge
	}

	rk.reads++
	rk.bursts += uint64(bursts)
	s.stats.Inc("dram.reads", 1)
	s.stats.Inc("dram.bursts", uint64(bursts))
	s.stats.Inc("dram.bytes", uint64(size))
	if dest == DestHost {
		s.stats.Inc("dram.bytes_to_host", uint64(size))
	}
	if s.tracer != nil {
		s.traceAccess(g, loc, outcome, preAt, actAt, start, dataAt, size)
	}
	return dataAt
}

// RankStats reports per-rank access counters for global rank g.
func (s *System) RankStats(g int) (reads, bursts, hits, misses, conflicts uint64) {
	rk := &s.ranks[g]
	return rk.reads, rk.bursts, rk.hits, rk.misses, rk.conflicts
}

// RankFreeAt reports the earliest cycle global rank g's data pins are free,
// which engines use to model streaming back-pressure.
func (s *System) RankFreeAt(g int) sim.Cycle { return s.ranks[g].pinsAt }

// ChannelFreeAt reports the earliest cycle channel ch's host bus is free.
func (s *System) ChannelFreeAt(ch int) sim.Cycle { return s.chanBusAt[ch] }

// ReserveChannel reserves the channel bus of channel ch for dur cycles
// starting no earlier than now, returning the completion cycle. Engines use
// this to model result vectors travelling from an NDP node to the host.
func (s *System) ReserveChannel(now sim.Cycle, ch int, dur sim.Cycle) sim.Cycle {
	start := sim.Max(now, s.chanBusAt[ch])
	s.chanBusAt[ch] = start + dur
	s.stats.Inc("dram.channel_reservations", 1)
	return start + dur
}

// TransferCycles reports the channel-bus cycles needed to move size bytes.
func (c Config) TransferCycles(size int) sim.Cycle {
	bursts := (size + c.BurstBytes - 1) / c.BurstBytes
	return sim.Cycle(bursts) * c.TBurst
}

// Write performs a write of size bytes at addr, issued no earlier than
// cycle now. Writes traverse the same bank/row/pin resources as reads (the
// model has no write-specific timing; tWR-class effects are folded into the
// shared constants) and are counted separately in the statistics. Data
// always originates at the NDP side in this repository's engines, so no
// channel-bus reservation applies.
func (s *System) Write(now sim.Cycle, addr Addr, size int) sim.Cycle {
	if size <= 0 {
		return now
	}
	total := size
	done := now
	for size > 0 {
		slotOff := int(addr) % s.cfg.InterleaveBytes
		chunk := s.cfg.InterleaveBytes - slotOff
		if chunk > size {
			chunk = size
		}
		end := s.readWithinSlot(now, addr, chunk, DestLocal)
		done = sim.Max(done, end)
		addr += Addr(chunk)
		size -= chunk
	}
	s.stats.Inc("dram.writes", 1)
	s.stats.Inc("dram.bytes_written", uint64(total))
	return done
}

// StreamWrite models a sequential write-back stream of size bytes to global
// rank g starting at slot startSlot (the partial-result spill of an SpMV
// merge round). It returns an error for a rank outside the geometry.
func (s *System) StreamWrite(now sim.Cycle, g int, startSlot uint64, size int) (sim.Cycle, error) {
	done := now
	slot := startSlot
	for size > 0 {
		chunk := s.cfg.InterleaveBytes
		if chunk > size {
			chunk = size
		}
		addr, err := s.cfg.Encode(g, slot)
		if err != nil {
			return 0, err
		}
		done = s.Write(done, addr, chunk)
		slot++
		size -= chunk
	}
	return done, nil
}

// StreamRead models a sequential stream of size bytes from global rank g
// starting at that rank's slot startSlot, as used by SpMV streaming. It is
// row-buffer friendly by construction: consecutive slots of a rank share
// rows. Returns the completion cycle of the final burst, or an error for a
// rank outside the geometry.
func (s *System) StreamRead(now sim.Cycle, g int, startSlot uint64, size int, dest Dest) (sim.Cycle, error) {
	done := now
	slot := startSlot
	for size > 0 {
		chunk := s.cfg.InterleaveBytes
		if chunk > size {
			chunk = size
		}
		addr, err := s.cfg.Encode(g, slot)
		if err != nil {
			return 0, err
		}
		done = s.Read(done, addr, chunk, dest)
		slot++
		size -= chunk
	}
	return done, nil
}
