package dram

import (
	"fmt"

	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
)

// This file threads the telemetry tracer through the memory model. It
// generalizes the AttachLog hook: where the access log records one flat
// AccessRecord per top-level read, the tracer sees the per-bank command
// schedule — PRE/ACT/RD spans with row-buffer outcome annotations — on one
// lane per (rank, bank). Reads issue in strict program order from the
// engines, so the event stream is deterministic, and like the log the
// attachment never perturbs timing.

// AttachTracer threads an event tracer into the memory system: every
// subsequent column access emits its PRE (row conflicts), ACT (misses and
// conflicts), and RD command spans on the per-bank lane of the rank that
// served it. A nil tracer detaches. Tracing never perturbs timing.
func (s *System) AttachTracer(t telemetry.Tracer) {
	s.tracer = t
	s.namedRank, s.namedBank = nil, nil
	if t != nil {
		s.namedRank = make([]bool, s.cfg.TotalRanks())
		s.namedBank = make([]bool, s.cfg.TotalRanks()*s.cfg.BanksPerRank)
	}
}

// Tracer returns the attached tracer (nil when none).
func (s *System) Tracer() telemetry.Tracer { return s.tracer }

// traceAccess emits the command spans of one column access on bank loc.Bank
// of global rank g. preAt/actAt are zero for outcomes that skipped those
// commands; colAt is the column command time and dataAt the final burst
// arrival, so the RD span covers CAS latency, pin waits, and burst drain.
func (s *System) traceAccess(g int, loc Location, outcome RowOutcome, preAt, actAt, colAt, dataAt sim.Cycle, size int) {
	pid := telemetry.PIDDRAMBase + g
	if !s.namedRank[g] {
		s.namedRank[g] = true
		s.tracer.NameProcess(pid, fmt.Sprintf("DRAM rank %d", g))
	}
	if bi := g*s.cfg.BanksPerRank + loc.Bank; !s.namedBank[bi] {
		s.namedBank[bi] = true
		s.tracer.NameLane(pid, loc.Bank, fmt.Sprintf("bank %d", loc.Bank))
	}
	mhz := s.cfg.ClockMHz
	if outcome == RowConflict {
		s.tracer.Emit(telemetry.Event{
			Name: "PRE", Cat: "dram", Phase: telemetry.PhaseSpan,
			PID: pid, TID: loc.Bank,
			TS: uint64(preAt), Dur: uint64(s.cfg.TRP), ClockMHz: mhz,
		})
	}
	if outcome != RowHit {
		act := telemetry.Event{
			Name: "ACT", Cat: "dram", Phase: telemetry.PhaseSpan,
			PID: pid, TID: loc.Bank,
			TS: uint64(actAt), Dur: uint64(s.cfg.TRCD), ClockMHz: mhz,
		}
		act.AddArg(telemetry.Arg{Key: "row", Int: int64(loc.Row)})
		s.tracer.Emit(act)
	}
	rd := telemetry.Event{
		Name: "RD", Cat: "dram", Phase: telemetry.PhaseSpan,
		PID: pid, TID: loc.Bank,
		TS: uint64(colAt), Dur: uint64(dataAt - colAt), ClockMHz: mhz,
	}
	rd.AddArg(telemetry.Arg{Key: "outcome", Str: outcome.String()})
	rd.AddArg(telemetry.Arg{Key: "row", Int: int64(loc.Row)})
	rd.AddArg(telemetry.Arg{Key: "bytes", Int: int64(size)})
	s.tracer.Emit(rd)
}
