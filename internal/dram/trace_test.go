package dram

import (
	"testing"

	"fafnir/internal/telemetry"
)

// sameBankOtherRow finds an address decoding to addr0's channel/rank/bank but
// a different row, so back-to-back reads force a row-buffer conflict.
func sameBankOtherRow(t *testing.T, cfg Config, addr0 Addr) Addr {
	t.Helper()
	l0 := cfg.Decode(addr0)
	for a := addr0 + 512; a < addr0+Addr(1<<30); a += 512 {
		l := cfg.Decode(a)
		if l.Channel == l0.Channel && l.Rank == l0.Rank && l.Bank == l0.Bank && l.Row != l0.Row {
			return a
		}
	}
	t.Fatal("no conflicting address found")
	return 0
}

// TestTracerEmitsCommandSchedule drives a hit, a miss, and a conflict through
// one bank and checks the emitted PRE/ACT/RD spans: RD on every access,
// ACT only when the row was not open, PRE only on a conflict — and that
// tracing never changes a completion cycle.
func TestTracerEmitsCommandSchedule(t *testing.T) {
	cfg := DDR4()
	conflictAddr := sameBankOtherRow(t, cfg, 0)
	addrs := []Addr{0, 0, conflictAddr} // miss, hit, conflict

	ref := MustSystem(cfg)
	var want []uint64
	for _, a := range addrs {
		want = append(want, uint64(ref.Read(0, a, 512, DestLocal)))
	}

	traced := MustSystem(cfg)
	tr := telemetry.NewTrace()
	traced.AttachTracer(tr)
	if traced.Tracer() != tr {
		t.Fatal("Tracer() does not return the attached tracer")
	}
	for i, a := range addrs {
		if done := traced.Read(0, a, 512, DestLocal); uint64(done) != want[i] {
			t.Fatalf("read %d: traced run returned cycle %d, bare run %d", i, done, want[i])
		}
	}

	var pre, act, rd int
	var outcomes []string
	for _, ev := range tr.Events() {
		if ev.PID < telemetry.PIDDRAMBase {
			t.Fatalf("event %q on non-DRAM pid %d", ev.Name, ev.PID)
		}
		if ev.ClockMHz != cfg.ClockMHz {
			t.Fatalf("event %q has clock %v, want %v", ev.Name, ev.ClockMHz, cfg.ClockMHz)
		}
		switch ev.Name {
		case "PRE":
			pre++
			if ev.Dur != uint64(cfg.TRP) {
				t.Fatalf("PRE dur %d, want tRP %d", ev.Dur, cfg.TRP)
			}
		case "ACT":
			act++
			if ev.Dur != uint64(cfg.TRCD) {
				t.Fatalf("ACT dur %d, want tRCD %d", ev.Dur, cfg.TRCD)
			}
		case "RD":
			rd++
			if ev.NArgs < 3 || ev.Args[0].Key != "outcome" {
				t.Fatalf("RD lacks outcome annotation: %+v", ev)
			}
			outcomes = append(outcomes, ev.Args[0].Str)
		default:
			t.Fatalf("unexpected event %q", ev.Name)
		}
	}
	if rd != 3 || act != 2 || pre != 1 {
		t.Fatalf("got %d RD, %d ACT, %d PRE; want 3/2/1", rd, act, pre)
	}
	wantOutcomes := []string{"miss", "hit", "conflict"}
	for i, o := range outcomes {
		if o != wantOutcomes[i] {
			t.Fatalf("RD outcomes = %v, want %v", outcomes, wantOutcomes)
		}
	}

	// The exported stream must satisfy the structural validator.
	if _, err := telemetry.ValidateChrome(tr.ChromeJSON()); err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}

	// Detaching must stop emission without touching behaviour.
	traced.AttachTracer(nil)
	if traced.Tracer() != nil {
		t.Fatal("Tracer() non-nil after detach")
	}
	n := tr.Len()
	traced.Read(0, 0, 512, DestLocal)
	if tr.Len() != n {
		t.Fatal("detached system kept emitting")
	}
}

// TestTracerNamesLanesOnce checks the lazy lane naming: one process name per
// touched rank, one lane name per touched bank, regardless of access count.
func TestTracerNamesLanesOnce(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	tr := telemetry.NewTrace()
	s.AttachTracer(tr)
	for i := 0; i < 4; i++ {
		s.Read(0, 0, 512, DestLocal)
	}
	out := string(tr.ChromeJSON())
	g := cfg.GlobalRank(cfg.Decode(0))
	wantProc := `{"name":"process_name","ph":"M","pid":` // prefix only; count below
	var procs int
	for i := 0; i+len(wantProc) <= len(out); i++ {
		if out[i:i+len(wantProc)] == wantProc {
			procs++
		}
	}
	if procs != 1 {
		t.Fatalf("%d process_name records for one touched rank (global %d), want 1", procs, g)
	}
}
