package dram

import (
	"testing"

	"fafnir/internal/sim"
)

// TestAccessLog checks the observational contract of AttachLog: every
// top-level Read appends exactly one record with the caller's view of the
// request, writes are not recorded, logging never changes timing, and
// Reset/detach behave as documented.
func TestAccessLog(t *testing.T) {
	cfg := DDR4()

	// Reference run without a log.
	ref := MustSystem(cfg)
	var want []sim.Cycle
	addrs := []Addr{0, 512, 1024, 0, 8192 * 32}
	for _, a := range addrs {
		want = append(want, ref.Read(0, a, 512, DestLocal))
	}

	logged := MustSystem(cfg)
	log := &AccessLog{}
	logged.AttachLog(log)
	if logged.Log() != log {
		t.Fatal("Log() does not return the attached log")
	}
	for i, a := range addrs {
		done := logged.Read(0, a, 512, DestLocal)
		if done != want[i] {
			t.Fatalf("read %d: logged run returned cycle %d, bare run %d", i, done, want[i])
		}
	}
	if log.Len() != len(addrs) {
		t.Fatalf("log has %d records, want %d", log.Len(), len(addrs))
	}
	for i, rec := range log.Records() {
		if rec.Addr != addrs[i] || rec.Size != 512 || rec.Dest != DestLocal || rec.Issue != 0 {
			t.Fatalf("record %d = %+v, want addr %d size 512 local issue 0", i, rec, addrs[i])
		}
		if wantRank := cfg.GlobalRank(cfg.Decode(addrs[i])); rec.Rank != wantRank {
			t.Fatalf("record %d rank %d, want %d", i, rec.Rank, wantRank)
		}
		if rec.Done == 0 {
			t.Fatalf("record %d has zero completion", i)
		}
	}

	// Writes and zero-size reads must not be recorded.
	logged.Write(0, 0, 512)
	logged.Read(0, 0, 0, DestLocal)
	if log.Len() != len(addrs) {
		t.Fatalf("write or empty read leaked into the log: %d records", log.Len())
	}

	log.Reset()
	if log.Len() != 0 {
		t.Fatalf("Reset left %d records", log.Len())
	}

	// Detach: further reads are not recorded.
	logged.AttachLog(nil)
	logged.Read(0, 512, 512, DestHost)
	if log.Len() != 0 {
		t.Fatal("detached log still records")
	}
}
