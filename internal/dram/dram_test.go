package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fafnir/internal/sim"
)

func TestDDR4Valid(t *testing.T) {
	cfg := DDR4()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.TotalRanks() != 32 {
		t.Fatalf("TotalRanks = %d, want 32", cfg.TotalRanks())
	}
	if cfg.RanksPerChannel() != 8 {
		t.Fatalf("RanksPerChannel = %d, want 8", cfg.RanksPerChannel())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DDR4()
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.DIMMsPerChannel = -1 },
		func(c *Config) { c.RanksPerDIMM = 0 },
		func(c *Config) { c.BanksPerRank = 0 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.BurstBytes = 0 },
		func(c *Config) { c.InterleaveBytes = 32 },  // < burst
		func(c *Config) { c.RowBytes = 1000 },       // not multiple of interleave
		func(c *Config) { c.InterleaveBytes = 100 }, // not multiple of burst
	}
	for i, m := range mutations {
		cfg := base
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewSystemErrorsOnInvalid(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("NewSystem accepted invalid config")
	}
}

func TestGlobalRankRoundTrip(t *testing.T) {
	cfg := DDR4()
	for g := 0; g < cfg.TotalRanks(); g++ {
		loc := cfg.RankLocation(g)
		if back := cfg.GlobalRank(loc); back != g {
			t.Fatalf("rank %d -> %+v -> %d", g, loc, back)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := DDR4()
	for g := 0; g < cfg.TotalRanks(); g += 7 {
		for slot := uint64(0); slot < 200; slot += 13 {
			addr := cfg.MustEncode(g, slot)
			loc := cfg.Decode(addr)
			if got := cfg.GlobalRank(loc); got != g {
				t.Fatalf("Encode(%d,%d)=%d decoded to rank %d", g, slot, addr, got)
			}
		}
	}
}

func TestEncodeErrorsOutOfRange(t *testing.T) {
	cfg := DDR4()
	if _, err := cfg.Encode(cfg.TotalRanks(), 0); err == nil {
		t.Fatal("Encode accepted out-of-range rank")
	}
	if _, err := cfg.Encode(-1, 0); err == nil {
		t.Fatal("Encode accepted negative rank")
	}
}

func TestDecodeConsecutiveSlotsRotateRanks(t *testing.T) {
	cfg := DDR4()
	// Per Fig. 4b, consecutive 512 B vectors land on consecutive ranks.
	for i := 0; i < cfg.TotalRanks()*2; i++ {
		addr := Addr(i * cfg.InterleaveBytes)
		loc := cfg.Decode(addr)
		if got := cfg.GlobalRank(loc); got != i%cfg.TotalRanks() {
			t.Fatalf("slot %d on rank %d, want %d", i, got, i%cfg.TotalRanks())
		}
	}
}

func TestReadLatencyRowMissThenHit(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// First read of a closed bank: tRCD + tCAS + tBurst for one burst.
	done := s.Read(0, 0, cfg.BurstBytes, DestLocal)
	want := cfg.TRCD + cfg.TCAS + cfg.TBurst
	if done != want {
		t.Fatalf("first read done at %d, want %d", done, want)
	}
	if s.Stats().Counter("dram.row_misses") != 1 {
		t.Fatal("expected one row miss")
	}
	// Second read of the same row: row hit, no tRCD.
	done2 := s.Read(done, Addr(cfg.BurstBytes), cfg.BurstBytes, DestLocal)
	if hitLat := done2 - done; hitLat != cfg.TCAS+cfg.TBurst {
		t.Fatalf("hit latency %d, want %d", hitLat, cfg.TCAS+cfg.TBurst)
	}
	if s.Stats().Counter("dram.row_hits") != 1 {
		t.Fatal("expected one row hit")
	}
}

func TestReadRowConflict(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// Two rows of the same bank: slots within a rank stripe rows across
	// banks; the same bank repeats every BanksPerRank rows. Each row holds
	// RowBytes/InterleaveBytes slots.
	slotsPerRow := uint64(cfg.RowBytes / cfg.InterleaveBytes)
	sameBankSlot := slotsPerRow * uint64(cfg.BanksPerRank)
	a1 := cfg.MustEncode(0, 0)
	a2 := cfg.MustEncode(0, sameBankSlot)
	if l1, l2 := cfg.Decode(a1), cfg.Decode(a2); l1.Bank != l2.Bank || l1.Row == l2.Row {
		t.Fatalf("slot construction wrong: %+v vs %+v", l1, l2)
	}
	end1 := s.Read(0, a1, cfg.BurstBytes, DestLocal)
	s.Read(end1, a2, cfg.BurstBytes, DestLocal)
	if s.Stats().Counter("dram.row_conflicts") != 1 {
		t.Fatalf("conflicts = %d, want 1", s.Stats().Counter("dram.row_conflicts"))
	}
}

func TestRankParallelism(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// Reads to two different ranks issued at the same cycle complete at the
	// same cycle: no serialization across ranks.
	d0 := s.Read(0, cfg.MustEncode(0, 0), 512, DestLocal)
	d1 := s.Read(0, cfg.MustEncode(1, 0), 512, DestLocal)
	if d0 != d1 {
		t.Fatalf("parallel rank reads finished at %d and %d", d0, d1)
	}
}

func TestSameRankSerializesOnPins(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	d0 := s.Read(0, cfg.MustEncode(0, 0), 512, DestLocal)
	d1 := s.Read(0, cfg.MustEncode(0, 1), 512, DestLocal)
	if d1 <= d0 {
		t.Fatalf("second read on same rank finished at %d, first at %d", d1, d0)
	}
}

func TestHostDestinationUsesChannelBus(t *testing.T) {
	cfg := DDR4()
	sLocal := MustSystem(cfg)
	sHost := MustSystem(cfg)
	// Two ranks on the same channel, both streaming to the host, must
	// serialize on the channel bus; locally they complete in parallel.
	ld0 := sLocal.Read(0, cfg.MustEncode(0, 0), 512, DestLocal)
	ld1 := sLocal.Read(0, cfg.MustEncode(1, 0), 512, DestLocal)
	hd0 := sHost.Read(0, cfg.MustEncode(0, 0), 512, DestHost)
	hd1 := sHost.Read(0, cfg.MustEncode(1, 0), 512, DestHost)
	if ld0 != ld1 {
		t.Fatal("local reads did not overlap")
	}
	if hd1 <= hd0 {
		t.Fatalf("host reads did not serialize: %d then %d", hd0, hd1)
	}
	if sHost.Stats().Counter("dram.bytes_to_host") != 1024 {
		t.Fatalf("bytes_to_host = %d", sHost.Stats().Counter("dram.bytes_to_host"))
	}
	if sLocal.Stats().Counter("dram.bytes_to_host") != 0 {
		t.Fatal("local read counted as host bytes")
	}
}

func TestReadZeroSize(t *testing.T) {
	s := MustSystem(DDR4())
	if done := s.Read(42, 0, 0, DestLocal); done != 42 {
		t.Fatalf("zero-size read advanced time to %d", done)
	}
}

func TestReadSpanningSlots(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// A read of two interleave slots touches two ranks.
	s.Read(0, 0, 2*cfg.InterleaveBytes, DestLocal)
	r0, _, _, _, _ := s.RankStats(0)
	r1, _, _, _, _ := s.RankStats(1)
	if r0 != 1 || r1 != 1 {
		t.Fatalf("rank reads = %d, %d; want 1, 1", r0, r1)
	}
}

func TestReserveChannel(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	end := s.ReserveChannel(10, 0, 5)
	if end != 15 {
		t.Fatalf("reservation end %d", end)
	}
	end2 := s.ReserveChannel(10, 0, 5)
	if end2 != 20 {
		t.Fatalf("second reservation end %d, want 20 (serialized)", end2)
	}
	if s.ChannelFreeAt(0) != 20 {
		t.Fatalf("ChannelFreeAt = %d", s.ChannelFreeAt(0))
	}
	// Different channel unaffected.
	if s.ChannelFreeAt(1) != 0 {
		t.Fatal("other channel was reserved")
	}
}

func TestTransferCycles(t *testing.T) {
	cfg := DDR4()
	if got := cfg.TransferCycles(512); got != sim.Cycle(8)*cfg.TBurst {
		t.Fatalf("TransferCycles(512) = %d", got)
	}
	if got := cfg.TransferCycles(1); got != cfg.TBurst {
		t.Fatalf("TransferCycles(1) = %d", got)
	}
}

func TestStreamReadRowFriendly(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// Streaming 16 consecutive slots of one rank: only one activate per row.
	slots := 16
	if _, err := s.StreamRead(0, 0, 0, slots*cfg.InterleaveBytes, DestLocal); err != nil {
		t.Fatal(err)
	}
	slotsPerRow := cfg.RowBytes / cfg.InterleaveBytes
	wantActivates := uint64((slots + slotsPerRow - 1) / slotsPerRow)
	gotActivates := s.Stats().Counter("dram.row_misses") + s.Stats().Counter("dram.row_conflicts")
	if gotActivates != wantActivates {
		t.Fatalf("activates = %d, want %d", gotActivates, wantActivates)
	}
}

func TestReset(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	s.Read(0, 0, 512, DestHost)
	s.Reset()
	if s.Stats().Counter("dram.reads") != 0 {
		t.Fatal("stats survived reset")
	}
	if s.ChannelFreeAt(0) != 0 || s.RankFreeAt(0) != 0 {
		t.Fatal("resources survived reset")
	}
	// First read after reset is a fresh row miss again.
	s.Read(0, 0, 64, DestLocal)
	if s.Stats().Counter("dram.row_misses") != 1 {
		t.Fatal("row state survived reset")
	}
}

// Property: Decode of Encode always returns the requested rank, and the
// column always lies inside the row.
func TestQuickEncodeDecode(t *testing.T) {
	cfg := DDR4()
	f := func(rank uint8, slot uint16) bool {
		g := int(rank) % cfg.TotalRanks()
		addr := cfg.MustEncode(g, uint64(slot))
		loc := cfg.Decode(addr)
		if cfg.GlobalRank(loc) != g {
			return false
		}
		return loc.Col >= 0 && loc.Col < cfg.RowBytes && loc.Bank < cfg.BanksPerRank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion time is never before the issue time, and issuing the
// same read later never completes earlier.
func TestQuickReadMonotone(t *testing.T) {
	cfg := DDR4()
	f := func(rank uint8, slot uint8, delay uint8) bool {
		g := int(rank) % cfg.TotalRanks()
		addr := cfg.MustEncode(g, uint64(slot))
		s1 := MustSystem(cfg)
		d1 := s1.Read(0, addr, 512, DestLocal)
		s2 := MustSystem(cfg)
		d2 := s2.Read(sim.Cycle(delay), addr, 512, DestLocal)
		return d1 >= 0 && d2 >= sim.Cycle(delay) && d2 >= d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func TestHBM2Config(t *testing.T) {
	cfg := HBM2()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// 32 pseudo channels, each its own rank and bus.
	if cfg.TotalRanks() != 32 {
		t.Fatalf("TotalRanks = %d, want 32", cfg.TotalRanks())
	}
	if cfg.Channels != 32 {
		t.Fatalf("Channels = %d, want 32", cfg.Channels)
	}
	// Same 512 B gather spread over HBM is faster than over DDR4 (more
	// channel buses, faster clock relative to the 200 MHz reporting base).
	ddr := MustSystem(DDR4())
	hbm := MustSystem(cfg)
	var ddrDone, hbmDone sim.Cycle
	for r := 0; r < 32; r++ {
		ddrDone = sim.Max(ddrDone, ddr.Read(0, DDR4().MustEncode(r, 0), 512, DestHost))
		hbmDone = sim.Max(hbmDone, hbm.Read(0, cfg.MustEncode(r, 0), 512, DestHost))
	}
	ddrSec := sim.Seconds(ddrDone, DDR4().ClockMHz)
	hbmSec := sim.Seconds(hbmDone, cfg.ClockMHz)
	if hbmSec >= ddrSec {
		t.Fatalf("HBM gather %.2e s not faster than DDR4 %.2e s", hbmSec, ddrSec)
	}
}

func TestClosedPagePolicy(t *testing.T) {
	cfg := DDR4()
	cfg.ClosedPage = true
	s := MustSystem(cfg)
	// Two back-to-back reads of the same row: second one is NOT a hit
	// under closed-page.
	s.Read(0, 0, cfg.BurstBytes, DestLocal)
	s.Read(100, Addr(cfg.BurstBytes), cfg.BurstBytes, DestLocal)
	if s.Stats().Counter("dram.row_hits") != 0 {
		t.Fatal("closed-page policy recorded a row hit")
	}
	if s.Stats().Counter("dram.row_misses") != 2 {
		t.Fatalf("misses = %d, want 2", s.Stats().Counter("dram.row_misses"))
	}
}

func TestActivateThrottling(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// Back-to-back activates to different banks of one rank must respect
	// tRRD and tFAW even though the banks themselves are free.
	slotsPerRow := uint64(cfg.RowBytes / cfg.InterleaveBytes)
	var last sim.Cycle
	const activates = 16
	for i := 0; i < activates; i++ {
		// Each slot lands in a different bank (rows stripe across banks).
		addr := cfg.MustEncode(0, uint64(i)*slotsPerRow)
		last = s.Read(0, addr, cfg.BurstBytes, DestLocal)
	}
	// 16 activates span at least three full tFAW windows regardless of how
	// many banks are free: a_15 >= a_11 + tFAW >= ... >= a_3 + 3*tFAW.
	if min := 3 * cfg.TFAW; last < min {
		t.Fatalf("16 activates completed at %d, below the tFAW floor %d", last, min)
	}
	// And the same pattern without throttling would finish much earlier.
	free := cfg
	free.TRRD = 0
	free.TFAW = 0
	s2 := MustSystem(free)
	var last2 sim.Cycle
	for i := 0; i < activates; i++ {
		addr := free.MustEncode(0, uint64(i)*slotsPerRow)
		last2 = s2.Read(0, addr, free.BurstBytes, DestLocal)
	}
	if last2 >= last {
		t.Fatalf("throttling had no effect: %d vs %d", last2, last)
	}
}

func TestRefreshDelays(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// An access landing inside the first refresh window is pushed out.
	inWindow := cfg.TREFI + cfg.TRFC/2
	done := s.Read(inWindow, 0, cfg.BurstBytes, DestLocal)
	floor := cfg.TREFI + cfg.TRFC + cfg.TRCD + cfg.TCAS + cfg.TBurst
	if done < floor {
		t.Fatalf("refresh-window read done at %d, want >= %d", done, floor)
	}
	if s.Stats().Counter("dram.refresh_delays") != 1 {
		t.Fatalf("refresh_delays = %d", s.Stats().Counter("dram.refresh_delays"))
	}
	// An access just after the window is unaffected.
	clear := cfg.TREFI + cfg.TRFC + 100
	s2 := MustSystem(cfg)
	done2 := s2.Read(clear, 0, cfg.BurstBytes, DestLocal)
	if done2 != clear+cfg.TRCD+cfg.TCAS+cfg.TBurst {
		t.Fatalf("clear read done at %d", done2)
	}
	if s2.Stats().Counter("dram.refresh_delays") != 0 {
		t.Fatal("clear read counted a refresh delay")
	}
	// Refresh disabled: no delay even inside the nominal window.
	off := cfg
	off.TREFI = 0
	s3 := MustSystem(off)
	done3 := s3.Read(inWindow, 0, off.BurstBytes, DestLocal)
	if done3 != inWindow+off.TRCD+off.TCAS+off.TBurst {
		t.Fatalf("refresh-off read done at %d", done3)
	}
}

func TestRefreshBeforeFirstWindow(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	// Early accesses (before the first TREFI) never see refresh.
	done := s.Read(0, 0, cfg.BurstBytes, DestLocal)
	if done != cfg.TRCD+cfg.TCAS+cfg.TBurst {
		t.Fatalf("early read done at %d", done)
	}
}

func TestWriteBasics(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	done := s.Write(0, 0, 512)
	if done == 0 {
		t.Fatal("write took no time")
	}
	if s.Stats().Counter("dram.writes") != 1 {
		t.Fatalf("writes = %d", s.Stats().Counter("dram.writes"))
	}
	if s.Stats().Counter("dram.bytes_written") != 512 {
		t.Fatalf("bytes_written = %d", s.Stats().Counter("dram.bytes_written"))
	}
	if got := s.Write(5, 0, 0); got != 5 {
		t.Fatalf("zero-size write advanced time to %d", got)
	}
}

func TestStreamWriteOccupiesRank(t *testing.T) {
	cfg := DDR4()
	s := MustSystem(cfg)
	end, err := s.StreamWrite(0, 3, 0, 4*cfg.InterleaveBytes)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("stream write took no time")
	}
	if s.RankFreeAt(3) == 0 {
		t.Fatal("rank pins not reserved by writes")
	}
	if s.RankFreeAt(0) != 0 {
		t.Fatal("other rank affected")
	}
}
