package serve

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"fafnir/internal/embedding"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// BatchStats describes the hardware batch that served a request. Requests
// coalesced into the same flush share one BatchStats value.
type BatchStats struct {
	// BatchQueries is the number of queries in the flushed batch.
	BatchQueries int
	// Requests is the number of concurrent requests coalesced into it.
	Requests int
	// MemoryReads is the number of DRAM vector reads the batch issued after
	// cross-request deduplication.
	MemoryReads int
	// NaiveReads is what the batch would have read without deduplication
	// (the sum of all query sizes).
	NaiveReads int
	// TotalCycles is the simulated end-to-end batch latency (PE clock).
	TotalCycles sim.Cycle
	// BytesRead is the batch's DRAM traffic.
	BytesRead uint64
	// Isolated marks a result recomputed alone after its shared batch
	// failed (see the isolation retry in flush).
	Isolated bool
}

// result is what the flusher delivers back to one waiting Submit call.
type result struct {
	outputs []tensor.Vector
	stats   BatchStats
	err     error
}

// request is one queued Submit call.
type request struct {
	ctx     context.Context
	queries []embedding.Query
	op      tensor.ReduceOp
	enq     time.Time
	done    chan result // buffered 1; the flusher never blocks on delivery
}

func (r *request) deliver(res result) {
	select {
	case r.done <- res:
	default:
	}
}

// Coalescer accumulates concurrent lookup requests and flushes them through
// the backend as shared hardware batches. It is safe for concurrent use; the
// backend itself is only ever called from the single flusher goroutine, so a
// Backend need not be concurrency-safe (fafnir.System is not).
//
// Flush policy: a batch is cut as the longest queue prefix that shares one
// pooling op, capped at BatchCapacity queries. It flushes immediately when it
// is full or when requests with a different op wait behind it; otherwise the
// flusher lingers up to Config.Linger past the oldest request's enqueue time
// before flushing a partial batch.
type Coalescer struct {
	cfg Config
	be  Backend
	m   *Metrics

	mu     sync.Mutex
	queue  []*request
	queued int // queries across queue
	closed bool

	kick    chan struct{} // buffered 1: wakes the flusher
	drained chan struct{} // closed when the flusher exits
}

// NewCoalescer starts a coalescer over the backend. A nil Metrics allocates
// a private one (retrievable via Metrics()).
func NewCoalescer(cfg Config, be Backend, m *Metrics) (*Coalescer, error) {
	if be == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if m == nil {
		m = NewMetrics()
	}
	c := &Coalescer{
		cfg:     cfg,
		be:      be,
		m:       m,
		kick:    make(chan struct{}, 1),
		drained: make(chan struct{}),
	}
	go c.run()
	return c, nil
}

// Metrics returns the live metrics the coalescer reports into.
func (c *Coalescer) Metrics() *Metrics { return c.m }

// Config returns the coalescer's configuration with defaults resolved.
func (c *Coalescer) Config() Config { return c.cfg }

// Submit queues the request's queries for the next shared batch and blocks
// until the flusher delivers the result or ctx expires. All queries of one
// call travel in the same batch and resolve together. It fails fast with
// ErrOverloaded when the admission queue is full and ErrDraining after Close.
func (c *Coalescer) Submit(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query) ([]tensor.Vector, BatchStats, error) {
	if len(queries) == 0 {
		return nil, BatchStats{}, fmt.Errorf("serve: empty request")
	}
	if !op.Valid() {
		return nil, BatchStats{}, fmt.Errorf("serve: invalid reduce op %d", op)
	}
	req := &request{ctx: ctx, queries: queries, op: op, enq: time.Now(), done: make(chan result, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, BatchStats{}, ErrDraining
	}
	// Admission control: bounded queue. A request the queue could never
	// hold is still admitted when the queue is empty, so oversized requests
	// make progress instead of starving forever.
	if c.queued > 0 && c.queued+len(queries) > c.cfg.MaxQueued {
		c.mu.Unlock()
		return nil, BatchStats{}, ErrOverloaded
	}
	c.queue = append(c.queue, req)
	c.queued += len(queries)
	depth := c.queued
	c.mu.Unlock()

	c.m.QueueDepth.Set(int64(depth))
	c.kickFlusher()

	select {
	case res := <-req.done:
		return res.outputs, res.stats, res.err
	case <-ctx.Done():
		// The flusher may still compute this request's batch; delivery into
		// the buffered channel is dropped on the floor.
		return nil, BatchStats{}, ctx.Err()
	}
}

// Close stops admitting new requests, flushes everything still queued, and
// waits for the flusher to exit (or ctx to expire). It is idempotent.
func (c *Coalescer) Close(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.kickFlusher()
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coalescer) kickFlusher() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// run is the flusher: the single goroutine that cuts batches off the queue
// and executes them serially against the backend.
func (c *Coalescer) run() {
	defer close(c.drained)
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			<-c.kick
			continue
		}

		// Cut the candidate prefix: same op, at most BatchCapacity queries.
		// A request is never split across batches; one request larger than
		// the capacity forms its own batch (the engine splits it into
		// hardware batches internally).
		op := c.queue[0].op
		n, nq := 0, 0
		for _, r := range c.queue {
			if r.op != op {
				break
			}
			if n > 0 && nq+len(r.queries) > c.cfg.BatchCapacity {
				break
			}
			n++
			nq += len(r.queries)
			if nq >= c.cfg.BatchCapacity {
				break
			}
		}

		// Flush now when the batch is full, when differently-shaped work
		// waits behind the prefix, or when draining; otherwise linger.
		ready := nq >= c.cfg.BatchCapacity || n < len(c.queue) || c.closed
		if !ready {
			wait := c.cfg.Linger - time.Since(c.queue[0].enq)
			if wait > 0 {
				c.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-c.kick:
					timer.Stop()
				case <-timer.C:
				}
				continue
			}
		}

		reqs := slices.Clone(c.queue[:n])
		c.queue = slices.Delete(c.queue, 0, n)
		c.queued -= nq
		depth := c.queued
		c.mu.Unlock()

		c.m.QueueDepth.Set(int64(depth))
		c.flush(op, reqs)
	}
}

// flush executes one shared batch and demultiplexes per-request results.
func (c *Coalescer) flush(op tensor.ReduceOp, reqs []*request) {
	// Requests whose deadline expired while queued are dropped before any
	// engine work is spent on them; their Submit already returned.
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	queries := make([]embedding.Query, 0, c.cfg.BatchCapacity)
	for _, r := range live {
		queries = append(queries, r.queries...)
	}
	b := embedding.Batch{Queries: queries, Op: op}

	res, err := c.be.Lookup(b)
	if err != nil {
		c.isolate(op, live, err)
		return
	}
	stats := BatchStats{
		BatchQueries: len(queries),
		Requests:     len(live),
		MemoryReads:  res.MemoryReads,
		NaiveReads:   b.TotalAccesses(),
		TotalCycles:  res.TotalCycles,
		BytesRead:    res.BytesRead,
	}
	c.m.observeBatch(stats)
	off := 0
	for _, r := range live {
		out := res.Outputs[off : off+len(r.queries)]
		off += len(r.queries)
		r.deliver(result{outputs: out, stats: stats})
	}
}

// isolate handles a failed shared batch: each request is re-run alone, so a
// structured engine error (a dark rank, exhausted retries) reaches only the
// caller whose queries actually trip it, and innocent co-travellers still
// get their answers.
func (c *Coalescer) isolate(op tensor.ReduceOp, reqs []*request, batchErr error) {
	if len(reqs) == 1 {
		reqs[0].deliver(result{err: batchErr})
		return
	}
	c.m.IsolationRetries.Add(1)
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		res, err := c.be.Lookup(embedding.Batch{Queries: r.queries, Op: op})
		if err != nil {
			r.deliver(result{err: err})
			continue
		}
		stats := BatchStats{
			BatchQueries: len(r.queries),
			Requests:     1,
			MemoryReads:  res.MemoryReads,
			NaiveReads:   embedding.Batch{Queries: r.queries}.TotalAccesses(),
			TotalCycles:  res.TotalCycles,
			BytesRead:    res.BytesRead,
			Isolated:     true,
		}
		c.m.observeBatch(stats)
		r.deliver(result{outputs: res.Outputs, stats: stats})
	}
}
