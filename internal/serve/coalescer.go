package serve

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"fafnir/internal/cache"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// TraceAttacher is the optional backend capability behind ?debug=trace: a
// backend that can thread a telemetry tracer through its engines.
// *fafnir.System implements it. The coalescer only attaches and detaches
// from its single flusher goroutine, matching the backend's concurrency
// contract.
type TraceAttacher interface {
	AttachTracer(telemetry.Tracer)
}

// SpanContexter is the optional backend capability behind span parentage: a
// backend that can link the trace spans it emits under a serving-layer
// parent span ID. *fafnir.System, *router.Fleet, and *router.Federation
// implement it. The coalescer sets the context only from its single flusher
// goroutine, immediately before each Lookup, so a request's spans form one
// parent-linked chain from the HTTP enqueue down to the hardware batch.
type SpanContexter interface {
	SetSpanContext(parent uint64)
}

// MemoryStatsSource is the optional backend capability for row-buffer
// attribution: a backend exposing its memory system's cumulative counters by
// name ("dram.row_hits", "dram.row_misses", "dram.row_conflicts").
// *fafnir.System implements it. The coalescer delta-folds the counters into
// the registry after each flush, again only from the flusher goroutine.
type MemoryStatsSource interface {
	MemoryCounter(name string) uint64
}

// BatchStats describes the hardware batch that served a request. Requests
// coalesced into the same flush share one BatchStats value.
type BatchStats struct {
	// BatchQueries is the number of queries in the flushed batch.
	BatchQueries int
	// Requests is the number of concurrent requests coalesced into it.
	Requests int
	// MemoryReads is the number of DRAM vector reads the batch issued after
	// cross-request deduplication — and, when the hot-embedding cache is on,
	// after cached indices were stripped from the hardware batch.
	MemoryReads int
	// NaiveReads is what the batch would have read without deduplication
	// (the sum of all query sizes).
	NaiveReads int
	// TotalCycles is the simulated end-to-end batch latency (PE clock).
	TotalCycles sim.Cycle
	// BytesRead is the batch's DRAM traffic.
	BytesRead uint64
	// Reduces and Compares are the batch's PE action totals across the
	// reduction tree.
	Reduces  int
	Compares int
	// CacheHits and CacheMisses are the hot-embedding cache consultations
	// this batch made at build time; both zero when the cache is off.
	CacheHits   int
	CacheMisses int
	// Isolated marks a result recomputed alone after its shared batch
	// failed (see the isolation retry in flush).
	Isolated bool
	// QueryOffset is this request's first query's index within the flushed
	// batch; the HTTP layer uses it to map the batch-level degraded report's
	// query indices back into request coordinates.
	QueryOffset int
	// RequestID is the coalescer-assigned ID of the request this stats copy
	// was delivered to: 1, 2, … in admission order, deterministic for a
	// deterministic arrival order. It is the span ID rooting the request's
	// parent-linked trace chain and the key the SLO flight recorder files
	// slow requests under.
	RequestID uint64
	// Breakdown is this request's per-stage latency attribution; nil only
	// when the request never reached a flush (admission or decode errors).
	Breakdown *Breakdown
	// Degraded carries the batch's degraded report when the backend absorbed
	// faults while serving it (rank remaps, shard failover, lost data); nil
	// for a clean batch. Requests coalesced into the same flush share one
	// report — degradation anywhere in the batch flags every rider, and the
	// per-request response filters the query-level detail by QueryOffset.
	Degraded *core.DegradedReport
}

// result is what the flusher delivers back to one waiting Submit call.
type result struct {
	outputs []tensor.Vector
	stats   BatchStats
	trace   []byte // Chrome trace JSON of the serving batch (debug requests)
	err     error
}

// request is one queued Submit call.
type request struct {
	ctx     context.Context
	id      uint64 // coalescer-assigned, in admission order; doubles as span ID
	queries []embedding.Query
	op      tensor.ReduceOp
	pri     Priority
	enq     time.Time
	debug   bool        // caller asked for the batch's trace echo
	done    chan result // buffered 1; the flusher never blocks on delivery
}

func (r *request) deliver(res result) {
	select {
	case r.done <- res:
	default:
	}
}

// deadlineSlack reports how much of the request's deadline remains at now;
// requests without a deadline report effectively infinite slack.
func (r *request) deadlineSlack(now time.Time) time.Duration {
	d, ok := r.ctx.Deadline()
	if !ok {
		return time.Duration(math.MaxInt64)
	}
	return d.Sub(now)
}

// Coalescer accumulates concurrent lookup requests and flushes them through
// the backend as shared hardware batches. It is safe for concurrent use; the
// backend itself is only ever called from the single flusher goroutine, so a
// Backend need not be concurrency-safe (fafnir.System is not).
//
// Flush policy: a batch is cut as the longest queue prefix that shares one
// pooling op, capped at BatchCapacity queries. It flushes immediately when it
// is full or when requests with a different op wait behind it; otherwise the
// flusher lingers up to Config.Linger past the oldest request's enqueue time
// before flushing a partial batch.
//
// With Config.QoS enabled, the single queue becomes three priority lanes.
// Admission sheds low-priority work first (above ShedLowWater x MaxQueued),
// the flusher cuts batches from the highest non-empty lane, and a lower
// lane whose head request is about to miss its deadline (slack below
// Config.DeadlineSlack) preempts, bounding starvation. A cut batch tops up
// with same-op work from other lanes, so QoS never reduces coalescing.
//
// With Config.CacheBytes > 0 and a backend exposing RowSource, the flusher
// consults a hot-embedding cache at batch build time: cached indices are
// stripped from the hardware batch, the backend reads only the misses, and
// cached rows merge back into the pooled outputs bit-exactly (see
// docs/ARCHITECTURE.md §14 for the determinism argument).
type Coalescer struct {
	cfg Config
	be  Backend
	m   *Metrics

	// tracer receives request-lifecycle events (enqueue/flush/respond) on
	// the serve timeline when Config.Tracer is set; nil costs one check.
	// Serve events carry wall-clock nanoseconds since t0 (ClockMHz 1000).
	tracer telemetry.Tracer
	t0     time.Time

	// attacher/spanner/memStats are the backend's optional capabilities,
	// resolved once at construction; all are exercised only from the flusher
	// goroutine. lastRow* hold the previously folded cumulative counters;
	// flushSeq numbers flushes for span-ID derivation.
	attacher      TraceAttacher
	spanner       SpanContexter
	memStats      MemoryStatsSource
	flushSeq      uint64
	lastRowHits   uint64
	lastRowMisses uint64
	lastRowConfl  uint64

	// caches is the hot-embedding cache, one CLOCK ring per owner shard
	// (one ring total for an unsharded backend); nil when the cache is off.
	// rows/owner are the backend capabilities behind it. All cache state is
	// touched only by the flusher goroutine. lastCache* hold the previously
	// folded cumulative cache counters.
	caches         []*cache.Cache
	rows           RowSource
	owner          ShardOwner
	dim            int
	lastCacheEvict uint64
	lastCacheIns   uint64

	mu     sync.Mutex
	nextID uint64 // last request ID handed out; admitted requests only
	lanes  [numLanes][]*request
	queued int // queries across all lanes
	closed bool

	kick    chan struct{} // buffered 1: wakes the flusher
	drained chan struct{} // closed when the flusher exits
}

// NewCoalescer starts a coalescer over the backend. A nil Metrics allocates
// a private one (retrievable via Metrics()).
func NewCoalescer(cfg Config, be Backend, m *Metrics) (*Coalescer, error) {
	if be == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if m == nil {
		m = NewMetrics()
	}
	c := &Coalescer{
		cfg:     cfg,
		be:      be,
		m:       m,
		tracer:  cfg.Tracer,
		t0:      time.Now(),
		kick:    make(chan struct{}, 1),
		drained: make(chan struct{}),
	}
	c.attacher, _ = be.(TraceAttacher)
	c.spanner, _ = be.(SpanContexter)
	c.memStats, _ = be.(MemoryStatsSource)
	if cfg.CacheBytes > 0 {
		rows, ok := be.(RowSource)
		if !ok {
			return nil, fmt.Errorf("serve: Config.CacheBytes = %d but backend %T does not expose embedding rows (RowSource)", cfg.CacheBytes, be)
		}
		c.rows = rows
		c.dim = rows.Dim()
		nShards := 1
		if so, ok := be.(ShardOwner); ok {
			c.owner = so
			nShards = so.Shards()
		}
		c.caches = make([]*cache.Cache, nShards)
		for i := range c.caches {
			// Each shard's ring gets an even budget slice and its own seeded
			// hand position (splitmix64 increment keeps seeds well spread).
			cc, err := cache.New(cache.Config{
				Bytes: cfg.CacheBytes / int64(nShards),
				Dim:   c.dim,
				Seed:  cfg.CacheSeed + uint64(i)*0x9e3779b97f4a7c15,
			})
			if err != nil {
				return nil, fmt.Errorf("serve: cache shard %d: %w", i, err)
			}
			c.caches[i] = cc
		}
	}
	if c.tracer != nil {
		c.tracer.NameProcess(telemetry.PIDServe, "serve")
		c.tracer.NameLane(telemetry.PIDServe, telemetry.TIDServeRequests, "requests")
		c.tracer.NameLane(telemetry.PIDServe, telemetry.TIDServeFlusher, "flusher")
		if c.caches != nil {
			c.tracer.NameLane(telemetry.PIDServe, telemetry.TIDServeCache, "cache")
		}
	}
	go c.run()
	return c, nil
}

// emit records one serve-lifecycle event at wall-clock nanoseconds since the
// coalescer started; ClockMHz 1000 maps nanoseconds onto the microsecond
// export timeline.
func (c *Coalescer) emit(name string, tid int, phase byte, start time.Time, dur time.Duration, args ...telemetry.Arg) {
	c.emitTo(c.tracer, name, tid, phase, start, dur, args...)
}

// emitTo is emit onto an explicit tracer — the global serve timeline or a
// per-batch ?debug=trace echo collector.
func (c *Coalescer) emitTo(t telemetry.Tracer, name string, tid int, phase byte, start time.Time, dur time.Duration, args ...telemetry.Arg) {
	ev := telemetry.Event{
		Name: name, Cat: "serve", Phase: phase,
		PID: telemetry.PIDServe, TID: tid,
		TS: uint64(start.Sub(c.t0)), ClockMHz: 1000,
	}
	if phase == telemetry.PhaseSpan {
		ev.Dur = uint64(dur)
	}
	for _, a := range args {
		ev.AddArg(a)
	}
	t.Emit(ev)
}

// nameServeLanes names the serve process and lanes on a per-batch trace echo
// so the request/flush spans it carries render like the global timeline's.
func nameServeLanes(t telemetry.Tracer) {
	t.NameProcess(telemetry.PIDServe, "serve")
	t.NameLane(telemetry.PIDServe, telemetry.TIDServeRequests, "requests")
	t.NameLane(telemetry.PIDServe, telemetry.TIDServeFlusher, "flusher")
}

// Metrics returns the live metrics the coalescer reports into.
func (c *Coalescer) Metrics() *Metrics { return c.m }

// Config returns the coalescer's configuration with defaults resolved.
func (c *Coalescer) Config() Config { return c.cfg }

// Submit queues the request's queries for the next shared batch and blocks
// until the flusher delivers the result or ctx expires. All queries of one
// call travel in the same batch and resolve together. It fails fast with
// ErrOverloaded when the admission queue is full and ErrDraining after Close.
// Submit travels the normal QoS lane; see SubmitPriority.
func (c *Coalescer) Submit(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query) ([]tensor.Vector, BatchStats, error) {
	out, stats, _, err := c.submit(ctx, op, queries, PriorityNormal, false)
	return out, stats, err
}

// SubmitPriority is Submit on an explicit QoS lane. With Config.QoS disabled
// the priority is ignored and every request travels the normal lane.
func (c *Coalescer) SubmitPriority(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query, pri Priority) ([]tensor.Vector, BatchStats, error) {
	out, stats, _, err := c.submit(ctx, op, queries, pri, false)
	return out, stats, err
}

// SubmitTraced is Submit with a trace echo: when the backend implements
// TraceAttacher, the returned bytes are the Chrome trace-event JSON of the
// flushed batch that served this request — including the engine and DRAM
// events of any co-travelling requests coalesced into it. The trace is nil
// when the backend cannot trace.
func (c *Coalescer) SubmitTraced(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query) ([]tensor.Vector, BatchStats, []byte, error) {
	return c.submit(ctx, op, queries, PriorityNormal, true)
}

// SubmitTracedPriority is SubmitTraced on an explicit QoS lane.
func (c *Coalescer) SubmitTracedPriority(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query, pri Priority) ([]tensor.Vector, BatchStats, []byte, error) {
	return c.submit(ctx, op, queries, pri, true)
}

func (c *Coalescer) submit(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query, pri Priority, debug bool) ([]tensor.Vector, BatchStats, []byte, error) {
	if len(queries) == 0 {
		return nil, BatchStats{}, nil, fmt.Errorf("serve: empty request")
	}
	if !op.Valid() {
		return nil, BatchStats{}, nil, fmt.Errorf("serve: invalid reduce op %d", op)
	}
	if pri < 0 || pri >= numLanes {
		return nil, BatchStats{}, nil, fmt.Errorf("serve: invalid priority %d", pri)
	}
	if !c.cfg.QoS {
		// QoS off: one lane, one queue — behavior-identical to the
		// pre-lane coalescer.
		pri = PriorityNormal
	}
	req := &request{ctx: ctx, queries: queries, op: op, pri: pri, enq: time.Now(), debug: debug, done: make(chan result, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, BatchStats{}, nil, ErrDraining
	}
	// Admission control: bounded queue. A request the queue could never
	// hold is still admitted when the queue is empty, so oversized requests
	// make progress instead of starving forever. Low-priority work sheds
	// early — at the low-water fraction of the bound — so overload consumes
	// best-effort traffic before it touches anything latency-critical.
	limit := c.cfg.MaxQueued
	if c.cfg.QoS && pri == PriorityLow {
		limit = int(c.cfg.ShedLowWater * float64(c.cfg.MaxQueued))
	}
	if c.queued > 0 && c.queued+len(queries) > limit {
		c.mu.Unlock()
		c.m.Shed.At(int(pri)).Add(1)
		return nil, BatchStats{}, nil, ErrOverloaded
	}
	c.nextID++
	req.id = c.nextID
	c.lanes[pri] = append(c.lanes[pri], req)
	c.queued += len(queries)
	depth := c.queued
	c.mu.Unlock()

	if c.tracer != nil {
		c.emit("enqueue", telemetry.TIDServeRequests, telemetry.PhaseInstant, req.enq, 0,
			telemetry.Arg{Key: "req", Int: int64(req.id)},
			telemetry.Arg{Key: "queries", Int: int64(len(queries))},
			telemetry.Arg{Key: "lane", Str: pri.String()},
			telemetry.Arg{Key: "depth", Int: int64(depth)})
	}
	c.m.QueueDepth.Set(int64(depth))
	c.kickFlusher()

	select {
	case res := <-req.done:
		return res.outputs, res.stats, res.trace, res.err
	case <-ctx.Done():
		// The flusher may still compute this request's batch; delivery into
		// the buffered channel is dropped on the floor.
		return nil, BatchStats{}, nil, ctx.Err()
	}
}

// Close stops admitting new requests, flushes everything still queued, and
// waits for the flusher to exit (or ctx to expire). It is idempotent.
func (c *Coalescer) Close(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.kickFlusher()
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coalescer) kickFlusher() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// pickLane chooses the lane the next batch is cut from: the highest-priority
// non-empty lane, unless a lower lane's head request is about to miss its
// deadline (slack below Config.DeadlineSlack and tighter than the chosen
// head's), in which case the urgent lane preempts. Callers hold c.mu.
func (c *Coalescer) pickLane(now time.Time) int {
	chosen := -1
	for l := 0; l < int(numLanes); l++ {
		if len(c.lanes[l]) > 0 {
			chosen = l
			break
		}
	}
	if chosen < 0 || !c.cfg.QoS {
		return chosen
	}
	bestSlack := c.lanes[chosen][0].deadlineSlack(now)
	for l := chosen + 1; l < int(numLanes); l++ {
		if len(c.lanes[l]) == 0 {
			continue
		}
		if s := c.lanes[l][0].deadlineSlack(now); s < c.cfg.DeadlineSlack && s < bestSlack {
			chosen, bestSlack = l, s
		}
	}
	return chosen
}

// run is the flusher: the single goroutine that cuts batches off the lanes
// and executes them serially against the backend.
func (c *Coalescer) run() {
	defer close(c.drained)
	for {
		c.mu.Lock()
		total := 0
		for l := range c.lanes {
			total += len(c.lanes[l])
		}
		if total == 0 {
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			<-c.kick
			continue
		}

		// Cut the candidate batch: same op, at most BatchCapacity queries,
		// drawn from the scheduled lane first. A request is never split
		// across batches; one request larger than the capacity forms its own
		// batch (the engine splits it into hardware batches internally).
		// With QoS on, a partial batch tops up with same-op work from the
		// other lanes so priority scheduling never reduces coalescing.
		now := time.Now()
		lane := c.pickLane(now)
		op := c.lanes[lane][0].op
		var cut []*request
		var counts [numLanes]int
		nq := 0
		appendFrom := func(l int) {
			for _, r := range c.lanes[l][counts[l]:] {
				if r.op != op {
					break
				}
				if len(cut) > 0 && nq+len(r.queries) > c.cfg.BatchCapacity {
					break
				}
				cut = append(cut, r)
				counts[l]++
				nq += len(r.queries)
				if nq >= c.cfg.BatchCapacity {
					break
				}
			}
		}
		appendFrom(lane)
		if c.cfg.QoS && nq < c.cfg.BatchCapacity {
			for l := 0; l < int(numLanes); l++ {
				if l != lane && nq < c.cfg.BatchCapacity {
					appendFrom(l)
				}
			}
		}

		// Flush now when the batch is full, when work the cut could not
		// absorb waits behind it, or when draining; otherwise linger past
		// the oldest cut request's enqueue time.
		ready := nq >= c.cfg.BatchCapacity || len(cut) < total || c.closed
		if !ready {
			oldest := cut[0].enq
			for _, r := range cut[1:] {
				if r.enq.Before(oldest) {
					oldest = r.enq
				}
			}
			wait := c.cfg.Linger - time.Since(oldest)
			if wait > 0 {
				c.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-c.kick:
					timer.Stop()
				case <-timer.C:
				}
				continue
			}
		}

		reqs := slices.Clone(cut)
		for l, n := range counts {
			if n > 0 {
				c.lanes[l] = slices.Delete(c.lanes[l], 0, n)
			}
		}
		c.queued -= nq
		depth := c.queued
		c.mu.Unlock()

		c.m.QueueDepth.Set(int64(depth))
		c.flush(op, reqs)
	}
}

// cachePlan is one flush's cache consultation: which indices were served
// from the cache, the per-query pooled cached contributions, and the
// stripped hardware batch covering only the misses.
type cachePlan struct {
	// partial holds, per original query, the cached rows pooled under the
	// batch op (nil when the query had no cache hits). Mean accumulates as
	// a sum; merge finalizes with the true operand count.
	partial []tensor.Vector
	// cachedN is the per-original-query count of indices served from cache.
	cachedN []int
	// backPos maps each original query to its position in the stripped
	// batch; -1 when every index was cached (or the query was empty) and
	// the hardware batch never sees it.
	backPos []int
	// origOf maps each stripped-batch query back to its original position,
	// for remapping degraded reports into caller coordinates.
	origOf []int
	// stripped is the hardware batch of cache misses. Mean batches are
	// rewritten to sum — the engine would otherwise finalize by the
	// stripped query's length, not the true operand count.
	stripped embedding.Batch
	// missed collects every miss across the batch for post-flush admission.
	missed []header.Index
	// hits/misses are the flush's consultation totals.
	hits, misses int
}

// shardOf reports the cache partition owning idx.
func (c *Coalescer) shardOf(idx header.Index) int {
	if c.owner == nil {
		return 0
	}
	return c.owner.OwnerOf(idx)
}

// consult runs the batch through the hot-embedding cache, pooling cached
// rows host-side and building the stripped hardware batch of misses.
// Returns nil when the cache is off.
func (c *Coalescer) consult(b embedding.Batch) *cachePlan {
	if c.caches == nil {
		return nil
	}
	nq := len(b.Queries)
	p := &cachePlan{
		partial: make([]tensor.Vector, nq),
		cachedN: make([]int, nq),
		backPos: make([]int, nq),
	}
	p.stripped.Op = b.Op
	if b.Op == tensor.OpMean {
		p.stripped.Op = tensor.OpSum
	}
	for qi, q := range b.Queries {
		p.backPos[qi] = -1
		var missed header.IndexSet
		for _, idx := range q.Indices {
			shard := c.shardOf(idx)
			v, ok := c.caches[shard].Get(cache.Key{Table: uint32(shard), Op: uint8(b.Op), Index: idx})
			if !ok {
				// Appending in iteration order preserves the sorted,
				// duplicate-free IndexSet invariant.
				missed = append(missed, idx)
				continue
			}
			if p.partial[qi] == nil {
				p.partial[qi] = v.Clone()
			} else {
				// Dimensions always agree (one store, one dim); Apply cannot
				// fail here.
				_ = b.Op.Apply(p.partial[qi], v)
			}
			p.cachedN[qi]++
		}
		p.hits += p.cachedN[qi]
		p.misses += len(missed)
		if len(missed) > 0 {
			p.backPos[qi] = len(p.stripped.Queries)
			p.origOf = append(p.origOf, qi)
			p.stripped.Queries = append(p.stripped.Queries, embedding.Query{Indices: missed})
			p.missed = append(p.missed, missed...)
		}
	}
	return p
}

// merge folds the cached partials back into the stripped batch's outputs,
// returning the output slice in original batch order. It also remaps the
// result's degraded report (if any) from stripped coordinates back to
// original batch coordinates, in place.
//
// Bit-exactness: store values are integer-valued float32, so sums are exact
// and order-independent; min/max are idempotent and order-independent by
// construction; mean is a sum finalized by one multiply with the same
// operand count the unstripped batch would use. The merged outputs are
// therefore bit-identical to a cache-off run (docs/ARCHITECTURE.md §14).
func (c *Coalescer) merge(b embedding.Batch, p *cachePlan, res *core.TimedResult) []tensor.Vector {
	nq := len(b.Queries)
	lostCount := make([]int, nq)
	if res.Degraded != nil {
		for i, sq := range res.Degraded.LostQueries {
			oq := p.origOf[sq]
			n := 1
			if i < len(res.Degraded.LostIndexCounts) {
				n = res.Degraded.LostIndexCounts[i]
			}
			lostCount[oq] = n
			// origOf is strictly increasing, so the remap keeps LostQueries
			// sorted.
			res.Degraded.LostQueries[i] = oq
		}
	}
	outs := make([]tensor.Vector, nq)
	for qi, q := range b.Queries {
		total := q.Indices.Len()
		switch {
		case total == 0:
			outs[qi] = tensor.New(c.dim)
		case p.backPos[qi] < 0:
			// Fully cached: the hardware batch never saw this query.
			out := p.partial[qi]
			b.Op.FinalizeMean(out, total)
			outs[qi] = out
		default:
			out := res.Outputs[p.backPos[qi]]
			strippedLen := total - p.cachedN[qi]
			if lostCount[qi] >= strippedLen && p.partial[qi] != nil {
				// Every index the hardware batch was asked for was lost
				// downstream; its placeholder output is a zero vector, which
				// is not op-neutral for min/max. Serve the cached partial
				// alone.
				out = p.partial[qi]
			} else if p.partial[qi] != nil {
				_ = b.Op.Apply(out, p.partial[qi])
			}
			b.Op.FinalizeMean(out, total-lostCount[qi])
			outs[qi] = out
		}
	}
	return outs
}

// fill admits the flush's missed rows into the cache, deduplicated, after
// the batch completed — the rows just left DRAM, so the next batch that
// wants them strips them instead.
func (c *Coalescer) fill(op tensor.ReduceOp, missed []header.Index) {
	for _, idx := range header.NewIndexSet(missed...) {
		shard := c.shardOf(idx)
		v, err := c.rows.Row(idx)
		if err != nil {
			continue
		}
		// Dim is construction-checked; Put cannot fail here.
		_ = c.caches[shard].Put(cache.Key{Table: uint32(shard), Op: uint8(op), Index: idx}, v)
	}
}

// foldCacheStats publishes one flush's cache work: consultation counts
// directly, eviction/admission counters delta-folded from the rings'
// cumulative stats, and the instantaneous resident footprint. Flusher
// goroutine only.
func (c *Coalescer) foldCacheStats(p *cachePlan) {
	c.m.CacheHits.Add(uint64(p.hits))
	c.m.CacheMisses.Add(uint64(p.misses))
	var evict, ins uint64
	var resident int64
	for _, ca := range c.caches {
		st := ca.Stats()
		evict += st.Evictions
		ins += st.InsertedBytes
		resident += ca.Bytes()
	}
	if evict > c.lastCacheEvict {
		c.m.CacheEvictions.Add(evict - c.lastCacheEvict)
		c.lastCacheEvict = evict
	}
	if ins > c.lastCacheIns {
		c.m.CacheBytes.Add(ins - c.lastCacheIns)
		c.lastCacheIns = ins
	}
	c.m.CacheResident.Set(resident)
}

// flush executes one shared batch and demultiplexes per-request results.
func (c *Coalescer) flush(op tensor.ReduceOp, reqs []*request) {
	// Requests whose deadline expired while queued are dropped before any
	// engine work is spent on them; their Submit already returned.
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	queries := make([]embedding.Query, 0, c.cfg.BatchCapacity)
	wantTrace := false
	for _, r := range live {
		queries = append(queries, r.queries...)
		wantTrace = wantTrace || r.debug
	}
	b := embedding.Batch{Queries: queries, Op: op}
	buildStart := time.Now()
	plan := c.consult(b)

	// The flush span parents the backend's whole span tree. It is itself
	// parent-linked under a rider: the first debug request when one is
	// present — so the traced request's chain is unbroken — else the first
	// request in the cut. Every other rider's request span records the flush
	// it rode as a plain arg.
	parent := live[0]
	for _, r := range live {
		if r.debug {
			parent = r
			break
		}
	}
	c.flushSeq++
	flushID := telemetry.SpanID(parent.id, "flush", c.flushSeq)

	var batchTrace *telemetry.Trace
	var res *core.TimedResult
	var err error
	var beWall time.Duration
	flushStart := time.Now()
	cacheWall := flushStart.Sub(buildStart) // cache-consult side of the cache stage
	if plan == nil {
		cacheWall = 0
	}
	if plan != nil && len(plan.stripped.Queries) == 0 {
		// The whole batch was served from cache: no hardware work at all.
		res = &core.TimedResult{}
	} else {
		hw := b
		if plan != nil {
			hw = plan.stripped
		}
		// A debug request gets the engine + DRAM trace of its whole batch: a
		// fresh collector is attached around the lookup (flusher-only access,
		// honouring the backend's single-goroutine contract) and the rendered
		// JSON rides back on the result.
		if wantTrace && c.attacher != nil {
			batchTrace = telemetry.NewTrace()
			nameServeLanes(batchTrace)
			c.attacher.AttachTracer(batchTrace)
		}
		if c.spanner != nil {
			c.spanner.SetSpanContext(flushID)
		}
		beStart := time.Now()
		res, err = c.be.Lookup(hw)
		beWall = time.Since(beStart)
		if batchTrace != nil {
			c.attacher.AttachTracer(nil)
		}
	}
	flushArgs := []telemetry.Arg{
		{Key: "queries", Int: int64(len(queries))},
		{Key: "requests", Int: int64(len(live))},
		{Key: telemetry.ArgSpan, Int: int64(flushID)},
		{Key: telemetry.ArgParent, Int: int64(parent.id)},
	}
	flushDur := time.Since(flushStart)
	if c.tracer != nil {
		c.emit("flush", telemetry.TIDServeFlusher, telemetry.PhaseSpan, flushStart, flushDur, flushArgs...)
	}
	if batchTrace != nil {
		c.emitTo(batchTrace, "flush", telemetry.TIDServeFlusher, telemetry.PhaseSpan, flushStart, flushDur, flushArgs...)
	}
	if err != nil {
		c.isolate(op, live, err)
		return
	}
	outputs := res.Outputs
	if plan != nil {
		mergeStart := time.Now()
		outputs = c.merge(b, plan, res)
		c.fill(op, plan.missed)
		c.foldCacheStats(plan)
		mergeWall := time.Since(mergeStart)
		cacheWall += mergeWall
		if c.tracer != nil || batchTrace != nil {
			cacheArgs := []telemetry.Arg{
				{Key: "hits", Int: int64(plan.hits)},
				{Key: "misses", Int: int64(plan.misses)},
				{Key: "stripped_queries", Int: int64(len(plan.stripped.Queries))},
			}
			if c.tracer != nil {
				c.emit("cache", telemetry.TIDServeCache, telemetry.PhaseSpan, mergeStart, mergeWall, cacheArgs...)
			}
			if batchTrace != nil {
				c.emitTo(batchTrace, "cache", telemetry.TIDServeCache, telemetry.PhaseSpan, mergeStart, mergeWall, cacheArgs...)
			}
		}
	}
	stats := BatchStats{
		BatchQueries: len(queries),
		Requests:     len(live),
		MemoryReads:  res.MemoryReads,
		NaiveReads:   b.TotalAccesses(),
		TotalCycles:  res.TotalCycles,
		BytesRead:    res.BytesRead,
		Reduces:      res.PETotals.Reduces,
		Compares:     res.PETotals.Compares,
	}
	if plan != nil {
		stats.CacheHits = plan.hits
		stats.CacheMisses = plan.misses
	}
	if !res.Degraded.Empty() {
		stats.Degraded = res.Degraded
	}
	c.m.observeBatch(stats)
	c.foldMemoryStats()

	// The batch-level breakdown columns every rider shares: exact simulated
	// cycles split by the backend's Stages invariant, measured wall time for
	// the host-side stages. Coalesce absorbs the flush overhead the cache and
	// backend stages don't account for.
	bCyc, cCyc, tCyc := backendStages(res)
	hostWall := time.Since(buildStart)
	coalesceWall := hostWall - cacheWall - beWall
	if coalesceWall < 0 {
		coalesceWall = 0
	}
	base := Breakdown{
		Coalesce:    StageLatency{WallUS: usOf(coalesceWall)},
		Cache:       StageLatency{WallUS: usOf(cacheWall)},
		Backend:     StageLatency{Cycles: bCyc, WallUS: usOf(beWall)},
		Combine:     StageLatency{Cycles: cCyc, WallUS: simUS(cCyc)},
		Transfer:    StageLatency{Cycles: tCyc, WallUS: simUS(tCyc)},
		TotalCycles: res.TotalCycles,
	}

	// Request spans: one per rider, rooted (parent 0) and spanning enqueue to
	// delivery, with the flush they rode recorded as an arg. They are emitted
	// before the echo renders so a ?debug=trace response carries the full
	// serve → flush → backend chain.
	if c.tracer != nil || batchTrace != nil {
		now := time.Now()
		for _, r := range live {
			reqArgs := []telemetry.Arg{
				{Key: telemetry.ArgSpan, Int: int64(r.id)},
				{Key: telemetry.ArgParent, Int: 0},
				{Key: "flush", Int: int64(flushID)},
				{Key: "lane", Str: r.pri.String()},
				{Key: "queries", Int: int64(len(r.queries))},
			}
			if c.tracer != nil {
				c.emit("request", telemetry.TIDServeRequests, telemetry.PhaseSpan, r.enq, now.Sub(r.enq), reqArgs...)
			}
			if batchTrace != nil {
				c.emitTo(batchTrace, "request", telemetry.TIDServeRequests, telemetry.PhaseSpan, r.enq, now.Sub(r.enq), reqArgs...)
			}
		}
	}
	var traceJSON []byte
	if batchTrace != nil {
		traceJSON = batchTrace.ChromeJSON()
	}
	off := 0
	for _, r := range live {
		out := outputs[off : off+len(r.queries)]
		rr := result{outputs: out, stats: stats}
		rr.stats.QueryOffset = off
		rr.stats.RequestID = r.id
		off += len(r.queries)
		bd := base
		bd.RequestID = r.id
		bd.Queue = StageLatency{WallUS: usOf(buildStart.Sub(r.enq))}
		bd.TotalWallUS = usOf(time.Since(r.enq))
		rr.stats.Breakdown = &bd
		c.m.observeStages(&bd)
		if r.debug {
			rr.trace = traceJSON
		}
		r.deliver(rr)
		if c.tracer != nil {
			c.emit("respond", telemetry.TIDServeRequests, telemetry.PhaseInstant, time.Now(), 0,
				telemetry.Arg{Key: "req", Int: int64(r.id)},
				telemetry.Arg{Key: "queries", Int: int64(len(r.queries))})
		}
	}
}

// foldMemoryStats delta-folds the backend's cumulative row-buffer counters
// into the registry. Only the flusher goroutine calls it, so the last-seen
// values need no synchronization and the deltas attribute exactly the reads
// issued since the previous flush.
func (c *Coalescer) foldMemoryStats() {
	if c.memStats == nil {
		return
	}
	if h := c.memStats.MemoryCounter("dram.row_hits"); h > c.lastRowHits {
		c.m.RowHits.Add(h - c.lastRowHits)
		c.lastRowHits = h
	}
	if ms := c.memStats.MemoryCounter("dram.row_misses"); ms > c.lastRowMisses {
		c.m.RowMisses.Add(ms - c.lastRowMisses)
		c.lastRowMisses = ms
	}
	if cf := c.memStats.MemoryCounter("dram.row_conflicts"); cf > c.lastRowConfl {
		c.m.RowConflicts.Add(cf - c.lastRowConfl)
		c.lastRowConfl = cf
	}
}

// isolate handles a failed shared batch: each request is re-run alone, so a
// structured engine error (a dark rank, exhausted retries) reaches only the
// caller whose queries actually trip it, and innocent co-travellers still
// get their answers. Isolation retries bypass the cache entirely — the
// failure may implicate any part of the original batch, so each retry is
// the full, unstripped request.
func (c *Coalescer) isolate(op tensor.ReduceOp, reqs []*request, batchErr error) {
	if len(reqs) == 1 {
		reqs[0].deliver(result{err: batchErr})
		return
	}
	c.m.IsolationRetries.Add(1)
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		// Each isolation retry is its own flush for span purposes, parented
		// directly under the lone request it serves.
		if c.spanner != nil {
			c.flushSeq++
			c.spanner.SetSpanContext(telemetry.SpanID(r.id, "flush", c.flushSeq))
		}
		beStart := time.Now()
		res, err := c.be.Lookup(embedding.Batch{Queries: r.queries, Op: op})
		beWall := time.Since(beStart)
		if err != nil {
			r.deliver(result{err: err})
			continue
		}
		stats := BatchStats{
			BatchQueries: len(r.queries),
			Requests:     1,
			MemoryReads:  res.MemoryReads,
			NaiveReads:   embedding.Batch{Queries: r.queries}.TotalAccesses(),
			TotalCycles:  res.TotalCycles,
			BytesRead:    res.BytesRead,
			Reduces:      res.PETotals.Reduces,
			Compares:     res.PETotals.Compares,
			Isolated:     true,
			RequestID:    r.id,
		}
		if !res.Degraded.Empty() {
			stats.Degraded = res.Degraded
		}
		bCyc, cCyc, tCyc := backendStages(res)
		stats.Breakdown = &Breakdown{
			RequestID:   r.id,
			Queue:       StageLatency{WallUS: usOf(beStart.Sub(r.enq))},
			Backend:     StageLatency{Cycles: bCyc, WallUS: usOf(beWall)},
			Combine:     StageLatency{Cycles: cCyc, WallUS: simUS(cCyc)},
			Transfer:    StageLatency{Cycles: tCyc, WallUS: simUS(tCyc)},
			TotalCycles: res.TotalCycles,
			TotalWallUS: usOf(time.Since(r.enq)),
		}
		c.m.observeStages(stats.Breakdown)
		c.m.observeBatch(stats)
		c.foldMemoryStats()
		r.deliver(result{outputs: res.Outputs, stats: stats})
	}
}
