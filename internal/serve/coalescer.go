package serve

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// TraceAttacher is the optional backend capability behind ?debug=trace: a
// backend that can thread a telemetry tracer through its engines.
// *fafnir.System implements it. The coalescer only attaches and detaches
// from its single flusher goroutine, matching the backend's concurrency
// contract.
type TraceAttacher interface {
	AttachTracer(telemetry.Tracer)
}

// MemoryStatsSource is the optional backend capability for row-buffer
// attribution: a backend exposing its memory system's cumulative counters by
// name ("dram.row_hits", "dram.row_misses", "dram.row_conflicts").
// *fafnir.System implements it. The coalescer delta-folds the counters into
// the registry after each flush, again only from the flusher goroutine.
type MemoryStatsSource interface {
	MemoryCounter(name string) uint64
}

// BatchStats describes the hardware batch that served a request. Requests
// coalesced into the same flush share one BatchStats value.
type BatchStats struct {
	// BatchQueries is the number of queries in the flushed batch.
	BatchQueries int
	// Requests is the number of concurrent requests coalesced into it.
	Requests int
	// MemoryReads is the number of DRAM vector reads the batch issued after
	// cross-request deduplication.
	MemoryReads int
	// NaiveReads is what the batch would have read without deduplication
	// (the sum of all query sizes).
	NaiveReads int
	// TotalCycles is the simulated end-to-end batch latency (PE clock).
	TotalCycles sim.Cycle
	// BytesRead is the batch's DRAM traffic.
	BytesRead uint64
	// Reduces and Compares are the batch's PE action totals across the
	// reduction tree.
	Reduces  int
	Compares int
	// Isolated marks a result recomputed alone after its shared batch
	// failed (see the isolation retry in flush).
	Isolated bool
	// QueryOffset is this request's first query's index within the flushed
	// batch; the HTTP layer uses it to map the batch-level degraded report's
	// query indices back into request coordinates.
	QueryOffset int
	// Degraded carries the batch's degraded report when the backend absorbed
	// faults while serving it (rank remaps, shard failover, lost data); nil
	// for a clean batch. Requests coalesced into the same flush share one
	// report — degradation anywhere in the batch flags every rider, and the
	// per-request response filters the query-level detail by QueryOffset.
	Degraded *core.DegradedReport
}

// result is what the flusher delivers back to one waiting Submit call.
type result struct {
	outputs []tensor.Vector
	stats   BatchStats
	trace   []byte // Chrome trace JSON of the serving batch (debug requests)
	err     error
}

// request is one queued Submit call.
type request struct {
	ctx     context.Context
	queries []embedding.Query
	op      tensor.ReduceOp
	enq     time.Time
	debug   bool        // caller asked for the batch's trace echo
	done    chan result // buffered 1; the flusher never blocks on delivery
}

func (r *request) deliver(res result) {
	select {
	case r.done <- res:
	default:
	}
}

// Coalescer accumulates concurrent lookup requests and flushes them through
// the backend as shared hardware batches. It is safe for concurrent use; the
// backend itself is only ever called from the single flusher goroutine, so a
// Backend need not be concurrency-safe (fafnir.System is not).
//
// Flush policy: a batch is cut as the longest queue prefix that shares one
// pooling op, capped at BatchCapacity queries. It flushes immediately when it
// is full or when requests with a different op wait behind it; otherwise the
// flusher lingers up to Config.Linger past the oldest request's enqueue time
// before flushing a partial batch.
type Coalescer struct {
	cfg Config
	be  Backend
	m   *Metrics

	// tracer receives request-lifecycle events (enqueue/flush/respond) on
	// the serve timeline when Config.Tracer is set; nil costs one check.
	// Serve events carry wall-clock nanoseconds since t0 (ClockMHz 1000).
	tracer telemetry.Tracer
	t0     time.Time

	// attacher/memStats are the backend's optional capabilities, resolved
	// once at construction; both are exercised only from the flusher
	// goroutine. lastRow* hold the previously folded cumulative counters.
	attacher      TraceAttacher
	memStats      MemoryStatsSource
	lastRowHits   uint64
	lastRowMisses uint64
	lastRowConfl  uint64

	mu     sync.Mutex
	queue  []*request
	queued int // queries across queue
	closed bool

	kick    chan struct{} // buffered 1: wakes the flusher
	drained chan struct{} // closed when the flusher exits
}

// NewCoalescer starts a coalescer over the backend. A nil Metrics allocates
// a private one (retrievable via Metrics()).
func NewCoalescer(cfg Config, be Backend, m *Metrics) (*Coalescer, error) {
	if be == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if m == nil {
		m = NewMetrics()
	}
	c := &Coalescer{
		cfg:     cfg,
		be:      be,
		m:       m,
		tracer:  cfg.Tracer,
		t0:      time.Now(),
		kick:    make(chan struct{}, 1),
		drained: make(chan struct{}),
	}
	c.attacher, _ = be.(TraceAttacher)
	c.memStats, _ = be.(MemoryStatsSource)
	if c.tracer != nil {
		c.tracer.NameProcess(telemetry.PIDServe, "serve")
		c.tracer.NameLane(telemetry.PIDServe, 0, "requests")
		c.tracer.NameLane(telemetry.PIDServe, 1, "flusher")
	}
	go c.run()
	return c, nil
}

// emit records one serve-lifecycle event at wall-clock nanoseconds since the
// coalescer started; ClockMHz 1000 maps nanoseconds onto the microsecond
// export timeline.
func (c *Coalescer) emit(name string, tid int, phase byte, start time.Time, dur time.Duration, args ...telemetry.Arg) {
	ev := telemetry.Event{
		Name: name, Cat: "serve", Phase: phase,
		PID: telemetry.PIDServe, TID: tid,
		TS: uint64(start.Sub(c.t0)), ClockMHz: 1000,
	}
	if phase == telemetry.PhaseSpan {
		ev.Dur = uint64(dur)
	}
	for _, a := range args {
		ev.AddArg(a)
	}
	c.tracer.Emit(ev)
}

// Metrics returns the live metrics the coalescer reports into.
func (c *Coalescer) Metrics() *Metrics { return c.m }

// Config returns the coalescer's configuration with defaults resolved.
func (c *Coalescer) Config() Config { return c.cfg }

// Submit queues the request's queries for the next shared batch and blocks
// until the flusher delivers the result or ctx expires. All queries of one
// call travel in the same batch and resolve together. It fails fast with
// ErrOverloaded when the admission queue is full and ErrDraining after Close.
func (c *Coalescer) Submit(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query) ([]tensor.Vector, BatchStats, error) {
	out, stats, _, err := c.submit(ctx, op, queries, false)
	return out, stats, err
}

// SubmitTraced is Submit with a trace echo: when the backend implements
// TraceAttacher, the returned bytes are the Chrome trace-event JSON of the
// flushed batch that served this request — including the engine and DRAM
// events of any co-travelling requests coalesced into it. The trace is nil
// when the backend cannot trace.
func (c *Coalescer) SubmitTraced(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query) ([]tensor.Vector, BatchStats, []byte, error) {
	return c.submit(ctx, op, queries, true)
}

func (c *Coalescer) submit(ctx context.Context, op tensor.ReduceOp, queries []embedding.Query, debug bool) ([]tensor.Vector, BatchStats, []byte, error) {
	if len(queries) == 0 {
		return nil, BatchStats{}, nil, fmt.Errorf("serve: empty request")
	}
	if !op.Valid() {
		return nil, BatchStats{}, nil, fmt.Errorf("serve: invalid reduce op %d", op)
	}
	req := &request{ctx: ctx, queries: queries, op: op, enq: time.Now(), debug: debug, done: make(chan result, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, BatchStats{}, nil, ErrDraining
	}
	// Admission control: bounded queue. A request the queue could never
	// hold is still admitted when the queue is empty, so oversized requests
	// make progress instead of starving forever.
	if c.queued > 0 && c.queued+len(queries) > c.cfg.MaxQueued {
		c.mu.Unlock()
		return nil, BatchStats{}, nil, ErrOverloaded
	}
	c.queue = append(c.queue, req)
	c.queued += len(queries)
	depth := c.queued
	c.mu.Unlock()

	if c.tracer != nil {
		c.emit("enqueue", 0, telemetry.PhaseInstant, req.enq, 0,
			telemetry.Arg{Key: "queries", Int: int64(len(queries))},
			telemetry.Arg{Key: "depth", Int: int64(depth)})
	}
	c.m.QueueDepth.Set(int64(depth))
	c.kickFlusher()

	select {
	case res := <-req.done:
		return res.outputs, res.stats, res.trace, res.err
	case <-ctx.Done():
		// The flusher may still compute this request's batch; delivery into
		// the buffered channel is dropped on the floor.
		return nil, BatchStats{}, nil, ctx.Err()
	}
}

// Close stops admitting new requests, flushes everything still queued, and
// waits for the flusher to exit (or ctx to expire). It is idempotent.
func (c *Coalescer) Close(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.kickFlusher()
	select {
	case <-c.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Coalescer) kickFlusher() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// run is the flusher: the single goroutine that cuts batches off the queue
// and executes them serially against the backend.
func (c *Coalescer) run() {
	defer close(c.drained)
	for {
		c.mu.Lock()
		if len(c.queue) == 0 {
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			<-c.kick
			continue
		}

		// Cut the candidate prefix: same op, at most BatchCapacity queries.
		// A request is never split across batches; one request larger than
		// the capacity forms its own batch (the engine splits it into
		// hardware batches internally).
		op := c.queue[0].op
		n, nq := 0, 0
		for _, r := range c.queue {
			if r.op != op {
				break
			}
			if n > 0 && nq+len(r.queries) > c.cfg.BatchCapacity {
				break
			}
			n++
			nq += len(r.queries)
			if nq >= c.cfg.BatchCapacity {
				break
			}
		}

		// Flush now when the batch is full, when differently-shaped work
		// waits behind the prefix, or when draining; otherwise linger.
		ready := nq >= c.cfg.BatchCapacity || n < len(c.queue) || c.closed
		if !ready {
			wait := c.cfg.Linger - time.Since(c.queue[0].enq)
			if wait > 0 {
				c.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-c.kick:
					timer.Stop()
				case <-timer.C:
				}
				continue
			}
		}

		reqs := slices.Clone(c.queue[:n])
		c.queue = slices.Delete(c.queue, 0, n)
		c.queued -= nq
		depth := c.queued
		c.mu.Unlock()

		c.m.QueueDepth.Set(int64(depth))
		c.flush(op, reqs)
	}
}

// flush executes one shared batch and demultiplexes per-request results.
func (c *Coalescer) flush(op tensor.ReduceOp, reqs []*request) {
	// Requests whose deadline expired while queued are dropped before any
	// engine work is spent on them; their Submit already returned.
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}

	queries := make([]embedding.Query, 0, c.cfg.BatchCapacity)
	wantTrace := false
	for _, r := range live {
		queries = append(queries, r.queries...)
		wantTrace = wantTrace || r.debug
	}
	b := embedding.Batch{Queries: queries, Op: op}

	// A debug request gets the engine + DRAM trace of its whole batch: a
	// fresh collector is attached around the lookup (flusher-only access,
	// honouring the backend's single-goroutine contract) and the rendered
	// JSON rides back on the result.
	var batchTrace *telemetry.Trace
	if wantTrace && c.attacher != nil {
		batchTrace = telemetry.NewTrace()
		c.attacher.AttachTracer(batchTrace)
	}
	flushStart := time.Now()
	res, err := c.be.Lookup(b)
	if batchTrace != nil {
		c.attacher.AttachTracer(nil)
	}
	if c.tracer != nil {
		c.emit("flush", 1, telemetry.PhaseSpan, flushStart, time.Since(flushStart),
			telemetry.Arg{Key: "queries", Int: int64(len(queries))},
			telemetry.Arg{Key: "requests", Int: int64(len(live))})
	}
	if err != nil {
		c.isolate(op, live, err)
		return
	}
	stats := BatchStats{
		BatchQueries: len(queries),
		Requests:     len(live),
		MemoryReads:  res.MemoryReads,
		NaiveReads:   b.TotalAccesses(),
		TotalCycles:  res.TotalCycles,
		BytesRead:    res.BytesRead,
		Reduces:      res.PETotals.Reduces,
		Compares:     res.PETotals.Compares,
	}
	if !res.Degraded.Empty() {
		stats.Degraded = res.Degraded
	}
	c.m.observeBatch(stats)
	c.foldMemoryStats()
	var traceJSON []byte
	if batchTrace != nil {
		traceJSON = batchTrace.ChromeJSON()
	}
	off := 0
	for _, r := range live {
		out := res.Outputs[off : off+len(r.queries)]
		rr := result{outputs: out, stats: stats}
		rr.stats.QueryOffset = off
		off += len(r.queries)
		if r.debug {
			rr.trace = traceJSON
		}
		r.deliver(rr)
		if c.tracer != nil {
			c.emit("respond", 0, telemetry.PhaseInstant, time.Now(), 0,
				telemetry.Arg{Key: "queries", Int: int64(len(r.queries))})
		}
	}
}

// foldMemoryStats delta-folds the backend's cumulative row-buffer counters
// into the registry. Only the flusher goroutine calls it, so the last-seen
// values need no synchronization and the deltas attribute exactly the reads
// issued since the previous flush.
func (c *Coalescer) foldMemoryStats() {
	if c.memStats == nil {
		return
	}
	if h := c.memStats.MemoryCounter("dram.row_hits"); h > c.lastRowHits {
		c.m.RowHits.Add(h - c.lastRowHits)
		c.lastRowHits = h
	}
	if ms := c.memStats.MemoryCounter("dram.row_misses"); ms > c.lastRowMisses {
		c.m.RowMisses.Add(ms - c.lastRowMisses)
		c.lastRowMisses = ms
	}
	if cf := c.memStats.MemoryCounter("dram.row_conflicts"); cf > c.lastRowConfl {
		c.m.RowConflicts.Add(cf - c.lastRowConfl)
		c.lastRowConfl = cf
	}
}

// isolate handles a failed shared batch: each request is re-run alone, so a
// structured engine error (a dark rank, exhausted retries) reaches only the
// caller whose queries actually trip it, and innocent co-travellers still
// get their answers.
func (c *Coalescer) isolate(op tensor.ReduceOp, reqs []*request, batchErr error) {
	if len(reqs) == 1 {
		reqs[0].deliver(result{err: batchErr})
		return
	}
	c.m.IsolationRetries.Add(1)
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			c.m.ExpiredInQueue.Add(1)
			r.deliver(result{err: err})
			continue
		}
		res, err := c.be.Lookup(embedding.Batch{Queries: r.queries, Op: op})
		if err != nil {
			r.deliver(result{err: err})
			continue
		}
		stats := BatchStats{
			BatchQueries: len(r.queries),
			Requests:     1,
			MemoryReads:  res.MemoryReads,
			NaiveReads:   embedding.Batch{Queries: r.queries}.TotalAccesses(),
			TotalCycles:  res.TotalCycles,
			BytesRead:    res.BytesRead,
			Reduces:      res.PETotals.Reduces,
			Compares:     res.PETotals.Compares,
			Isolated:     true,
		}
		if !res.Degraded.Empty() {
			stats.Degraded = res.Degraded
		}
		c.m.observeBatch(stats)
		c.foldMemoryStats()
		r.deliver(result{outputs: res.Outputs, stats: stats})
	}
}
