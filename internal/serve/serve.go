// Package serve is the online serving layer: a concurrent embedding-lookup
// front-end over a fafnir System. Its core is a dynamic micro-batching
// coalescer — concurrent requests queue into a shared accumulator that
// flushes a hardware batch when it fills to the engine's BatchCapacity or a
// linger window expires. The flushed batch runs through the engine's
// host-side batch rearrangement (package batch), so *cross-request* duplicate
// indices are read from DRAM once: the paper's per-batch deduplication window
// is extended across users, and measured reads per query drop as concurrency
// rises.
//
// Around the coalescer: per-request deadlines honored via context.Context,
// admission control (a bounded queue that rejects with ErrOverloaded rather
// than queueing unboundedly), graceful drain, and live metrics in Prometheus
// text format (stdlib only).
package serve

import (
	"errors"
	"fmt"
	"time"

	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// Structured failure modes of the serving layer; match with errors.Is.
var (
	// ErrOverloaded reports that the admission queue is full. HTTP callers
	// see a 503 with Retry-After instead of unbounded queueing latency.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining reports a submission after drain began.
	ErrDraining = errors.New("serve: draining")
)

// Backend runs one embedding-lookup batch with full timing. *fafnir.System
// (the repository's public facade) implements it; tests substitute fakes.
type Backend interface {
	Lookup(b embedding.Batch) (*core.TimedResult, error)
}

// System is the backend surface the HTTP server needs: lookups plus the row
// space for request validation. *fafnir.System implements it.
type System interface {
	Backend
	TotalRows() uint64
}

// MetricsRegistrar is the optional backend capability for publishing its own
// metric families onto the server's /metrics page. The fleet router
// implements it (shard health, failover, and retry families); New resolves
// it by type assertion and passes the server's registry through once.
type MetricsRegistrar interface {
	RegisterMetrics(*telemetry.Registry)
}

// RowSource is the backend capability behind the hot-embedding cache: raw
// access to embedding rows, so the coalescer can admit the rows a flushed
// batch just read. *fafnir.System and *router.Fleet implement it; a backend
// without it cannot host the cache (Config.CacheBytes is rejected).
type RowSource interface {
	// Row returns the raw embedding row at idx.
	Row(idx header.Index) (tensor.Vector, error)
	// Dim reports the embedding dimensionality of every row.
	Dim() int
}

// ShardOwner is the optional capability a sharded backend exposes so the
// cache partitions its byte budget per shard: each owner shard gets an
// independent CLOCK ring, and cached rows are keyed by their owning shard.
// *router.Fleet implements it; a single System caches in one partition.
type ShardOwner interface {
	// Shards reports the fleet width.
	Shards() int
	// OwnerOf reports the shard storing the primary copy of idx.
	OwnerOf(idx header.Index) int
}

// TopologyDescriber is the optional capability a backend exposes so the
// serving CLI's startup line can report the full deployment shape — fleets,
// shards, combine radix — without the CLI reconstructing it from flags.
// *router.Fleet and *router.Federation implement it.
type TopologyDescriber interface {
	// Topology returns a one-line human-readable deployment description.
	Topology() string
}

// Priority is a request's QoS lane. The zero value is the highest lane so
// the constants order by urgency; the wire default is PriorityNormal (see
// ParsePriority).
type Priority int

// The QoS lanes, in scheduling order.
const (
	// PriorityHigh is latency-critical traffic: scheduled first, shed last.
	PriorityHigh Priority = iota
	// PriorityNormal is the default lane; with QoS disabled every request
	// travels here and the coalescer behaves exactly as a single queue.
	PriorityNormal
	// PriorityLow is best-effort traffic: shed first once the admission
	// queue passes the low-water mark, scheduled last otherwise.
	PriorityLow
	numLanes
)

// String returns the lane's metric label value.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority maps a wire-format priority name to its lane. The empty
// string selects normal, the default lane.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return PriorityHigh, nil
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	default:
		return 0, fmt.Errorf("serve: unknown priority %q (want high, normal, or low)", s)
	}
}

// Config parameterizes the serving layer. The zero value of every field
// selects a sensible default; negative values are rejected by Validate with
// an error naming the offending field.
type Config struct {
	// BatchCapacity is the hardware batch size flushes aim for, in queries.
	// It should match the engine's SystemConfig.BatchCapacity so one flush
	// compiles into one hardware batch. Default 32.
	BatchCapacity int
	// Linger is how long the oldest queued query may wait for co-travellers
	// before a partial batch is flushed anyway. Zero flushes as soon as the
	// flusher observes a non-empty queue (lowest latency, least coalescing).
	Linger time.Duration
	// MaxQueued bounds the admission queue in queries; submissions beyond it
	// fail fast with ErrOverloaded. Default 16 x BatchCapacity.
	MaxQueued int
	// DefaultTimeout is the per-request deadline applied to HTTP requests
	// that do not carry their own. Default 2s.
	DefaultTimeout time.Duration
	// MaxQueriesPerRequest bounds one HTTP request's query count (413-style
	// rejection as a 400). Default 4 x BatchCapacity.
	MaxQueriesPerRequest int
	// Tracer, when set, receives request-lifecycle events (enqueue, flush,
	// respond) on the serving timeline. Nil — the default — disables
	// lifecycle tracing at the cost of one pointer check.
	Tracer telemetry.Tracer
	// RetryJitterSeed seeds the deterministic jitter applied to the 503
	// Retry-After header under overload, spreading client retries over a
	// small window instead of synchronizing them into a thundering herd.
	// Equal seeds give equal jitter sequences; zero selects seed 1.
	RetryJitterSeed uint64
	// CacheBytes is the host-side hot-embedding cache budget in bytes.
	// Zero — the default — disables the cache entirely; when positive the
	// backend must implement RowSource or NewCoalescer fails. With a
	// sharded backend (ShardOwner) the budget is split evenly per shard.
	CacheBytes int64
	// CacheSeed seeds the cache's deterministic CLOCK eviction (the hand's
	// starting slot). Equal seeds and equal traffic give bit-identical
	// cache contents; zero selects seed 1.
	CacheSeed uint64
	// QoS enables priority-lane scheduling and shed-low-first admission.
	// Off — the default — every request travels the normal lane and the
	// coalescer behaves exactly as a single FIFO queue.
	QoS bool
	// ShedLowWater is the fraction of MaxQueued above which PriorityLow
	// submissions are shed (QoS mode only). High and normal traffic is
	// only rejected at the full MaxQueued bound. Default 0.5.
	ShedLowWater float64
	// DeadlineSlack is the lane-escape threshold (QoS mode only): a
	// lower-priority request whose deadline slack has shrunk below this
	// is scheduled ahead of healthier higher-priority work, bounding
	// starvation. Default 1ms.
	DeadlineSlack time.Duration
	// SLOWindow is the flight recorder's rolling accounting window for
	// good/bad request counts and burn rates. Default 60s.
	SLOWindow time.Duration
	// SLOObjectives maps each QoS lane to its wall-clock latency objective;
	// a request is good when it succeeds undegraded within its lane's
	// objective. Lanes absent from the map get the defaults: high 50ms,
	// normal 250ms, low 1s.
	SLOObjectives map[Priority]time.Duration
	// SLOBudget is the error-budget fraction the burn-rate gauge normalizes
	// by: burn rate 1.0 means bad requests arrive at exactly the budgeted
	// fraction. Default 0.01 (99% of requests good).
	SLOBudget float64
	// SLOK bounds the flight recorder's slowest/degraded request rings.
	// Default 16.
	SLOK int
}

func (c *Config) fillDefaults() {
	if c.BatchCapacity == 0 {
		c.BatchCapacity = 32
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 16 * c.BatchCapacity
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxQueriesPerRequest == 0 {
		c.MaxQueriesPerRequest = 4 * c.BatchCapacity
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = 1
	}
	if c.CacheSeed == 0 {
		c.CacheSeed = 1
	}
	if c.ShedLowWater == 0 {
		c.ShedLowWater = 0.5
	}
	if c.DeadlineSlack == 0 {
		c.DeadlineSlack = time.Millisecond
	}
	if c.SLOWindow == 0 {
		c.SLOWindow = time.Minute
	}
	if c.SLOBudget == 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOK == 0 {
		c.SLOK = 16
	}
	defaults := map[Priority]time.Duration{
		PriorityHigh:   50 * time.Millisecond,
		PriorityNormal: 250 * time.Millisecond,
		PriorityLow:    time.Second,
	}
	if c.SLOObjectives == nil {
		c.SLOObjectives = defaults
	} else {
		for p, d := range defaults {
			if c.SLOObjectives[p] == 0 {
				c.SLOObjectives[p] = d
			}
		}
	}
}

// Validate reports a descriptive error naming the offending field and value
// for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.BatchCapacity < 0:
		return fmt.Errorf("serve: Config.BatchCapacity = %d: must be positive (or 0 for the default of 32)", c.BatchCapacity)
	case c.Linger < 0:
		return fmt.Errorf("serve: Config.Linger = %v: must be non-negative", c.Linger)
	case c.MaxQueued < 0:
		return fmt.Errorf("serve: Config.MaxQueued = %d: must be positive (or 0 for the default of 16 x BatchCapacity)", c.MaxQueued)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("serve: Config.DefaultTimeout = %v: must be non-negative", c.DefaultTimeout)
	case c.MaxQueriesPerRequest < 0:
		return fmt.Errorf("serve: Config.MaxQueriesPerRequest = %d: must be positive (or 0 for the default of 4 x BatchCapacity)", c.MaxQueriesPerRequest)
	case c.CacheBytes < 0:
		return fmt.Errorf("serve: Config.CacheBytes = %d: must be non-negative (0 disables the cache)", c.CacheBytes)
	case c.ShedLowWater < 0 || c.ShedLowWater > 1:
		return fmt.Errorf("serve: Config.ShedLowWater = %v: must be in [0, 1] (or 0 for the default of 0.5)", c.ShedLowWater)
	case c.DeadlineSlack < 0:
		return fmt.Errorf("serve: Config.DeadlineSlack = %v: must be non-negative", c.DeadlineSlack)
	case c.SLOWindow < 0:
		return fmt.Errorf("serve: Config.SLOWindow = %v: must be non-negative (0 selects the 60s default)", c.SLOWindow)
	case c.SLOBudget < 0 || c.SLOBudget > 1:
		return fmt.Errorf("serve: Config.SLOBudget = %v: must be in [0, 1] (0 selects the 0.01 default)", c.SLOBudget)
	case c.SLOK < 0:
		return fmt.Errorf("serve: Config.SLOK = %d: must be non-negative (0 selects the default of 16)", c.SLOK)
	}
	return nil
}

// ParseOp maps a wire-format pooling-operation name to a ReduceOp. The empty
// string selects sum, the paper's default.
func ParseOp(s string) (tensor.ReduceOp, error) {
	switch s {
	case "", "sum":
		return tensor.OpSum, nil
	case "min":
		return tensor.OpMin, nil
	case "max":
		return tensor.OpMax, nil
	case "mean":
		return tensor.OpMean, nil
	default:
		return 0, fmt.Errorf("serve: unknown pooling op %q (want sum, min, max, or mean)", s)
	}
}
