// Package serve is the online serving layer: a concurrent embedding-lookup
// front-end over a fafnir System. Its core is a dynamic micro-batching
// coalescer — concurrent requests queue into a shared accumulator that
// flushes a hardware batch when it fills to the engine's BatchCapacity or a
// linger window expires. The flushed batch runs through the engine's
// host-side batch rearrangement (package batch), so *cross-request* duplicate
// indices are read from DRAM once: the paper's per-batch deduplication window
// is extended across users, and measured reads per query drop as concurrency
// rises.
//
// Around the coalescer: per-request deadlines honored via context.Context,
// admission control (a bounded queue that rejects with ErrOverloaded rather
// than queueing unboundedly), graceful drain, and live metrics in Prometheus
// text format (stdlib only).
package serve

import (
	"errors"
	"fmt"
	"time"

	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// Structured failure modes of the serving layer; match with errors.Is.
var (
	// ErrOverloaded reports that the admission queue is full. HTTP callers
	// see a 503 with Retry-After instead of unbounded queueing latency.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrDraining reports a submission after drain began.
	ErrDraining = errors.New("serve: draining")
)

// Backend runs one embedding-lookup batch with full timing. *fafnir.System
// (the repository's public facade) implements it; tests substitute fakes.
type Backend interface {
	Lookup(b embedding.Batch) (*core.TimedResult, error)
}

// System is the backend surface the HTTP server needs: lookups plus the row
// space for request validation. *fafnir.System implements it.
type System interface {
	Backend
	TotalRows() uint64
}

// MetricsRegistrar is the optional backend capability for publishing its own
// metric families onto the server's /metrics page. The fleet router
// implements it (shard health, failover, and retry families); New resolves
// it by type assertion and passes the server's registry through once.
type MetricsRegistrar interface {
	RegisterMetrics(*telemetry.Registry)
}

// Config parameterizes the serving layer. The zero value of every field
// selects a sensible default; negative values are rejected by Validate with
// an error naming the offending field.
type Config struct {
	// BatchCapacity is the hardware batch size flushes aim for, in queries.
	// It should match the engine's SystemConfig.BatchCapacity so one flush
	// compiles into one hardware batch. Default 32.
	BatchCapacity int
	// Linger is how long the oldest queued query may wait for co-travellers
	// before a partial batch is flushed anyway. Zero flushes as soon as the
	// flusher observes a non-empty queue (lowest latency, least coalescing).
	Linger time.Duration
	// MaxQueued bounds the admission queue in queries; submissions beyond it
	// fail fast with ErrOverloaded. Default 16 x BatchCapacity.
	MaxQueued int
	// DefaultTimeout is the per-request deadline applied to HTTP requests
	// that do not carry their own. Default 2s.
	DefaultTimeout time.Duration
	// MaxQueriesPerRequest bounds one HTTP request's query count (413-style
	// rejection as a 400). Default 4 x BatchCapacity.
	MaxQueriesPerRequest int
	// Tracer, when set, receives request-lifecycle events (enqueue, flush,
	// respond) on the serving timeline. Nil — the default — disables
	// lifecycle tracing at the cost of one pointer check.
	Tracer telemetry.Tracer
	// RetryJitterSeed seeds the deterministic jitter applied to the 503
	// Retry-After header under overload, spreading client retries over a
	// small window instead of synchronizing them into a thundering herd.
	// Equal seeds give equal jitter sequences; zero selects seed 1.
	RetryJitterSeed uint64
}

func (c *Config) fillDefaults() {
	if c.BatchCapacity == 0 {
		c.BatchCapacity = 32
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 16 * c.BatchCapacity
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxQueriesPerRequest == 0 {
		c.MaxQueriesPerRequest = 4 * c.BatchCapacity
	}
	if c.RetryJitterSeed == 0 {
		c.RetryJitterSeed = 1
	}
}

// Validate reports a descriptive error naming the offending field and value
// for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.BatchCapacity < 0:
		return fmt.Errorf("serve: Config.BatchCapacity = %d: must be positive (or 0 for the default of 32)", c.BatchCapacity)
	case c.Linger < 0:
		return fmt.Errorf("serve: Config.Linger = %v: must be non-negative", c.Linger)
	case c.MaxQueued < 0:
		return fmt.Errorf("serve: Config.MaxQueued = %d: must be positive (or 0 for the default of 16 x BatchCapacity)", c.MaxQueued)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("serve: Config.DefaultTimeout = %v: must be non-negative", c.DefaultTimeout)
	case c.MaxQueriesPerRequest < 0:
		return fmt.Errorf("serve: Config.MaxQueriesPerRequest = %d: must be positive (or 0 for the default of 4 x BatchCapacity)", c.MaxQueriesPerRequest)
	}
	return nil
}

// ParseOp maps a wire-format pooling-operation name to a ReduceOp. The empty
// string selects sum, the paper's default.
func ParseOp(s string) (tensor.ReduceOp, error) {
	switch s {
	case "", "sum":
		return tensor.OpSum, nil
	case "min":
		return tensor.OpMin, nil
	case "max":
		return tensor.OpMax, nil
	case "mean":
		return tensor.OpMean, nil
	default:
		return 0, fmt.Errorf("serve: unknown pooling op %q (want sum, min, max, or mean)", s)
	}
}
