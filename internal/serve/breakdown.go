package serve

import (
	"time"

	core "fafnir/internal/fafnir"
	"fafnir/internal/sim"
)

// StageLatency is one stage's share of a request's latency, in both clock
// domains: exact simulated cycles (200 MHz PE/router clock; zero for
// host-side stages the simulator never models) and wall-clock microseconds
// as the serving process actually experienced them.
type StageLatency struct {
	Cycles sim.Cycle `json:"cycles"`
	WallUS float64   `json:"wall_us"`
}

// Breakdown is the per-request latency attribution returned on ?debug=trace
// and recorded by the SLO flight recorder: where the request's time went,
// stage by stage, from enqueue to delivery.
//
// The cycle columns are exact, replayable counts — Queue, Coalesce, and
// Cache are host-side stages with no simulated-cycle cost, so
//
//	Backend.Cycles + Combine.Cycles + Transfer.Cycles == TotalCycles
//
// holds with no remainder (the engine/router Stages invariant, with probe
// and failover cycles folded into Backend). The wall columns are measured
// for the host stages and derived (cycles at 200 MHz) for the simulated
// combine and transfer stages, so they are indicative rather than summing
// exactly to TotalWallUS.
type Breakdown struct {
	// RequestID is the request's deterministic coalescer-assigned ID — the
	// same value that roots the request's span chain in the Chrome trace.
	RequestID uint64 `json:"request_id"`
	// Queue is the admission-to-flush wait (lane wait included).
	Queue StageLatency `json:"queue"`
	// Coalesce is the flusher's batch build and demultiplex overhead.
	Coalesce StageLatency `json:"coalesce"`
	// Cache is the hot-embedding cache consult/strip/merge work.
	Cache StageLatency `json:"cache"`
	// Backend is the engine gather+reduce (for fleets: probe, the slowest
	// shard window, and failover replays).
	Backend StageLatency `json:"backend"`
	// Combine is partial-pool combining: host fold or rnet switch tree.
	Combine StageLatency `json:"combine"`
	// Transfer is the final root/combine-to-host output transfer.
	Transfer StageLatency `json:"transfer"`
	// TotalCycles is the simulated end-to-end batch latency the request rode.
	TotalCycles sim.Cycle `json:"total_cycles"`
	// TotalWallUS is the measured enqueue-to-delivery wall time.
	TotalWallUS float64 `json:"total_wall_us"`
}

// usOf converts a duration to float microseconds.
func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// simUS converts 200 MHz simulated cycles to microseconds.
func simUS(c sim.Cycle) float64 { return float64(c) / 200 }

// backendStages splits a timed result's cycles into the breakdown's
// backend/combine/transfer columns. Producers maintain Stages.Sum() ==
// TotalCycles; a result that does not (a test fake predating Stages)
// attributes everything to the backend so the breakdown invariant holds
// regardless.
func backendStages(res *core.TimedResult) (backend, combine, transfer sim.Cycle) {
	if res.Stages.Sum() != res.TotalCycles {
		return res.TotalCycles, 0, 0
	}
	return res.Stages.Probe + res.Stages.Backend + res.Stages.Failover,
		res.Stages.Combine, res.Stages.Transfer
}
