package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fafnir"
	"fafnir/internal/serve"
)

// TestServerDebugTrace covers the ?debug=trace echo: a request against the
// real system gets the Chrome trace of its flushed batch back in the
// response, the trace validates structurally, and an ordinary request on the
// same server carries no trace field.
func TestServerDebugTrace(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{})

	resp, err := http.Post(ts.URL+"/v1/lookup?debug=trace", "application/json",
		strings.NewReader(`{"queries":[[1,2,3],[4,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var lr serve.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Outputs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(lr.Outputs))
	}
	if len(lr.Trace) == 0 {
		t.Fatal("debug=trace response carries no trace")
	}
	n, err := fafnir.ValidateTrace(lr.Trace)
	if err != nil {
		t.Fatalf("echoed trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("echoed trace is empty")
	}
	// The batch trace must span the serving layers: engine/PE lanes from the
	// tree walk, DRAM lanes from the memory system.
	txt := string(lr.Trace)
	for _, want := range []string{`"pe.stage"`, `"hw_batch"`, `"RD"`} {
		if !strings.Contains(txt, want) {
			t.Errorf("trace lacks %s events", want)
		}
	}

	// An undecorated request on the same server stays trace-free.
	resp2, decoded := postLookup(t, ts.URL, `{"indices":[7,8]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("plain lookup status %s", resp2.Status)
	}
	if _, ok := decoded["trace"]; ok {
		t.Fatal("plain lookup response carries a trace")
	}
}

// TestServerDebugTraceUnsupportedBackend submits ?debug=trace against a
// backend that cannot attach a tracer; the lookup must still succeed, just
// without the echo.
func TestServerDebugTraceUnsupportedBackend(t *testing.T) {
	sys := &fakeSystem{fakeBackend: newFake(), rows: 1 << 16}
	_, ts := newTestServer(t, sys, serve.Config{})

	resp, err := http.Post(ts.URL+"/v1/lookup?debug=trace", "application/json",
		strings.NewReader(`{"indices":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["trace"]; ok {
		t.Fatal("untraceable backend produced a trace")
	}
}

// TestServerMemoryFamilies drives real lookups and requires the registry
// families fed by the backend's memory counters and PE statistics to appear
// on /metrics with live values.
func TestServerMemoryFamilies(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{})
	if resp, _ := postLookup(t, ts.URL, `{"queries":[[1,2,3],[4,5,6]]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %s", resp.Status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, fam := range []string{
		"fafnir_serve_pe_reduces_total",
		"fafnir_serve_pe_compares_total",
		"fafnir_serve_row_hits_total",
		"fafnir_serve_row_misses_total",
		"fafnir_serve_row_conflicts_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" counter") {
			t.Errorf("/metrics lacks family %s", fam)
		}
	}
	// A real lookup always compares headers and misses at least one row.
	if strings.Contains(out, "fafnir_serve_pe_compares_total 0\n") {
		t.Error("pe_compares_total stayed zero after a lookup")
	}
	if strings.Contains(out, "fafnir_serve_row_misses_total 0\n") {
		t.Error("row_misses_total stayed zero after a lookup")
	}
}
