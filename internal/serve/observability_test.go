package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fafnir"
	"fafnir/internal/serve"
	"fafnir/internal/telemetry"
)

// chainEvent is the decoded slice of a trace event the span-chain walk needs.
type chainEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

func argInt(ev chainEvent, key string) (int64, bool) {
	v, ok := ev.Args[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return int64(f), ok
}

func debugLookup(t *testing.T, url string) serve.LookupResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/lookup?debug=trace", "application/json",
		strings.NewReader(`{"queries":[[1,2,3],[4,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var lr serve.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestDebugTraceSpanChain is the tentpole acceptance check: a traced request's
// spans must form a single parent-linked chain across the serving layers —
// request (root) -> flush -> hardware batch — walkable through the span/parent
// args in the echoed Chrome trace.
func TestDebugTraceSpanChain(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{})

	lr := debugLookup(t, ts.URL)
	if lr.Breakdown == nil {
		t.Fatal("debug=trace response carries no breakdown")
	}
	if lr.Breakdown.RequestID == 0 {
		t.Fatal("request was never assigned an ID")
	}
	if len(lr.Trace) == 0 {
		t.Fatal("debug=trace response carries no trace")
	}

	var doc struct {
		TraceEvents []chainEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(lr.Trace, &doc); err != nil {
		t.Fatal(err)
	}

	// Root: the request span whose span ID is the breakdown's request ID.
	var reqSpan, flushSpan *chainEvent
	for i := range doc.TraceEvents {
		ev := &doc.TraceEvents[i]
		if ev.Ph != "X" || ev.PID != telemetry.PIDServe {
			continue
		}
		if span, ok := argInt(*ev, telemetry.ArgSpan); ok {
			if ev.Name == "request" && span == int64(lr.Breakdown.RequestID) {
				reqSpan = ev
			}
			if ev.Name == "flush" {
				flushSpan = ev
			}
		}
	}
	if reqSpan == nil {
		t.Fatalf("no request span with span ID %d in the trace", lr.Breakdown.RequestID)
	}
	if parent, _ := argInt(*reqSpan, telemetry.ArgParent); parent != 0 {
		t.Fatalf("request span parent = %d, want 0 (root)", parent)
	}
	flushID, ok := argInt(*reqSpan, "flush")
	if !ok || flushID == 0 {
		t.Fatal("request span carries no flush linkage")
	}

	// Middle link: the flush span, child of the traced request.
	if flushSpan == nil {
		t.Fatal("no flush span in the trace")
	}
	if span, _ := argInt(*flushSpan, telemetry.ArgSpan); span != flushID {
		t.Fatalf("flush span ID = %d, want %d (the request's flush arg)", span, flushID)
	}
	if parent, _ := argInt(*flushSpan, telemetry.ArgParent); parent != int64(lr.Breakdown.RequestID) {
		t.Fatalf("flush span parent = %d, want request %d", parent, lr.Breakdown.RequestID)
	}

	// Leaves: every hardware batch span parents under the flush.
	hwBatches := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name != "hw_batch" {
			continue
		}
		hwBatches++
		if parent, _ := argInt(ev, telemetry.ArgParent); parent != flushID {
			t.Fatalf("hw_batch span parent = %d, want flush %d", parent, flushID)
		}
		if span, _ := argInt(ev, telemetry.ArgSpan); span == 0 {
			t.Fatal("hw_batch span has no span ID")
		}
	}
	if hwBatches == 0 {
		t.Fatal("no hw_batch spans in the trace")
	}
}

// TestDebugTraceSpanChainFleet walks the same chain through the sharded
// stack: request -> flush -> shard lookups and rnet switch combines, all
// parenting under the flush span.
func TestDebugTraceSpanChainFleet(t *testing.T) {
	fleet, err := fafnir.NewFleet(fafnir.FleetConfig{
		Shards: 4, RanksPerShard: 8, Rows: 1 << 14, Seed: 1,
		Rnet: fafnir.RnetConfig{Radix: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, fleet, serve.Config{})

	lr := debugLookup(t, ts.URL)
	if lr.Breakdown == nil || len(lr.Trace) == 0 {
		t.Fatal("debug=trace response lacks breakdown or trace")
	}
	var doc struct {
		TraceEvents []chainEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(lr.Trace, &doc); err != nil {
		t.Fatal(err)
	}
	var flushID int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.PID == telemetry.PIDServe && ev.Name == "request" {
			if span, _ := argInt(ev, telemetry.ArgSpan); span == int64(lr.Breakdown.RequestID) {
				flushID, _ = argInt(ev, "flush")
			}
		}
	}
	if flushID == 0 {
		t.Fatal("traced request carries no flush linkage")
	}
	// Shard lookups and the combine span parent under the flush; the rnet
	// switch spans parent under the combine — one chain, one level deeper.
	var combineID int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "combine" {
			if parent, _ := argInt(ev, telemetry.ArgParent); parent != flushID {
				t.Fatalf("combine parent = %d, want flush %d", parent, flushID)
			}
			combineID, _ = argInt(ev, telemetry.ArgSpan)
		}
	}
	if combineID == 0 {
		t.Fatal("no combine span in the fleet trace")
	}
	shardSpans, switchSpans := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "shard.lookup":
			shardSpans++
			if parent, _ := argInt(ev, telemetry.ArgParent); parent != flushID {
				t.Fatalf("shard.lookup parent = %d, want flush %d", parent, flushID)
			}
		case "switch":
			switchSpans++
			if parent, _ := argInt(ev, telemetry.ArgParent); parent != combineID {
				t.Fatalf("switch parent = %d, want combine %d", parent, combineID)
			}
		}
	}
	if shardSpans == 0 {
		t.Fatal("no shard.lookup spans in the fleet trace")
	}
	if switchSpans == 0 {
		t.Fatal("no rnet switch spans in the fleet trace")
	}
}

// TestBreakdownCyclesSumToTotal pins the attribution invariant on the wire:
// the per-request breakdown's simulated stages sum to the request's total
// simulated cycles exactly, and the host-side stages carry no cycles.
func TestBreakdownCyclesSumToTotal(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{})

	bd := debugLookup(t, ts.URL).Breakdown
	if bd == nil {
		t.Fatal("no breakdown")
	}
	if bd.TotalCycles == 0 {
		t.Fatal("zero-cycle breakdown")
	}
	if sum := bd.Backend.Cycles + bd.Combine.Cycles + bd.Transfer.Cycles; sum != bd.TotalCycles {
		t.Fatalf("stage cycles sum to %d, total is %d (breakdown %+v)", sum, bd.TotalCycles, bd)
	}
	for name, st := range map[string]serve.StageLatency{
		"queue": bd.Queue, "coalesce": bd.Coalesce, "cache": bd.Cache,
	} {
		if st.Cycles != 0 {
			t.Fatalf("host-side stage %s carries %d simulated cycles", name, st.Cycles)
		}
	}
	if bd.TotalWallUS <= 0 {
		t.Fatal("breakdown carries no wall-clock total")
	}
}

// TestServerStageAndSLOFamilies requires the new observability families on
// /metrics and a live flight recorder on /debug/slo after real traffic.
func TestServerStageAndSLOFamilies(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{})
	for i := 0; i < 3; i++ {
		if resp, _ := postLookup(t, ts.URL, `{"queries":[[1,2,3],[4,5,6]]}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup status %s", resp.Status)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.Contains(out, "# TYPE fafnir_serve_stage_seconds histogram") {
		t.Error("/metrics lacks the stage-latency histogram family")
	}
	for _, stage := range []string{"queue", "coalesce", "cache", "backend", "combine", "transfer"} {
		if !strings.Contains(out, `fafnir_serve_stage_seconds_count{stage="`+stage+`"}`) {
			t.Errorf("/metrics lacks stage %q", stage)
		}
	}
	// Backend time is simulated but nonzero; its count must match traffic.
	if strings.Contains(out, `fafnir_serve_stage_seconds_count{stage="backend"} 0`+"\n") {
		t.Error("backend stage histogram stayed empty after lookups")
	}
	for _, lane := range []string{"high", "normal", "low"} {
		if !strings.Contains(out, `fafnir_slo_burn_rate{lane="`+lane+`"}`) {
			t.Errorf("/metrics lacks burn rate for lane %q", lane)
		}
	}

	sresp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap telemetry.SLOSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Lanes) != 3 {
		t.Fatalf("flight recorder tracks %d lanes, want 3", len(snap.Lanes))
	}
	var normal *telemetry.LaneSLO
	for i := range snap.Lanes {
		if snap.Lanes[i].Lane == "normal" {
			normal = &snap.Lanes[i]
		}
	}
	if normal == nil || normal.Good+normal.Bad == 0 {
		t.Fatalf("normal lane recorded no traffic: %+v", snap.Lanes)
	}
	if len(snap.Slowest) == 0 {
		t.Fatal("flight recorder kept no slowest requests")
	}
	// The slowest ring carries the request's breakdown as detail.
	if snap.Slowest[0].Detail == nil {
		t.Fatal("slowest record carries no detail")
	}
}
