package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fafnir"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/serve"
	"fafnir/internal/tensor"
)

// fakeSystem adapts fakeBackend to the serve.System interface for HTTP-level
// tests that need a gated or failing backend.
type fakeSystem struct {
	*fakeBackend
	rows uint64
}

func (f *fakeSystem) TotalRows() uint64 { return f.rows }

func newTestServer(t *testing.T, sys serve.System, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain(context.Background())
	})
	return srv, ts
}

func postLookup(t *testing.T, base string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/lookup", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("undecodable response (status %s): %v", resp.Status, err)
	}
	return resp, decoded
}

// TestServerBitIdentical serves a multi-query request over HTTP, then drains
// and runs the identical batch through sys.Lookup and the independent golden
// oracle: all three must agree bit for bit. float32 survives a JSON round
// trip exactly, so the comparison is legitimate.
func TestServerBitIdentical(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	srv, ts := newTestServer(t, sys, serve.Config{})

	payload := `{"queries": [[1,2,3,4], [2,3,900,901], [5]], "op": "mean"}`
	resp, _ := postLookup(t, ts.URL, payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup: %s", resp.Status)
	}
	resp2, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		Outputs []tensor.Vector `json:"outputs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(wire.Outputs) != 3 {
		t.Fatalf("got %d outputs, want 3", len(wire.Outputs))
	}

	// Stop the service, then compute the same answers directly.
	ts.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	batch := embedding.Batch{
		Queries: []embedding.Query{query(1, 2, 3, 4), query(2, 3, 900, 901), query(5)},
		Op:      tensor.OpMean,
	}
	direct, err := sys.Lookup(batch)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := sys.Golden(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire.Outputs {
		if !wire.Outputs[i].Equal(direct.Outputs[i]) {
			t.Errorf("output %d: served differs from direct sys.Lookup", i)
		}
		if !wire.Outputs[i].Equal(golden[i]) {
			t.Errorf("output %d: served differs from the golden oracle", i)
		}
	}
}

// TestServerCoalescingWin is the acceptance check end to end: 8 concurrent
// clients with a seeded Zipf workload served through the coalescer must
// show strictly fewer DRAM reads per query on /metrics than the same
// workload issued one request per batch against an identical fresh system.
func TestServerCoalescingWin(t *testing.T) {
	const n = 8
	cfg := fafnir.SystemConfig{BatchCapacity: n}
	sys := testSystem(t, cfg)
	b, err := sys.GenerateBatch(n, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: identical system, one request per hardware batch.
	base := testSystem(t, cfg)
	baseline := 0
	for _, q := range b.Queries {
		res, err := base.Lookup(embedding.Batch{Queries: []embedding.Query{q}, Op: b.Op})
		if err != nil {
			t.Fatal(err)
		}
		baseline += res.MemoryReads
	}

	// Serve the same queries from n concurrent clients. Capacity n plus a
	// long linger makes the n-th arrival trigger exactly one full flush.
	_, ts := newTestServer(t, sys, serve.Config{BatchCapacity: n, Linger: time.Minute})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sb strings.Builder
			sb.WriteString(`{"indices": [`)
			for j, idx := range b.Queries[i].Indices {
				if j > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "%d", idx)
			}
			sb.WriteString(`]}`)
			resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader(sb.String()))
			if err != nil {
				errs[i] = err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d: %s", i, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	var reads, queries, batches float64
	for _, line := range strings.Split(body, "\n") {
		fmt.Sscanf(line, "fafnir_serve_dram_reads_total %g", &reads)
		fmt.Sscanf(line, "fafnir_serve_queries_total %g", &queries)
		fmt.Sscanf(line, "fafnir_serve_batches_total %g", &batches)
	}
	if queries != n || batches != 1 {
		t.Fatalf("metrics report %v queries in %v batches, want %d in 1\n%s", queries, batches, n, body)
	}
	if perQ, basePerQ := reads/queries, float64(baseline)/n; perQ >= basePerQ {
		t.Fatalf("no coalescing win: served %.2f reads/query, baseline %.2f", perQ, basePerQ)
	}
}

// TestServerBadRequests exercises every request-validation rejection.
func TestServerBadRequests(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	_, ts := newTestServer(t, sys, serve.Config{MaxQueriesPerRequest: 2})

	cases := []struct {
		name, body, wantErr string
	}{
		{"both fields", `{"indices": [1], "queries": [[2]]}`, "not both"},
		{"neither field", `{}`, "no queries"},
		{"unknown field", `{"indices": [1], "bogus": true}`, "bogus"},
		{"bad op", `{"indices": [1], "op": "median"}`, "median"},
		{"out of range", fmt.Sprintf(`{"indices": [%d]}`, testRowsPerTable*512), "out of range"},
		{"empty query", `{"queries": [[1], []]}`, "query 1 is empty"},
		{"too many queries", `{"queries": [[1],[2],[3]]}`, "limit is 2"},
		{"not json", `hello`, "bad request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, decoded := postLookup(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %s, want 400", resp.Status)
			}
			if decoded["kind"] != "bad_request" {
				t.Errorf("kind %v, want bad_request", decoded["kind"])
			}
			if msg, _ := decoded["error"].(string); !strings.Contains(msg, tc.wantErr) {
				t.Errorf("error %q does not mention %q", msg, tc.wantErr)
			}
		})
	}
}

// TestServerOverload saturates the bounded queue and checks the server
// answers 503 with Retry-After while the backend is stuck.
func TestServerOverload(t *testing.T) {
	fake := &fakeSystem{fakeBackend: newFake(), rows: 1 << 16}
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	srv, ts := newTestServer(t, fake, serve.Config{BatchCapacity: 1, MaxQueued: 1})

	release := sync.OnceFunc(func() { close(fake.gate) })
	defer release()

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader(`{"indices": [1,2]}`))
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		if i == 0 {
			<-fake.enter // first request holds the backend; queue empties again
		} else {
			waitFor(t, func() bool { return srv.Metrics().QueueDepth.Value() == 1 })
		}
	}

	resp, decoded := postLookup(t, ts.URL, `{"indices": [5]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	if decoded["kind"] != "overloaded" {
		t.Errorf("kind %v, want overloaded", decoded["kind"])
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("admitted request finished with %d", code)
		}
	}
}

// TestServerDeadline gives a request a deadline shorter than the stuck
// backend and expects 504 within it.
func TestServerDeadline(t *testing.T) {
	fake := &fakeSystem{fakeBackend: newFake(), rows: 1 << 16}
	fake.gate = make(chan struct{})
	srv, ts := newTestServer(t, fake, serve.Config{BatchCapacity: 1})
	_ = srv

	start := time.Now()
	resp, decoded := postLookup(t, ts.URL, `{"indices": [1], "timeout_ms": 30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %s, want 504", resp.Status)
	}
	if decoded["kind"] != "deadline" {
		t.Errorf("kind %v, want deadline", decoded["kind"])
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("504 took %v, want roughly the 30ms deadline", took)
	}
	close(fake.gate)
}

// TestServerFaultKind routes a lookup of an index whose primary and replica
// ranks are both dark and expects a structured 500 rank_failed response.
func TestServerFaultKind(t *testing.T) {
	poison, dark, _ := poisonedIndexRanks(t)
	sys := testSystem(t, fafnir.SystemConfig{
		Faults: fafnir.FaultPlan{
			Seed: 7,
			RankFailures: []fafnir.RankFailure{
				{Rank: dark[0], At: 0},
				{Rank: dark[1], At: 0},
			},
		},
	})
	_, ts := newTestServer(t, sys, serve.Config{})
	resp, decoded := postLookup(t, ts.URL, fmt.Sprintf(`{"indices": [%d]}`, poison))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %s, want 500", resp.Status)
	}
	if decoded["kind"] != "rank_failed" {
		t.Errorf("kind %v, want rank_failed", decoded["kind"])
	}
}

// TestServerDrain checks the shutdown path: after Drain, lookups answer 503
// draining and healthz flips unhealthy.
func TestServerDrain(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	srv, ts := newTestServer(t, sys, serve.Config{})

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, decoded := postLookup(t, ts.URL, `{"indices": [1]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || decoded["kind"] != "draining" {
		t.Fatalf("post-drain lookup: %s kind=%v, want 503 draining", resp.Status, decoded["kind"])
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: %s, want 503", hz.Status)
	}
}

// degradedSystem wraps fakeSystem and stamps every result with a canned
// degraded report, standing in for a fleet router that absorbed faults.
type degradedSystem struct {
	*fakeSystem
	report core.DegradedReport
}

func (d *degradedSystem) Lookup(b embedding.Batch) (*core.TimedResult, error) {
	res, err := d.fakeSystem.Lookup(b)
	if err != nil {
		return nil, err
	}
	r := d.report
	res.Degraded = &r
	return res, nil
}

// TestServerDegradedResponse drives a backend that degrades every batch and
// checks the wire contract: 200 with a populated degraded field, the request
// classified under the degraded outcome, and the degraded metric families
// advancing on /metrics.
func TestServerDegradedResponse(t *testing.T) {
	sys := &degradedSystem{
		fakeSystem: &fakeSystem{fakeBackend: newFake(), rows: 1 << 16},
		report: core.DegradedReport{
			FailedRanks: []int{5},
			LostQueries: []int{1},
			Shards: []core.ShardDegraded{
				{Shard: 2, State: "dark", LostQueries: 1, LostIndices: 3, Err: "fault: shard down"},
			},
		},
	}
	_, ts := newTestServer(t, sys, serve.Config{})

	resp, decoded := postLookup(t, ts.URL, `{"queries": [[1,2],[3,4],[5]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded lookup: %s, want 200", resp.Status)
	}
	deg, ok := decoded["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("response carries no degraded object: %v", decoded)
	}
	if pq, _ := deg["partial_queries"].([]any); len(pq) != 1 || pq[0] != float64(1) {
		t.Errorf("partial_queries = %v, want [1]", deg["partial_queries"])
	}
	if fr, _ := deg["failed_ranks"].([]any); len(fr) != 1 || fr[0] != float64(5) {
		t.Errorf("failed_ranks = %v, want [5]", deg["failed_ranks"])
	}
	shards, _ := deg["shards"].([]any)
	if len(shards) != 1 {
		t.Fatalf("shards = %v, want one entry", deg["shards"])
	}
	sh := shards[0].(map[string]any)
	if sh["shard"] != float64(2) || sh["state"] != "dark" || sh["lost_indices"] != float64(3) {
		t.Errorf("shard entry = %v, want shard 2 dark with 3 lost indices", sh)
	}
	if msg, _ := sh["error"].(string); !strings.Contains(msg, "shard down") {
		t.Errorf("shard error %q does not name the fault", msg)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, line := range []string{
		`fafnir_serve_requests_total{outcome="degraded"} 1`,
		"fafnir_serve_degraded_total 1",
		"fafnir_serve_degraded_batches_total 1",
	} {
		if !strings.Contains(buf.String(), line) {
			t.Errorf("metrics missing %q\n%s", line, buf.String())
		}
	}
}

// TestServerDegradedRebasesLostQueries coalesces two single-query requests
// into one shared batch whose report loses batch-relative query 1, and checks
// each rider sees the loss in its own request coordinates: exactly one of the
// two responses reports partial query 0, the other reports none.
func TestServerDegradedRebasesLostQueries(t *testing.T) {
	sys := &degradedSystem{
		fakeSystem: &fakeSystem{fakeBackend: newFake(), rows: 1 << 16},
		report:     core.DegradedReport{LostQueries: []int{1}},
	}
	_, ts := newTestServer(t, sys, serve.Config{BatchCapacity: 2, Linger: time.Minute})

	var wg sync.WaitGroup
	bodies := make([]map[string]any, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/lookup", "application/json",
				strings.NewReader(fmt.Sprintf(`{"indices": [%d]}`, i+1)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d: %s", i, resp.Status)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&bodies[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	partial := 0
	for i, body := range bodies {
		batch := body["batch"].(map[string]any)
		if batch["coalesced_requests"] != float64(2) {
			t.Fatalf("client %d rode a batch with %v requests, want 2", i, batch["coalesced_requests"])
		}
		deg, ok := body["degraded"].(map[string]any)
		if !ok {
			t.Fatalf("client %d got no degraded object: %v", i, body)
		}
		if pq, present := deg["partial_queries"].([]any); present {
			if len(pq) != 1 || pq[0] != float64(0) {
				t.Errorf("client %d partial_queries = %v, want [0]", i, pq)
			}
			partial++
		}
	}
	if partial != 1 {
		t.Fatalf("%d clients reported a partial query, want exactly the one at batch offset 1", partial)
	}
}

// testSplitmix64 mirrors the server's jitter hash so the test can pin the
// exact Retry-After sequence a seed produces.
func testSplitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestServerRetryAfterJitter saturates the queue and checks overload 503s
// carry deterministic seeded Retry-After jitter in {1, 2, 3} seconds: the
// exact sequence (seed, rejection number) predicts.
func TestServerRetryAfterJitter(t *testing.T) {
	const seed = 7
	fake := &fakeSystem{fakeBackend: newFake(), rows: 1 << 16}
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	srv, ts := newTestServer(t, fake, serve.Config{BatchCapacity: 1, MaxQueued: 1, RetryJitterSeed: seed})

	release := sync.OnceFunc(func() { close(fake.gate) })
	defer release()

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader(`{"indices": [1,2]}`))
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		if i == 0 {
			<-fake.enter
		} else {
			waitFor(t, func() bool { return srv.Metrics().QueueDepth.Value() == 1 })
		}
	}

	for seq := uint64(1); seq <= 5; seq++ {
		resp, _ := postLookup(t, ts.URL, `{"indices": [5]}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("rejection %d: status %s, want 503", seq, resp.Status)
		}
		got := resp.Header.Get("Retry-After")
		want := strconv.FormatUint(1+testSplitmix64(seed^seq)%3, 10)
		if got != want {
			t.Errorf("rejection %d: Retry-After %q, want %q", seq, got, want)
		}
		if got != "1" && got != "2" && got != "3" {
			t.Errorf("rejection %d: Retry-After %q outside the jitter window {1,2,3}", seq, got)
		}
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("admitted request finished with %d", code)
		}
	}
}

// TestServerHealthzDuringDrain pins the shutdown ordering contract: the
// moment Drain begins, /healthz answers 503 so load balancers stop routing —
// yet requests already admitted to the queue still flush to completion, and
// the post-drain lookup rejection carries the fixed drain Retry-After.
func TestServerHealthzDuringDrain(t *testing.T) {
	fake := &fakeSystem{fakeBackend: newFake(), rows: 1 << 16}
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	srv, ts := newTestServer(t, fake, serve.Config{BatchCapacity: 1})

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/lookup", "application/json", strings.NewReader(`{"indices": [3]}`))
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		if i == 0 {
			<-fake.enter // first request holds the backend at the gate
		} else {
			waitFor(t, func() bool { return srv.Metrics().QueueDepth.Value() == 1 })
		}
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Health flips unhealthy while the queued request is still unanswered.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	select {
	case code := <-done:
		t.Fatalf("a request finished with %d before the backend gate opened", code)
	default:
	}

	// Open the gate: both admitted requests must still complete with 200.
	close(fake.gate)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("queued request finished with %d after drain, want 200", code)
		}
	}

	resp, decoded := postLookup(t, ts.URL, `{"indices": [1]}`)
	if resp.StatusCode != http.StatusServiceUnavailable || decoded["kind"] != "draining" {
		t.Fatalf("post-drain lookup: %s kind=%v, want 503 draining", resp.Status, decoded["kind"])
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("draining Retry-After = %q, want the fixed \"1\" (no jitter: the listener is going away)", ra)
	}
}

// TestServerNew covers constructor validation.
func TestServerNew(t *testing.T) {
	if _, err := serve.New(nil, serve.Config{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := serve.New(&fakeSystem{fakeBackend: newFake(), rows: 8}, serve.Config{MaxQueued: -1}); err == nil {
		t.Error("invalid config accepted")
	}
}
