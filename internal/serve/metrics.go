package serve

import (
	"fmt"
	"io"
	"time"

	"fafnir/internal/telemetry"
)

// Outcome classifies how one request terminated, for the requests_total
// metric's outcome label.
type Outcome int

// The terminal request classifications.
const (
	OutcomeOK Outcome = iota
	OutcomeBadRequest
	OutcomeOverload
	OutcomeDraining
	OutcomeDeadline
	OutcomeError
	// OutcomeDegraded is a 200 response whose batch absorbed faults: the
	// outputs are valid but possibly partial, and the response body carries
	// a degraded report itemizing what was lost or failed over.
	OutcomeDegraded
	numOutcomes
)

// String returns the outcome's metric label value.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBadRequest:
		return "bad_request"
	case OutcomeOverload:
		return "overload"
	case OutcomeDraining:
		return "draining"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeError:
		return "error"
	case OutcomeDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Metrics is the serving layer's live instrumentation, built on the shared
// telemetry.Registry: every family below registers into one registry whose
// Render emits the whole set in Prometheus text format, byte-compatible with
// the hand-rolled renderer this replaced. All fields are safe for concurrent
// use.
type Metrics struct {
	reg *telemetry.Registry

	// Requests counts terminated HTTP requests by outcome; index with
	// Requests.At(int(outcome)).
	Requests *telemetry.CounterVec
	// Queries counts queries served through flushed batches.
	Queries *telemetry.Counter
	// Batches counts flushed hardware batches.
	Batches *telemetry.Counter
	// CoalescedRequests counts requests that shared their batch with at
	// least one other request.
	CoalescedRequests *telemetry.Counter
	// IsolationRetries counts shared batches that failed and were re-run
	// per request to confine the error to the offending caller.
	IsolationRetries *telemetry.Counter
	// DegradedResponses counts 200 responses that rode a degraded batch;
	// DegradedBatches counts the flushed batches themselves.
	DegradedResponses *telemetry.Counter
	DegradedBatches   *telemetry.Counter
	// ExpiredInQueue counts requests whose deadline passed while queued or
	// mid-flush, before a result could be delivered.
	ExpiredInQueue *telemetry.Counter
	// DRAMReads accumulates simulated DRAM vector reads after cross-request
	// deduplication; NaiveReads is what the same traffic would have read
	// without it.
	DRAMReads  *telemetry.Counter
	NaiveReads *telemetry.Counter
	// BytesRead accumulates simulated DRAM traffic.
	BytesRead *telemetry.Counter
	// SimCycles accumulates simulated batch latency (PE clock).
	SimCycles *telemetry.Counter
	// QueueDepth is the instantaneous admission-queue depth in queries.
	QueueDepth *telemetry.Gauge
	// RequestSeconds is the wall-clock request latency histogram.
	RequestSeconds *telemetry.Histogram
	// BatchQueries is the queries-per-flushed-batch histogram (the
	// coalescing shape).
	BatchQueries *telemetry.Histogram

	// PEReduces and PECompares accumulate the reduction tree's per-batch
	// action counts, attributing simulated cycles to tree work.
	PEReduces  *telemetry.Counter
	PECompares *telemetry.Counter
	// RowHits/RowMisses/RowConflicts mirror the memory model's row-buffer
	// outcome counters, delta-folded per flush by the coalescer when the
	// backend exposes them (see MemoryStatsSource).
	RowHits      *telemetry.Counter
	RowMisses    *telemetry.Counter
	RowConflicts *telemetry.Counter

	// CacheHits/CacheMisses count hot-embedding cache consultations at
	// batch build time; CacheEvictions counts CLOCK evictions and
	// CacheBytes accumulates bytes admitted (slot-sized, cumulative —
	// CacheResident is the instantaneous footprint).
	CacheHits      *telemetry.Counter
	CacheMisses    *telemetry.Counter
	CacheEvictions *telemetry.Counter
	CacheBytes     *telemetry.Counter
	CacheResident  *telemetry.Gauge
	// Shed counts submissions rejected by QoS admission control, by lane;
	// index with Shed.At(int(priority)).
	Shed *telemetry.CounterVec
	// StageSeconds attributes per-request latency to pipeline stages (the
	// Breakdown stages): measured wall seconds for the host-side queue/
	// coalesce/cache/backend stages, derived seconds (simulated cycles at
	// 200 MHz) for combine and transfer. Index with StageSeconds.At(stage*).
	StageSeconds *telemetry.HistogramVec
}

// The latency-attribution stages, in StageSeconds label order.
const (
	stageQueue = iota
	stageCoalesce
	stageCache
	stageBackend
	stageCombine
	stageTransfer
	numStages
)

var stageNames = [numStages]string{"queue", "coalesce", "cache", "backend", "combine", "transfer"}

// requestBuckets are the wall-clock latency bounds in seconds. The three
// sub-millisecond buckets exist because a coalesced in-memory lookup
// routinely completes in tens of microseconds — with 100 µs as the lowest
// bound the common case was invisible.
var requestBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewMetrics builds an empty metrics set over a fresh registry.
func NewMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{reg: reg}
	outcomes := make([]string, numOutcomes)
	for o := Outcome(0); o < numOutcomes; o++ {
		outcomes[o] = o.String()
	}
	m.Requests = reg.CounterVec("fafnir_serve_requests_total", "Terminated lookup requests by outcome.", "outcome", outcomes...)
	m.Queries = reg.Counter("fafnir_serve_queries_total", "Queries served through flushed batches.")
	m.Batches = reg.Counter("fafnir_serve_batches_total", "Hardware batches flushed through the engine.")
	m.CoalescedRequests = reg.Counter("fafnir_serve_coalesced_requests_total", "Requests that shared their batch with another request.")
	m.IsolationRetries = reg.Counter("fafnir_serve_isolation_retries_total", "Failed shared batches re-run per request to confine the error.")
	m.DegradedResponses = reg.Counter("fafnir_serve_degraded_total", "Successful responses served from a degraded (fault-absorbing) batch.")
	m.DegradedBatches = reg.Counter("fafnir_serve_degraded_batches_total", "Flushed batches whose backend absorbed faults while serving them.")
	m.ExpiredInQueue = reg.Counter("fafnir_serve_expired_in_queue_total", "Requests whose deadline passed before delivery.")
	m.DRAMReads = reg.Counter("fafnir_serve_dram_reads_total", "Simulated DRAM vector reads after cross-request deduplication.")
	m.NaiveReads = reg.Counter("fafnir_serve_naive_reads_total", "DRAM vector reads the same traffic would issue without deduplication.")
	m.BytesRead = reg.Counter("fafnir_serve_bytes_read_total", "Simulated DRAM traffic in bytes.")
	m.SimCycles = reg.Counter("fafnir_serve_sim_cycles_total", "Simulated batch latency in PE-clock cycles, summed over batches.")
	m.QueueDepth = reg.Gauge("fafnir_serve_queue_depth", "Instantaneous admission-queue depth in queries.")
	reg.GaugeFunc("fafnir_serve_reads_per_query", "Measured DRAM reads per served query.", m.ReadsPerQuery)
	reg.GaugeFunc("fafnir_serve_coalesce_factor", "Mean queries per flushed batch.", m.CoalesceFactor)
	m.RequestSeconds = reg.Histogram("fafnir_serve_request_seconds", "Wall-clock request latency.", requestBuckets)
	m.BatchQueries = reg.Histogram("fafnir_serve_batch_queries", "Queries per flushed hardware batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	m.PEReduces = reg.Counter("fafnir_serve_pe_reduces_total", "PE reduce actions across flushed batches.")
	m.PECompares = reg.Counter("fafnir_serve_pe_compares_total", "PE header comparisons across flushed batches.")
	m.RowHits = reg.Counter("fafnir_serve_row_hits_total", "DRAM row-buffer hits attributed to flushed batches.")
	m.RowMisses = reg.Counter("fafnir_serve_row_misses_total", "DRAM row-buffer misses attributed to flushed batches.")
	m.RowConflicts = reg.Counter("fafnir_serve_row_conflicts_total", "DRAM row-buffer conflicts attributed to flushed batches.")
	m.CacheHits = reg.Counter("fafnir_cache_hits_total", "Hot-embedding cache hits at batch build time.")
	m.CacheMisses = reg.Counter("fafnir_cache_misses_total", "Hot-embedding cache misses at batch build time.")
	m.CacheEvictions = reg.Counter("fafnir_cache_evictions_total", "Hot-embedding cache CLOCK evictions.")
	m.CacheBytes = reg.Counter("fafnir_cache_bytes_total", "Cumulative bytes admitted into the hot-embedding cache.")
	m.CacheResident = reg.Gauge("fafnir_cache_resident_bytes", "Instantaneous hot-embedding cache footprint in bytes.")
	lanes := make([]string, numLanes)
	for p := Priority(0); p < numLanes; p++ {
		lanes[p] = p.String()
	}
	m.Shed = reg.CounterVec("fafnir_serve_shed_total", "Submissions rejected by QoS admission control, by lane.", "lane", lanes...)
	m.StageSeconds = reg.HistogramVec("fafnir_serve_stage_seconds", "Per-request latency attribution by pipeline stage.", "stage", requestBuckets, stageNames[:]...)
	return m
}

// observeStages folds one delivered request's latency attribution into the
// per-stage histograms.
func (m *Metrics) observeStages(bd *Breakdown) {
	m.StageSeconds.At(stageQueue).Observe(bd.Queue.WallUS / 1e6)
	m.StageSeconds.At(stageCoalesce).Observe(bd.Coalesce.WallUS / 1e6)
	m.StageSeconds.At(stageCache).Observe(bd.Cache.WallUS / 1e6)
	m.StageSeconds.At(stageBackend).Observe(bd.Backend.WallUS / 1e6)
	m.StageSeconds.At(stageCombine).Observe(bd.Combine.WallUS / 1e6)
	m.StageSeconds.At(stageTransfer).Observe(bd.Transfer.WallUS / 1e6)
}

// Registry returns the registry backing the metrics set; embedders may
// register additional families onto the same /metrics endpoint.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// ObserveRequest records one terminated HTTP request.
func (m *Metrics) ObserveRequest(o Outcome, d time.Duration) {
	if o < 0 || o >= numOutcomes {
		o = OutcomeError
	}
	m.Requests.At(int(o)).Add(1)
	m.RequestSeconds.Observe(d.Seconds())
}

// observeBatch folds one flushed batch into the aggregate counters.
func (m *Metrics) observeBatch(st BatchStats) {
	m.Batches.Add(1)
	if st.Degraded != nil {
		m.DegradedBatches.Add(1)
	}
	m.Queries.Add(uint64(st.BatchQueries))
	if st.Requests >= 2 {
		m.CoalescedRequests.Add(uint64(st.Requests))
	}
	m.DRAMReads.Add(uint64(st.MemoryReads))
	m.NaiveReads.Add(uint64(st.NaiveReads))
	m.BytesRead.Add(st.BytesRead)
	m.SimCycles.Add(uint64(st.TotalCycles))
	m.PEReduces.Add(uint64(st.Reduces))
	m.PECompares.Add(uint64(st.Compares))
	m.BatchQueries.Observe(float64(st.BatchQueries))
}

// ReadsPerQuery reports the measured DRAM reads per served query — the
// serving layer's headline number, which drops below the single-request
// baseline as concurrent requests share batches.
func (m *Metrics) ReadsPerQuery() float64 {
	q := m.Queries.Value()
	if q == 0 {
		return 0
	}
	return float64(m.DRAMReads.Value()) / float64(q)
}

// CoalesceFactor reports the mean queries per flushed batch.
func (m *Metrics) CoalesceFactor() float64 {
	b := m.Batches.Value()
	if b == 0 {
		return 0
	}
	return float64(m.Queries.Value()) / float64(b)
}

// Render writes every metric in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) { m.reg.Render(w) }
