package serve

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Outcome classifies how one request terminated, for the requests_total
// metric's outcome label.
type Outcome int

// The terminal request classifications.
const (
	OutcomeOK Outcome = iota
	OutcomeBadRequest
	OutcomeOverload
	OutcomeDraining
	OutcomeDeadline
	OutcomeError
	numOutcomes
)

// String returns the outcome's metric label value.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBadRequest:
		return "bad_request"
	case OutcomeOverload:
		return "overload"
	case OutcomeDraining:
		return "draining"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket Prometheus histogram.
type Histogram struct {
	bounds []float64 // upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Metrics is the serving layer's live instrumentation. All fields are safe
// for concurrent use; Render emits the whole set in Prometheus text format.
type Metrics struct {
	// Requests counts terminated HTTP requests by outcome.
	Requests [numOutcomes]Counter
	// Queries counts queries served through flushed batches.
	Queries Counter
	// Batches counts flushed hardware batches.
	Batches Counter
	// CoalescedRequests counts requests that shared their batch with at
	// least one other request.
	CoalescedRequests Counter
	// IsolationRetries counts shared batches that failed and were re-run
	// per request to confine the error to the offending caller.
	IsolationRetries Counter
	// ExpiredInQueue counts requests whose deadline passed while queued or
	// mid-flush, before a result could be delivered.
	ExpiredInQueue Counter
	// DRAMReads accumulates simulated DRAM vector reads after cross-request
	// deduplication; NaiveReads is what the same traffic would have read
	// without it.
	DRAMReads  Counter
	NaiveReads Counter
	// BytesRead accumulates simulated DRAM traffic.
	BytesRead Counter
	// SimCycles accumulates simulated batch latency (PE clock).
	SimCycles Counter
	// QueueDepth is the instantaneous admission-queue depth in queries.
	QueueDepth Gauge
	// RequestSeconds is the wall-clock request latency histogram.
	RequestSeconds *Histogram
	// BatchQueries is the queries-per-flushed-batch histogram (the
	// coalescing shape).
	BatchQueries *Histogram
}

// NewMetrics builds an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		RequestSeconds: newHistogram([]float64{
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
			0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
		}),
		BatchQueries: newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

// ObserveRequest records one terminated HTTP request.
func (m *Metrics) ObserveRequest(o Outcome, d time.Duration) {
	if o < 0 || o >= numOutcomes {
		o = OutcomeError
	}
	m.Requests[o].Add(1)
	m.RequestSeconds.Observe(d.Seconds())
}

// observeBatch folds one flushed batch into the aggregate counters.
func (m *Metrics) observeBatch(st BatchStats) {
	m.Batches.Add(1)
	m.Queries.Add(uint64(st.BatchQueries))
	if st.Requests >= 2 {
		m.CoalescedRequests.Add(uint64(st.Requests))
	}
	m.DRAMReads.Add(uint64(st.MemoryReads))
	m.NaiveReads.Add(uint64(st.NaiveReads))
	m.BytesRead.Add(st.BytesRead)
	m.SimCycles.Add(uint64(st.TotalCycles))
	m.BatchQueries.Observe(float64(st.BatchQueries))
}

// ReadsPerQuery reports the measured DRAM reads per served query — the
// serving layer's headline number, which drops below the single-request
// baseline as concurrent requests share batches.
func (m *Metrics) ReadsPerQuery() float64 {
	q := m.Queries.Value()
	if q == 0 {
		return 0
	}
	return float64(m.DRAMReads.Value()) / float64(q)
}

// CoalesceFactor reports the mean queries per flushed batch.
func (m *Metrics) CoalesceFactor() float64 {
	b := m.Batches.Value()
	if b == 0 {
		return 0
	}
	return float64(m.Queries.Value()) / float64(b)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func renderCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func renderGauge(w io.Writer, name, help string, v string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
}

func renderHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// Render writes every metric in Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	fmt.Fprintf(w, "# HELP fafnir_serve_requests_total Terminated lookup requests by outcome.\n")
	fmt.Fprintf(w, "# TYPE fafnir_serve_requests_total counter\n")
	for o := Outcome(0); o < numOutcomes; o++ {
		fmt.Fprintf(w, "fafnir_serve_requests_total{outcome=%q} %d\n", o.String(), m.Requests[o].Value())
	}
	renderCounter(w, "fafnir_serve_queries_total", "Queries served through flushed batches.", m.Queries.Value())
	renderCounter(w, "fafnir_serve_batches_total", "Hardware batches flushed through the engine.", m.Batches.Value())
	renderCounter(w, "fafnir_serve_coalesced_requests_total", "Requests that shared their batch with another request.", m.CoalescedRequests.Value())
	renderCounter(w, "fafnir_serve_isolation_retries_total", "Failed shared batches re-run per request to confine the error.", m.IsolationRetries.Value())
	renderCounter(w, "fafnir_serve_expired_in_queue_total", "Requests whose deadline passed before delivery.", m.ExpiredInQueue.Value())
	renderCounter(w, "fafnir_serve_dram_reads_total", "Simulated DRAM vector reads after cross-request deduplication.", m.DRAMReads.Value())
	renderCounter(w, "fafnir_serve_naive_reads_total", "DRAM vector reads the same traffic would issue without deduplication.", m.NaiveReads.Value())
	renderCounter(w, "fafnir_serve_bytes_read_total", "Simulated DRAM traffic in bytes.", m.BytesRead.Value())
	renderCounter(w, "fafnir_serve_sim_cycles_total", "Simulated batch latency in PE-clock cycles, summed over batches.", m.SimCycles.Value())
	renderGauge(w, "fafnir_serve_queue_depth", "Instantaneous admission-queue depth in queries.", strconv.FormatInt(m.QueueDepth.Value(), 10))
	renderGauge(w, "fafnir_serve_reads_per_query", "Measured DRAM reads per served query.", fmtFloat(m.ReadsPerQuery()))
	renderGauge(w, "fafnir_serve_coalesce_factor", "Mean queries per flushed batch.", fmtFloat(m.CoalesceFactor()))
	renderHistogram(w, "fafnir_serve_request_seconds", "Wall-clock request latency.", m.RequestSeconds)
	renderHistogram(w, "fafnir_serve_batch_queries", "Queries per flushed hardware batch.", m.BatchQueries)
}
