package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fafnir"
	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/oracle"
	"fafnir/internal/serve"
	"fafnir/internal/tensor"
)

// Row and Dim make fakeBackend a serve.RowSource, so cache tests can run
// over the oracle-computing fake.
func (f *fakeBackend) Row(idx header.Index) (tensor.Vector, error) { return f.store.Vector(idx) }
func (f *fakeBackend) Dim() int                                    { return f.store.Dim() }

// cacheOps are the pooling operations the conformance suite sweeps.
var cacheOps = []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean}

// conformanceQueries builds a deterministic request stream with heavy
// cross-request index reuse (the hot set), so a second pass hits the cache.
func conformanceQueries(seed int64, rows uint64, requests, queriesPer, indicesPer int) [][]embedding.Query {
	rng := rand.New(rand.NewSource(seed))
	hot := make([]header.Index, 64)
	for i := range hot {
		hot[i] = header.Index(rng.Int63n(int64(rows)))
	}
	out := make([][]embedding.Query, requests)
	for r := range out {
		qs := make([]embedding.Query, queriesPer)
		for qi := range qs {
			idxs := make([]header.Index, 0, indicesPer)
			for len(idxs) < indicesPer {
				var v header.Index
				if rng.Intn(4) != 0 { // 75% of draws come from the hot set
					v = hot[rng.Intn(len(hot))]
				} else {
					v = header.Index(rng.Int63n(int64(rows)))
				}
				idxs = append(idxs, v)
			}
			qs[qi] = embedding.Query{Indices: header.NewIndexSet(idxs...)}
		}
		out[r] = qs
	}
	return out
}

// submitAll runs the request stream through a coalescer twice (the second
// pass re-reads the first pass's working set, exercising strip-and-merge)
// and returns every output in submission order.
func submitAll(t *testing.T, co *serve.Coalescer, op tensor.ReduceOp, reqs [][]embedding.Query) []tensor.Vector {
	t.Helper()
	var outs []tensor.Vector
	for pass := 0; pass < 2; pass++ {
		for i, qs := range reqs {
			o, _, err := co.Submit(context.Background(), op, qs)
			if err != nil {
				t.Fatalf("pass %d request %d: %v", pass, i, err)
			}
			outs = append(outs, o...)
		}
	}
	return outs
}

// TestCacheConformance is the metamorphic suite: for every pooling op and
// Parallelism in {1, 2, NumCPU}, outputs with the cache on are bit-identical
// to the cache-off run and to the independent oracle over a separately built
// store.
func TestCacheConformance(t *testing.T) {
	reqs := conformanceQueries(17, 32*testRowsPerTable, 12, 3, 16)
	for _, par := range []int{1, 2, runtime.NumCPU()} {
		for _, op := range cacheOps {
			t.Run(fmt.Sprintf("p%d/%s", par, op), func(t *testing.T) {
				run := func(cacheBytes int64) []tensor.Vector {
					sys := testSystem(t, fafnir.SystemConfig{Parallelism: par})
					co, err := serve.NewCoalescer(serve.Config{CacheBytes: cacheBytes, CacheSeed: 5}, sys, nil)
					if err != nil {
						t.Fatal(err)
					}
					defer co.Close(context.Background())
					return submitAll(t, co, op, reqs)
				}
				cached := run(1 << 20)
				plain := run(0)
				if len(cached) != len(plain) {
					t.Fatalf("output counts differ: %d vs %d", len(cached), len(plain))
				}
				for i := range cached {
					if !cached[i].Equal(plain[i]) {
						t.Fatalf("output %d: cache-on diverges from cache-off\n  on:  %v\n  off: %v",
							i, cached[i][:4], plain[i][:4])
					}
				}
				// Independent referee: the oracle over a separately built
				// store (same layout parameters as the System facade).
				store := embedding.MustStore(32*testRowsPerTable, 128, 1)
				var flat []embedding.Query
				for pass := 0; pass < 2; pass++ {
					for _, qs := range reqs {
						flat = append(flat, qs...)
					}
				}
				want, err := oracle.Lookup(store, embedding.Batch{Queries: flat, Op: op})
				if err != nil {
					t.Fatal(err)
				}
				for i := range cached {
					if !cached[i].Equal(want[i]) {
						t.Fatalf("output %d: cache-on diverges from oracle", i)
					}
				}
			})
		}
	}
}

// TestCacheConformanceFaulted reruns the conformance comparison under a
// recoverable seeded fault plan (dark rank remapped to its replica, ECC
// retries): the degraded machinery changes timing and reports, never
// outputs, so cache-on must still match cache-off and the oracle.
func TestCacheConformanceFaulted(t *testing.T) {
	reqs := conformanceQueries(23, 32*testRowsPerTable, 8, 2, 16)
	for _, par := range []int{1, runtime.NumCPU()} {
		for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMean} {
			t.Run(fmt.Sprintf("p%d/%s", par, op), func(t *testing.T) {
				run := func(cacheBytes int64) []tensor.Vector {
					// Each run parses its own plan: the injector carries
					// per-run state, so sharing one would entangle them.
					plan, err := fafnir.ParseFaultPlan("rank=3@0;ecc=0.001;seed=9")
					if err != nil {
						t.Fatal(err)
					}
					sys := testSystem(t, fafnir.SystemConfig{Parallelism: par, Faults: plan})
					co, err := serve.NewCoalescer(serve.Config{CacheBytes: cacheBytes, CacheSeed: 11}, sys, nil)
					if err != nil {
						t.Fatal(err)
					}
					defer co.Close(context.Background())
					return submitAll(t, co, op, reqs)
				}
				cached := run(1 << 19)
				plain := run(0)
				for i := range cached {
					if !cached[i].Equal(plain[i]) {
						t.Fatalf("output %d diverges under faults", i)
					}
				}
				store := embedding.MustStore(32*testRowsPerTable, 128, 1)
				var flat []embedding.Query
				for pass := 0; pass < 2; pass++ {
					for _, qs := range reqs {
						flat = append(flat, qs...)
					}
				}
				want, err := oracle.Lookup(store, embedding.Batch{Queries: flat, Op: op})
				if err != nil {
					t.Fatal(err)
				}
				for i := range cached {
					if !cached[i].Equal(want[i]) {
						t.Fatalf("output %d diverges from oracle under faults", i)
					}
				}
			})
		}
	}
}

// TestCacheConformanceFleet runs the two-pass comparison through the fleet
// router: per-shard cache partitions, outputs bit-identical to cache-off and
// to the batch golden over the fleet's own store.
func TestCacheConformanceFleet(t *testing.T) {
	const rows = 1 << 14
	reqs := conformanceQueries(31, rows, 10, 2, 12)
	for _, op := range cacheOps {
		t.Run(op.String(), func(t *testing.T) {
			var goldenStore *embedding.Store
			run := func(cacheBytes int64) []tensor.Vector {
				fleet, err := fafnir.NewFleet(fafnir.FleetConfig{
					Shards: 4, RanksPerShard: 8, Rows: rows, Seed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				goldenStore = fleet.Store()
				co, err := serve.NewCoalescer(serve.Config{CacheBytes: cacheBytes, CacheSeed: 7}, fleet, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer co.Close(context.Background())
				return submitAll(t, co, op, reqs)
			}
			cached := run(1 << 20)
			plain := run(0)
			for i := range cached {
				if !cached[i].Equal(plain[i]) {
					t.Fatalf("output %d: fleet cache-on diverges from cache-off", i)
				}
			}
			var flat []embedding.Query
			for pass := 0; pass < 2; pass++ {
				for _, qs := range reqs {
					flat = append(flat, qs...)
				}
			}
			want, err := embedding.Batch{Queries: flat, Op: op}.Golden(goldenStore)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cached {
				if !cached[i].Equal(want[i]) {
					t.Fatalf("output %d: fleet cache-on diverges from golden", i)
				}
			}
		})
	}
}

// TestCacheWholeBatchFromCache pins the all-hits path: a batch whose every
// index is cached never touches the backend and still returns bit-identical
// outputs.
func TestCacheWholeBatchFromCache(t *testing.T) {
	for _, op := range cacheOps {
		t.Run(op.String(), func(t *testing.T) {
			f := newFake()
			co, err := serve.NewCoalescer(serve.Config{CacheBytes: 1 << 16}, f, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer co.Close(context.Background())

			qs := []embedding.Query{query(3, 9, 27), query(9, 81)}
			first, st1, err := co.Submit(context.Background(), op, qs)
			if err != nil {
				t.Fatal(err)
			}
			if st1.CacheMisses != 5 { // 3+2 index reads; 9 misses in both queries
				t.Fatalf("first pass CacheMisses = %d, want 5", st1.CacheMisses)
			}

			// Any backend call now is a bug: the whole batch must come from
			// the cache.
			f.fail = func(embedding.Batch) error { return errors.New("backend touched on a fully cached batch") }
			second, st2, err := co.Submit(context.Background(), op, qs)
			if err != nil {
				t.Fatal(err)
			}
			if st2.MemoryReads != 0 {
				t.Fatalf("fully cached batch reported %d memory reads", st2.MemoryReads)
			}
			if st2.CacheHits != 5 || st2.CacheMisses != 0 { // 3+2 index reads
				t.Fatalf("second pass hits/misses = %d/%d, want 5/0", st2.CacheHits, st2.CacheMisses)
			}
			for i := range first {
				if !second[i].Equal(first[i]) {
					t.Fatalf("query %d: cached output diverges from computed one\n  got  %v\n  want %v",
						i, second[i], first[i])
				}
			}
		})
	}
}

// TestCacheReducesReads pins the headline effect: a second pass over the
// same working set is served mostly from cache, cutting backend reads.
func TestCacheReducesReads(t *testing.T) {
	f := newFake()
	co, err := serve.NewCoalescer(serve.Config{CacheBytes: 1 << 20}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())
	reqs := conformanceQueries(43, 1<<16, 16, 2, 16)
	pass := func() (reads int) {
		for _, qs := range reqs {
			_, st, err := co.Submit(context.Background(), tensor.OpSum, qs)
			if err != nil {
				t.Fatal(err)
			}
			reads += st.MemoryReads
		}
		return reads
	}
	warm := pass()
	hot := pass()
	if hot != 0 {
		t.Fatalf("second pass issued %d backend reads, want 0 (cache holds the whole working set)", hot)
	}
	if warm == 0 {
		t.Fatal("first pass issued no backend reads")
	}
	m := co.Metrics()
	if m.CacheHits.Value() == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// TestCacheRequiresRowSource pins the capability contract: a byte budget
// over a backend that cannot hand out raw rows is a construction error, not
// a silent no-op.
func TestCacheRequiresRowSource(t *testing.T) {
	_, err := serve.NewCoalescer(serve.Config{CacheBytes: 1 << 20}, noRowsBackend{newFake()}, nil)
	if err == nil {
		t.Fatal("NewCoalescer accepted CacheBytes over a backend without RowSource")
	}
}

// noRowsBackend forwards lookups but hides the fake's RowSource capability.
type noRowsBackend struct{ f *fakeBackend }

func (n noRowsBackend) Lookup(b embedding.Batch) (*fafnir.LookupResult, error) { return n.f.Lookup(b) }
