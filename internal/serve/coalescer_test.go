package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fafnir"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/oracle"
	"fafnir/internal/serve"
	"fafnir/internal/tensor"
)

const testRowsPerTable = 2048

func testSystem(t testing.TB, cfg fafnir.SystemConfig) *fafnir.System {
	t.Helper()
	if cfg.RowsPerTable == 0 {
		cfg.RowsPerTable = testRowsPerTable
	}
	sys, err := fafnir.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// fakeBackend computes lookups with the independent oracle (no engine, no
// timing); tests use it where they need to gate, fail, or count calls
// without the engine's cost.
type fakeBackend struct {
	store *embedding.Store
	gate  chan struct{}   // when non-nil, every Lookup receives once before working
	enter chan struct{}   // when non-nil, signals Lookup entry
	fail  func(b embedding.Batch) error
}

func (f *fakeBackend) Lookup(b embedding.Batch) (*core.TimedResult, error) {
	if f.enter != nil {
		f.enter <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	if f.fail != nil {
		if err := f.fail(b); err != nil {
			return nil, err
		}
	}
	outs, err := oracle.Lookup(f.store, b)
	if err != nil {
		return nil, err
	}
	res := &core.TimedResult{}
	res.Outputs = outs
	res.MemoryReads = b.UniqueIndices().Len()
	res.HWBatches = 1
	return res, nil
}

func newFake() *fakeBackend {
	return &fakeBackend{store: embedding.MustStore(1<<16, 16, 1)}
}

func query(indices ...header.Index) embedding.Query {
	return embedding.Query{Indices: header.NewIndexSet(indices...)}
}

// TestCoalescerConcurrentRace pushes N goroutines x M requests through a
// coalescer over the real engine and verifies every caller got exactly its
// own golden result back, whatever batches the requests shared. Run under
// -race by scripts/check.sh.
func TestCoalescerConcurrentRace(t *testing.T) {
	sys := testSystem(t, fafnir.SystemConfig{})
	const goroutines, perG = 6, 8
	b, err := sys.GenerateBatch(goroutines*perG, 11)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := sys.Golden(b)
	if err != nil {
		t.Fatal(err)
	}

	co, err := serve.NewCoalescer(serve.Config{
		BatchCapacity: 8,
		Linger:        200 * time.Microsecond,
		MaxQueued:     goroutines * perG,
	}, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())

	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				qi := g*perG + i
				outs, stats, err := co.Submit(context.Background(), b.Op, []embedding.Query{b.Queries[qi]})
				if err != nil {
					errs[g] = fmt.Errorf("query %d: %w", qi, err)
					return
				}
				if len(outs) != 1 || !outs[0].Equal(golden[qi]) {
					errs[g] = fmt.Errorf("query %d: wrong output (batch %+v)", qi, stats)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := co.Metrics()
	if got := m.Queries.Value(); got != goroutines*perG {
		t.Fatalf("served %d queries, want %d", got, goroutines*perG)
	}
	if m.Batches.Value() == 0 {
		t.Fatal("no batches flushed")
	}
}

// TestCoalescingWinDeterministic is the acceptance check at the coalescer
// level: a seeded Zipf workload served through a full shared batch reads
// strictly fewer DRAM vectors per query than the same queries served one
// request per batch.
func TestCoalescingWinDeterministic(t *testing.T) {
	const n = 8
	sys := testSystem(t, fafnir.SystemConfig{BatchCapacity: n})
	b, err := sys.GenerateBatch(n, 3) // Zipf 1.3 by default: hot rows shared across queries
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: each query alone, one hardware batch per request.
	base := testSystem(t, fafnir.SystemConfig{BatchCapacity: n})
	baseline := 0
	for _, q := range b.Queries {
		res, err := base.Lookup(embedding.Batch{Queries: []embedding.Query{q}, Op: b.Op})
		if err != nil {
			t.Fatal(err)
		}
		baseline += res.MemoryReads
	}

	// Served: capacity n with a long linger, so the n-th concurrent request
	// deterministically triggers one full flush containing all n queries.
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: n, Linger: time.Minute, MaxQueued: 4 * n}, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = co.Submit(context.Background(), b.Op, []embedding.Query{b.Queries[i]})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := co.Metrics()
	if got := m.Batches.Value(); got != 1 {
		t.Fatalf("flushed %d batches, want exactly 1", got)
	}
	served := int(m.DRAMReads.Value())
	if served >= baseline {
		t.Fatalf("coalescing win missing: served batch read %d vectors, single-request baseline read %d", served, baseline)
	}
	if perQ, basePerQ := m.ReadsPerQuery(), float64(baseline)/n; perQ >= basePerQ {
		t.Fatalf("reads/query %v not below baseline %v", perQ, basePerQ)
	}
}

// TestCoalescerDeadlineWhileQueued expires a request while it waits behind a
// stuck flush; Submit must return the context error promptly and the request
// must be skipped (not computed) once the flusher reaches it.
func TestCoalescerDeadlineWhileQueued(t *testing.T) {
	fake := newFake()
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 1, MaxQueued: 8}, fake, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())

	// A occupies the backend.
	aDone := make(chan error, 1)
	go func() {
		_, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(1, 2)})
		aDone <- err
	}()
	<-fake.enter

	// B queues behind A with a short deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err = co.Submit(ctx, tensor.OpSum, []embedding.Query{query(3, 4)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request returned %v, want DeadlineExceeded", err)
	}

	// Release A (and everything after it); the flusher must skip expired B
	// and stay healthy.
	close(fake.gate)
	if err := <-aDone; err != nil {
		t.Fatalf("request A failed: %v", err)
	}
	outs, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(5)})
	if err != nil || len(outs) != 1 {
		t.Fatalf("coalescer wedged after expiry: %v", err)
	}
	waitFor(t, func() bool { return co.Metrics().ExpiredInQueue.Value() == 1 })
}

// TestCoalescerDeadlineDuringFlush expires a request while its own batch is
// executing; Submit returns the context error and the flusher's late
// delivery is dropped without blocking anything.
func TestCoalescerDeadlineDuringFlush(t *testing.T) {
	fake := newFake()
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 4, MaxQueued: 8}, fake, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = co.Submit(ctx, tensor.OpSum, []embedding.Query{query(7, 8)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-flush expiry returned %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Submit blocked %v past its deadline", waited)
	}
	<-fake.enter     // the flush had started before the deadline hit
	close(fake.gate) // let it finish; delivery lands in the buffer and is dropped

	outs, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(9)})
	if err != nil || len(outs) != 1 {
		t.Fatalf("coalescer wedged after mid-flush expiry: %v", err)
	}
}

// TestCoalescerShutdownWhileQueued drains a coalescer with requests still
// queued behind a stuck flush: the queued work completes, then Close
// returns, and later submissions are refused with ErrDraining.
func TestCoalescerShutdownWhileQueued(t *testing.T) {
	fake := newFake()
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 2, MaxQueued: 8, Linger: time.Minute}, fake, nil)
	if err != nil {
		t.Fatal(err)
	}

	aDone := make(chan error, 1)
	go func() {
		_, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(1), query(2)})
		aDone <- err
	}()
	<-fake.enter // A is mid-flush, holding the backend

	// B and C queue behind it.
	type res struct {
		outs []tensor.Vector
		err  error
	}
	bcDone := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			outs, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(header.Index(10 + i))})
			bcDone <- res{outs, err}
		}(i)
	}
	waitFor(t, func() bool { return co.Metrics().QueueDepth.Value() == 2 })

	closeDone := make(chan error, 1)
	go func() { closeDone <- co.Close(context.Background()) }()
	time.Sleep(30 * time.Millisecond) // let Close mark the queue draining
	close(fake.gate)                  // unblock A and everything after it

	if err := <-aDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	for i := 0; i < 2; i++ {
		r := <-bcDone
		if r.err != nil || len(r.outs) != 1 {
			t.Fatalf("queued request dropped during drain: %v", r.err)
		}
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(1)}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain Submit returned %v, want ErrDraining", err)
	}
	// Close is idempotent.
	if err := co.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCoalescerOverload fills the bounded queue and checks the next
// submission fails fast with ErrOverloaded instead of queueing.
func TestCoalescerOverload(t *testing.T) {
	fake := newFake()
	fake.gate = make(chan struct{})
	fake.enter = make(chan struct{}, 16)
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 1, MaxQueued: 1}, fake, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(fake.gate)
		co.Close(context.Background())
	}()

	done := make(chan error, 2)
	go func() {
		_, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(1)})
		done <- err
	}()
	<-fake.enter // A holds the backend; queue is empty again
	go func() {
		_, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(2)})
		done <- err
	}()
	waitFor(t, func() bool { return co.Metrics().QueueDepth.Value() == 1 })

	start := time.Now()
	_, _, err = co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(3)})
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("over-admission returned %v, want ErrOverloaded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("overload rejection took %v, want fail-fast", took)
	}
	fake.gate <- struct{}{}
	fake.gate <- struct{}{}
	<-fake.enter
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted request %d failed: %v", i, err)
		}
	}
}

// TestCoalescerMixedOps verifies requests with different pooling operations
// never share a batch and both come back correct.
func TestCoalescerMixedOps(t *testing.T) {
	fake := newFake()
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 8, Linger: 5 * time.Millisecond, MaxQueued: 16}, fake, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())

	q := query(1, 2, 3)
	type res struct {
		outs  []tensor.Vector
		stats serve.BatchStats
		err   error
	}
	run := func(op tensor.ReduceOp, ch chan res) {
		outs, stats, err := co.Submit(context.Background(), op, []embedding.Query{q})
		ch <- res{outs, stats, err}
	}
	sumCh, maxCh := make(chan res, 1), make(chan res, 1)
	go run(tensor.OpSum, sumCh)
	go run(tensor.OpMax, maxCh)
	sum, max := <-sumCh, <-maxCh
	if sum.err != nil || max.err != nil {
		t.Fatalf("mixed-op submits failed: %v / %v", sum.err, max.err)
	}
	if sum.stats.Requests != 1 || max.stats.Requests != 1 {
		t.Fatalf("ops shared a batch: sum %+v, max %+v", sum.stats, max.stats)
	}
	wantSum, err := oracle.Lookup(fake.store, embedding.Batch{Queries: []embedding.Query{q}, Op: tensor.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	wantMax, err := oracle.Lookup(fake.store, embedding.Batch{Queries: []embedding.Query{q}, Op: tensor.OpMax})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.outs[0].Equal(wantSum[0]) || !max.outs[0].Equal(wantMax[0]) {
		t.Fatal("mixed-op outputs wrong")
	}
	if co.Metrics().Batches.Value() != 2 {
		t.Fatalf("flushed %d batches, want 2", co.Metrics().Batches.Value())
	}
}

// poisonedIndexRanks finds an index whose primary and replica ranks the test
// darkens, plus indices on other ranks that stay healthy, mirroring the
// layout NewSystem builds.
func poisonedIndexRanks(t *testing.T) (poison header.Index, dark []int, healthy []header.Index) {
	t.Helper()
	layout := memmap.Uniform(dram.DDR4(), 512, 32, testRowsPerTable)
	poison = header.Index(0)
	primary := layout.Rank(poison)
	replica, _, err := layout.Replica(poison)
	if err != nil {
		t.Fatal(err)
	}
	dark = []int{primary, replica}
	for idx := header.Index(1); len(healthy) < 8 && uint64(idx) < layout.TotalRows(); idx++ {
		r := layout.Rank(idx)
		if r != primary && r != replica {
			healthy = append(healthy, idx)
		}
	}
	if len(healthy) < 8 {
		t.Fatal("could not find healthy indices")
	}
	return poison, dark, healthy
}

// TestCoalescerFaultIsolation coalesces a poisoned request (its index lives
// on a rank whose primary and replica are both dark) with a healthy one. The
// shared batch fails; the isolation retry must confine the structured
// ErrRankFailed to the poisoned caller while the healthy caller still gets
// its verified answer.
func TestCoalescerFaultIsolation(t *testing.T) {
	poison, dark, healthy := poisonedIndexRanks(t)
	plan := fafnir.FaultPlan{
		Seed: 7,
		RankFailures: []fafnir.RankFailure{
			{Rank: dark[0], At: 0},
			{Rank: dark[1], At: 0},
		},
	}
	sys := testSystem(t, fafnir.SystemConfig{Faults: plan})
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 2, Linger: time.Minute, MaxQueued: 8}, sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())

	goodQ := query(healthy[:4]...)
	badQ := query(poison, healthy[4], healthy[5])

	type res struct {
		outs  []tensor.Vector
		stats serve.BatchStats
		err   error
	}
	goodCh, badCh := make(chan res, 1), make(chan res, 1)
	go func() {
		outs, stats, err := co.Submit(context.Background(), fafnir.OpSum, []embedding.Query{goodQ})
		goodCh <- res{outs, stats, err}
	}()
	go func() {
		outs, stats, err := co.Submit(context.Background(), fafnir.OpSum, []embedding.Query{badQ})
		badCh <- res{outs, stats, err}
	}()
	good, bad := <-goodCh, <-badCh

	if !errors.Is(bad.err, fafnir.ErrRankFailed) {
		t.Fatalf("poisoned caller got %v, want ErrRankFailed", bad.err)
	}
	if good.err != nil {
		t.Fatalf("healthy caller got the batch error: %v", good.err)
	}
	if !good.stats.Isolated || good.stats.Requests != 1 {
		t.Fatalf("healthy result should come from an isolation retry, got %+v", good.stats)
	}
	golden, err := sys.Golden(embedding.Batch{Queries: []embedding.Query{goodQ}, Op: fafnir.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	if len(good.outs) != 1 || !good.outs[0].Equal(golden[0]) {
		t.Fatal("healthy caller's output wrong after isolation retry")
	}
	if co.Metrics().IsolationRetries.Value() != 1 {
		t.Fatalf("IsolationRetries = %d, want 1", co.Metrics().IsolationRetries.Value())
	}
}

// TestCoalescerSubmitValidation covers the cheap argument checks.
func TestCoalescerSubmitValidation(t *testing.T) {
	co, err := serve.NewCoalescer(serve.Config{}, newFake(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close(context.Background())
	if _, _, err := co.Submit(context.Background(), tensor.OpSum, nil); err == nil {
		t.Error("empty request accepted")
	}
	if _, _, err := co.Submit(context.Background(), tensor.ReduceOp(42), []embedding.Query{query(1)}); err == nil {
		t.Error("invalid op accepted")
	}
	if _, err := serve.NewCoalescer(serve.Config{BatchCapacity: -1}, newFake(), nil); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := serve.NewCoalescer(serve.Config{}, nil, nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
