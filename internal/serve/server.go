package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// maxBodyBytes bounds one request body; 1 MiB holds far more queries than
// MaxQueriesPerRequest admits.
const maxBodyBytes = 1 << 20

// LookupRequest is the wire format of POST /v1/lookup. Exactly one of
// Indices (single-query shorthand) or Queries must be set.
type LookupRequest struct {
	// Indices is the single-query shorthand: one set of embedding rows to
	// gather and reduce.
	Indices []uint64 `json:"indices,omitempty"`
	// Queries carries several queries that travel in the same batch.
	Queries [][]uint64 `json:"queries,omitempty"`
	// Op is the pooling operation: sum (default), min, max, or mean.
	Op string `json:"op,omitempty"`
	// Priority is the QoS lane: high, normal (default), or low. Ignored
	// unless the server runs with Config.QoS enabled.
	Priority string `json:"priority,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchInfo describes the hardware batch that served a response.
type BatchInfo struct {
	// Queries is the flushed batch's total query count (across every
	// coalesced request).
	Queries int `json:"queries"`
	// CoalescedRequests is how many concurrent requests shared the batch.
	CoalescedRequests int `json:"coalesced_requests"`
	// DRAMReads is the batch's deduplicated read count; NaiveReads is the
	// count without deduplication.
	DRAMReads  int `json:"dram_reads"`
	NaiveReads int `json:"naive_reads"`
	// TotalCycles is the simulated batch latency in PE-clock cycles.
	TotalCycles sim.Cycle `json:"total_cycles"`
	// Isolated marks a response recomputed alone after its shared batch
	// failed.
	Isolated bool `json:"isolated,omitempty"`
}

// LookupResponse is the wire format of a successful lookup.
type LookupResponse struct {
	// Outputs holds one reduced vector per request query, in request order.
	Outputs []tensor.Vector `json:"outputs"`
	// Batch describes the shared hardware batch that produced them.
	Batch BatchInfo `json:"batch"`
	// Degraded is set when the batch absorbed faults while serving this
	// request: the outputs are valid but may omit contributions from shards
	// that were unreachable along with their replicas. Absent on clean
	// responses.
	Degraded *DegradedInfo `json:"degraded,omitempty"`
	// Trace is the Chrome trace-event JSON of the batch that served the
	// request, echoed when the caller asked with ?debug=trace and the
	// backend supports tracing. Load it at ui.perfetto.dev. The trace
	// covers the whole flushed batch, co-travelling requests included.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Breakdown is the request's per-stage latency attribution — where its
	// time went from enqueue to delivery, in exact simulated cycles and
	// measured wall microseconds. Echoed when the caller asked with
	// ?debug=trace.
	Breakdown *Breakdown `json:"breakdown,omitempty"`
}

// DegradedInfo is the wire rendering of a degraded batch, scoped to one
// request: which of the caller's own queries are partial, plus the
// batch-level fault work (rank remaps, ECC retries, per-shard failover).
type DegradedInfo struct {
	// PartialQueries lists this request's query indices (request-relative,
	// sorted) whose pooled outputs are missing at least one contribution.
	// Empty means every output is complete — the batch degraded without
	// losing this caller's data (e.g. a clean replica failover).
	PartialQueries []int `json:"partial_queries,omitempty"`
	// FailedRanks lists dark memory ranks observed during the batch.
	FailedRanks []int `json:"failed_ranks,omitempty"`
	// RemappedReads and Retries count in-shard replica reads and ECC retry
	// attempts absorbed during the batch.
	RemappedReads int `json:"remapped_reads,omitempty"`
	Retries       int `json:"retries,omitempty"`
	// Shards itemizes fleet-level robustness work per shard, in shard order.
	Shards []ShardDegradedInfo `json:"shards,omitempty"`
}

// ShardDegradedInfo is one shard's entry in a degraded response.
type ShardDegradedInfo struct {
	Shard int `json:"shard"`
	// State is the shard's breaker state after the batch: healthy, suspect,
	// or dark.
	State string `json:"state"`
	// FailedOver reports the replica shard answered in this shard's place.
	FailedOver bool `json:"failed_over,omitempty"`
	// LostQueries and LostIndices count batch-level data dropped when both
	// the shard and its replica were unreachable.
	LostQueries int `json:"lost_queries,omitempty"`
	LostIndices int `json:"lost_indices,omitempty"`
	// FailedRanks lists the shard's dark local ranks.
	FailedRanks []int `json:"failed_ranks,omitempty"`
	// Err is the structured error that triggered the robustness path.
	Err string `json:"error,omitempty"`
}

// degradedInfo scopes a batch-level degraded report to one request: the
// report's batch-relative lost-query indices are intersected with the
// request's query window [off, off+n) and rebased to request coordinates.
func degradedInfo(st BatchStats, n int) *DegradedInfo {
	d := st.Degraded
	if d == nil {
		return nil
	}
	info := &DegradedInfo{
		FailedRanks:   d.FailedRanks,
		RemappedReads: d.RemappedReads,
		Retries:       d.Retries,
	}
	for _, qi := range d.LostQueries {
		if qi >= st.QueryOffset && qi < st.QueryOffset+n {
			info.PartialQueries = append(info.PartialQueries, qi-st.QueryOffset)
		}
	}
	for _, sd := range d.Shards {
		info.Shards = append(info.Shards, ShardDegradedInfo{
			Shard:       sd.Shard,
			State:       sd.State,
			FailedOver:  sd.FailedOver,
			LostQueries: sd.LostQueries,
			LostIndices: sd.LostIndices,
			FailedRanks: sd.FailedRanks,
			Err:         sd.Err,
		})
	}
	return info
}

// ErrorResponse is the wire format of a failed lookup.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable classification: bad_request,
	// overloaded, draining, deadline, rank_failed, retries_exhausted,
	// invariant_violated, or internal.
	Kind string `json:"kind"`
}

// Server is the HTTP front-end: a coalescer plus request validation,
// deadline handling, overload mapping, and the metrics endpoint.
type Server struct {
	cfg       Config
	sys       System
	co        *Coalescer
	m         *Metrics
	slo       *telemetry.SLO
	mux       *http.ServeMux
	draining  atomic.Bool
	totalRows uint64
	// retrySeq drives the seeded Retry-After jitter: each overload rejection
	// advances the sequence, and (seed, seq) hashes to a small deterministic
	// delay so synchronized clients spread their retries.
	retrySeq atomic.Uint64
}

// New builds a server over sys. The zero Config selects defaults; see
// Config. The server starts its coalescer immediately.
func New(sys System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	m := NewMetrics()
	co, err := NewCoalescer(cfg, sys, m)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, sys: sys, co: co, m: m, totalRows: sys.TotalRows()}
	if reg, ok := sys.(MetricsRegistrar); ok {
		reg.RegisterMetrics(m.Registry())
	}
	// The SLO flight recorder: rolling good/bad accounting per lane, a
	// burn-rate gauge family on the shared registry, and the /debug/slo
	// rings of slowest and degraded requests.
	lanes := make([]string, numLanes)
	objectives := make(map[string]time.Duration, numLanes)
	for p := Priority(0); p < numLanes; p++ {
		lanes[p] = p.String()
		objectives[p.String()] = cfg.SLOObjectives[p]
	}
	s.slo = telemetry.NewSLO(telemetry.SLOConfig{
		Window:         cfg.SLOWindow,
		Objectives:     objectives,
		BudgetFraction: cfg.SLOBudget,
		K:              cfg.SLOK,
	})
	m.Registry().GaugeFuncVec("fafnir_slo_burn_rate",
		"SLO error-budget burn rate by lane over the rolling window (1.0 = bad requests arriving at exactly the budgeted fraction).",
		"lane", s.slo.BurnRate, lanes...)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/slo", s.handleSLO)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the live metrics set.
func (s *Server) Metrics() *Metrics { return s.m }

// Topology returns the backend's one-line deployment description, or ""
// when the backend does not describe itself (plain single systems).
func (s *Server) Topology() string {
	if td, ok := s.sys.(TopologyDescriber); ok {
		return td.Topology()
	}
	return ""
}

// Coalescer returns the server's coalescer (tests and embedders drive it
// directly).
func (s *Server) Coalescer() *Coalescer { return s.co }

// Drain stops admitting lookups and flushes everything queued, waiting up
// to ctx for the in-flight work to finish. Callers should stop the HTTP
// listener first (http.Server.Shutdown), then Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.co.Close(ctx)
}

// SLO returns the server's flight recorder (tests and embedders inspect it
// directly).
func (s *Server) SLO() *telemetry.SLO { return s.slo }

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.Render(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// parseQueries validates the wire request and builds the engine queries.
func (s *Server) parseQueries(req *LookupRequest) ([]embedding.Query, error) {
	var raw [][]uint64
	switch {
	case len(req.Indices) > 0 && len(req.Queries) > 0:
		return nil, fmt.Errorf("serve: set either indices or queries, not both")
	case len(req.Indices) > 0:
		raw = [][]uint64{req.Indices}
	case len(req.Queries) > 0:
		raw = req.Queries
	default:
		return nil, fmt.Errorf("serve: request carries no queries")
	}
	if len(raw) > s.cfg.MaxQueriesPerRequest {
		return nil, fmt.Errorf("serve: request carries %d queries, limit is %d", len(raw), s.cfg.MaxQueriesPerRequest)
	}
	queries := make([]embedding.Query, len(raw))
	for qi, idxs := range raw {
		if len(idxs) == 0 {
			return nil, fmt.Errorf("serve: query %d is empty", qi)
		}
		set := make([]header.Index, len(idxs))
		for i, idx := range idxs {
			if idx >= s.totalRows {
				return nil, fmt.Errorf("serve: query %d index %d out of range [0,%d)", qi, idx, s.totalRows)
			}
			set[i] = header.Index(idx)
		}
		queries[qi] = embedding.Query{Indices: header.NewIndexSet(set...)}
	}
	return queries, nil
}

// classify maps a Submit error to its outcome, HTTP status, and wire kind.
func classify(err error) (Outcome, int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return OutcomeOverload, http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, ErrDraining):
		return OutcomeDraining, http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return OutcomeDeadline, http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, fault.ErrRankFailed):
		return OutcomeError, http.StatusInternalServerError, "rank_failed"
	case errors.Is(err, fault.ErrRetriesExhausted):
		return OutcomeError, http.StatusInternalServerError, "retries_exhausted"
	case errors.Is(err, fault.ErrShardDown):
		// A replicated fleet absorbs shard loss into degraded 200s; this
		// kind only surfaces from unreplicated deployments.
		return OutcomeError, http.StatusInternalServerError, "shard_down"
	case errors.Is(err, fault.ErrInvariantViolated):
		return OutcomeError, http.StatusInternalServerError, "invariant_violated"
	default:
		return OutcomeError, http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	finish := func(o Outcome) { s.m.ObserveRequest(o, time.Since(start)) }

	var req LookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad request body: " + err.Error(), Kind: "bad_request"})
		return
	}
	op, err := ParseOp(req.Op)
	if err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	pri, err := ParsePriority(req.Priority)
	if err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	queries, err := s.parseQueries(&req)
	if err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var outputs []tensor.Vector
	var stats BatchStats
	var trace []byte
	debug := r.URL.Query().Get("debug") == "trace"
	if debug {
		outputs, stats, trace, err = s.co.SubmitTracedPriority(ctx, op, queries, pri)
	} else {
		outputs, stats, err = s.co.SubmitPriority(ctx, op, queries, pri)
	}
	if err != nil {
		outcome, status, kind := classify(err)
		finish(outcome)
		s.slo.Observe(pri.String(), stats.RequestID, time.Since(start), true, kind)
		if status == http.StatusServiceUnavailable {
			// Overload backs off with seeded jitter so synchronized clients
			// spread their retries; a drain never comes back, so the fixed
			// minimum is honest there.
			w.Header().Set("Retry-After", s.retryAfter(outcome))
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
		return
	}
	degraded := degradedInfo(stats, len(queries))
	if degraded != nil {
		finish(OutcomeDegraded)
		s.m.DegradedResponses.Add(1)
	} else {
		finish(OutcomeOK)
	}
	s.slo.Observe(pri.String(), stats.RequestID, time.Since(start), degraded != nil, stats.Breakdown)
	resp := LookupResponse{
		Outputs: outputs,
		Batch: BatchInfo{
			Queries:           stats.BatchQueries,
			CoalescedRequests: stats.Requests,
			DRAMReads:         stats.MemoryReads,
			NaiveReads:        stats.NaiveReads,
			TotalCycles:       stats.TotalCycles,
			Isolated:          stats.Isolated,
		},
		Degraded: degraded,
		Trace:    trace,
	}
	if debug {
		resp.Breakdown = stats.Breakdown
	}
	writeJSON(w, http.StatusOK, resp)
}

// splitmix64 is the jitter hash (Vigna's SplitMix64 finalizer), shared with
// the fault injector and the router's breaker.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryAfter renders the 503 backoff hint: overload rejections jitter
// deterministically over {1, 2, 3} seconds from (RetryJitterSeed, sequence),
// so a burst of synchronized clients spreads its retry wave; drain keeps the
// fixed minimum — the listener is going away, the hint only needs to exist.
func (s *Server) retryAfter(o Outcome) string {
	if o != OutcomeOverload {
		return "1"
	}
	seq := s.retrySeq.Add(1)
	return strconv.FormatUint(1+splitmix64(s.cfg.RetryJitterSeed^seq)%3, 10)
}
