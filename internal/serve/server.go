package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// maxBodyBytes bounds one request body; 1 MiB holds far more queries than
// MaxQueriesPerRequest admits.
const maxBodyBytes = 1 << 20

// LookupRequest is the wire format of POST /v1/lookup. Exactly one of
// Indices (single-query shorthand) or Queries must be set.
type LookupRequest struct {
	// Indices is the single-query shorthand: one set of embedding rows to
	// gather and reduce.
	Indices []uint64 `json:"indices,omitempty"`
	// Queries carries several queries that travel in the same batch.
	Queries [][]uint64 `json:"queries,omitempty"`
	// Op is the pooling operation: sum (default), min, max, or mean.
	Op string `json:"op,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchInfo describes the hardware batch that served a response.
type BatchInfo struct {
	// Queries is the flushed batch's total query count (across every
	// coalesced request).
	Queries int `json:"queries"`
	// CoalescedRequests is how many concurrent requests shared the batch.
	CoalescedRequests int `json:"coalesced_requests"`
	// DRAMReads is the batch's deduplicated read count; NaiveReads is the
	// count without deduplication.
	DRAMReads  int `json:"dram_reads"`
	NaiveReads int `json:"naive_reads"`
	// TotalCycles is the simulated batch latency in PE-clock cycles.
	TotalCycles sim.Cycle `json:"total_cycles"`
	// Isolated marks a response recomputed alone after its shared batch
	// failed.
	Isolated bool `json:"isolated,omitempty"`
}

// LookupResponse is the wire format of a successful lookup.
type LookupResponse struct {
	// Outputs holds one reduced vector per request query, in request order.
	Outputs []tensor.Vector `json:"outputs"`
	// Batch describes the shared hardware batch that produced them.
	Batch BatchInfo `json:"batch"`
	// Trace is the Chrome trace-event JSON of the batch that served the
	// request, echoed when the caller asked with ?debug=trace and the
	// backend supports tracing. Load it at ui.perfetto.dev. The trace
	// covers the whole flushed batch, co-travelling requests included.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is the wire format of a failed lookup.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is a stable machine-readable classification: bad_request,
	// overloaded, draining, deadline, rank_failed, retries_exhausted,
	// invariant_violated, or internal.
	Kind string `json:"kind"`
}

// Server is the HTTP front-end: a coalescer plus request validation,
// deadline handling, overload mapping, and the metrics endpoint.
type Server struct {
	cfg       Config
	sys       System
	co        *Coalescer
	m         *Metrics
	mux       *http.ServeMux
	draining  atomic.Bool
	totalRows uint64
}

// New builds a server over sys. The zero Config selects defaults; see
// Config. The server starts its coalescer immediately.
func New(sys System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	m := NewMetrics()
	co, err := NewCoalescer(cfg, sys, m)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, sys: sys, co: co, m: m, totalRows: sys.TotalRows()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/lookup", s.handleLookup)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the live metrics set.
func (s *Server) Metrics() *Metrics { return s.m }

// Coalescer returns the server's coalescer (tests and embedders drive it
// directly).
func (s *Server) Coalescer() *Coalescer { return s.co }

// Drain stops admitting lookups and flushes everything queued, waiting up
// to ctx for the in-flight work to finish. Callers should stop the HTTP
// listener first (http.Server.Shutdown), then Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.co.Close(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.Render(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// parseQueries validates the wire request and builds the engine queries.
func (s *Server) parseQueries(req *LookupRequest) ([]embedding.Query, error) {
	var raw [][]uint64
	switch {
	case len(req.Indices) > 0 && len(req.Queries) > 0:
		return nil, fmt.Errorf("serve: set either indices or queries, not both")
	case len(req.Indices) > 0:
		raw = [][]uint64{req.Indices}
	case len(req.Queries) > 0:
		raw = req.Queries
	default:
		return nil, fmt.Errorf("serve: request carries no queries")
	}
	if len(raw) > s.cfg.MaxQueriesPerRequest {
		return nil, fmt.Errorf("serve: request carries %d queries, limit is %d", len(raw), s.cfg.MaxQueriesPerRequest)
	}
	queries := make([]embedding.Query, len(raw))
	for qi, idxs := range raw {
		if len(idxs) == 0 {
			return nil, fmt.Errorf("serve: query %d is empty", qi)
		}
		set := make([]header.Index, len(idxs))
		for i, idx := range idxs {
			if idx >= s.totalRows {
				return nil, fmt.Errorf("serve: query %d index %d out of range [0,%d)", qi, idx, s.totalRows)
			}
			set[i] = header.Index(idx)
		}
		queries[qi] = embedding.Query{Indices: header.NewIndexSet(set...)}
	}
	return queries, nil
}

// classify maps a Submit error to its outcome, HTTP status, and wire kind.
func classify(err error) (Outcome, int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return OutcomeOverload, http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, ErrDraining):
		return OutcomeDraining, http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return OutcomeDeadline, http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, fault.ErrRankFailed):
		return OutcomeError, http.StatusInternalServerError, "rank_failed"
	case errors.Is(err, fault.ErrRetriesExhausted):
		return OutcomeError, http.StatusInternalServerError, "retries_exhausted"
	case errors.Is(err, fault.ErrInvariantViolated):
		return OutcomeError, http.StatusInternalServerError, "invariant_violated"
	default:
		return OutcomeError, http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	finish := func(o Outcome) { s.m.ObserveRequest(o, time.Since(start)) }

	var req LookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "serve: bad request body: " + err.Error(), Kind: "bad_request"})
		return
	}
	op, err := ParseOp(req.Op)
	if err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}
	queries, err := s.parseQueries(&req)
	if err != nil {
		finish(OutcomeBadRequest)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad_request"})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var outputs []tensor.Vector
	var stats BatchStats
	var trace []byte
	if r.URL.Query().Get("debug") == "trace" {
		outputs, stats, trace, err = s.co.SubmitTraced(ctx, op, queries)
	} else {
		outputs, stats, err = s.co.Submit(ctx, op, queries)
	}
	if err != nil {
		outcome, status, kind := classify(err)
		finish(outcome)
		if status == http.StatusServiceUnavailable {
			// Overload backs off briefly; a drain never comes back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind})
		return
	}
	finish(OutcomeOK)
	writeJSON(w, http.StatusOK, LookupResponse{
		Outputs: outputs,
		Batch: BatchInfo{
			Queries:           stats.BatchQueries,
			CoalescedRequests: stats.Requests,
			DRAMReads:         stats.MemoryReads,
			NaiveReads:        stats.NaiveReads,
			TotalCycles:       stats.TotalCycles,
			Isolated:          stats.Isolated,
		},
		Trace: trace,
	})
}
