package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"fafnir/internal/fault"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; empty means valid
	}{
		{"zero is valid", Config{}, ""},
		{"full is valid", Config{BatchCapacity: 8, Linger: time.Millisecond, MaxQueued: 64, DefaultTimeout: time.Second, MaxQueriesPerRequest: 4}, ""},
		{"negative capacity", Config{BatchCapacity: -3}, "Config.BatchCapacity = -3"},
		{"negative linger", Config{Linger: -time.Second}, "Config.Linger = -1s"},
		{"negative queue", Config{MaxQueued: -1}, "Config.MaxQueued = -1"},
		{"negative timeout", Config{DefaultTimeout: -time.Millisecond}, "Config.DefaultTimeout = -1ms"},
		{"negative request bound", Config{MaxQueriesPerRequest: -9}, "Config.MaxQueriesPerRequest = -9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want an error naming %q", err, tc.want)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.BatchCapacity != 32 || c.MaxQueued != 512 || c.DefaultTimeout != 2*time.Second || c.MaxQueriesPerRequest != 128 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.Linger != 0 {
		t.Fatalf("Linger default should stay 0 (immediate flush), got %v", c.Linger)
	}
}

func TestParseOp(t *testing.T) {
	cases := map[string]tensor.ReduceOp{
		"": tensor.OpSum, "sum": tensor.OpSum, "min": tensor.OpMin,
		"max": tensor.OpMax, "mean": tensor.OpMean,
	}
	for s, want := range cases {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("median"); err == nil {
		t.Error("ParseOp(median) succeeded, want error")
	}
}

func TestOutcomeString(t *testing.T) {
	want := []string{"ok", "bad_request", "overload", "draining", "deadline", "error", "degraded"}
	for o := Outcome(0); o < numOutcomes; o++ {
		if o.String() != want[o] {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), want[o])
		}
	}
	if s := Outcome(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown outcome renders %q", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := telemetry.NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	// 0.5 and 1 land in le=1; 1.5 in le=2; 4 in le=4; 100 in +Inf.
	got := h.BucketCounts()
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 107 {
		t.Fatalf("count/sum = %d/%v, want 5/107", h.Count(), h.Sum())
	}
	// +Inf consistency: the cumulative +Inf bucket count must equal the
	// total observation count, however the samples spread.
	var cum uint64
	for _, c := range got {
		cum += c
	}
	if cum != h.Count() {
		t.Fatalf("+Inf cumulative count %d != observation count %d", cum, h.Count())
	}
}

// TestRequestBucketsCoverSubMillisecond pins the satellite fix: a coalesced
// in-memory lookup completes in tens of microseconds, so the latency
// histogram must resolve below one millisecond rather than lumping the
// common case into its lowest bucket.
func TestRequestBucketsCoverSubMillisecond(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest(OutcomeOK, 30*time.Microsecond)
	m.ObserveRequest(OutcomeOK, 700*time.Microsecond)
	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()
	for _, line := range []string{
		`fafnir_serve_request_seconds_bucket{le="1e-05"} 0`,
		`fafnir_serve_request_seconds_bucket{le="2.5e-05"} 0`,
		`fafnir_serve_request_seconds_bucket{le="5e-05"} 1`,
		`fafnir_serve_request_seconds_bucket{le="0.001"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("render missing %q\n%s", line, out)
		}
	}
	if b := m.RequestSeconds.Bounds(); b[0] >= 0.0001 {
		t.Fatalf("lowest latency bound %v does not resolve sub-100µs lookups", b[0])
	}
}

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest(OutcomeOK, 3*time.Millisecond)
	m.ObserveRequest(OutcomeOverload, 100*time.Microsecond)
	m.ObserveRequest(Outcome(-1), time.Millisecond) // clamps to error
	m.observeBatch(BatchStats{BatchQueries: 8, Requests: 4, MemoryReads: 40, NaiveReads: 128, TotalCycles: 1000, BytesRead: 4096})
	m.observeBatch(BatchStats{BatchQueries: 2, Requests: 1, MemoryReads: 20, NaiveReads: 32, TotalCycles: 500, BytesRead: 2048})
	m.QueueDepth.Set(7)

	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()
	for _, line := range []string{
		`fafnir_serve_requests_total{outcome="ok"} 1`,
		`fafnir_serve_requests_total{outcome="overload"} 1`,
		`fafnir_serve_requests_total{outcome="error"} 1`,
		"fafnir_serve_queries_total 10",
		"fafnir_serve_batches_total 2",
		"fafnir_serve_coalesced_requests_total 4",
		"fafnir_serve_dram_reads_total 60",
		"fafnir_serve_naive_reads_total 160",
		"fafnir_serve_bytes_read_total 6144",
		"fafnir_serve_sim_cycles_total 1500",
		"fafnir_serve_queue_depth 7",
		"fafnir_serve_reads_per_query 6",
		"fafnir_serve_coalesce_factor 5",
		"fafnir_serve_request_seconds_count 3",
		`fafnir_serve_batch_queries_bucket{le="8"} 2`,
		`fafnir_serve_batch_queries_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("render missing %q\n%s", line, out)
		}
	}
	if m.ReadsPerQuery() != 6 {
		t.Errorf("ReadsPerQuery = %v, want 6", m.ReadsPerQuery())
	}
	if m.CoalesceFactor() != 5 {
		t.Errorf("CoalesceFactor = %v, want 5", m.CoalesceFactor())
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	m := NewMetrics()
	if m.ReadsPerQuery() != 0 || m.CoalesceFactor() != 0 {
		t.Fatal("empty metrics should report zero ratios")
	}
	var sb strings.Builder
	m.Render(&sb)
	if !strings.Contains(sb.String(), "fafnir_serve_reads_per_query 0") {
		t.Fatalf("zero render broken:\n%s", sb.String())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err     error
		outcome Outcome
		status  int
		kind    string
	}{
		{ErrOverloaded, OutcomeOverload, http.StatusServiceUnavailable, "overloaded"},
		{ErrDraining, OutcomeDraining, http.StatusServiceUnavailable, "draining"},
		{context.DeadlineExceeded, OutcomeDeadline, http.StatusGatewayTimeout, "deadline"},
		{context.Canceled, OutcomeDeadline, http.StatusGatewayTimeout, "deadline"},
		{fmt.Errorf("wrap: %w", fault.ErrRankFailed), OutcomeError, http.StatusInternalServerError, "rank_failed"},
		{fmt.Errorf("wrap: %w", fault.ErrRetriesExhausted), OutcomeError, http.StatusInternalServerError, "retries_exhausted"},
		{fmt.Errorf("wrap: %w", fault.ErrInvariantViolated), OutcomeError, http.StatusInternalServerError, "invariant_violated"},
		{errors.New("boom"), OutcomeError, http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		o, s, k := classify(tc.err)
		if o != tc.outcome || s != tc.status || k != tc.kind {
			t.Errorf("classify(%v) = %v/%d/%q, want %v/%d/%q", tc.err, o, s, k, tc.outcome, tc.status, tc.kind)
		}
	}
}
