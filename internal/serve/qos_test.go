package serve_test

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"fafnir/internal/embedding"
	"fafnir/internal/serve"
	"fafnir/internal/tensor"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want serve.Priority
		ok   bool
	}{
		{"", serve.PriorityNormal, true},
		{"normal", serve.PriorityNormal, true},
		{"high", serve.PriorityHigh, true},
		{"low", serve.PriorityLow, true},
		{"urgent", 0, false},
		{"HIGH", 0, false},
	}
	for _, tc := range cases {
		got, err := serve.ParsePriority(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParsePriority(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParsePriority(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for p, want := range map[serve.Priority]string{
		serve.PriorityHigh:   "high",
		serve.PriorityNormal: "normal",
		serve.PriorityLow:    "low",
	} {
		if p.String() != want {
			t.Errorf("Priority(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}

// occupyFlusher parks the coalescer's flusher inside a gated backend Lookup
// so subsequent submissions accumulate in the admission queue. Returns the
// channel the parked request's result arrives on.
func occupyFlusher(t *testing.T, co *serve.Coalescer, f *fakeBackend) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, _, err := co.Submit(context.Background(), tensor.OpSum, []embedding.Query{query(1)})
		done <- err
	}()
	select {
	case <-f.enter:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never reached the backend")
	}
	return done
}

// TestQoSShedLowFirst pins the admission thresholds: past the low-water
// fraction of MaxQueued, low-priority submissions shed while normal and
// high traffic is still admitted up to the full bound.
func TestQoSShedLowFirst(t *testing.T) {
	f := newFake()
	f.gate = make(chan struct{})
	f.enter = make(chan struct{}, 64)
	co, err := serve.NewCoalescer(serve.Config{
		QoS:           true,
		BatchCapacity: 1, // full batches flush without lingering
		MaxQueued:     10,
		ShedLowWater:  0.5,
	}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	parked := occupyFlusher(t, co, f)

	var wg sync.WaitGroup
	results := make(chan error, 64)
	submit := func(pri serve.Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(2)}, pri)
			results <- err
		}()
	}
	// enqueue blocks until the queue really holds n queries, so each
	// admission below is observed before the next submission races it.
	enqueue := func(pri serve.Priority, want int) {
		submit(pri)
		deadline := time.After(5 * time.Second)
		for int(co.Metrics().QueueDepth.Value()) < want {
			select {
			case <-deadline:
				t.Fatalf("queue never reached %d queries", want)
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	tryReject := func(pri serve.Priority) {
		_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(3)}, pri)
		if !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("priority %v submission past its bound returned %v, want ErrOverloaded", pri, err)
		}
	}

	// Low admits up to the low-water mark (0.5 x 10 = 5 queries)...
	for i := 0; i < 5; i++ {
		enqueue(serve.PriorityLow, i+1)
	}
	tryReject(serve.PriorityLow) // ...then sheds.
	// Normal and high still admit up to the full bound.
	for i := 0; i < 5; i++ {
		enqueue(serve.PriorityNormal, 6+i)
	}
	tryReject(serve.PriorityNormal)
	tryReject(serve.PriorityHigh)

	m := co.Metrics()
	if got := m.Shed.At(int(serve.PriorityLow)).Value(); got != 1 {
		t.Errorf("shed{low} = %d, want 1", got)
	}
	if got := m.Shed.At(int(serve.PriorityNormal)).Value(); got != 1 {
		t.Errorf("shed{normal} = %d, want 1", got)
	}
	if got := m.Shed.At(int(serve.PriorityHigh)).Value(); got != 1 {
		t.Errorf("shed{high} = %d, want 1", got)
	}

	// Release the backend and drain everything still queued.
	close(f.gate)
	if err := <-parked; err != nil {
		t.Fatalf("parked request: %v", err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Fatalf("queued request failed after release: %v", err)
		}
	}
	if err := co.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQoSOverloadAcceptance is the seeded burst gate: an open-loop burst at
// 2x the queue bound with a 20/80 high/low mix must shed only low-priority
// requests — every high-priority request completes — and the shed_total
// deltas land on the low lane.
func TestQoSOverloadAcceptance(t *testing.T) {
	f := newFake()
	f.gate = make(chan struct{})
	f.enter = make(chan struct{}, 1024)
	const maxQueued = 64
	co, err := serve.NewCoalescer(serve.Config{
		QoS:           true,
		BatchCapacity: 8,
		MaxQueued:     maxQueued,
		ShedLowWater:  0.25,
	}, f, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Park the flusher so the burst piles into the admission queue.
	parked := occupyFlusher(t, co, f)

	// Seeded 20/80 mix over a burst of 2x MaxQueued requests: every fifth
	// request is high priority. The burst arrives open-loop (no waiting for
	// completions) from one goroutine, so admission order is deterministic
	// up to the flusher's single parked cut.
	const burst = 2 * maxQueued
	type shot struct {
		pri serve.Priority
		err error
	}
	var wg sync.WaitGroup
	shots := make(chan shot, burst)
	highLat := make(chan time.Duration, burst)
	wantHigh := 0
	for i := 0; i < burst; i++ {
		pri := serve.PriorityLow
		if i%5 == 0 {
			pri = serve.PriorityHigh
			wantHigh++
		}
		wg.Add(1)
		go func(pri serve.Priority) {
			defer wg.Done()
			start := time.Now()
			_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(7)}, pri)
			if pri == serve.PriorityHigh && err == nil {
				highLat <- time.Since(start)
			}
			shots <- shot{pri, err}
		}(pri)
		// Give each admission a moment to land so the queue fills in
		// arrival order rather than goroutine-scheduler order.
		time.Sleep(200 * time.Microsecond)
	}

	// Release the backend and let everything queued complete.
	close(f.gate)
	if err := <-parked; err != nil {
		t.Fatalf("parked request: %v", err)
	}
	wg.Wait()
	close(shots)
	close(highLat)

	var highOK, highShed, lowOK, lowShed int
	for s := range shots {
		switch {
		case s.pri == serve.PriorityHigh && s.err == nil:
			highOK++
		case s.pri == serve.PriorityHigh && errors.Is(s.err, serve.ErrOverloaded):
			highShed++
		case s.pri == serve.PriorityLow && s.err == nil:
			lowOK++
		case s.pri == serve.PriorityLow && errors.Is(s.err, serve.ErrOverloaded):
			lowShed++
		case s.err != nil:
			t.Fatalf("unexpected error on %v request: %v", s.pri, s.err)
		}
	}
	if highShed != 0 {
		t.Errorf("%d high-priority requests shed; overload must consume the low lane first", highShed)
	}
	if lowShed == 0 {
		t.Error("no low-priority requests shed at 2x queue capacity")
	}
	m := co.Metrics()
	if got := m.Shed.At(int(serve.PriorityHigh)).Value(); got != 0 {
		t.Errorf("shed_total{lane=high} = %d, want 0", got)
	}
	if got := m.Shed.At(int(serve.PriorityLow)).Value(); got != uint64(lowShed) {
		t.Errorf("shed_total{lane=low} = %d, want %d (one per client-observed rejection)", got, lowShed)
	}
	// Every admitted high request completed; its queueing delay is bounded
	// by the release, not by low-priority work scheduled ahead of it.
	if highOK+highShed != wantHigh {
		t.Errorf("high outcomes %d+%d, want %d", highOK, highShed, wantHigh)
	}
	var lats []time.Duration
	for d := range highLat {
		lats = append(lats, d)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if p99 := lats[len(lats)*99/100]; p99 > 30*time.Second {
		t.Errorf("high-priority p99 %v unbounded under overload", p99)
	}
	if err := co.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQoSDeadlineEscape pins the starvation bound: a low-priority request
// about to miss its deadline is scheduled ahead of healthier high-priority
// work.
func TestQoSDeadlineEscape(t *testing.T) {
	f := newFake()
	f.gate = make(chan struct{})
	f.enter = make(chan struct{}, 16)
	// The flusher calls the backend sequentially, so recording each batch's
	// op gives the exact scheduling order without racing on completions.
	var opOrder []tensor.ReduceOp
	f.fail = func(b embedding.Batch) error {
		opOrder = append(opOrder, b.Op)
		return nil
	}
	co, err := serve.NewCoalescer(serve.Config{
		QoS:           true,
		BatchCapacity: 1,
		MaxQueued:     64,
		DeadlineSlack: time.Hour, // every finite deadline counts as urgent
	}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	parked := occupyFlusher(t, co, f)

	// Queue a no-deadline high request, then a deadlined low request, with
	// different ops so they cannot share a batch.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(11)}, serve.PriorityHigh)
		if err != nil {
			t.Error(err)
		}
	}()
	// The high request must be queued before the low one so strict priority
	// alone would schedule it first.
	for int(co.Metrics().QueueDepth.Value()) < 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go func() {
		defer wg.Done()
		_, _, err := co.SubmitPriority(ctx, tensor.OpMin, []embedding.Query{query(12)}, serve.PriorityLow)
		if err != nil {
			t.Error(err)
		}
	}()
	for int(co.Metrics().QueueDepth.Value()) < 2 {
		time.Sleep(time.Millisecond)
	}

	// Release the parked batch, then serve the two queued ones.
	close(f.gate)
	if err := <-parked; err != nil {
		t.Fatalf("parked request: %v", err)
	}
	wg.Wait()
	want := []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpSum}
	if len(opOrder) != 3 || opOrder[1] != want[1] || opOrder[2] != want[2] {
		t.Fatalf("backend saw batches %v; the deadlined OpMin low request should have escaped ahead of the no-deadline OpSum high one (want %v)", opOrder, want)
	}
	if err := co.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQoSOffSingleQueue pins backward compatibility: with QoS disabled,
// priorities collapse onto the normal lane — admission, scheduling, and
// shed accounting behave exactly like the pre-lane single queue.
func TestQoSOffSingleQueue(t *testing.T) {
	f := newFake()
	f.gate = make(chan struct{})
	f.enter = make(chan struct{}, 16)
	co, err := serve.NewCoalescer(serve.Config{BatchCapacity: 1, MaxQueued: 1}, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	parked := occupyFlusher(t, co, f)

	// Fill the one-query queue...
	admitted := make(chan error, 1)
	go func() {
		_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(2)}, serve.PriorityLow)
		admitted <- err
	}()
	for int(co.Metrics().QueueDepth.Value()) < 1 {
		time.Sleep(time.Millisecond)
	}
	// ...then every lane rejects identically, and the shed lands on the
	// normal lane regardless of the requested priority.
	for _, pri := range []serve.Priority{serve.PriorityHigh, serve.PriorityNormal, serve.PriorityLow} {
		_, _, err := co.SubmitPriority(context.Background(), tensor.OpSum, []embedding.Query{query(3)}, pri)
		if !errors.Is(err, serve.ErrOverloaded) {
			t.Fatalf("priority %v got %v, want ErrOverloaded", pri, err)
		}
	}
	m := co.Metrics()
	if got := m.Shed.At(int(serve.PriorityNormal)).Value(); got != 3 {
		t.Errorf("shed{normal} = %d, want 3 (QoS off folds every lane into normal)", got)
	}
	if got := m.Shed.At(int(serve.PriorityHigh)).Value() + m.Shed.At(int(serve.PriorityLow)).Value(); got != 0 {
		t.Errorf("shed{high}+shed{low} = %d, want 0 with QoS off", got)
	}

	close(f.gate)
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	if err := <-admitted; err != nil {
		t.Fatal(err)
	}
	if err := co.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
