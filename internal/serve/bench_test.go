package serve_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"fafnir"
	"fafnir/internal/embedding"
	"fafnir/internal/serve"
)

// BenchmarkCoalescer measures Submit throughput end to end (queueing, batch
// assembly, the engine lookup, and demux) at fixed client parallelism. The
// clients=1 case is the no-contention floor; higher counts show how much the
// shared-flusher design costs — or saves, once coalescing folds concurrent
// requests into shared hardware batches. b.RunParallel cannot express
// parallelism below GOMAXPROCS, so the workers are explicit goroutines
// draining an atomic iteration counter.
func BenchmarkCoalescer(b *testing.B) {
	for _, clients := range clientCounts() {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			sys, err := fafnir.NewSystem(fafnir.SystemConfig{})
			if err != nil {
				b.Fatal(err)
			}
			pool, err := sys.GenerateBatch(256, 17)
			if err != nil {
				b.Fatal(err)
			}
			co, err := serve.NewCoalescer(serve.Config{MaxQueued: 4096}, sys, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer co.Close(context.Background())

			ctx := context.Background()
			var next atomic.Int64
			var failed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						q := pool.Queries[i%int64(len(pool.Queries))]
						if _, _, err := co.Submit(ctx, pool.Op, []embedding.Query{q}); err != nil {
							failed.Add(1)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d submissions failed", failed.Load())
			}
			if m := co.Metrics(); m.Batches.Value() > 0 {
				b.ReportMetric(float64(m.Queries.Value())/float64(m.Batches.Value()), "queries/batch")
			}
		})
	}
}

// BenchmarkCoalescerCached is BenchmarkCoalescer with the hot-embedding
// cache enabled. The 256-query pool cycles, so after the first lap most
// index reads are served from the cache and the hardware batch shrinks;
// the reported hit ratio shows how much of the stream the cache absorbed.
func BenchmarkCoalescerCached(b *testing.B) {
	for _, clients := range clientCounts() {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			sys, err := fafnir.NewSystem(fafnir.SystemConfig{})
			if err != nil {
				b.Fatal(err)
			}
			pool, err := sys.GenerateBatch(256, 17)
			if err != nil {
				b.Fatal(err)
			}
			co, err := serve.NewCoalescer(serve.Config{MaxQueued: 4096, CacheBytes: 8 << 20}, sys, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer co.Close(context.Background())

			ctx := context.Background()
			var next atomic.Int64
			var failed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						q := pool.Queries[i%int64(len(pool.Queries))]
						if _, _, err := co.Submit(ctx, pool.Op, []embedding.Query{q}); err != nil {
							failed.Add(1)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d submissions failed", failed.Load())
			}
			m := co.Metrics()
			if m.Batches.Value() > 0 {
				b.ReportMetric(float64(m.Queries.Value())/float64(m.Batches.Value()), "queries/batch")
			}
			if total := m.CacheHits.Value() + m.CacheMisses.Value(); total > 0 {
				b.ReportMetric(float64(m.CacheHits.Value())/float64(total), "hit-ratio")
			}
		})
	}
}

// clientCounts returns 1, 4, and GOMAXPROCS without duplicates.
func clientCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}
