package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger is the small shared leveled logger used by the CLIs. Text mode
// writes exactly what fmt.Printf used to — the literal format expansion plus
// a trailing newline — so scripts that parse startup handshakes (check.sh's
// "listening on host:port" grep) keep working byte-for-byte. JSON mode wraps
// each line in a {"ts","level","msg"} object for fleet log pipelines.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	now  func() time.Time // injectable for tests
}

// NewLogger builds a logger writing to w in the given format ("text" or
// "json").
func NewLogger(w io.Writer, format string) (*Logger, error) {
	switch format {
	case "", "text":
		return &Logger{w: w, now: time.Now}, nil
	case "json":
		return &Logger{w: w, json: true, now: time.Now}, nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// logLine is the JSON-mode record.
type logLine struct {
	TS    string `json:"ts"`
	Level string `json:"level"`
	Msg   string `json:"msg"`
}

func (l *Logger) emit(level, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.json {
		fmt.Fprintf(l.w, "%s\n", msg)
		return
	}
	rec, err := json.Marshal(logLine{TS: l.now().UTC().Format(time.RFC3339Nano), Level: level, Msg: msg})
	if err != nil {
		return
	}
	rec = append(rec, '\n')
	l.w.Write(rec)
}

// Infof logs one line at info level.
func (l *Logger) Infof(format string, args ...any) { l.emit("info", format, args...) }

// Errorf logs one line at error level.
func (l *Logger) Errorf(format string, args ...any) { l.emit("error", format, args...) }
