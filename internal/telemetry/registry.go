package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the unified metrics registry: typed counters, gauges, and
// histograms that engines and the serving layer publish into, rendered in
// the Prometheus text exposition format. The hot path (Add/Set/Observe) is
// lock-free — plain atomics, no maps, no label parsing — because label sets
// are fixed at registration time. The registry mutex guards registration and
// the render walk only.
//
// Rendering is byte-compatible with the hand-rolled renderer it replaced
// (internal/serve/metrics.go before PR 5): families appear in registration
// order, floats format with strconv 'g', histograms emit cumulative buckets
// with an explicit +Inf bound followed by _sum and _count.

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket Prometheus histogram.
type Histogram struct {
	bounds []float64 // upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the raw (non-cumulative) per-bucket counts; the last
// element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// CounterVec is a counter family with one label dimension whose values are
// fixed at registration, keeping With lookups allocation-free and the
// render order stable.
type CounterVec struct {
	name, help, label string
	values            []string
	counters          []*Counter
}

// With returns the counter for the given label value. Unknown values return
// a detached counter (never rendered) rather than panicking, so a miscounted
// label cannot take down a serving path.
func (v *CounterVec) With(value string) *Counter {
	for i, val := range v.values {
		if val == value {
			return v.counters[i]
		}
	}
	return &Counter{}
}

// At returns the counter at the registration index of its label value;
// callers with dense label enums index directly instead of string-matching.
func (v *CounterVec) At(i int) *Counter { return v.counters[i] }

// GaugeVec is a gauge family with one label dimension whose values are fixed
// at registration — the gauge counterpart of CounterVec. The fleet router
// publishes per-shard health through it.
type GaugeVec struct {
	name, help, label string
	values            []string
	gauges            []*Gauge
}

// With returns the gauge for the given label value; unknown values return a
// detached gauge (never rendered) rather than panicking.
func (v *GaugeVec) With(value string) *Gauge {
	for i, val := range v.values {
		if val == value {
			return v.gauges[i]
		}
	}
	return &Gauge{}
}

// At returns the gauge at the registration index of its label value.
func (v *GaugeVec) At(i int) *Gauge { return v.gauges[i] }

// HistogramVec is a histogram family with one label dimension whose values
// are fixed at registration — the histogram counterpart of CounterVec. The
// serving layer publishes per-stage latency distributions through it.
type HistogramVec struct {
	name, help, label string
	values            []string
	hists             []*Histogram
}

// With returns the histogram for the given label value; unknown values
// return a detached histogram (never rendered) rather than panicking.
func (v *HistogramVec) With(value string) *Histogram {
	for i, val := range v.values {
		if val == value {
			return v.hists[i]
		}
	}
	return NewHistogram(nil)
}

// At returns the histogram at the registration index of its label value.
func (v *HistogramVec) At(i int) *Histogram { return v.hists[i] }

// GaugeFuncVec is a computed gauge family with one label dimension: fn is
// evaluated per label value at render time and must be safe to call
// concurrently with the hot path. The SLO recorder publishes per-lane
// burn rates through it.
type GaugeFuncVec struct {
	name, help, label string
	values            []string
	fn                func(value string) float64
}

// renderable is one registered family.
type renderable interface {
	famName() string
	render(w io.Writer)
}

// Registry holds metric families and renders them in registration order.
type Registry struct {
	mu   sync.Mutex
	fams []renderable
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register appends a family, rejecting duplicate names loudly: duplicate
// registration is a wiring bug reachable only from static setup code, so it
// panics like sim.Schedule's causality check rather than limping along with
// an invalid exposition.
func (r *Registry) register(f renderable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.famName() == f.famName() {
			panic(fmt.Sprintf("telemetry: metric %q registered twice", f.famName()))
		}
	}
	r.fams = append(r.fams, f)
}

// Counter registers and returns a counter family.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&counterFam{name: name, help: help, c: c})
	return c
}

// CounterVec registers a labelled counter family with the given fixed label
// values, rendered one line per value in the given order.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, values: values}
	v.counters = make([]*Counter, len(values))
	for i := range values {
		v.counters[i] = &Counter{}
	}
	r.register(v)
	return v
}

// GaugeVec registers a labelled gauge family with the given fixed label
// values, rendered one line per value in the given order.
func (r *Registry) GaugeVec(name, help, label string, values ...string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, values: values}
	v.gauges = make([]*Gauge, len(values))
	for i := range values {
		v.gauges[i] = &Gauge{}
	}
	r.register(v)
	return v
}

// Gauge registers and returns an integer gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&gaugeFam{name: name, help: help, g: g})
	return g
}

// GaugeFunc registers a computed gauge: fn is evaluated at render time and
// must be safe to call concurrently with the hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFuncFam{name: name, help: help, fn: fn})
}

// Histogram registers and returns a histogram family over the bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(&histogramFam{name: name, help: help, h: h})
	return h
}

// HistogramVec registers a labelled histogram family: one histogram over the
// given bounds per fixed label value, rendered in the given order.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64, values ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, label: label, values: values}
	v.hists = make([]*Histogram, len(values))
	for i := range values {
		v.hists[i] = NewHistogram(bounds)
	}
	r.register(v)
	return v
}

// GaugeFuncVec registers a labelled computed gauge family: fn is evaluated
// once per label value at render time.
func (r *Registry) GaugeFuncVec(name, help, label string, fn func(value string) float64, values ...string) {
	r.register(&GaugeFuncVec{name: name, help: help, label: label, values: values, fn: fn})
}

// Render writes every family in Prometheus text exposition format, in
// registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	fams := make([]renderable, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type counterFam struct {
	name, help string
	c          *Counter
}

func (f *counterFam) famName() string { return f.name }
func (f *counterFam) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", f.name, f.help, f.name, f.name, f.c.Value())
}

func (v *CounterVec) famName() string { return v.name }
func (v *CounterVec) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	for i, val := range v.values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, v.counters[i].Value())
	}
}

func (v *GaugeVec) famName() string { return v.name }
func (v *GaugeVec) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", v.name, v.help, v.name)
	for i, val := range v.values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, v.gauges[i].Value())
	}
}

func (v *HistogramVec) famName() string { return v.name }
func (v *HistogramVec) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for i, val := range v.values {
		h := v.hists[i]
		var cum uint64
		for j, b := range h.bounds {
			cum += h.counts[j].Load()
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", v.name, v.label, val, fmtFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", v.name, v.label, val, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", v.name, v.label, val, fmtFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", v.name, v.label, val, h.Count())
	}
}

func (v *GaugeFuncVec) famName() string { return v.name }
func (v *GaugeFuncVec) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", v.name, v.help, v.name)
	for _, val := range v.values {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", v.name, v.label, val, fmtFloat(v.fn(val)))
	}
}

type gaugeFam struct {
	name, help string
	g          *Gauge
}

func (f *gaugeFam) famName() string { return f.name }
func (f *gaugeFam) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		f.name, f.help, f.name, f.name, strconv.FormatInt(f.g.Value(), 10))
}

type gaugeFuncFam struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFuncFam) famName() string { return f.name }
func (f *gaugeFuncFam) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		f.name, f.help, f.name, f.name, fmtFloat(f.fn()))
}

type histogramFam struct {
	name, help string
	h          *Histogram
}

func (f *histogramFam) famName() string { return f.name }
func (f *histogramFam) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name)
	var cum uint64
	for i, b := range f.h.bounds {
		cum += f.h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, fmtFloat(b), cum)
	}
	cum += f.h.counts[len(f.h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtFloat(f.h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", f.name, f.h.Count())
}
