// Package telemetry is the observability layer shared by every engine in the
// repository: a cycle-level event tracer whose streams load directly into
// Perfetto (Chrome trace-event JSON), and a typed metrics registry that
// renders the Prometheus text format served by the online front-end.
//
// Both halves follow the same contract as the dram.AccessLog hook they
// generalize: attachment is observational only and never perturbs simulated
// timing, and the detached (nil) path costs one pointer comparison on the hot
// path — zero allocations, no branches taken.
//
// Determinism. Trace events carry *simulated* cycles, not wall-clock time,
// and every engine emits them from its serial accounting sections (the timed
// per-batch loop, the DRAM read sequence), which run in program order at
// every Parallelism setting. A traced run therefore produces a bit-identical
// event stream whether the host evaluated the tree on one worker or on every
// core — the same construction-order folding that keeps PE statistics
// deterministic (docs/ARCHITECTURE.md §9) keeps the trace deterministic.
package telemetry

import (
	"sort"
	"sync"
)

// Phase classifies an event in the Chrome trace-event model. Only the
// phases the engines need are defined.
const (
	// PhaseSpan is a complete event ('X'): a named interval with a duration.
	PhaseSpan byte = 'X'
	// PhaseInstant is an instantaneous event ('i').
	PhaseInstant byte = 'i'
)

// Process-ID blocks of the unified timeline. Chrome trace viewers group
// lanes (threads) under processes; the repository assigns stable PID ranges
// so traces from several layers merge without collisions.
const (
	// PIDEngine groups engine-level lanes (hardware-batch spans).
	PIDEngine = 1
	// PIDServe groups serving-layer lanes (request lifecycle).
	PIDServe = 2
	// PIDRouter groups fleet-router lanes (per-shard scatter windows,
	// failover retries, probes, and the host-side combine).
	PIDRouter = 3
	// PIDRnet groups the in-network reduction lanes: one lane per switch
	// level of the rnet tree, carrying switch-fire spans (internal/rnet).
	PIDRnet = 4
	// PIDPELevelBase + level groups the PE lanes of one tree level.
	PIDPELevelBase = 10
	// PIDDRAMBase + globalRank groups one rank's per-bank lanes.
	PIDDRAMBase = 1000
)

// Lane (thread) IDs inside PIDServe. The serving layer emits request
// lifecycle instants on the requests lane, flush spans on the flusher lane,
// and hot-embedding cache consultations (strip-and-merge windows with
// hit/miss counts) on the cache lane.
const (
	TIDServeRequests = 0
	TIDServeFlusher  = 1
	TIDServeCache    = 2
)

// maxArgs bounds the per-event annotations; a fixed array keeps Event a
// plain value with no heap footprint.
const maxArgs = 8

// Arg is one key/value annotation on an event. A non-empty Str renders as a
// JSON string, otherwise Int renders as a number.
type Arg struct {
	Key string
	Str string
	Int int64
}

// Event is one trace record. TS and Dur are in cycles of the emitting
// component's own clock domain; ClockMHz converts them onto the unified
// microsecond timeline at export (wall-clock emitters use nanoseconds with
// ClockMHz = 1000, i.e. 1000 "cycles" per microsecond).
type Event struct {
	// Name is the event label shown on the slice; use static strings so the
	// emitting path does not allocate.
	Name string
	// Cat is the event category ("engine", "pe", "dram", "serve").
	Cat string
	// Phase is PhaseSpan or PhaseInstant.
	Phase byte
	// PID and TID place the event on a lane: PID groups lanes into a
	// process, TID selects the lane within it.
	PID, TID int
	// TS is the event start in cycles; Dur its length (PhaseSpan only).
	TS, Dur uint64
	// ClockMHz is the emitting clock domain, for the cycles-to-microseconds
	// conversion at export time.
	ClockMHz float64
	// Args holds up to maxArgs annotations; NArgs is how many are set.
	Args  [maxArgs]Arg
	NArgs int
}

// AddArg appends an annotation in place; extra args beyond the fixed
// capacity are dropped rather than allocated.
func (e *Event) AddArg(a Arg) {
	if e.NArgs < maxArgs {
		e.Args[e.NArgs] = a
		e.NArgs++
	}
}

// Tracer receives events and lane names. Implementations must be safe for
// concurrent use: the simulators emit serially, but the serving layer emits
// from handler goroutines.
//
// Engines hold a Tracer field that is nil by default and guard every
// emission with one nil check, so the tracing-off hot path stays free.
type Tracer interface {
	// Emit records one event.
	Emit(ev Event)
	// NameProcess labels a PID group. Idempotent; later names win.
	NameProcess(pid int, name string)
	// NameLane labels one (pid, tid) lane. Idempotent; later names win.
	NameLane(pid, tid int, name string)
}

// laneKey identifies one lane for metadata bookkeeping.
type laneKey struct{ pid, tid int }

// Trace is the standard Tracer: an in-memory event collector that exports
// Chrome trace-event JSON. The zero value is ready to use.
type Trace struct {
	mu        sync.Mutex
	events    []Event
	processes map[int]string
	lanes     map[laneKey]string
}

// NewTrace returns an empty collector.
func NewTrace() *Trace { return &Trace{} }

// Emit implements Tracer.
func (t *Trace) Emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NameProcess implements Tracer.
func (t *Trace) NameProcess(pid int, name string) {
	t.mu.Lock()
	if t.processes == nil {
		t.processes = make(map[int]string)
	}
	t.processes[pid] = name
	t.mu.Unlock()
}

// NameLane implements Tracer.
func (t *Trace) NameLane(pid, tid int, name string) {
	t.mu.Lock()
	if t.lanes == nil {
		t.lanes = make(map[laneKey]string)
	}
	t.lanes[laneKey{pid, tid}] = name
	t.mu.Unlock()
}

// Len reports the number of collected events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the collected events in emission order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset discards all collected events and lane names.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.processes = nil
	t.lanes = nil
	t.mu.Unlock()
}

// sortedEvents returns the events stable-sorted by (PID, TID, TS) — the
// order the Chrome exporter writes, which makes per-lane timestamps
// monotonic in the file. Emission order breaks ties, so the sort is
// deterministic for deterministic emitters.
func (t *Trace) sortedEvents() []Event {
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].PID != evs[j].PID {
			return evs[i].PID < evs[j].PID
		}
		if evs[i].TID != evs[j].TID {
			return evs[i].TID < evs[j].TID
		}
		return evs[i].TS < evs[j].TS
	})
	return evs
}
