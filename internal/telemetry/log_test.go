package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// Text mode must render byte-identically to the fmt.Printf lines it replaced:
// check.sh parses the serve handshake ("listening on host:port") with grep.
func TestLoggerTextMatchesPrintf(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Infof("listening on %s:%d", "127.0.0.1", 8080)
	l.Errorf("drain: %v", fmt.Errorf("timeout"))
	want := "listening on 127.0.0.1:8080\ndrain: timeout\n"
	if sb.String() != want {
		t.Fatalf("text log = %q, want %q", sb.String(), want)
	}
}

func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l, err := NewLogger(&sb, "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Infof("sent %d", 42)
	l.Errorf("boom")
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	wantLevels := []string{"info", "error"}
	wantMsgs := []string{"sent 42", "boom"}
	for i, line := range lines {
		var rec struct{ TS, Level, Msg string }
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec.Level != wantLevels[i] || rec.Msg != wantMsgs[i] || rec.TS == "" {
			t.Fatalf("line %d = %+v, want level %q msg %q", i, rec, wantLevels[i], wantMsgs[i])
		}
	}
}

func TestLoggerRejectsUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	// Empty format defaults to text.
	if _, err := NewLogger(&strings.Builder{}, ""); err != nil {
		t.Fatal(err)
	}
}
