package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// This file is the Chrome trace-event exporter and its validator. The format
// is the JSON Array Format documented by the Trace Event Profiling Tool and
// consumed by Perfetto (ui.perfetto.dev) and chrome://tracing: one object per
// event with ph/pid/tid/ts fields, ts and dur in microseconds.
//
// The exporter hand-renders JSON instead of reflecting through encoding/json
// so the byte stream is fully deterministic (field order, argument order,
// float formatting), which lets tests pin golden traces and lets the check.sh
// gate diff traced runs.

// usPerCycle converts an event's cycle count to microseconds. ClockMHz is
// cycles per microsecond; a zero clock means the TS/Dur are already in
// microseconds.
func usOf(cycles uint64, clockMHz float64) float64 {
	if clockMHz == 0 {
		return float64(cycles)
	}
	return float64(cycles) / clockMHz
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendString(b []byte, s string) []byte {
	return strconv.AppendQuote(b, s)
}

// appendEvent renders one trace event object.
func appendEvent(b []byte, ev *Event) []byte {
	b = append(b, `{"name":`...)
	b = appendString(b, ev.Name)
	if ev.Cat != "" {
		b = append(b, `,"cat":`...)
		b = appendString(b, ev.Cat)
	}
	b = append(b, `,"ph":"`...)
	b = append(b, ev.Phase)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(ev.PID), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(ev.TID), 10)
	b = append(b, `,"ts":`...)
	b = appendFloat(b, usOf(ev.TS, ev.ClockMHz))
	if ev.Phase == PhaseSpan {
		b = append(b, `,"dur":`...)
		b = appendFloat(b, usOf(ev.Dur, ev.ClockMHz))
	}
	if ev.Phase == PhaseInstant {
		b = append(b, `,"s":"t"`...) // thread-scoped instant
	}
	if ev.NArgs > 0 {
		b = append(b, `,"args":{`...)
		for i := 0; i < ev.NArgs; i++ {
			if i > 0 {
				b = append(b, ',')
			}
			a := &ev.Args[i]
			b = appendString(b, a.Key)
			b = append(b, ':')
			if a.Str != "" {
				b = appendString(b, a.Str)
			} else {
				b = strconv.AppendInt(b, a.Int, 10)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	return b
}

// appendMeta renders one metadata ('M') event naming a process or lane.
func appendMeta(b []byte, kind string, pid, tid int, name string) []byte {
	b = append(b, `{"name":`...)
	b = appendString(b, kind)
	b = append(b, `,"ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"name":`...)
	b = appendString(b, name)
	b = append(b, `}}`...)
	return b
}

// ChromeJSON renders the collected trace as a Chrome trace-event JSON
// document: metadata first (process and lane names in PID/TID order), then
// the events stable-sorted by (PID, TID, TS) so timestamps are monotonic
// within every lane.
func (t *Trace) ChromeJSON() []byte {
	evs := t.sortedEvents()

	t.mu.Lock()
	pids := make([]int, 0, len(t.processes))
	for pid := range t.processes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	keys := make([]laneKey, 0, len(t.lanes))
	for k := range t.lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	procNames := make(map[int]string, len(t.processes))
	for pid, name := range t.processes {
		procNames[pid] = name
	}
	laneNames := make(map[laneKey]string, len(t.lanes))
	for k, name := range t.lanes {
		laneNames[k] = name
	}
	t.mu.Unlock()

	var b []byte
	b = append(b, `{"traceEvents":[`...)
	first := true
	sep := func() {
		if !first {
			b = append(b, ",\n"...)
		}
		first = false
	}
	for _, pid := range pids {
		sep()
		b = appendMeta(b, "process_name", pid, 0, procNames[pid])
		// process_sort_index keeps the lane groups in PID order in the UI.
		sep()
		b = append(b, `{"name":"process_sort_index","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":0,"args":{"sort_index":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `}}`...)
	}
	for _, k := range keys {
		sep()
		b = appendMeta(b, "thread_name", k.pid, k.tid, laneNames[k])
	}
	for i := range evs {
		sep()
		b = appendEvent(b, &evs[i])
	}
	b = append(b, "],\n"...)
	b = append(b, `"displayTimeUnit":"ns"}`...)
	b = append(b, '\n')
	return b
}

// WriteChrome writes the Chrome trace-event JSON document to w.
func (t *Trace) WriteChrome(w io.Writer) error {
	_, err := w.Write(t.ChromeJSON())
	return err
}

// WriteChromeFile writes the trace to the named file.
func (t *Trace) WriteChromeFile(path string) error {
	return os.WriteFile(path, t.ChromeJSON(), 0o644)
}

// chromeEvent is the decoded shape ValidateChrome checks against.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	PID  *int     `json:"pid"`
	TID  *int     `json:"tid"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

// ValidateChrome checks that data is a well-formed Chrome trace-event JSON
// document whose events are loadable by Perfetto: every event has a name,
// a known phase, pid/tid/ts fields, spans carry a non-negative duration,
// and timestamps are monotonically non-decreasing within every (pid, tid)
// lane. It returns the number of non-metadata events.
func ValidateChrome(data []byte) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("telemetry: trace carries no traceEvents array")
	}
	lastTS := make(map[laneKey]float64)
	n := 0
	for i, raw := range doc.TraceEvents {
		var ev chromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("telemetry: event %d undecodable: %w", i, err)
		}
		if ev.Ph == "M" {
			continue // metadata: no timestamp semantics
		}
		switch {
		case ev.Name == "":
			return 0, fmt.Errorf("telemetry: event %d has no name", i)
		case ev.Ph != "X" && ev.Ph != "i" && ev.Ph != "C" && ev.Ph != "B" && ev.Ph != "E":
			return 0, fmt.Errorf("telemetry: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		case ev.PID == nil || ev.TID == nil:
			return 0, fmt.Errorf("telemetry: event %d (%s) lacks pid/tid", i, ev.Name)
		case ev.TS == nil:
			return 0, fmt.Errorf("telemetry: event %d (%s) lacks ts", i, ev.Name)
		case *ev.TS < 0:
			return 0, fmt.Errorf("telemetry: event %d (%s) has negative ts %v", i, ev.Name, *ev.TS)
		case ev.Ph == "X" && ev.Dur == nil:
			return 0, fmt.Errorf("telemetry: span %d (%s) lacks dur", i, ev.Name)
		case ev.Ph == "X" && *ev.Dur < 0:
			return 0, fmt.Errorf("telemetry: span %d (%s) has negative dur %v", i, ev.Name, *ev.Dur)
		}
		k := laneKey{*ev.PID, *ev.TID}
		if prev, ok := lastTS[k]; ok && *ev.TS < prev {
			return 0, fmt.Errorf("telemetry: event %d (%s) breaks lane %d/%d monotonicity: ts %v after %v",
				i, ev.Name, k.pid, k.tid, *ev.TS, prev)
		}
		lastTS[k] = *ev.TS
		n++
	}
	return n, nil
}
