package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func span(pid, tid int, ts, dur uint64) Event {
	return Event{Name: "work", Cat: "test", Phase: PhaseSpan, PID: pid, TID: tid, TS: ts, Dur: dur, ClockMHz: 1}
}

func TestTraceCollects(t *testing.T) {
	tr := NewTrace()
	if tr.Len() != 0 {
		t.Fatal("fresh trace not empty")
	}
	tr.Emit(span(1, 0, 10, 5))
	tr.Emit(span(1, 0, 20, 5))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].TS != 10 || evs[1].TS != 20 {
		t.Fatalf("Events() = %+v", evs)
	}
	// Events returns a copy: mutating it must not reach the collector.
	evs[0].TS = 999
	if tr.Events()[0].TS != 10 {
		t.Fatal("Events() aliases internal storage")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestAddArgCapsAtFixedCapacity(t *testing.T) {
	var ev Event
	for i := 0; i < maxArgs+3; i++ {
		ev.AddArg(Arg{Key: "k", Int: int64(i)})
	}
	if ev.NArgs != maxArgs {
		t.Fatalf("NArgs = %d, want cap %d", ev.NArgs, maxArgs)
	}
}

func TestChromeJSONDeterministicAndSorted(t *testing.T) {
	build := func() *Trace {
		tr := NewTrace()
		tr.NameProcess(2, "beta")
		tr.NameProcess(1, "alpha")
		tr.NameLane(1, 1, "lane-b")
		tr.NameLane(1, 0, "lane-a")
		// Emit out of lane order: the exporter must sort by (pid, tid, ts).
		tr.Emit(span(2, 0, 5, 1))
		tr.Emit(span(1, 1, 30, 2))
		tr.Emit(span(1, 0, 20, 2))
		tr.Emit(span(1, 0, 10, 2))
		return tr
	}
	a, b := build().ChromeJSON(), build().ChromeJSON()
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeJSON is not deterministic for identical traces")
	}
	n, err := ValidateChrome(a)
	if err != nil {
		t.Fatalf("exporter emits invalid trace: %v", err)
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	out := string(a)
	if !strings.Contains(out, `"args":{"name":"alpha"}`) || !strings.Contains(out, `"args":{"name":"lane-b"}`) {
		t.Fatalf("metadata names missing:\n%s", out)
	}
	// pid 1 lane 0 events must appear in ts order even though emitted reversed.
	i10 := strings.Index(out, `"ts":10`)
	i20 := strings.Index(out, `"ts":20`)
	if i10 < 0 || i20 < 0 || i10 > i20 {
		t.Fatalf("lane events not ts-sorted:\n%s", out)
	}
}

func TestChromeJSONClockConversion(t *testing.T) {
	tr := NewTrace()
	// 400 cycles at 200 MHz = 2 µs; dur 100 cycles = 0.5 µs.
	tr.Emit(Event{Name: "pe", Phase: PhaseSpan, PID: 1, TS: 400, Dur: 100, ClockMHz: 200})
	// ClockMHz 0 means TS already in µs.
	tr.Emit(Event{Name: "raw", Phase: PhaseInstant, PID: 1, TS: 7})
	out := string(tr.ChromeJSON())
	for _, want := range []string{`"ts":2,"dur":0.5`, `"ts":7`, `"s":"t"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestChromeJSONArgs(t *testing.T) {
	tr := NewTrace()
	ev := span(1, 0, 0, 1)
	ev.AddArg(Arg{Key: "outcome", Str: "hit"})
	ev.AddArg(Arg{Key: "row", Int: 42})
	tr.Emit(ev)
	out := string(tr.ChromeJSON())
	if !strings.Contains(out, `"args":{"outcome":"hit","row":42}`) {
		t.Fatalf("args mis-rendered:\n%s", out)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"not json", `{`, "not valid JSON"},
		{"no traceEvents", `{"other":1}`, "no traceEvents"},
		{"unnamed", `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":0,"dur":1}]}`, "no name"},
		{"bad phase", `{"traceEvents":[{"name":"e","ph":"Z","pid":1,"tid":0,"ts":0}]}`, "unknown phase"},
		{"missing pid", `{"traceEvents":[{"name":"e","ph":"i","ts":0}]}`, "lacks pid"},
		{"missing tid", `{"traceEvents":[{"name":"e","ph":"i","pid":1,"ts":0}]}`, "lacks pid/tid"},
		{"non-object event", `{"traceEvents":[17]}`, "undecodable"},
		{"missing ts", `{"traceEvents":[{"name":"e","ph":"i","pid":1,"tid":0}]}`, "lacks ts"},
		{"negative ts", `{"traceEvents":[{"name":"e","ph":"i","pid":1,"tid":0,"ts":-1}]}`, "negative ts"},
		{"span without dur", `{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":0,"ts":0}]}`, "lacks dur"},
		{"negative dur", `{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":0,"ts":0,"dur":-2}]}`, "negative dur"},
		{"lane regression", `{"traceEvents":[
			{"name":"a","ph":"i","pid":1,"tid":0,"ts":5},
			{"name":"b","ph":"i","pid":1,"tid":0,"ts":3}]}`, "monotonicity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ValidateChrome([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ValidateChrome = %v, want error naming %q", err, tc.want)
			}
		})
	}
}

func TestValidateChromeAccepts(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"p"}},
		{"name":"a","ph":"i","pid":1,"tid":0,"ts":5},
		{"name":"b","ph":"i","pid":1,"tid":1,"ts":1},
		{"name":"c","ph":"X","pid":1,"tid":0,"ts":5,"dur":0}]}`
	n, err := ValidateChrome([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("counted %d events, want 3 (metadata excluded)", n)
	}
}
