package telemetry

import (
	"sort"
	"sync"
	"time"
)

// SLO is the flight recorder for service-level objectives: rolling-window
// good/bad counters per lane, burn-rate gauges, and a bounded in-memory ring
// of the slowest and most recent degraded requests (their IDs plus whatever
// per-request detail the caller attaches — the serving layer attaches its
// latency Breakdown).
//
// A request is "good" when it is not degraded and its latency meets the
// lane's objective. The burn rate is the classic multi-window SRE quantity
// restricted to one window: (bad fraction over the window) divided by the
// error-budget fraction, so 1.0 means the budget is being consumed exactly
// at the sustainable rate, and >1 means the lane is burning down.
//
// The recorder is observational only: Observe takes one short mutex hold and
// never blocks the serving path on I/O.

// SLOConfig configures the flight recorder.
type SLOConfig struct {
	// Window is the rolling evaluation window (default 60s). Counters are
	// bucketed per second, so sub-second windows round up to one second.
	Window time.Duration
	// Objectives maps lane name to its latency objective. Lanes are fixed at
	// construction; observations for unknown lanes are dropped.
	Objectives map[string]time.Duration
	// BudgetFraction is the error budget as a fraction of requests
	// (default 0.01, i.e. 99% of requests should be good).
	BudgetFraction float64
	// K bounds the slowest-request and degraded-request rings (default 16).
	K int
	// Now overrides the clock, for tests. Defaults to time.Now.
	Now func() time.Time
}

// SLORecord is one remembered request in the flight recorder.
type SLORecord struct {
	ID        uint64  `json:"id"`
	Lane      string  `json:"lane"`
	LatencyUS float64 `json:"latency_us"`
	Degraded  bool    `json:"degraded,omitempty"`
	Good      bool    `json:"good"`
	// Detail carries caller-attached context; the serving layer attaches the
	// request's stage-latency Breakdown here.
	Detail any `json:"detail,omitempty"`
}

// LaneSLO is the per-lane view in a snapshot.
type LaneSLO struct {
	Lane        string  `json:"lane"`
	ObjectiveUS float64 `json:"objective_us"`
	Good        uint64  `json:"good"`
	Bad         uint64  `json:"bad"`
	BurnRate    float64 `json:"burn_rate"`
}

// SLOSnapshot is the JSON document served on /debug/slo.
type SLOSnapshot struct {
	WindowSeconds  float64     `json:"window_seconds"`
	BudgetFraction float64     `json:"budget_fraction"`
	Lanes          []LaneSLO   `json:"lanes"`
	Slowest        []SLORecord `json:"slowest"`
	Degraded       []SLORecord `json:"degraded"`
}

// sloBucket is one second of good/bad counts; sec stamps which epoch second
// the counts belong to, so stale ring slots are recognized lazily.
type sloBucket struct {
	sec       int64
	good, bad uint64
}

// sloLane is the rolling window of one lane.
type sloLane struct {
	name      string
	objective time.Duration
	buckets   []sloBucket
}

// SLO is the flight recorder; construct with NewSLO.
type SLO struct {
	mu       sync.Mutex
	window   time.Duration
	nbuckets int
	budget   float64
	k        int
	now      func() time.Time
	lanes    []*sloLane // sorted by name for deterministic snapshots
	slowest  []SLORecord
	degraded []SLORecord // ring, most recent last
}

// NewSLO builds a flight recorder over the configured lanes.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.BudgetFraction <= 0 {
		cfg.BudgetFraction = 0.01
	}
	if cfg.K <= 0 {
		cfg.K = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	n := int((cfg.Window + time.Second - 1) / time.Second)
	if n < 1 {
		n = 1
	}
	s := &SLO{
		window:   cfg.Window,
		nbuckets: n,
		budget:   cfg.BudgetFraction,
		k:        cfg.K,
		now:      cfg.Now,
	}
	names := make([]string, 0, len(cfg.Objectives))
	for name := range cfg.Objectives {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.lanes = append(s.lanes, &sloLane{
			name:      name,
			objective: cfg.Objectives[name],
			buckets:   make([]sloBucket, n),
		})
	}
	return s
}

// Lanes returns the configured lane names in snapshot order.
func (s *SLO) Lanes() []string {
	out := make([]string, len(s.lanes))
	for i, l := range s.lanes {
		out[i] = l.name
	}
	return out
}

func (s *SLO) lane(name string) *sloLane {
	for _, l := range s.lanes {
		if l.name == name {
			return l
		}
	}
	return nil
}

// Observe records one finished request. Degraded requests and requests over
// their lane's objective count against the error budget; detail (typically
// the request's Breakdown) is kept only if the request enters one of the
// flight-recorder rings.
func (s *SLO) Observe(lane string, id uint64, latency time.Duration, degraded bool, detail any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lane(lane)
	if l == nil {
		return
	}
	good := !degraded && latency <= l.objective
	sec := s.now().Unix()
	b := &l.buckets[int(sec%int64(s.nbuckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}

	rec := SLORecord{
		ID:        id,
		Lane:      lane,
		LatencyUS: float64(latency) / float64(time.Microsecond),
		Degraded:  degraded,
		Good:      good,
		Detail:    detail,
	}
	// Slowest-K ring: keep sorted descending by latency, admit if the ring
	// has room or the new request is slower than the current floor.
	i := sort.Search(len(s.slowest), func(i int) bool {
		return s.slowest[i].LatencyUS < rec.LatencyUS
	})
	if i < s.k {
		s.slowest = append(s.slowest, SLORecord{})
		copy(s.slowest[i+1:], s.slowest[i:])
		s.slowest[i] = rec
		if len(s.slowest) > s.k {
			s.slowest = s.slowest[:s.k]
		}
	}
	if degraded {
		s.degraded = append(s.degraded, rec)
		if len(s.degraded) > s.k {
			s.degraded = s.degraded[1:]
		}
	}
}

// windowCounts sums the lane's buckets that fall inside the window ending at
// the current second. Caller holds s.mu.
func (s *SLO) windowCounts(l *sloLane) (good, bad uint64) {
	cutoff := s.now().Unix() - int64(s.nbuckets) + 1
	for i := range l.buckets {
		if l.buckets[i].sec >= cutoff {
			good += l.buckets[i].good
			bad += l.buckets[i].bad
		}
	}
	return good, bad
}

// BurnRate reports the lane's current burn rate: the fraction of bad
// requests in the window divided by the error-budget fraction. An idle lane
// (no requests in the window) or an unknown lane reports 0.
func (s *SLO) BurnRate(lane string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lane(lane)
	if l == nil {
		return 0
	}
	good, bad := s.windowCounts(l)
	total := good + bad
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / s.budget
}

// Snapshot returns the full flight-recorder state for /debug/slo.
func (s *SLO) Snapshot() SLOSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SLOSnapshot{
		WindowSeconds:  s.window.Seconds(),
		BudgetFraction: s.budget,
		Lanes:          make([]LaneSLO, 0, len(s.lanes)),
		Slowest:        append([]SLORecord(nil), s.slowest...),
		Degraded:       append([]SLORecord(nil), s.degraded...),
	}
	for _, l := range s.lanes {
		good, bad := s.windowCounts(l)
		ls := LaneSLO{
			Lane:        l.name,
			ObjectiveUS: float64(l.objective) / float64(time.Microsecond),
			Good:        good,
			Bad:         bad,
		}
		if total := good + bad; total > 0 {
			ls.BurnRate = float64(bad) / float64(total) / s.budget
		}
		snap.Lanes = append(snap.Lanes, ls)
	}
	return snap
}
