package telemetry

import (
	"testing"
	"time"
)

// sloClock is an injectable test clock for the flight recorder.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time            { return c.t }
func (c *sloClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newSLOClock() *sloClock                  { return &sloClock{t: time.Unix(1_000_000, 0)} }
func mustLane(t *testing.T, s SLOSnapshot, name string) LaneSLO {
	t.Helper()
	for _, l := range s.Lanes {
		if l.Lane == name {
			return l
		}
	}
	t.Fatalf("lane %q missing from snapshot %+v", name, s)
	return LaneSLO{}
}

func TestSLOBurnRate(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{
		Window:         10 * time.Second,
		Objectives:     map[string]time.Duration{"high": 50 * time.Millisecond},
		BudgetFraction: 0.1,
		Now:            clk.now,
	})

	if got := s.BurnRate("high"); got != 0 {
		t.Fatalf("idle lane burn rate = %v, want 0", got)
	}

	// 9 good + 1 bad over a 0.1 budget: bad fraction 0.1 / budget 0.1 = 1.0,
	// burning exactly at the sustainable rate.
	for i := 0; i < 9; i++ {
		s.Observe("high", uint64(i), 10*time.Millisecond, false, nil)
	}
	s.Observe("high", 9, 500*time.Millisecond, false, nil) // over objective
	if got := s.BurnRate("high"); got != 1.0 {
		t.Fatalf("burn rate = %v, want 1.0", got)
	}

	// A degraded request is bad even when fast.
	s.Observe("high", 10, time.Millisecond, true, nil)
	snap := s.Snapshot()
	lane := mustLane(t, snap, "high")
	if lane.Good != 9 || lane.Bad != 2 {
		t.Fatalf("lane counts good=%d bad=%d, want 9/2", lane.Good, lane.Bad)
	}

	if got := s.BurnRate("nope"); got != 0 {
		t.Fatalf("unknown lane burn rate = %v, want 0", got)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{
		Window:     5 * time.Second,
		Objectives: map[string]time.Duration{"low": time.Second},
		Now:        clk.now,
	})
	s.Observe("low", 1, 2*time.Second, false, nil) // bad
	if got := s.BurnRate("low"); got == 0 {
		t.Fatal("bad request did not register in the window")
	}
	// Past the window the bucket is stale and the lane reads idle again.
	clk.advance(6 * time.Second)
	if got := s.BurnRate("low"); got != 0 {
		t.Fatalf("burn rate after window expiry = %v, want 0", got)
	}
	if lane := mustLane(t, s.Snapshot(), "low"); lane.Good != 0 || lane.Bad != 0 {
		t.Fatalf("stale counts survived expiry: %+v", lane)
	}
}

func TestSLOSlowestRing(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{
		Objectives: map[string]time.Duration{"normal": time.Second},
		K:          3,
		Now:        clk.now,
	})
	// Admit in shuffled order; the ring must keep the 3 slowest, descending.
	for _, ms := range []int{5, 40, 10, 30, 20} {
		s.Observe("normal", uint64(ms), time.Duration(ms)*time.Millisecond, false, nil)
	}
	snap := s.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest ring holds %d, want 3", len(snap.Slowest))
	}
	for i, wantID := range []uint64{40, 30, 20} {
		if snap.Slowest[i].ID != wantID {
			t.Fatalf("slowest[%d].ID = %d, want %d (ring %+v)", i, snap.Slowest[i].ID, wantID, snap.Slowest)
		}
	}
}

func TestSLODegradedRingKeepsMostRecent(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{
		Objectives: map[string]time.Duration{"normal": time.Second},
		K:          2,
		Now:        clk.now,
	})
	for id := uint64(1); id <= 4; id++ {
		s.Observe("normal", id, time.Millisecond, true, "detail")
	}
	snap := s.Snapshot()
	if len(snap.Degraded) != 2 || snap.Degraded[0].ID != 3 || snap.Degraded[1].ID != 4 {
		t.Fatalf("degraded ring = %+v, want IDs [3 4]", snap.Degraded)
	}
	if snap.Degraded[1].Detail != "detail" || snap.Degraded[1].Good {
		t.Fatalf("degraded record lost detail or miscounted: %+v", snap.Degraded[1])
	}
}
