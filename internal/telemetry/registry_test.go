package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRenderOrderAndFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_total", "Things done.")
	v := r.CounterVec("app_outcomes_total", "By outcome.", "outcome", "ok", "error")
	g := r.Gauge("app_depth", "Queue depth.")
	r.GaugeFunc("app_ratio", "A computed ratio.", func() float64 { return 2.5 })
	h := r.Histogram("app_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	v.With("ok").Add(2)
	v.With("error").Add(1)
	g.Set(-4)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	r.Render(&sb)
	want := `# HELP app_total Things done.
# TYPE app_total counter
app_total 3
# HELP app_outcomes_total By outcome.
# TYPE app_outcomes_total counter
app_outcomes_total{outcome="ok"} 2
app_outcomes_total{outcome="error"} 1
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth -4
# HELP app_ratio A computed ratio.
# TYPE app_ratio gauge
app_ratio 2.5
# HELP app_seconds Latency.
# TYPE app_seconds histogram
app_seconds_bucket{le="0.1"} 1
app_seconds_bucket{le="1"} 2
app_seconds_bucket{le="+Inf"} 3
app_seconds_sum 7.55
app_seconds_count 3
`
	if sb.String() != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "Second.")
}

func TestCounterVecUnknownLabelDetached(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "h", "k", "a")
	v.With("nope").Add(100)
	if v.With("a").Value() != 0 || v.At(0).Value() != 0 {
		t.Fatal("unknown label leaked into a registered counter")
	}
	var sb strings.Builder
	r.Render(&sb)
	if strings.Contains(sb.String(), "100") {
		t.Fatalf("detached counter rendered:\n%s", sb.String())
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	h.Observe(2)
	got := h.BucketCounts()
	if got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("BucketCounts = %v, want [1 1 0]", got)
	}
}

func TestRegistryConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	h := r.Histogram("hot_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || h.Sum() != 4000 {
		t.Fatalf("lost updates: counter %d, count %d, sum %v", c.Value(), h.Count(), h.Sum())
	}
}
