package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRenderOrderAndFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_total", "Things done.")
	v := r.CounterVec("app_outcomes_total", "By outcome.", "outcome", "ok", "error")
	g := r.Gauge("app_depth", "Queue depth.")
	r.GaugeFunc("app_ratio", "A computed ratio.", func() float64 { return 2.5 })
	h := r.Histogram("app_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	v.With("ok").Add(2)
	v.With("error").Add(1)
	g.Set(-4)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	r.Render(&sb)
	want := `# HELP app_total Things done.
# TYPE app_total counter
app_total 3
# HELP app_outcomes_total By outcome.
# TYPE app_outcomes_total counter
app_outcomes_total{outcome="ok"} 2
app_outcomes_total{outcome="error"} 1
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth -4
# HELP app_ratio A computed ratio.
# TYPE app_ratio gauge
app_ratio 2.5
# HELP app_seconds Latency.
# TYPE app_seconds histogram
app_seconds_bucket{le="0.1"} 1
app_seconds_bucket{le="1"} 2
app_seconds_bucket{le="+Inf"} 3
app_seconds_sum 7.55
app_seconds_count 3
`
	if sb.String() != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "Second.")
}

func TestCounterVecUnknownLabelDetached(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "h", "k", "a")
	v.With("nope").Add(100)
	if v.With("a").Value() != 0 || v.At(0).Value() != 0 {
		t.Fatal("unknown label leaked into a registered counter")
	}
	var sb strings.Builder
	r.Render(&sb)
	if strings.Contains(sb.String(), "100") {
		t.Fatalf("detached counter rendered:\n%s", sb.String())
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	h.Observe(2)
	got := h.BucketCounts()
	if got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("BucketCounts = %v, want [1 1 0]", got)
	}
}

// HistogramVec rendering at the +Inf boundary: a sample exactly on the last
// finite bound stays out of +Inf's exclusive share, and the +Inf cumulative
// count always equals _count — per label value.
func TestHistogramVecRenderAtInfBoundary(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Stage latency.", "stage", []float64{0.5, 1}, "queue", "backend")
	v.With("queue").Observe(1)   // exactly the last finite bound: counted in le="1", not +Inf overflow
	v.With("queue").Observe(1.5) // past every bound: +Inf only
	// "backend" stays empty: it must still render all buckets at zero.

	var sb strings.Builder
	r.Render(&sb)
	want := `# HELP stage_seconds Stage latency.
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="queue",le="0.5"} 0
stage_seconds_bucket{stage="queue",le="1"} 1
stage_seconds_bucket{stage="queue",le="+Inf"} 2
stage_seconds_sum{stage="queue"} 2.5
stage_seconds_count{stage="queue"} 2
stage_seconds_bucket{stage="backend",le="0.5"} 0
stage_seconds_bucket{stage="backend",le="1"} 0
stage_seconds_bucket{stage="backend",le="+Inf"} 0
stage_seconds_sum{stage="backend"} 0
stage_seconds_count{stage="backend"} 0
`
	if sb.String() != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestHistogramVecUnknownLabelDetached(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("h_seconds", "h", "k", []float64{1}, "a")
	v.With("nope").Observe(99)
	if v.With("a").Count() != 0 || v.At(0).Count() != 0 {
		t.Fatal("unknown label leaked into a registered histogram")
	}
}

func TestGaugeFuncVecRender(t *testing.T) {
	r := NewRegistry()
	r.GaugeFuncVec("burn_rate", "Burn.", "lane", func(lane string) float64 {
		if lane == "high" {
			return 1.5
		}
		return 0
	}, "high", "low")
	var sb strings.Builder
	r.Render(&sb)
	want := `# HELP burn_rate Burn.
# TYPE burn_rate gauge
burn_rate{lane="high"} 1.5
burn_rate{lane="low"} 0
`
	if sb.String() != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestRegistryConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	h := r.Histogram("hot_seconds", "h", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || h.Sum() != 4000 {
		t.Fatalf("lost updates: counter %d, count %d, sum %v", c.Value(), h.Count(), h.Sum())
	}
}
