package telemetry

// Deterministic span identifiers for cross-layer request tracing.
//
// Every accepted serving request gets a request ID from a per-coalescer
// counter; each downstream hop (flush, hardware batch, shard lookup, switch
// combine) derives its own span ID from its parent's ID and a static stage
// name via SpanID. The derivation is a pure hash — no clocks, no randomness —
// so a replayed run reproduces the exact same ID tree, and two children of
// the same parent (distinguished by the ordinal k) never collide in practice.
//
// Span parentage is carried on the events themselves as two integer args,
// ArgSpan ("span") and ArgParent ("parent"), so the chain survives the
// Chrome-trace export and can be walked by fafnir-trace report.

// Arg keys used for span parentage annotations.
const (
	// ArgSpan is the event's own span ID.
	ArgSpan = "span"
	// ArgParent is the span ID of the event's parent (0 = root).
	ArgParent = "parent"
)

// fnv64 is the FNV-1a hash of a static stage name; inlined here so the hot
// emission paths never import hash/fnv.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64,
// the same mixer the serving layer and load generator use for jitter seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpanID derives the deterministic span ID of child number k of stage `name`
// under `parent`. The result is never zero (zero is reserved for "no
// parent"), so consumers can treat parent==0 as the root of a chain.
func SpanID(parent uint64, name string, k uint64) uint64 {
	id := mix64(parent ^ fnv64(name) ^ mix64(k))
	if id == 0 {
		id = 1
	}
	return id
}
