package telemetry

import "testing"

func TestSpanIDDeterministicAndDistinct(t *testing.T) {
	if SpanID(7, "flush", 1) != SpanID(7, "flush", 1) {
		t.Fatal("SpanID is not deterministic")
	}
	ids := []uint64{
		SpanID(7, "flush", 1),
		SpanID(7, "flush", 2),    // different ordinal
		SpanID(8, "flush", 1),    // different parent
		SpanID(7, "hw_batch", 1), // different stage
	}
	seen := map[uint64]bool{}
	for _, id := range ids {
		if id == 0 {
			t.Fatal("SpanID returned the reserved root value 0")
		}
		if seen[id] {
			t.Fatalf("SpanID collision among %v", ids)
		}
		seen[id] = true
	}
}

func TestSpanIDNeverZeroOverOrdinals(t *testing.T) {
	for k := uint64(0); k < 10_000; k++ {
		if SpanID(k, "stage", k) == 0 {
			t.Fatalf("SpanID zero at k=%d", k)
		}
	}
}
