package telemetry_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// goldenTrace runs the fixed small workload the snapshot pins: one hardware
// batch of 4 queries on the default 31-PE tree, traced end to end (engine,
// PEs, DRAM banks).
func goldenTrace(t *testing.T) *telemetry.Trace {
	t.Helper()
	cfg := core.Default() // VectorDim 128 matches the DDR4 512 B interleave
	cfg.BatchCapacity = 4
	cfg.Parallelism = 1
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, cfg.VectorBytes(), 32, 64)
	store := embedding.MustStore(layout.TotalRows(), cfg.VectorDim, 11)
	mem := dram.MustSystem(mcfg)

	tr := telemetry.NewTrace()
	e.AttachTracer(tr)
	mem.AttachTracer(tr)

	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 4, QuerySize: 6, Rows: layout.TotalRows(),
		Dist: embedding.Zipf, ZipfS: 1.3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TimedLookup(store, layout, mem, gen.Batch(tensor.OpSum), true); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenChromeTrace pins the exported byte stream of a small traced
// lookup against testdata/small_lookup.trace.json. The snapshot guards both
// the emitters (event names, lanes, cycle placement) and the exporter (field
// order, float formatting). Regenerate after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/telemetry -run TestGoldenChromeTrace
func TestGoldenChromeTrace(t *testing.T) {
	got := goldenTrace(t).ChromeJSON()
	path := filepath.Join("testdata", "small_lookup.trace.json")

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverges from golden %s (got %d bytes, want %d); regenerate with UPDATE_GOLDEN=1 if intentional",
			path, len(got), len(want))
	}
	if n, err := telemetry.ValidateChrome(want); err != nil || n == 0 {
		t.Fatalf("golden trace invalid: %d events, %v", n, err)
	}
}
