package scale

import (
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/tensor"
)

func testBatch(t *testing.T, n, q int, rows uint64, seed int64) embedding.Batch {
	t.Helper()
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n, QuerySize: q, Rows: rows, Dist: embedding.Zipf, ZipfS: 1.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Shards = 0 },
		func(c *Config) { c.RanksPerShard = 0 },
		func(c *Config) { c.BatchCapacity = 0 },
		func(c *Config) { c.Host.Cores = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := New(cfg, 1024); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLookupMatchesGolden(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		cfg := Default()
		cfg.Shards = shards
		cfg.RanksPerShard = 32 / shards
		sys, err := New(cfg, 1<<16)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b := testBatch(t, 16, 16, 1<<16, int64(shards))
		res, err := sys.Lookup(b)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		golden := b.MustGolden(sys.Store())
		for qi := range golden {
			if res.Outputs[qi] == nil || !res.Outputs[qi].ApproxEqual(golden[qi], 1e-3) {
				t.Fatalf("shards=%d query %d mismatch", shards, qi)
			}
		}
		if res.TotalCycles == 0 || res.MemoryReads == 0 {
			t.Fatalf("shards=%d empty result %+v", shards, res)
		}
	}
}

func TestSingleShardNoCombine(t *testing.T) {
	cfg := Default()
	cfg.Shards = 1
	cfg.RanksPerShard = 32
	sys, err := New(cfg, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch(t, 8, 16, 1<<14, 5)
	res, err := sys.Lookup(b)
	if err != nil {
		t.Fatal(err)
	}
	// One tree: exactly one partial per query, no host combines.
	if res.Partials != 8 {
		t.Fatalf("partials = %d, want 8", res.Partials)
	}
	if res.CombineCycles != 0 {
		t.Fatalf("combine cycles = %d with one shard", res.CombineCycles)
	}
}

func TestMoreShardsMorePartials(t *testing.T) {
	mk := func(shards int) *Result {
		cfg := Default()
		cfg.Shards = shards
		cfg.RanksPerShard = 32 / shards
		sys, err := New(cfg, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		b := testBatch(t, 16, 16, 1<<16, 9)
		res, err := sys.Lookup(b)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := mk(1)
	four := mk(4)
	if four.Partials <= one.Partials {
		t.Fatalf("partials did not grow with shards: %d vs %d", four.Partials, one.Partials)
	}
	if four.CombineCycles == 0 {
		t.Fatal("sharded run needed no combines")
	}
}

func TestLookupRejectsNonSum(t *testing.T) {
	sys, err := New(Default(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch(t, 2, 4, 1024, 1)
	b.Op = tensor.OpMin
	if _, err := sys.Lookup(b); err == nil {
		t.Fatal("non-sum pooling accepted by sharded combine")
	}
}

func TestTotalRanks(t *testing.T) {
	sys, err := New(Config{Shards: 4, RanksPerShard: 8, BatchCapacity: 16,
		Host: Default().Host, Seed: 1}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if sys.TotalRanks() != 32 {
		t.Fatalf("TotalRanks = %d", sys.TotalRanks())
	}
}
