// Package scale models scale-out deployments: several independent Fafnir
// trees, each spanning its own memory shard, with the host combining the
// per-shard partial sums. The paper's single tree reduces a query fully at
// NDP no matter where its vectors live; sharding brings back a (small)
// host-side combine — exactly the spatial-locality trade-off the paper
// criticizes in RecNMP, now at shard granularity. The abl-scaleout
// experiment quantifies when the extra trees' parallelism outweighs the
// combine cost.
package scale

import (
	"fmt"

	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	core "fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Config shapes a sharded deployment. Total ranks = Shards * RanksPerShard.
type Config struct {
	// Shards is the number of independent trees/memory shards.
	Shards int
	// RanksPerShard is each shard's memory width.
	RanksPerShard int
	// BatchCapacity is each tree's hardware batch size.
	BatchCapacity int
	// Host models the partial-sum combine.
	Host cpu.Config
	// Seed fixes table contents.
	Seed int64
}

// Default returns a 2x16 sharding of the paper's 32-rank system.
func Default() Config {
	return Config{
		Shards:        2,
		RanksPerShard: 16,
		BatchCapacity: 32,
		Host:          cpu.Default(),
		Seed:          1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Shards <= 0:
		return fmt.Errorf("scale: Shards must be positive, got %d", c.Shards)
	case c.RanksPerShard <= 0:
		return fmt.Errorf("scale: RanksPerShard must be positive, got %d", c.RanksPerShard)
	case c.BatchCapacity <= 0:
		return fmt.Errorf("scale: BatchCapacity must be positive, got %d", c.BatchCapacity)
	}
	return c.Host.Validate()
}

// shardPlacement maps global indices into one shard: index i belongs to
// shard i mod S and lives at local position i div S, striped over the
// shard's ranks at vector granularity.
type shardPlacement struct {
	shards int
	ranks  int
	bytes  int
}

func (p shardPlacement) Rank(idx header.Index) int {
	return int(uint64(idx) / uint64(p.shards) % uint64(p.ranks))
}

func (p shardPlacement) Addr(idx header.Index) dram.Addr {
	return dram.Addr(uint64(idx) / uint64(p.shards) * uint64(p.bytes))
}

func (p shardPlacement) VectorBytes() int { return p.bytes }

// shard is one tree plus its memory.
type shard struct {
	engine *core.Engine
	mem    *dram.System
	place  shardPlacement
}

// Result is the outcome of a sharded lookup.
type Result struct {
	// Outputs holds the combined vector per query.
	Outputs []tensor.Vector
	// ShardCycles is the slowest shard's lookup time.
	ShardCycles sim.Cycle
	// CombineCycles is the host-side partial combination time.
	CombineCycles sim.Cycle
	// TotalCycles is the end-to-end latency.
	TotalCycles sim.Cycle
	// Partials counts per-shard partial vectors sent to the host.
	Partials int
	// MemoryReads counts DRAM reads across all shards.
	MemoryReads int
}

// System is a sharded deployment over one global embedding store.
type System struct {
	cfg    Config
	store  *embedding.Store
	shards []shard
	host   *cpu.Engine
	mcfg   dram.Config
}

// New builds the deployment. rows is the global embedding-vector count.
func New(cfg Config, rows uint64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mcfg := dram.DDR4()
	switch {
	case cfg.RanksPerShard%8 == 0:
		mcfg.Channels = cfg.RanksPerShard / 8
	case cfg.RanksPerShard%2 == 0:
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = cfg.RanksPerShard / 2
	default:
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = 1
		mcfg.RanksPerDIMM = cfg.RanksPerShard
	}

	host, err := cpu.NewEngine(cfg.Host)
	if err != nil {
		return nil, err
	}
	store, err := embedding.NewStore(rows, 128, uint64(cfg.Seed))
	if err != nil {
		return nil, err
	}
	sys := &System{
		cfg:   cfg,
		store: store,
		host:  host,
		mcfg:  mcfg,
	}
	for s := 0; s < cfg.Shards; s++ {
		ecfg := core.Default()
		ecfg.NumRanks = cfg.RanksPerShard
		if cfg.RanksPerShard%2 != 0 {
			ecfg.LeafFanIn = 1
		}
		ecfg.BatchCapacity = cfg.BatchCapacity
		engine, err := core.NewEngine(ecfg)
		if err != nil {
			return nil, err
		}
		mem, err := dram.NewSystem(mcfg)
		if err != nil {
			return nil, err
		}
		sys.shards = append(sys.shards, shard{
			engine: engine,
			mem:    mem,
			place:  shardPlacement{shards: cfg.Shards, ranks: cfg.RanksPerShard, bytes: 512},
		})
	}
	return sys, nil
}

// Store exposes the global embedding store (for golden comparisons).
func (s *System) Store() *embedding.Store { return s.store }

// TotalRanks reports the deployment's memory width.
func (s *System) TotalRanks() int { return s.cfg.Shards * s.cfg.RanksPerShard }

// Lookup shards each query's indices, runs every shard's sub-batch through
// its own tree in parallel, and combines the per-shard partials at the host.
func (s *System) Lookup(b embedding.Batch) (*Result, error) {
	if b.Op != tensor.OpSum {
		return nil, fmt.Errorf("scale: sharded combine supports sum pooling, got %v", b.Op)
	}
	res := &Result{Outputs: make([]tensor.Vector, len(b.Queries))}

	// Build each shard's sub-batch; remember which queries touch it.
	type subref struct{ query int }
	subBatches := make([]embedding.Batch, s.cfg.Shards)
	refs := make([][]subref, s.cfg.Shards)
	for qi, q := range b.Queries {
		perShard := make(map[int][]header.Index)
		for _, idx := range q.Indices {
			sh := int(uint64(idx) % uint64(s.cfg.Shards))
			perShard[sh] = append(perShard[sh], idx)
		}
		for sh, indices := range perShard {
			subBatches[sh].Queries = append(subBatches[sh].Queries,
				embedding.Query{Indices: header.NewIndexSet(indices...)})
			refs[sh] = append(refs[sh], subref{query: qi})
		}
	}

	partialsPerQuery := make([]int, len(b.Queries))
	for sh := range subBatches {
		if len(subBatches[sh].Queries) == 0 {
			continue
		}
		subBatches[sh].Op = tensor.OpSum
		shardRes, err := s.shards[sh].engine.TimedLookup(
			s.store, s.shards[sh].place, s.shards[sh].mem, subBatches[sh], true)
		if err != nil {
			return nil, fmt.Errorf("scale: shard %d: %w", sh, err)
		}
		res.ShardCycles = sim.Max(res.ShardCycles, shardRes.TotalCycles)
		res.MemoryReads += shardRes.MemoryReads
		for i, out := range shardRes.Outputs {
			qi := refs[sh][i].query
			if res.Outputs[qi] == nil {
				res.Outputs[qi] = out.Clone()
			} else if err := res.Outputs[qi].AddInPlace(out); err != nil {
				return nil, err
			}
			partialsPerQuery[qi]++
			res.Partials++
		}
	}

	// Host combine: one vector handled per partial beyond the first of each
	// query, plus channel transfer of every partial.
	combines := 0
	for _, n := range partialsPerQuery {
		if n > 1 {
			combines += n - 1
		}
	}
	res.CombineCycles = s.host.HandleVectors(combines)
	xfer := s.cfg.Host.DRAMToHost(s.mcfg.TransferCycles(res.Partials * 512))
	res.TotalCycles = res.ShardCycles + res.CombineCycles + xfer
	return res, nil
}
