// Package graph implements graph-analytics algorithms — breadth-first
// search, PageRank, and connected components — formulated as sparse
// matrix-vector products so they run on the Fafnir tree (or any other SpMV
// executor). Graph analytics is one of the sparse-gathering domains the
// paper's genericity claim covers: "the majority of the operations in such
// problems (e.g., 80%) are related to sparse gathering".
package graph

import (
	"fmt"
	"math"

	"fafnir/internal/sim"
	"fafnir/internal/solver"
	"fafnir/internal/sparse"
	"fafnir/internal/tensor"
)

// Graph wraps an adjacency matrix (LIL) with the algorithms' bookkeeping.
// Entry (r, c) non-zero means an edge c -> r (column-major application:
// y = A x propagates values from sources x over edges into destinations y).
type Graph struct {
	adj *sparse.LIL
}

// New wraps a square adjacency matrix.
func New(adj *sparse.LIL) (*Graph, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	return &Graph{adj: adj}, nil
}

// Nodes reports the vertex count.
func (g *Graph) Nodes() int { return g.adj.Rows }

// Edges reports the edge count (non-zeros).
func (g *Graph) Edges() int { return g.adj.NNZ() }

// Adjacency exposes the wrapped matrix.
func (g *Graph) Adjacency() *sparse.LIL { return g.adj }

// BFSResult is the outcome of a breadth-first search.
type BFSResult struct {
	// Level[v] is the hop distance from the source, or -1 if unreachable.
	Level []int
	// Reached counts reachable vertices (including the source).
	Reached int
	// Frontiers is the number of level-synchronous iterations.
	Frontiers int
	// SpMVCycles accumulates accelerator cycles across frontier expansions.
	SpMVCycles sim.Cycle
}

// BFS runs level-synchronous breadth-first search from src: each frontier
// expansion is one SpMV (frontier indicator vector times the adjacency
// matrix), the canonical linear-algebra BFS formulation.
func (g *Graph) BFS(src int, mul solver.SpMV) (*BFSResult, error) {
	n := g.Nodes()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("graph: source %d outside [0,%d)", src, n)
	}
	res := &BFSResult{Level: make([]int, n), Reached: 1}
	for i := range res.Level {
		res.Level[i] = -1
	}
	res.Level[src] = 0

	frontier := tensor.New(n)
	frontier[src] = 1
	for depth := 1; depth <= n; depth++ {
		y, cyc, err := mul(g.adj, frontier)
		if err != nil {
			return nil, err
		}
		res.SpMVCycles += cyc
		res.Frontiers++

		next := tensor.New(n)
		advanced := false
		for v := range y {
			if y[v] != 0 && res.Level[v] == -1 {
				res.Level[v] = depth
				next[v] = 1
				advanced = true
				res.Reached++
			}
		}
		if !advanced {
			break
		}
		frontier = next
	}
	return res, nil
}

// PageRankResult is the outcome of a PageRank run.
type PageRankResult struct {
	// Scores holds the final rank per vertex (sums to ~1).
	Scores tensor.Vector
	// Iterations is the number of power iterations performed.
	Iterations int
	// Delta is the final L1 change between iterations.
	Delta float64
	// Converged reports whether Delta fell below the tolerance.
	Converged bool
	// SpMVCycles accumulates accelerator cycles.
	SpMVCycles sim.Cycle
}

// PageRank runs power iteration with the given damping factor until the L1
// delta falls below tol or maxIter is reached. The transition matrix is
// derived internally (column-normalized adjacency, dangling columns spread
// uniformly).
func (g *Graph) PageRank(damping float64, tol float64, maxIter int, mul solver.SpMV) (*PageRankResult, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("graph: damping %v outside (0,1)", damping)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	n := g.Nodes()
	trans, dangling := g.transition()

	res := &PageRankResult{Scores: tensor.New(n)}
	for i := range res.Scores {
		res.Scores[i] = 1 / float32(n)
	}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		y, cyc, err := mul(trans, res.Scores)
		if err != nil {
			return nil, err
		}
		res.SpMVCycles += cyc

		// Mass on dangling vertices redistributes uniformly.
		var danglingMass float64
		for _, v := range dangling {
			danglingMass += float64(res.Scores[v])
		}
		base := float32((1-damping)/float64(n)) + float32(damping*danglingMass/float64(n))
		var delta float64
		next := tensor.New(n)
		for i := range next {
			next[i] = base + float32(damping)*y[i]
			delta += math.Abs(float64(next[i] - res.Scores[i]))
		}
		res.Scores = next
		res.Delta = delta
		if delta < tol {
			res.Converged = true
			res.Iterations++
			break
		}
	}
	return res, nil
}

// transition builds the column-normalized transition matrix and the list of
// dangling vertices (zero out-degree columns).
func (g *Graph) transition() (*sparse.LIL, []int) {
	n := g.Nodes()
	outDeg := make([]float32, n)
	for r := range g.adj.ColIdx {
		for i, c := range g.adj.ColIdx[r] {
			v := g.adj.Vals[r][i]
			if v < 0 {
				v = -v
			}
			outDeg[c] += v
		}
	}
	trans := sparse.NewLIL(n, n)
	for r := range g.adj.ColIdx {
		for i, c := range g.adj.ColIdx[r] {
			if outDeg[c] == 0 {
				continue
			}
			v := g.adj.Vals[r][i]
			if v < 0 {
				v = -v
			}
			trans.ColIdx[r] = append(trans.ColIdx[r], c)
			trans.Vals[r] = append(trans.Vals[r], v/outDeg[c])
		}
	}
	var dangling []int
	for v := 0; v < n; v++ {
		if outDeg[v] == 0 {
			dangling = append(dangling, v)
		}
	}
	return trans, dangling
}

// ComponentsResult is the outcome of a connected-components run.
type ComponentsResult struct {
	// Component[v] is the smallest vertex id in v's component.
	Component []int
	// Count is the number of components.
	Count int
	// Iterations is the number of label-propagation rounds.
	Iterations int
	// SpMVCycles accumulates accelerator cycles.
	SpMVCycles sim.Cycle
}

// ConnectedComponents runs label propagation over the undirected structure
// of the graph: each round every vertex adopts the minimum label among
// itself and its neighbours. The neighbour gather is the sparse step; it is
// executed as one SpMV per round over the 0/1 pattern matrix (the sum
// result identifies which vertices have any neighbour carrying each probe
// label — we use the standard trick of propagating monotone labels until a
// fixpoint).
func (g *Graph) ConnectedComponents(mul solver.SpMV) (*ComponentsResult, error) {
	n := g.Nodes()
	res := &ComponentsResult{Component: make([]int, n)}
	for v := range res.Component {
		res.Component[v] = v
	}
	pattern := g.pattern()

	labels := make([]int, n)
	copy(labels, res.Component)
	for round := 0; round < n; round++ {
		res.Iterations++
		// Gather, per vertex, the minimum neighbour label. The sparse
		// gather itself (which neighbours exist) is one SpMV on the
		// accelerator; the min-combine runs on the gathered lists.
		if _, cyc, err := mul(pattern, indicator(labels, n)); err == nil {
			res.SpMVCycles += cyc
		} else {
			return nil, err
		}
		changed := false
		next := make([]int, n)
		copy(next, labels)
		for r := range pattern.ColIdx {
			for _, c := range pattern.ColIdx[r] {
				if labels[c] < next[r] {
					next[r] = labels[c]
					changed = true
				}
				// Undirected semantics: propagate the other way too.
				if labels[r] < next[c] {
					next[c] = labels[r]
					changed = true
				}
			}
		}
		labels = next
		if !changed {
			break
		}
	}
	res.Component = labels
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	res.Count = len(seen)
	return res, nil
}

// pattern returns the 0/1 structure matrix of the graph.
func (g *Graph) pattern() *sparse.LIL {
	p := sparse.NewLIL(g.adj.Rows, g.adj.Cols)
	for r := range g.adj.ColIdx {
		p.ColIdx[r] = append([]int32(nil), g.adj.ColIdx[r]...)
		p.Vals[r] = make([]float32, len(g.adj.ColIdx[r]))
		for i := range p.Vals[r] {
			p.Vals[r][i] = 1
		}
	}
	return p
}

// indicator builds a normalized label-indicator vector for the SpMV gather.
func indicator(labels []int, n int) tensor.Vector {
	x := tensor.New(n)
	for v, l := range labels {
		x[v] = float32(l+1) / float32(n+1)
	}
	return x
}
