package graph

import (
	"math"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/sim"
	"fafnir/internal/solver"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/tensor"
)

// chain builds a directed path 0 -> 1 -> ... -> n-1 (edge (r=c+1, c)).
func chain(n int) *sparse.LIL {
	coo := &sparse.COO{Rows: n, Cols: n}
	for v := 0; v+1 < n; v++ {
		coo.Entries = append(coo.Entries, sparse.Coord{Row: v + 1, Col: v, Val: 1})
	}
	l, err := sparse.FromCOO(coo)
	if err != nil {
		panic(err)
	}
	return l
}

// undirectedPair builds two disjoint undirected edges: 0-1 and 2-3.
func undirectedPair() *sparse.LIL {
	coo := &sparse.COO{Rows: 4, Cols: 4, Entries: []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	}}
	l, err := sparse.FromCOO(coo)
	if err != nil {
		panic(err)
	}
	return l
}

func fafnirSpMV(t *testing.T) solver.SpMV {
	t.Helper()
	cfg := spmv.Default()
	cfg.Tree.NumRanks = 8
	cfg.VectorSize = 1024
	eng, err := spmv.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := eng.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}
}

func TestNewRejectsRectangular(t *testing.T) {
	if _, err := New(sparse.RandomUniform(3, 4, 0.5, 1)); err == nil {
		t.Fatal("rectangular adjacency accepted")
	}
}

func TestBFSChain(t *testing.T) {
	g, err := New(chain(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.BFS(0, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if res.Level[v] != v {
			t.Fatalf("level[%d] = %d, want %d", v, res.Level[v], v)
		}
	}
	if res.Reached != 6 {
		t.Fatalf("reached %d", res.Reached)
	}
	// From the middle, earlier vertices are unreachable (directed chain).
	res2, err := g.BFS(3, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Level[0] != -1 || res2.Level[5] != 2 {
		t.Fatalf("levels from 3: %v", res2.Level)
	}
}

func TestBFSOnFafnir(t *testing.T) {
	adj := sparse.PowerLawGraph(256, 4, 5)
	g, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.BFS(0, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := g.BFS(0, fafnirSpMV(t))
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Level {
		if ref.Level[v] != acc.Level[v] {
			t.Fatalf("vertex %d: reference level %d vs accelerator %d", v, ref.Level[v], acc.Level[v])
		}
	}
	if acc.SpMVCycles == 0 {
		t.Fatal("no accelerator cycles recorded")
	}
}

func TestBFSBadSource(t *testing.T) {
	g, err := New(chain(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BFS(-1, solver.Reference()); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := g.BFS(4, solver.Reference()); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// A directed cycle: perfectly symmetric, so PageRank is uniform.
	n := 8
	coo := &sparse.COO{Rows: n, Cols: n}
	for v := 0; v < n; v++ {
		coo.Entries = append(coo.Entries, sparse.Coord{Row: (v + 1) % n, Col: v, Val: 1})
	}
	adj, err := sparse.FromCOO(coo)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.PageRank(0.85, 1e-6, 200, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: delta %v", res.Delta)
	}
	for v, s := range res.Scores {
		if math.Abs(float64(s)-1.0/float64(n)) > 1e-3 {
			t.Fatalf("score[%d] = %v, want uniform %v", v, s, 1.0/float64(n))
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	adj := sparse.PowerLawGraph(128, 3, 7)
	g, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.PageRank(0.85, 1e-5, 300, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Scores {
		sum += float64(s)
	}
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("rank mass %v, want ~1", sum)
	}
	// Hubs outrank leaves in a power-law graph.
	maxScore := 0.0
	for _, s := range res.Scores {
		if float64(s) > maxScore {
			maxScore = float64(s)
		}
	}
	if maxScore < 3.0/128 {
		t.Fatalf("max score %v too flat for a power-law graph", maxScore)
	}
}

func TestPageRankOnFafnirMatchesReference(t *testing.T) {
	adj := sparse.PowerLawGraph(128, 3, 9)
	g, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := g.PageRank(0.85, 1e-5, 200, solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := g.PageRank(0.85, 1e-5, 200, fafnirSpMV(t))
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Scores {
		if math.Abs(float64(ref.Scores[v]-acc.Scores[v])) > 1e-4 {
			t.Fatalf("vertex %d: %v vs %v", v, ref.Scores[v], acc.Scores[v])
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	g, err := New(chain(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PageRank(0, 1e-5, 10, solver.Reference()); err == nil {
		t.Fatal("damping 0 accepted")
	}
	if _, err := g.PageRank(1, 1e-5, 10, solver.Reference()); err == nil {
		t.Fatal("damping 1 accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := New(undirectedPair())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.ConnectedComponents(solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Fatalf("components = %d, want 2", res.Count)
	}
	if res.Component[0] != res.Component[1] || res.Component[2] != res.Component[3] {
		t.Fatalf("labels %v", res.Component)
	}
	if res.Component[0] == res.Component[2] {
		t.Fatalf("disjoint components share a label: %v", res.Component)
	}
}

func TestConnectedComponentsSingle(t *testing.T) {
	adj := sparse.PowerLawGraph(64, 3, 3) // preferential attachment: connected
	g, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.ConnectedComponents(solver.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Fatalf("components = %d, want 1", res.Count)
	}
}

func TestGraphAccessors(t *testing.T) {
	g, err := New(chain(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 5 || g.Edges() != 4 {
		t.Fatalf("nodes=%d edges=%d", g.Nodes(), g.Edges())
	}
	if g.Adjacency() == nil {
		t.Fatal("nil adjacency")
	}
}
