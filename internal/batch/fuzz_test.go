package batch

import (
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// decodeBatch turns a fuzzer byte stream into a batch: the first byte picks
// the query count (1..8), then each query takes one size byte (1..8 indices)
// followed by that many index bytes. Truncated input yields shorter queries,
// which is fine — the property must hold for ragged batches too. Index bytes
// repeat freely, so the fuzzer naturally produces the duplicate-heavy batches
// deduplication exists for; NewIndexSet canonicalizes each query the way
// every real caller does.
func decodeBatch(data []byte) embedding.Batch {
	b := embedding.Batch{Op: tensor.OpSum}
	if len(data) == 0 {
		return b
	}
	n := int(data[0])%8 + 1
	data = data[1:]
	for qi := 0; qi < n && len(data) > 0; qi++ {
		size := int(data[0])%8 + 1
		data = data[1:]
		var indices []header.Index
		for ; size > 0 && len(data) > 0; size-- {
			indices = append(indices, header.Index(data[0]))
			data = data[1:]
		}
		b.Queries = append(b.Queries, embedding.Query{Indices: header.NewIndexSet(indices...)})
	}
	return b
}

// FuzzBatchBuild feeds random index streams to Build and checks the compiler
// contract for both dedup modes: never panic, the plan validates, the access
// list preserves the batch's multiset of indices (exactly the unique set once
// each under dedup, exactly every incidence without), and the dedup plan
// never issues more reads than the naive one. Run with
//
//	go test -fuzz=FuzzBatchBuild ./internal/batch
//
// The seed corpus covers an empty stream, a single query, overlapping
// queries, identical queries, and one maximal stream.
func FuzzBatchBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 7, 7})
	f.Add([]byte{1, 3, 1, 2, 3, 3, 2, 3, 4})
	f.Add([]byte{2, 2, 5, 6, 2, 5, 6, 2, 5, 6})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		b := decodeBatch(data)
		for _, dedup := range []bool{true, false} {
			p := Build(b, dedup)
			if err := p.Validate(); err != nil {
				t.Fatalf("dedup=%v: invalid plan for %v: %v", dedup, b.Queries, err)
			}
			if p.NumAccesses() > b.TotalAccesses() {
				t.Fatalf("dedup=%v: %d accesses exceed the batch's %d incidences",
					dedup, p.NumAccesses(), b.TotalAccesses())
			}

			want := make(map[header.Index]int)
			for _, q := range b.Queries {
				for _, idx := range q.Indices {
					if dedup {
						want[idx] = 1
					} else {
						want[idx]++
					}
				}
			}
			got := make(map[header.Index]int)
			for _, a := range p.Accesses {
				got[a.Index]++
			}
			if len(got) != len(want) {
				t.Fatalf("dedup=%v: plan touches %d indices, batch has %d", dedup, len(got), len(want))
			}
			for idx, n := range want {
				if got[idx] != n {
					t.Fatalf("dedup=%v: index %d read %d times, want %d", dedup, idx, got[idx], n)
				}
			}
		}
		if Build(b, true).NumAccesses() > Build(b, false).NumAccesses() {
			t.Fatalf("dedup plan reads more than naive plan for %v", b.Queries)
		}
	})
}
