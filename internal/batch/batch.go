// Package batch implements the host-side batch rearrangement of Section IV-C:
// a batch of queries is turned into a list of memory accesses — one per
// *unique* index when deduplication is on — each tagged with the header the
// Fafnir tree needs (the remaining-index set of every query that uses the
// index). This is the mechanism that replaces RecNMP's caches: each unique
// index is read from DRAM once and reused through the tree as many times as
// the batch requires.
package batch

import (
	"fmt"
	"slices"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
)

// Access is one memory access the host compiles for the NDP root: the index
// to read and, for every query that consumes it, the set of that query's
// indices not yet visited (the query minus this index). Remaining is what the
// leaf PE stamps into the value's header Queries field.
type Access struct {
	Index     header.Index
	Remaining []header.IndexSet
}

// Plan is the compiled form of a batch.
type Plan struct {
	// Accesses lists the memory reads in ascending index order (and, without
	// dedup, in query order for equal indices).
	Accesses []Access
	// Dedup records whether duplicate indices across queries were coalesced.
	Dedup bool

	batch      embedding.Batch
	queryByKey map[string][]int
}

// pair is one (query, index) membership during compilation: the index and
// the owning query's remaining set (the query minus the index).
type pair struct {
	idx header.Index
	rem header.IndexSet
}

// Build compiles a batch. With dedup true, every distinct index produces one
// access whose Remaining carries one set per using query; with dedup false
// (the paper's "neither eliminates redundant accesses" ablation of Fig. 13),
// every (query, index) pair produces its own access.
//
// Compilation is sort-based: the (index, remaining-set) pairs are collected
// in query order with every remaining set carved out of one backing array,
// stably sorted by index, and grouped — the same plan the per-index map of
// earlier versions produced, without an allocation per pair. Build runs once
// per hardware batch on the timed path, so its constant factors matter.
func Build(b embedding.Batch, dedup bool) *Plan {
	p := &Plan{Dedup: dedup, batch: b, queryByKey: make(map[string][]int, len(b.Queries))}
	total := b.TotalAccesses()
	remLen := 0
	for qi, q := range b.Queries {
		p.queryByKey[q.Indices.Key()] = append(p.queryByKey[q.Indices.Key()], qi)
		remLen += q.Indices.Len() * (q.Indices.Len() - 1)
	}

	backing := make(header.IndexSet, 0, remLen)
	pairs := make([]pair, 0, total)
	for _, q := range b.Queries {
		for _, idx := range q.Indices {
			start := len(backing)
			for _, x := range q.Indices {
				if x != idx {
					backing = append(backing, x)
				}
			}
			var rem header.IndexSet
			if len(backing) > start {
				rem = backing[start:len(backing):len(backing)]
			}
			pairs = append(pairs, pair{idx: idx, rem: rem})
		}
	}
	// Sort a position permutation with a position tiebreak: same order as a
	// stable sort of the pairs, without moving the pair structs.
	ord := make([]int32, len(pairs))
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(a, b int32) int {
		pa, pb := pairs[a].idx, pairs[b].idx
		switch {
		case pa < pb:
			return -1
		case pa > pb:
			return 1
		}
		return int(a) - int(b)
	})
	sets := make([]header.IndexSet, len(pairs))
	for i, o := range ord {
		sets[i] = pairs[o].rem
	}

	if dedup {
		p.Accesses = make([]Access, 0, len(pairs))
		for i := 0; i < len(ord); {
			idx := pairs[ord[i]].idx
			j := i + 1
			for j < len(ord) && pairs[ord[j]].idx == idx {
				j++
			}
			p.Accesses = append(p.Accesses, Access{Index: idx, Remaining: dedupSets(sets[i:j:j])})
			i = j
		}
		return p
	}

	p.Accesses = make([]Access, len(ord))
	for i, o := range ord {
		p.Accesses[i] = Access{Index: pairs[o].idx, Remaining: sets[i : i+1 : i+1]}
	}
	return p
}

// dedupSets removes duplicate remaining-sets (two identical queries need the
// value the same way; one header entry serves both — QueriesFor maps the
// completed output back to every matching query position).
func dedupSets(sets []header.IndexSet) []header.IndexSet {
	slices.SortFunc(sets, header.IndexSet.Compare)
	out := sets[:0]
	for i, s := range sets {
		if i == 0 || !s.Equal(out[len(out)-1]) {
			out = append(out, s)
		}
	}
	return out
}

// Batch returns the batch the plan was compiled from.
func (p *Plan) Batch() embedding.Batch { return p.batch }

// NumAccesses reports how many memory reads the plan issues.
func (p *Plan) NumAccesses() int { return len(p.Accesses) }

// TotalAccesses reports the reads a naive (non-dedup) execution would issue.
func (p *Plan) TotalAccesses() int { return p.batch.TotalAccesses() }

// Savings reports the fraction of memory accesses eliminated by
// deduplication (Fig. 15: 34 %, 43 %, 58 % for batches of 8, 16, 32).
func (p *Plan) Savings() float64 {
	total := p.TotalAccesses()
	if total == 0 {
		return 0
	}
	return 1 - float64(len(p.Accesses))/float64(total)
}

// QueriesFor maps a completed root output — identified by its full indices
// set — back to the positions of the batch queries it answers.
func (p *Plan) QueriesFor(indices header.IndexSet) []int {
	return p.queryByKey[indices.Key()]
}

// LeafHeader builds the header a leaf PE attaches to the value read by
// access a.
func (a Access) LeafHeader() header.Header {
	return header.NewLeaf(a.Index, a.Remaining)
}

// Validate checks the plan's internal consistency: every query of the batch
// must be fully covered by the accesses, and no access may reference an
// index outside the batch. Engines call this in tests and debug builds.
func (p *Plan) Validate() error {
	needed := make(map[header.Index]bool)
	for _, q := range p.batch.Queries {
		for _, idx := range q.Indices {
			needed[idx] = true
		}
	}
	got := make(map[header.Index]int)
	for _, a := range p.Accesses {
		if !needed[a.Index] {
			return fmt.Errorf("batch: access to index %d not used by any query", a.Index)
		}
		got[a.Index]++
	}
	for idx := range needed {
		if got[idx] == 0 {
			return fmt.Errorf("batch: index %d needed but never accessed", idx)
		}
	}
	if p.Dedup {
		for idx, n := range got {
			if n != 1 {
				return fmt.Errorf("batch: dedup plan reads index %d %d times", idx, n)
			}
		}
	}
	// Every remaining-set must be the owning query minus the access index.
	for _, a := range p.Accesses {
		for _, rem := range a.Remaining {
			full := rem.Union(header.NewIndexSet(a.Index))
			if len(p.queryByKey[full.Key()]) == 0 {
				return fmt.Errorf("batch: access %d carries remaining set %v matching no query", a.Index, rem)
			}
		}
	}
	return nil
}
