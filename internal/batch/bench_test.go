package batch

import (
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/tensor"
)

func BenchmarkBuildDedup(b *testing.B) {
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 32, QuerySize: 16, Rows: 1 << 20, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	bt := gen.Batch(tensor.OpSum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bt, true)
	}
}
