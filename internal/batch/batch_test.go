package batch

import (
	"math/rand"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// fig6Batch reproduces the batch of Fig. 6: four queries (a, b, c, d) over
// eight tables, with indices written as (row digit)(table digit), e.g. 50 is
// row 5 of table 0.
func fig6Batch() embedding.Batch {
	return embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(11, 44, 32, 83, 77)}, // a
			{Indices: header.NewIndexSet(50, 32, 83, 26)},     // b
			{Indices: header.NewIndexSet(50, 44, 11, 94, 26)}, // c
			{Indices: header.NewIndexSet(83, 77)},             // d
		},
		Op: tensor.OpSum,
	}
}

func TestBuildDedupFig6(t *testing.T) {
	// The paper: "instead of a total of 14 memory accesses, we access seven
	// unique ones: 50, 11, 32, 83, 94, 26, 77" — plus 44, which the text
	// omits but Fig. 6b lists. Counting the example queries gives 16
	// accesses over 8 unique indices.
	p := Build(fig6Batch(), true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumAccesses(); got != 8 {
		t.Fatalf("unique accesses = %d, want 8", got)
	}
	if got := p.TotalAccesses(); got != 16 {
		t.Fatalf("total accesses = %d, want 16", got)
	}
	if p.Savings() != 0.5 {
		t.Fatalf("savings = %v", p.Savings())
	}
}

func TestBuildDedupHeadersFig6(t *testing.T) {
	// Check index 11's access against the worked example: queries a and c
	// use it, so its header lists a\{11} = {44,32,83,77} and
	// c\{11} = {50,44,94,26}.
	p := Build(fig6Batch(), true)
	var acc *Access
	for i := range p.Accesses {
		if p.Accesses[i].Index == 11 {
			acc = &p.Accesses[i]
		}
	}
	if acc == nil {
		t.Fatal("no access for index 11")
	}
	if len(acc.Remaining) != 2 {
		t.Fatalf("index 11 remaining sets = %v", acc.Remaining)
	}
	wantA := header.NewIndexSet(44, 32, 83, 77)
	wantC := header.NewIndexSet(50, 44, 94, 26)
	if !(acc.Remaining[0].Equal(wantA) || acc.Remaining[1].Equal(wantA)) {
		t.Fatalf("missing remaining set for query a: %v", acc.Remaining)
	}
	if !(acc.Remaining[0].Equal(wantC) || acc.Remaining[1].Equal(wantC)) {
		t.Fatalf("missing remaining set for query c: %v", acc.Remaining)
	}
	h := acc.LeafHeader()
	if !h.Indices.Equal(header.NewIndexSet(11)) {
		t.Fatalf("leaf header indices %v", h.Indices)
	}
}

func TestBuildNoDedup(t *testing.T) {
	p := Build(fig6Batch(), false)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumAccesses(); got != 16 {
		t.Fatalf("no-dedup accesses = %d, want 16", got)
	}
	if p.Savings() != 0 {
		t.Fatalf("no-dedup savings = %v", p.Savings())
	}
	// Each access carries exactly one remaining set.
	for _, a := range p.Accesses {
		if len(a.Remaining) != 1 {
			t.Fatalf("access %d has %d remaining sets", a.Index, len(a.Remaining))
		}
	}
}

func TestQueriesFor(t *testing.T) {
	b := fig6Batch()
	p := Build(b, true)
	for qi, q := range b.Queries {
		got := p.QueriesFor(q.Indices)
		found := false
		for _, g := range got {
			if g == qi {
				found = true
			}
		}
		if !found {
			t.Fatalf("QueriesFor(%v) = %v, missing %d", q.Indices, got, qi)
		}
	}
	if got := p.QueriesFor(header.NewIndexSet(1, 2, 3)); got != nil {
		t.Fatalf("unknown index set matched queries %v", got)
	}
}

func TestIdenticalQueriesShareOneHeader(t *testing.T) {
	b := embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(1, 2)},
			{Indices: header.NewIndexSet(1, 2)},
		},
		Op: tensor.OpSum,
	}
	p := Build(b, true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumAccesses() != 2 {
		t.Fatalf("accesses = %d", p.NumAccesses())
	}
	for _, a := range p.Accesses {
		if len(a.Remaining) != 1 {
			t.Fatalf("duplicate queries produced duplicate remaining sets: %v", a.Remaining)
		}
	}
	// Both query positions must resolve from the shared output.
	qs := p.QueriesFor(header.NewIndexSet(1, 2))
	if len(qs) != 2 {
		t.Fatalf("QueriesFor = %v, want both positions", qs)
	}
}

func TestSingleIndexQueryPlan(t *testing.T) {
	b := embedding.Batch{
		Queries: []embedding.Query{{Indices: header.NewIndexSet(5)}},
		Op:      tensor.OpSum,
	}
	p := Build(b, true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Accesses) != 1 {
		t.Fatalf("accesses = %d", len(p.Accesses))
	}
	h := p.Accesses[0].LeafHeader()
	if !h.Complete() {
		t.Fatalf("single-index leaf header not complete: %v", h)
	}
}

func TestAccessesSorted(t *testing.T) {
	p := Build(fig6Batch(), true)
	for i := 1; i < len(p.Accesses); i++ {
		if p.Accesses[i-1].Index >= p.Accesses[i].Index {
			t.Fatalf("accesses not strictly sorted at %d", i)
		}
	}
}

// Property test: for random batches, dedup plans validate, read each unique
// index exactly once, and never save a negative fraction; no-dedup plans read
// exactly TotalAccesses times.
func TestRandomBatchPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		b := embedding.Batch{Op: tensor.OpSum}
		for i := 0; i < n; i++ {
			q := 1 + rng.Intn(6)
			idx := make([]header.Index, q)
			for j := range idx {
				idx[j] = header.Index(rng.Intn(24))
			}
			b.Queries = append(b.Queries, embedding.Query{Indices: header.NewIndexSet(idx...)})
		}
		pd := Build(b, true)
		if err := pd.Validate(); err != nil {
			t.Fatalf("trial %d dedup: %v", trial, err)
		}
		if pd.NumAccesses() != b.UniqueIndices().Len() {
			t.Fatalf("trial %d: %d accesses for %d unique indices", trial, pd.NumAccesses(), b.UniqueIndices().Len())
		}
		if pd.Savings() < 0 || pd.Savings() >= 1 {
			t.Fatalf("trial %d: savings %v out of range", trial, pd.Savings())
		}
		pn := Build(b, false)
		if err := pn.Validate(); err != nil {
			t.Fatalf("trial %d no-dedup: %v", trial, err)
		}
		if pn.NumAccesses() != b.TotalAccesses() {
			t.Fatalf("trial %d: no-dedup accesses %d != total %d", trial, pn.NumAccesses(), b.TotalAccesses())
		}
	}
}
