// Package twostep models the Two-Step algorithm (the state-of-the-art NDP
// SpMV accelerator the FAFNIR paper compares against in Fig. 14). Two-Step
// converts random memory accesses into regular streams and optimizes the
// merge phase with a binary-tree-based multi-way merge core:
//
//   - its first step (the multiply) relies on decompression mechanisms and a
//     chain of adders, so it processes streamed elements more slowly than
//     Fafnir, which applies SpMV on data as it streams;
//   - its merge steps run on the dedicated parallel merge core and are
//     faster than Fafnir's general reduction tree.
//
// The model shares the DRAM streaming substrate with the Fafnir SpMV engine
// so the comparison isolates exactly these two compute-throughput
// differences, which is the paper's own explanation of Fig. 14.
package twostep

import (
	"fmt"
	"sort"

	"fafnir/internal/dram"
	"fafnir/internal/sim"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/tensor"
)

// Config parameterizes the Two-Step model.
type Config struct {
	// Ranks is the number of memory ranks streamed in parallel.
	Ranks int
	// VectorSize is the column-chunk width (the same splitting as Fafnir's;
	// the paper notes "similar splitting is also used in the state-of-the-
	// art NDP approach").
	VectorSize int
	// Step1ElemsPerCycle is the aggregate multiply-step throughput. The
	// decompression mechanisms and the chain of adders hold it well below
	// the memory line rate — the reason Fafnir wins iteration 0.
	Step1ElemsPerCycle float64
	// MergeElemsPerCycle is the aggregate throughput of the optimized
	// binary-tree multi-way merge core — higher than Fafnir's general
	// reduction tree, the reason Two-Step wins iterations > 0.
	MergeElemsPerCycle float64
	// PipelineFill is the fixed per-round pipeline latency.
	PipelineFill sim.Cycle
	// ClockMHz is the accelerator clock.
	ClockMHz float64
	// DRAMClockMHz converts memory completions into accelerator cycles.
	DRAMClockMHz float64
}

// Default returns the calibration used in the Fig. 14 reproduction: the
// same geometry and clock as Fafnir, a 3x slower multiply step
// (decompression + adder chain) and a 3x faster merge core.
func Default() Config {
	return Config{
		Ranks:              32,
		VectorSize:         2048,
		Step1ElemsPerCycle: 64,
		MergeElemsPerCycle: 96,
		PipelineFill:       140,
		ClockMHz:           200,
		DRAMClockMHz:       1200,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Ranks <= 0:
		return fmt.Errorf("twostep: Ranks must be positive, got %d", c.Ranks)
	case c.VectorSize <= 0:
		return fmt.Errorf("twostep: VectorSize must be positive, got %d", c.VectorSize)
	case c.Step1ElemsPerCycle <= 0:
		return fmt.Errorf("twostep: Step1ElemsPerCycle must be positive, got %v", c.Step1ElemsPerCycle)
	case c.MergeElemsPerCycle <= 0:
		return fmt.Errorf("twostep: MergeElemsPerCycle must be positive, got %v", c.MergeElemsPerCycle)
	case c.ClockMHz <= 0:
		return fmt.Errorf("twostep: ClockMHz must be positive, got %v", c.ClockMHz)
	case c.DRAMClockMHz <= 0:
		return fmt.Errorf("twostep: DRAMClockMHz must be positive, got %v", c.DRAMClockMHz)
	}
	return nil
}

// Result is the outcome of one Two-Step SpMV run.
type Result struct {
	// Y is the product vector.
	Y tensor.Vector
	// Step1Cycles and MergeCycles split the runtime by phase.
	Step1Cycles, MergeCycles sim.Cycle
	// TotalCycles is the end-to-end runtime.
	TotalCycles sim.Cycle
	// ElementsStreamed counts streamed matrix/partial elements.
	ElementsStreamed int
	// BytesStreamed is the corresponding traffic.
	BytesStreamed uint64
}

// Engine is the Two-Step timing model.
type Engine struct {
	cfg Config
}

// NewEngine builds the engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) toPE(d sim.Cycle) sim.Cycle {
	ratio := e.cfg.DRAMClockMHz / e.cfg.ClockMHz
	return sim.Cycle((float64(d) + ratio - 1) / ratio)
}

// roundTime charges one round of elems streamed elements at elemsPerCycle,
// chaining the accelerator's compute occupancy across rounds like the
// Fafnir SpMV engine does.
func (e *Engine) roundTime(mem *dram.System, memClock, peDone sim.Cycle, elems int, elemsPerCycle float64) (sim.Cycle, sim.Cycle, error) {
	if elems == 0 {
		return memClock, peDone, nil
	}
	perRank := (elems + e.cfg.Ranks - 1) / e.cfg.Ranks
	var memDone sim.Cycle
	for r := 0; r < e.cfg.Ranks; r++ {
		done, err := mem.StreamRead(memClock, r, 0, perRank*8, dram.DestLocal)
		if err != nil {
			return 0, 0, err
		}
		memDone = sim.Max(memDone, done)
	}
	compute := sim.Cycle(float64(elems)/elemsPerCycle + 1)
	end := sim.Max(e.toPE(memDone), peDone+compute)
	return memDone, end, nil
}

// writeBack spills a round's partial stream when a later merge iteration
// will re-read it (same policy as the Fafnir SpMV engine, so the comparison
// stays fair).
func (e *Engine) writeBack(mem *dram.System, clock sim.Cycle, s *spmv.PartialStream, needed bool) (sim.Cycle, error) {
	if !needed || s.Len() == 0 {
		return clock, nil
	}
	perRank := (s.Bytes() + e.cfg.Ranks - 1) / e.cfg.Ranks
	done := clock
	for r := 0; r < e.cfg.Ranks; r++ {
		end, err := mem.StreamWrite(clock, r, 0, perRank)
		if err != nil {
			return 0, err
		}
		done = sim.Max(done, end)
	}
	return done, nil
}

// Multiply computes y = m*x with full timing. The schedule mirrors the
// Fafnir plan (same chunk splitting), with Two-Step's own per-phase
// throughputs.
func (e *Engine) Multiply(m *sparse.LIL, x tensor.Vector, mem *dram.System) (*Result, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("twostep: operand of %d elements against %d columns", len(x), m.Cols)
	}
	plan, err := spmv.NewPlan(m.Cols, e.cfg.VectorSize)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	var streams []*spmv.PartialStream
	var clock, peClock sim.Cycle
	for lo := 0; lo < m.Cols; lo += e.cfg.VectorSize {
		hi := lo + e.cfg.VectorSize
		if hi > m.Cols {
			hi = m.Cols
		}
		chunk := m.ColumnChunk(lo, hi)
		partial, err := chunk.MulVec(x[lo:hi])
		if err != nil {
			return nil, err
		}
		stream := densePartial(partial)
		streams = append(streams, stream)
		elems := chunk.NNZ()
		res.ElementsStreamed += elems
		res.BytesStreamed += uint64(elems) * 8
		clock, peClock, err = e.roundTime(mem, clock, peClock, elems, e.cfg.Step1ElemsPerCycle)
		if err != nil {
			return nil, err
		}
		clock, err = e.writeBack(mem, clock, stream, plan.MergeIterations() > 0)
		if err != nil {
			return nil, err
		}
	}
	peClock += e.cfg.PipelineFill
	res.Step1Cycles = peClock

	mergeStart := peClock
	iter := 1
	for len(streams) > 1 {
		if iter >= plan.Iterations() {
			return nil, fmt.Errorf("twostep: merge iteration %d beyond plan %v", iter, plan)
		}
		var next []*spmv.PartialStream
		for lo := 0; lo < len(streams); lo += e.cfg.VectorSize {
			hi := lo + e.cfg.VectorSize
			if hi > len(streams) {
				hi = len(streams)
			}
			group := streams[lo:hi]
			elems := 0
			for _, s := range group {
				elems += s.Len()
			}
			res.ElementsStreamed += elems
			res.BytesStreamed += uint64(elems) * 8
			var err error
			clock, peClock, err = e.roundTime(mem, clock, peClock, elems, e.cfg.MergeElemsPerCycle)
			if err != nil {
				return nil, err
			}
			merged := MergeStreams(group)
			next = append(next, merged)
			clock, err = e.writeBack(mem, clock, merged, iter+1 < plan.Iterations())
			if err != nil {
				return nil, err
			}
		}
		streams = next
		iter++
		peClock += e.cfg.PipelineFill
	}
	res.MergeCycles = peClock - mergeStart
	res.TotalCycles = peClock

	res.Y = tensor.New(m.Rows)
	if len(streams) == 1 {
		final := streams[0]
		for i, r := range final.Rows {
			res.Y[r] = final.Vals[i]
		}
	}
	return res, nil
}

// densePartial converts a dense partial vector into a sparse stream of its
// non-zero rows.
func densePartial(y tensor.Vector) *spmv.PartialStream {
	out := &spmv.PartialStream{}
	for r, v := range y {
		if v != 0 {
			out.Rows = append(out.Rows, int32(r))
			out.Vals = append(out.Vals, v)
		}
	}
	return out
}

// MergeStreams sums partial streams per row index, exposed for the merge
// core's unit tests.
func MergeStreams(streams []*spmv.PartialStream) *spmv.PartialStream {
	acc := make(map[int32]float32)
	var order []int32
	for _, s := range streams {
		for i, r := range s.Rows {
			if _, ok := acc[r]; !ok {
				order = append(order, r)
			}
			acc[r] += s.Vals[i]
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := &spmv.PartialStream{Rows: order, Vals: make([]float32, len(order))}
	for i, r := range order {
		out.Vals[i] = acc[r]
	}
	return out
}
