package twostep

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Ranks = 8
	cfg.VectorSize = 16
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.VectorSize = 0 },

		func(c *Config) { c.Step1ElemsPerCycle = 0 },
		func(c *Config) { c.MergeElemsPerCycle = 0 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.DRAMClockMHz = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMultiplyMatchesReference(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		m := sparse.RandomUniform(40, 100, 0.1, seed)
		x := sparse.DenseVector(100, seed+50)
		want, errr := m.MulVec(x)
		if errr != nil {
			t.Fatal(errr)
		}
		res, errr := e.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if errr != nil {
			t.Fatal(errr)
		}
		if !res.Y.Equal(want) {
			t.Fatalf("seed %d mismatch", seed)
		}
		if res.TotalCycles == 0 || res.ElementsStreamed == 0 {
			t.Fatalf("implausible result %+v", res)
		}
	}
}

func TestMultiplyOperandMismatch(t *testing.T) {
	e, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := sparse.RandomUniform(4, 8, 0.5, 1)
	if _, err := e.Multiply(m, sparse.DenseVector(7, 1), dram.MustSystem(dram.DDR4())); err == nil {
		t.Fatal("operand mismatch accepted")
	}
}

func TestStep1SlowerMergeFasterThanFafnir(t *testing.T) {
	// The crux of Fig. 14: on a single-chunk matrix (no merges) Fafnir must
	// win; the Two-Step merge phase must be cheaper per element.
	ts, err := NewEngine(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	fcfg := spmv.Default()
	fcfg.Tree.NumRanks = 8
	fcfg.VectorSize = 16
	fa, err := spmv.NewEngine(fcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Dense-ish small matrix, one chunk: pure step-1 comparison.
	m := sparse.RandomUniform(256, 16, 0.5, 3)
	x := sparse.DenseVector(16, 4)
	rts, err := ts.Multiply(m, x, dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	rfa, err := fa.Multiply(m, x, dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	if rts.TotalCycles <= rfa.TotalCycles {
		t.Fatalf("single-chunk: Two-Step %d not slower than Fafnir %d", rts.TotalCycles, rfa.TotalCycles)
	}
	if !rts.Y.Equal(rfa.Y) {
		t.Fatal("engines disagree functionally")
	}

	// Merge-dominated: many chunks of a large matrix. Two-Step's merge
	// cycles must be below Fafnir's.
	big := sparse.RandomUniform(512, 2048, 0.05, 5)
	xb := sparse.DenseVector(2048, 6)
	rts2, err := ts.Multiply(big, xb, dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	rfa2, err := fa.Multiply(big, xb, dram.MustSystem(dram.DDR4()))
	if err != nil {
		t.Fatal(err)
	}
	if rts2.MergeCycles >= rfa2.MergeCycles {
		t.Fatalf("merge phase: Two-Step %d not faster than Fafnir %d", rts2.MergeCycles, rfa2.MergeCycles)
	}
}

func TestMergeStreams(t *testing.T) {
	a := &spmv.PartialStream{Rows: []int32{3, 1}, Vals: []float32{3, 1}}
	b := &spmv.PartialStream{Rows: []int32{1, 7}, Vals: []float32{10, 70}}
	m := MergeStreams([]*spmv.PartialStream{a, b})
	if m.Len() != 3 {
		t.Fatalf("merged %v", m)
	}
	if m.Rows[0] != 1 || m.Vals[0] != 11 {
		t.Fatalf("row 1: %v %v", m.Rows, m.Vals)
	}
	if m.Rows[2] != 7 || m.Vals[2] != 70 {
		t.Fatalf("row 7: %v %v", m.Rows, m.Vals)
	}
}
