// Package embedding provides the recommendation-system workload substrate:
// embedding tables with deterministic synthetic contents, queries and
// batches, popularity-skewed query generators, and the golden (reference)
// lookup-and-reduce implementation every engine is validated against.
//
// The paper's workloads are production embedding traces; those are not
// available, so the generators here synthesize the property the evaluation
// depends on — queries in a batch share indices with a tunable skew
// (Fig. 3) — using uniform and Zipfian row-popularity distributions.
package embedding

import (
	"fmt"
	"math/rand"
	"slices"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// Store holds the synthetic contents of all embedding tables. Vector values
// are computed on demand from a seeded hash, so arbitrarily large tables cost
// no memory. Values are small integers, which keeps float32 summation exact
// and lets tests compare reductions bit-for-bit.
type Store struct {
	totalRows uint64
	dim       int
	seed      uint64
}

// NewStore builds a store covering totalRows embedding vectors of dimension
// dim, with contents derived from seed. It returns an error for an empty
// shape.
func NewStore(totalRows uint64, dim int, seed uint64) (*Store, error) {
	if totalRows == 0 || dim <= 0 {
		return nil, fmt.Errorf("embedding: bad store shape rows=%d dim=%d", totalRows, dim)
	}
	return &Store{totalRows: totalRows, dim: dim, seed: seed}, nil
}

// MustStore is NewStore for callers with statically valid shapes (tests,
// examples); it panics on error.
func MustStore(totalRows uint64, dim int, seed uint64) *Store {
	s, err := NewStore(totalRows, dim, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim reports the embedding dimension.
func (s *Store) Dim() int { return s.dim }

// TotalRows reports the number of vectors in the store.
func (s *Store) TotalRows() uint64 { return s.totalRows }

// splitmix64 is the value-generation hash (Vigna's SplitMix64 finalizer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Element returns element e of the vector at global row idx. Values lie in
// [-8, 8); sums of thousands of them remain exactly representable in float32.
func (s *Store) Element(idx header.Index, e int) float32 {
	h := splitmix64(s.seed ^ uint64(idx)*0x100000001b3 ^ uint64(e))
	return float32(int64(h%17)) - 8
}

// fill materializes the vector at idx into dst, hoisting the per-row hash
// base out of the element loop (bit-identical to Element per element).
func (s *Store) fill(idx header.Index, dst tensor.Vector) {
	base := s.seed ^ uint64(idx)*0x100000001b3
	for e := range dst {
		h := splitmix64(base ^ uint64(e))
		dst[e] = float32(int64(h%17)) - 8
	}
}

// Vector materializes the embedding vector at global row idx. It returns an
// error for an out-of-range index.
func (s *Store) Vector(idx header.Index) (tensor.Vector, error) {
	if uint64(idx) >= s.totalRows {
		return nil, fmt.Errorf("embedding: index %d out of range [0,%d)", idx, s.totalRows)
	}
	v := tensor.New(s.dim)
	s.fill(idx, v)
	return v, nil
}

// VectorInto materializes the embedding vector at global row idx into dst,
// which must have the store's dimension. It is Vector without the
// allocation, for callers that manage their own buffers (the engines' leaf
// staging arenas).
func (s *Store) VectorInto(idx header.Index, dst tensor.Vector) error {
	if uint64(idx) >= s.totalRows {
		return fmt.Errorf("embedding: index %d out of range [0,%d)", idx, s.totalRows)
	}
	if len(dst) != s.dim {
		return fmt.Errorf("embedding: VectorInto buffer has %d elements, store dimension is %d", len(dst), s.dim)
	}
	s.fill(idx, dst)
	return nil
}

// MustVector is Vector for callers with statically valid indices (tests,
// examples); it panics on error.
func (s *Store) MustVector(idx header.Index) tensor.Vector {
	v, err := s.Vector(idx)
	if err != nil {
		panic(err)
	}
	return v
}

// Query is one embedding lookup: a set of indices whose vectors are gathered
// and reduced into a single output vector.
type Query struct {
	Indices header.IndexSet
}

// Batch is a set of queries processed together, with the pooling operation to
// apply.
type Batch struct {
	Queries []Query
	Op      tensor.ReduceOp
}

// NumQueries reports the batch size n.
func (b Batch) NumQueries() int { return len(b.Queries) }

// MaxQuerySize reports the largest query (q in the paper's notation).
func (b Batch) MaxQuerySize() int {
	max := 0
	for _, q := range b.Queries {
		if q.Indices.Len() > max {
			max = q.Indices.Len()
		}
	}
	return max
}

// TotalAccesses reports the number of memory accesses a batch needs without
// deduplication: the sum of all query sizes (n x q for uniform queries).
func (b Batch) TotalAccesses() int {
	n := 0
	for _, q := range b.Queries {
		n += q.Indices.Len()
	}
	return n
}

// UniqueIndices returns the distinct indices across the batch, sorted.
func (b Batch) UniqueIndices() header.IndexSet {
	var all []header.Index
	for _, q := range b.Queries {
		all = append(all, q.Indices...)
	}
	return header.NewIndexSet(all...)
}

// UniqueFraction reports the Fig. 3 statistic: the fraction of the batch's
// memory accesses that remain after deduplication.
func (b Batch) UniqueFraction() float64 {
	total := b.TotalAccesses()
	if total == 0 {
		return 0
	}
	return float64(b.UniqueIndices().Len()) / float64(total)
}

// Golden computes the reference result of the batch against the store: one
// reduced vector per query, in query order. Every engine's functional output
// is compared against this. It returns an error when a query references an
// index outside the store or the pooling operation is unusable.
func (b Batch) Golden(s *Store) ([]tensor.Vector, error) {
	out := make([]tensor.Vector, len(b.Queries))
	// Batches share indices heavily (that sharing is the whole premise of the
	// paper), so each unique index is materialized once into a flat backing
	// and reused; only the per-query accumulators escape. Values are
	// deterministic, so memoization cannot change any result.
	dim := s.Dim()
	var backing []float32
	memo := make(map[header.Index]int, b.TotalAccesses())
	vecOf := func(idx header.Index) (tensor.Vector, error) {
		if uint64(idx) >= s.totalRows {
			return nil, fmt.Errorf("embedding: index %d out of range [0,%d)", idx, s.totalRows)
		}
		off, ok := memo[idx]
		if !ok {
			off = len(backing)
			backing = append(backing, make([]float32, dim)...)
			s.fill(idx, backing[off:off+dim])
			memo[idx] = off
		}
		return backing[off : off+dim], nil
	}
	for i, q := range b.Queries {
		if q.Indices.Len() == 0 {
			out[i] = tensor.New(dim)
			continue
		}
		v, err := vecOf(q.Indices[0])
		if err != nil {
			return nil, fmt.Errorf("embedding: golden of query %d: %w", i, err)
		}
		acc := tensor.New(dim)
		copy(acc, v)
		for _, idx := range q.Indices[1:] {
			v, err := vecOf(idx)
			if err != nil {
				return nil, fmt.Errorf("embedding: golden of query %d: %w", i, err)
			}
			if err := b.Op.Apply(acc, v); err != nil {
				return nil, fmt.Errorf("embedding: golden of query %d: %w", i, err)
			}
		}
		b.Op.FinalizeMean(acc, q.Indices.Len())
		out[i] = acc
	}
	return out, nil
}

// MustGolden is Golden for callers with statically valid batches (tests,
// examples); it panics on error.
func (b Batch) MustGolden(s *Store) []tensor.Vector {
	out, err := b.Golden(s)
	if err != nil {
		panic(err)
	}
	return out
}

// Distribution selects how query indices are drawn from the row space.
type Distribution uint8

const (
	// Uniform draws rows uniformly at random.
	Uniform Distribution = iota
	// Zipf draws rows with Zipfian popularity, modelling the hot-entry skew
	// of production embedding traces that makes batches share indices.
	Zipf
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// GeneratorConfig parameterizes a query generator.
type GeneratorConfig struct {
	// NumQueries is the batch size n.
	NumQueries int
	// QuerySize is the number of indices per query (q, max 16 in the paper).
	QuerySize int
	// Rows is the size of the index space queries draw from.
	Rows uint64
	// Dist selects the popularity distribution.
	Dist Distribution
	// ZipfS is the Zipf skew parameter (>1); ignored for Uniform.
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
	// PerTableRows, when positive, switches to DLRM-style per-table
	// pooling: each query first picks one table (of Rows/PerTableRows
	// tables, uniformly) and then draws its QuerySize indices inside that
	// table with the configured distribution over the table's rows. This
	// matches production embedding semantics where one sparse feature pools
	// within one table.
	PerTableRows uint64
}

// Validate reports a descriptive error for an unusable configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumQueries <= 0:
		return fmt.Errorf("embedding: NumQueries must be positive, got %d", c.NumQueries)
	case c.QuerySize <= 0:
		return fmt.Errorf("embedding: QuerySize must be positive, got %d", c.QuerySize)
	case c.Rows == 0:
		return fmt.Errorf("embedding: Rows must be positive")
	case uint64(c.QuerySize) > c.Rows:
		return fmt.Errorf("embedding: QuerySize %d exceeds row space %d", c.QuerySize, c.Rows)
	case c.Dist == Zipf && c.ZipfS <= 1:
		return fmt.Errorf("embedding: ZipfS must exceed 1, got %v", c.ZipfS)
	case c.PerTableRows > 0 && c.Rows%c.PerTableRows != 0:
		return fmt.Errorf("embedding: Rows %d not a multiple of PerTableRows %d", c.Rows, c.PerTableRows)
	case c.PerTableRows > 0 && uint64(c.QuerySize) > c.PerTableRows:
		return fmt.Errorf("embedding: QuerySize %d exceeds table rows %d", c.QuerySize, c.PerTableRows)
	}
	return nil
}

// Generator produces deterministic batches of queries.
type Generator struct {
	cfg  GeneratorConfig
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator builds a generator; it returns an error for invalid
// configurations.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	rowSpace := cfg.Rows
	if cfg.PerTableRows > 0 {
		rowSpace = cfg.PerTableRows
	}
	if cfg.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, rowSpace-1)
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// drawRow samples one row according to the configured distribution, within
// the given row space.
func (g *Generator) drawRow(space uint64) header.Index {
	switch g.cfg.Dist {
	case Zipf:
		return header.Index(g.zipf.Uint64())
	default:
		return header.Index(g.rng.Int63n(int64(space)))
	}
}

// Query draws one query of QuerySize distinct indices. In per-table mode
// the indices stay inside one uniformly chosen table.
func (g *Generator) Query() Query {
	space := g.cfg.Rows
	var base uint64
	if g.cfg.PerTableRows > 0 {
		space = g.cfg.PerTableRows
		tables := g.cfg.Rows / g.cfg.PerTableRows
		base = uint64(g.rng.Int63n(int64(tables))) * g.cfg.PerTableRows
	}
	// Queries are small (q <= 16 in the paper), so a linear duplicate scan
	// beats a per-query map; the draw sequence — and hence the generated
	// batch — is unchanged.
	idx := make(header.IndexSet, 0, g.cfg.QuerySize)
draw:
	for len(idx) < g.cfg.QuerySize {
		r := header.Index(base) + g.drawRow(space)
		for _, x := range idx {
			if x == r {
				continue draw
			}
		}
		idx = append(idx, r)
	}
	slices.Sort(idx)
	return Query{Indices: idx}
}

// Batch draws a full batch with the given pooling operation.
func (g *Generator) Batch(op tensor.ReduceOp) Batch {
	b := Batch{Queries: make([]Query, g.cfg.NumQueries), Op: op}
	for i := range b.Queries {
		b.Queries[i] = g.Query()
	}
	return b
}
