package embedding

import (
	"math"
	"testing"

	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func TestStoreDeterministic(t *testing.T) {
	s1 := MustStore(1000, 16, 42)
	s2 := MustStore(1000, 16, 42)
	v1 := s1.MustVector(123)
	v2 := s2.MustVector(123)
	if !v1.Equal(v2) {
		t.Fatal("same seed produced different vectors")
	}
	s3 := MustStore(1000, 16, 43)
	if s3.MustVector(123).Equal(v1) {
		t.Fatal("different seed produced identical vector (suspicious)")
	}
}

func TestStoreValuesBounded(t *testing.T) {
	s := MustStore(100, 64, 7)
	for i := header.Index(0); i < 100; i++ {
		for _, x := range s.MustVector(i) {
			if x < -8 || x >= 9 {
				t.Fatalf("element %v out of range", x)
			}
			if x != float32(math.Trunc(float64(x))) {
				t.Fatalf("element %v not integral", x)
			}
		}
	}
}

func TestStoreErrorsOutOfRange(t *testing.T) {
	s := MustStore(10, 4, 1)
	if _, err := s.Vector(10); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestNewStoreErrorsOnBadShape(t *testing.T) {
	if _, err := NewStore(0, 4, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewStore(4, 0, 1); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestBatchStats(t *testing.T) {
	b := Batch{
		Queries: []Query{
			{Indices: header.NewIndexSet(1, 2, 5)},
			{Indices: header.NewIndexSet(2, 5)},
		},
		Op: tensor.OpSum,
	}
	if b.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", b.NumQueries())
	}
	if b.MaxQuerySize() != 3 {
		t.Fatalf("MaxQuerySize = %d", b.MaxQuerySize())
	}
	if b.TotalAccesses() != 5 {
		t.Fatalf("TotalAccesses = %d", b.TotalAccesses())
	}
	if !b.UniqueIndices().Equal(header.NewIndexSet(1, 2, 5)) {
		t.Fatalf("UniqueIndices = %v", b.UniqueIndices())
	}
	if got := b.UniqueFraction(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("UniqueFraction = %v", got)
	}
}

func TestEmptyBatchUniqueFraction(t *testing.T) {
	var b Batch
	if b.UniqueFraction() != 0 {
		t.Fatal("empty batch fraction non-zero")
	}
}

func TestGoldenSum(t *testing.T) {
	s := MustStore(100, 4, 1)
	b := Batch{
		Queries: []Query{{Indices: header.NewIndexSet(3, 7)}},
		Op:      tensor.OpSum,
	}
	got := b.MustGolden(s)
	want, err := tensor.Add(s.MustVector(3), s.MustVector(7))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(want) {
		t.Fatalf("golden %v, want %v", got[0], want)
	}
}

func TestGoldenMean(t *testing.T) {
	s := MustStore(100, 4, 1)
	b := Batch{
		Queries: []Query{{Indices: header.NewIndexSet(3, 7)}},
		Op:      tensor.OpMean,
	}
	got := b.MustGolden(s)
	sum, err := tensor.Add(s.MustVector(3), s.MustVector(7))
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(sum.Scale(0.5)) {
		t.Fatalf("mean golden wrong: %v", got[0])
	}
}

func TestGoldenSingleIndexQuery(t *testing.T) {
	s := MustStore(100, 4, 1)
	b := Batch{Queries: []Query{{Indices: header.NewIndexSet(9)}}, Op: tensor.OpSum}
	got := b.MustGolden(s)
	if !got[0].Equal(s.MustVector(9)) {
		t.Fatal("single-index query should return the raw vector")
	}
}

func TestGoldenEmptyQuery(t *testing.T) {
	s := MustStore(100, 4, 1)
	b := Batch{Queries: []Query{{}}, Op: tensor.OpSum}
	got := b.MustGolden(s)
	if !got[0].Equal(tensor.New(4)) {
		t.Fatal("empty query should return zeros")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{NumQueries: 0, QuerySize: 1, Rows: 10},
		{NumQueries: 1, QuerySize: 0, Rows: 10},
		{NumQueries: 1, QuerySize: 1, Rows: 0},
		{NumQueries: 1, QuerySize: 11, Rows: 10},
		{NumQueries: 1, QuerySize: 1, Rows: 10, Dist: Zipf, ZipfS: 1.0},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{NumQueries: 8, QuerySize: 16, Rows: 1 << 16, Dist: Zipf, ZipfS: 1.2, Seed: 99}
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1 := g1.Batch(tensor.OpSum)
	b2 := g2.Batch(tensor.OpSum)
	for i := range b1.Queries {
		if !b1.Queries[i].Indices.Equal(b2.Queries[i].Indices) {
			t.Fatalf("query %d differs across identical generators", i)
		}
	}
}

func TestGeneratorQueryShape(t *testing.T) {
	cfg := GeneratorConfig{NumQueries: 4, QuerySize: 16, Rows: 4096, Seed: 1}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(tensor.OpSum)
	if len(b.Queries) != 4 {
		t.Fatalf("got %d queries", len(b.Queries))
	}
	for i, q := range b.Queries {
		if q.Indices.Len() != 16 {
			t.Fatalf("query %d has %d indices (duplicates not retried?)", i, q.Indices.Len())
		}
		for _, idx := range q.Indices {
			if uint64(idx) >= cfg.Rows {
				t.Fatalf("index %d out of row space", idx)
			}
		}
	}
}

func TestZipfSharesMoreThanUniform(t *testing.T) {
	// The motivation for Fig. 3: skewed popularity makes batches share
	// indices, so the unique fraction under Zipf must be lower than under
	// Uniform for the same shape.
	base := GeneratorConfig{NumQueries: 32, QuerySize: 16, Rows: 1 << 20, Seed: 5}
	uni := base
	uni.Dist = Uniform
	zip := base
	zip.Dist = Zipf
	zip.ZipfS = 1.5
	gu, err := NewGenerator(uni)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := NewGenerator(zip)
	if err != nil {
		t.Fatal(err)
	}
	fu := gu.Batch(tensor.OpSum).UniqueFraction()
	fz := gz.Batch(tensor.OpSum).UniqueFraction()
	if fz >= fu {
		t.Fatalf("zipf unique fraction %.3f not below uniform %.3f", fz, fu)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Fatal("distribution names wrong")
	}
	if Distribution(9).String() != "Distribution(9)" {
		t.Fatal("unknown distribution name wrong")
	}
}

func TestPerTableModeStaysInOneTable(t *testing.T) {
	cfg := GeneratorConfig{
		NumQueries: 16, QuerySize: 8, Rows: 32 * 1024, Seed: 7,
		PerTableRows: 1024,
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(tensor.OpSum)
	tables := map[uint64]bool{}
	for qi, q := range b.Queries {
		table := uint64(q.Indices[0]) / 1024
		tables[table] = true
		for _, idx := range q.Indices {
			if uint64(idx)/1024 != table {
				t.Fatalf("query %d spans tables: %v", qi, q.Indices)
			}
		}
	}
	if len(tables) < 2 {
		t.Fatal("all queries landed in one table (suspicious)")
	}
}

func TestPerTableModeValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{
		NumQueries: 1, QuerySize: 4, Rows: 100, Seed: 1, PerTableRows: 30,
	}); err == nil {
		t.Fatal("non-divisible table size accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{
		NumQueries: 1, QuerySize: 40, Rows: 64, Seed: 1, PerTableRows: 32,
	}); err == nil {
		t.Fatal("query larger than table accepted")
	}
}

func TestPerTableZipf(t *testing.T) {
	cfg := GeneratorConfig{
		NumQueries: 8, QuerySize: 8, Rows: 16 * 4096, Seed: 9,
		PerTableRows: 4096, Dist: Zipf, ZipfS: 1.5,
	}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Batch(tensor.OpSum)
	// Skew within tables: low in-table rows dominate.
	low := 0
	total := 0
	for _, q := range b.Queries {
		for _, idx := range q.Indices {
			if uint64(idx)%4096 < 64 {
				low++
			}
			total++
		}
	}
	if float64(low)/float64(total) < 0.3 {
		t.Fatalf("zipf head share %.2f too small within tables", float64(low)/float64(total))
	}
}
