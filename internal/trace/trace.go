// Package trace provides a JSON interchange format for embedding-lookup
// workloads, so batches can be captured, shared, inspected, and replayed
// across runs. The paper's experiments use production traces; this format is
// the hook where real traces would plug into the simulators (any tool that
// can emit the JSON schema can drive every engine in this repository).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// FormatVersion is the current schema version.
const FormatVersion = 1

// Trace is a serializable batch of embedding-lookup queries.
type Trace struct {
	// Version is the schema version (FormatVersion).
	Version int `json:"version"`
	// Op names the pooling operation: "sum", "min", "max", or "mean".
	Op string `json:"op"`
	// Rows is the index space the queries draw from, used for validation.
	Rows uint64 `json:"rows"`
	// Queries lists each query's indices.
	Queries [][]header.Index `json:"queries"`
}

// FromBatch captures a batch into the interchange form.
func FromBatch(b embedding.Batch, rows uint64) *Trace {
	t := &Trace{Version: FormatVersion, Op: b.Op.String(), Rows: rows}
	for _, q := range b.Queries {
		t.Queries = append(t.Queries, append([]header.Index(nil), q.Indices...))
	}
	return t
}

// parseOp inverts tensor.ReduceOp.String.
func parseOp(s string) (tensor.ReduceOp, error) {
	switch s {
	case "sum":
		return tensor.OpSum, nil
	case "min":
		return tensor.OpMin, nil
	case "max":
		return tensor.OpMax, nil
	case "mean":
		return tensor.OpMean, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Validate reports a descriptive error for malformed traces.
func (t *Trace) Validate() error {
	if t.Version != FormatVersion {
		return fmt.Errorf("trace: unsupported version %d (want %d)", t.Version, FormatVersion)
	}
	if _, err := parseOp(t.Op); err != nil {
		return err
	}
	if t.Rows == 0 {
		return fmt.Errorf("trace: zero row space")
	}
	if len(t.Queries) == 0 {
		return fmt.Errorf("trace: no queries")
	}
	for qi, q := range t.Queries {
		if len(q) == 0 {
			return fmt.Errorf("trace: query %d is empty", qi)
		}
		for _, idx := range q {
			if uint64(idx) >= t.Rows {
				return fmt.Errorf("trace: query %d index %d outside row space %d", qi, idx, t.Rows)
			}
		}
	}
	return nil
}

// Batch reconstructs the runnable batch. Duplicate indices within one query
// are coalesced (queries are sets, as in the paper's terminology).
func (t *Trace) Batch() (embedding.Batch, error) {
	if err := t.Validate(); err != nil {
		return embedding.Batch{}, err
	}
	op, err := parseOp(t.Op)
	if err != nil {
		return embedding.Batch{}, err
	}
	b := embedding.Batch{Op: op}
	for _, q := range t.Queries {
		b.Queries = append(b.Queries, embedding.Query{Indices: header.NewIndexSet(q...)})
	}
	return b, nil
}

// Stats summarizes a trace.
type Stats struct {
	NumQueries     int
	TotalAccesses  int
	UniqueIndices  int
	UniqueFraction float64
	MaxQuerySize   int
}

// Stats computes the trace's access statistics (the Fig. 3 quantities).
func (t *Trace) Stats() (Stats, error) {
	b, err := t.Batch()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		NumQueries:     b.NumQueries(),
		TotalAccesses:  b.TotalAccesses(),
		UniqueIndices:  b.UniqueIndices().Len(),
		UniqueFraction: b.UniqueFraction(),
		MaxQuerySize:   b.MaxQuerySize(),
	}, nil
}

// Save writes the trace as indented JSON.
func Save(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load reads and validates a trace.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
