package trace

import (
	"bytes"
	"strings"
	"testing"

	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func sample() *Trace {
	return &Trace{
		Version: FormatVersion,
		Op:      "sum",
		Rows:    100,
		Queries: [][]header.Index{{1, 2, 5}, {2, 5}, {7}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Queries) != 3 || got.Rows != 100 || got.Op != "sum" {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestFromBatchAndBack(t *testing.T) {
	b := embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(3, 9)},
			{Indices: header.NewIndexSet(1)},
		},
		Op: tensor.OpMean,
	}
	tr := FromBatch(b, 50)
	back, err := tr.Batch()
	if err != nil {
		t.Fatal(err)
	}
	if back.Op != tensor.OpMean {
		t.Fatalf("op lost: %v", back.Op)
	}
	for i := range b.Queries {
		if !back.Queries[i].Indices.Equal(b.Queries[i].Indices) {
			t.Fatalf("query %d lost", i)
		}
	}
}

func TestAllOpsRoundTrip(t *testing.T) {
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		b := embedding.Batch{Queries: []embedding.Query{{Indices: header.NewIndexSet(1)}}, Op: op}
		back, err := FromBatch(b, 10).Batch()
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if back.Op != op {
			t.Fatalf("op %v became %v", op, back.Op)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []*Trace{
		{Version: 2, Op: "sum", Rows: 10, Queries: [][]header.Index{{1}}},
		{Version: 1, Op: "median", Rows: 10, Queries: [][]header.Index{{1}}},
		{Version: 1, Op: "sum", Rows: 0, Queries: [][]header.Index{{1}}},
		{Version: 1, Op: "sum", Rows: 10},
		{Version: 1, Op: "sum", Rows: 10, Queries: [][]header.Index{{}}},
		{Version: 1, Op: "sum", Rows: 10, Queries: [][]header.Index{{10}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, &Trace{Version: 1, Op: "sum", Rows: 0}); err == nil {
		t.Fatal("invalid trace saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"op":"sum","rows":0,"queries":[[1]]}`)); err == nil {
		t.Fatal("invalid loaded trace accepted")
	}
}

func TestStats(t *testing.T) {
	s, err := sample().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumQueries != 3 || s.TotalAccesses != 6 || s.UniqueIndices != 4 || s.MaxQuerySize != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.UniqueFraction <= 0.6 || s.UniqueFraction >= 0.7 {
		t.Fatalf("unique fraction %v", s.UniqueFraction)
	}
}

func TestDuplicateIndicesCoalesced(t *testing.T) {
	tr := &Trace{Version: 1, Op: "sum", Rows: 10, Queries: [][]header.Index{{3, 3, 4}}}
	b, err := tr.Batch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Queries[0].Indices.Len() != 2 {
		t.Fatalf("duplicates not coalesced: %v", b.Queries[0].Indices)
	}
}
