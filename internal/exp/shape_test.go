package exp

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// shapeSpec pins the *shape* of a timing-driven exhibit instead of its exact
// numbers: which row wins, and roughly how far apart the rows sit. Byte
// snapshots would go stale on every latency recalibration; the paper's
// qualitative claims (Fafnir beats RecNMP, dedup gain grows with batch size,
// …) should not.
type shapeSpec struct {
	id string
	// labelCols are the columns concatenated into the row's identity.
	labelCols []int
	// valueCol is the figure-of-merit column; "%" / "x" suffixes are
	// stripped before parsing.
	valueCol int
	// higherIsBetter selects the winner: the max (speedups) or min
	// (latencies, energy) of valueCol.
	higherIsBetter bool
	// heavy marks exhibits skipped under -short.
	heavy bool
}

var shapeSpecs = []shapeSpec{
	{id: "fig11", labelCols: []int{0}, valueCol: 3},                                         // total us
	{id: "fig12", labelCols: []int{0}, valueCol: 4, higherIsBetter: true, heavy: true},      // Fafnir speedup
	{id: "fig13", labelCols: []int{0}, valueCol: 3, higherIsBetter: true, heavy: true},      // Fafnir +dedup
	{id: "fig14", labelCols: []int{0}, valueCol: 5, higherIsBetter: true, heavy: true},      // speedup
	{id: "abl-fanin", labelCols: []int{0}, valueCol: 2},                                     // latency us
	{id: "abl-cache", labelCols: []int{0, 1}, valueCol: 4},                                  // latency us
	{id: "abl-skew", labelCols: []int{0}, valueCol: 4, higherIsBetter: true},                // dedup gain
	{id: "abl-interactive", labelCols: []int{0}, valueCol: 3, higherIsBetter: true},         // batch advantage
	{id: "abl-hbm", labelCols: []int{0, 1}, valueCol: 3},                                    // total us
	{id: "abl-energy", labelCols: []int{0}, valueCol: 4},                                    // total nJ
	{id: "abl-scaleout", labelCols: []int{0}, valueCol: 3},                                  // total us
	{id: "app-graph", labelCols: []int{0}, valueCol: 3, higherIsBetter: true, heavy: true},  // speedup
	{id: "app-solver", labelCols: []int{0}, valueCol: 4, higherIsBetter: true, heavy: true}, // speedup
}

// ratioBand is how far a row's winner-relative ratio may drift from the
// recorded shape before the test fails (x1.5 either way). Recalibrations move
// absolute numbers freely; they rarely move *relative* standings this much.
const ratioBand = 1.5

// orderedGap: pairs whose recorded ratios differ by more than this factor
// must keep their relative order. Closer pairs are allowed to swap — they are
// within measurement noise of each other.
const orderedGap = 1.2

type shapeRow struct {
	label string
	ratio float64
}

// shapeOf reduces a report to its shape: every row's label and its value
// relative to the winner (ratio 1.0).
func shapeOf(rep *Report, spec shapeSpec) ([]shapeRow, error) {
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("report %s has no rows", spec.id)
	}
	values := make([]float64, len(rep.Rows))
	rows := make([]shapeRow, len(rep.Rows))
	best := 0
	for i, row := range rep.Rows {
		if spec.valueCol >= len(row) {
			return nil, fmt.Errorf("row %d of %s has no column %d", i, spec.id, spec.valueCol)
		}
		raw := strings.TrimRight(row[spec.valueCol], "%x")
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("row %d of %s: column %d = %q is not numeric: %v",
				i, spec.id, spec.valueCol, row[spec.valueCol], err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("row %d of %s: non-positive figure of merit %v", i, spec.id, v)
		}
		values[i] = v
		var parts []string
		for _, c := range spec.labelCols {
			parts = append(parts, row[c])
		}
		rows[i].label = strings.Join(parts, " ")
		if spec.higherIsBetter == (v > values[best]) && v != values[best] {
			best = i
		}
	}
	for i := range rows {
		rows[i].ratio = values[i] / values[best]
	}
	return rows, nil
}

func shapePath(id string) string {
	return filepath.Join("testdata", "shape", id+".txt")
}

func writeShape(path string, rows []shapeRow) error {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.4f\n", r.label, r.ratio)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func readShape(path string) ([]shapeRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []shapeRow
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		label, ratioStr, ok := strings.Cut(sc.Text(), "\t")
		if !ok {
			return nil, fmt.Errorf("%s: malformed line %q", path, sc.Text())
		}
		ratio, err := strconv.ParseFloat(ratioStr, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		rows = append(rows, shapeRow{label: label, ratio: ratio})
	}
	return rows, sc.Err()
}

// TestShapes locks the qualitative outcome of every timing-driven exhibit:
// the row set, the winner, each row's winner-relative ratio within a x1.5
// band, and the ordering of rows whose recorded ratios are more than 20%
// apart. Regenerate after an intentional recalibration with:
//
//	go test ./internal/exp -run TestShapes -update-snapshots
func TestShapes(t *testing.T) {
	for _, spec := range shapeSpecs {
		spec := spec
		t.Run(spec.id, func(t *testing.T) {
			if spec.heavy && testing.Short() {
				t.Skip("heavy exhibit; skipped in -short mode")
			}
			t.Parallel()
			rep, err := Run(spec.id)
			if err != nil {
				t.Fatal(err)
			}
			got, err := shapeOf(rep, spec)
			if err != nil {
				t.Fatal(err)
			}
			path := shapePath(spec.id)
			if *updateSnapshots {
				if err := writeShape(path, got); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := readShape(path)
			if err != nil {
				t.Fatalf("missing shape snapshot (run with -update-snapshots): %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d rows, snapshot has %d", len(got), len(want))
			}
			for i := range want {
				if got[i].label != want[i].label {
					t.Fatalf("row %d is %q, snapshot has %q", i, got[i].label, want[i].label)
				}
				if got[i].ratio == 1 != (want[i].ratio == 1) {
					t.Errorf("winner moved: row %q ratio %.3f, snapshot %.3f",
						got[i].label, got[i].ratio, want[i].ratio)
				}
				if got[i].ratio > want[i].ratio*ratioBand || got[i].ratio < want[i].ratio/ratioBand {
					t.Errorf("row %q drifted out of band: ratio %.3f, snapshot %.3f (x%.1f allowed)",
						got[i].label, got[i].ratio, want[i].ratio, ratioBand)
				}
			}
			for i := range want {
				for j := i + 1; j < len(want); j++ {
					wi, wj := want[i].ratio, want[j].ratio
					if wi < wj*orderedGap && wj < wi*orderedGap {
						continue // recorded as too close to rank reliably
					}
					if (wi < wj) != (got[i].ratio < got[j].ratio) {
						t.Errorf("rows %q and %q swapped order: ratios %.3f/%.3f, snapshot %.3f/%.3f",
							want[i].label, want[j].label, got[i].ratio, got[j].ratio, wi, wj)
					}
				}
			}
		})
	}
}
