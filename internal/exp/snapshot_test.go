package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateSnapshots = flag.Bool("update-snapshots", false, "rewrite testdata experiment snapshots")

// Snapshot tests lock the fully deterministic (analytic or constant-driven)
// experiments: their rendered tables must match testdata byte for byte.
// Timing-driven experiments are excluded — their values shift when the
// models are recalibrated, which shape tests cover instead. Regenerate with:
//
//	go test ./internal/exp -run TestSnapshots -update-snapshots
func TestSnapshots(t *testing.T) {
	for _, id := range []string{"fig9", "table1", "table4", "table5", "table6", "fig16"} {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".txt")
			got := rep.String()
			if *updateSnapshots {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing snapshot (run with -update-snapshots): %v", err)
			}
			if got != string(want) {
				t.Fatalf("snapshot drift for %s:\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
			}
		})
	}
}
