// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Section VI), each regenerating the same
// rows or series the paper reports from the simulators in this repository.
// The cmd/fafnir-bench binary and the repository-root benchmarks are thin
// wrappers over this package; EXPERIMENTS.md records paper-vs-measured for
// every experiment.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the paper's label, e.g. "fig13" or "table1".
	ID string
	// Title describes what the paper shows.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, one row per line of the table / point of the
	// figure series.
	Rows [][]string
	// Notes carries calibration or substitution remarks.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a remark.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavoured Markdown table.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s: %s\n\n", r.ID, r.Title)
	b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Runner produces one report; the registry maps experiment IDs to runners.
type Runner func() (*Report, error)

var registry = map[string]Runner{}

// register installs a runner under an ID; duplicate IDs are programmer
// errors and panic at init time.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("exp: duplicate experiment " + id)
	}
	registry[id] = r
}

// IDs lists the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r()
}

// RunAll executes every experiment concurrently on every available core and
// returns the reports in ID order. Each runner builds its own engines,
// stores, and memory systems, so experiments are independent; the returned
// order and contents are identical to a serial run.
func RunAll() ([]*Report, error) {
	return RunAllParallel(runtime.GOMAXPROCS(0))
}

// RunAllParallel executes every experiment with at most par concurrent
// runners (par <= 1 runs serially). Reports are collected by registry
// position and re-sorted by ID before returning, so callers can never
// observe scheduling order; the first failure in ID order is reported.
func RunAllParallel(par int) ([]*Report, error) {
	ids := IDs()
	reports := make([]*Report, len(ids))
	errs := make([]error, len(ids))
	if par <= 1 {
		for i, id := range ids {
			reports[i], errs[i] = Run(id)
		}
	} else {
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				reports[i], errs[i] = Run(id)
			}(i, id)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", ids[i], err)
		}
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].ID < reports[b].ID })
	return reports, nil
}

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// itoa formats an int.
func itoa(x int) string { return fmt.Sprintf("%d", x) }
