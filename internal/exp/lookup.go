package exp

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/energy"
	"fafnir/internal/fafnir"
	"fafnir/internal/hwmodel"
	"fafnir/internal/recnmp"
)

func init() {
	register("fig3", Fig3)
	register("table1", Table1)
	register("table4", Table4)
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig15", Fig15)
	register("table5", Table5)
	register("table6", Table6)
	register("fig16", Fig16)
}

// Fig3 reproduces "The percentage of unique indices in batches of queries":
// the fraction of a batch's accesses that remain after deduplication, per
// batch size, averaged over several drawn batches.
func Fig3() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "fig3",
		Title:  "percentage of unique indices in batches of queries",
		Header: []string{"batch", "unique indices", "total accesses", "unique %"},
	}
	const trials = 8
	for _, n := range []int{8, 16, 32} {
		var unique, total int
		for s := int64(0); s < trials; s++ {
			b, err := w.Batch(n, s)
			if err != nil {
				return nil, err
			}
			u, t, _ := dedupStats(b)
			unique += u
			total += t
		}
		rep.AddRow(itoa(n), itoa(unique/trials), itoa(total/trials),
			pct(float64(unique)/float64(total)))
	}
	rep.AddNote("Zipf(s=%.2f) synthetic popularity standing in for production traces", w.ZipfS)
	return rep, nil
}

// Table1 reproduces the PE and node buffer sizing.
func Table1() (*Report, error) {
	rep := &Report{
		ID:     "table1",
		Title:  "total buffer size for PEs and nodes",
		Header: []string{"batch", "PE buffer KB (model)", "DIMM/rank node KB (model)", "PE KB (paper)", "node KB (paper)"},
	}
	for _, b := range []int{8, 16, 32} {
		spec := hwmodel.PaperBuffers(b)
		pub := hwmodel.TableIPublished[b]
		rep.AddRow(itoa(b),
			f1(hwmodel.KB(spec.PEBufferBytes())),
			f1(hwmodel.KB(spec.NodeBufferBytes(7))),
			f1(pub.PEKB), f1(pub.NodeKB))
	}
	rep.AddNote("model: two input FIFOs of B entries x (512 B value + %d B header)",
		hwmodel.PaperBuffers(8).HeaderBytes())
	return rep, nil
}

// Table4 reports the compute-unit latencies driving every PE pipeline stage.
func Table4() (*Report, error) {
	l := fafnir.TableIV()
	rep := &Report{
		ID:     "table4",
		Title:  "latency (cycles @200MHz) of compute-unit components",
		Header: []string{"operation", "cycles"},
	}
	rep.AddRow("compare", fmt.Sprintf("%d", l.Compare))
	rep.AddRow("reduce (value)", fmt.Sprintf("%d", l.ReduceValue))
	rep.AddRow("reduce (header)", fmt.Sprintf("%d", l.ReduceHeader))
	rep.AddRow("forward", fmt.Sprintf("%d", l.Forward))
	rep.AddRow("pipeline stage (critical path)", fmt.Sprintf("%d", l.StageLatency()))
	rep.AddNote("critical path = compare + reduce; reduce and forward run on parallel paths")
	return rep, nil
}

// Fig11 reproduces the single-query latency breakdown: one query of 16
// 512 B vectors over 32 ranks, memory vs compute time per design.
func Fig11() (*Report, error) {
	w := PaperWorkload()
	eng, err := newEngines(w, 32)
	if err != nil {
		return nil, err
	}
	b, err := w.Batch(1, 11)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "fig11",
		Title:  "single-query latency (us): memory vs compute",
		Header: []string{"design", "memory us", "compute us", "total us"},
	}

	base, err := eng.base.TimedLookup(eng.store, eng.layout, eng.mem(), b)
	if err != nil {
		return nil, err
	}
	rep.AddRow("Baseline (no NDP)", f2(micros(base.MemCycles)), f2(micros(base.ComputeCycles)), f2(micros(base.TotalCycles)))

	tdm, err := eng.tdm.TimedLookup(eng.store, eng.mem(), b)
	if err != nil {
		return nil, err
	}
	rep.AddRow("TensorDIMM", f2(micros(tdm.MemCycles)), f2(micros(tdm.ComputeCycles)), f2(micros(tdm.TotalCycles)))

	rec, err := eng.rec.TimedLookup(eng.store, eng.layout, eng.mem(), b)
	if err != nil {
		return nil, err
	}
	rep.AddRow("RecNMP", f2(micros(rec.MemCycles)),
		f2(micros(rec.NDPComputeCycles+rec.HostComputeCycles)), f2(micros(rec.TotalCycles)))

	faf, err := eng.faf.TimedLookup(eng.store, eng.layout, eng.mem(), b, true)
	if err != nil {
		return nil, err
	}
	rep.AddRow("Fafnir", f2(micros(faf.MemCycles)),
		f2(micros(faf.ComputeCycles+faf.TransferCycles)), f2(micros(faf.TotalCycles)))

	if tdm.MemCycles > 0 && faf.MemCycles > 0 {
		rep.AddNote("TensorDIMM memory / Fafnir memory = %.2fx (paper: 4.45x, up to 16x with no row hits)",
			float64(tdm.MemCycles)/float64(faf.MemCycles))
	}
	rep.AddNote("RecNMP NDP fraction: %s (paper example: ~75%%)", pct(rec.NDPFraction()))
	return rep, nil
}

// fig12Geometry shrinks the DDR4 system to the requested rank count while
// keeping 2 ranks per DIMM.
func fig12Geometry(ranks int) dram.Config {
	cfg := dram.DDR4()
	switch {
	case ranks >= 8:
		cfg.Channels = ranks / 8
		cfg.DIMMsPerChannel = 4
		cfg.RanksPerDIMM = 2
	case ranks >= 2:
		cfg.Channels = 1
		cfg.DIMMsPerChannel = ranks / 2
		cfg.RanksPerDIMM = 2
	default:
		cfg.Channels = 1
		cfg.DIMMsPerChannel = 1
		cfg.RanksPerDIMM = 1
	}
	return cfg
}

// Fig12 reproduces the end-to-end inference speedup over the 1-rank
// configuration as ranks grow from 2 to 32, for RecNMP and Fafnir, against
// the ideal linear line. FC layers contribute a fixed 0.5 ms.
func Fig12() (*Report, error) {
	const n = 2048 // queries per inference (large pooling batch)
	rep := &Report{
		ID:     "fig12",
		Title:  "end-to-end inference speedup over 1-rank baseline",
		Header: []string{"ranks", "RecNMP lookup ms", "Fafnir lookup ms", "RecNMP speedup", "Fafnir speedup", "ideal speedup"},
	}

	type point struct{ rec, faf float64 }
	points := map[int]point{}
	rankSweep := []int{1, 2, 4, 8, 16, 32}
	for _, ranks := range rankSweep {
		w := PaperWorkload()
		w.Mem = fig12Geometry(ranks)
		layout := w.Layout()
		store := w.Store(layout)
		b, err := w.Batch(n, 12)
		if err != nil {
			return nil, err
		}

		fcfg := fafnir.Default()
		fcfg.NumRanks = ranks
		fcfg.LeafFanIn = 1
		if ranks%2 == 0 {
			fcfg.LeafFanIn = 2
		}
		faf, err := fafnir.NewEngine(fcfg)
		if err != nil {
			return nil, err
		}
		rec, err := recnmp.NewEngine(recnmp.Default())
		if err != nil {
			return nil, err
		}

		fres, err := faf.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
		if err != nil {
			return nil, err
		}
		rres, err := rec.TimedLookup(store, layout, dram.MustSystem(w.Mem), b)
		if err != nil {
			return nil, err
		}
		points[ranks] = point{rec: seconds(rres.TotalCycles), faf: seconds(fres.TotalCycles)}
	}

	fc := 0.5e-3
	other := 0.1e-3
	inferRec := func(r int) float64 { return points[r].rec + fc + other }
	inferFaf := func(r int) float64 { return points[r].faf + fc + other }
	// The ideal line scales the 1-rank Fafnir lookup linearly with ranks
	// and keeps the fixed stages — the red line of the paper's figure.
	ideal := func(r int) float64 {
		return inferFaf(1) / (points[1].faf/float64(r) + fc + other)
	}
	for _, ranks := range rankSweep[1:] {
		rep.AddRow(itoa(ranks),
			f2(points[ranks].rec*1e3), f2(points[ranks].faf*1e3),
			f2(inferRec(1)/inferRec(ranks)), f2(inferFaf(1)/inferFaf(ranks)),
			f2(ideal(ranks)))
	}
	rep.AddNote("%d queries per inference; FC fixed at 0.5 ms, other 0.1 ms", n)
	rep.AddNote("Fafnir follows the ideal line to 32 ranks; RecNMP falls away as spatial locality vanishes")
	return rep, nil
}

// Fig13 reproduces throughput speedup over RecNMP for batch sizes 8, 16, 32:
// TensorDIMM (slower than RecNMP), Fafnir without redundant-access
// elimination, and Fafnir with it (the striped extra).
func Fig13() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "fig13",
		Title:  "speedup over RecNMP vs batch size",
		Header: []string{"batch", "TensorDIMM", "Fafnir (no dedup)", "Fafnir (+dedup)", "dedup extra"},
	}
	const rounds = 8 // consecutive batches, so pipeline fills amortize
	for _, n := range []int{8, 16, 32} {
		eng, err := newEngines(w, n)
		if err != nil {
			return nil, err
		}
		b, err := w.Batch(n*rounds, int64(13+n))
		if err != nil {
			return nil, err
		}
		rec, err := eng.rec.TimedLookup(eng.store, eng.layout, eng.mem(), b)
		if err != nil {
			return nil, err
		}
		tdm, err := eng.tdm.TimedLookup(eng.store, eng.mem(), b)
		if err != nil {
			return nil, err
		}
		fafRaw, err := eng.faf.TimedLookup(eng.store, eng.layout, eng.mem(), b, false)
		if err != nil {
			return nil, err
		}
		fafDedup, err := eng.faf.TimedLookup(eng.store, eng.layout, eng.mem(), b, true)
		if err != nil {
			return nil, err
		}
		recT := float64(rec.TotalCycles)
		rep.AddRow(itoa(n),
			f2(recT/float64(tdm.TotalCycles)),
			f2(recT/float64(fafRaw.TotalCycles)),
			f2(recT/float64(fafDedup.TotalCycles)),
			f2(float64(fafRaw.TotalCycles)/float64(fafDedup.TotalCycles)))
	}
	rep.AddNote("paper: Fafnir no-dedup 3.1/6.7/12.3x, with dedup 9.9/15.4/21.3x; TensorDIMM ~1/15x of RecNMP")
	return rep, nil
}

// Fig15 reproduces the memory-access savings of batch deduplication and the
// resulting DRAM energy savings.
func Fig15() (*Report, error) {
	w := PaperWorkload()
	model := energy.DDR4()
	rep := &Report{
		ID:     "fig15",
		Title:  "memory accesses after eliminating redundant accesses",
		Header: []string{"batch", "accesses (raw)", "accesses (dedup)", "savings", "accesses/leaf input", "energy savings"},
	}
	const trials = 8
	for _, n := range []int{8, 16, 32} {
		var unique, total int
		for s := int64(0); s < trials; s++ {
			b, err := w.Batch(n, 100+s)
			if err != nil {
				return nil, err
			}
			u, t, _ := dedupStats(b)
			unique += u
			total += t
		}
		unique /= trials
		total /= trials
		// Leaf inputs: 32 ranks feed 16 leaf PEs with two inputs each.
		perInput := float64(unique) / 32.0
		sav := energy.AccessSavings(total, unique)
		// Energy ratio follows access counts (activates and bursts scale
		// with reads for random single-vector accesses).
		eSave := model.Savings(
			energy.Counts{Activates: uint64(total), Bursts: uint64(total) * 8},
			energy.Counts{Activates: uint64(unique), Bursts: uint64(unique) * 8},
		)
		rep.AddRow(itoa(n), itoa(total), itoa(unique), pct(sav), f1(perInput), pct(eSave))
	}
	rep.AddNote("paper: 34%%, 43%%, 58%% access savings for batches 8, 16, 32")
	rep.AddNote("accesses per leaf input stay below the batch size (Fig. 15's per-input view)")
	return rep, nil
}

// Table5 reports the FPGA resource utilization.
func Table5() (*Report, error) {
	rep := &Report{
		ID:     "table5",
		Title:  "FPGA (XCVU9P) resource utilization (published)",
		Header: []string{"unit", "LUT %", "LUTRAM %", "FF %", "BRAM %"},
	}
	for _, row := range hwmodel.TableV() {
		rep.AddRow(row.Name, f2(row.LUTPct), f2(row.LUTRAMPct), f2(row.FFPct), f2(row.BRAMPct))
	}
	rep.AddNote("published constants; no FPGA flow in this reproduction")
	return rep, nil
}

// Table6 reports the ASIC area/power model and derived system totals.
func Table6() (*Report, error) {
	a := hwmodel.TableVI()
	rep := &Report{
		ID:     "table6",
		Title:  "7 nm ASIC area and power",
		Header: []string{"unit", "area mm^2", "power mW"},
	}
	rep.AddRow("PE", f2(a.PEAreaMM2), "-")
	rep.AddRow("leaf PE (with SpMV multipliers)", f2(a.LeafPEAreaMM2), "-")
	rep.AddRow("DIMM/rank node (7 PEs)", f2(a.DIMMRankNodeAreaMM2), f2(a.DIMMRankNodePowerMW))
	rep.AddRow("channel node (3 PEs)", f2(a.ChannelNodeAreaMM2), f2(a.ChannelNodePowerMW))
	rep.AddRow("full system (4+1 nodes)", f2(a.SystemArea(4, 1)), f2(a.SystemPowerMW(4, 1)))
	rep.AddRow("RecNMP PU per DIMM (40 nm)", f2(a.RecNMPPUAreaMM2), f2(a.RecNMPPUPowerMW))
	rep.AddNote("a DDR4 DIMM draws ~%.0f W; Fafnir adds %.1f mW per four DIMMs", a.DDR4DIMMPowerW, a.DIMMRankNodePowerMW)
	tree, err := fafnir.NewTree(fafnir.Default())
	if err != nil {
		return nil, err
	}
	rep.AddNote("%s", hwmodel.DescribeTree(tree, a))
	return rep, nil
}

// Fig16 reports the power breakdowns.
func Fig16() (*Report, error) {
	rep := &Report{
		ID:     "fig16",
		Title:  "power breakdown (FPGA dynamic; ASIC PE distribution)",
		Header: []string{"unit", "component", "share"},
	}
	for _, p := range hwmodel.Fig16a() {
		for _, s := range p.Breakdown {
			rep.AddRow(fmt.Sprintf("%s (%.2f W)", p.Name, p.TotalW), s.Component, pct(s.Fraction))
		}
	}
	for _, s := range hwmodel.Fig16b() {
		rep.AddRow("ASIC PE", s.Component, pct(s.Fraction))
	}
	rep.AddNote("uniform PE distribution prevents hot spots (paper Fig. 16b)")
	return rep, nil
}
