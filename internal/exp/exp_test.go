package exp

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"abl-cache", "abl-energy", "abl-fanin", "abl-hbm", "abl-interactive",
		"abl-load", "abl-occupancy", "abl-page", "abl-scaleout", "abl-skew",
		"app-graph", "app-solver",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig3", "fig6", "fig9",
		"table1", "table4", "table5", "table6",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 7)
	s := r.String()
	if !strings.Contains(s, "== x: t ==") || !strings.Contains(s, "hello 7") {
		t.Fatalf("render: %q", s)
	}
}

// cell parses a table cell as float, stripping a trailing %.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	rep, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows %v", rep.Rows)
	}
	// Unique fraction falls as the batch grows (more sharing).
	prev := 101.0
	for _, row := range rep.Rows {
		u := cell(t, row[3])
		if u >= prev {
			t.Fatalf("unique %% not decreasing: %v", rep.Rows)
		}
		if u < 20 || u > 95 {
			t.Fatalf("unique %% implausible: %v", u)
		}
		prev = u
	}
}

func TestTable1Shape(t *testing.T) {
	rep, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows %v", rep.Rows)
	}
	// Model buffers double with batch size.
	b8 := cell(t, rep.Rows[0][1])
	b16 := cell(t, rep.Rows[1][1])
	b32 := cell(t, rep.Rows[2][1])
	if b16 < 1.9*b8 || b32 < 1.9*b16 {
		t.Fatalf("buffers not ~linear: %v %v %v", b8, b16, b32)
	}
}

func TestTable4Shape(t *testing.T) {
	rep, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows %v", rep.Rows)
	}
	if rep.Rows[4][1] != "28" {
		t.Fatalf("critical path row %v", rep.Rows[4])
	}
}

func TestFig11Shape(t *testing.T) {
	rep, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows %v", rep.Rows)
	}
	get := func(design string) (mem, comp, total float64) {
		for _, row := range rep.Rows {
			if strings.HasPrefix(row[0], design) {
				return cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
			}
		}
		t.Fatalf("design %q missing", design)
		return 0, 0, 0
	}
	bMem, _, bTot := get("Baseline")
	tMem, tComp, tTot := get("TensorDIMM")
	rMem, _, _ := get("RecNMP")
	fMem, fComp, fTot := get("Fafnir")

	// RecNMP and Fafnir memory identical (same layout, same parallelism).
	if rMem != fMem {
		t.Fatalf("RecNMP mem %v != Fafnir mem %v", rMem, fMem)
	}
	// TensorDIMM memory slower (row-buffer hostility).
	if tMem <= fMem {
		t.Fatalf("TensorDIMM mem %v not above Fafnir %v", tMem, fMem)
	}
	// TensorDIMM compute ~2.5x Fafnir's (pipelined vs parallel tree).
	if ratio := tComp / fComp; ratio < 1.5 || ratio > 4 {
		t.Fatalf("TensorDIMM/Fafnir compute ratio %v outside [1.5,4]", ratio)
	}
	// Fafnir fastest overall; baseline and TensorDIMM slower.
	if !(fTot < bTot && fTot < tTot) {
		t.Fatalf("Fafnir total %v not fastest (baseline %v, tensordimm %v)", fTot, bTot, tTot)
	}
	if bMem <= fMem {
		t.Fatalf("baseline memory %v not above Fafnir %v (channel contention)", bMem, fMem)
	}
}

func TestFig13Shape(t *testing.T) {
	rep, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows %v", rep.Rows)
	}
	prevDedup := 0.0
	for _, row := range rep.Rows {
		td := cell(t, row[1])
		raw := cell(t, row[2])
		dedup := cell(t, row[3])
		extra := cell(t, row[4])
		if td >= 1 {
			t.Fatalf("TensorDIMM %v not slower than RecNMP", td)
		}
		if raw <= 1 || dedup <= raw {
			t.Fatalf("Fafnir speedups wrong: raw %v dedup %v", raw, dedup)
		}
		if extra <= 1 {
			t.Fatalf("dedup extra %v", extra)
		}
		if dedup <= prevDedup {
			t.Fatalf("speedup not growing with batch: %v", rep.Rows)
		}
		prevDedup = dedup
	}
}

func TestFig15Shape(t *testing.T) {
	rep, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, row := range rep.Rows {
		sav := cell(t, row[3])
		if sav <= prev {
			t.Fatalf("savings not growing with batch: %v", rep.Rows)
		}
		if sav < 20 || sav > 80 {
			t.Fatalf("savings %v outside the paper's regime", sav)
		}
		// Per-leaf-input accesses below batch size.
		batchSize := cell(t, row[0])
		perInput := cell(t, row[4])
		if perInput >= batchSize {
			t.Fatalf("accesses per leaf input %v not below batch %v", perInput, batchSize)
		}
		prev = sav
	}
}

func TestFig9Shape(t *testing.T) {
	rep, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		mergeIters := cell(t, row[4])
		v := cell(t, row[1])
		if v == 2048 && mergeIters > 2 {
			t.Fatalf("V=2048 row needs %v merge iterations: %v", mergeIters, row)
		}
	}
}

func TestTables5and6AndFig16(t *testing.T) {
	for _, id := range []string{"table5", "table6", "fig16"} {
		rep, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rep.Rows) == 0 {
			t.Fatalf("%s empty", id)
		}
	}
}

// TestFig12And14Shapes is the heavyweight end-to-end check; it validates the
// headline claims of both figures.
func TestFig12And14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment sweep")
	}
	rep, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1]
	recSp := cell(t, last[3])
	fafSp := cell(t, last[4])
	ideal := cell(t, last[5])
	if fafSp <= recSp {
		t.Fatalf("Fafnir speedup %v not above RecNMP %v at 32 ranks", fafSp, recSp)
	}
	if ideal < fafSp {
		t.Fatalf("Fafnir %v exceeds ideal %v", fafSp, ideal)
	}
	if fafSp/ideal < 0.9 {
		t.Fatalf("Fafnir %v not tracking ideal %v", fafSp, ideal)
	}

	rep14, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	minSp, maxSp := 1e9, 0.0
	for _, row := range rep14.Rows {
		sp := cell(t, row[5])
		if sp < minSp {
			minSp = sp
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	if minSp < 1.0 {
		t.Fatalf("Fafnir loses an SpMV workload: min speedup %v", minSp)
	}
	if maxSp < 2 {
		t.Fatalf("max SpMV speedup %v too small", maxSp)
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy ablation sweep")
	}
	// Occupancy bound holds at every capacity.
	occ, err := AblOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range occ.Rows {
		if row[3] != "yes" {
			t.Fatalf("occupancy bound violated: %v", row)
		}
	}
	// Closed page hurts TensorDIMM's memory time and kills all row hits.
	page, err := AblPagePolicy()
	if err != nil {
		t.Fatal(err)
	}
	var openTD, closedTD float64
	for _, row := range page.Rows {
		if row[0] == "TensorDIMM" && row[1] == "open" {
			openTD = cell(t, row[2])
		}
		if row[0] == "TensorDIMM" && row[1] == "closed" {
			closedTD = cell(t, row[2])
			if cell(t, row[3]) != 0 {
				t.Fatalf("closed page recorded row hits: %v", row)
			}
		}
	}
	if closedTD <= openTD {
		t.Fatalf("closed page not slower for TensorDIMM: %v vs %v", closedTD, openTD)
	}
	// Interactive beats batch for one query, loses for many.
	inter, err := AblInteractive()
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, inter.Rows[0][3])
	last := cell(t, inter.Rows[len(inter.Rows)-1][3])
	if first >= 1 {
		t.Fatalf("interactive not faster for one query: ratio %v", first)
	}
	if last <= 1 {
		t.Fatalf("batching not faster for many queries: ratio %v", last)
	}
	// HBM cuts the gather time at equal batch size.
	hbm, err := AblHBM()
	if err != nil {
		t.Fatal(err)
	}
	if ddr, hb := cell(t, hbm.Rows[1][2]), cell(t, hbm.Rows[3][2]); hb >= ddr {
		t.Fatalf("HBM memory time %v not below DDR4 %v", hb, ddr)
	}
}

func TestMarkdownRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	r.AddNote("n")
	md := r.Markdown()
	for _, want := range []string{"## x: t", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFig12Geometry(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 8, 16, 32} {
		cfg := fig12Geometry(ranks)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if cfg.TotalRanks() != ranks {
			t.Fatalf("ranks=%d: geometry has %d", ranks, cfg.TotalRanks())
		}
	}
}

// TestAllExperimentsRun executes every registered experiment once end to
// end (concurrently, via RunAll): no runner may fail or produce an empty
// table, and the returned order must be ID order regardless of scheduling.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	reports, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(reports) != len(ids) {
		t.Fatalf("RunAll returned %d of %d reports", len(reports), len(ids))
	}
	for i, rep := range reports {
		if rep.ID != ids[i] {
			t.Fatalf("reports not in ID order: position %d is %s, want %s", i, rep.ID, ids[i])
		}
	}
	// Concurrent scheduling must not leak into report contents: fully
	// deterministic experiments re-run serially must match the sweep.
	for _, id := range []string{"fig9", "table1", "table5"} {
		serial, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		i := sort.SearchStrings(ids, id)
		if !reflect.DeepEqual(reports[i], serial) {
			t.Fatalf("%s: RunAll report differs from a serial run", id)
		}
	}
	for _, rep := range reports {
		if len(rep.Rows) == 0 {
			t.Fatalf("%s produced no rows", rep.ID)
		}
		for _, row := range rep.Rows {
			if len(row) != len(rep.Header) {
				t.Fatalf("%s row width %d != header %d", rep.ID, len(row), len(rep.Header))
			}
		}
		if rep.String() == "" || rep.Markdown() == "" {
			t.Fatalf("%s renders empty", rep.ID)
		}
	}
}
