package exp

import (
	"fmt"

	"fafnir/internal/batch"
	"fafnir/internal/embedding"
	"fafnir/internal/fafnir"
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

func init() {
	register("fig6", Fig6)
}

// Fig6 reproduces the paper's worked batch-processing example: four queries
// over eight tables, compiled to unique accesses and pushed through a
// three-level tree, reporting each PE's reduce/forward/merge activity. The
// run is fully functional — every root output is checked against the golden
// reference before the table is emitted.
func Fig6() (*Report, error) {
	b := embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(11, 44, 32, 83, 77)}, // a
			{Indices: header.NewIndexSet(50, 32, 83, 26)},     // b
			{Indices: header.NewIndexSet(50, 44, 11, 94, 26)}, // c
			{Indices: header.NewIndexSet(83, 77)},             // d
		},
		Op: tensor.OpSum,
	}
	plan := batch.Build(b, true)

	cfg := fafnir.Default()
	cfg.NumRanks = 8
	cfg.BatchCapacity = 4
	cfg.VectorDim = 4
	tree, err := fafnir.NewTree(cfg)
	if err != nil {
		return nil, err
	}
	store := embedding.MustStore(100, 4, 77)

	rankIn := map[int][]fafnir.Entry{}
	for _, acc := range plan.Accesses {
		r := int(acc.Index) % 10
		rankIn[r] = append(rankIn[r], fafnir.Entry{
			Value:  store.MustVector(acc.Index),
			Header: acc.LeafHeader(),
		})
	}

	rep := &Report{
		ID:     "fig6",
		Title:  "the paper's batch-processing example, per-PE activity",
		Header: []string{"PE", "level", "reduces", "forwards", "merged", "outputs"},
	}

	outputs := map[*fafnir.PENode][]fafnir.Entry{}
	var eval func(n *fafnir.PENode) ([]fafnir.Entry, error)
	eval = func(n *fafnir.PENode) ([]fafnir.Entry, error) {
		if out, ok := outputs[n]; ok {
			return out, nil
		}
		var inA, inB []fafnir.Entry
		var err error
		if n.IsLeaf() {
			for _, r := range n.RanksA {
				inA = append(inA, rankIn[r]...)
			}
			for _, r := range n.RanksB {
				inB = append(inB, rankIn[r]...)
			}
			if inA, _, err = fafnir.SelfMerge(b.Op, inA); err != nil {
				return nil, err
			}
			if inB, _, err = fafnir.SelfMerge(b.Op, inB); err != nil {
				return nil, err
			}
		} else {
			if inA, err = eval(n.Left); err != nil {
				return nil, err
			}
			if n.Right != nil {
				if inB, err = eval(n.Right); err != nil {
					return nil, err
				}
			}
		}
		out, st, err := fafnir.ProcessPE(b.Op, inA, inB)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("PE%d", n.ID), itoa(n.Level),
			itoa(st.Reduces), itoa(st.Forwards), itoa(st.MergedDuplicates), itoa(st.Outputs))
		outputs[n] = out
		return out, nil
	}
	rootOut, err := eval(tree.Root())
	if err != nil {
		return nil, err
	}

	// Verify every query resolved correctly before reporting.
	golden := b.MustGolden(store)
	resolved := 0
	for _, out := range rootOut {
		if !out.Header.Complete() {
			continue
		}
		for _, qi := range plan.QueriesFor(out.Header.Indices) {
			if !out.Value.Equal(golden[qi]) {
				return nil, fmt.Errorf("fig6: query %d mismatches golden", qi)
			}
			resolved++
		}
	}
	if resolved != len(b.Queries) {
		return nil, fmt.Errorf("fig6: resolved %d of %d queries", resolved, len(b.Queries))
	}

	rep.AddNote("host rearrangement: %d raw accesses -> %d unique (%.0f%% saved)",
		plan.TotalAccesses(), plan.NumAccesses(), 100*plan.Savings())
	rep.AddNote("all four query outputs verified against the golden reference")
	rep.AddNote("queries a-d include the same-rank pair (44, 94) and the shared (32, 83) value")
	return rep, nil
}
