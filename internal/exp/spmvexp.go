package exp

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/twostep"
)

func init() {
	register("fig9", Fig9)
	register("fig14", Fig14)
}

// Fig9 reproduces the SpMV iteration/round/merge counts for matrices with up
// to 20 million columns at vector sizes 1024 and 2048.
func Fig9() (*Report, error) {
	rep := &Report{
		ID:     "fig9",
		Title:  "SpMV iterations, rounds, and merges vs matrix columns",
		Header: []string{"columns", "V", "iterations", "multiply rounds", "merge iterations", "merges"},
	}
	cols := []int{1 << 10, 1 << 14, 1 << 18, 1 << 21, 5_000_000, 10_000_000, 20_000_000}
	for _, v := range []int{1024, 2048} {
		for _, c := range cols {
			p, err := spmv.NewPlan(c, v)
			if err != nil {
				return nil, err
			}
			rep.AddRow(itoa(c), itoa(v), itoa(p.Iterations()), itoa(p.MultiplyRounds()),
				itoa(p.MergeIterations()), itoa(p.TotalMerges()))
		}
	}
	rep.AddNote("paper: even beyond 5M columns no more than two merge stages at V=2048")
	return rep, nil
}

// spmvWorkload is one Fig. 14 matrix.
type spmvWorkload struct {
	name string
	m    *sparse.LIL
}

// fig14Suite builds the synthetic stand-ins for the paper's scientific
// (matrix-inversion/banded) and graph workloads: small matrices need no
// merge iterations (Fafnir's best case), large ones are merge-heavy
// (Two-Step's best case).
func fig14Suite() []spmvWorkload {
	return []spmvWorkload{
		{"SC-small (banded 2k, dense band)", sparse.Banded(2000, 96, 41)},
		{"SC-medium (banded 8k)", sparse.Banded(8000, 64, 42)},
		{"SC-large (banded 32k)", sparse.Banded(32000, 32, 43)},
		{"GR-small (powerlaw 2k)", sparse.PowerLawGraph(2000, 48, 44)},
		{"GR-medium (powerlaw 8k)", sparse.PowerLawGraph(8000, 16, 45)},
		{"GR-large (powerlaw 32k)", sparse.PowerLawGraph(32000, 8, 46)},
		{"RO (sparse uniform 32k)", sparse.RandomUniform(32000, 32000, 2e-4, 47)},
	}
}

// Fig14 reproduces the SpMV speedup of Fafnir over the Two-Step algorithm
// across the workload suite.
func Fig14() (*Report, error) {
	fcfg := spmv.Default()
	faf, err := spmv.NewEngine(fcfg)
	if err != nil {
		return nil, err
	}
	ts, err := twostep.NewEngine(twostep.Default())
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "fig14",
		Title:  "SpMV speedup of Fafnir over Two-Step",
		Header: []string{"workload", "nnz", "merge iters", "Fafnir cycles", "Two-Step cycles", "speedup"},
	}
	for _, wl := range fig14Suite() {
		x := sparse.DenseVector(wl.m.Cols, 7)
		fres, err := faf.Multiply(wl.m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, fmt.Errorf("%s (fafnir): %w", wl.name, err)
		}
		tres, err := ts.Multiply(wl.m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, fmt.Errorf("%s (twostep): %w", wl.name, err)
		}
		if !fres.Y.Equal(tres.Y) {
			return nil, fmt.Errorf("%s: engines disagree functionally", wl.name)
		}
		rep.AddRow(wl.name, itoa(wl.m.NNZ()), itoa(fres.Plan.MergeIterations()),
			fmt.Sprintf("%d", fres.TotalCycles), fmt.Sprintf("%d", tres.TotalCycles),
			f2(float64(tres.TotalCycles)/float64(fres.TotalCycles)))
	}
	rep.AddNote("paper: up to 4.6x on small/sparse workloads, >=1.1x on merge-heavy ones")
	rep.AddNote("Fafnir wins iteration 0 (no decompression); Two-Step wins merge iterations")
	return rep, nil
}
