package exp

import (
	"fmt"

	"fafnir/internal/batch"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/energy"
	"fafnir/internal/fafnir"
	"fafnir/internal/hwmodel"
	"fafnir/internal/memmap"
	"fafnir/internal/recnmp"
	"fafnir/internal/scale"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

func init() {
	register("abl-fanin", AblFanIn)
	register("abl-page", AblPagePolicy)
	register("abl-cache", AblCacheVsDedup)
	register("abl-skew", AblSkew)
	register("abl-occupancy", AblOccupancy)
	register("abl-interactive", AblInteractive)
	register("abl-hbm", AblHBM)
	register("abl-load", AblLoad)
	register("abl-scaleout", AblScaleOut)
	register("abl-energy", AblEnergy)
}

// AblFanIn sweeps the leaf fan-in (the paper's 1PE:1R, 1PE:2R, 1PE:4R
// packaging options): fewer PEs save area but deepen each leaf's serial
// input streams.
func AblFanIn() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-fanin",
		Title:  "ablation: leaf fan-in (ranks per leaf PE)",
		Header: []string{"fan-in", "PEs", "latency us", "max occupancy"},
	}
	b, err := w.Batch(32, 70)
	if err != nil {
		return nil, err
	}
	layout := w.Layout()
	store := w.Store(layout)
	for _, fan := range []int{1, 2, 4} {
		cfg := fafnir.Default()
		cfg.LeafFanIn = fan
		eng, err := fafnir.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		res, err := eng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("1PE:%dR", fan), itoa(eng.Tree().NumPEs()),
			f2(micros(res.TotalCycles)), itoa(res.MaxOccupancy))
	}
	rep.AddNote("the paper fabricates 1PE:2R; 1PE:1R doubles the PE count for marginal latency")
	return rep, nil
}

// AblPagePolicy compares open-page (the paper's assumption) against a
// closed-page controller for Fafnir and TensorDIMM: TensorDIMM barely
// changes (its accesses rarely hit anyway), while row-major designs lose
// their burst locality.
func AblPagePolicy() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-page",
		Title:  "ablation: open vs closed row-buffer policy",
		Header: []string{"design", "policy", "memory us", "row hits"},
	}
	b, err := w.Batch(32, 71)
	if err != nil {
		return nil, err
	}
	for _, closed := range []bool{false, true} {
		mcfg := w.Mem
		mcfg.ClosedPage = closed
		policy := "open"
		if closed {
			policy = "closed"
		}
		layout := memmap.Uniform(mcfg, 512, 32, w.RowsPer)
		store := w.Store(layout)

		eng, err := newEngines(Workload{Mem: mcfg, RowsPer: w.RowsPer, Q: w.Q, ZipfS: w.ZipfS, Seed: w.Seed}, 32)
		if err != nil {
			return nil, err
		}
		mem := dram.MustSystem(mcfg)
		fres, err := eng.faf.TimedLookup(store, layout, mem, b, true)
		if err != nil {
			return nil, err
		}
		rep.AddRow("Fafnir", policy, f2(micros(fres.MemCycles)),
			itoa(int(mem.Stats().Counter("dram.row_hits"))))

		mem2 := dram.MustSystem(mcfg)
		tres, err := eng.tdm.TimedLookup(store, mem2, b)
		if err != nil {
			return nil, err
		}
		rep.AddRow("TensorDIMM", policy, f2(micros(tres.MemCycles)),
			itoa(int(mem2.Stats().Counter("dram.row_hits"))))
	}
	rep.AddNote("open-page burst locality is what row-major whole-vector reads exploit")
	return rep, nil
}

// AblCacheVsDedup contrasts RecNMP's cache sizes with Fafnir's cache-free
// deduplication (Section III-E vs Section IV-A).
func AblCacheVsDedup() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-cache",
		Title:  "ablation: RecNMP cache size vs Fafnir dedup",
		Header: []string{"design", "mechanism", "DRAM reads", "hit/save rate", "latency us"},
	}
	layout := w.Layout()
	store := w.Store(layout)
	// A long run so caches warm up: 16 batches of 32.
	b, err := w.Batch(512, 72)
	if err != nil {
		return nil, err
	}
	raw := b.TotalAccesses()

	for _, cacheKB := range []int{0, 32, 128, 512} {
		cfg := recnmp.Default()
		cfg.CacheBytes = cacheKB << 10
		eng, err := recnmp.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		res, err := eng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b)
		if err != nil {
			return nil, err
		}
		rep.AddRow("RecNMP", fmt.Sprintf("%d KB cache/rank", cacheKB),
			itoa(res.MemoryReads), pct(eng.CacheHitRate()), f2(micros(res.TotalCycles)))
	}

	fcfg := fafnir.Default()
	feng, err := fafnir.NewEngine(fcfg)
	if err != nil {
		return nil, err
	}
	fres, err := feng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
	if err != nil {
		return nil, err
	}
	rep.AddRow("Fafnir", "batch dedup (no cache)",
		itoa(fres.MemoryReads), pct(1-float64(fres.MemoryReads)/float64(raw)), f2(micros(fres.TotalCycles)))
	rep.AddNote("the paper: caches peak near 50%% hit rate at 128 KB; dedup needs no storage")
	return rep, nil
}

// AblSkew sweeps the index-popularity skew: the dedup advantage exists only
// when batches share indices.
func AblSkew() (*Report, error) {
	rep := &Report{
		ID:     "abl-skew",
		Title:  "ablation: popularity skew vs dedup benefit",
		Header: []string{"distribution", "unique %", "Fafnir raw us", "Fafnir dedup us", "dedup gain"},
	}
	layout := PaperWorkload().Layout()
	store := PaperWorkload().Store(layout)
	feng, err := fafnir.NewEngine(fafnir.Default())
	if err != nil {
		return nil, err
	}
	for _, s := range []float64{0, 1.1, 1.3, 1.6, 2.0} {
		w := PaperWorkload()
		w.ZipfS = s
		label := fmt.Sprintf("zipf s=%.1f", s)
		var b embedding.Batch
		if s == 0 {
			label = "uniform"
			gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
				NumQueries: 32, QuerySize: 16, Rows: layout.TotalRows(), Seed: 73,
			})
			if err != nil {
				return nil, err
			}
			b = gen.Batch(tensor.OpSum)
		} else {
			var err error
			b, err = w.Batch(32, 73)
			if err != nil {
				return nil, err
			}
		}
		plan := batch.Build(b, true)
		raw, err := feng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, false)
		if err != nil {
			return nil, err
		}
		dedup, err := feng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
		if err != nil {
			return nil, err
		}
		rep.AddRow(label, pct(1-plan.Savings()),
			f2(micros(raw.TotalCycles)), f2(micros(dedup.TotalCycles)),
			f2(float64(raw.TotalCycles)/float64(dedup.TotalCycles)))
	}
	rep.AddNote("uniform batches share almost nothing; production-like skew is where dedup pays")
	return rep, nil
}

// AblOccupancy validates the min(nm+n+m, B) buffer bound across batch
// capacities: the observed maximum PE occupancy must stay within B.
func AblOccupancy() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-occupancy",
		Title:  "ablation: PE occupancy vs batch capacity (buffer bound)",
		Header: []string{"B", "max occupancy", "bound min(nm+n+m, B)", "within bound"},
	}
	layout := w.Layout()
	store := w.Store(layout)
	for _, capacity := range []int{4, 8, 16, 32, 64} {
		cfg := fafnir.Default()
		cfg.BatchCapacity = capacity
		eng, err := fafnir.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		b, err := w.Batch(capacity, int64(74+capacity))
		if err != nil {
			return nil, err
		}
		res, err := eng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
		if err != nil {
			return nil, err
		}
		ok := "yes"
		if err := fafnir.CheckOccupancyBound(&res.Result, capacity); err != nil {
			ok = "NO"
		}
		rep.AddRow(itoa(capacity), itoa(res.MaxOccupancy), itoa(capacity), ok)
	}
	rep.AddNote("Section IV-B: merging keeps every PE's outputs within the batch size")
	return rep, nil
}

// AblInteractive compares the interactive (comparison-free, one query at a
// time) mode against the batch path for latency-sensitive serving.
func AblInteractive() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-interactive",
		Title:  "ablation: interactive vs batch processing",
		Header: []string{"queries", "interactive us", "batch us", "batch advantage"},
	}
	layout := w.Layout()
	store := w.Store(layout)
	eng, err := fafnir.NewEngine(fafnir.Default())
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1, 4, 16, 64} {
		b, err := w.Batch(n, int64(75+n))
		if err != nil {
			return nil, err
		}
		inter, err := eng.InteractiveLookup(store, layout, dram.MustSystem(w.Mem), b)
		if err != nil {
			return nil, err
		}
		batched, err := eng.TimedLookup(store, layout, dram.MustSystem(w.Mem), b, true)
		if err != nil {
			return nil, err
		}
		rep.AddRow(itoa(n), f2(micros(inter.TotalCycles)), f2(micros(batched.TotalCycles)),
			f2(float64(inter.TotalCycles)/float64(batched.TotalCycles)))
	}
	rep.AddNote("interactive mode wins single queries (no header compares); batching wins throughput")
	return rep, nil
}

// AblHBM runs the paper's future-work integration: leaf PEs attached to the
// 32 pseudo channels of an HBM2 stack instead of DDR4 ranks.
func AblHBM() (*Report, error) {
	rep := &Report{
		ID:     "abl-hbm",
		Title:  "ablation: DDR4 ranks vs HBM2 pseudo channels (future work)",
		Header: []string{"memory", "batch", "memory us", "total us"},
	}
	for _, mk := range []struct {
		name string
		cfg  dram.Config
	}{
		{"DDR4 32 ranks", dram.DDR4()},
		{"HBM2 32 pseudo-ch", dram.HBM2()},
	} {
		layout := memmap.Uniform(mk.cfg, 512, 32, 1<<17)
		store := embedding.MustStore(layout.TotalRows(), 128, 1)
		cfg := fafnir.Default()
		cfg.DRAMClockMHz = mk.cfg.ClockMHz
		eng, err := fafnir.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		for _, n := range []int{8, 32} {
			gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
				NumQueries: n, QuerySize: 16, Rows: layout.TotalRows(),
				Dist: embedding.Zipf, ZipfS: 1.3, Seed: 76,
			})
			if err != nil {
				return nil, err
			}
			b := gen.Batch(tensor.OpSum)
			res, err := eng.TimedLookup(store, layout, dram.MustSystem(mk.cfg), b, true)
			if err != nil {
				return nil, err
			}
			rep.AddRow(mk.name, itoa(n), f2(micros(res.MemCycles)), f2(micros(res.TotalCycles)))
		}
	}
	rep.AddNote("HBM2's per-pseudo-channel buses and higher clock cut the gather time")
	return rep, nil
}

// AblLoad sweeps the offered arrival rate of 16-query batches through the
// Fafnir tree and reports the queueing curve: latency stays near the service
// time until the arrival interval approaches it, then the queue builds and
// latency inflates while throughput saturates.
func AblLoad() (*Report, error) {
	w := PaperWorkload()
	rep := &Report{
		ID:     "abl-load",
		Title:  "ablation: offered load vs latency (queueing curve)",
		Header: []string{"arrival interval (x service)", "avg latency us", "max queue", "utilization", "queries/ms"},
	}
	layout := w.Layout()
	store := w.Store(layout)
	eng, err := fafnir.NewEngine(fafnir.Default())
	if err != nil {
		return nil, err
	}
	var batches []embedding.Batch
	for i := 0; i < 24; i++ {
		b, err := w.Batch(16, int64(80+i))
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
	}
	probe, err := eng.OfferedLoad(store, layout, w.Mem, batches[:1], 1)
	if err != nil {
		return nil, err
	}
	svc := probe.AvgService
	for _, mult := range []float64{4, 2, 1.2, 1.0, 0.8, 0.5} {
		interval := sim.Cycle(svc * mult)
		if interval < 1 {
			interval = 1
		}
		res, err := eng.OfferedLoad(store, layout, w.Mem, batches, interval)
		if err != nil {
			return nil, err
		}
		rep.AddRow(f2(mult), f2(res.AvgLatency/200), itoa(res.MaxQueueDepth),
			f2(res.Utilization), f1(res.QueriesPerMillisecond))
	}
	rep.AddNote("service time per 16-query batch: %.2f us", svc/200)
	return rep, nil
}

// AblScaleOut compares one 32-rank tree against sharded deployments with the
// same total memory width: sharding brings back host-side partial combining
// (the spatial-locality cost the single tree eliminates).
func AblScaleOut() (*Report, error) {
	rep := &Report{
		ID:     "abl-scaleout",
		Title:  "ablation: one tree vs sharded trees (same total ranks)",
		Header: []string{"deployment", "shard us", "combine us", "total us", "partials"},
	}
	const rows = 1 << 22
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 32, QuerySize: 16, Rows: rows, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 90,
	})
	if err != nil {
		return nil, err
	}
	b := gen.Batch(tensor.OpSum)
	for _, shards := range []int{1, 2, 4} {
		cfg := scale.Default()
		cfg.Shards = shards
		cfg.RanksPerShard = 32 / shards
		sys, err := scale.New(cfg, rows)
		if err != nil {
			return nil, err
		}
		res, err := sys.Lookup(b)
		if err != nil {
			return nil, err
		}
		rep.AddRow(fmt.Sprintf("%d x %d ranks", shards, 32/shards),
			f2(micros(res.ShardCycles)), f2(micros(res.CombineCycles)),
			f2(micros(res.TotalCycles)), itoa(res.Partials))
	}
	rep.AddNote("the single tree needs no host combine: full reduction at NDP regardless of placement")
	return rep, nil
}

// AblEnergy totals memory plus NDP energy per batch for Fafnir (with and
// without dedup) and RecNMP, combining the DRAM event counts with the
// Table VI power figures. It makes the paper's energy argument end to end:
// dedup removes DRAM events, and Fafnir's NDP logic draws an order of
// magnitude less power than RecNMP's per-DIMM processing units.
func AblEnergy() (*Report, error) {
	w := PaperWorkload()
	model := energy.DDR4()
	asic := hwmodel.TableVI()
	rep := &Report{
		ID:     "abl-energy",
		Title:  "ablation: total energy per batch (DRAM + NDP)",
		Header: []string{"design", "DRAM events (act/burst)", "DRAM nJ", "NDP nJ", "total nJ"},
	}
	eng, err := newEngines(w, 32)
	if err != nil {
		return nil, err
	}
	b, err := w.Batch(32, 95)
	if err != nil {
		return nil, err
	}

	row := func(name string, mem *dram.System, runtime sim.Cycle, ndpMW float64) {
		counts := energy.Counts{
			Activates: mem.Stats().Counter("dram.row_misses") + mem.Stats().Counter("dram.row_conflicts"),
			Bursts:    mem.Stats().Counter("dram.bursts"),
			Ranks:     w.Mem.TotalRanks(),
			Runtime:   runtime,
			ClockMHz:  200,
		}
		dramPJ := model.DynamicPJ(counts)
		ndpPJ := energy.AcceleratorPJ(ndpMW, runtime, 200)
		rep.AddRow(name,
			fmt.Sprintf("%d/%d", counts.Activates, counts.Bursts),
			f2(dramPJ/1000), f2(ndpPJ/1000), f2((dramPJ+ndpPJ)/1000))
	}

	fafMW := asic.SystemPowerMW(4, 1)
	mem1 := eng.mem()
	fres, err := eng.faf.TimedLookup(eng.store, eng.layout, mem1, b, true)
	if err != nil {
		return nil, err
	}
	row("Fafnir (dedup)", mem1, fres.TotalCycles, fafMW)

	mem2 := eng.mem()
	fraw, err := eng.faf.TimedLookup(eng.store, eng.layout, mem2, b, false)
	if err != nil {
		return nil, err
	}
	row("Fafnir (no dedup)", mem2, fraw.TotalCycles, fafMW)

	recMW := asic.RecNMPPUPowerMW * float64(w.Mem.Channels*w.Mem.DIMMsPerChannel)
	mem3 := eng.mem()
	rres, err := eng.rec.TimedLookup(eng.store, eng.layout, mem3, b)
	if err != nil {
		return nil, err
	}
	row("RecNMP (128KB caches)", mem3, rres.TotalCycles, recMW)

	rep.AddNote("NDP power: Fafnir %.1f mW system total; RecNMP %.1f mW (%.1f mW x %d DIMMs)",
		fafMW, recMW, asic.RecNMPPUPowerMW, w.Mem.Channels*w.Mem.DIMMsPerChannel)
	rep.AddNote("paper: memory energy savings track the 34-58%% access savings of Fig. 15")
	return rep, nil
}
