package exp

import (
	"fafnir/internal/dram"
	"fafnir/internal/graph"
	"fafnir/internal/sim"
	"fafnir/internal/solver"
	"fafnir/internal/sparse"
	"fafnir/internal/spmv"
	"fafnir/internal/tensor"
	"fafnir/internal/twostep"
)

func init() {
	register("app-graph", AppGraph)
	register("app-solver", AppSolver)
}

// executors builds matched Fafnir and Two-Step SpMV executors over fresh
// memory systems.
func executors() (faf, ts solver.SpMV, err error) {
	fe, err := spmv.NewEngine(spmv.Default())
	if err != nil {
		return nil, nil, err
	}
	// Each product is timed against a fresh memory state: the executors
	// report per-call service times, not positions on one absolute clock.
	faf = func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := fe.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}
	te, err := twostep.NewEngine(twostep.Default())
	if err != nil {
		return nil, nil, err
	}
	ts = func(m *sparse.LIL, x tensor.Vector) (tensor.Vector, sim.Cycle, error) {
		res, err := te.Multiply(m, x, dram.MustSystem(dram.DDR4()))
		if err != nil {
			return nil, 0, err
		}
		return res.Y, res.TotalCycles, nil
	}
	return faf, ts, nil
}

// AppGraph runs the graph-analytics suite (BFS, PageRank, connected
// components) on a power-law graph with every SpMV on the Fafnir tree and
// on the Two-Step baseline — the application-level view of the paper's
// genericity claim.
func AppGraph() (*Report, error) {
	rep := &Report{
		ID:     "app-graph",
		Title:  "application: graph analytics on the tree (vs Two-Step)",
		Header: []string{"algorithm", "SpMVs", "Fafnir us", "Two-Step us", "speedup"},
	}
	adj := sparse.PowerLawGraph(8192, 8, 50)
	g, err := graph.New(adj)
	if err != nil {
		return nil, err
	}
	faf, ts, err := executors()
	if err != nil {
		return nil, err
	}

	type run struct {
		name          string
		spmvs         int
		fafCyc, tsCyc sim.Cycle
	}
	var runs []run

	bf, err := g.BFS(0, faf)
	if err != nil {
		return nil, err
	}
	bt, err := g.BFS(0, ts)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"BFS", bf.Frontiers, bf.SpMVCycles, bt.SpMVCycles})

	pf, err := g.PageRank(0.85, 1e-4, 100, faf)
	if err != nil {
		return nil, err
	}
	pt, err := g.PageRank(0.85, 1e-4, 100, ts)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"PageRank", pf.Iterations, pf.SpMVCycles, pt.SpMVCycles})

	cf, err := g.ConnectedComponents(faf)
	if err != nil {
		return nil, err
	}
	ct, err := g.ConnectedComponents(ts)
	if err != nil {
		return nil, err
	}
	runs = append(runs, run{"ConnectedComponents", cf.Iterations, cf.SpMVCycles, ct.SpMVCycles})

	for _, r := range runs {
		rep.AddRow(r.name, itoa(r.spmvs), f1(float64(r.fafCyc)/200), f1(float64(r.tsCyc)/200),
			f2(float64(r.tsCyc)/float64(r.fafCyc)))
	}
	rep.AddNote("power-law graph, %d nodes / %d edges; same functional results on both engines", g.Nodes(), g.Edges())
	return rep, nil
}

// AppSolver runs the iterative-solver suite (Jacobi, CG) on an SPD stencil
// system with SpMVs on both accelerators.
func AppSolver() (*Report, error) {
	rep := &Report{
		ID:     "app-solver",
		Title:  "application: iterative solvers on the tree (vs Two-Step)",
		Header: []string{"solver", "iterations", "converged", "Fafnir us", "Two-Step us", "speedup"},
	}
	a := sparse.SymmetricDiagDominant(4096, 2, 51)
	xTrue := sparse.DenseVector(4096, 52)
	b, err := a.MulVec(xTrue)
	if err != nil {
		return nil, err
	}
	faf, ts, err := executors()
	if err != nil {
		return nil, err
	}
	opts := solver.Options{MaxIterations: 300, Tolerance: 1e-2}

	jf, err := solver.Jacobi(a, b, faf, opts)
	if err != nil {
		return nil, err
	}
	jt, err := solver.Jacobi(a, b, ts, opts)
	if err != nil {
		return nil, err
	}
	rep.AddRow("Jacobi", itoa(jf.Iterations), boolStr(jf.Converged),
		f1(float64(jf.SpMVCycles)/200), f1(float64(jt.SpMVCycles)/200),
		f2(float64(jt.SpMVCycles)/float64(jf.SpMVCycles)))

	cf, err := solver.CG(a, b, faf, opts)
	if err != nil {
		return nil, err
	}
	ct, err := solver.CG(a, b, ts, opts)
	if err != nil {
		return nil, err
	}
	rep.AddRow("CG", itoa(cf.Iterations), boolStr(cf.Converged),
		f1(float64(cf.SpMVCycles)/200), f1(float64(ct.SpMVCycles)/200),
		f2(float64(ct.SpMVCycles)/float64(cf.SpMVCycles)))

	rep.AddNote("4096x4096 SPD banded system (discretized-PDE shape); both solvers verified against the known solution")
	return rep, nil
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
