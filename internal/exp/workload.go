package exp

import (
	"fmt"

	"fafnir/internal/batch"
	"fafnir/internal/cpu"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fafnir"
	"fafnir/internal/memmap"
	"fafnir/internal/recnmp"
	"fafnir/internal/sim"
	"fafnir/internal/tensor"
	"fafnir/internal/tensordimm"
)

// Workload fixes the embedding-lookup configuration shared by the
// experiments: the paper's 32-rank DDR4 system, 32 embedding tables of
// 512 B vectors, q=16 indices per query, and a Zipf-skewed index popularity
// calibrated so batch-level index sharing matches the Fig. 3/15 regime.
type Workload struct {
	Mem     dram.Config
	RowsPer int
	Q       int
	ZipfS   float64
	Seed    int64
}

// PaperWorkload returns the default fixture.
func PaperWorkload() Workload {
	return Workload{
		Mem:     dram.DDR4(),
		RowsPer: 1 << 17, // 128k rows per table, 32 tables -> 4M vectors (2 GB)
		Q:       16,
		ZipfS:   1.3,
		Seed:    1,
	}
}

// Layout builds the address layout of the workload.
func (w Workload) Layout() *memmap.Layout {
	return memmap.Uniform(w.Mem, 512, 32, w.RowsPer)
}

// Store builds the synthetic table contents.
func (w Workload) Store(layout *memmap.Layout) *embedding.Store {
	return embedding.MustStore(layout.TotalRows(), 128, uint64(w.Seed))
}

// Batch draws a deterministic batch of n queries.
func (w Workload) Batch(n int, seed int64) (embedding.Batch, error) {
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n,
		QuerySize:  w.Q,
		Rows:       uint64(32 * w.RowsPer),
		Dist:       embedding.Zipf,
		ZipfS:      w.ZipfS,
		Seed:       w.Seed*1000 + seed,
	})
	if err != nil {
		return embedding.Batch{}, err
	}
	return gen.Batch(tensor.OpSum), nil
}

// engines bundles one instance of every lookup engine over a shared memory
// geometry.
type engines struct {
	w      Workload
	layout *memmap.Layout
	store  *embedding.Store
	faf    *fafnir.Engine
	rec    *recnmp.Engine
	tdm    *tensordimm.Engine
	base   *cpu.Engine
}

func newEngines(w Workload, batchCap int) (*engines, error) {
	layout := w.Layout()
	store := w.Store(layout)

	fcfg := fafnir.Default()
	fcfg.NumRanks = w.Mem.TotalRanks()
	fcfg.BatchCapacity = batchCap
	faf, err := fafnir.NewEngine(fcfg)
	if err != nil {
		return nil, fmt.Errorf("exp: fafnir engine: %w", err)
	}
	rec, err := recnmp.NewEngine(recnmp.Default())
	if err != nil {
		return nil, fmt.Errorf("exp: recnmp engine: %w", err)
	}
	tdm, err := tensordimm.NewEngine(tensordimm.Default())
	if err != nil {
		return nil, fmt.Errorf("exp: tensordimm engine: %w", err)
	}
	base, err := cpu.NewEngine(cpu.Default())
	if err != nil {
		return nil, fmt.Errorf("exp: cpu engine: %w", err)
	}
	return &engines{w: w, layout: layout, store: store, faf: faf, rec: rec, tdm: tdm, base: base}, nil
}

func (e *engines) mem() *dram.System { return dram.MustSystem(e.w.Mem) }

// seconds converts PE cycles to seconds at the 200 MHz reporting clock.
func seconds(c sim.Cycle) float64 { return sim.Seconds(c, 200) }

// micros converts PE cycles to microseconds.
func micros(c sim.Cycle) float64 { return seconds(c) * 1e6 }

// dedupStats compiles a batch both ways and reports access counts.
func dedupStats(b embedding.Batch) (unique, total int, savings float64) {
	p := batch.Build(b, true)
	return p.NumAccesses(), p.TotalAccesses(), p.Savings()
}
