package fafnir

// flatPE is one node of the arena-flattened tree: the dense, pointer-free
// mirror of PENode that the hot path iterates. Child, parent, and stats slots
// are all plain indices into engine- or scratch-owned slices, so evaluation
// touches contiguous records instead of chasing *PENode pointers, and the
// scheduler's dependency state (pendInit countdown seeds) lives right next to
// the topology it guards.
type flatPE struct {
	ranksA, ranksB []int // leaf rank assignments (aliases PENode's slices)

	left, right int32 // child node IDs, -1 if absent
	parent      int32 // parent node ID, -1 at the root
	level       int32 // construction level (carried-up nodes keep their own)
	pendInit    int32 // number of children that must finish before this node
	leaf        bool
	kind        NodeKind
}

// flatten builds the dense mirror of t, indexed by PENode.ID. Construction
// order (t.all) is ID order with levels non-decreasing — children always
// precede parents — which the scheduler and the post-hoc stats fold both
// rely on.
func flatten(t *Tree) []flatPE {
	fl := make([]flatPE, t.NumPEs())
	for _, n := range t.all {
		f := &fl[n.ID]
		f.left, f.right, f.parent = -1, -1, -1
		if n.Left != nil {
			f.left = int32(n.Left.ID)
			f.pendInit++
		}
		if n.Right != nil {
			f.right = int32(n.Right.ID)
			f.pendInit++
		}
		if n.Parent != nil {
			f.parent = int32(n.Parent.ID)
		}
		f.level = int32(n.Level)
		f.ranksA, f.ranksB = n.RanksA, n.RanksB
		f.leaf = n.IsLeaf()
		f.kind = n.Kind
	}
	return fl
}
