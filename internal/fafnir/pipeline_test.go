package fafnir

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/sim"
)

func loadBatches(t *testing.T, n int, rows uint64) []embedding.Batch {
	t.Helper()
	out := make([]embedding.Batch, n)
	for i := range out {
		out[i] = genBatch(t, 16, 16, rows, int64(40+i))
	}
	return out
}

func TestOfferedLoadEmptyRejected(t *testing.T) {
	e, store, layout, _ := timedFixture(t, 32)
	if _, err := e.OfferedLoad(store, layout, dram.DDR4(), nil, 100); err == nil {
		t.Fatal("empty offered load accepted")
	}
}

func TestOfferedLoadLightVsHeavy(t *testing.T) {
	e, store, layout, _ := timedFixture(t, 32)
	batches := loadBatches(t, 12, layout.TotalRows())

	// Find the rough service time first.
	probe, err := e.OfferedLoad(store, layout, dram.DDR4(), batches[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	svc := sim.Cycle(probe.AvgService)

	light, err := e.OfferedLoad(store, layout, dram.DDR4(), batches, 4*svc)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := e.OfferedLoad(store, layout, dram.DDR4(), batches, svc/4)
	if err != nil {
		t.Fatal(err)
	}

	// Light load: no queueing — latency ~= service, queue depth 1.
	if light.MaxQueueDepth > 1 {
		t.Fatalf("light load queued: depth %d", light.MaxQueueDepth)
	}
	if light.AvgLatency > 1.5*light.AvgService {
		t.Fatalf("light-load latency %.0f far above service %.0f", light.AvgLatency, light.AvgService)
	}
	// Heavy load: queue builds, latency blows up, utilization ~1.
	if heavy.MaxQueueDepth <= 1 {
		t.Fatalf("heavy load never queued")
	}
	if heavy.AvgLatency <= 2*heavy.AvgService {
		t.Fatalf("heavy-load latency %.0f did not inflate over service %.0f", heavy.AvgLatency, heavy.AvgService)
	}
	if heavy.Utilization < 0.8 {
		t.Fatalf("heavy-load utilization %.2f", heavy.Utilization)
	}
	if light.Utilization >= heavy.Utilization {
		t.Fatalf("utilization ordering wrong: %.2f vs %.2f", light.Utilization, heavy.Utilization)
	}
	// Throughput at saturation beats throughput under light load.
	if heavy.QueriesPerMillisecond <= light.QueriesPerMillisecond {
		t.Fatalf("saturated throughput %.1f not above light %.1f",
			heavy.QueriesPerMillisecond, light.QueriesPerMillisecond)
	}
}

func TestOfferedLoadDeterministic(t *testing.T) {
	e, store, layout, _ := timedFixture(t, 32)
	batches := loadBatches(t, 6, layout.TotalRows())
	a, err := e.OfferedLoad(store, layout, dram.DDR4(), batches, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.OfferedLoad(store, layout, dram.DDR4(), batches, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.AvgLatency != b.AvgLatency {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
