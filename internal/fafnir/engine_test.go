package fafnir

import (
	"math/rand"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

// modPlacement maps index i to rank i mod ranks — a pure-functional stand-in
// for memmap.Layout in tests.
type modPlacement struct {
	ranks int
	bytes int
}

func (p modPlacement) Rank(idx header.Index) int { return int(idx) % p.ranks }
func (p modPlacement) Addr(idx header.Index) dram.Addr {
	return dram.Addr(uint64(idx) * uint64(p.bytes))
}
func (p modPlacement) VectorBytes() int { return p.bytes }

// tablePlacement emulates Fig. 6: index "rt" (row digit, table digit) lives
// in the rank of its table digit.
type tablePlacement struct{ bytes int }

func (p tablePlacement) Rank(idx header.Index) int { return int(idx) % 10 }
func (p tablePlacement) Addr(idx header.Index) dram.Addr {
	return dram.Addr(uint64(idx) * uint64(p.bytes))
}
func (p tablePlacement) VectorBytes() int { return p.bytes }

func fig6Batch() embedding.Batch {
	return embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(11, 44, 32, 83, 77)}, // a
			{Indices: header.NewIndexSet(50, 32, 83, 26)},     // b
			{Indices: header.NewIndexSet(50, 44, 11, 94, 26)}, // c
			{Indices: header.NewIndexSet(83, 77)},             // d
		},
		Op: tensor.OpSum,
	}
}

func smallEngine(t *testing.T, ranks, fanIn, capacity, dim int) *Engine {
	t.Helper()
	cfg := Default()
	cfg.NumRanks = ranks
	cfg.LeafFanIn = fanIn
	cfg.BatchCapacity = capacity
	cfg.VectorDim = dim
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLookupFig6 runs the paper's Fig. 6 worked example end to end: four
// queries over eight tables (one per rank), including the same-rank pair
// (44, 94) in table 4 and the shared value (32, 83) of queries a and b.
func TestLookupFig6(t *testing.T) {
	e := smallEngine(t, 8, 2, 4, 4)
	store := embedding.MustStore(100, 4, 77)
	b := fig6Batch()
	res, err := e.Lookup(store, tablePlacement{bytes: 16}, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 1e-4); i >= 0 {
		t.Fatalf("query %d mismatches golden: got %v want %v", i, res.Outputs[i], golden[i])
	}
	// Dedup: 8 unique indices for 16 raw accesses.
	if res.MemoryReads != 8 {
		t.Fatalf("MemoryReads = %d, want 8", res.MemoryReads)
	}
	// "because of merging, the size of input A and B never exceeds the
	// batch size (i.e., four)".
	if err := CheckOccupancyBound(res, 4); err == nil {
		_ = err
	}
	if res.MaxOccupancy > 4 {
		t.Fatalf("occupancy %d exceeds batch size 4", res.MaxOccupancy)
	}
	if res.PETotals.Reduces == 0 || res.PETotals.Forwards == 0 {
		t.Fatalf("implausible PE totals %+v", res.PETotals)
	}
}

func TestLookupMatchesGoldenRandom(t *testing.T) {
	dims := []int{4, 8}
	rankCounts := []int{32, 8, 6}
	for _, dist := range []embedding.Distribution{embedding.Uniform, embedding.Zipf} {
		for _, ranks := range rankCounts {
			for seed := int64(0); seed < 4; seed++ {
				e := smallEngine(t, ranks, 2, 32, dims[seed%2])
				store := embedding.MustStore(4096, dims[seed%2], uint64(seed))
				gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
					NumQueries: 16,
					QuerySize:  8,
					Rows:       4096,
					Dist:       dist,
					ZipfS:      1.3,
					Seed:       seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				b := gen.Batch(tensor.OpSum)
				res, err := e.Lookup(store, modPlacement{ranks: ranks, bytes: 4 * dims[seed%2]}, b)
				if err != nil {
					t.Fatalf("dist=%v ranks=%d seed=%d: %v", dist, ranks, seed, err)
				}
				golden := b.MustGolden(store)
				if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
					t.Fatalf("dist=%v ranks=%d seed=%d query %d mismatch", dist, ranks, seed, i)
				}
				if err := CheckOccupancyBound(res, 16); err != nil {
					t.Fatalf("dist=%v ranks=%d seed=%d: %v", dist, ranks, seed, err)
				}
			}
		}
	}
}

func TestLookupAllOps(t *testing.T) {
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		e := smallEngine(t, 8, 2, 8, 4)
		store := embedding.MustStore(512, 4, 3)
		gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
			NumQueries: 8, QuerySize: 5, Rows: 512, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		b := gen.Batch(op)
		res, err := e.Lookup(store, modPlacement{ranks: 8, bytes: 16}, b)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		golden := b.MustGolden(store)
		if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
			t.Fatalf("op %v query %d mismatch: got %v want %v", op, i, res.Outputs[i], golden[i])
		}
	}
}

func TestLookupSingleIndexQueries(t *testing.T) {
	e := smallEngine(t, 8, 2, 4, 4)
	store := embedding.MustStore(64, 4, 5)
	b := embedding.Batch{
		Queries: []embedding.Query{
			{Indices: header.NewIndexSet(3)},
			{Indices: header.NewIndexSet(3)}, // identical query
			{Indices: header.NewIndexSet(12)},
		},
		Op: tensor.OpSum,
	}
	res, err := e.Lookup(store, modPlacement{ranks: 8, bytes: 16}, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 0); i >= 0 {
		t.Fatalf("query %d mismatch", i)
	}
	if res.MemoryReads != 2 {
		t.Fatalf("MemoryReads = %d, want 2 (dedup of identical queries)", res.MemoryReads)
	}
}

func TestLookupSplitsSoftwareBatches(t *testing.T) {
	e := smallEngine(t, 8, 2, 4, 4) // hardware capacity 4
	store := embedding.MustStore(1024, 4, 8)
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 10, QuerySize: 4, Rows: 1024, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Batch(tensor.OpSum)
	res, err := e.Lookup(store, modPlacement{ranks: 8, bytes: 16}, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.HWBatches != 3 {
		t.Fatalf("HWBatches = %d, want 3 (10 queries / capacity 4)", res.HWBatches)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		t.Fatalf("query %d mismatch", i)
	}
}

func TestLookupRejectsOutOfRangeRank(t *testing.T) {
	e := smallEngine(t, 4, 2, 4, 4)
	store := embedding.MustStore(64, 4, 1)
	b := embedding.Batch{
		Queries: []embedding.Query{{Indices: header.NewIndexSet(1, 2)}},
		Op:      tensor.OpSum,
	}
	// Placement claims 8 ranks but the tree has 4.
	if _, err := e.Lookup(store, modPlacement{ranks: 8, bytes: 16}, b); err == nil {
		// Indices 1 and 2 map to ranks 1 and 2, which fit; use a bigger one.
		b.Queries[0].Indices = header.NewIndexSet(6, 7)
		if _, err := e.Lookup(store, modPlacement{ranks: 8, bytes: 16}, b); err == nil {
			t.Fatal("rank beyond tree accepted")
		}
	}
}

func timedFixture(t *testing.T, batchCap int) (*Engine, *embedding.Store, *memmap.Layout, *dram.System) {
	t.Helper()
	cfg := Default()
	cfg.BatchCapacity = batchCap
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 32, 4096)
	store := embedding.MustStore(layout.TotalRows(), 128, 21)
	return e, store, layout, dram.MustSystem(mcfg)
}

func genBatch(t *testing.T, n, q int, rows uint64, seed int64) embedding.Batch {
	t.Helper()
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n, QuerySize: q, Rows: rows, Dist: embedding.Zipf, ZipfS: 1.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Batch(tensor.OpSum)
}

func TestTimedLookupBasics(t *testing.T) {
	e, store, layout, mem := timedFixture(t, 32)
	b := genBatch(t, 16, 16, layout.TotalRows(), 3)
	res, err := e.TimedLookup(store, layout, mem, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles == 0 || res.MemCycles == 0 {
		t.Fatalf("zero timing: %+v", res)
	}
	if res.MemCycles > res.TotalCycles {
		t.Fatalf("memory %d exceeds total %d", res.MemCycles, res.TotalCycles)
	}
	if res.BytesRead != uint64(res.MemoryReads)*512 {
		t.Fatalf("BytesRead %d for %d reads", res.BytesRead, res.MemoryReads)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		t.Fatalf("query %d mismatch", i)
	}
	if res.Seconds(e.Config()) <= 0 {
		t.Fatal("non-positive wall time")
	}
}

func TestTimedLookupDedupReducesTraffic(t *testing.T) {
	e, store, layout, mem := timedFixture(t, 32)
	b := genBatch(t, 32, 16, 4096, 5) // small row space -> heavy sharing
	withDedup, err := e.TimedLookup(store, layout, mem, b, true)
	if err != nil {
		t.Fatal(err)
	}
	mem.Reset()
	without, err := e.TimedLookup(store, layout, mem, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if withDedup.MemoryReads >= without.MemoryReads {
		t.Fatalf("dedup reads %d not below raw %d", withDedup.MemoryReads, without.MemoryReads)
	}
	if withDedup.TotalCycles >= without.TotalCycles {
		t.Fatalf("dedup latency %d not below raw %d", withDedup.TotalCycles, without.TotalCycles)
	}
	// Functional results identical either way.
	if i := VerifyAgainstGolden(without.Outputs, b.MustGolden(store), 1e-3); i >= 0 {
		t.Fatalf("no-dedup query %d mismatch", i)
	}
}

func TestTimedLookupScalesWithRanks(t *testing.T) {
	// More ranks -> more parallel reads -> lower latency for the same batch.
	// The batch must be large enough to be memory-bound (the paper's Fig. 12
	// regime); tiny batches are tree-depth-bound and scale differently.
	latency := map[int]float64{}
	for _, ranks := range []int{2, 8, 32} {
		cfg := Default()
		cfg.NumRanks = ranks
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mcfg := dram.DDR4()
		// Shrink the geometry so TotalRanks matches.
		mcfg.Channels = 1
		mcfg.DIMMsPerChannel = ranks / 2
		if mcfg.DIMMsPerChannel == 0 {
			mcfg.DIMMsPerChannel = 1
			mcfg.RanksPerDIMM = ranks
		}
		layout := memmap.Uniform(mcfg, 512, 4, 4096)
		store := embedding.MustStore(layout.TotalRows(), 128, 2)
		mem := dram.MustSystem(mcfg)
		b := genBatch(t, 32, 16, layout.TotalRows(), 7)
		res, err := e.TimedLookup(store, layout, mem, b, true)
		if err != nil {
			t.Fatal(err)
		}
		latency[ranks] = float64(res.TotalCycles)
	}
	if !(latency[32] < latency[8] && latency[8] < latency[2]) {
		t.Fatalf("latency did not fall with rank count: %v", latency)
	}
}

func TestTimedLookupMultipleHWBatches(t *testing.T) {
	e, store, layout, mem := timedFixture(t, 8)
	b := genBatch(t, 24, 16, layout.TotalRows(), 11)
	res, err := e.TimedLookup(store, layout, mem, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HWBatches != 3 {
		t.Fatalf("HWBatches = %d, want 3", res.HWBatches)
	}
	if i := VerifyAgainstGolden(res.Outputs, b.MustGolden(store), 1e-3); i >= 0 {
		t.Fatalf("query %d mismatch", i)
	}
}

func TestCheckOccupancyBound(t *testing.T) {
	res := &Result{MaxOccupancy: 5}
	if err := CheckOccupancyBound(res, 4); err == nil {
		t.Fatal("violation not reported")
	}
	if err := CheckOccupancyBound(res, 8); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAgainstGolden(t *testing.T) {
	a := []tensor.Vector{{1, 2}, {3, 4}}
	if i := VerifyAgainstGolden(a, a, 0); i != -1 {
		t.Fatalf("self-compare failed at %d", i)
	}
	b := []tensor.Vector{{1, 2}, {3, 5}}
	if i := VerifyAgainstGolden(a, b, 0); i != 1 {
		t.Fatalf("mismatch index = %d, want 1", i)
	}
	if i := VerifyAgainstGolden(nil, b, 0); i != 0 {
		t.Fatalf("missing outputs index = %d, want 0", i)
	}
}

// Fuzz-style stress: many random small configurations, all must match golden.
func TestLookupStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		ranks := []int{4, 6, 8, 12, 16}[rng.Intn(5)]
		fan := 2
		if ranks%4 == 0 && rng.Intn(2) == 0 {
			fan = 4
		}
		dim := 1 + rng.Intn(6)
		e := smallEngine(t, ranks, fan, 8, dim)
		rows := uint64(64 + rng.Intn(512))
		store := embedding.MustStore(rows, dim, uint64(trial))
		n := 1 + rng.Intn(12)
		q := 1 + rng.Intn(8)
		if uint64(q) > rows {
			q = int(rows)
		}
		gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
			NumQueries: n, QuerySize: q, Rows: rows, Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		b := gen.Batch(tensor.OpSum)
		res, err := e.Lookup(store, modPlacement{ranks: ranks, bytes: 4 * dim}, b)
		if err != nil {
			t.Fatalf("trial %d (ranks=%d fan=%d n=%d q=%d): %v", trial, ranks, fan, n, q, err)
		}
		if i := VerifyAgainstGolden(res.Outputs, b.MustGolden(store), 1e-3); i >= 0 {
			t.Fatalf("trial %d query %d mismatch", trial, i)
		}
	}
}

func TestInteractiveLookup(t *testing.T) {
	e, store, layout, mem := timedFixture(t, 32)
	b := genBatch(t, 8, 16, layout.TotalRows(), 17)
	res, err := e.InteractiveLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		t.Fatalf("query %d mismatch", i)
	}
	// No dedup in interactive mode: every access reads memory.
	if res.MemoryReads != b.TotalAccesses() {
		t.Fatalf("MemoryReads = %d, want %d", res.MemoryReads, b.TotalAccesses())
	}
	if res.HWBatches != 8 {
		t.Fatalf("HWBatches = %d (one per query)", res.HWBatches)
	}
}

func TestInteractiveStage(t *testing.T) {
	// Reduce-value (4) beats forward (2); no compare in interactive mode.
	if got := TableIV().InteractiveStage(); got != 4 {
		t.Fatalf("InteractiveStage = %d, want 4", got)
	}
}

func TestInteractiveSingleQueryFasterThanBatchPath(t *testing.T) {
	// For one query, the comparison-free interactive pipeline beats the
	// batch path's full header processing.
	e, store, layout, _ := timedFixture(t, 32)
	b := genBatch(t, 1, 16, layout.TotalRows(), 19)
	inter, err := e.InteractiveLookup(store, layout, dram.MustSystem(dram.DDR4()), b)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := e.TimedLookup(store, layout, dram.MustSystem(dram.DDR4()), b, true)
	if err != nil {
		t.Fatal(err)
	}
	if inter.TotalCycles >= batch.TotalCycles {
		t.Fatalf("interactive %d not below batch %d for a single query", inter.TotalCycles, batch.TotalCycles)
	}
}

func TestInteractiveEmptyQuery(t *testing.T) {
	e, store, layout, mem := timedFixture(t, 32)
	b := embedding.Batch{Queries: []embedding.Query{{}}, Op: tensor.OpSum}
	res, err := e.InteractiveLookup(store, layout, mem, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0].Equal(tensor.New(128)) {
		t.Fatal("empty query should produce zeros")
	}
}

// Property: the min(nm+n+m, B) occupancy bound holds across random
// configurations, batch shapes, and distributions.
func TestQuickOccupancyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		ranks := []int{4, 8, 16, 32}[rng.Intn(4)]
		capacity := []int{4, 8, 16, 32}[rng.Intn(4)]
		e := smallEngine(t, ranks, 2, capacity, 4)
		rows := uint64(256 + rng.Intn(4096))
		store := embedding.MustStore(rows, 4, uint64(trial))
		q := 1 + rng.Intn(12)
		if uint64(q) > rows {
			q = int(rows)
		}
		cfg := embedding.GeneratorConfig{
			NumQueries: capacity, QuerySize: q, Rows: rows, Seed: int64(trial),
		}
		if rng.Intn(2) == 0 {
			cfg.Dist = embedding.Zipf
			cfg.ZipfS = 1.2 + rng.Float64()
		}
		gen, err := embedding.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := gen.Batch(tensor.OpSum)
		res, err := e.Lookup(store, modPlacement{ranks: ranks, bytes: 16}, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckOccupancyBound(res, capacity); err != nil {
			t.Fatalf("trial %d (ranks=%d cap=%d q=%d): %v", trial, ranks, capacity, q, err)
		}
	}
}
