package fafnir

import (
	"fmt"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/sim"
)

// PipelineResult summarizes a streaming run of many batches through the
// tree under an offered arrival rate (a discrete-event queueing simulation
// on top of the timing model).
type PipelineResult struct {
	// Batches is the number of batches served.
	Batches int
	// Makespan is the completion time of the last batch (PE cycles).
	Makespan sim.Cycle
	// AvgLatency and MaxLatency are per-batch queueing+service latencies in
	// PE cycles.
	AvgLatency, MaxLatency float64
	// AvgService is the mean service time (no queueing) in PE cycles.
	AvgService float64
	// MaxQueueDepth is the deepest the arrival queue got.
	MaxQueueDepth int
	// Utilization is busy time over makespan (1.0 = saturated).
	Utilization float64
	// QueriesPerMillisecond is the achieved throughput.
	QueriesPerMillisecond float64
}

// OfferedLoad streams the given batches into the engine at a fixed arrival
// interval (PE cycles) and simulates the service queue with the event
// engine: one batch is in service at a time (the tree's input FIFOs double-
// buffer arrivals), later arrivals wait in the host's dispatch queue. Each
// batch's service time comes from the timing model against an idle memory
// system, so the run behaves like an M/D/1-style queue whose service
// distribution is the simulator itself. The result captures the classic
// latency/throughput curve that bends upward as the interval approaches the
// service time.
func (e *Engine) OfferedLoad(store *embedding.Store, layout Placement, mcfg dram.Config, batches []embedding.Batch, interval sim.Cycle) (*PipelineResult, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("fafnir: no batches offered")
	}
	res := &PipelineResult{Batches: len(batches)}

	// Pre-compute each batch's service time from the timing model.
	services := make([]sim.Cycle, len(batches))
	queries := 0
	var serviceSum sim.Cycle
	for i, b := range batches {
		mem, err := dram.NewSystem(mcfg)
		if err != nil {
			return nil, err
		}
		tr, err := e.TimedLookup(store, layout, mem, b, true)
		if err != nil {
			return nil, err
		}
		services[i] = sim.Max(tr.TotalCycles, 1)
		serviceSum += services[i]
		queries += len(b.Queries)
	}
	res.AvgService = float64(serviceSum) / float64(len(batches))

	eng := sim.NewEngine()
	type job struct {
		arrivedAt sim.Cycle
		service   sim.Cycle
	}
	var queue []job
	busy := false

	var startService func(now sim.Cycle)
	startService = func(now sim.Cycle) {
		if busy || len(queue) == 0 {
			return
		}
		busy = true
		j := queue[0]
		queue = queue[1:]
		eng.Schedule(now+j.service, func(at sim.Cycle) {
			lat := float64(at - j.arrivedAt)
			res.AvgLatency += lat
			if lat > res.MaxLatency {
				res.MaxLatency = lat
			}
			res.Makespan = at
			busy = false
			startService(at)
		})
	}

	for i := range batches {
		at := sim.Cycle(i) * interval
		svc := services[i]
		eng.Schedule(at, func(now sim.Cycle) {
			queue = append(queue, job{arrivedAt: now, service: svc})
			if len(queue) > res.MaxQueueDepth {
				res.MaxQueueDepth = len(queue)
			}
			startService(now)
		})
	}
	eng.Run()

	res.AvgLatency /= float64(len(batches))
	if res.Makespan > 0 {
		res.Utilization = float64(serviceSum) / float64(res.Makespan)
		res.QueriesPerMillisecond = float64(queries) / (sim.Seconds(res.Makespan, e.cfg.ClockMHz) * 1e3)
	}
	return res, nil
}
