package fafnir

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

// Scheduler stress tests: metamorphic determinism under adversarial
// schedules. The async scheduler's contract is that execution order is
// unobservable — every interleaving of worker deques, steals, and parent
// hand-offs must produce bit-identical outputs, stats, and cycle counts. The
// tests here attack that contract where it is weakest:
//
//   - a skewed tree (odd leaf count, so carried-up nodes form a deep spine)
//     with a hot leaf feeding that spine, so one worker's subtree dominates
//     and the others mostly steal;
//   - a seeded random stall injector on Engine.stallHook that perturbs which
//     worker reaches which node first, shuffling the schedule differently on
//     every run.

// skewPlacement concentrates three of every four indices on rank 0 — the hot
// leaf — and spreads the rest over the remaining ranks.
type skewPlacement struct {
	ranks int
	bytes int
}

func (p skewPlacement) Rank(idx header.Index) int {
	if idx%4 != 0 {
		return 0
	}
	return int(idx/4) % p.ranks
}
func (p skewPlacement) Addr(idx header.Index) dram.Addr {
	return dram.Addr(uint64(idx) * uint64(p.bytes))
}
func (p skewPlacement) VectorBytes() int { return p.bytes }

// skewEngine builds a deliberately unbalanced tree: 10 ranks at fan-in 2
// give 5 leaves, so every pairing level carries one node up unpaired and the
// last leaf rides a spine all the way to the root.
func skewEngine(t *testing.T, par int) *Engine {
	t.Helper()
	cfg := Default()
	cfg.NumRanks = 10
	cfg.LeafFanIn = 2
	cfg.VectorDim = 16
	cfg.Parallelism = par
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// stallHook returns a seeded random staller: each (worker, PE) arrival
// sleeps 0-100 us or just yields, drawn from a run-private PRNG. The mutex
// makes the draw sequence itself schedule-dependent — deliberately so; the
// point is to shuffle execution order, not to be reproducible.
func stallHook(seed int64) func(worker, pe int) {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(worker, pe int) {
		mu.Lock()
		d := rng.Intn(4)
		mu.Unlock()
		if d == 0 {
			return
		}
		time.Sleep(time.Duration(d) * 25 * time.Microsecond)
	}
}

// TestSchedulerStressLookupDeterministic runs 20 stall-shuffled executions
// (10 seeds at Parallelism 2 and 4 each) of a hot-leaf workload on the
// skewed tree and requires every one to match the serial run bit for bit.
func TestSchedulerStressLookupDeterministic(t *testing.T) {
	store, b := detWorkload(t, 96)
	pl := skewPlacement{ranks: 10, bytes: 64}

	want, err := skewEngine(t, 1).Lookup(store, pl, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		for seed := int64(0); seed < 10; seed++ {
			e := skewEngine(t, par)
			e.stallHook = stallHook(seed*31 + int64(par))
			res, err := e.Lookup(store, pl, b)
			if err != nil {
				t.Fatalf("par=%d seed=%d: %v", par, seed, err)
			}
			if !reflect.DeepEqual(res.Outputs, want.Outputs) {
				t.Fatalf("par=%d seed=%d: outputs differ from serial run", par, seed)
			}
			if res.PETotals != want.PETotals || res.MaxOccupancy != want.MaxOccupancy {
				t.Fatalf("par=%d seed=%d: stats diverge: %+v vs %+v",
					par, seed, res.PETotals, want.PETotals)
			}
		}
	}
}

// TestSchedulerStressTimedDeterministic repeats the attack on the timed
// path, where the contract extends to cycle counts: stalling the host-side
// scheduler must not move a single simulated cycle.
func TestSchedulerStressTimedDeterministic(t *testing.T) {
	store, b := detWorkload(t, 64)
	pl := skewPlacement{ranks: 10, bytes: 64}

	want, err := skewEngine(t, 1).TimedLookup(store, pl, dram.MustSystem(dram.DDR4()), b, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		for seed := int64(0); seed < 3; seed++ {
			e := skewEngine(t, par)
			e.stallHook = stallHook(seed*17 + int64(par))
			res, err := e.TimedLookup(store, pl, dram.MustSystem(dram.DDR4()), b, true)
			if err != nil {
				t.Fatalf("par=%d seed=%d: %v", par, seed, err)
			}
			if !reflect.DeepEqual(res.Outputs, want.Outputs) {
				t.Fatalf("par=%d seed=%d: outputs differ from serial run", par, seed)
			}
			if res.PETotals != want.PETotals || res.MaxOccupancy != want.MaxOccupancy {
				t.Fatalf("par=%d seed=%d: stats diverge", par, seed)
			}
			if res.TotalCycles != want.TotalCycles || res.MemCycles != want.MemCycles ||
				res.ComputeCycles != want.ComputeCycles || res.TransferCycles != want.TransferCycles {
				t.Fatalf("par=%d seed=%d: cycles (%d,%d,%d,%d) != serial (%d,%d,%d,%d)",
					par, seed,
					res.TotalCycles, res.MemCycles, res.ComputeCycles, res.TransferCycles,
					want.TotalCycles, want.MemCycles, want.ComputeCycles, want.TransferCycles)
			}
		}
	}
}

// TestSchedulerStressFaultedDeterministic covers the degraded path: a dark
// rank remaps reads to replicas, and a stall-shuffled parallel run must
// still reproduce the serial faulted run exactly, cycles included.
func TestSchedulerStressFaultedDeterministic(t *testing.T) {
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 4, 256)
	store := embedding.MustStore(layout.TotalRows(), 16, 7)
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 48, QuerySize: 6, Rows: layout.TotalRows(), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Batch(tensor.OpSum)
	dark := layout.Rank(b.Queries[0].Indices[0])
	newInj := func() *fault.Injector {
		inj, err := fault.NewInjector(fault.Plan{
			RankFailures: []fault.RankFailure{{Rank: dark, At: 0}},
		}, mcfg.TotalRanks())
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	engine := func(par int) *Engine {
		cfg := Default()
		cfg.VectorDim = 16
		cfg.Parallelism = par
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	want, err := engine(1).TimedLookupFaulted(store, layout, dram.MustSystem(mcfg), b, true, newInj())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		e := engine(4)
		e.stallHook = stallHook(seed*13 + 5)
		res, err := e.TimedLookupFaulted(store, layout, dram.MustSystem(mcfg), b, true, newInj())
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Outputs, want.Outputs) {
			t.Fatalf("seed=%d: faulted outputs differ from serial run", seed)
		}
		if res.PETotals != want.PETotals || res.TotalCycles != want.TotalCycles {
			t.Fatalf("seed=%d: faulted stats/cycles diverge", seed)
		}
	}
}
