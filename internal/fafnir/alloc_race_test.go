//go:build race

package fafnir

// raceDetectorEnabled reports whether this test binary was built with -race.
// The race-enabled runtime randomizes sync.Pool (Put drops items at random to
// exercise miss paths), so pooled-scratch allocation counts are noise there.
const raceDetectorEnabled = true
