package fafnir

import (
	"fmt"

	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
)

// This file threads the telemetry tracer through the timing engine. Like
// dram.AttachLog, attachment is observational: the engine emits events from
// the serial timed loop of timedLookup, after treeTiming has produced the
// batch's readiness schedule, so a traced run is cycle-identical to an
// untraced one and the event stream is bit-identical at every Parallelism
// setting (the concurrent functional pass never emits).
//
// The tracing-off hot path costs one nil check per hardware batch.

// AttachTracer threads an event tracer into the engine: every subsequent
// TimedLookup emits hardware-batch spans and per-PE stage/compare/reduce/
// forward/merge events on the tracer's timeline, with one lane per PE
// grouped by tree level. A nil tracer detaches. Tracing never perturbs
// simulated timing.
func (e *Engine) AttachTracer(t telemetry.Tracer) {
	e.tracer = t
	if t == nil {
		return
	}
	// The topology is static, so all lanes are named eagerly at attach time
	// and the emission path never touches the name maps.
	t.NameProcess(telemetry.PIDEngine, "fafnir engine")
	t.NameLane(telemetry.PIDEngine, 0, "hw batches")
	for _, n := range e.tree.all {
		pid := telemetry.PIDPELevelBase + n.Level
		t.NameProcess(pid, fmt.Sprintf("PE level %d", n.Level))
		t.NameLane(pid, n.ID, fmt.Sprintf("PE%d (%s)", n.ID, n.Kind))
	}
}

// Tracer returns the attached tracer (nil when none).
func (e *Engine) Tracer() telemetry.Tracer { return e.tracer }

// SetSpanContext installs the parent span ID that subsequent hw_batch spans
// link under (0 detaches). The serving layer sets it to the flush span's ID
// before each Lookup so a request's spans form one parent-linked chain from
// the HTTP enqueue down to the hardware batch. The context only annotates
// events — it never perturbs timing.
func (e *Engine) SetSpanContext(parent uint64) { e.spanCtx = parent }

// traceBatch emits the events of one timed hardware batch: the batch-level
// span on the engine lane and one stage span per PE, with Table IV action
// sub-spans. issue is the batch's read-issue time in the memory clock;
// leafReady, ready, and perPE are the schedule treeTiming just produced;
// batchDone is the root completion plus host transfer, in PE cycles.
//
// The stage span of each PE runs from its input-ready time to its completion
// in the ready slot, so occupancy initiation intervals and injected PE
// stalls are visible as the gap after the fixed-latency action sub-spans.
func (e *Engine) traceBatch(k, reads, queries int, issue sim.Cycle, leafReady, ready []sim.Cycle, perPE []PEStats, batchDone sim.Cycle) {
	mhz := e.cfg.ClockMHz
	issuePE := e.cfg.DRAMToPE(issue)
	ev := telemetry.Event{
		Name: "hw_batch", Cat: "engine", Phase: telemetry.PhaseSpan,
		PID: telemetry.PIDEngine, TID: 0,
		TS: uint64(issuePE), Dur: uint64(batchDone - issuePE), ClockMHz: mhz,
	}
	ev.AddArg(telemetry.Arg{Key: "batch", Int: int64(k)})
	ev.AddArg(telemetry.Arg{Key: "reads", Int: int64(reads)})
	ev.AddArg(telemetry.Arg{Key: "queries", Int: int64(queries)})
	ev.AddArg(telemetry.Arg{Key: telemetry.ArgSpan, Int: int64(telemetry.SpanID(e.spanCtx, "hw_batch", uint64(k)))})
	ev.AddArg(telemetry.Arg{Key: telemetry.ArgParent, Int: int64(e.spanCtx)})
	e.tracer.Emit(ev)

	lat := e.cfg.Latency
	reduceDur := sim.Max(lat.ReduceValue, lat.ReduceHeader)
	for i := range e.flat {
		n := &e.flat[i]
		// Recompute the node's input-ready time the way treeTiming did;
		// children precede parents in flat, so the ready slots already
		// hold this batch's values.
		var inReady sim.Cycle
		if n.leaf {
			inReady = e.cfg.DRAMToPE(leafReady[i])
		} else {
			inReady = ready[n.left]
			if n.right >= 0 {
				inReady = sim.Max(inReady, ready[n.right])
			}
		}
		st := perPE[i]
		pid := telemetry.PIDPELevelBase + int(n.level)

		stage := telemetry.Event{
			Name: "pe.stage", Cat: "pe", Phase: telemetry.PhaseSpan,
			PID: pid, TID: i,
			TS: uint64(inReady), Dur: uint64(ready[i] - inReady), ClockMHz: mhz,
		}
		stage.AddArg(telemetry.Arg{Key: "batch", Int: int64(k)})
		stage.AddArg(telemetry.Arg{Key: "compares", Int: int64(st.Compares)})
		stage.AddArg(telemetry.Arg{Key: "reduces", Int: int64(st.Reduces)})
		stage.AddArg(telemetry.Arg{Key: "forwards", Int: int64(st.Forwards)})
		stage.AddArg(telemetry.Arg{Key: "outputs", Int: int64(st.Outputs)})
		e.tracer.Emit(stage)

		if st.Compares > 0 {
			cmp := telemetry.Event{
				Name: "pe.compare", Cat: "pe", Phase: telemetry.PhaseSpan,
				PID: pid, TID: i,
				TS: uint64(inReady), Dur: uint64(lat.Compare), ClockMHz: mhz,
			}
			cmp.AddArg(telemetry.Arg{Key: "compares", Int: int64(st.Compares)})
			e.tracer.Emit(cmp)
		}
		// Reduce and forward run on parallel action paths after the compare.
		if st.Reduces > 0 {
			red := telemetry.Event{
				Name: "pe.reduce", Cat: "pe", Phase: telemetry.PhaseSpan,
				PID: pid, TID: i,
				TS: uint64(inReady + lat.Compare), Dur: uint64(reduceDur), ClockMHz: mhz,
			}
			red.AddArg(telemetry.Arg{Key: "reduces", Int: int64(st.Reduces)})
			e.tracer.Emit(red)
		}
		if st.Forwards > 0 {
			fwd := telemetry.Event{
				Name: "pe.forward", Cat: "pe", Phase: telemetry.PhaseSpan,
				PID: pid, TID: i,
				TS: uint64(inReady + lat.Compare), Dur: uint64(lat.Forward), ClockMHz: mhz,
			}
			fwd.AddArg(telemetry.Arg{Key: "forwards", Int: int64(st.Forwards)})
			e.tracer.Emit(fwd)
		}
		if st.MergedDuplicates > 0 {
			mrg := telemetry.Event{
				Name: "pe.merge", Cat: "pe", Phase: telemetry.PhaseInstant,
				PID: pid, TID: i,
				TS: uint64(ready[i]), ClockMHz: mhz,
			}
			mrg.AddArg(telemetry.Arg{Key: "merged", Int: int64(st.MergedDuplicates)})
			e.tracer.Emit(mrg)
		}
	}
}
