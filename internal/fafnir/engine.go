package fafnir

import (
	"fmt"
	"sync"

	"fafnir/internal/batch"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/sim"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

// Placement tells the engine where each embedding vector lives in the
// memory system. *memmap.Layout implements it; tests substitute simpler
// mappings (e.g. Fig. 6's one-table-per-rank layout).
type Placement interface {
	// Rank returns the global rank storing the vector of the index.
	Rank(idx header.Index) int
	// Addr returns the vector's byte address for the DRAM model.
	Addr(idx header.Index) dram.Addr
	// VectorBytes reports the stored size of one vector.
	VectorBytes() int
}

// ReplicatedPlacement is a Placement that additionally keeps a replica copy
// of every vector, giving the host somewhere to remap reads when a rank goes
// dark. *memmap.Layout implements it.
type ReplicatedPlacement interface {
	Placement
	// Replica returns the rank and address of the vector's replica copy.
	Replica(idx header.Index) (rank int, addr dram.Addr, err error)
}

// Engine runs embedding-lookup batches through a Fafnir tree. One engine may
// evaluate several hardware batches concurrently (see Config.Parallelism);
// the methods themselves keep the external contract of the serial engine.
type Engine struct {
	cfg  Config
	tree *Tree
	// flat is the arena-flattened mirror of tree (see flat.go); the hot path
	// iterates these dense records instead of chasing *PENode pointers.
	flat   []flatPE
	rootID int32
	// tracer receives timing events when attached (see trace.go); nil — the
	// default — costs one pointer check per hardware batch.
	tracer telemetry.Tracer
	// spanCtx is the parent span ID for request-linked tracing: when the
	// serving layer sets it (see SetSpanContext), every hw_batch span derives
	// its own ID from it and carries the parentage as span/parent args.
	spanCtx uint64
	// stallHook, when non-nil, is called by every scheduler worker before it
	// evaluates a node. Tests use it to inject adversarial scheduling delays;
	// nil in production.
	stallHook func(worker, pe int)
}

// NewEngine builds an engine; it returns an error for invalid configurations.
func NewEngine(cfg Config) (*Engine, error) {
	tree, err := NewTree(cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, tree: tree, flat: flatten(tree), rootID: int32(tree.root.ID)}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Tree returns the engine's topology.
func (e *Engine) Tree() *Tree { return e.tree }

// Result is the functional outcome of one batch.
type Result struct {
	// Outputs holds the reduced vector of every query, in batch order.
	Outputs []tensor.Vector
	// PETotals accumulates the per-PE action counts across the whole tree.
	PETotals PEStats
	// MaxOccupancy is the largest post-merge output count any PE produced,
	// which must respect the min(nm+n+m, B) buffer bound of Section IV-B.
	MaxOccupancy int
	// MemoryReads is the number of DRAM vector reads the plan issued.
	MemoryReads int
	// HWBatches is how many hardware batches served the software batch.
	HWBatches int
}

// TimedResult extends Result with the timing breakdown of Figs. 11-13.
// All cycle counts are in the PE clock domain.
type TimedResult struct {
	Result
	// MemCycles is when the last DRAM read completed.
	MemCycles sim.Cycle
	// ComputeCycles is the tree traversal time after the last read.
	ComputeCycles sim.Cycle
	// TransferCycles is the root-to-host transfer time for the outputs.
	TransferCycles sim.Cycle
	// TotalCycles is the end-to-end batch latency.
	TotalCycles sim.Cycle
	// BytesRead is the DRAM traffic of the batch.
	BytesRead uint64
	// Stages attributes TotalCycles to named pipeline stages; every timed
	// path fills it so that Stages.Sum() == TotalCycles exactly.
	Stages StageCycles
	// Degraded reports the graceful-degradation work of a fault-injected run;
	// nil for a fault-free run.
	Degraded *DegradedReport
}

// StageCycles is the exact latency attribution of one timed lookup: every
// producer (the single-system engine, the fleet router, the federation)
// splits its TotalCycles across these five stages so the parts sum to the
// whole with no remainder. Cycle counts are in the producer's clock domain
// (the 200 MHz PE/router clock everywhere in this repository).
type StageCycles struct {
	// Probe is breaker health-probe time ahead of dispatch (fleet only).
	Probe sim.Cycle
	// Backend is gather + reduce time inside the engines (for a fleet, the
	// slowest healthy shard window; for a federation, the slowest member).
	Backend sim.Cycle
	// Failover is serial replay time on replica shards after primary failures.
	Failover sim.Cycle
	// Combine is partial-output combining: the host fold or the rnet switch
	// tree's critical path beyond the moment the leaves were ready.
	Combine sim.Cycle
	// Transfer is the final root/combine-to-host transfer of the outputs.
	Transfer sim.Cycle
}

// Sum is the five-way total; producers maintain Sum() == TotalCycles.
func (s StageCycles) Sum() sim.Cycle {
	return s.Probe + s.Backend + s.Failover + s.Combine + s.Transfer
}

// DegradedReport quantifies how much graceful-degradation work a
// fault-injected run performed. The cost is already folded into the
// TimedResult cycle counts; the report makes it attributable.
type DegradedReport struct {
	// FailedRanks lists the ranks dark by the end of the run, sorted.
	FailedRanks []int
	// RemappedReads counts vector reads redirected from a dark rank to its
	// replica placement.
	RemappedReads int
	// RemappedQueries counts queries with at least one remapped read.
	RemappedQueries int
	// Retries counts extra read attempts after ECC-flagged corrupt returns.
	Retries int
	// RetryCycles is the memory-clock time spent in backoff and re-reads,
	// summed over all retried accesses.
	RetryCycles sim.Cycle

	// Fleet-level fields, filled by the shard router (internal/router) when
	// a batch crossed a sharded deployment; empty for single-system runs.

	// Shards carries one entry per shard whose sub-lookup needed robustness
	// work (failover, probe recovery, or data loss), in shard order.
	Shards []ShardDegraded
	// LostQueries lists the batch-order query indices whose outputs are
	// partial: at least one index's shard and its replica were both
	// unreachable, so the pooled vector omits those contributions.
	LostQueries []int
	// LostIndexCounts aligns with LostQueries: how many of that query's
	// index reads were dropped. The serving layer's hot-embedding cache
	// needs the per-query count to finalize mean pooling by the true
	// survivor count when it has stripped cached indices from the batch.
	LostIndexCounts []int
}

// AddLost records n dropped index reads for batch query q, keeping
// LostQueries sorted and LostIndexCounts aligned. Repeated losses for the
// same query accumulate onto one entry.
func (d *DegradedReport) AddLost(q, n int) {
	for i, v := range d.LostQueries {
		if v == q {
			d.LostIndexCounts[i] += n
			return
		}
		if v > q {
			d.LostQueries = append(d.LostQueries, 0)
			copy(d.LostQueries[i+1:], d.LostQueries[i:])
			d.LostQueries[i] = q
			d.LostIndexCounts = append(d.LostIndexCounts, 0)
			copy(d.LostIndexCounts[i+1:], d.LostIndexCounts[i:])
			d.LostIndexCounts[i] = n
			return
		}
	}
	d.LostQueries = append(d.LostQueries, q)
	d.LostIndexCounts = append(d.LostIndexCounts, n)
}

// ShardDegraded describes one shard's contribution to a fleet-level degraded
// result: how its sub-lookup failed, whether the replica shard answered in
// its place, and how much data the batch lost when it did not.
type ShardDegraded struct {
	// Shard is the fleet-level shard identifier.
	Shard int
	// State is the shard's breaker state after the batch: "healthy",
	// "suspect", or "dark".
	State string
	// FailedOver reports that the replica shard served this shard's
	// sub-lookup, so no data was lost.
	FailedOver bool
	// LostQueries and LostIndices count the queries and index reads dropped
	// when neither the shard nor its replica could answer.
	LostQueries int
	LostIndices int
	// FailedRanks lists the shard-local ranks dark by the end of its last
	// successful sub-lookup.
	FailedRanks []int
	// Err is the structured error that triggered failover, rendered.
	Err string
}

// Empty reports whether the report records no degradation work at all — a
// fault plan was attached but nothing fired. The serving layer uses it to
// flag only genuinely degraded responses.
func (d *DegradedReport) Empty() bool {
	return d == nil || (len(d.FailedRanks) == 0 && d.RemappedReads == 0 &&
		d.Retries == 0 && len(d.Shards) == 0 && len(d.LostQueries) == 0)
}

// Seconds converts the total latency to seconds at the PE clock.
func (r TimedResult) Seconds(cfg Config) float64 {
	return sim.Seconds(r.TotalCycles, cfg.ClockMHz)
}

// Lookup runs a batch functionally (no timing): the batch is compiled with
// deduplication, split into hardware batches of at most BatchCapacity
// queries, and pushed through the tree. The outputs are validated to cover
// every query.
func (e *Engine) Lookup(store *embedding.Store, layout Placement, b embedding.Batch) (*Result, error) {
	res := &Result{Outputs: make([]tensor.Vector, len(b.Queries))}
	starts := e.hwBatchStarts(len(b.Queries))
	res.HWBatches = len(starts)

	if e.parallelism() > 1 && len(starts) > 1 {
		// Pipelined: hardware batches compile, read, and reduce concurrently.
		// Each batch resolves into a disjoint region of res.Outputs; the
		// per-batch statistics are folded in program order afterwards so the
		// result is bit-identical to the serial loop.
		partials := make([]Result, len(starts))
		errs := make([]error, len(starts))
		sem := make(chan struct{}, e.parallelism())
		var wg sync.WaitGroup
		for k, start := range starts {
			wg.Add(1)
			go func(k, start int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				partials[k].Outputs = res.Outputs // disjoint [start,end) writes
				sub := e.hwBatch(b, start)
				plan := batch.Build(sub, true)
				errs[k] = e.runPlan(store, layout, plan, start, &partials[k])
			}(k, start)
		}
		wg.Wait()
		for k := range starts {
			if errs[k] != nil {
				return nil, errs[k]
			}
			res.PETotals.Add(partials[k].PETotals)
			if partials[k].MaxOccupancy > res.MaxOccupancy {
				res.MaxOccupancy = partials[k].MaxOccupancy
			}
			res.MemoryReads += partials[k].MemoryReads
		}
	} else {
		for _, start := range starts {
			sub := e.hwBatch(b, start)
			plan := batch.Build(sub, true)
			if err := e.runPlan(store, layout, plan, start, res); err != nil {
				return nil, err
			}
		}
	}
	for qi, out := range res.Outputs {
		if out == nil {
			return nil, fmt.Errorf("fafnir: query %d produced no output: %w", qi, fault.ErrInvariantViolated)
		}
	}
	return res, nil
}

// hwBatchStarts lists the query offsets at which hardware batches begin.
func (e *Engine) hwBatchStarts(n int) []int {
	starts := make([]int, 0, (n+e.cfg.BatchCapacity-1)/e.cfg.BatchCapacity)
	for s := 0; s < n; s += e.cfg.BatchCapacity {
		starts = append(starts, s)
	}
	return starts
}

// hwBatch slices the software batch's queries for the hardware batch at the
// given start offset.
func (e *Engine) hwBatch(b embedding.Batch, start int) embedding.Batch {
	end := start + e.cfg.BatchCapacity
	if end > len(b.Queries) {
		end = len(b.Queries)
	}
	return embedding.Batch{Queries: b.Queries[start:end], Op: b.Op}
}

// runPlan pushes one hardware batch through the tree and stores the resolved
// outputs at offset qBase of res.Outputs. The scratch lease spans the whole
// batch — leaf staging, tree evaluation, and resolve — because the tree's
// entries live in the scratch's arenas; resolve clones the outputs it keeps.
func (e *Engine) runPlan(store *embedding.Store, layout Placement, plan *batch.Plan, qBase int, res *Result) error {
	sc := e.getTreeScratch()
	defer e.putTreeScratch(sc)

	op := plan.Batch().Op
	leafIn, err := e.leafInputs(sc, store, layout, plan, nil)
	if err != nil {
		return err
	}
	res.MemoryReads += plan.NumAccesses()

	outputs, err := e.runTree(sc, op, leafIn, &res.PETotals, &res.MaxOccupancy, nil)
	if err != nil {
		return err
	}
	return e.resolve(plan, outputs, qBase, res)
}

// rankEntries groups the leaf entries of one hardware batch by the global
// rank they were read from; the slice is indexed by rank.
type rankEntries [][]Entry

// leafInputs reads every planned access from the store and builds the leaf
// entries, grouped by rank. The per-rank buffers are carved out of one arena
// reservation and the staging slices live on the scratch, so the steady-state
// hot path allocates nothing regardless of batch size. Leaf headers alias the
// plan: the Queries field shares acc.Remaining directly (headers are
// immutable in flight and the plan outlives the lease) and Indices is a
// one-element arena set. remap overrides the placement rank for indices whose
// reads the host redirected to a replica (nil when no faults are injected);
// the entry must enter the tree at the leaf that actually served the read so
// the functional and timing passes agree.
func (e *Engine) leafInputs(sc *treeScratch, store *embedding.Store, layout Placement, plan *batch.Plan, remap map[header.Index]int) (rankEntries, error) {
	ws := sc.worker(0)
	in := sc.in
	counts := sc.counts
	clear(in)
	clear(counts)
	for _, acc := range plan.Accesses {
		r := layout.Rank(acc.Index)
		if rr, ok := remap[acc.Index]; ok {
			r = rr
		}
		if r < 0 || r >= e.cfg.NumRanks {
			return nil, fmt.Errorf("fafnir: index %d maps to rank %d beyond the tree's %d ranks",
				acc.Index, r, e.cfg.NumRanks)
		}
		counts[r]++
	}
	buf := ws.ents.alloc(plan.NumAccesses())
	off := 0
	for r, c := range counts {
		if c == 0 {
			continue
		}
		in[r] = buf[off : off : off+c]
		off += c
	}
	dim := store.Dim()
	for _, acc := range plan.Accesses {
		r := layout.Rank(acc.Index)
		if rr, ok := remap[acc.Index]; ok {
			r = rr
		}
		v := ws.vals.alloc(dim)
		if err := store.VectorInto(acc.Index, v); err != nil {
			return nil, err
		}
		in[r] = append(in[r], Entry{Value: v, Header: header.Header{
			Indices: ws.single(acc.Index),
			Queries: acc.Remaining,
		}})
	}
	return in, nil
}

// runTree evaluates every PE bottom-up on the leased scratch and returns the
// root outputs (arena-backed: valid until the scratch is released). When
// perPE is non-nil it must have NumPEs slots and receives each node's
// post-merge stats indexed by PE ID (used by the timing engine); callers
// usually pass the scratch's own perPE slice.
//
// With Parallelism > 1 the tree evaluates on the dependency-driven scheduler
// of parallel.go; either way each node's result is a pure function of its
// children's, and all accounting folds in fixed construction order below, so
// outputs and statistics are bit-identical at every Parallelism setting.
func (e *Engine) runTree(sc *treeScratch, op tensor.ReduceOp, in rankEntries, totals *PEStats, maxOcc *int, perPE []PEStats) ([]Entry, error) {
	if err := e.evalTree(op, in, sc); err != nil {
		return nil, err
	}

	// flat is in construction order: leaves first, IDs ascending.
	for i := range e.flat {
		st := sc.proc[i]
		if totals != nil {
			if e.flat[i].leaf {
				s := sc.self[i]
				totals.Reduces += s.Reduces
				totals.Compares += s.Compares
				totals.MergedDuplicates += s.MergedDuplicates
			}
			totals.Add(st)
		}
		if maxOcc != nil && st.Outputs > *maxOcc {
			*maxOcc = st.Outputs
		}
		if perPE != nil {
			perPE[i] = st
		}
	}
	return sc.memo[e.rootID], nil
}

// checkRootConservation is the always-on cheap invariant checker run on
// every hardware batch's root outputs: each output must still carry query
// accounting (a header that lost its query sets can never resolve), and each
// complete output's index set must correspond to a batch query. Violations
// mean the reduction tree corrupted header state and are reported as
// structured fault.ErrInvariantViolated errors rather than silently dropping
// queries.
func checkRootConservation(plan *batch.Plan, outputs []Entry) error {
	for _, out := range outputs {
		if len(out.Header.Queries) == 0 {
			return fmt.Errorf("fafnir: root output %v carries no query sets: %w",
				out.Header.Indices, fault.ErrInvariantViolated)
		}
		if out.Header.Complete() && len(plan.QueriesFor(out.Header.Indices)) == 0 {
			return fmt.Errorf("fafnir: root output %v matches no query: %w",
				out.Header.Indices, fault.ErrInvariantViolated)
		}
	}
	return nil
}

// resolve maps complete root outputs back to query positions.
func (e *Engine) resolve(plan *batch.Plan, outputs []Entry, qBase int, res *Result) error {
	if err := checkRootConservation(plan, outputs); err != nil {
		return err
	}
	sub := plan.Batch()
	for _, out := range outputs {
		if !out.Header.Complete() {
			// Dead partial reduction (a query's chain that took a side
			// branch); the root discards it.
			continue
		}
		qids := plan.QueriesFor(out.Header.Indices)
		for _, qi := range qids {
			if res.Outputs[qBase+qi] != nil {
				continue // duplicate completion via another path
			}
			v := out.Value.Clone()
			sub.Op.FinalizeMean(v, sub.Queries[qi].Indices.Len())
			res.Outputs[qBase+qi] = v
		}
	}
	return nil
}

// TimedLookup runs the batch with full timing against the shared DRAM model.
// dedup selects whether the host compiles unique accesses (the paper's
// default) or issues every access (the Fig. 13 ablation).
//
// The timing model is a wave model: all planned reads are issued to the DRAM
// system at cycle zero (per-rank queues serialize them), each leaf PE starts
// when the last of its ranks' reads lands, and every PE finishes one stage
// latency after its inputs are ready plus one cycle per additional output
// (the pipelined initiation interval). Successive hardware batches begin
// after the previous batch's reads complete, modelling the double-buffered
// input FIFOs.
func (e *Engine) TimedLookup(store *embedding.Store, layout Placement, mem *dram.System, b embedding.Batch, dedup bool) (*TimedResult, error) {
	return e.timedLookup(store, layout, mem, b, dedup, nil)
}

// TimedLookupFaulted is TimedLookup under an attached fault injector: reads
// bound for a dark rank are remapped to the replica placement, ECC-flagged
// reads are retried with capped exponential backoff (the cost lands in
// TotalCycles), and stalled PEs charge their extra latency in the tree walk.
// The returned result carries a DegradedReport. With a nil or inactive
// injector the run is bit-identical to TimedLookup.
func (e *Engine) TimedLookupFaulted(store *embedding.Store, layout Placement, mem *dram.System, b embedding.Batch, dedup bool, inj *fault.Injector) (*TimedResult, error) {
	return e.timedLookup(store, layout, mem, b, dedup, inj)
}

// readFaulted performs one vector read under fault injection: a dark primary
// rank redirects to the replica placement, and ECC-flagged returns are
// retried with capped exponential backoff in the memory clock. It returns
// the effective rank that served the read and its completion cycle.
func (e *Engine) readFaulted(layout Placement, mem *dram.System, inj *fault.Injector,
	idx header.Index, clock sim.Cycle, res *TimedResult, deg *DegradedReport) (int, sim.Cycle, error) {
	rank := layout.Rank(idx)
	addr := layout.Addr(idx)
	if inj.RankFailed(rank, clock) {
		rp, ok := layout.(ReplicatedPlacement)
		if !ok {
			return 0, 0, fmt.Errorf("fafnir: index %d lives on dark rank %d and the placement keeps no replicas: %w",
				idx, rank, fault.ErrRankFailed)
		}
		rrank, raddr, err := rp.Replica(idx)
		if err != nil {
			return 0, 0, err
		}
		if inj.RankFailed(rrank, clock) {
			return 0, 0, fmt.Errorf("fafnir: index %d primary rank %d and replica rank %d are both dark: %w",
				idx, rank, rrank, fault.ErrRankFailed)
		}
		rank, addr = rrank, raddr
		deg.RemappedReads++
	}
	done, err := mem.ReadChecked(clock, addr, layout.VectorBytes(), dram.DestLocal)
	if err != nil {
		// The rank died between the host's liveness check and the read
		// reaching the memory controller (failure cycle inside this batch).
		return 0, 0, err
	}
	res.BytesRead += uint64(layout.VectorBytes())
	if inj.ReadFault() {
		first := done
		plan := inj.Plan()
		recovered := false
		for attempt := 1; attempt <= plan.Retries(); attempt++ {
			done = mem.Read(done+plan.BackoffAt(attempt), addr, layout.VectorBytes(), dram.DestLocal)
			res.BytesRead += uint64(layout.VectorBytes())
			deg.Retries++
			if !inj.ReadFault() {
				recovered = true
				break
			}
		}
		if !recovered {
			return 0, 0, fmt.Errorf("fafnir: read of index %d still corrupt after %d retries: %w",
				idx, plan.Retries(), fault.ErrRetriesExhausted)
		}
		deg.RetryCycles += done - first
	}
	return rank, done, nil
}

// funcPass is the timing-independent work of one hardware batch: the
// compiled plan, the functional tree reduction, and its accounting. In
// pipelined mode later batches compute their pass concurrently while earlier
// batches are being timed.
type funcPass struct {
	plan    *batch.Plan
	sc      *treeScratch // leased for the pass; released by the timed loop
	outputs []Entry      // arena-backed; valid while sc is leased
	perPE   []PEStats    // aliases sc.perPE
	totals  PEStats
	maxOcc  int
	err     error
	done    chan struct{}
}

// release returns the pass's scratch (if any) to the pool, invalidating its
// outputs and per-PE stats.
func (p *funcPass) release(e *Engine) {
	if p.sc != nil {
		e.putTreeScratch(p.sc)
		p.sc = nil
		p.outputs = nil
		p.perPE = nil
	}
}

// runFuncPass compiles the batch (unless already compiled) and runs the
// functional tree reduction, filling the pass in place. The pass holds its
// scratch lease so the arena-backed outputs survive until the serial timed
// loop has resolved and traced the batch.
func (e *Engine) runFuncPass(p *funcPass, store *embedding.Store, layout Placement, b embedding.Batch, start int, dedup bool, remap map[header.Index]int) {
	if p.plan == nil {
		p.plan = batch.Build(e.hwBatch(b, start), dedup)
	}
	p.sc = e.getTreeScratch()
	leafIn, err := e.leafInputs(p.sc, store, layout, p.plan, remap)
	if err != nil {
		p.err = err
		return
	}
	p.perPE = p.sc.perPE
	p.outputs, p.err = e.runTree(p.sc, b.Op, leafIn, &p.totals, &p.maxOcc, p.perPE)
}

// treeTiming propagates input readiness up the tree in the PE clock domain
// and returns per-node completion times (indexed by PE ID). leafReady holds
// each leaf's last DRAM arrival in the memory clock domain. ready is reused
// across batches; every node's slot is overwritten.
func (e *Engine) treeTiming(leafReady, ready []sim.Cycle, perPE []PEStats, inj *fault.Injector, faulted bool) sim.Cycle {
	stage := e.cfg.Latency.StageLatency()
	// flat is in construction order: children precede parents.
	for i := range e.flat {
		n := &e.flat[i]
		var inReady sim.Cycle
		if n.leaf {
			inReady = e.cfg.DRAMToPE(leafReady[i])
		} else {
			inReady = ready[n.left]
			if n.right >= 0 {
				inReady = sim.Max(inReady, ready[n.right])
			}
		}
		occ := perPE[i].Outputs
		t := inReady + stage
		if occ > 1 {
			t += sim.Cycle(occ - 1)
		}
		if faulted {
			t += inj.PEStall(i)
		}
		ready[i] = t
	}
	return ready[e.rootID]
}

func (e *Engine) timedLookup(store *embedding.Store, layout Placement, mem *dram.System, b embedding.Batch, dedup bool, inj *fault.Injector) (*TimedResult, error) {
	res := &TimedResult{}
	res.Outputs = make([]tensor.Vector, len(b.Queries))
	faulted := inj.Active()
	var deg *DegradedReport
	if faulted {
		deg = &DegradedReport{}
		res.Degraded = deg
		mem.AttachFaults(inj)
	}
	starts := e.hwBatchStarts(len(b.Queries))
	res.HWBatches = len(starts)

	// Pipelined mode overlaps the compile + leaf-read + tree phases of
	// successive hardware batches with the timing pass of earlier batches.
	// Timing itself is still charged strictly per batch in program order by
	// the loop below (the DRAM model's queues see the exact serial read
	// sequence), so cycle counts are bit-identical to the serial engine.
	// Fault injection threads host state through the read loop (remapped
	// reads feed the functional pass), so faulted runs stay fully serial.
	passes := make([]*funcPass, len(starts))
	pipelined := !faulted && e.parallelism() > 1 && len(starts) > 1
	if pipelined {
		sem := make(chan struct{}, e.parallelism())
		for k, start := range starts {
			p := &funcPass{done: make(chan struct{})}
			passes[k] = p
			go func(p *funcPass, start int) {
				defer close(p.done)
				sem <- struct{}{}
				defer func() { <-sem }()
				e.runFuncPass(p, store, layout, b, start, dedup, nil)
			}(p, start)
		}
	}

	var clock sim.Cycle // DRAM-domain time at which the next batch may issue
	leafReady := make([]sim.Cycle, e.tree.NumPEs())
	ready := make([]sim.Cycle, e.tree.NumPEs())

	for k, start := range starts {
		p := passes[k]
		if pipelined {
			<-p.done
			if p.err != nil {
				p.release(e)
				return nil, p.err
			}
		} else {
			p = &funcPass{}
			passes[k] = p
			p.plan = batch.Build(e.hwBatch(b, start), dedup)
		}
		plan := p.plan
		res.MemoryReads += plan.NumAccesses()

		// Issue every planned read; record per-leaf-input readiness. Under
		// fault injection the host consults the injector per access, remaps
		// dark-rank reads, and charges retry backoff; remap records which
		// leaf each redirected entry enters the tree through.
		clear(leafReady)
		var remap map[header.Index]int
		var memDone sim.Cycle
		for _, acc := range plan.Accesses {
			var rank int
			var done sim.Cycle
			if faulted {
				var err error
				before := deg.RemappedReads
				rank, done, err = e.readFaulted(layout, mem, inj, acc.Index, clock, res, deg)
				if err != nil {
					p.release(e)
					return nil, err
				}
				if deg.RemappedReads > before {
					if remap == nil {
						remap = make(map[header.Index]int)
					}
					remap[acc.Index] = rank
				}
			} else {
				rank = layout.Rank(acc.Index)
				done = mem.Read(clock, layout.Addr(acc.Index), layout.VectorBytes(), dram.DestLocal)
				res.BytesRead += uint64(layout.VectorBytes())
			}
			leaf, err := e.tree.LeafOfRank(rank)
			if err != nil {
				p.release(e)
				return nil, err
			}
			leafReady[leaf.ID] = sim.Max(leafReady[leaf.ID], done)
			memDone = sim.Max(memDone, done)
		}
		if len(remap) > 0 {
			for _, q := range plan.Batch().Queries {
				for _, idx := range q.Indices {
					if _, ok := remap[idx]; ok {
						deg.RemappedQueries++
						break
					}
				}
			}
		}

		// Functional pass to learn per-PE occupancies (precomputed when
		// pipelined; faulted runs need the read loop's remap first).
		if !pipelined {
			e.runFuncPass(p, store, layout, b, start, dedup, remap)
			if p.err != nil {
				p.release(e)
				return nil, p.err
			}
		}
		res.PETotals.Add(p.totals)
		if p.maxOcc > res.MaxOccupancy {
			res.MaxOccupancy = p.maxOcc
		}
		if err := e.resolve(plan, p.outputs, start, &res.Result); err != nil {
			p.release(e)
			return nil, err
		}

		// Propagate readiness up the tree in the PE clock domain.
		rootDone := e.treeTiming(leafReady, ready, p.perPE, inj, faulted)

		// Root-to-host transfer of the completed outputs.
		outBytes := len(p.outputs) * layout.VectorBytes()
		xfer := e.cfg.DRAMToPE(mem.Config().TransferCycles(outBytes))

		// Trace emission happens here, in the serial timed loop, so the
		// event stream is deterministic at every Parallelism setting. clock
		// still holds this batch's issue time.
		if e.tracer != nil {
			e.traceBatch(k, plan.NumAccesses(), len(plan.Batch().Queries),
				clock, leafReady, ready, p.perPE, rootDone+xfer)
		}

		memPE := e.cfg.DRAMToPE(memDone)
		res.MemCycles = memPE
		res.ComputeCycles += rootDone - memPE
		res.TransferCycles += xfer
		res.TotalCycles = rootDone + xfer

		// The batch's outputs and per-PE stats have been fully consumed
		// (resolve clones, treeTiming and traceBatch only read), so the
		// scratch lease ends here and its arenas recycle to the next batch.
		p.release(e)

		// The next hardware batch issues its reads once this batch's reads
		// have drained (input FIFOs double-buffer the tree traversal).
		clock = memDone
	}

	for qi, out := range res.Outputs {
		if out == nil {
			return nil, fmt.Errorf("fafnir: query %d produced no output: %w", qi, fault.ErrInvariantViolated)
		}
	}
	if faulted {
		deg.FailedRanks = inj.FailedRanks(clock)
	}
	// Stage attribution: a single-system lookup is gather+reduce plus the
	// final host transfer. TransferCycles accumulates per hardware batch while
	// TotalCycles is the absolute end time, so clamp defensively to keep the
	// Sum() == TotalCycles invariant even in pathological many-batch shapes.
	xferStage := res.TransferCycles
	if xferStage > res.TotalCycles {
		xferStage = res.TotalCycles
	}
	res.Stages = StageCycles{Backend: res.TotalCycles - xferStage, Transfer: xferStage}
	return res, nil
}

// LowerBoundCycles returns an analytic lower bound on the TotalCycles any
// correct timing of batch b can report under this engine's configuration
// against a memory with mcfg's timings: at least one column access (tCAS) and
// one data burst in the memory clock for the first vector, the tree's
// critical path at the Table IV stage latency, and the root-to-host transfer
// of one output vector. The bound is deliberately loose — it ignores row
// activations, queueing, and per-output initiation intervals — so it holds
// for every batch, layout, and DRAM state. The conformance harness
// (internal/oracle) asserts it for every seeded run; an engine reporting
// fewer cycles has a broken clock-domain conversion or dropped a pipeline
// stage. An empty batch bounds at zero.
func (e *Engine) LowerBoundCycles(mcfg dram.Config, b embedding.Batch) sim.Cycle {
	if b.TotalAccesses() == 0 {
		return 0
	}
	mem := e.cfg.DRAMToPE(mcfg.TCAS + mcfg.TBurst)
	compute := sim.Cycle(e.tree.Depth()) * e.cfg.Latency.StageLatency()
	xfer := e.cfg.DRAMToPE(mcfg.TransferCycles(e.cfg.VectorBytes()))
	return mem + compute + xfer
}

// VerifyAgainstGolden compares the engine outputs with the reference
// implementation, returning the first mismatching query (or -1).
func VerifyAgainstGolden(got []tensor.Vector, want []tensor.Vector, tol float64) int {
	for i := range want {
		if i >= len(got) || got[i] == nil || !got[i].ApproxEqual(want[i], tol) {
			return i
		}
	}
	return -1
}

// CheckOccupancyBound validates the paper's buffer bound for a run: no PE
// may hold more than min(n*m+n+m, B) outputs, with n=m=B entries per input.
func CheckOccupancyBound(res *Result, capacity int) error {
	bound := capacity*capacity + 2*capacity
	if capacity < bound {
		bound = capacity
	}
	if res.MaxOccupancy > bound {
		return fmt.Errorf("fafnir: PE occupancy %d exceeds bound %d", res.MaxOccupancy, bound)
	}
	return nil
}

// InteractiveStage is the pipeline-stage latency of interactive mode: with a
// single query in flight "all nodes would either forward or reduce without
// performing any comparisons" (Section IV-C), so the compare unit is
// bypassed and the stage costs only the slower of the parallel action paths.
func (l Latencies) InteractiveStage() sim.Cycle {
	return sim.Max(l.ReduceValue, l.Forward)
}

// InteractiveLookup processes the batch's queries one at a time in the
// paper's interactive mode: no batch headers, no deduplication across
// queries, every PE reduces whenever both inputs hold data and forwards
// otherwise. Latency per query is the memory gather plus the tree depth at
// the comparison-free stage latency; queries are serviced back to back.
//
// The mode trades the throughput of concurrent batch processing for
// per-query latency, and is the right baseline for latency-sensitive
// single-lookup serving.
func (e *Engine) InteractiveLookup(store *embedding.Store, layout Placement, mem *dram.System, b embedding.Batch) (*TimedResult, error) {
	res := &TimedResult{}
	res.Outputs = make([]tensor.Vector, len(b.Queries))

	stage := e.cfg.Latency.InteractiveStage()
	depth := sim.Cycle(e.tree.Depth())
	var clock sim.Cycle // DRAM-domain time

	for qi, q := range b.Queries {
		if q.Indices.Len() == 0 {
			res.Outputs[qi] = tensor.New(e.cfg.VectorDim)
			continue
		}
		// Gather the query's vectors (rank-parallel) and reduce while
		// gathering: the tree output is ready one pipeline depth after the
		// last vector lands.
		var memDone sim.Cycle
		var acc tensor.Vector
		for _, idx := range q.Indices {
			if r := layout.Rank(idx); r >= e.cfg.NumRanks {
				return nil, fmt.Errorf("fafnir: index %d maps to rank %d beyond the tree's %d ranks",
					idx, r, e.cfg.NumRanks)
			}
			done := mem.Read(clock, layout.Addr(idx), layout.VectorBytes(), dram.DestLocal)
			memDone = sim.Max(memDone, done)
			res.BytesRead += uint64(layout.VectorBytes())
			res.MemoryReads++
			v, err := store.Vector(idx)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = v.Clone()
				continue
			}
			if err := b.Op.Apply(acc, v); err != nil {
				return nil, fmt.Errorf("fafnir: interactive reduce: %w", err)
			}
			res.PETotals.Reduces++
		}
		b.Op.FinalizeMean(acc, q.Indices.Len())
		res.Outputs[qi] = acc

		memPE := e.cfg.DRAMToPE(memDone)
		done := memPE + depth*stage + e.cfg.DRAMToPE(mem.Config().TransferCycles(layout.VectorBytes()))
		res.MemCycles = memPE
		res.ComputeCycles += depth * stage
		res.TotalCycles = done
		res.HWBatches++
		clock = memDone
	}
	// Interactive mode folds the per-query transfer into TotalCycles without
	// tracking it separately, so the whole latency attributes to the backend.
	res.Stages = StageCycles{Backend: res.TotalCycles}
	return res, nil
}
