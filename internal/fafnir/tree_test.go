package fafnir

import (
	"strings"
	"testing"
)

func TestTreePaperConfiguration(t *testing.T) {
	// 32 ranks with 1PE:2R -> 16 leaves -> 31 PEs in 5 levels, matching
	// "consisting of 32 ranks, and hence 31 processing elements".
	tree, err := NewTree(Default())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumPEs(); got != 31 {
		t.Fatalf("NumPEs = %d, want 31", got)
	}
	if got := tree.Depth(); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
	if tree.Root().Parent != nil {
		t.Fatal("root has a parent")
	}
}

func TestTreeKinds(t *testing.T) {
	// Four DIMM/rank nodes of 7 PEs each plus one channel node of 3 PEs.
	tree, err := NewTree(Default())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.CountKind(KindDIMMRank); got != 28 {
		t.Fatalf("DIMM/rank PEs = %d, want 28", got)
	}
	if got := tree.CountKind(KindChannel); got != 3 {
		t.Fatalf("channel PEs = %d, want 3", got)
	}
	if KindDIMMRank.String() != "dimm/rank" || KindChannel.String() != "channel" {
		t.Fatal("kind names wrong")
	}
}

func TestTreeConnections(t *testing.T) {
	// The paper's formula: (2m-2) tree links for m=32 attach points plus c
	// host links. Our count separates 32 rank links + 30 PE uplinks = 62 =
	// 2*32-2.
	tree, err := NewTree(Default())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Connections(4); got != 66 {
		t.Fatalf("Connections(4) = %d, want 66", got)
	}
}

func TestTreeLeafOfRank(t *testing.T) {
	tree, err := NewTree(Default())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 32; r++ {
		leaf, err := tree.LeafOfRank(r)
		if err != nil {
			t.Fatal(err)
		}
		if !leaf.IsLeaf() {
			t.Fatalf("rank %d mapped to internal PE", r)
		}
		found := false
		for _, rr := range append(leaf.RanksA, leaf.RanksB...) {
			if rr == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("leaf of rank %d does not list it", r)
		}
	}
	if _, err := tree.LeafOfRank(32); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := tree.LeafOfRank(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestTreeLeafInputSplit(t *testing.T) {
	// 1PE:2R: one rank per input.
	tree, err := NewTree(Default())
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := tree.LeafOfRank(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.RanksA) != 1 || len(leaf.RanksB) != 1 {
		t.Fatalf("leaf inputs %v | %v", leaf.RanksA, leaf.RanksB)
	}
}

func TestTreeOddLeafCount(t *testing.T) {
	// 6 ranks, fan-in 2 -> 3 leaves; the odd leaf carries up: 3 leaf PEs +
	// 1 + 1 internal = 5 PEs.
	cfg := Default()
	cfg.NumRanks = 6
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumPEs(); got != 5 {
		t.Fatalf("NumPEs = %d, want 5", got)
	}
	// Every rank still reaches the root.
	for r := 0; r < 6; r++ {
		leaf, err := tree.LeafOfRank(r)
		if err != nil {
			t.Fatal(err)
		}
		n := leaf
		for n.Parent != nil {
			n = n.Parent
		}
		if n != tree.Root() {
			t.Fatalf("rank %d not connected to root", r)
		}
	}
}

func TestTreeFanIn4(t *testing.T) {
	cfg := Default()
	cfg.LeafFanIn = 4
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 8 leaves -> 8+4+2+1 = 15 PEs.
	if got := tree.NumPEs(); got != 15 {
		t.Fatalf("NumPEs = %d, want 15", got)
	}
	leaf, err := tree.LeafOfRank(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.RanksA) != 2 || len(leaf.RanksB) != 2 {
		t.Fatalf("fan-in 4 leaf inputs %v | %v", leaf.RanksA, leaf.RanksB)
	}
}

func TestTreeFanIn1(t *testing.T) {
	cfg := Default()
	cfg.NumRanks = 4
	cfg.LeafFanIn = 1
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.NumPEs(); got != 7 {
		t.Fatalf("NumPEs = %d, want 7", got)
	}
	leaf, err := tree.LeafOfRank(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.RanksA) != 1 || len(leaf.RanksB) != 0 {
		t.Fatalf("fan-in 1 leaf inputs %v | %v", leaf.RanksA, leaf.RanksB)
	}
}

func TestTreeRejectsInvalidConfig(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumRanks = 0 },
		func(c *Config) { c.LeafFanIn = 0 },
		func(c *Config) { c.NumRanks = 10; c.LeafFanIn = 4 },
		func(c *Config) { c.BatchCapacity = 0 },
		func(c *Config) { c.VectorDim = 0 },
		func(c *Config) { c.Op = 99 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.DRAMClockMHz = 0 },
	}
	for i, m := range bad {
		cfg := Default()
		m(&cfg)
		if _, err := NewTree(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTreeString(t *testing.T) {
	cfg := Default()
	cfg.NumRanks = 4
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.String()
	if !strings.Contains(s, "level 0:") || !strings.Contains(s, "level 1:") {
		t.Fatalf("String missing levels:\n%s", s)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Default()
	if cfg.NumLeaves() != 16 {
		t.Fatalf("NumLeaves = %d", cfg.NumLeaves())
	}
	if cfg.VectorBytes() != 512 {
		t.Fatalf("VectorBytes = %d", cfg.VectorBytes())
	}
	// 1200 MHz DRAM -> 200 MHz PE is a 6:1 ratio.
	if got := cfg.DRAMToPE(12); got != 2 {
		t.Fatalf("DRAMToPE(12) = %d, want 2", got)
	}
	if got := cfg.DRAMToPE(13); got != 3 {
		t.Fatalf("DRAMToPE(13) = %d, want 3 (round up)", got)
	}
}

func TestTableIVStageLatency(t *testing.T) {
	l := TableIV()
	// compare(12) + reduce-header(16) = 28, since reduce beats forward.
	if got := l.StageLatency(); got != 28 {
		t.Fatalf("StageLatency = %d, want 28", got)
	}
}

func TestTreeDOT(t *testing.T) {
	cfg := Default()
	cfg.NumRanks = 4
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dot := tree.DOT()
	for _, want := range []string{"digraph fafnir", "rank0", "pe0", "host", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
