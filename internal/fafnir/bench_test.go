package fafnir

import (
	"testing"

	"fafnir/internal/batch"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/telemetry"
	"fafnir/internal/tensor"
)

func benchInputs(b *testing.B, n int) ([]Entry, []Entry) {
	b.Helper()
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: n, QuerySize: 8, Rows: 4096, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	bt := gen.Batch(tensor.OpSum)
	plan := batch.Build(bt, true)
	store := embedding.MustStore(4096, 32, 1)
	var inA, inB []Entry
	for i, acc := range plan.Accesses {
		e := Entry{Value: store.MustVector(acc.Index), Header: acc.LeafHeader()}
		if i%2 == 0 {
			inA = append(inA, e)
		} else {
			inB = append(inB, e)
		}
	}
	inA, _, err = SelfMerge(tensor.OpSum, inA)
	if err != nil {
		b.Fatal(err)
	}
	inB, _, err = SelfMerge(tensor.OpSum, inB)
	if err != nil {
		b.Fatal(err)
	}
	return inA, inB
}

func BenchmarkProcessPE(b *testing.B) {
	inA, inB := benchInputs(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ProcessPE(tensor.OpSum, inA, inB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfMerge(b *testing.B) {
	inA, _ := benchInputs(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SelfMerge(tensor.OpSum, inA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimedLookup32(b *testing.B) {
	cfg := Default()
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	store := embedding.MustStore(1<<20, 128, 2)
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 32, QuerySize: 16, Rows: 1 << 20, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	bt := gen.Batch(tensor.OpSum)
	pl := modBenchPlacement{ranks: 32, bytes: 512}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.TimedLookup(store, pl, dram.MustSystem(dram.DDR4()), bt, true); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTreeSetup compiles one hardware batch against the paper's default
// 31-PE tree, for the runTree/leafInputs hot-path benchmarks.
func benchTreeSetup(b *testing.B, par int) (*Engine, *batch.Plan, *embedding.Store, modBenchPlacement) {
	b.Helper()
	cfg := Default()
	cfg.VectorDim = 32
	cfg.Parallelism = par
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 32, QuerySize: 16, Rows: 1 << 16, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan := batch.Build(gen.Batch(tensor.OpSum), true)
	store := embedding.MustStore(1<<16, 32, 3)
	return e, plan, store, modBenchPlacement{ranks: 32, bytes: 128}
}

// BenchmarkLeafInputs measures building the per-rank leaf entries of one
// hardware batch, including the scratch lease/release around it — the real
// steady-state per-batch cost (arena-backed: ~zero allocs/op).
func BenchmarkLeafInputs(b *testing.B) {
	e, plan, store, pl := benchTreeSetup(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := e.getTreeScratch()
		if _, err := e.leafInputs(sc, store, pl, plan, nil); err != nil {
			b.Fatal(err)
		}
		e.putTreeScratch(sc)
	}
}

// BenchmarkRunTree measures one full tree reduction of a batch-32 hardware
// batch, serial vs the asynchronous scheduler, including the per-iteration
// scratch lease/release (the real steady-state cost). The leaf inputs are
// staged once on a scratch that is deliberately never released, so they stay
// valid across iterations.
func BenchmarkRunTree(b *testing.B) {
	for _, par := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "serial"
		if par == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			e, plan, store, pl := benchTreeSetup(b, par)
			leafSc := e.getTreeScratch() // holds the leaf entries; never released
			leafIn, err := e.leafInputs(leafSc, store, pl, plan, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var totals PEStats
				var maxOcc int
				sc := e.getTreeScratch()
				if _, err := e.runTree(sc, tensor.OpSum, leafIn, &totals, &maxOcc, sc.perPE); err != nil {
					b.Fatal(err)
				}
				e.putTreeScratch(sc)
			}
		})
	}
}

// BenchmarkTimedLookupTrace compares the timed path with tracing detached
// (the production default: one nil check per batch) against a run collecting
// the full PE/DRAM event stream. The "off" case is what BENCH_*.json tracks.
func BenchmarkTimedLookupTrace(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Default()
			cfg.VectorDim = 32
			cfg.Parallelism = 1
			e, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
				NumQueries: 32, QuerySize: 16, Rows: 1 << 16, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			bt := gen.Batch(tensor.OpSum)
			store := embedding.MustStore(1<<16, 32, 3)
			pl := modBenchPlacement{ranks: 32, bytes: 128}
			var tr *telemetry.Trace
			if traced {
				tr = telemetry.NewTrace()
				e.AttachTracer(tr)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mem := dram.MustSystem(dram.DDR4())
				if traced {
					tr.Reset()
					mem.AttachTracer(tr)
				}
				if _, err := e.TimedLookup(store, pl, mem, bt, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type modBenchPlacement struct {
	ranks int
	bytes int
}

func (p modBenchPlacement) Rank(idx uint32) int { return int(idx) % p.ranks }
func (p modBenchPlacement) Addr(idx uint32) dram.Addr {
	return dram.Addr(uint64(idx) * uint64(p.bytes))
}
func (p modBenchPlacement) VectorBytes() int { return p.bytes }
