package fafnir

import (
	"runtime/debug"
	"testing"

	"fafnir/internal/batch"
	"fafnir/internal/embedding"
	"fafnir/internal/tensor"
)

// Allocation budgets for the hot path. The async scheduler PR flattened the
// tree into an arena and moved every per-action allocation (vector clones,
// index-set unions, Queries slices) into per-worker bump allocators, so the
// steady-state costs below are structural invariants, not tuning targets: a
// budget breach means an arena was lost, a scratch stopped being pooled, or a
// slice started escaping again.
//
// Budgets are set with headroom above the measured steady state (noted per
// test) so noise — a map resize, a pool miss after a GC — does not flake, but
// a real regression (hundreds or thousands of allocs/op) trips immediately.

// allocsPerRun reports the steady-state allocations of f, warming once first
// so lazily-grown pools and arenas reach their peak before measurement. GC is
// disabled across the measured runs: a collection mid-measurement empties the
// sync.Pool'd scratches and charges a full rebuild to one run, which is pool
// behavior under memory pressure, not the hot path's allocation rate.
func allocsPerRun(t *testing.T, f func()) float64 {
	t.Helper()
	if raceDetectorEnabled {
		// The race-enabled runtime randomly drops sync.Pool Puts to exercise
		// miss paths, so every budget here flakes on pool-rebuild noise.
		t.Skip("alloc budgets are noise under -race (randomized sync.Pool)")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // warm pools and arena chunks, now safe from eviction
	return testing.AllocsPerRun(10, f)
}

// TestRunTreeAllocBudget pins the full tree reduction of one batch-32
// hardware batch, including the scratch lease/release. Measured steady
// state: 0 allocs/op (acceptance bound for this PR: <= 100).
func TestRunTreeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budgets are not short-mode material")
	}
	e, plan, store, pl := allocTreeSetup(t, 1)
	leafSc := e.getTreeScratch() // holds leaf entries across runs; never released
	leafIn, err := e.leafInputs(leafSc, store, pl, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := allocsPerRun(t, func() {
		var totals PEStats
		var maxOcc int
		sc := e.getTreeScratch()
		if _, err := e.runTree(sc, tensor.OpSum, leafIn, &totals, &maxOcc, sc.perPE); err != nil {
			t.Fatal(err)
		}
		e.putTreeScratch(sc)
	})
	const budget = 16
	if got > budget {
		t.Errorf("runTree: %.0f allocs/op, budget %d", got, budget)
	}
}

// TestLeafInputsAllocBudget pins building the per-rank leaf entries of one
// hardware batch. Measured steady state: ~1 alloc/op (the per-rank entry
// index map rebuilt per batch).
func TestLeafInputsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budgets are not short-mode material")
	}
	e, plan, store, pl := allocTreeSetup(t, 1)
	got := allocsPerRun(t, func() {
		sc := e.getTreeScratch()
		if _, err := e.leafInputs(sc, store, pl, plan, nil); err != nil {
			t.Fatal(err)
		}
		e.putTreeScratch(sc)
	})
	const budget = 32
	if got > budget {
		t.Errorf("leafInputs: %.0f allocs/op, budget %d", got, budget)
	}
}

// TestLookupAllocBudget pins the whole functional batch-32 Lookup: plan
// compilation, leaf staging, tree reduction, and result resolution. The
// outputs and the plan escape by design, so this budget is necessarily
// nonzero; measured steady state is ~334 allocs/op (down from ~11.6k before
// the arena work).
func TestLookupAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budgets are not short-mode material")
	}
	e, plan, store, pl := allocTreeSetup(t, 1)
	bt := plan.Batch()
	got := allocsPerRun(t, func() {
		if _, err := e.Lookup(store, pl, bt); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1000
	if got > budget {
		t.Errorf("Lookup(batch=32): %.0f allocs/op, budget %d", got, budget)
	}
}

// allocTreeSetup mirrors benchTreeSetup for tests: one batch-32 hardware
// batch against the default 31-PE tree.
func allocTreeSetup(t *testing.T, par int) (*Engine, *batch.Plan, *embedding.Store, modBenchPlacement) {
	t.Helper()
	cfg := Default()
	cfg.VectorDim = 32
	cfg.Parallelism = par
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 32, QuerySize: 16, Rows: 1 << 16, Dist: embedding.Zipf, ZipfS: 1.3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := batch.Build(gen.Batch(tensor.OpSum), true)
	store := embedding.MustStore(1<<16, 32, 3)
	return e, plan, store, modBenchPlacement{ranks: 32, bytes: 128}
}
