//go:build !race

package fafnir

// raceDetectorEnabled reports whether this test binary was built with -race.
const raceDetectorEnabled = false
