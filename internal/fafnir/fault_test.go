package fafnir

import (
	"errors"
	"testing"

	"fafnir/internal/batch"
	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/fault"
	"fafnir/internal/header"
	"fafnir/internal/memmap"
	"fafnir/internal/tensor"
)

// faultFixture builds the standard degraded-mode test rig: the paper's DDR4
// geometry, a small table set, and a deterministic batch.
type faultFixture struct {
	mcfg   dram.Config
	layout *memmap.Layout
	store  *embedding.Store
	eng    *Engine
	batch  embedding.Batch
}

func newFaultFixture(t *testing.T, op tensor.ReduceOp) *faultFixture {
	t.Helper()
	mcfg := dram.DDR4()
	layout := memmap.Uniform(mcfg, 512, 4, 256)
	store := embedding.MustStore(layout.TotalRows(), 16, 7)
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: 16, QuerySize: 4, Rows: layout.TotalRows(), Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Default())
	if err != nil {
		t.Fatal(err)
	}
	return &faultFixture{
		mcfg: mcfg, layout: layout, store: store, eng: eng, batch: gen.Batch(op),
	}
}

func (f *faultFixture) run(t *testing.T, plan fault.Plan) (*TimedResult, error) {
	t.Helper()
	var inj *fault.Injector
	if !plan.Empty() {
		var err error
		inj, err = fault.NewInjector(plan, f.mcfg.TotalRanks())
		if err != nil {
			t.Fatal(err)
		}
	}
	return f.eng.TimedLookupFaulted(f.store, f.layout, dram.MustSystem(f.mcfg), f.batch, true, inj)
}

// Degraded-mode correctness (the PR's acceptance scenario): one failed rank,
// reads remapped to the replica placement, and the outputs must stay
// bit-identical to the fault-free run for every pooling operation — only the
// cycle counts may move.
func TestDegradedLookupBitIdenticalAcrossOps(t *testing.T) {
	ops := []struct {
		name string
		op   tensor.ReduceOp
	}{
		{"sum", tensor.OpSum},
		{"min", tensor.OpMin},
		{"max", tensor.OpMax},
		{"mean", tensor.OpMean},
	}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			f := newFaultFixture(t, tc.op)
			clean, err := f.run(t, fault.Plan{})
			if err != nil {
				t.Fatal(err)
			}
			if clean.Degraded != nil {
				t.Fatal("fault-free run carries a DegradedReport")
			}

			// Fail the rank holding the first query's first index, from
			// cycle zero.
			dark := f.layout.Rank(f.batch.Queries[0].Indices[0])
			res, err := f.run(t, fault.Plan{RankFailures: []fault.RankFailure{{Rank: dark, At: 0}}})
			if err != nil {
				t.Fatal(err)
			}
			for qi := range clean.Outputs {
				if !res.Outputs[qi].Equal(clean.Outputs[qi]) {
					t.Fatalf("query %d output diverged under rank failure", qi)
				}
			}
			d := res.Degraded
			if d == nil {
				t.Fatal("faulted run reports no degradation")
			}
			if d.RemappedReads < 1 || d.RemappedQueries < 1 {
				t.Fatalf("expected remapped work, got %+v", d)
			}
			if len(d.FailedRanks) != 1 || d.FailedRanks[0] != dark {
				t.Fatalf("FailedRanks = %v, want [%d]", d.FailedRanks, dark)
			}
		})
	}
}

// The empty plan must be a true no-op: identical cycles, outputs, and DRAM
// traffic to the unfaulted entry point.
func TestEmptyFaultPlanZeroOverhead(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	base, err := f.eng.TimedLookup(f.store, f.layout, dram.MustSystem(f.mcfg), f.batch, true)
	if err != nil {
		t.Fatal(err)
	}
	viaFault, err := f.run(t, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if viaFault.TotalCycles != base.TotalCycles ||
		viaFault.MemCycles != base.MemCycles ||
		viaFault.ComputeCycles != base.ComputeCycles ||
		viaFault.BytesRead != base.BytesRead ||
		viaFault.MemoryReads != base.MemoryReads {
		t.Fatalf("empty plan perturbed timing: %+v vs %+v", viaFault, base)
	}
	for qi := range base.Outputs {
		if !viaFault.Outputs[qi].Equal(base.Outputs[qi]) {
			t.Fatalf("empty plan perturbed output %d", qi)
		}
	}
	if viaFault.Degraded != nil {
		t.Fatal("empty plan produced a DegradedReport")
	}
}

// ECC-flagged reads retry with backoff: outputs unchanged, retries counted,
// and the retry cost visible in the total.
func TestTransientReadFaultsRetryAndRecover(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	clean, err := f.run(t, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.run(t, fault.Plan{Seed: 3, ReadFaultProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degraded
	if d == nil || d.Retries < 1 {
		t.Fatalf("expected retries at 20%% fault rate over %d reads, got %+v", res.MemoryReads, d)
	}
	if d.RetryCycles == 0 {
		t.Fatal("retries charged no cycles")
	}
	if res.TotalCycles <= clean.TotalCycles {
		t.Fatalf("retry cost invisible: %d <= %d", res.TotalCycles, clean.TotalCycles)
	}
	for qi := range clean.Outputs {
		if !res.Outputs[qi].Equal(clean.Outputs[qi]) {
			t.Fatalf("query %d output diverged under transient faults", qi)
		}
	}
}

// When every retry attempt faults, the engine reports ErrRetriesExhausted
// instead of returning corrupt data (or panicking).
func TestRetriesExhausted(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	_, err := f.run(t, fault.Plan{
		Seed:                 1,
		ReadFaultProb:        0.999,
		MaxConsecutiveFaults: 100,
		MaxRetries:           2,
	})
	if !errors.Is(err, fault.ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
}

// When both the primary and the replica rank are dark, the lookup fails with
// a structured ErrRankFailed.
func TestPrimaryAndReplicaDark(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	idx := f.batch.Queries[0].Indices[0]
	primary := f.layout.Rank(idx)
	replica, _, err := f.layout.Replica(idx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.run(t, fault.Plan{RankFailures: []fault.RankFailure{
		{Rank: primary, At: 0},
		{Rank: replica, At: 0},
	}})
	if !errors.Is(err, fault.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
}

// A placement without replicas cannot degrade: a dark rank is a structured
// failure, not a panic.
func TestRankFailureWithoutReplicasErrors(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	inj, err := fault.NewInjector(fault.Plan{
		RankFailures: []fault.RankFailure{{Rank: f.layout.Rank(f.batch.Queries[0].Indices[0]), At: 0}},
	}, f.mcfg.TotalRanks())
	if err != nil {
		t.Fatal(err)
	}
	bare := barePlacement{l: f.layout}
	_, err = f.eng.TimedLookupFaulted(f.store, bare, dram.MustSystem(f.mcfg), f.batch, true, inj)
	if !errors.Is(err, fault.ErrRankFailed) {
		t.Fatalf("want ErrRankFailed, got %v", err)
	}
}

// barePlacement strips the Replica method off a layout (a named field, not
// an embedding, so the method is not promoted).
type barePlacement struct{ l *memmap.Layout }

func (b barePlacement) Rank(idx header.Index) int       { return b.l.Rank(idx) }
func (b barePlacement) Addr(idx header.Index) dram.Addr { return b.l.Addr(idx) }
func (b barePlacement) VectorBytes() int                { return b.l.VectorBytes() }

// A stalled PE charges exactly its extra latency on the critical path (the
// root is on every path), without touching values.
func TestPEStallChargesLatency(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	clean, err := f.run(t, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 500
	res, err := f.run(t, fault.Plan{PEStalls: []fault.PEStall{{PE: f.eng.Tree().Root().ID, Extra: extra}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalCycles - clean.TotalCycles; got != extra {
		t.Fatalf("root stall of %d cycles moved total by %d", extra, got)
	}
	for qi := range clean.Outputs {
		if !res.Outputs[qi].Equal(clean.Outputs[qi]) {
			t.Fatalf("query %d output changed under a pure timing fault", qi)
		}
	}
}

// The always-on conservation checker flags corrupted root headers as
// structured invariant violations.
func TestRootConservationChecker(t *testing.T) {
	f := newFaultFixture(t, tensor.OpSum)
	plan := batch.Build(f.batch, true)

	noQueries := []Entry{{Header: header.Header{Indices: header.NewIndexSet(1)}}}
	if err := checkRootConservation(plan, noQueries); !errors.Is(err, fault.ErrInvariantViolated) {
		t.Fatalf("query-less root output accepted: %v", err)
	}

	phantom := []Entry{{Header: header.Header{
		Indices: header.NewIndexSet(1, 2, 3),
		Queries: []header.IndexSet{{}},
	}}}
	if err := checkRootConservation(plan, phantom); !errors.Is(err, fault.ErrInvariantViolated) {
		t.Fatalf("phantom complete output accepted: %v", err)
	}
}
