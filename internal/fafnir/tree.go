package fafnir

import (
	"fmt"
	"strings"
)

// NodeKind labels how a PE is packaged in the paper's physical design:
// leaf and low-level PEs sit in DIMM/rank nodes (seven PEs covering the
// eight ranks of one channel), the top PEs form the channel node joining the
// four channels.
type NodeKind uint8

const (
	// KindDIMMRank marks PEs packaged inside a DIMM/rank node.
	KindDIMMRank NodeKind = iota
	// KindChannel marks PEs packaged inside the channel node.
	KindChannel
)

// String returns the kind name.
func (k NodeKind) String() string {
	if k == KindChannel {
		return "channel"
	}
	return "dimm/rank"
}

// PENode is one processing element in the tree.
type PENode struct {
	// ID is a dense identifier, unique within the tree.
	ID int
	// Level is the distance from the leaves (leaves are level 0).
	Level int
	// Left and Right are the child PEs; nil at leaves. A node carried up
	// from an odd-sized level has only Left set.
	Left, Right *PENode
	// Parent is nil at the root.
	Parent *PENode
	// RanksA and RanksB list the global ranks feeding each input of a leaf
	// PE (empty for internal PEs). With 1PE:2R each input has one rank.
	RanksA, RanksB []int
	// Kind records the physical packaging for area/power accounting.
	Kind NodeKind
}

// IsLeaf reports whether the PE's inputs come directly from ranks.
func (n *PENode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is the full reduction-tree topology over a memory system.
type Tree struct {
	cfg    Config
	root   *PENode
	levels [][]*PENode // levels[0] = leaves
	byRank []*PENode   // rank -> leaf PE
	all    []*PENode
}

// NewTree builds the topology for the configuration: NumRanks/LeafFanIn leaf
// PEs paired level by level into a (near-)balanced binary tree. Odd nodes at
// a level carry up unpaired, so any rank count is supported; with 32 ranks
// and fan-in 2 the result is the paper's 31-PE tree.
func NewTree(cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, byRank: make([]*PENode, cfg.NumRanks)}

	id := 0
	leaves := make([]*PENode, cfg.NumLeaves())
	for i := range leaves {
		n := &PENode{ID: id, Level: 0}
		id++
		// Split the leaf's ranks across its two inputs.
		base := i * cfg.LeafFanIn
		half := (cfg.LeafFanIn + 1) / 2
		for r := base; r < base+cfg.LeafFanIn; r++ {
			if r < base+half {
				n.RanksA = append(n.RanksA, r)
			} else {
				n.RanksB = append(n.RanksB, r)
			}
			t.byRank[r] = n
		}
		leaves[i] = n
	}
	t.levels = append(t.levels, leaves)
	t.all = append(t.all, leaves...)

	cur := leaves
	level := 1
	for len(cur) > 1 {
		var next []*PENode
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				// Odd node: carry up without a new PE.
				next = append(next, cur[i])
				continue
			}
			n := &PENode{ID: id, Level: level, Left: cur[i], Right: cur[i+1]}
			id++
			cur[i].Parent = n
			cur[i+1].Parent = n
			next = append(next, n)
			t.all = append(t.all, n)
		}
		t.levels = append(t.levels, next)
		cur = next
		level++
	}
	t.root = cur[0]

	t.assignKinds()
	return t, nil
}

// assignKinds marks the top PEs joining channel-sized subtrees as the
// channel node. With the paper's geometry (8 ranks per channel, fan-in 2)
// each channel contributes a 4-leaf subtree of 7 PEs, and the 3 PEs above
// them form the channel node.
func (t *Tree) assignKinds() {
	ranksPerChannel := 8 // 4 DIMMs x 2 ranks; cosmetic grouping only
	leavesPerChannel := ranksPerChannel / t.cfg.LeafFanIn
	if leavesPerChannel <= 0 {
		leavesPerChannel = 1
	}
	// A PE is in a DIMM/rank node while its subtree spans at most one
	// channel's leaves.
	var span func(n *PENode) int
	spans := make(map[*PENode]int)
	span = func(n *PENode) int {
		if s, ok := spans[n]; ok {
			return s
		}
		s := 0
		if n.IsLeaf() {
			s = 1
		} else {
			s = span(n.Left)
			if n.Right != nil {
				s += span(n.Right)
			}
		}
		spans[n] = s
		return s
	}
	for _, n := range t.all {
		if span(n) > leavesPerChannel {
			n.Kind = KindChannel
		} else {
			n.Kind = KindDIMMRank
		}
	}
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root PE.
func (t *Tree) Root() *PENode { return t.root }

// NumPEs reports the number of processing elements.
func (t *Tree) NumPEs() int { return len(t.all) }

// PEs returns all PEs in construction order (leaves first).
func (t *Tree) PEs() []*PENode { return t.all }

// Depth reports the number of PE levels from leaf to root inclusive.
func (t *Tree) Depth() int { return t.root.Level + 1 }

// LeafOfRank returns the leaf PE whose inputs include global rank r.
func (t *Tree) LeafOfRank(r int) (*PENode, error) {
	if r < 0 || r >= len(t.byRank) {
		return nil, fmt.Errorf("fafnir: rank %d out of range [0,%d)", r, len(t.byRank))
	}
	return t.byRank[r], nil
}

// Connections reports the number of links in the Fafnir design: 2m-2 tree
// links for m leaf-level attach points plus the root-to-host links, the
// paper's (2m-2)+c formula that replaces all-to-all c*m wiring.
func (t *Tree) Connections(hostLinks int) int {
	// Each PE except the root has one upstream link; each leaf input link
	// from a rank also counts.
	links := 0
	for _, n := range t.all {
		if n.Parent != nil {
			links++
		}
		links += len(n.RanksA) + len(n.RanksB)
	}
	return links + hostLinks
}

// CountKind reports how many PEs carry the given packaging kind.
func (t *Tree) CountKind(k NodeKind) int {
	c := 0
	for _, n := range t.all {
		if n.Kind == k {
			c++
		}
	}
	return c
}

// String renders the tree shape level by level, for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	for lv := len(t.levels) - 1; lv >= 0; lv-- {
		fmt.Fprintf(&b, "level %d:", lv)
		for _, n := range t.levels[lv] {
			if n.Level != lv {
				continue // carried-up node rendered at its own level
			}
			if n.IsLeaf() {
				fmt.Fprintf(&b, " PE%d(ranks %v|%v)", n.ID, n.RanksA, n.RanksB)
			} else {
				right := -1
				if n.Right != nil {
					right = n.Right.ID
				}
				fmt.Fprintf(&b, " PE%d(%d,%d)", n.ID, n.Left.ID, right)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the tree in Graphviz dot format: ranks as boxes, PEs as
// ellipses labelled with their packaging kind, edges bottom-up.
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("digraph fafnir {\n  rankdir=BT;\n")
	for _, n := range t.all {
		shape := "ellipse"
		if n.Kind == KindChannel {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  pe%d [label=\"PE%d\\n%s\" shape=%s];\n", n.ID, n.ID, n.Kind, shape)
		for _, r := range append(append([]int{}, n.RanksA...), n.RanksB...) {
			fmt.Fprintf(&b, "  rank%d [label=\"rank %d\" shape=box];\n", r, r)
			fmt.Fprintf(&b, "  rank%d -> pe%d;\n", r, n.ID)
		}
		if n.Parent != nil {
			fmt.Fprintf(&b, "  pe%d -> pe%d;\n", n.ID, n.Parent.ID)
		}
	}
	fmt.Fprintf(&b, "  host [shape=box3d];\n  pe%d -> host;\n}\n", t.root.ID)
	return b.String()
}
