package fafnir

// This file holds the arena layer of the hot path. One tree evaluation used
// to perform tens of thousands of small heap allocations — a vector clone,
// an index-set union, a one-element Queries slice per reduce action — and the
// end-to-end sweeps were allocation-bound because of it. The arena replaces
// all of that with typed bump allocators whose chunks are retained across
// runs: a steady-state tree pass allocates nothing, and releasing the scratch
// recycles every chunk at once instead of feeding the garbage collector.
//
// Arena-backed slices are only valid while the owning scratch is leased
// (getTreeScratch/putTreeScratch in parallel.go); the engine releases a
// batch's scratch only after resolve and trace emission have consumed the
// root outputs. The exported ProcessPE/SelfMerge wrappers use a fresh,
// never-recycled scratch, so their results live as long as the caller keeps
// them — exactly like the old heap-allocating implementation.

import (
	"fafnir/internal/header"
	"fafnir/internal/tensor"
)

// bumpMinChunk is the smallest chunk a bump allocator requests, in elements.
const bumpMinChunk = 256

// bump is a typed bump (arena) allocator. alloc carves slices off the current
// chunk; reset returns every chunk to a free list for the next run, so growth
// happens only until the allocator has seen its peak demand.
type bump[T any] struct {
	cur  []T   // current chunk; len is the bump cursor
	used [][]T // exhausted chunks of the current run
	free [][]T // retained chunks available for reuse
}

// alloc returns a fresh slice of n elements with capacity exactly n, so
// callers can use append within the reservation but never beyond it.
func (b *bump[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	if len(b.cur)+n > cap(b.cur) {
		b.grow(n)
	}
	off := len(b.cur)
	b.cur = b.cur[:off+n]
	return b.cur[off : off+n : off+n]
}

// grow retires the current chunk and installs one with room for n elements,
// preferring a retained chunk over a fresh allocation.
func (b *bump[T]) grow(n int) {
	if cap(b.cur) > 0 {
		b.used = append(b.used, b.cur)
	}
	for i := len(b.free) - 1; i >= 0; i-- {
		if cap(b.free[i]) >= n {
			b.cur = b.free[i]
			b.free[i] = b.free[len(b.free)-1]
			b.free[len(b.free)-1] = nil
			b.free = b.free[:len(b.free)-1]
			return
		}
	}
	size := 2 * cap(b.cur)
	if size < bumpMinChunk {
		size = bumpMinChunk
	}
	if size < n {
		size = n
	}
	b.cur = make([]T, 0, size)
}

// reset recycles every chunk for the next run. clearMem zeroes the used
// prefix first — required for element types that hold pointers, so a pooled
// arena does not pin the previous batch's vectors and plans.
func (b *bump[T]) reset(clearMem bool) {
	if cap(b.cur) > 0 {
		if clearMem {
			clear(b.cur)
		}
		b.free = append(b.free, b.cur[:0])
		b.cur = nil
	}
	for i, c := range b.used {
		if clearMem {
			clear(c)
		}
		b.free = append(b.free, c[:0])
		b.used[i] = nil
	}
	b.used = b.used[:0]
}

// selfPair is one membership record of SelfMerge's grouping pass: the full
// query (the union of an entry's indices and one of its remaining-sets) and
// the entry's position in the input stream.
type selfPair struct {
	full   header.IndexSet
	member int
}

// workScratch is the per-worker working set of tree evaluation: the typed
// arenas every PE invocation allocates from, plus reusable transient slices
// for the merge unit. Each scheduler worker owns one exclusively, so no
// synchronization is needed on the allocation path.
type workScratch struct {
	ents bump[Entry]           // PE output slices and leaf-entry buffers
	vals bump[float32]         // reduced vector values
	idx  bump[header.Index]    // index sets (unions, minus results, leaf singletons)
	qs   bump[header.IndexSet] // Queries field slices

	raw     []Entry    // one PE call's pre-merge outputs
	pairs   []selfPair // SelfMerge grouping records
	members []int      // one SelfMerge group's member positions
	order   []int32    // sort permutation (fold and selfMerge sort positions, not structs)
}

func newWorkScratch() *workScratch { return &workScratch{} }

// reset recycles the arenas and transient slices for the next batch. Entry
// and Queries chunks hold pointers and are zeroed; the float and index chunks
// are pointer-free, and everything they back is reachable only through the
// cleared chunks, so they recycle without the memclr.
func (ws *workScratch) reset() {
	ws.ents.reset(true)
	ws.qs.reset(true)
	ws.vals.reset(false)
	ws.idx.reset(false)
	clear(ws.raw[:cap(ws.raw)])
	ws.raw = ws.raw[:0]
	clear(ws.pairs[:cap(ws.pairs)])
	ws.pairs = ws.pairs[:0]
	ws.members = ws.members[:0]
	ws.order = ws.order[:0]
}

// cloneVec copies v into the value arena (the reduce action's working copy).
func (ws *workScratch) cloneVec(v tensor.Vector) tensor.Vector {
	out := ws.vals.alloc(len(v))
	copy(out, v)
	return out
}

// single builds the one-element index set of a leaf read.
func (ws *workScratch) single(x header.Index) header.IndexSet {
	s := ws.idx.alloc(1)
	s[0] = x
	return s
}

// union is IndexSet.Union into the arena. When one side is empty the other
// is returned as-is — index sets are immutable in flight, so sharing is safe
// and matches the content the allocating implementation produced.
func (ws *workScratch) union(s, t header.IndexSet) header.IndexSet {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := ws.idx.alloc(len(s) + len(t))
	k, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out[k] = s[i]
			i++
		case s[i] > t[j]:
			out[k] = t[j]
			j++
		default:
			out[k] = s[i]
			i++
			j++
		}
		k++
	}
	k += copy(out[k:], s[i:])
	k += copy(out[k:], t[j:])
	return out[:k]
}

// minus is IndexSet.Minus into the arena, preserving the nil-for-empty
// convention of the allocating implementation.
func (ws *workScratch) minus(s, t header.IndexSet) header.IndexSet {
	if len(s) == 0 {
		return nil
	}
	if len(t) == 0 {
		return s
	}
	out := ws.idx.alloc(len(s))[:0]
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// qset1 builds a one-element Queries slice. The set itself is shared, never
// copied: headers are immutable in flight.
func (ws *workScratch) qset1(q header.IndexSet) []header.IndexSet {
	s := ws.qs.alloc(1)
	s[0] = q
	return s
}
