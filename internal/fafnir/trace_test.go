package fafnir

import (
	"bytes"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/fault"
	"fafnir/internal/telemetry"
)

// tracedRun executes one timed lookup with a fresh collector attached and
// returns the exported Chrome JSON plus the run result.
func tracedRun(t *testing.T, par int, faults string) ([]byte, *TimedResult) {
	t.Helper()
	store, b := detWorkload(t, 96) // 3 hardware batches
	pl := modPlacement{ranks: 32, bytes: 64}
	e := parEngine(t, par)
	tr := telemetry.NewTrace()
	e.AttachTracer(tr)
	mem := dram.MustSystem(dram.DDR4())
	mem.AttachTracer(tr)

	var inj *fault.Injector
	if faults != "" {
		plan, err := fault.Parse(faults)
		if err != nil {
			t.Fatal(err)
		}
		inj, err = fault.NewInjector(plan, dram.DDR4().TotalRanks())
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.TimedLookupFaulted(store, pl, mem, b, true, inj)
	if err != nil {
		t.Fatalf("Parallelism=%d faults=%q: %v", par, faults, err)
	}
	return tr.ChromeJSON(), res
}

// TestTraceDeterministicAcrossParallelism requires the exported trace to be
// bit-identical at Parallelism 1, 2, and NumCPU, on a fault-free plan and on
// a faulted one (ECC retries and PE stalls shift simulated time but must do
// so identically at every worker-pool width).
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	for _, faults := range []string{"", "ecc=0.005;stall=5+200;seed=9"} {
		var want []byte
		for _, par := range parallelismLevels() {
			got, _ := tracedRun(t, par, faults)
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("faults=%q Parallelism=%d: trace diverges from serial run (%d vs %d bytes)",
					faults, par, len(got), len(want))
			}
		}
	}
}

// TestTraceValidatesAndCoversLanes checks the exported stream against the
// structural validator and pins the lane population: one hw_batch span per
// hardware batch on the engine lane, PE stage spans on per-level lanes, and
// DRAM command spans on per-bank lanes.
func TestTraceValidatesAndCoversLanes(t *testing.T) {
	data, res := tracedRun(t, 1, "")
	n, err := telemetry.ValidateChrome(data)
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if n == 0 {
		t.Fatal("trace is empty")
	}

	// Re-run to inspect raw events (tracedRun already exported them).
	store, b := detWorkload(t, 96)
	pl := modPlacement{ranks: 32, bytes: 64}
	e := parEngine(t, 1)
	tr := telemetry.NewTrace()
	e.AttachTracer(tr)
	mem := dram.MustSystem(dram.DDR4())
	mem.AttachTracer(tr)
	if _, err := e.TimedLookup(store, pl, mem, b, true); err != nil {
		t.Fatal(err)
	}
	var hwBatches, peStages, dramReads int
	for _, ev := range tr.Events() {
		switch {
		case ev.Name == "hw_batch" && ev.PID == telemetry.PIDEngine:
			hwBatches++
		case ev.Name == "pe.stage" && ev.PID >= telemetry.PIDPELevelBase && ev.PID < telemetry.PIDDRAMBase:
			peStages++
		case ev.Name == "RD" && ev.PID >= telemetry.PIDDRAMBase:
			dramReads++
		}
	}
	if hwBatches != res.HWBatches {
		t.Fatalf("hw_batch spans = %d, want %d", hwBatches, res.HWBatches)
	}
	if peStages == 0 {
		t.Fatal("no PE stage spans emitted")
	}
	if dramReads != res.MemoryReads {
		t.Fatalf("DRAM RD spans = %d, want %d reads", dramReads, res.MemoryReads)
	}
}

// TestTracedMatchesUntraced pins the observational contract: attaching a
// tracer must not change outputs, statistics, or a single cycle — at every
// worker-pool width, fault-free and faulted.
func TestTracedMatchesUntraced(t *testing.T) {
	store, b := detWorkload(t, 96)
	pl := modPlacement{ranks: 32, bytes: 64}

	for _, faults := range []string{"", "ecc=0.005;stall=5+200;seed=9"} {
		for _, par := range parallelismLevels() {
			plain := parEngine(t, par)
			var inj *fault.Injector
			if faults != "" {
				plan, err := fault.Parse(faults)
				if err != nil {
					t.Fatal(err)
				}
				if inj, err = fault.NewInjector(plan, dram.DDR4().TotalRanks()); err != nil {
					t.Fatal(err)
				}
			}
			want, err := plain.TimedLookupFaulted(store, pl, dram.MustSystem(dram.DDR4()), b, true, inj)
			if err != nil {
				t.Fatal(err)
			}

			_, got := tracedRun(t, par, faults)
			if got.TotalCycles != want.TotalCycles || got.MemCycles != want.MemCycles ||
				got.ComputeCycles != want.ComputeCycles || got.PETotals != want.PETotals ||
				got.MemoryReads != want.MemoryReads {
				t.Fatalf("faults=%q Parallelism=%d: traced run diverges from untraced: %+v vs %+v",
					faults, par, got, want)
			}
			for q := range want.Outputs {
				if !want.Outputs[q].Equal(got.Outputs[q]) {
					t.Fatalf("faults=%q Parallelism=%d: output %d diverges bitwise", faults, par, q)
				}
			}
		}
	}
}

// TestAttachTracerDetach covers the nil re-attachment path the serving layer
// uses per flushed batch: detaching must stop emission without disturbing the
// engine.
func TestAttachTracerDetach(t *testing.T) {
	store, b := detWorkload(t, 32)
	pl := modPlacement{ranks: 32, bytes: 64}
	e := parEngine(t, 1)
	tr := telemetry.NewTrace()
	e.AttachTracer(tr)
	e.AttachTracer(nil)
	if e.Tracer() != nil {
		t.Fatal("Tracer() should be nil after detach")
	}
	if _, err := e.TimedLookup(store, pl, dram.MustSystem(dram.DDR4()), b, true); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("detached tracer collected %d events", tr.Len())
	}
}
