// Package fafnir implements the paper's primary contribution: the
// near-memory intelligent reduction tree. The leaves of the tree attach to
// the ranks of a DDR4 memory system; every node is a processing element (PE)
// that inspects the headers of its two input streams and decides, per entry,
// whether to reduce two values into one, forward them unchanged, or merge
// duplicate outputs. Because the tree spans *all* ranks, any set of
// embedding vectors — no matter which ranks they live on — is fully reduced
// before leaving the memory system.
//
// The package provides two engines over one functional core:
//
//   - Engine.Lookup runs a batch functionally and returns the reduced output
//     vector of every query, validated in tests against the golden reference
//     in package embedding.
//   - Engine.TimedLookup additionally charges every DRAM access to the
//     shared dram.System and every PE action to the Table IV pipeline
//     latencies, returning the latency/throughput breakdown the paper's
//     Figs. 11-13 report.
package fafnir

import (
	"fmt"

	"fafnir/internal/sim"
	"fafnir/internal/tensor"
)

// Latencies holds the compute-unit latencies of Table IV, in PE-clock cycles
// at 200 MHz. The critical path of a pipeline stage is compare + reduce,
// since reduce and forward run on parallel paths and reduce is slower.
type Latencies struct {
	// Compare is the header-comparison latency (queries vs indices fields).
	Compare sim.Cycle
	// ReduceValue is the element-wise value reduction latency.
	ReduceValue sim.Cycle
	// ReduceHeader is the header-update latency of a reduce action.
	ReduceHeader sim.Cycle
	// Forward is the bypass-path latency.
	Forward sim.Cycle
}

// TableIV returns the published FPGA compute-unit latencies.
func TableIV() Latencies {
	return Latencies{Compare: 12, ReduceValue: 4, ReduceHeader: 16, Forward: 2}
}

// StageLatency is the pipeline-stage critical path: compare followed by the
// slower of the two parallel action paths (reduce beats forward).
func (l Latencies) StageLatency() sim.Cycle {
	reduce := sim.Max(l.ReduceValue, l.ReduceHeader)
	return l.Compare + sim.Max(reduce, l.Forward)
}

// Config parameterizes a Fafnir tree instance.
type Config struct {
	// NumRanks is the number of memory ranks the tree's leaves attach to.
	NumRanks int
	// LeafFanIn is the number of ranks per leaf PE (the paper's 1PE:2R
	// configuration uses 2; 1PE:1R and 1PE:4R are the published variants).
	LeafFanIn int
	// BatchCapacity is B, the batch size the hardware buffers are sized
	// for. Larger software batches are served as several hardware batches.
	BatchCapacity int
	// VectorDim is the embedding dimension (elements per vector).
	VectorDim int
	// Op is the pooling operation applied through the tree.
	Op tensor.ReduceOp
	// Latency holds the PE pipeline latencies.
	Latency Latencies
	// ClockMHz is the PE clock (200 MHz on the paper's FPGA).
	ClockMHz float64
	// DRAMClockMHz is the memory clock, for converting memory completion
	// times into PE cycles.
	DRAMClockMHz float64
	// Parallelism bounds the simulator's host-side concurrency: how many
	// workers the dependency-driven tree scheduler runs (each PE fires the
	// moment its children finish; see parallel.go), and how many hardware
	// batches precompute their functional pass while an earlier batch is
	// being timed. It changes wall-clock speed only — outputs, PE statistics,
	// and cycle counts are bit-identical at every setting. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs the exact single-threaded serial order.
	Parallelism int
}

// Default returns the paper's evaluated configuration: 32 ranks, 1PE:2R,
// batch capacity 32, 512 B vectors (128 float32 elements), sum pooling,
// Table IV latencies at 200 MHz against a 1200 MHz memory clock.
func Default() Config {
	return Config{
		NumRanks:      32,
		LeafFanIn:     2,
		BatchCapacity: 32,
		VectorDim:     128,
		Op:            tensor.OpSum,
		Latency:       TableIV(),
		ClockMHz:      200,
		DRAMClockMHz:  1200,
	}
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.NumRanks <= 0:
		return fmt.Errorf("fafnir: NumRanks must be positive, got %d", c.NumRanks)
	case c.LeafFanIn <= 0:
		return fmt.Errorf("fafnir: LeafFanIn must be positive, got %d", c.LeafFanIn)
	case c.NumRanks%c.LeafFanIn != 0:
		return fmt.Errorf("fafnir: NumRanks %d not divisible by LeafFanIn %d", c.NumRanks, c.LeafFanIn)
	case c.BatchCapacity <= 0:
		return fmt.Errorf("fafnir: BatchCapacity must be positive, got %d", c.BatchCapacity)
	case c.VectorDim <= 0:
		return fmt.Errorf("fafnir: VectorDim must be positive, got %d", c.VectorDim)
	case !c.Op.Valid():
		return fmt.Errorf("fafnir: invalid reduce op %d", c.Op)
	case c.ClockMHz <= 0:
		return fmt.Errorf("fafnir: ClockMHz must be positive, got %v", c.ClockMHz)
	case c.DRAMClockMHz <= 0:
		return fmt.Errorf("fafnir: DRAMClockMHz must be positive, got %v", c.DRAMClockMHz)
	case c.Parallelism < 0:
		return fmt.Errorf("fafnir: Parallelism must be non-negative, got %d", c.Parallelism)
	}
	return nil
}

// NumLeaves reports the number of leaf PEs.
func (c Config) NumLeaves() int { return c.NumRanks / c.LeafFanIn }

// DRAMToPE converts a completion time in memory-clock cycles to PE-clock
// cycles, rounding up.
func (c Config) DRAMToPE(d sim.Cycle) sim.Cycle {
	ratio := c.DRAMClockMHz / c.ClockMHz
	return sim.Cycle((float64(d) + ratio - 1) / ratio)
}

// VectorBytes reports the size of one embedding vector in bytes (float32
// elements).
func (c Config) VectorBytes() int { return 4 * c.VectorDim }
