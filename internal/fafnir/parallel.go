package fafnir

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fafnir/internal/tensor"
)

// This file holds the concurrent execution layer of the engine: a pooled
// dense scratch for tree evaluation and a level-synchronous worker pool that
// evaluates PEs concurrently once their children have resolved. The layer is
// deterministic by construction — each PE's output is a pure function of its
// children's outputs, workers write only their own node's dense slots, and
// all accounting (PETotals, MaxOccupancy, perPE) is folded in fixed
// construction order after the evaluation finishes — so every Parallelism
// setting produces bit-identical results (see docs/ARCHITECTURE.md §9).

// parallelism resolves the configured worker-pool width: 0 means "use every
// core the runtime gives us".
func (e *Engine) parallelism() int {
	if e.cfg.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.cfg.Parallelism
}

// treeScratch is the dense per-run working state of one tree evaluation,
// indexed by PENode.ID (IDs are dense in [0, NumPEs)). It replaces the
// map[*PENode][]Entry memo of the original recursive evaluator and is pooled
// on the engine so steady-state tree passes allocate no bookkeeping.
type treeScratch struct {
	memo [][]Entry // node ID -> post-merge outputs
	proc []PEStats // node ID -> ProcessPE stats
	self []PEStats // node ID -> leaf SelfMerge stats (both inputs combined)
	errs []error   // node ID -> evaluation error (parallel path)
	work []*PENode // per-level dispatch list, reused across levels
}

// getTreeScratch leases a scratch sized for the engine's tree.
func (e *Engine) getTreeScratch() *treeScratch {
	if v := e.scratch.Get(); v != nil {
		return v.(*treeScratch)
	}
	n := e.tree.NumPEs()
	return &treeScratch{
		memo: make([][]Entry, n),
		proc: make([]PEStats, n),
		self: make([]PEStats, n),
		errs: make([]error, n),
		work: make([]*PENode, 0, n),
	}
}

// putTreeScratch clears and returns a scratch to the pool. Memo slots are
// nilled so pooled scratches do not pin entry vectors across runs.
func (e *Engine) putTreeScratch(sc *treeScratch) {
	for i := range sc.memo {
		sc.memo[i] = nil
		sc.proc[i] = PEStats{}
		sc.self[i] = PEStats{}
		sc.errs[i] = nil
	}
	sc.work = sc.work[:0]
	e.scratch.Put(sc)
}

// evalNode evaluates one PE: leaves gather and self-merge their ranks'
// entries, internal nodes join their children's memoized outputs. The
// node's results land in the scratch's dense slots, touching no other
// node's state — the property that makes within-level parallelism safe.
func (e *Engine) evalNode(op tensor.ReduceOp, n *PENode, in rankEntries, sc *treeScratch) error {
	var inA, inB []Entry
	if n.IsLeaf() {
		inA = gatherRanks(in, n.RanksA)
		inB = gatherRanks(in, n.RanksB)
		// Serially merge co-query entries arriving on the same input
		// stream (see SelfMerge); required whenever a query holds two
		// indices on one rank.
		var stA, stB PEStats
		var err error
		inA, stA, err = SelfMerge(op, inA)
		if err != nil {
			return fmt.Errorf("fafnir: PE %d input A: %w", n.ID, err)
		}
		inB, stB, err = SelfMerge(op, inB)
		if err != nil {
			return fmt.Errorf("fafnir: PE %d input B: %w", n.ID, err)
		}
		stA.Add(stB)
		sc.self[n.ID] = stA
	} else {
		inA = sc.memo[n.Left.ID]
		if n.Right != nil {
			inB = sc.memo[n.Right.ID]
		}
	}
	out, st, err := ProcessPE(op, inA, inB)
	if err != nil {
		return fmt.Errorf("fafnir: PE %d: %w", n.ID, err)
	}
	sc.memo[n.ID] = out
	sc.proc[n.ID] = st
	return nil
}

// gatherRanks collects the leaf entries of the given ranks. The single-rank
// case (the paper's 1PE:2R geometry) aliases the per-rank slice directly —
// entries are immutable in flight, so no copy is needed.
func gatherRanks(in rankEntries, ranks []int) []Entry {
	switch len(ranks) {
	case 0:
		return nil
	case 1:
		return in[ranks[0]]
	}
	n := 0
	for _, r := range ranks {
		n += len(in[r])
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for _, r := range ranks {
		out = append(out, in[r]...)
	}
	return out
}

// evalLevels evaluates the tree level-synchronously: all PEs of one level
// run concurrently on a bounded worker pool, then the level barrier makes
// their outputs visible to the next level. Carried-up nodes (odd levels)
// appear in several level lists but evaluate only once, at their own level.
// Errors are surfaced in ID order so failure reporting is deterministic too.
func (e *Engine) evalLevels(op tensor.ReduceOp, in rankEntries, sc *treeScratch) error {
	par := e.parallelism()
	for lv, nodes := range e.tree.levels {
		work := sc.work[:0]
		for _, n := range nodes {
			if n.Level == lv {
				work = append(work, n)
			}
		}
		workers := par
		if workers > len(work) {
			workers = len(work)
		}
		if workers <= 1 {
			for _, n := range work {
				if err := e.evalNode(op, n, in, sc); err != nil {
					return err
				}
			}
			continue
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(work) {
						return
					}
					n := work[i]
					if err := e.evalNode(op, n, in, sc); err != nil {
						sc.errs[n.ID] = err
					}
				}
			}()
		}
		wg.Wait()
		for _, n := range work {
			if err := sc.errs[n.ID]; err != nil {
				return err
			}
		}
	}
	return nil
}
