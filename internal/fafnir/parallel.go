package fafnir

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fafnir/internal/tensor"
)

// This file holds the concurrent execution layer of the engine: a pooled
// dense scratch for tree evaluation and an asynchronous, dependency-driven
// scheduler that fires each PE the moment its children finish. There is no
// level barrier: every worker owns a deque of ready nodes, pushes a parent
// the instant its per-node pending-children countdown hits zero, and steals
// from a sibling's deque when its own runs dry — so an interior PE never
// waits for the slowest PE of its level, only for its own subtree.
//
// The layer is deterministic by construction regardless of scheduling order:
// each PE's output is a pure function of its children's outputs, workers
// write only their own node's dense slots and allocate only from their own
// arena, and all accounting (PETotals, MaxOccupancy, perPE) is folded in
// fixed construction order after the evaluation finishes — so every
// Parallelism setting produces bit-identical results (docs/ARCHITECTURE.md §9).

// parallelism resolves the configured scheduler width: 0 means "use every
// core the runtime gives us".
func (e *Engine) parallelism() int {
	if e.cfg.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.cfg.Parallelism
}

// treeScratch is the dense working state of one tree evaluation, indexed by
// PE ID (IDs are dense in [0, NumPEs)), plus the leaf-input staging buffers
// and the per-worker arenas. It is leased for the whole span of a batch —
// leafInputs through runTree to resolve and trace emission — so arena-backed
// entries stay valid until the batch's results have been consumed, and it is
// pooled process-wide so pipeline stages and exp sweep iterations (even
// across freshly built engines) reuse one steady-state working set.
type treeScratch struct {
	memo  [][]Entry // node ID -> post-merge outputs
	proc  []PEStats // node ID -> ProcessPE stats
	self  []PEStats // node ID -> leaf SelfMerge stats (both inputs combined)
	errs  []error   // node ID -> evaluation error (async path)
	perPE []PEStats // node ID -> folded per-PE stats (see runTree)

	pending []atomic.Int32 // node ID -> unfinished-children countdown

	in     rankEntries // rank -> staged leaf entries
	counts []int       // rank -> planned access count

	deques  []deque        // per-worker ready queues
	workers []*workScratch // per-worker arenas
}

// treeScratchPool is process-wide, not per-engine: a scratch leased by any
// engine resizes to that engine's tree, so experiment sweeps that rebuild
// engines per configuration still hit a warm working set.
var treeScratchPool sync.Pool

// getTreeScratch leases a scratch sized for the engine's tree.
func (e *Engine) getTreeScratch() *treeScratch {
	sc, _ := treeScratchPool.Get().(*treeScratch)
	if sc == nil {
		sc = &treeScratch{}
	}
	sc.ensure(len(e.flat), e.cfg.NumRanks)
	return sc
}

// ensure sizes the dense slots for a tree of numPEs nodes over numRanks
// ranks. Slots beyond a smaller previous tree were cleared at release, so
// growing within capacity is a reslice.
func (sc *treeScratch) ensure(numPEs, numRanks int) {
	if cap(sc.memo) < numPEs {
		sc.memo = make([][]Entry, numPEs)
		sc.proc = make([]PEStats, numPEs)
		sc.self = make([]PEStats, numPEs)
		sc.errs = make([]error, numPEs)
		sc.perPE = make([]PEStats, numPEs)
		sc.pending = make([]atomic.Int32, numPEs)
	} else {
		sc.memo = sc.memo[:numPEs]
		sc.proc = sc.proc[:numPEs]
		sc.self = sc.self[:numPEs]
		sc.errs = sc.errs[:numPEs]
		sc.perPE = sc.perPE[:numPEs]
		sc.pending = sc.pending[:numPEs]
	}
	if cap(sc.in) < numRanks {
		sc.in = make(rankEntries, numRanks)
		sc.counts = make([]int, numRanks)
	} else {
		sc.in = sc.in[:numRanks]
		sc.counts = sc.counts[:numRanks]
	}
}

// putTreeScratch releases a leased scratch: every arena recycles its chunks
// and all pointer-bearing slots are dropped (to full capacity, so a scratch
// reused by a smaller tree cannot pin a bigger tree's entries). Arena-backed
// entries obtained under the lease are invalid from here on.
func (e *Engine) putTreeScratch(sc *treeScratch) {
	clear(sc.memo[:cap(sc.memo)])
	clear(sc.errs[:cap(sc.errs)])
	clear(sc.in[:cap(sc.in)])
	for _, ws := range sc.workers {
		ws.reset()
	}
	treeScratchPool.Put(sc)
}

// worker returns the w-th per-worker arena, creating it on first use. Not
// safe to call concurrently; the scheduler pre-creates its workers before
// spawning them.
func (sc *treeScratch) worker(w int) *workScratch {
	for len(sc.workers) <= w {
		sc.workers = append(sc.workers, newWorkScratch())
	}
	return sc.workers[w]
}

// deque is one worker's ready queue. The owner pushes and pops at the tail
// (LIFO: a freshly readied parent is the hottest work, its children's outputs
// just landed), thieves take the oldest node from the head. A plain mutex is
// plenty here — the critical sections are a few words and contention is
// bounded by the tree's width.
type deque struct {
	mu   sync.Mutex
	buf  []int32
	head int
}

func (d *deque) push(id int32) {
	d.mu.Lock()
	d.buf = append(d.buf, id)
	d.mu.Unlock()
}

func (d *deque) popTail() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) <= d.head {
		d.buf = d.buf[:0]
		d.head = 0
		return 0, false
	}
	id := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	return id, true
}

func (d *deque) stealHead() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) <= d.head {
		return 0, false
	}
	id := d.buf[d.head]
	d.head++
	return id, true
}

// evalFlatNode evaluates one PE: leaves gather and self-merge their ranks'
// entries, internal nodes join their children's memoized outputs. The node's
// results land in the scratch's dense slots and its allocations in the
// calling worker's arena, touching no other node's state — the property that
// makes dependency-driven parallelism safe.
func (e *Engine) evalFlatNode(op tensor.ReduceOp, id int32, in rankEntries, sc *treeScratch, ws *workScratch) error {
	n := &e.flat[id]
	var inA, inB []Entry
	if n.leaf {
		inA = gatherRanks(ws, in, n.ranksA)
		inB = gatherRanks(ws, in, n.ranksB)
		// Serially merge co-query entries arriving on the same input
		// stream (see SelfMerge); required whenever a query holds two
		// indices on one rank.
		var stA, stB PEStats
		var err error
		inA, stA, err = selfMerge(ws, op, inA)
		if err != nil {
			return fmt.Errorf("fafnir: PE %d input A: %w", id, err)
		}
		inB, stB, err = selfMerge(ws, op, inB)
		if err != nil {
			return fmt.Errorf("fafnir: PE %d input B: %w", id, err)
		}
		stA.Add(stB)
		sc.self[id] = stA
	} else {
		if n.left >= 0 {
			inA = sc.memo[n.left]
		}
		if n.right >= 0 {
			inB = sc.memo[n.right]
		}
	}
	out, st, err := processPE(ws, op, inA, inB)
	if err != nil {
		return fmt.Errorf("fafnir: PE %d: %w", id, err)
	}
	sc.memo[id] = out
	sc.proc[id] = st
	return nil
}

// gatherRanks collects the leaf entries of the given ranks. The single-rank
// case (the paper's 1PE:2R geometry) aliases the per-rank slice directly —
// entries are immutable in flight, so no copy is needed.
func gatherRanks(ws *workScratch, in rankEntries, ranks []int) []Entry {
	switch len(ranks) {
	case 0:
		return nil
	case 1:
		return in[ranks[0]]
	}
	n := 0
	for _, r := range ranks {
		n += len(in[r])
	}
	if n == 0 {
		return nil
	}
	out := ws.ents.alloc(n)[:0]
	for _, r := range ranks {
		out = append(out, in[r]...)
	}
	return out
}

// evalTree evaluates every PE of the tree, serially below two effective
// workers and via the asynchronous scheduler otherwise. Construction order
// (t.all, equal to ID order) is the serial order; the async path surfaces
// the same first error the serial path would (see evalAsync).
func (e *Engine) evalTree(op tensor.ReduceOp, in rankEntries, sc *treeScratch) error {
	workers := e.parallelism()
	if leaves := e.cfg.NumLeaves(); workers > leaves {
		workers = leaves
	}
	if workers <= 1 {
		ws := sc.worker(0)
		for i := range e.flat {
			if err := e.evalFlatNode(op, int32(i), in, sc, ws); err != nil {
				return err
			}
		}
		return nil
	}
	e.evalAsync(op, in, sc, workers)
	// Surface the minimal-ID error: IDs ascend with construction level, and
	// every node below the lowest erroring one evaluated with fully correct
	// inputs, so this is exactly the error the serial order reports first.
	// (Nodes above an errored child see a nil memo slot; ProcessPE treats
	// that as an empty input, so their spurious results are simply ignored.)
	for i := range e.flat {
		if err := sc.errs[i]; err != nil {
			return err
		}
	}
	return nil
}

// evalAsync runs the dependency-driven schedule: leaves are dealt round-robin
// onto the worker deques, and each finished node decrements its parent's
// pending-children countdown, pushing the parent onto the finishing worker's
// own deque when it hits zero. Workers that run dry steal the oldest entry
// from a sibling; when nothing is stealable and nodes remain in flight they
// spin-yield until a countdown frees more work. Every node is evaluated —
// errors are recorded per node, never cancel the schedule — so completion is
// a simple count.
func (e *Engine) evalAsync(op tensor.ReduceOp, in rankEntries, sc *treeScratch, workers int) {
	for i := range e.flat {
		sc.pending[i].Store(e.flat[i].pendInit)
	}
	if cap(sc.deques) < workers {
		sc.deques = make([]deque, workers)
	} else {
		sc.deques = sc.deques[:workers]
	}
	for w := range sc.deques {
		sc.deques[w].buf = sc.deques[w].buf[:0]
		sc.deques[w].head = 0
	}
	w := 0
	for i := range e.flat {
		if e.flat[i].leaf {
			d := &sc.deques[w%workers]
			d.buf = append(d.buf, int32(i)) // pre-start: no lock needed
			w++
		}
	}
	for wi := 0; wi < workers; wi++ {
		sc.worker(wi) // pre-create arenas; sc.workers must not grow concurrently
	}
	var completed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wi := 0; wi < workers; wi++ {
		go e.treeWorker(wi, op, in, sc, workers, &completed, &wg)
	}
	wg.Wait()
}

// treeWorker is one scheduler worker's loop: drain the own deque LIFO, steal
// from siblings when dry, retire each node by counting down its parent.
func (e *Engine) treeWorker(wi int, op tensor.ReduceOp, in rankEntries, sc *treeScratch, workers int, completed *atomic.Int64, wg *sync.WaitGroup) {
	defer wg.Done()
	ws := sc.workers[wi]
	d := &sc.deques[wi]
	total := int64(len(e.flat))
	for {
		id, ok := d.popTail()
		for off := 1; off < workers && !ok; off++ {
			id, ok = sc.deques[(wi+off)%workers].stealHead()
		}
		if !ok {
			if completed.Load() >= total {
				return
			}
			runtime.Gosched()
			continue
		}
		if h := e.stallHook; h != nil {
			h(wi, int(id))
		}
		if err := e.evalFlatNode(op, id, in, sc, ws); err != nil {
			sc.errs[id] = err
		}
		// The memo write above happens before this decrement; whoever takes
		// the countdown to zero owns the parent and sees both children.
		if p := e.flat[id].parent; p >= 0 && sc.pending[p].Add(-1) == 0 {
			d.push(p)
		}
		completed.Add(1)
	}
}
