package fafnir

import (
	"reflect"
	"runtime"
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/embedding"
	"fafnir/internal/tensor"
)

// parallelismLevels are the worker-pool widths every determinism test sweeps:
// the exact legacy serial path, a fixed small pool, and whatever the host
// offers (GOMAXPROCS via the 0 default).
func parallelismLevels() []int {
	levels := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() == 2 {
		levels = levels[:2]
	}
	return levels
}

func detWorkload(t *testing.T, queries int) (*embedding.Store, embedding.Batch) {
	t.Helper()
	store := embedding.MustStore(1<<14, 16, 7)
	gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
		NumQueries: queries, QuerySize: 12, Rows: 1 << 14,
		Dist: embedding.Zipf, ZipfS: 1.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store, gen.Batch(tensor.OpSum)
}

func parEngine(t *testing.T, par int) *Engine {
	t.Helper()
	cfg := Default()
	cfg.VectorDim = 16
	cfg.Parallelism = par
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLookupDeterministicAcrossParallelism runs the same seeded workload at
// Parallelism 1, 2, and NumCPU and requires bit-identical functional results:
// outputs, per-PE action totals, peak occupancy, and read counts. The batch
// spans several hardware batches so the pipelined path is exercised.
func TestLookupDeterministicAcrossParallelism(t *testing.T) {
	store, b := detWorkload(t, 100) // 4 hardware batches at capacity 32
	pl := modPlacement{ranks: 32, bytes: 64}

	var want *Result
	for _, par := range parallelismLevels() {
		e := parEngine(t, par)
		res, err := e.Lookup(store, pl, b)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Outputs, want.Outputs) {
			t.Fatalf("Parallelism=%d: outputs differ from serial run", par)
		}
		if res.PETotals != want.PETotals {
			t.Fatalf("Parallelism=%d: PETotals %+v != serial %+v", par, res.PETotals, want.PETotals)
		}
		if res.MaxOccupancy != want.MaxOccupancy {
			t.Fatalf("Parallelism=%d: MaxOccupancy %d != serial %d", par, res.MaxOccupancy, want.MaxOccupancy)
		}
		if res.MemoryReads != want.MemoryReads || res.HWBatches != want.HWBatches {
			t.Fatalf("Parallelism=%d: reads/batches (%d,%d) != serial (%d,%d)",
				par, res.MemoryReads, res.HWBatches, want.MemoryReads, want.HWBatches)
		}
	}
}

// TestTimedLookupDeterministicAcrossParallelism requires the timing pass to
// be cycle-identical at every Parallelism setting: pipelined hardware batches
// must charge the DRAM model and the tree walk exactly as the serial engine.
func TestTimedLookupDeterministicAcrossParallelism(t *testing.T) {
	store, b := detWorkload(t, 96) // 3 hardware batches
	pl := modPlacement{ranks: 32, bytes: 64}

	for _, dedup := range []bool{true, false} {
		var want *TimedResult
		for _, par := range parallelismLevels() {
			e := parEngine(t, par)
			res, err := e.TimedLookup(store, pl, dram.MustSystem(dram.DDR4()), b, dedup)
			if err != nil {
				t.Fatalf("dedup=%v Parallelism=%d: %v", dedup, par, err)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(res.Outputs, want.Outputs) {
				t.Fatalf("dedup=%v Parallelism=%d: outputs differ from serial run", dedup, par)
			}
			if res.PETotals != want.PETotals || res.MaxOccupancy != want.MaxOccupancy {
				t.Fatalf("dedup=%v Parallelism=%d: stats diverge: %+v vs %+v",
					dedup, par, res.PETotals, want.PETotals)
			}
			if res.TotalCycles != want.TotalCycles || res.MemCycles != want.MemCycles ||
				res.ComputeCycles != want.ComputeCycles || res.TransferCycles != want.TransferCycles {
				t.Fatalf("dedup=%v Parallelism=%d: cycles (%d,%d,%d,%d) != serial (%d,%d,%d,%d)",
					dedup, par,
					res.TotalCycles, res.MemCycles, res.ComputeCycles, res.TransferCycles,
					want.TotalCycles, want.MemCycles, want.ComputeCycles, want.TransferCycles)
			}
			if res.BytesRead != want.BytesRead || res.MemoryReads != want.MemoryReads {
				t.Fatalf("dedup=%v Parallelism=%d: traffic diverges", dedup, par)
			}
		}
	}
}

// TestParallelLookupMatchesGolden cross-checks the parallel engine against
// the reference reduction, not just against the serial engine.
func TestParallelLookupMatchesGolden(t *testing.T) {
	store, b := detWorkload(t, 80)
	pl := modPlacement{ranks: 32, bytes: 64}
	e := parEngine(t, runtime.NumCPU())
	res, err := e.Lookup(store, pl, b)
	if err != nil {
		t.Fatal(err)
	}
	golden := b.MustGolden(store)
	if i := VerifyAgainstGolden(res.Outputs, golden, 1e-3); i >= 0 {
		t.Fatalf("query %d mismatches golden", i)
	}
}

// TestParallelAllOps sweeps every pooling operation through the parallel
// tree; sorting-sensitive ops (min/max) catch any join-order divergence.
func TestParallelAllOps(t *testing.T) {
	store := embedding.MustStore(4096, 8, 3)
	for _, op := range []tensor.ReduceOp{tensor.OpSum, tensor.OpMin, tensor.OpMax, tensor.OpMean} {
		gen, err := embedding.NewGenerator(embedding.GeneratorConfig{
			NumQueries: 48, QuerySize: 6, Rows: 4096, Seed: int64(op) + 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		b := gen.Batch(op)
		var want []tensor.Vector
		for _, par := range parallelismLevels() {
			cfg := Default()
			cfg.VectorDim = 8
			cfg.Parallelism = par
			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Lookup(store, modPlacement{ranks: 32, bytes: 32}, b)
			if err != nil {
				t.Fatalf("op=%v par=%d: %v", op, par, err)
			}
			if want == nil {
				want = res.Outputs
				continue
			}
			if !reflect.DeepEqual(res.Outputs, want) {
				t.Fatalf("op=%v par=%d: outputs differ", op, par)
			}
		}
	}
}

// TestParallelErrorDeterministic forces an evaluation error (an index mapped
// beyond the tree's ranks) and requires the same structured error at every
// Parallelism setting.
func TestParallelErrorDeterministic(t *testing.T) {
	store, b := detWorkload(t, 64)
	bad := modPlacement{ranks: 64, bytes: 64} // ranks beyond the 32-leaf tree
	var want string
	for _, par := range parallelismLevels() {
		e := parEngine(t, par)
		_, err := e.Lookup(store, bad, b)
		if err == nil {
			t.Fatalf("Parallelism=%d: out-of-range rank accepted", par)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("Parallelism=%d: error %q != serial %q", par, err, want)
		}
	}
}

// TestParallelismValidation covers the new knob's configuration contract.
func TestParallelismValidation(t *testing.T) {
	cfg := Default()
	cfg.Parallelism = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative Parallelism accepted")
	}
	cfg.Parallelism = 0
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("parallelism() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestHWBatchStarts pins the batch-splitting helper, including the empty
// batch (no hardware batches at all).
func TestHWBatchStarts(t *testing.T) {
	e := parEngine(t, 1)
	for _, tc := range []struct {
		n    int
		want []int
	}{
		{0, []int{}},
		{1, []int{0}},
		{32, []int{0}},
		{33, []int{0, 32}},
		{100, []int{0, 32, 64, 96}},
	} {
		got := e.hwBatchStarts(tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("hwBatchStarts(%d) = %v, want %v", tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("hwBatchStarts(%d) = %v, want %v", tc.n, got, tc.want)
			}
		}
	}
}
