package fafnir

import (
	"testing"

	"fafnir/internal/dram"
	"fafnir/internal/fault"
)

// Every timed producer fills TimedResult.Stages so the named stages sum to
// TotalCycles with no remainder — the contract the serving layer's per-request
// Breakdown relies on. These tests pin it on each single-system path.
func TestStagesSumToTotalEngine(t *testing.T) {
	store, b := detWorkload(t, 96)
	pl := modPlacement{ranks: 32, bytes: 64}
	cases := []struct {
		name, faults string
		dedup        bool
	}{
		{"dedup", "", true},
		{"no-dedup", "", false},
		// modPlacement keeps no replicas, so the faulted case exercises ECC
		// retries and PE stalls rather than a rank kill.
		{"faulted", "ecc=0.005;stall=5+200;seed=9", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := parEngine(t, 1)
			var inj *fault.Injector
			if tc.faults != "" {
				plan, err := fault.Parse(tc.faults)
				if err != nil {
					t.Fatal(err)
				}
				if inj, err = fault.NewInjector(plan, dram.DDR4().TotalRanks()); err != nil {
					t.Fatal(err)
				}
			}
			res, err := e.TimedLookupFaulted(store, pl, dram.MustSystem(dram.DDR4()), b, tc.dedup, inj)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalCycles == 0 {
				t.Fatal("zero-cycle lookup")
			}
			if got := res.Stages.Sum(); got != res.TotalCycles {
				t.Fatalf("Stages.Sum() = %d, TotalCycles = %d (stages %+v)", got, res.TotalCycles, res.Stages)
			}
		})
	}
}

func TestStagesSumToTotalInteractive(t *testing.T) {
	store, b := detWorkload(t, 8)
	pl := modPlacement{ranks: 32, bytes: 64}
	e := parEngine(t, 1)
	res, err := e.InteractiveLookup(store, pl, dram.MustSystem(dram.DDR4()), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles == 0 {
		t.Fatal("zero-cycle lookup")
	}
	if got := res.Stages.Sum(); got != res.TotalCycles {
		t.Fatalf("Stages.Sum() = %d, TotalCycles = %d (stages %+v)", got, res.TotalCycles, res.Stages)
	}
}
